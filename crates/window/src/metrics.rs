//! Window-level diagnostics: per-region occupancy and cell flux.
//!
//! Figure 3's picture of the window — cells entering through the insertion
//! shell, equilibrating on the on-ramp, interacting in the window proper —
//! becomes measurable here: region occupancy histograms and per-step
//! region-crossing counts.

use crate::regions::{Region, WindowAnatomy};
use apr_cells::{CellId, CellKind, CellPool};
use std::collections::HashMap;

/// Cell counts per region.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegionOccupancy {
    /// RBCs in the window proper.
    pub proper: usize,
    /// RBCs on the on-ramp.
    pub onramp: usize,
    /// RBCs in the insertion shell.
    pub insertion: usize,
    /// RBCs tracked but outside the window (about to be removed).
    pub outside: usize,
}

impl RegionOccupancy {
    /// Total tracked RBCs.
    pub fn total(&self) -> usize {
        self.proper + self.onramp + self.insertion + self.outside
    }
}

/// Count RBCs per region by centroid.
pub fn region_occupancy(pool: &CellPool, anatomy: &WindowAnatomy) -> RegionOccupancy {
    let mut occ = RegionOccupancy::default();
    for cell in pool.iter() {
        if cell.kind != CellKind::Rbc {
            continue;
        }
        match anatomy.region_of(cell.centroid()) {
            Region::Proper => occ.proper += 1,
            Region::OnRamp => occ.onramp += 1,
            Region::Insertion => occ.insertion += 1,
            Region::Outside => occ.outside += 1,
        }
    }
    occ
}

/// Publish an occupancy snapshot as telemetry gauges.
///
/// Gauge names follow the `window.region.*` taxonomy (see DESIGN.md §8);
/// no-ops when telemetry is disabled.
pub fn publish_occupancy(occ: &RegionOccupancy) {
    if !apr_telemetry::is_enabled() {
        return;
    }
    apr_telemetry::gauge_set("window.region.proper", occ.proper as f64);
    apr_telemetry::gauge_set("window.region.onramp", occ.onramp as f64);
    apr_telemetry::gauge_set("window.region.insertion", occ.insertion as f64);
    apr_telemetry::gauge_set("window.region.outside", occ.outside as f64);
    apr_telemetry::gauge_set("window.region.total", occ.total() as f64);
}

/// Region-crossing counters between two snapshots.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegionFlux {
    /// Cells that moved inward (insertion→on-ramp or on-ramp→proper).
    pub inward: usize,
    /// Cells that moved outward.
    pub outward: usize,
    /// Cells that left the window entirely.
    pub exited: usize,
    /// Cells that appeared (inserted) since the last snapshot.
    pub appeared: usize,
}

/// Tracks per-cell regions across steps to measure flux.
#[derive(Debug, Clone, Default)]
pub struct FluxTracker {
    last: HashMap<CellId, Region>,
}

fn rank(r: Region) -> i32 {
    match r {
        Region::Proper => 0,
        Region::OnRamp => 1,
        Region::Insertion => 2,
        Region::Outside => 3,
    }
}

impl FluxTracker {
    /// New empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Update with the current pool state; returns the flux since the last
    /// call.
    pub fn update(&mut self, pool: &CellPool, anatomy: &WindowAnatomy) -> RegionFlux {
        let mut flux = RegionFlux::default();
        let mut current: HashMap<CellId, Region> = HashMap::new();
        for cell in pool.iter() {
            if cell.kind != CellKind::Rbc {
                continue;
            }
            let region = anatomy.region_of(cell.centroid());
            current.insert(cell.id, region);
            match self.last.get(&cell.id) {
                None => flux.appeared += 1,
                Some(&prev) => {
                    let d = rank(region) - rank(prev);
                    if d < 0 {
                        flux.inward += 1;
                    } else if d > 0 {
                        flux.outward += 1;
                    }
                }
            }
        }
        // Cells present before but gone now have exited (removed).
        for id in self.last.keys() {
            if !current.contains_key(id) {
                flux.exited += 1;
            }
        }
        self.last = current;
        flux
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apr_membrane::{Membrane, MembraneMaterial, ReferenceState};
    use apr_mesh::{icosphere, Vec3};
    use std::sync::Arc;

    fn pool_with_cell_at(p: Vec3) -> (CellPool, apr_cells::SlotIndex) {
        let mesh = icosphere(1, 1.0);
        let re = Arc::new(ReferenceState::build(&mesh));
        let mem = Arc::new(Membrane::new(re, MembraneMaterial::rbc(1.0, 0.01)));
        let mut pool = CellPool::with_capacity(8);
        let verts = mesh.vertices.iter().map(|&v| v + p).collect();
        let (slot, _) = pool.insert_shape(CellKind::Rbc, mem, verts);
        (pool, slot)
    }

    #[test]
    fn occupancy_classifies_by_centroid() {
        let anatomy = WindowAnatomy::new(Vec3::ZERO, 10.0, 5.0, 5.0);
        let (pool, _) = pool_with_cell_at(Vec3::new(3.0, 0.0, 0.0));
        let occ = region_occupancy(&pool, &anatomy);
        assert_eq!(occ.proper, 1);
        assert_eq!(occ.total(), 1);
    }

    #[test]
    fn flux_tracks_inward_motion() {
        let anatomy = WindowAnatomy::new(Vec3::ZERO, 10.0, 5.0, 5.0);
        let (mut pool, slot) = pool_with_cell_at(Vec3::new(17.0, 0.0, 0.0)); // insertion
        let mut tracker = FluxTracker::new();
        let first = tracker.update(&pool, &anatomy);
        assert_eq!(first.appeared, 1);
        // Move to the on-ramp, then the proper region.
        pool.get_mut(slot)
            .unwrap()
            .translate(Vec3::new(-5.0, 0.0, 0.0));
        let f = tracker.update(&pool, &anatomy);
        assert_eq!(f.inward, 1);
        pool.get_mut(slot)
            .unwrap()
            .translate(Vec3::new(-5.0, 0.0, 0.0));
        let f = tracker.update(&pool, &anatomy);
        assert_eq!(f.inward, 1);
        assert_eq!(f.outward, 0);
    }

    #[test]
    fn flux_tracks_exit_and_removal() {
        let anatomy = WindowAnatomy::new(Vec3::ZERO, 10.0, 5.0, 5.0);
        let (mut pool, slot) = pool_with_cell_at(Vec3::new(3.0, 0.0, 0.0));
        let mut tracker = FluxTracker::new();
        tracker.update(&pool, &anatomy);
        pool.remove(slot);
        let f = tracker.update(&pool, &anatomy);
        assert_eq!(f.exited, 1);
    }
}
