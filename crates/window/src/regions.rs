//! Window anatomy: insertion, on-ramp and window-proper regions
//! (paper §2.4.2, Figure 3A).
//!
//! The window is a cube centred on the tracked CTC. From the inside out:
//! the **window proper** where cells interact with the CTC, the **on-ramp**
//! where freshly inserted cells equilibrate with the flow, and the
//! **insertion** shell where undeformed RBCs are injected to hold the
//! target hematocrit. All coordinates are "world" units (the engine maps
//! them onto lattice coordinates).

use apr_mesh::Vec3;

/// Which region of the window a point falls in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Region {
    /// Innermost region around the CTC.
    Proper,
    /// Equilibration layer between insertion and proper.
    OnRamp,
    /// Outermost layer where new cells are injected.
    Insertion,
    /// Outside the window entirely.
    Outside,
}

/// Geometry of one window instance.
///
/// ```
/// use apr_window::{Region, WindowAnatomy};
/// use apr_mesh::Vec3;
/// // The paper's Figure 6 window: 120 µm edge = 40 proper + 2×20 on-ramp
/// // + 2×20 insertion.
/// let w = WindowAnatomy::new(Vec3::ZERO, 20.0, 20.0, 20.0);
/// assert_eq!(w.full_half(), 60.0);
/// assert_eq!(w.region_of(Vec3::new(55.0, 0.0, 0.0)), Region::Insertion);
/// assert_eq!(w.region_of(Vec3::new(30.0, 0.0, 0.0)), Region::OnRamp);
/// assert_eq!(w.region_of(Vec3::ZERO), Region::Proper);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowAnatomy {
    /// Window centre.
    pub center: Vec3,
    /// Half edge length of the window-proper cube.
    pub proper_half: f64,
    /// Thickness of the on-ramp layer.
    pub onramp: f64,
    /// Thickness of the insertion layer.
    pub insertion: f64,
}

impl WindowAnatomy {
    /// New anatomy; all extents must be positive (insertion/on-ramp may be
    /// zero for windows that don't maintain cells).
    pub fn new(center: Vec3, proper_half: f64, onramp: f64, insertion: f64) -> Self {
        assert!(proper_half > 0.0, "window proper must have extent");
        assert!(onramp >= 0.0 && insertion >= 0.0);
        Self {
            center,
            proper_half,
            onramp,
            insertion,
        }
    }

    /// The paper's Figure 6 window: 120 µm edge = 40 µm proper + 2×20 µm
    /// on-ramp + 2×20 µm insertion per side, scaled by `scale`.
    pub fn paper_figure6(center: Vec3, scale: f64) -> Self {
        Self::new(center, 20.0 * scale, 20.0 * scale, 20.0 * scale)
    }

    /// Half edge of the full window (through the insertion shell).
    pub fn full_half(&self) -> f64 {
        self.proper_half + self.onramp + self.insertion
    }

    /// Half edge of the interior (proper + on-ramp, i.e. the insertion
    /// shell's inner boundary).
    pub fn interior_half(&self) -> f64 {
        self.proper_half + self.onramp
    }

    /// Full window bounds `(min, max)`.
    pub fn bounds(&self) -> (Vec3, Vec3) {
        let h = Vec3::splat(self.full_half());
        (self.center - h, self.center + h)
    }

    /// Chebyshev (cube) distance of `p` from the centre.
    pub fn cube_distance(&self, p: Vec3) -> f64 {
        (p - self.center).abs().max_component()
    }

    /// Classify a point.
    pub fn region_of(&self, p: Vec3) -> Region {
        let d = self.cube_distance(p);
        if d <= self.proper_half {
            Region::Proper
        } else if d <= self.interior_half() {
            Region::OnRamp
        } else if d <= self.full_half() {
            Region::Insertion
        } else {
            Region::Outside
        }
    }

    /// Is `p` anywhere inside the window?
    pub fn contains(&self, p: Vec3) -> bool {
        self.cube_distance(p) <= self.full_half()
    }

    /// Volume of the full window cube.
    pub fn volume(&self) -> f64 {
        (2.0 * self.full_half()).powi(3)
    }

    /// Volume of the interior (inside the insertion shell).
    pub fn interior_volume(&self) -> f64 {
        (2.0 * self.interior_half()).powi(3)
    }

    /// Distance from `p` to the window-proper boundary (positive inside).
    pub fn distance_to_proper_boundary(&self, p: Vec3) -> f64 {
        self.proper_half - self.cube_distance(p)
    }

    /// Recentre the window (a window move).
    pub fn recentered(&self, new_center: Vec3) -> Self {
        Self {
            center: new_center,
            ..*self
        }
    }

    /// Cubic insertion subregions: the full window is gridded into cubes of
    /// edge ≈ `insertion` thickness; cells of the grid whose centres fall in
    /// the insertion shell are subregions (paper: "the domain is divided
    /// into cubic subregions", Figure 3A dashed cubes).
    pub fn insertion_subregions(&self) -> Vec<SubregionBox> {
        if self.insertion == 0.0 {
            return Vec::new();
        }
        let full = 2.0 * self.full_half();
        let k = (full / self.insertion).round().max(1.0) as usize;
        let edge = full / k as f64;
        let (lo, _) = self.bounds();
        let mut out = Vec::new();
        for iz in 0..k {
            for iy in 0..k {
                for ix in 0..k {
                    let min = lo + Vec3::new(ix as f64, iy as f64, iz as f64) * edge;
                    let center = min + Vec3::splat(edge / 2.0);
                    if self.region_of(center) == Region::Insertion {
                        out.push(SubregionBox { min, edge });
                    }
                }
            }
        }
        out
    }
}

/// One cubic insertion subregion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SubregionBox {
    /// Lower corner.
    pub min: Vec3,
    /// Edge length.
    pub edge: f64,
}

impl SubregionBox {
    /// Does the box contain `p`?
    pub fn contains(&self, p: Vec3) -> bool {
        (0..3).all(|a| p[a] >= self.min[a] && p[a] < self.min[a] + self.edge)
    }

    /// Box volume.
    pub fn volume(&self) -> f64 {
        self.edge.powi(3)
    }

    /// Box centre.
    pub fn center(&self) -> Vec3 {
        self.min + Vec3::splat(self.edge / 2.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn anatomy() -> WindowAnatomy {
        WindowAnatomy::new(Vec3::new(100.0, 50.0, 50.0), 20.0, 10.0, 10.0)
    }

    #[test]
    fn regions_nest_correctly() {
        let w = anatomy();
        let c = w.center;
        assert_eq!(w.region_of(c), Region::Proper);
        assert_eq!(w.region_of(c + Vec3::new(19.9, 0.0, 0.0)), Region::Proper);
        assert_eq!(w.region_of(c + Vec3::new(25.0, 0.0, 0.0)), Region::OnRamp);
        assert_eq!(
            w.region_of(c + Vec3::new(35.0, 0.0, 0.0)),
            Region::Insertion
        );
        assert_eq!(w.region_of(c + Vec3::new(41.0, 0.0, 0.0)), Region::Outside);
        // Cube metric: diagonal point inside the proper cube.
        assert_eq!(w.region_of(c + Vec3::splat(19.0)), Region::Proper);
    }

    #[test]
    fn figure6_dimensions() {
        // 120 µm edge: 40 proper, 20+20 on-ramp, 20+20 insertion.
        let w = WindowAnatomy::paper_figure6(Vec3::ZERO, 1.0);
        assert!((w.full_half() - 60.0).abs() < 1e-12);
        assert!((w.interior_half() - 40.0).abs() < 1e-12);
        assert!((w.volume() - 120.0f64.powi(3)).abs() < 1e-6);
    }

    #[test]
    fn subregions_tile_the_insertion_shell() {
        let w = anatomy();
        let subs = w.insertion_subregions();
        assert!(!subs.is_empty());
        // Full window edge 80, insertion 10 → 8³ grid, shell = all but the
        // interior 6³ cells: 512 − 216 = 296.
        assert_eq!(subs.len(), 296);
        // Every subregion centre is in the insertion region.
        for s in &subs {
            assert_eq!(w.region_of(s.center()), Region::Insertion);
        }
        // Total subregion volume approximates the shell volume.
        let shell = w.volume() - w.interior_volume();
        let total: f64 = subs.iter().map(SubregionBox::volume).sum();
        assert!(
            (total - shell).abs() / shell < 0.05,
            "total {total} vs shell {shell}"
        );
    }

    #[test]
    fn distance_to_proper_boundary_signs() {
        let w = anatomy();
        assert!(w.distance_to_proper_boundary(w.center) > 0.0);
        let near_edge = w.center + Vec3::new(18.0, 0.0, 0.0);
        let d = w.distance_to_proper_boundary(near_edge);
        assert!((d - 2.0).abs() < 1e-12);
        let outside = w.center + Vec3::new(30.0, 0.0, 0.0);
        assert!(w.distance_to_proper_boundary(outside) < 0.0);
    }

    #[test]
    fn recentering_preserves_shape() {
        let w = anatomy();
        let moved = w.recentered(Vec3::ZERO);
        assert_eq!(moved.proper_half, w.proper_half);
        assert_eq!(moved.full_half(), w.full_half());
        assert_eq!(moved.center, Vec3::ZERO);
    }
}
