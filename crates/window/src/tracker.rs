//! CTC trajectory tracking (paper §3.3, Figure 6).

use apr_mesh::Vec3;

/// Recorded CTC trajectory with radial-displacement analysis helpers.
#[derive(Debug, Clone, Default)]
pub struct CtcTracker {
    /// `(step, centroid)` samples.
    pub samples: Vec<(u64, Vec3)>,
}

impl CtcTracker {
    /// New empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a sample.
    pub fn record(&mut self, step: u64, position: Vec3) {
        self.samples.push((step, position));
    }

    /// Latest recorded position.
    pub fn current(&self) -> Option<Vec3> {
        self.samples.last().map(|&(_, p)| p)
    }

    /// Total path length travelled.
    pub fn path_length(&self) -> f64 {
        self.samples
            .windows(2)
            .map(|w| (w[1].1 - w[0].1).norm())
            .sum()
    }

    /// Net displacement from the first to the last sample.
    pub fn net_displacement(&self) -> f64 {
        match (self.samples.first(), self.samples.last()) {
            (Some(&(_, a)), Some(&(_, b))) => (b - a).norm(),
            _ => 0.0,
        }
    }

    /// Radial distance from a channel centreline along `axis` through
    /// `origin` for each sample: `(axial position, radial displacement)` —
    /// the quantity Figure 6C/D plots.
    pub fn radial_profile(&self, origin: Vec3, axis: Vec3) -> Vec<(f64, f64)> {
        let a = axis.normalized();
        self.samples
            .iter()
            .map(|&(_, p)| {
                let rel = p - origin;
                let axial = rel.dot(a);
                let radial = (rel - a * axial).norm();
                (axial, radial)
            })
            .collect()
    }

    /// Mean speed in world units per step between consecutive samples.
    pub fn mean_speed(&self) -> f64 {
        if self.samples.len() < 2 {
            return 0.0;
        }
        let steps = self.samples.last().unwrap().0 - self.samples.first().unwrap().0;
        if steps == 0 {
            return 0.0;
        }
        self.path_length() / steps as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straight_path_metrics() {
        let mut t = CtcTracker::new();
        for i in 0..=10u64 {
            t.record(i, Vec3::new(i as f64, 0.0, 0.0));
        }
        assert!((t.path_length() - 10.0).abs() < 1e-12);
        assert!((t.net_displacement() - 10.0).abs() < 1e-12);
        assert!((t.mean_speed() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn radial_profile_separates_axial_and_radial() {
        let mut t = CtcTracker::new();
        t.record(0, Vec3::new(5.0, 3.0, 4.0));
        let profile = t.radial_profile(Vec3::ZERO, Vec3::X);
        assert_eq!(profile.len(), 1);
        let (axial, radial) = profile[0];
        assert!((axial - 5.0).abs() < 1e-12);
        assert!((radial - 5.0).abs() < 1e-12); // √(3² + 4²)
    }

    #[test]
    fn zigzag_path_exceeds_net_displacement() {
        let mut t = CtcTracker::new();
        t.record(0, Vec3::ZERO);
        t.record(1, Vec3::new(1.0, 1.0, 0.0));
        t.record(2, Vec3::new(2.0, 0.0, 0.0));
        assert!(t.path_length() > t.net_displacement() + 0.5);
    }

    #[test]
    fn empty_tracker_is_safe() {
        let t = CtcTracker::new();
        assert_eq!(t.current(), None);
        assert_eq!(t.path_length(), 0.0);
        assert_eq!(t.mean_speed(), 0.0);
    }
}
