//! The APR moving window (paper §2.4.2–2.4.3, Figure 3).
//!
//! Maintains a realistic RBC environment around a tracked CTC: the window
//! anatomy of insertion / on-ramp / window-proper regions ([`regions`]),
//! the hematocrit monitor and controller ([`hematocrit`]), tile-based
//! repopulation of insertion subregions ([`insertion`]), the capture/fill
//! window-move algorithm ([`mover`]), and CTC trajectory recording
//! ([`tracker`]).

pub mod hematocrit;
pub mod insertion;
pub mod metrics;
pub mod mover;
pub mod regions;
pub mod tracker;

pub use hematocrit::HematocritController;
pub use insertion::{remove_escaped_cells, repopulate, InsertionContext, InsertionReport};
pub use metrics::{publish_occupancy, region_occupancy, FluxTracker, RegionFlux, RegionOccupancy};
pub use mover::{move_window, MoveReport, MoveTrigger};
pub use regions::{Region, SubregionBox, WindowAnatomy};
pub use tracker::CtcTracker;
