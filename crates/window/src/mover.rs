//! Moving the window with its cells (paper §2.4.3, Figure 3B).
//!
//! When the CTC approaches the window-proper boundary the window recentres
//! on it. Cells in the **capture** region around the CTC keep their world
//! positions (preserving the equilibrated micro-environment); the **fill**
//! region — the rest of the new interior — is populated with deep copies of
//! existing deformed cells shifted by the window displacement (re-using
//! deformed shapes instead of inserting undeformed ones); the insertion
//! shell is then repopulated by the normal §2.4.2 machinery.

use crate::regions::{Region, WindowAnatomy};
use apr_cells::{test_overlap, CellKind, CellPool, OverlapOutcome, UniformSubgrid};
use apr_mesh::Vec3;

/// Window-move trigger policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MoveTrigger {
    /// Move when the CTC is within this distance of the window-proper
    /// boundary.
    pub trigger_distance: f64,
}

impl MoveTrigger {
    /// Should the window move for a CTC at `ctc`?
    pub fn should_move(&self, anatomy: &WindowAnatomy, ctc: Vec3) -> bool {
        anatomy.distance_to_proper_boundary(ctc) <= self.trigger_distance
    }
}

/// Outcome of one window move.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MoveReport {
    /// Displacement applied to the window centre.
    pub shift: Vec3,
    /// Cells kept in place (capture region).
    pub captured: usize,
    /// Cells removed (left the new window).
    pub removed: usize,
    /// Deformed deep copies placed into the fill region.
    pub copied: usize,
    /// Copy candidates rejected (overlap or outside fill region).
    pub rejected: usize,
}

/// Execute a window move: recentre `anatomy` on the CTC position and
/// restructure the RBC population per Figure 3B. Returns the new anatomy
/// and a report. `grid` is rebuilt to match the surviving population.
///
/// The caller is responsible for re-seeding the fine lattice from the
/// coarse solution afterwards and for running insertion-region
/// repopulation.
pub fn move_window(
    anatomy: &WindowAnatomy,
    pool: &mut CellPool,
    grid: &mut UniformSubgrid,
    ctc: Vec3,
    min_gap: f64,
) -> (WindowAnatomy, MoveReport) {
    let _span = apr_telemetry::span("window.move");
    let new_anatomy = anatomy.recentered(ctc);
    let shift = new_anatomy.center - anatomy.center;
    let mut report = MoveReport {
        shift,
        ..Default::default()
    };

    // 1. Remove RBCs that fall outside the new window entirely.
    let removed =
        pool.remove_where(|c| c.kind == CellKind::Rbc && !new_anatomy.contains(c.centroid()));
    report.removed = removed.len();

    // 2. Capture region: surviving RBCs in the new interior keep their
    //    world positions. (Everything still inside counts; those in the new
    //    insertion shell participate in density bookkeeping as usual.)
    report.captured = pool
        .iter()
        .filter(|c| {
            c.kind == CellKind::Rbc
                && matches!(
                    new_anatomy.region_of(c.centroid()),
                    Region::Proper | Region::OnRamp
                )
        })
        .count();

    // Rebuild the spatial grid from survivors.
    apr_cells::rebuild_grid(grid, pool);

    // 3. Fill region: deep-copy existing deformed RBCs, shifted by the
    //    window displacement, into interior space not already occupied.
    let candidates: Vec<(Vec<Vec3>, std::sync::Arc<apr_membrane::Membrane>)> = pool
        .iter()
        .filter(|c| c.kind == CellKind::Rbc)
        .map(|c| (c.vertices.clone(), std::sync::Arc::clone(&c.membrane)))
        .collect();
    for (verts, membrane) in candidates {
        let shifted: Vec<Vec3> = verts.iter().map(|&v| v + shift).collect();
        let centroid = shifted.iter().copied().sum::<Vec3>() / shifted.len() as f64;
        let in_fill = matches!(
            new_anatomy.region_of(centroid),
            Region::Proper | Region::OnRamp
        );
        if !in_fill {
            report.rejected += 1;
            continue;
        }
        if apr_cells::centroid_conflict(pool, centroid, 2.0 * min_gap) {
            report.rejected += 1;
            continue;
        }
        match test_overlap(grid, &shifted, min_gap) {
            OverlapOutcome::Clear => {
                let (_, id) = pool.insert_cell(apr_cells::Cell::with_shape(
                    0, // replaced by the pool
                    CellKind::Rbc,
                    membrane,
                    shifted,
                ));
                let cell = pool.find_by_id(id).expect("just inserted");
                grid.insert_cell(id, &cell.vertices);
                report.copied += 1;
            }
            OverlapOutcome::Overlaps(_) => report.rejected += 1,
        }
    }

    (new_anatomy, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use apr_membrane::{Membrane, MembraneMaterial, ReferenceState};
    use apr_mesh::biconcave_rbc_mesh;
    use std::sync::Arc;

    fn setup(anatomy: &WindowAnatomy, spacing: f64) -> (CellPool, UniformSubgrid) {
        // Fill the window interior with a regular grid of RBCs.
        let mesh = biconcave_rbc_mesh(1, 3.0);
        let re = Arc::new(ReferenceState::build(&mesh));
        let mem = Arc::new(Membrane::new(re, MembraneMaterial::rbc(1.0, 0.01)));
        let mut pool = CellPool::with_capacity(1024);
        let (lo, hi) = anatomy.bounds();
        let mut p = lo + Vec3::splat(spacing / 2.0);
        while p.z < hi.z {
            while p.y < hi.y {
                while p.x < hi.x {
                    let verts = mesh.vertices.iter().map(|&v| v + p).collect();
                    pool.insert_shape(CellKind::Rbc, Arc::clone(&mem), verts);
                    p.x += spacing;
                }
                p.x = lo.x + spacing / 2.0;
                p.y += spacing;
            }
            p.y = lo.y + spacing / 2.0;
            p.z += spacing;
        }
        let mut grid = UniformSubgrid::new(3.0);
        apr_cells::rebuild_grid(&mut grid, &pool);
        (pool, grid)
    }

    #[test]
    fn trigger_fires_near_boundary() {
        let w = WindowAnatomy::new(Vec3::splat(50.0), 20.0, 5.0, 5.0);
        let t = MoveTrigger {
            trigger_distance: 4.0,
        };
        assert!(!t.should_move(&w, w.center));
        assert!(t.should_move(&w, w.center + Vec3::new(17.0, 0.0, 0.0)));
        assert!(t.should_move(&w, w.center + Vec3::new(25.0, 0.0, 0.0)));
    }

    #[test]
    fn move_keeps_captured_cells_in_place() {
        let w = WindowAnatomy::new(Vec3::splat(50.0), 15.0, 5.0, 5.0);
        let (mut pool, mut grid) = setup(&w, 9.0);
        let before: Vec<(u64, Vec3)> = pool.iter().map(|c| (c.id, c.centroid())).collect();
        let ctc = w.center + Vec3::new(12.0, 0.0, 0.0);
        let (new_w, report) = move_window(&w, &mut pool, &mut grid, ctc, 0.5);
        assert_eq!(new_w.center, ctc);
        assert!(report.captured > 0, "{report:?}");
        // Every surviving original cell is exactly where it was.
        for (id, pos) in before {
            if let Some(cell) = pool.find_by_id(id) {
                assert!((cell.centroid() - pos).norm() < 1e-12, "cell {id} moved");
            }
        }
    }

    #[test]
    fn move_removes_cells_left_behind() {
        let w = WindowAnatomy::new(Vec3::splat(50.0), 15.0, 5.0, 5.0);
        let (mut pool, mut grid) = setup(&w, 9.0);
        let live0 = pool.live_count();
        // Large jump: most old cells end up outside the new window.
        let ctc = w.center + Vec3::new(40.0, 0.0, 0.0);
        let (new_w, report) = move_window(&w, &mut pool, &mut grid, ctc, 0.5);
        assert!(report.removed > live0 / 2, "{report:?}");
        for c in pool.iter() {
            assert!(new_w.contains(c.centroid()));
        }
    }

    #[test]
    fn fill_copies_are_shifted_replicas() {
        let w = WindowAnatomy::new(Vec3::splat(50.0), 15.0, 5.0, 5.0);
        let (mut pool, mut grid) = setup(&w, 9.0);
        // Shift by a multiple of the packing pitch so copies land on the
        // vacated lattice sites of the fill region rather than inside
        // surviving cells (the paper's fill copies likewise target space
        // opened by the move).
        let ctc = w.center + Vec3::new(18.0, 0.0, 0.0);
        let (new_w, report) = move_window(&w, &mut pool, &mut grid, ctc, 0.5);
        assert!(report.copied > 0, "{report:?}");
        // All copies land in the new interior.
        for c in pool.iter() {
            assert!(new_w.contains(c.centroid()));
        }
        // Population roughly conserved in the interior: captured + copied
        // should be within 2x of the pre-move interior population.
        let interior_before = (2.0 * w.interior_half()).powi(3) / 9.0f64.powi(3);
        let after = report.captured + report.copied;
        assert!(
            (after as f64) > 0.4 * interior_before,
            "after {after}, before ≈ {interior_before}"
        );
    }

    #[test]
    fn copies_do_not_overlap_existing_cells() {
        let w = WindowAnatomy::new(Vec3::splat(50.0), 15.0, 5.0, 5.0);
        let (mut pool, mut grid) = setup(&w, 9.0);
        let ctc = w.center + Vec3::new(12.0, 3.0, -2.0);
        let (_, _) = move_window(&w, &mut pool, &mut grid, ctc, 0.5);
        let cells: Vec<_> = pool.iter().collect();
        for (i, a) in cells.iter().enumerate() {
            for b in cells.iter().skip(i + 1) {
                let d = a.centroid().distance(b.centroid());
                assert!(d > 1.0, "cells too close after move: {d}");
            }
        }
    }
}
