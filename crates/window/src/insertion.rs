//! Cell repopulation of insertion subregions (paper §2.4.2).
//!
//! "Re-populating an injection subregion is similar to the initial placement
//! of cells, except that no new cells are added if they overlap with
//! existing cells in the simulation."

use crate::hematocrit::HematocritController;
use crate::regions::WindowAnatomy;
use apr_cells::{test_overlap, CellKind, CellPool, OverlapOutcome, RbcTile, UniformSubgrid};
use apr_membrane::Membrane;
use apr_mesh::TriMesh;
use rand::Rng;
use std::sync::Arc;

/// Everything needed to materialize new RBCs in the window.
pub struct InsertionContext {
    /// Undeformed RBC reference mesh (defines the inserted shape).
    pub rbc_mesh: TriMesh,
    /// Shared RBC membrane model.
    pub rbc_membrane: Arc<Membrane>,
    /// Pre-built RBC tile to sample placements from.
    pub tile: RbcTile,
    /// Minimum vertex clearance against existing cells.
    pub min_gap: f64,
}

/// Result of one repopulation sweep.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InsertionReport {
    /// Subregions that were below threshold.
    pub needy_subregions: usize,
    /// Cells successfully inserted.
    pub inserted: usize,
    /// Candidate placements rejected for overlap.
    pub rejected_overlap: usize,
    /// Candidates rejected for leaving the insertion region/window.
    pub rejected_outside: usize,
}

/// Repopulate all needy insertion subregions. `grid` must hold the current
/// vertex samples of every live cell and is updated with each insertion.
pub fn repopulate<R: Rng>(
    pool: &mut CellPool,
    grid: &mut UniformSubgrid,
    anatomy: &WindowAnatomy,
    controller: &HematocritController,
    ctx: &InsertionContext,
    rng: &mut R,
) -> InsertionReport {
    let _span = apr_telemetry::span("window.repopulate");
    let mut report = InsertionReport::default();
    // Global gate: never push the window hematocrit above target. Without
    // it, sub-cell-sized subregions overshoot through deficit quantization
    // (each "needs" a whole cell even when the fractional target is < 1).
    let window_volume = anatomy.volume();
    let mut ht = controller.window_hematocrit(pool, anatomy);
    if ht >= controller.target {
        return report;
    }
    let subregions = anatomy.insertion_subregions();
    let needy = controller.needy_subregions(pool, &subregions);
    report.needy_subregions = needy.len();
    'outer: for (sub_idx, deficit) in needy {
        let sub = subregions[sub_idx];
        // One randomly shifted/oriented tile cube per subregion draw.
        let placements = ctx.tile.sample_cube(sub.edge, rng);
        let mut added = 0usize;
        for p in placements {
            if added >= deficit {
                break;
            }
            if ht >= controller.target {
                break 'outer;
            }
            let world = p.center + sub.min;
            // Centroid must land in this subregion's insertion territory.
            if !sub.contains(world) || !anatomy.contains(world) {
                report.rejected_outside += 1;
                continue;
            }
            let mut verts = p.realize(&ctx.rbc_mesh);
            for v in &mut verts {
                *v += sub.min;
            }
            // Coarse meshes can pass the vertex test while interpenetrating
            // near-concentrically; enforce a centroid floor as well.
            if apr_cells::centroid_conflict(pool, world, 2.0 * ctx.min_gap) {
                report.rejected_overlap += 1;
                continue;
            }
            match test_overlap(grid, &verts, ctx.min_gap) {
                OverlapOutcome::Clear => {
                    let (_, id) =
                        pool.insert_shape(CellKind::Rbc, Arc::clone(&ctx.rbc_membrane), verts);
                    // Register the new cell's samples so later candidates in
                    // this same sweep see it.
                    let cell = pool.find_by_id(id).expect("just inserted");
                    grid.insert_cell(id, &cell.vertices);
                    ht += cell.volume() / window_volume;
                    added += 1;
                    report.inserted += 1;
                }
                OverlapOutcome::Overlaps(_) => report.rejected_overlap += 1,
            }
        }
    }
    report
}

/// Remove cells that have left the window entirely (paper: "Cells that
/// leave the window are removed once they cross the outer boundary").
/// Returns the removed count. The CTC is never removed.
pub fn remove_escaped_cells(
    pool: &mut CellPool,
    grid: &mut UniformSubgrid,
    anatomy: &WindowAnatomy,
) -> usize {
    let removed = pool.remove_where(|c| c.kind == CellKind::Rbc && !anatomy.contains(c.centroid()));
    for cell in &removed {
        grid.remove_cell(cell.id);
    }
    removed.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use apr_membrane::{MembraneMaterial, ReferenceState};
    use apr_mesh::{biconcave_rbc_mesh, Vec3};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn context() -> InsertionContext {
        // World units: µm. RBC radius 3.91 µm.
        let rbc_mesh = biconcave_rbc_mesh(1, 3.91);
        let re = Arc::new(ReferenceState::build(&rbc_mesh));
        let membrane = Arc::new(Membrane::new(re, MembraneMaterial::rbc(1.0, 0.01)));
        let mut rng = StdRng::seed_from_u64(11);
        let tile = RbcTile::build(40.0, 0.25, 3.91, 2.4, 94.0, &mut rng);
        InsertionContext {
            rbc_mesh,
            rbc_membrane: membrane,
            tile,
            min_gap: 0.5,
        }
    }

    #[test]
    fn empty_window_gets_populated() {
        let ctx = context();
        let anatomy = WindowAnatomy::new(Vec3::splat(50.0), 15.0, 10.0, 10.0);
        let controller = HematocritController::new(0.2, 0.9, 94.0);
        let mut pool = CellPool::with_capacity(512);
        let mut grid = UniformSubgrid::new(4.0);
        let mut rng = StdRng::seed_from_u64(3);
        let report = repopulate(&mut pool, &mut grid, &anatomy, &controller, &ctx, &mut rng);
        assert!(report.inserted > 20, "{report:?}");
        assert_eq!(pool.live_count(), report.inserted);
        // Every inserted cell's centroid is in the insertion shell.
        for cell in pool.iter() {
            assert_eq!(
                anatomy.region_of(cell.centroid()),
                crate::regions::Region::Insertion,
                "cell at {:?}",
                cell.centroid()
            );
        }
    }

    #[test]
    fn repopulation_is_idempotent_once_filled() {
        let ctx = context();
        let anatomy = WindowAnatomy::new(Vec3::splat(50.0), 15.0, 10.0, 10.0);
        let controller = HematocritController::new(0.15, 0.9, 94.0);
        let mut pool = CellPool::with_capacity(512);
        let mut grid = UniformSubgrid::new(4.0);
        let mut rng = StdRng::seed_from_u64(5);
        // Each sweep draws fresh tile cubes, so filling converges over a few
        // sweeps: insertions must taper off and the global hematocrit gate
        // must hold the window at/below target.
        let first = repopulate(&mut pool, &mut grid, &anatomy, &controller, &ctx, &mut rng);
        let mut last = first.inserted;
        for _ in 0..4 {
            last = repopulate(&mut pool, &mut grid, &anatomy, &controller, &ctx, &mut rng).inserted;
        }
        assert!(
            last <= first.inserted / 5,
            "sweeps not converging: first {} still inserting {}",
            first.inserted,
            last
        );
        let ht = controller.window_hematocrit(&pool, &anatomy);
        assert!(
            ht <= controller.target * 1.02,
            "gate breached: Ht {ht} > target {}",
            controller.target
        );
    }

    #[test]
    fn inserted_cells_do_not_overlap() {
        let ctx = context();
        let anatomy = WindowAnatomy::new(Vec3::splat(50.0), 15.0, 10.0, 10.0);
        let controller = HematocritController::new(0.25, 0.9, 94.0);
        let mut pool = CellPool::with_capacity(512);
        let mut grid = UniformSubgrid::new(4.0);
        let mut rng = StdRng::seed_from_u64(7);
        repopulate(&mut pool, &mut grid, &anatomy, &controller, &ctx, &mut rng);
        // Pairwise centroid distance above the cell thickness.
        let cells: Vec<_> = pool.iter().collect();
        for (i, a) in cells.iter().enumerate() {
            for b in cells.iter().skip(i + 1) {
                let d = a.centroid().distance(b.centroid());
                assert!(d > 1.5, "cells {i} too close: {d}");
            }
        }
    }

    #[test]
    fn escaped_cells_are_removed() {
        let ctx = context();
        let anatomy = WindowAnatomy::new(Vec3::splat(50.0), 15.0, 10.0, 10.0);
        let mut pool = CellPool::with_capacity(16);
        let mut grid = UniformSubgrid::new(4.0);
        // One cell inside, one far outside.
        let inside = ctx
            .rbc_mesh
            .vertices
            .iter()
            .map(|&v| v + Vec3::splat(50.0))
            .collect();
        let outside = ctx
            .rbc_mesh
            .vertices
            .iter()
            .map(|&v| v + Vec3::splat(500.0))
            .collect();
        let (_, id_in) = pool.insert_shape(CellKind::Rbc, Arc::clone(&ctx.rbc_membrane), inside);
        let (_, id_out) = pool.insert_shape(CellKind::Rbc, Arc::clone(&ctx.rbc_membrane), outside);
        grid.insert_cell(id_in, &pool.find_by_id(id_in).unwrap().vertices.clone());
        grid.insert_cell(id_out, &pool.find_by_id(id_out).unwrap().vertices.clone());
        let removed = remove_escaped_cells(&mut pool, &mut grid, &anatomy);
        assert_eq!(removed, 1);
        assert!(pool.find_by_id(id_in).is_some());
        assert!(pool.find_by_id(id_out).is_none());
    }
}
