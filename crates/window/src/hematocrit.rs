//! Hematocrit monitoring and control (paper §2.4.2, Figure 5B).
//!
//! "Throughout the simulation, the density of cells in each injection
//! subregion is monitored by tracking the number of RBCs in that subregion
//! based on their centroid. If the number of cells falls below a predefined
//! threshold, new undeformed RBCs are added."

use crate::regions::{SubregionBox, WindowAnatomy};
use apr_cells::{CellKind, CellPool};
use apr_hemo::ConfigError;

/// Hematocrit controller configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HematocritController {
    /// Target volume fraction of RBCs in the window.
    pub target: f64,
    /// Refill trigger: repopulate a subregion when its count falls below
    /// `threshold × target count` (minimizes injection frequency, §3.2).
    pub threshold: f64,
    /// Volume of one undeformed RBC (world units³).
    pub cell_volume: f64,
}

impl HematocritController {
    /// Fallible constructor: validates the target against the physiological
    /// range, the threshold against `[0, 1]`, and the cell volume for
    /// positivity, returning a typed error instead of panicking.
    pub fn try_new(target: f64, threshold: f64, cell_volume: f64) -> Result<Self, ConfigError> {
        if !(0.0..=0.6).contains(&target) {
            return Err(ConfigError::OutOfRange {
                name: "unphysiological target hematocrit",
                value: target,
                min: 0.0,
                max: 0.6,
            });
        }
        if !(0.0..=1.0).contains(&threshold) {
            return Err(ConfigError::OutOfRange {
                name: "refill threshold",
                value: threshold,
                min: 0.0,
                max: 1.0,
            });
        }
        if !(cell_volume > 0.0 && cell_volume.is_finite()) {
            return Err(ConfigError::NonPositive {
                name: "cell volume",
                value: cell_volume,
            });
        }
        Ok(Self {
            target,
            threshold,
            cell_volume,
        })
    }

    /// New controller.
    ///
    /// # Panics
    /// Panics for targets outside `[0, 0.6]` or a non-positive cell volume.
    /// Use [`HematocritController::try_new`] to handle the error instead.
    pub fn new(target: f64, threshold: f64, cell_volume: f64) -> Self {
        Self::try_new(target, threshold, cell_volume).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Window hematocrit: total RBC volume of cells whose centroid lies in
    /// the window, over the window volume.
    pub fn window_hematocrit(&self, pool: &CellPool, anatomy: &WindowAnatomy) -> f64 {
        let cell_volume: f64 = pool
            .iter()
            .filter(|c| c.kind == CellKind::Rbc && anatomy.contains(c.centroid()))
            .map(|c| c.volume())
            .sum();
        cell_volume / anatomy.volume()
    }

    /// RBC count per subregion by centroid membership.
    pub fn subregion_counts(&self, pool: &CellPool, subregions: &[SubregionBox]) -> Vec<usize> {
        let mut counts = vec![0usize; subregions.len()];
        for cell in pool.iter() {
            if cell.kind != CellKind::Rbc {
                continue;
            }
            let c = cell.centroid();
            if let Some(i) = subregions.iter().position(|s| s.contains(c)) {
                counts[i] += 1;
            }
        }
        counts
    }

    /// Target RBC count for one subregion.
    pub fn target_count(&self, sub: &SubregionBox) -> f64 {
        self.target * sub.volume() / self.cell_volume
    }

    /// Number of cells to add to a subregion currently holding `count`
    /// cells: zero unless the count is below `threshold × target`.
    pub fn deficit(&self, sub: &SubregionBox, count: usize) -> usize {
        let target = self.target_count(sub);
        if (count as f64) < self.threshold * target {
            (target - count as f64).ceil().max(0.0) as usize
        } else {
            0
        }
    }

    /// Subregions that currently need repopulation: `(index, deficit)`.
    pub fn needy_subregions(
        &self,
        pool: &CellPool,
        subregions: &[SubregionBox],
    ) -> Vec<(usize, usize)> {
        self.subregion_counts(pool, subregions)
            .into_iter()
            .enumerate()
            .filter_map(|(i, count)| {
                let d = self.deficit(&subregions[i], count);
                (d > 0).then_some((i, d))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apr_mesh::Vec3;

    fn sub(min: Vec3, edge: f64) -> SubregionBox {
        SubregionBox { min, edge }
    }

    #[test]
    fn deficit_respects_threshold() {
        // Target 0.3, cell volume 10, subregion 10³ → target count 30.
        let ctl = HematocritController::new(0.3, 0.9, 10.0);
        let s = sub(Vec3::ZERO, 10.0);
        assert!((ctl.target_count(&s) - 30.0).abs() < 1e-12);
        // 28 ≥ 0.9·30 = 27 → no refill.
        assert_eq!(ctl.deficit(&s, 28), 0);
        assert_eq!(ctl.deficit(&s, 27), 0);
        // 26 < 27 → fill back to target.
        assert_eq!(ctl.deficit(&s, 26), 4);
        assert_eq!(ctl.deficit(&s, 0), 30);
    }

    #[test]
    fn zero_target_never_asks_for_cells() {
        let ctl = HematocritController::new(0.0, 0.9, 10.0);
        let s = sub(Vec3::ZERO, 10.0);
        assert_eq!(ctl.deficit(&s, 0), 0);
    }

    #[test]
    #[should_panic(expected = "unphysiological")]
    fn rejects_extreme_target() {
        let _ = HematocritController::new(0.8, 0.9, 10.0);
    }

    #[test]
    fn try_new_reports_typed_errors() {
        assert!(matches!(
            HematocritController::try_new(0.8, 0.9, 10.0),
            Err(ConfigError::OutOfRange { value, .. }) if value == 0.8
        ));
        assert!(matches!(
            HematocritController::try_new(0.3, 1.5, 10.0),
            Err(ConfigError::OutOfRange {
                name: "refill threshold",
                ..
            })
        ));
        assert!(matches!(
            HematocritController::try_new(0.3, 0.9, 0.0),
            Err(ConfigError::NonPositive {
                name: "cell volume",
                ..
            })
        ));
        assert!(HematocritController::try_new(0.3, 0.9, 10.0).is_ok());
    }
}
