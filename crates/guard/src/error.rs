//! Typed errors for checkpointing and recovery.

use std::fmt;

/// Everything that can go wrong while guarding a simulation: checkpoint
/// I/O and format problems, integrity failures, and exhausted retry
/// budgets. Corruption is always reported as a value, never a panic, so a
/// campaign driver can fall back to an older checkpoint.
#[derive(Debug)]
pub enum GuardError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Malformed or truncated checkpoint data.
    Format(String),
    /// A section's payload failed its CRC32 integrity check.
    Crc {
        /// Section whose payload was corrupted.
        section: String,
        /// Checksum recorded at save time.
        expected: u32,
        /// Checksum of the bytes actually read.
        actual: u32,
    },
    /// The checkpoint was written by an unsupported format version.
    Version {
        /// Version found in the header.
        found: u32,
        /// Highest version this build understands.
        supported: u32,
    },
    /// A required section is absent from the container.
    MissingSection(String),
    /// Rollback-and-retry gave up after the configured attempt budget.
    RetriesExhausted {
        /// Attempts made before giving up.
        attempts: u32,
        /// Step at which recovery was abandoned.
        step: u64,
    },
    /// Engine state needed for restore is unavailable (e.g. no membrane
    /// model to rebuild a stored cell with).
    MissingContext(String),
}

impl fmt::Display for GuardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GuardError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            GuardError::Format(m) => write!(f, "checkpoint format error: {m}"),
            GuardError::Crc { section, expected, actual } => write!(
                f,
                "checkpoint section '{section}' corrupted: crc {actual:#010x} != recorded {expected:#010x}"
            ),
            GuardError::Version { found, supported } => write!(
                f,
                "checkpoint version {found} not supported (this build reads <= {supported})"
            ),
            GuardError::MissingSection(name) => {
                write!(f, "checkpoint is missing required section '{name}'")
            }
            GuardError::RetriesExhausted { attempts, step } => write!(
                f,
                "recovery abandoned at step {step} after {attempts} rollback attempts"
            ),
            GuardError::MissingContext(m) => write!(f, "restore context missing: {m}"),
        }
    }
}

impl std::error::Error for GuardError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GuardError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for GuardError {
    fn from(e: std::io::Error) -> Self {
        GuardError::Io(e)
    }
}
