//! Deterministic fault injection (feature `fault-injection` only).
//!
//! Recovery code that is never exercised is broken code. This module lets
//! tests schedule precise corruptions — a NaN in a membrane force, a
//! corrupted lattice distribution, a dropped halo exchange — at chosen
//! steps, so the sentinel → rollback → retry path runs end to end under
//! CI. Faults are **one-shot**: once taken they do not re-fire, so a
//! post-rollback retry of the same steps proceeds clean, exactly like a
//! transient hardware fault.

/// What to corrupt. (Halo-exchange drops are injected inside
/// `apr-parallel` under its own `fault-injection` feature — message loss
/// is a property of the exchanger, not of engine state.)
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Poison one vertex of the `cell_index`-th live cell with NaN before
    /// the step, so the next membrane-force evaluation yields NaN forces
    /// that spread into the fluid — the classic membrane blow-up signature.
    MembraneNan {
        /// Index into the live-cell iteration order.
        cell_index: usize,
        /// Vertex whose position is poisoned.
        vertex: usize,
    },
    /// Scale one lattice node's distributions by `magnitude` (a large
    /// value models a bit-flip in the state arrays).
    DistributionCorrupt {
        /// Flat node index on the fine lattice.
        node: usize,
        /// Multiplier applied to all 19 distributions.
        magnitude: f64,
    },
    /// Drain a small fraction of one fine-lattice node's distributions
    /// (`fraction` in (0, 1), e.g. 0.1 removes 10% of that node's mass).
    /// Unlike [`FaultKind::DistributionCorrupt`] the post-fault state is
    /// *numerically healthy* — density stays finite and in range, Mach
    /// stays low — so only the conservation ledger's mass accounting can
    /// catch it. Exists to prove the physics-drift trip path end to end.
    MassLeak {
        /// Flat node index on the fine lattice.
        node: usize,
        /// Fraction of the node's mass removed.
        fraction: f64,
    },
}

/// A fault scheduled for a specific step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fault {
    /// Engine step (1-based, i.e. the value `steps()` will have *after*
    /// the step in which the fault fires) at which to inject.
    pub step: u64,
    /// The corruption to apply.
    pub kind: FaultKind,
}

/// A schedule of one-shot faults.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    faults: Vec<Fault>,
    fired: usize,
}

use crate::codec::splitmix64;

impl FaultPlan {
    /// New empty plan (injects nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Deterministically derive a chaos schedule from a single seed, so a
    /// failing chaos run is reproducible from one logged `u64`.
    ///
    /// The schedule places `count` faults at distinct steps drawn from
    /// `1..=max_step`, alternating membrane-NaN and distribution-corrupt
    /// kinds, with cell/vertex/node indices bounded by `cells`/`nodes`.
    /// The same `(seed, max_step, count, cells, nodes)` always yields the
    /// same plan, bit for bit.
    pub fn from_seed(seed: u64, max_step: u64, count: usize, cells: usize, nodes: usize) -> Self {
        let mut plan = Self::new();
        let mut state = seed;
        let mut used = std::collections::BTreeSet::new();
        for k in 0..count {
            let mut step = 1 + splitmix64(&mut state) % max_step.max(1);
            while !used.insert(step) {
                step = 1 + splitmix64(&mut state) % max_step.max(1);
            }
            let kind = if k % 2 == 0 && cells > 0 {
                FaultKind::MembraneNan {
                    cell_index: (splitmix64(&mut state) % cells.max(1) as u64) as usize,
                    vertex: (splitmix64(&mut state) % 8) as usize,
                }
            } else {
                FaultKind::DistributionCorrupt {
                    node: (splitmix64(&mut state) % nodes.max(1) as u64) as usize,
                    magnitude: 1e6 + (splitmix64(&mut state) % 1000) as f64 * 1e6,
                }
            };
            plan.schedule(step, kind);
        }
        plan
    }

    /// Schedule a fault.
    pub fn schedule(&mut self, step: u64, kind: FaultKind) -> &mut Self {
        self.faults.push(Fault { step, kind });
        self
    }

    /// Remove and return every fault due at `step`. Each fault fires at
    /// most once for the whole plan's lifetime — a rolled-back re-run of
    /// the same step stays clean.
    pub fn take_due(&mut self, step: u64) -> Vec<Fault> {
        let mut due = Vec::new();
        self.faults.retain(|f| {
            if f.step == step {
                due.push(*f);
                false
            } else {
                true
            }
        });
        self.fired += due.len();
        due
    }

    /// Faults injected so far.
    pub fn fired_count(&self) -> usize {
        self.fired
    }

    /// Faults still pending.
    pub fn pending_count(&self) -> usize {
        self.faults.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_reproducible_and_distinct() {
        let a = FaultPlan::from_seed(42, 100, 6, 10, 4096);
        let b = FaultPlan::from_seed(42, 100, 6, 10, 4096);
        assert_eq!(a.faults, b.faults, "same seed must give the same plan");
        let c = FaultPlan::from_seed(43, 100, 6, 10, 4096);
        assert_ne!(a.faults, c.faults, "different seeds must differ");
        assert_eq!(a.pending_count(), 6);
        // All steps distinct and within range; all indices in bounds.
        let mut steps: Vec<u64> = a.faults.iter().map(|f| f.step).collect();
        steps.sort_unstable();
        steps.dedup();
        assert_eq!(steps.len(), 6);
        for f in &a.faults {
            assert!((1..=100).contains(&f.step));
            match f.kind {
                FaultKind::MembraneNan { cell_index, .. } => assert!(cell_index < 10),
                FaultKind::DistributionCorrupt { node, .. } => assert!(node < 4096),
                FaultKind::MassLeak { node, .. } => assert!(node < 4096),
            }
        }
    }

    #[test]
    fn faults_fire_once_at_their_step() {
        let mut plan = FaultPlan::new();
        plan.schedule(
            10,
            FaultKind::MembraneNan {
                cell_index: 0,
                vertex: 3,
            },
        )
        .schedule(
            10,
            FaultKind::DistributionCorrupt {
                node: 2,
                magnitude: 1e9,
            },
        )
        .schedule(
            20,
            FaultKind::DistributionCorrupt {
                node: 5,
                magnitude: 1e6,
            },
        );
        assert!(plan.take_due(9).is_empty());
        let due = plan.take_due(10);
        assert_eq!(due.len(), 2);
        // One-shot: replaying step 10 after a rollback injects nothing.
        assert!(plan.take_due(10).is_empty());
        assert_eq!(plan.pending_count(), 1);
        assert_eq!(plan.fired_count(), 2);
        assert_eq!(plan.take_due(20).len(), 1);
        assert_eq!(plan.pending_count(), 0);
    }
}
