//! Rollback-and-retry policy and the structured recovery log.
//!
//! When the sentinel trips, the engine restores its last good checkpoint
//! and perturbs the retry so the same trajectory isn't replayed into the
//! same blow-up: the insertion RNG is reseeded and, optionally, the fine
//! relaxation time is tightened toward stability (raising τ raises the
//! lattice viscosity `ν = c_s²(τ − 1/2)`, paper Eq. 7, damping the
//! oscillations that caused the trip).

use crate::health::HealthReport;

/// Knobs for the rollback-and-retry loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Rollbacks allowed per incident before giving up. Progress (a
    /// healthy sentinel pass) resets the budget.
    pub max_retries: u32,
    /// Base for deriving fresh RNG seeds on retry; attempt `k` uses
    /// `reseed_base + k` so each retry explores a different insertion
    /// stream.
    pub reseed_base: u64,
    /// Multiply the fine lattice's τ excess over 1/2 by this factor on
    /// each retry (`None` = leave τ alone). Values > 1 raise viscosity
    /// and damp instabilities; 1.25 is a gentle default.
    pub tau_tighten: Option<f64>,
    /// Upper bound on τ when tightening (BGK accuracy degrades past ~2).
    pub tau_max: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 3,
            reseed_base: 0x9E37_79B9,
            tau_tighten: None,
            tau_max: 1.9,
        }
    }
}

impl RetryPolicy {
    /// Seed for retry attempt `k` (1-based).
    pub fn seed_for_attempt(&self, attempt: u32) -> u64 {
        self.reseed_base.wrapping_add(attempt as u64)
    }

    /// Tightened τ for a retry, clamped to `tau_max`. Identity when
    /// tightening is disabled.
    pub fn tighten_tau(&self, tau: f64) -> f64 {
        match self.tau_tighten {
            Some(factor) => (0.5 + (tau - 0.5) * factor).min(self.tau_max),
            None => tau,
        }
    }
}

/// What the guardian did about an unhealthy report.
#[derive(Debug, Clone, PartialEq)]
pub enum RecoveryAction {
    /// State restored from the last good checkpoint; RNG reseeded with the
    /// recorded seed; τ possibly tightened.
    RolledBack {
        /// Step the engine was rolled back to.
        restored_step: u64,
        /// New insertion-RNG seed.
        new_seed: u64,
        /// Fine-lattice τ after tightening (equal to before when
        /// tightening is off).
        fine_tau: f64,
    },
    /// Retry budget exhausted; the incident was fatal.
    GaveUp,
}

/// One recovery incident: the report that tripped and what was done.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryEvent {
    /// Step at which the sentinel tripped.
    pub step: u64,
    /// Retry attempt number within the current incident (1-based).
    pub attempt: u32,
    /// The failing health report.
    pub report: HealthReport,
    /// Action taken.
    pub action: RecoveryAction,
}

/// Append-only log of recovery incidents for post-mortem analysis.
#[derive(Debug, Clone, Default)]
pub struct RecoveryLog {
    /// Events in chronological order.
    pub events: Vec<RecoveryEvent>,
}

impl RecoveryLog {
    /// New empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record an event.
    pub fn record(&mut self, event: RecoveryEvent) {
        self.events.push(event);
    }

    /// Number of rollbacks performed over the whole run.
    pub fn rollback_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.action, RecoveryAction::RolledBack { .. }))
            .count()
    }

    /// Human-readable one-line-per-event summary.
    pub fn summary(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for e in &self.events {
            match &e.action {
                RecoveryAction::RolledBack {
                    restored_step,
                    new_seed,
                    fine_tau,
                } => {
                    let _ = writeln!(
                        out,
                        "step {}: {} issue(s), attempt {} -> rolled back to step {} (seed {:#x}, fine tau {:.4})",
                        e.step,
                        e.report.issues.len(),
                        e.attempt,
                        restored_step,
                        new_seed,
                        fine_tau
                    );
                }
                RecoveryAction::GaveUp => {
                    let _ = writeln!(
                        out,
                        "step {}: {} issue(s), attempt {} -> gave up",
                        e.step,
                        e.report.issues.len(),
                        e.attempt
                    );
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::health::HealthIssue;

    #[test]
    fn tau_tightening_raises_and_clamps() {
        let p = RetryPolicy {
            tau_tighten: Some(2.0),
            tau_max: 1.5,
            ..RetryPolicy::default()
        };
        // 0.6 -> 0.5 + 0.1*2 = 0.7
        assert!((p.tighten_tau(0.6) - 0.7).abs() < 1e-12);
        // clamp at tau_max
        assert_eq!(p.tighten_tau(1.4), 1.5);
        // disabled => identity
        let off = RetryPolicy {
            tau_tighten: None,
            ..RetryPolicy::default()
        };
        assert_eq!(off.tighten_tau(0.6), 0.6);
    }

    #[test]
    fn seeds_differ_per_attempt() {
        let p = RetryPolicy::default();
        assert_ne!(p.seed_for_attempt(1), p.seed_for_attempt(2));
    }

    #[test]
    fn log_counts_and_summarizes() {
        let mut log = RecoveryLog::new();
        let report = HealthReport {
            step: 120,
            issues: vec![HealthIssue::CellNonFinite { cell_id: 7 }],
        };
        log.record(RecoveryEvent {
            step: 120,
            attempt: 1,
            report: report.clone(),
            action: RecoveryAction::RolledBack {
                restored_step: 100,
                new_seed: 42,
                fine_tau: 0.8,
            },
        });
        log.record(RecoveryEvent {
            step: 140,
            attempt: 4,
            report,
            action: RecoveryAction::GaveUp,
        });
        assert_eq!(log.rollback_count(), 1);
        let s = log.summary();
        assert!(s.contains("rolled back to step 100"), "{s}");
        assert!(s.contains("gave up"), "{s}");
    }
}
