//! Full-state serializers for the engine building blocks: lattices and
//! cell pools.
//!
//! These produce *section payloads* for the [`crate::checkpoint`]
//! container — raw codec bytes without their own magic/CRC, since the
//! container supplies both. Everything needed for a **bit-identical**
//! resume is captured:
//!
//! * Lattice: dimensions, periodicity, τ (global and per-node field),
//!   body force, step counter, distributions, macroscopic fields, forces.
//!   Flags/geometry are *not* stored — the restart rebuilds the domain
//!   from its generator or geometry callback, then loads state (the same
//!   contract as the v1 lattice checkpoint).
//! * Cell pool: every slot verbatim (dead slots included), the free-list
//!   stack in exact order (it decides future slot assignment and thus
//!   iteration and float-summation order), global-ID counter, lifetime
//!   counters, and per-cell vertex positions/velocities/forces.
//!
//! Membranes are shared models, not per-cell state, so cells are restored
//! against membranes supplied by a [`MembraneProvider`].

use crate::codec::{ByteReader, ByteWriter};
use crate::error::GuardError;
use apr_cells::{Cell, CellKind, CellPool};
use apr_lattice::{Lattice, Q};
use apr_membrane::Membrane;
use std::sync::Arc;

/// Supplies the shared membrane model for each cell kind at restore time.
pub type MembraneProvider<'a> = &'a dyn Fn(CellKind) -> Option<Arc<Membrane>>;

/// Serialize a lattice's complete fluid state.
pub fn write_lattice(lat: &Lattice) -> Vec<u8> {
    let mut w = ByteWriter::new();
    // Distributions dominate; one exact-ish reservation avoids doubling
    // reallocs copying megabytes of already-written payload.
    let nodes = lat.node_count();
    w.reserve(nodes * (Q + 8) * 8 + 256);
    w.usize(lat.nx);
    w.usize(lat.ny);
    w.usize(lat.nz);
    for a in 0..3 {
        w.bool(lat.periodic[a]);
    }
    w.f64(lat.tau);
    for a in 0..3 {
        w.f64(lat.body_force[a]);
    }
    w.u64(lat.steps_taken());
    // Raw slot-order storage (not per-direction accessors): the engine may
    // checkpoint between the halves of a step, when the fused kernel holds
    // fluid nodes direction-reversed. The phase flags written at the end
    // let the restore validate it lands on a compatible kernel.
    w.f64s(lat.storage_f());
    w.f64s(&lat.rho);
    w.f64s(&lat.vel);
    w.f64s(&lat.force);
    match lat.tau_field() {
        Some(field) => {
            w.bool(true);
            w.f64s(field);
        }
        None => w.bool(false),
    }
    w.bool(lat.mid_step());
    w.bool(lat.swap_parity());
    w.into_bytes()
}

/// Restore lattice state written by [`write_lattice`] into `lat`, which
/// must already have the same dimensions and geometry flags.
pub fn read_lattice(lat: &mut Lattice, r: &mut ByteReader<'_>) -> Result<(), GuardError> {
    let (nx, ny, nz) = (r.usize()?, r.usize()?, r.usize()?);
    if nx != lat.nx || ny != lat.ny || nz != lat.nz {
        return Err(GuardError::Format(format!(
            "lattice dimension mismatch: checkpoint {nx}x{ny}x{nz} vs live {}x{}x{}",
            lat.nx, lat.ny, lat.nz
        )));
    }
    for a in 0..3 {
        lat.periodic[a] = r.bool()?;
    }
    lat.tau = r.f64()?;
    for a in 0..3 {
        lat.body_force[a] = r.f64()?;
    }
    lat.set_steps_taken(r.u64()?);
    let n = lat.node_count();
    let f = r.f64s()?;
    if f.len() != n * Q {
        return Err(GuardError::Format(format!(
            "distribution count {} != {}",
            f.len(),
            n * Q
        )));
    }
    lat.rho = read_field(r, n, "rho")?;
    lat.vel = read_field(r, n * 3, "vel")?;
    lat.force = read_field(r, n * 3, "force")?;
    lat.set_tau_field(if r.bool()? {
        Some(read_field(r, n, "tau field")?)
    } else {
        None
    });
    let pending = r.bool()?;
    let parity = r.bool()?;
    lat.restore_storage(f, pending, parity)
        .map_err(GuardError::Format)?;
    Ok(())
}

fn read_field(r: &mut ByteReader<'_>, expect: usize, name: &str) -> Result<Vec<f64>, GuardError> {
    let v = r.f64s()?;
    if v.len() != expect {
        return Err(GuardError::Format(format!(
            "{name} length {} != expected {expect}",
            v.len()
        )));
    }
    Ok(v)
}

fn kind_to_u8(kind: CellKind) -> u8 {
    match kind {
        CellKind::Rbc => 0,
        CellKind::Ctc => 1,
    }
}

fn kind_from_u8(b: u8) -> Result<CellKind, GuardError> {
    match b {
        0 => Ok(CellKind::Rbc),
        1 => Ok(CellKind::Ctc),
        other => Err(GuardError::Format(format!(
            "unknown cell kind byte {other:#04x}"
        ))),
    }
}

/// Serialize a cell pool's complete layout and per-cell state.
pub fn write_pool(pool: &CellPool) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.usize(pool.capacity());
    for slot in 0..pool.capacity() {
        match pool.get(slot) {
            Some(cell) => {
                w.bool(true);
                w.u64(cell.id);
                w.u8(kind_to_u8(cell.kind));
                w.vec3s(&cell.vertices);
                w.vec3s(&cell.velocities);
                w.vec3s(&cell.forces);
            }
            None => w.bool(false),
        }
    }
    let free: Vec<u64> = pool.free_slots().iter().map(|&s| s as u64).collect();
    w.usize(free.len());
    for s in free {
        w.u64(s);
    }
    w.u64(pool.next_id());
    w.usize(pool.peak_live());
    w.u64(pool.total_inserted());
    w.u64(pool.total_removed());
    w.into_bytes()
}

/// Rebuild a pool written by [`write_pool`]. `membranes` supplies the
/// shared membrane model per cell kind; a stored kind with no model is a
/// [`GuardError::MissingContext`].
pub fn read_pool(
    r: &mut ByteReader<'_>,
    membranes: MembraneProvider<'_>,
) -> Result<CellPool, GuardError> {
    let capacity = r.usize()?;
    let mut slots: Vec<Option<Cell>> = Vec::with_capacity(capacity);
    for _ in 0..capacity {
        if !r.bool()? {
            slots.push(None);
            continue;
        }
        let id = r.u64()?;
        let kind = kind_from_u8(r.u8()?)?;
        let vertices = r.vec3s()?;
        let velocities = r.vec3s()?;
        let forces = r.vec3s()?;
        let membrane = membranes(kind).ok_or_else(|| {
            GuardError::MissingContext(format!("no membrane model for stored {kind:?} cell {id}"))
        })?;
        if vertices.len() != membrane.reference.vertex_count
            || velocities.len() != vertices.len()
            || forces.len() != vertices.len()
        {
            return Err(GuardError::Format(format!(
                "cell {id}: vertex arrays ({}, {}, {}) inconsistent with membrane ({})",
                vertices.len(),
                velocities.len(),
                forces.len(),
                membrane.reference.vertex_count
            )));
        }
        slots.push(Some(Cell::from_parts(
            id, kind, membrane, vertices, velocities, forces,
        )));
    }
    let free_len = r.usize()?;
    let mut free = Vec::with_capacity(free_len);
    for _ in 0..free_len {
        free.push(r.u64()? as usize);
    }
    let next_id = r.u64()?;
    let peak_live = r.usize()?;
    let total_inserted = r.u64()?;
    let total_removed = r.u64()?;
    // Validate layout consistency ourselves so corruption surfaces as a
    // typed error instead of from_raw_parts' panic.
    let empty = slots.iter().filter(|s| s.is_none()).count();
    if free.len() != empty
        || free.iter().any(|&s| s >= slots.len() || slots[s].is_some())
        || slots.iter().flatten().any(|c| c.id >= next_id)
    {
        return Err(GuardError::Format("pool layout inconsistent".into()));
    }
    {
        let mut seen = vec![false; slots.len()];
        for &s in &free {
            if seen[s] {
                return Err(GuardError::Format(format!("free slot {s} listed twice")));
            }
            seen[s] = true;
        }
    }
    Ok(CellPool::from_raw_parts(
        slots,
        free,
        next_id,
        peak_live,
        total_inserted,
        total_removed,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use apr_lattice::couette_channel;
    use apr_membrane::{MembraneMaterial, ReferenceState};
    use apr_mesh::{icosphere, Vec3};

    #[test]
    fn lattice_state_round_trips_bit_exactly() {
        let mut a = couette_channel(6, 10, 6, 0.9, 0.03);
        a.set_tau_at(17, 0.95);
        for _ in 0..40 {
            a.step();
        }
        let blob = write_lattice(&a);
        let mut b = couette_channel(6, 10, 6, 0.9, 0.03);
        read_lattice(&mut b, &mut ByteReader::new(&blob)).unwrap();
        assert_eq!(b.steps_taken(), a.steps_taken());
        assert_eq!(b.tau_field().unwrap()[17], 0.95);
        for node in 0..a.node_count() {
            assert_eq!(a.distributions(node), b.distributions(node), "node {node}");
        }
        assert_eq!(a.rho, b.rho);
        assert_eq!(a.vel, b.vel);
    }

    #[test]
    fn lattice_dimension_mismatch_is_typed() {
        let a = couette_channel(6, 10, 6, 0.9, 0.03);
        let blob = write_lattice(&a);
        let mut b = couette_channel(8, 10, 6, 0.9, 0.03);
        assert!(matches!(
            read_lattice(&mut b, &mut ByteReader::new(&blob)),
            Err(GuardError::Format(_))
        ));
    }

    fn membrane() -> Arc<Membrane> {
        let mesh = icosphere(1, 1.0);
        let re = Arc::new(ReferenceState::build(&mesh));
        Arc::new(Membrane::new(re, MembraneMaterial::rbc(1.0, 0.01)))
    }

    #[test]
    fn pool_round_trip_preserves_ids_layout_and_state() {
        let mem = membrane();
        let verts = icosphere(1, 1.0).vertices;
        let mut pool = CellPool::with_capacity(4);
        let (s0, _) = pool.insert_shape(CellKind::Rbc, Arc::clone(&mem), verts.clone());
        let (_, ctc_id) = pool.insert_shape(CellKind::Ctc, Arc::clone(&mem), verts.clone());
        pool.insert_shape(CellKind::Rbc, Arc::clone(&mem), verts.clone());
        pool.remove(s0);
        // Give a surviving cell distinctive dynamic state.
        if let Some(c) = pool.get_mut(1) {
            c.velocities[0] = Vec3::new(0.5, -0.25, 0.125);
            c.forces[2] = Vec3::splat(1e-3);
        }

        let blob = write_pool(&pool);
        let provider = move |_: CellKind| Some(Arc::clone(&mem));
        let mut back = read_pool(&mut ByteReader::new(&blob), &provider).unwrap();

        assert_eq!(back.live_count(), pool.live_count());
        assert_eq!(back.next_id(), pool.next_id());
        assert_eq!(back.free_slots(), pool.free_slots());
        assert_eq!(back.total_inserted(), pool.total_inserted());
        assert!(back.find_by_id(ctc_id).is_some());
        let c = back.get(1).unwrap();
        assert_eq!(c.velocities[0], Vec3::new(0.5, -0.25, 0.125));
        assert_eq!(c.forces[2], Vec3::splat(1e-3));
        // Future insertions behave identically (free-list order preserved).
        let m2 = membrane();
        let (slot, _) = back.insert_shape(CellKind::Rbc, m2, verts);
        assert_eq!(slot, s0, "restored pool must reuse the same freed slot");
    }

    #[test]
    fn missing_membrane_is_a_context_error() {
        let mem = membrane();
        let verts = icosphere(1, 1.0).vertices;
        let mut pool = CellPool::with_capacity(2);
        pool.insert_shape(CellKind::Ctc, mem, verts);
        let blob = write_pool(&pool);
        let provider = |_: CellKind| None;
        assert!(matches!(
            read_pool(&mut ByteReader::new(&blob), &provider),
            Err(GuardError::MissingContext(_))
        ));
    }
}
