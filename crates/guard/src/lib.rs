//! Simulation guardian for the APR reproduction.
//!
//! Long campaigns (the paper's Figure 9 CTC transport ran for days) need
//! to survive numerical blow-ups and infrastructure faults. This crate
//! provides the engine-agnostic pieces:
//!
//! * [`codec`] — dependency-free little-endian binary codec + CRC32.
//! * [`checkpoint`] — versioned, per-section CRC-protected checkpoint
//!   container with atomic file writes.
//! * [`health`] — the divergence sentinel: density/Mach/finiteness checks
//!   over lattices, membrane meshes and hematocrit, returning a typed
//!   [`HealthReport`].
//! * [`store`] — checkpoint placement: in-memory blob store for the serve
//!   scheduler's preempt hot path, directory store for durable campaigns.
//! * [`recovery`] — rollback-and-retry policy (reseed, optional τ
//!   tightening via Eq. 7) and a structured [`RecoveryLog`].
//! * [`fault`] *(feature `fault-injection`)* — deterministic one-shot
//!   fault schedules for exercising the recovery path in tests.
//!
//! The engine-specific serialization (full `AprEngine`/`EfsiEngine`
//! state) lives in `apr-core::guardian`, built on these primitives.

pub mod checkpoint;
pub mod codec;
pub mod error;
#[cfg(feature = "fault-injection")]
pub mod fault;
pub mod health;
pub mod recovery;
pub mod state;
pub mod store;

pub use checkpoint::{read_file, write_atomic, CheckpointReader, CheckpointWriter, FORMAT_VERSION};
pub use codec::{crc32, splitmix64, ByteReader, ByteWriter};
pub use error::GuardError;
#[cfg(feature = "fault-injection")]
pub use fault::{Fault, FaultKind, FaultPlan};
pub use health::{
    check_hematocrit, check_lattice, check_pool, HealthIssue, HealthReport, SentinelConfig,
};
pub use recovery::{RecoveryAction, RecoveryEvent, RecoveryLog, RetryPolicy};
pub use state::{read_lattice, read_pool, write_lattice, write_pool, MembraneProvider};
pub use store::{CheckpointStore, FileStore, MemoryStore};
