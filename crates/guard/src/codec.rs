//! Little-endian binary codec and CRC32 used by the checkpoint container.
//!
//! Deliberately dependency-free: the build environment is offline, and the
//! paper's own restart files are plain binary dumps, so a small hand-rolled
//! writer/reader pair is both sufficient and auditable.

use crate::error::GuardError;
use apr_mesh::Vec3;

/// CRC32 (IEEE 802.3, reflected polynomial 0xEDB88320) over `data`.
///
/// Table-driven (slicing-by-16), computed lazily once. This is the same
/// checksum gzip/PNG use, so checkpoints can be cross-checked with
/// standard tools. The 16-way sliced kernel processes 16 input bytes per
/// iteration — the sealed halo-message path checksums every exchanged
/// slab per step and buddy checkpoints checksum megabytes per rank, so
/// this routine must run at memory-bandwidth-ish speed, not one table
/// lookup per byte.
pub fn crc32(data: &[u8]) -> u32 {
    crc32_update(0, data)
}

/// Minimal splitmix64 step — the deterministic generator behind the
/// seeded fault/chaos schedules here and in `apr-parallel`. Kept
/// dependency-free on purpose: a chaos run must be reproducible from the
/// single logged seed on any build.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn crc_tables() -> &'static [[u32; 256]; 16] {
    static TABLES: std::sync::OnceLock<[[u32; 256]; 16]> = std::sync::OnceLock::new();
    TABLES.get_or_init(|| {
        let mut t = [[0u32; 256]; 16];
        for (i, entry) in t[0].iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *entry = c;
        }
        for k in 1..16 {
            for i in 0..256usize {
                let prev = t[k - 1][i];
                t[k][i] = (prev >> 8) ^ t[0][(prev & 0xFF) as usize];
            }
        }
        t
    })
}

/// Continue a CRC32 from a previous value (for streaming over sections).
pub fn crc32_update(crc: u32, data: &[u8]) -> u32 {
    let t = crc_tables();
    let mut c = !crc;
    let mut chunks = data.chunks_exact(16);
    for d in &mut chunks {
        let lo = u32::from_le_bytes([d[0], d[1], d[2], d[3]]) ^ c;
        c = t[15][(lo & 0xFF) as usize]
            ^ t[14][((lo >> 8) & 0xFF) as usize]
            ^ t[13][((lo >> 16) & 0xFF) as usize]
            ^ t[12][((lo >> 24) & 0xFF) as usize]
            ^ t[11][d[4] as usize]
            ^ t[10][d[5] as usize]
            ^ t[9][d[6] as usize]
            ^ t[8][d[7] as usize]
            ^ t[7][d[8] as usize]
            ^ t[6][d[9] as usize]
            ^ t[5][d[10] as usize]
            ^ t[4][d[11] as usize]
            ^ t[3][d[12] as usize]
            ^ t[2][d[13] as usize]
            ^ t[1][d[14] as usize]
            ^ t[0][d[15] as usize];
    }
    for &b in chunks.remainder() {
        c = t[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// Growable little-endian byte sink.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// New empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Finish, returning the accumulated bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Pre-size the buffer for `additional` more bytes — worthwhile before
    /// multi-megabyte lattice dumps, where doubling reallocs would copy
    /// the payload an extra time.
    pub fn reserve(&mut self, additional: usize) {
        self.buf.reserve(additional);
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append raw bytes.
    pub fn bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    /// Append one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a little-endian u32.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian u64.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a usize as u64 (portable across word sizes).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Append a bool as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    /// Append a little-endian f64 (bit pattern, exact round trip).
    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a slice of f64s, length-prefixed.
    pub fn f64s(&mut self, vs: &[f64]) {
        self.usize(vs.len());
        #[cfg(target_endian = "little")]
        {
            // The wire format is little-endian, so on LE hosts the
            // in-memory layout already matches — one bulk copy instead of
            // per-element encoding. This is the hot path for lattice
            // checkpoints (megabytes of distributions per rank).
            let bytes = unsafe {
                std::slice::from_raw_parts(vs.as_ptr().cast::<u8>(), std::mem::size_of_val(vs))
            };
            self.buf.extend_from_slice(bytes);
        }
        #[cfg(not(target_endian = "little"))]
        for &v in vs {
            self.f64(v);
        }
    }

    /// Append a [`Vec3`] as three f64s.
    pub fn vec3(&mut self, v: Vec3) {
        self.f64(v.x);
        self.f64(v.y);
        self.f64(v.z);
    }

    /// Append a slice of [`Vec3`]s, length-prefixed.
    pub fn vec3s(&mut self, vs: &[Vec3]) {
        self.usize(vs.len());
        for &v in vs {
            self.vec3(v);
        }
    }

    /// Append a UTF-8 string, length-prefixed.
    pub fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.bytes(s.as_bytes());
    }
}

/// Cursor over checkpoint bytes; every read is bounds-checked and returns
/// a typed [`GuardError::Format`] on truncation.
#[derive(Debug)]
pub struct ByteReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// New reader over `data`.
    pub fn new(data: &'a [u8]) -> Self {
        Self { data, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Take `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], GuardError> {
        if self.remaining() < n {
            return Err(GuardError::Format(format!(
                "truncated: wanted {n} bytes, {} left",
                self.remaining()
            )));
        }
        let out = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, GuardError> {
        Ok(self.bytes(1)?[0])
    }

    /// Read a little-endian u32.
    pub fn u32(&mut self) -> Result<u32, GuardError> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().unwrap()))
    }

    /// Read a little-endian u64.
    pub fn u64(&mut self) -> Result<u64, GuardError> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }

    /// Read a usize stored as u64.
    pub fn usize(&mut self) -> Result<usize, GuardError> {
        let v = self.u64()?;
        usize::try_from(v)
            .map_err(|_| GuardError::Format(format!("length {v} exceeds this platform's usize")))
    }

    /// Read a bool stored as one byte.
    pub fn bool(&mut self) -> Result<bool, GuardError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(GuardError::Format(format!("invalid bool byte {b:#04x}"))),
        }
    }

    /// Read a little-endian f64.
    pub fn f64(&mut self) -> Result<f64, GuardError> {
        Ok(f64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }

    /// Read a length-prefixed f64 vector.
    pub fn f64s(&mut self) -> Result<Vec<f64>, GuardError> {
        let n = self.usize()?;
        self.checked_len(n, 8)?;
        let raw = self.bytes(n * 8)?;
        #[cfg(target_endian = "little")]
        {
            // Mirror of the writer's bulk path: LE hosts can memcpy the
            // wire bytes straight into the f64 buffer.
            let mut out = vec![0.0f64; n];
            unsafe {
                std::ptr::copy_nonoverlapping(raw.as_ptr(), out.as_mut_ptr().cast::<u8>(), n * 8);
            }
            Ok(out)
        }
        #[cfg(not(target_endian = "little"))]
        raw.chunks_exact(8)
            .map(|c| Ok(f64::from_le_bytes(c.try_into().unwrap())))
            .collect()
    }

    /// Read a [`Vec3`].
    pub fn vec3(&mut self) -> Result<Vec3, GuardError> {
        Ok(Vec3::new(self.f64()?, self.f64()?, self.f64()?))
    }

    /// Read a length-prefixed [`Vec3`] vector.
    pub fn vec3s(&mut self) -> Result<Vec<Vec3>, GuardError> {
        let n = self.usize()?;
        self.checked_len(n, 24)?;
        (0..n).map(|_| self.vec3()).collect()
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, GuardError> {
        let n = self.usize()?;
        let b = self.bytes(n)?;
        String::from_utf8(b.to_vec())
            .map_err(|e| GuardError::Format(format!("invalid UTF-8 string: {e}")))
    }

    /// Reject length prefixes that overrun the buffer before allocating.
    fn checked_len(&self, n: usize, elem: usize) -> Result<(), GuardError> {
        let need = n.checked_mul(elem).ok_or_else(|| {
            GuardError::Format(format!("length {n} overflows element size {elem}"))
        })?;
        if need > self.remaining() {
            return Err(GuardError::Format(format!(
                "length prefix {n} needs {need} bytes but only {} remain",
                self.remaining()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        // Streaming over two chunks equals one pass.
        let one = crc32(b"hello world");
        let two = crc32_update(crc32(b"hello "), b"world");
        assert_eq!(one, two);
    }

    #[test]
    fn sliced_crc_matches_bytewise_reference_at_every_alignment() {
        // Independent one-bit-at-a-time reference.
        fn reference(data: &[u8]) -> u32 {
            let mut c = !0u32;
            for &b in data {
                c ^= b as u32;
                for _ in 0..8 {
                    c = if c & 1 != 0 {
                        0xEDB8_8320 ^ (c >> 1)
                    } else {
                        c >> 1
                    };
                }
            }
            !c
        }
        let data: Vec<u8> = (0..257u32)
            .map(|i| (i.wrapping_mul(167) >> 3) as u8)
            .collect();
        for len in 0..data.len() {
            assert_eq!(crc32(&data[..len]), reference(&data[..len]), "len {len}");
        }
        // Streaming split at an odd offset equals one pass.
        assert_eq!(crc32_update(crc32(&data[..13]), &data[13..]), crc32(&data));
    }

    #[test]
    fn round_trip_all_primitives() {
        let mut w = ByteWriter::new();
        w.u8(7);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 1);
        w.bool(true);
        w.f64(-0.1);
        w.f64s(&[1.5, f64::NAN, 3.0]);
        w.vec3(Vec3::new(1.0, 2.0, 3.0));
        w.vec3s(&[Vec3::ZERO, Vec3::splat(9.0)]);
        w.str("τ=0.8");
        let bytes = w.into_bytes();

        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert!(r.bool().unwrap());
        assert_eq!(r.f64().unwrap(), -0.1);
        let fs = r.f64s().unwrap();
        assert_eq!(fs[0], 1.5);
        assert!(fs[1].is_nan(), "NaN must survive bit-exactly");
        assert_eq!(r.vec3().unwrap(), Vec3::new(1.0, 2.0, 3.0));
        assert_eq!(r.vec3s().unwrap(), vec![Vec3::ZERO, Vec3::splat(9.0)]);
        assert_eq!(r.str().unwrap(), "τ=0.8");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn truncation_is_a_typed_error() {
        let mut w = ByteWriter::new();
        w.u64(3);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        // Claims 3 f64s but has none.
        assert!(matches!(r.f64s(), Err(GuardError::Format(_))));
    }

    #[test]
    fn absurd_length_prefix_is_rejected_before_allocation() {
        let mut w = ByteWriter::new();
        w.u64(u64::MAX / 2);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(r.vec3s(), Err(GuardError::Format(_))));
    }
}
