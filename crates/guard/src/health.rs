//! Divergence sentinel: cheap invariant checks run every N steps.
//!
//! LBM instability (τ too close to 1/2, excessive Mach, runaway membrane
//! forces) announces itself through a small set of signals well before the
//! state is fully NaN: densities drift out of range, lattice velocities
//! approach the speed of sound, membrane vertices leave the finite range.
//! The sentinel samples those signals and returns a typed [`HealthReport`]
//! that the recovery layer turns into a rollback decision.

use apr_cells::CellPool;
use apr_lattice::{Lattice, NodeClass};

/// Lattice speed of sound for D3Q19, `c_s = 1/√3`.
const CS: f64 = 0.577_350_269_189_625_8;

/// What the sentinel checks and how aggressively it samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SentinelConfig {
    /// Maximum tolerated lattice Mach number `|u|/c_s`. The low-Mach
    /// expansion behind LBM degrades beyond ≈0.3; default trips at 0.7,
    /// well into "this run is garbage" territory but before overflow.
    pub max_mach: f64,
    /// Minimum tolerated lattice density (ρ₀ = 1).
    pub min_rho: f64,
    /// Maximum tolerated lattice density.
    pub max_rho: f64,
    /// Hematocrit sanity window (volume fraction) when a controller runs.
    pub ht_range: (f64, f64),
    /// Check every `sample_stride`-th fluid node (1 = every node). Keeps
    /// the sentinel cost a fixed small fraction of a step.
    pub sample_stride: usize,
    /// Stop after this many issues (a diverged lattice would otherwise
    /// produce one issue per node).
    pub max_issues: usize,
}

impl Default for SentinelConfig {
    fn default() -> Self {
        Self {
            max_mach: 0.7,
            min_rho: 0.2,
            max_rho: 5.0,
            ht_range: (0.0, 0.7),
            sample_stride: 4,
            max_issues: 16,
        }
    }
}

/// One detected invariant violation.
#[derive(Debug, Clone, PartialEq)]
pub enum HealthIssue {
    /// A lattice node's density is NaN or infinite.
    NonFiniteDensity {
        /// Flat node index.
        node: usize,
    },
    /// A lattice node's density left `[min_rho, max_rho]`.
    DensityOutOfRange {
        /// Flat node index.
        node: usize,
        /// Observed density.
        rho: f64,
    },
    /// A lattice node's velocity is NaN or infinite.
    NonFiniteVelocity {
        /// Flat node index.
        node: usize,
    },
    /// A lattice node's Mach number exceeded the bound.
    MachExceeded {
        /// Flat node index.
        node: usize,
        /// Observed Mach number.
        mach: f64,
    },
    /// A membrane mesh has non-finite vertices (cell blew up).
    CellNonFinite {
        /// Global cell ID.
        cell_id: u64,
    },
    /// Window hematocrit outside the configured sanity range.
    HematocritOutOfRange {
        /// Observed hematocrit.
        ht: f64,
    },
    /// The engine step itself panicked (e.g. a degenerate membrane
    /// triangle reached a normalization). The guardian downgrades the
    /// panic to a report so the rollback path can handle it like any
    /// other divergence.
    StepPanicked {
        /// The panic payload, when it carried a message.
        message: String,
    },
    /// A halo exchange exhausted its resend budget and froze ghost values
    /// instead of aborting: the affected rank is running on stale
    /// neighbour data. Raised by the distributed resilience layer so the
    /// sentinel/flight-recorder path fires even though no lattice
    /// invariant has (yet) been violated.
    HaloDegraded {
        /// Rank whose ghost layer was frozen.
        rank: usize,
        /// Number of faces left stale in the incident.
        frozen_faces: u32,
    },
    /// A rank died (panic, kill, or heartbeat stall) and was recovered —
    /// or could not be. Recorded so campaign post-mortems list rank-level
    /// incidents next to numerical ones.
    RankLost {
        /// The rank that went down.
        rank: usize,
    },
    /// A conserved quantity drifted past its ledger tolerance: total mass
    /// or momentum changed step-over-step by more than the window/bulk
    /// coupling can account for. Raised by the conservation ledger
    /// (`apr-observe`), not by node-local scans — it catches *physics*
    /// regressions (a mass leak, a broken fill/capture flux) whose state
    /// is still perfectly finite, which the NaN/Mach checks above never
    /// see.
    ConservationDrift {
        /// Which quantity drifted (`"bulk_mass"`, `"window_mass"`,
        /// `"window_momentum"`, `"hematocrit"`).
        quantity: &'static str,
        /// Observed drift (relative for mass, absolute for momentum and
        /// hematocrit).
        observed: f64,
        /// The configured tolerance it exceeded.
        tolerance: f64,
        /// Step at which the ledger measured the drift.
        step: u64,
    },
}

impl HealthIssue {
    /// Stable short tag for telemetry/event streams.
    pub fn kind(&self) -> &'static str {
        match self {
            HealthIssue::NonFiniteDensity { .. } => "non_finite_density",
            HealthIssue::DensityOutOfRange { .. } => "density_out_of_range",
            HealthIssue::NonFiniteVelocity { .. } => "non_finite_velocity",
            HealthIssue::MachExceeded { .. } => "mach_exceeded",
            HealthIssue::CellNonFinite { .. } => "cell_non_finite",
            HealthIssue::HematocritOutOfRange { .. } => "hematocrit_out_of_range",
            HealthIssue::StepPanicked { .. } => "step_panicked",
            HealthIssue::HaloDegraded { .. } => "halo_degraded",
            HealthIssue::RankLost { .. } => "rank_lost",
            HealthIssue::ConservationDrift { .. } => "conservation_drift",
        }
    }
}

/// Sentinel verdict for one inspection.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HealthReport {
    /// Simulation step the inspection ran at.
    pub step: u64,
    /// Issues found (empty = healthy). Truncated at
    /// [`SentinelConfig::max_issues`].
    pub issues: Vec<HealthIssue>,
}

impl HealthReport {
    /// True when no invariant was violated.
    pub fn is_healthy(&self) -> bool {
        self.issues.is_empty()
    }
}

/// Scan a lattice's fluid nodes for density/velocity violations.
pub fn check_lattice(lat: &Lattice, cfg: &SentinelConfig, issues: &mut Vec<HealthIssue>) {
    let stride = cfg.sample_stride.max(1);
    let max_u = cfg.max_mach * CS;
    let max_u2 = max_u * max_u;
    for node in (0..lat.node_count()).step_by(stride) {
        if issues.len() >= cfg.max_issues {
            return;
        }
        if lat.flag(node) != NodeClass::Fluid {
            continue;
        }
        let rho = lat.rho[node];
        if !rho.is_finite() {
            issues.push(HealthIssue::NonFiniteDensity { node });
            continue;
        }
        if rho < cfg.min_rho || rho > cfg.max_rho {
            issues.push(HealthIssue::DensityOutOfRange { node, rho });
            continue;
        }
        let u = lat.velocity_at(node);
        let u2 = u[0] * u[0] + u[1] * u[1] + u[2] * u[2];
        if !u2.is_finite() {
            issues.push(HealthIssue::NonFiniteVelocity { node });
        } else if u2 > max_u2 {
            issues.push(HealthIssue::MachExceeded {
                node,
                mach: u2.sqrt() / CS,
            });
        }
    }
}

/// Scan every live cell's membrane mesh for non-finite vertices.
pub fn check_pool(pool: &CellPool, cfg: &SentinelConfig, issues: &mut Vec<HealthIssue>) {
    for cell in pool.iter() {
        if issues.len() >= cfg.max_issues {
            return;
        }
        if !cell.is_finite() {
            issues.push(HealthIssue::CellNonFinite { cell_id: cell.id });
        }
    }
}

/// Validate a hematocrit sample against the sanity window.
pub fn check_hematocrit(ht: f64, cfg: &SentinelConfig, issues: &mut Vec<HealthIssue>) {
    if !ht.is_finite() || ht < cfg.ht_range.0 || ht > cfg.ht_range.1 {
        issues.push(HealthIssue::HematocritOutOfRange { ht });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apr_lattice::couette_channel;

    #[test]
    fn healthy_flow_passes() {
        let mut lat = couette_channel(6, 10, 6, 0.9, 0.02);
        for _ in 0..50 {
            lat.step();
        }
        let cfg = SentinelConfig {
            sample_stride: 1,
            ..SentinelConfig::default()
        };
        let mut issues = Vec::new();
        check_lattice(&lat, &cfg, &mut issues);
        assert!(issues.is_empty(), "{issues:?}");
        check_hematocrit(0.25, &cfg, &mut issues);
        assert!(issues.is_empty());
    }

    #[test]
    fn nan_density_is_caught() {
        let mut lat = couette_channel(6, 10, 6, 0.9, 0.02);
        // Corrupt one interior node's macroscopic density.
        let node = lat.idx(3, 5, 3);
        lat.rho[node] = f64::NAN;
        let cfg = SentinelConfig {
            sample_stride: 1,
            ..SentinelConfig::default()
        };
        let mut issues = Vec::new();
        check_lattice(&lat, &cfg, &mut issues);
        assert!(
            issues.contains(&HealthIssue::NonFiniteDensity { node }),
            "{issues:?}"
        );
    }

    #[test]
    fn supersonic_velocity_is_caught() {
        let mut lat = couette_channel(6, 10, 6, 0.9, 0.02);
        let node = lat.idx(2, 4, 2);
        lat.vel[node * 3] = 1.0; // u = 1.0 ≫ c_s
        let cfg = SentinelConfig {
            sample_stride: 1,
            ..SentinelConfig::default()
        };
        let mut issues = Vec::new();
        check_lattice(&lat, &cfg, &mut issues);
        assert!(
            issues
                .iter()
                .any(|i| matches!(i, HealthIssue::MachExceeded { node: n, .. } if *n == node)),
            "{issues:?}"
        );
    }

    #[test]
    fn issue_count_is_bounded() {
        let mut lat = couette_channel(8, 8, 8, 0.9, 0.02);
        for node in 0..lat.node_count() {
            lat.rho[node] = f64::INFINITY;
        }
        let cfg = SentinelConfig {
            sample_stride: 1,
            max_issues: 5,
            ..SentinelConfig::default()
        };
        let mut issues = Vec::new();
        check_lattice(&lat, &cfg, &mut issues);
        assert_eq!(issues.len(), 5);
    }

    #[test]
    fn bad_hematocrit_is_caught() {
        let cfg = SentinelConfig::default();
        for bad in [f64::NAN, -0.1, 0.9] {
            let mut issues = Vec::new();
            check_hematocrit(bad, &cfg, &mut issues);
            assert_eq!(issues.len(), 1, "ht {bad} should trip");
        }
    }
}
