//! Checkpoint sinks and sources: where checkpoint blobs live.
//!
//! The container format ([`crate::checkpoint`]) is storage-agnostic — a
//! blob is a `Vec<u8>` wherever it sits. This module adds the *placement*
//! abstraction: a [`CheckpointStore`] holds named blobs, with two
//! implementations:
//!
//! * [`MemoryStore`] — blobs parked in process memory. This is the serve
//!   scheduler's preempt path: suspending a session must never touch disk,
//!   so parked engine checkpoints go here and come back byte-identical.
//! * [`FileStore`] — one file per key in a directory, written through
//!   [`crate::checkpoint::write_atomic`] so a crash mid-write can never
//!   destroy the previous blob. This is the durable campaign path.
//!
//! Keys are free-form strings (session ids, scenario hashes); stores do
//! not interpret blob contents, but [`MemoryStore::put_verified`] offers
//! opt-in container validation at the boundary.

use crate::checkpoint::{write_atomic, CheckpointReader};
use crate::error::GuardError;
use std::collections::BTreeMap;
use std::path::PathBuf;

/// A named home for checkpoint blobs.
pub trait CheckpointStore {
    /// Store `blob` under `key`, replacing any previous blob.
    fn put(&mut self, key: &str, blob: Vec<u8>) -> Result<(), GuardError>;
    /// Retrieve the blob stored under `key` (`None` if absent).
    fn get(&self, key: &str) -> Result<Option<Vec<u8>>, GuardError>;
    /// Remove and return the blob under `key` (`None` if absent).
    fn take(&mut self, key: &str) -> Result<Option<Vec<u8>>, GuardError>;
    /// Keys currently stored, in sorted order.
    fn keys(&self) -> Vec<String>;
}

/// In-memory checkpoint store: the preempt hot path. Parked blobs are
/// owned `Vec<u8>`s in a `BTreeMap`; `get` clones, `take` moves.
#[derive(Debug, Default)]
pub struct MemoryStore {
    blobs: BTreeMap<String, Vec<u8>>,
}

impl MemoryStore {
    /// New empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of parked blobs.
    pub fn len(&self) -> usize {
        self.blobs.len()
    }

    /// True when nothing is parked.
    pub fn is_empty(&self) -> bool {
        self.blobs.is_empty()
    }

    /// Total bytes held across all parked blobs (the scheduler's resident
    /// parked-state footprint).
    pub fn total_bytes(&self) -> usize {
        self.blobs.values().map(Vec::len).sum()
    }

    /// Borrow a parked blob without cloning (restore paths only need a
    /// `&[u8]`).
    pub fn get_ref(&self, key: &str) -> Option<&[u8]> {
        self.blobs.get(key).map(Vec::as_slice)
    }

    /// Store a blob after verifying it parses as a valid checkpoint
    /// container (every section CRC checked). Rejecting corruption at the
    /// park boundary beats discovering it at resume.
    pub fn put_verified(&mut self, key: &str, blob: Vec<u8>) -> Result<(), GuardError> {
        CheckpointReader::parse(&blob)?;
        self.blobs.insert(key.to_string(), blob);
        Ok(())
    }
}

impl CheckpointStore for MemoryStore {
    fn put(&mut self, key: &str, blob: Vec<u8>) -> Result<(), GuardError> {
        self.blobs.insert(key.to_string(), blob);
        Ok(())
    }

    fn get(&self, key: &str) -> Result<Option<Vec<u8>>, GuardError> {
        Ok(self.blobs.get(key).cloned())
    }

    fn take(&mut self, key: &str) -> Result<Option<Vec<u8>>, GuardError> {
        Ok(self.blobs.remove(key))
    }

    fn keys(&self) -> Vec<String> {
        self.blobs.keys().cloned().collect()
    }
}

/// Directory-backed checkpoint store: one `<key>.ckpt` file per key,
/// written atomically.
#[derive(Debug)]
pub struct FileStore {
    dir: PathBuf,
}

impl FileStore {
    /// Open (creating if needed) a store rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, GuardError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(Self { dir })
    }

    fn path_for(&self, key: &str) -> PathBuf {
        // Keys become file names; path separators would escape the root.
        let safe: String = key
            .chars()
            .map(|c| if c == '/' || c == '\\' { '_' } else { c })
            .collect();
        self.dir.join(format!("{safe}.ckpt"))
    }
}

impl CheckpointStore for FileStore {
    fn put(&mut self, key: &str, blob: Vec<u8>) -> Result<(), GuardError> {
        write_atomic(&self.path_for(key), &blob)
    }

    fn get(&self, key: &str) -> Result<Option<Vec<u8>>, GuardError> {
        match std::fs::read(self.path_for(key)) {
            Ok(b) => Ok(Some(b)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e.into()),
        }
    }

    fn take(&mut self, key: &str) -> Result<Option<Vec<u8>>, GuardError> {
        let blob = self.get(key)?;
        if blob.is_some() {
            std::fs::remove_file(self.path_for(key))?;
        }
        Ok(blob)
    }

    fn keys(&self) -> Vec<String> {
        let mut keys: Vec<String> = std::fs::read_dir(&self.dir)
            .map(|rd| {
                rd.filter_map(|e| e.ok())
                    .filter_map(|e| {
                        e.file_name()
                            .to_str()
                            .and_then(|n| n.strip_suffix(".ckpt"))
                            .map(str::to_string)
                    })
                    .collect()
            })
            .unwrap_or_default();
        keys.sort();
        keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::CheckpointWriter;

    fn sample_blob(tag: u8) -> Vec<u8> {
        let mut w = CheckpointWriter::new();
        w.section("meta", vec![tag, 2, 3]);
        w.section("fields", (0..97).map(|i| i ^ tag).collect());
        w.finish()
    }

    #[test]
    fn memory_store_round_trips_byte_identical() {
        let mut store = MemoryStore::new();
        let blob = sample_blob(7);
        store.put("session-42", blob.clone()).unwrap();
        assert_eq!(store.get("session-42").unwrap().as_deref(), Some(&blob[..]));
        assert_eq!(store.get_ref("session-42"), Some(&blob[..]));
        assert_eq!(store.total_bytes(), blob.len());
        // take moves the identical bytes out and empties the slot.
        assert_eq!(store.take("session-42").unwrap(), Some(blob));
        assert!(store.get("session-42").unwrap().is_none());
        assert!(store.is_empty());
    }

    #[test]
    fn memory_store_replaces_and_lists_keys() {
        let mut store = MemoryStore::new();
        store.put("b", sample_blob(1)).unwrap();
        store.put("a", sample_blob(2)).unwrap();
        store.put("b", sample_blob(3)).unwrap();
        assert_eq!(store.keys(), ["a", "b"]);
        assert_eq!(store.len(), 2);
        assert_eq!(store.get("b").unwrap().unwrap(), sample_blob(3));
    }

    #[test]
    fn put_verified_rejects_corrupt_blobs() {
        let mut store = MemoryStore::new();
        let mut blob = sample_blob(5);
        let idx = blob.len() - 9;
        blob[idx] ^= 0x10;
        assert!(matches!(
            store.put_verified("bad", blob),
            Err(GuardError::Crc { .. })
        ));
        assert!(store.is_empty());
        store.put_verified("good", sample_blob(5)).unwrap();
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn file_store_round_trips_and_removes() {
        let dir = std::env::temp_dir().join("apr-guard-store-test");
        std::fs::remove_dir_all(&dir).ok();
        let mut store = FileStore::open(&dir).unwrap();
        let blob = sample_blob(9);
        store.put("ckpt-a", blob.clone()).unwrap();
        assert_eq!(store.get("ckpt-a").unwrap(), Some(blob.clone()));
        assert_eq!(store.keys(), ["ckpt-a"]);
        assert!(store.get("missing").unwrap().is_none());
        assert_eq!(store.take("ckpt-a").unwrap(), Some(blob));
        assert!(store.get("ckpt-a").unwrap().is_none());
        std::fs::remove_dir_all(&dir).ok();
    }
}
