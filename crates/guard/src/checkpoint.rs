//! Versioned, CRC-protected checkpoint container.
//!
//! A checkpoint is a set of named binary sections behind a magic/version
//! header. Each section carries its own CRC32 so corruption is localized
//! to a section name in the error message, and writes to disk go through a
//! temp-file + rename so a crash mid-write can never destroy the previous
//! good checkpoint.
//!
//! Layout (all little-endian):
//!
//! ```text
//! "APRGUARD"  magic, 8 bytes
//! version     u32
//! count       u32
//! count × [ name_len u8 | name | payload_len u64 | payload | crc32 u32 ]
//! crc32       u32 over every preceding byte (version >= 3)
//! ```
//!
//! Per-section CRCs localize corruption to a section name; the trailing
//! container CRC (new in v3) additionally covers the header and section
//! directory, so *any* single-bit flip in a checkpoint — including in a
//! section name, the count, or the version field — surfaces as a typed
//! error. Buddy checkpoints travel between ranks over the same fabric as
//! halo messages, so this is load-bearing for distributed recovery, not
//! just for disk rot.

use crate::codec::{crc32, ByteReader, ByteWriter};
use crate::error::GuardError;
use std::path::Path;

const MAGIC: &[u8; 8] = b"APRGUARD";

/// Current container format version. v3 added the trailing directory CRC
/// (header, names, lengths, and section-CRC fields — payloads are covered
/// by their own per-section CRCs); v2 blobs (no trailing CRC) still parse.
pub const FORMAT_VERSION: u32 = 3;

/// Builder for a multi-section checkpoint blob.
#[derive(Debug, Default)]
pub struct CheckpointWriter {
    sections: Vec<(String, Vec<u8>)>,
}

impl CheckpointWriter {
    /// New empty checkpoint.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a named section. Names must be unique and at most 255 bytes.
    pub fn section(&mut self, name: &str, payload: Vec<u8>) -> &mut Self {
        debug_assert!(name.len() <= u8::MAX as usize, "section name too long");
        debug_assert!(
            self.sections.iter().all(|(n, _)| n != name),
            "duplicate section {name}"
        );
        self.sections.push((name.to_string(), payload));
        self
    }

    /// Serialize the container to bytes.
    pub fn finish(self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        let payload_total: usize = self.sections.iter().map(|(n, p)| n.len() + p.len()).sum();
        w.reserve(payload_total + 64 * self.sections.len() + 32);
        w.bytes(MAGIC);
        w.u32(FORMAT_VERSION);
        w.u32(self.sections.len() as u32);
        let mut payload_spans = Vec::with_capacity(self.sections.len());
        for (name, payload) in &self.sections {
            w.u8(name.len() as u8);
            w.bytes(name.as_bytes());
            w.u64(payload.len() as u64);
            payload_spans.push((w.len(), w.len() + payload.len()));
            w.bytes(payload);
            w.u32(crc32(payload));
        }
        let mut bytes = w.into_bytes();
        let crc = directory_crc(&bytes, &payload_spans);
        bytes.extend_from_slice(&crc.to_le_bytes());
        bytes
    }
}

/// CRC over every container byte *outside* section payloads: magic,
/// version, count, names, lengths, and each section's CRC field. Payload
/// bytes are already covered by their per-section CRCs, so checksumming
/// them again in the trailer would double the CRC cost of multi-megabyte
/// checkpoints for no added coverage — every byte of the container is
/// protected by exactly one of the two layers.
fn directory_crc(bytes: &[u8], payload_spans: &[(usize, usize)]) -> u32 {
    let mut crc = 0u32;
    let mut pos = 0usize;
    for &(start, end) in payload_spans {
        crc = crate::codec::crc32_update(crc, &bytes[pos..start]);
        pos = end;
    }
    crate::codec::crc32_update(crc, &bytes[pos..])
}

/// Parsed checkpoint with CRC-verified sections.
#[derive(Debug)]
pub struct CheckpointReader<'a> {
    version: u32,
    sections: Vec<(String, &'a [u8])>,
}

impl<'a> CheckpointReader<'a> {
    /// Parse and verify a checkpoint blob. Every section's CRC is checked
    /// up front; payload corruption yields [`GuardError::Crc`] naming the
    /// section, and (v3+) header/directory corruption is caught by the
    /// trailing directory CRC (reported with section `"container"`).
    pub fn parse(data: &'a [u8]) -> Result<Self, GuardError> {
        let mut r = ByteReader::new(data);
        let magic = r.bytes(8)?;
        if magic != MAGIC {
            return Err(GuardError::Format("bad magic header".into()));
        }
        let version = r.u32()?;
        if version > FORMAT_VERSION {
            return Err(GuardError::Version {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        // v3+ blobs end with a u32 CRC over everything before it; bound
        // the section region so payload parsing cannot eat into it.
        let body_end = if version >= 3 {
            if data.len() < 4 {
                return Err(GuardError::Format(
                    "blob too short for container CRC".into(),
                ));
            }
            data.len() - 4
        } else {
            data.len()
        };
        let mut r = ByteReader::new(&data[..body_end]);
        r.bytes(8)?; // magic, already validated
        r.u32()?; // version, already validated
        let count = r.u32()?;
        let mut sections = Vec::with_capacity(count as usize);
        let mut payload_spans = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let name_len = r.u8()? as usize;
            let name = std::str::from_utf8(r.bytes(name_len)?)
                .map_err(|e| GuardError::Format(format!("section name not UTF-8: {e}")))?
                .to_string();
            let payload_len = r.usize()?;
            let start = body_end - r.remaining();
            let payload = r.bytes(payload_len)?;
            payload_spans.push((start, start + payload_len));
            let expected = r.u32()?;
            let actual = crc32(payload);
            if actual != expected {
                return Err(GuardError::Crc {
                    section: name,
                    expected,
                    actual,
                });
            }
            sections.push((name, payload));
        }
        if r.remaining() != 0 {
            return Err(GuardError::Format(format!(
                "{} trailing bytes after final section",
                r.remaining()
            )));
        }
        if version >= 3 {
            let expected = u32::from_le_bytes(data[body_end..].try_into().unwrap());
            let actual = directory_crc(&data[..body_end], &payload_spans);
            if actual != expected {
                return Err(GuardError::Crc {
                    section: "container".into(),
                    expected,
                    actual,
                });
            }
        }
        Ok(Self { version, sections })
    }

    /// Format version the blob was written with.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Section names in file order.
    pub fn section_names(&self) -> impl Iterator<Item = &str> {
        self.sections.iter().map(|(n, _)| n.as_str())
    }

    /// Payload of an optional section.
    pub fn get(&self, name: &str) -> Option<&'a [u8]> {
        self.sections
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, p)| p)
    }

    /// Payload of a required section, as a reader.
    pub fn require(&self, name: &str) -> Result<ByteReader<'a>, GuardError> {
        self.get(name)
            .map(ByteReader::new)
            .ok_or_else(|| GuardError::MissingSection(name.to_string()))
    }
}

/// Atomically write `bytes` to `path`: write to `<path>.tmp` in the same
/// directory, fsync, then rename over the target. A crash mid-write leaves
/// the previous checkpoint untouched.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), GuardError> {
    let tmp = path.with_extension("tmp");
    {
        use std::io::Write;
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Read a checkpoint file fully into memory.
pub fn read_file(path: &Path) -> Result<Vec<u8>, GuardError> {
    Ok(std::fs::read(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let mut w = CheckpointWriter::new();
        w.section("meta", vec![1, 2, 3]);
        w.section("fields", (0..64).collect());
        w.finish()
    }

    #[test]
    fn sections_round_trip() {
        let blob = sample();
        let r = CheckpointReader::parse(&blob).unwrap();
        assert_eq!(r.version(), FORMAT_VERSION);
        assert_eq!(r.section_names().collect::<Vec<_>>(), ["meta", "fields"]);
        assert_eq!(r.get("meta").unwrap(), &[1, 2, 3]);
        assert_eq!(r.get("fields").unwrap().len(), 64);
        assert!(r.get("nope").is_none());
        assert!(matches!(
            r.require("nope"),
            Err(GuardError::MissingSection(n)) if n == "nope"
        ));
    }

    #[test]
    fn bit_flip_is_reported_as_crc_error_with_section_name() {
        let mut blob = sample();
        // Flip a bit inside the "fields" payload (tail of the blob, before
        // its trailing CRC).
        let idx = blob.len() - 10;
        blob[idx] ^= 0x40;
        match CheckpointReader::parse(&blob) {
            Err(GuardError::Crc {
                section,
                expected,
                actual,
            }) => {
                assert_eq!(section, "fields");
                assert_ne!(expected, actual);
            }
            other => panic!("expected Crc error, got {other:?}"),
        }
    }

    #[test]
    fn future_version_is_rejected() {
        let mut blob = sample();
        // Version field sits right after the 8-byte magic.
        blob[8..12].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
        assert!(matches!(
            CheckpointReader::parse(&blob),
            Err(GuardError::Version { found, .. }) if found == FORMAT_VERSION + 1
        ));
    }

    #[test]
    fn truncated_blob_is_a_format_error() {
        let blob = sample();
        let cut = &blob[..blob.len() - 7];
        assert!(matches!(
            CheckpointReader::parse(cut),
            Err(GuardError::Format(_))
        ));
    }

    #[test]
    fn atomic_write_round_trips_and_replaces() {
        let dir = std::env::temp_dir().join("apr-guard-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.bin");
        write_atomic(&path, &[9, 9, 9]).unwrap();
        write_atomic(&path, &sample()).unwrap();
        let back = read_file(&path).unwrap();
        assert!(CheckpointReader::parse(&back).is_ok());
        assert!(
            !path.with_extension("tmp").exists(),
            "tmp file must be renamed away"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
