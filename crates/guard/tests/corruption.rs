//! Checkpoint-corruption sweep: flipping any byte of a checkpoint blob
//! must surface as a typed error — never a panic — and a flip inside a
//! section payload must name that section in a [`GuardError::Crc`].
//!
//! This is the restore-side half of the resilience story: buddy
//! checkpoints travel between ranks, so a corrupted replica has to be
//! rejected *identifiably* (so the supervisor can fall back to an older
//! epoch) rather than crashing the surviving rank.

use apr_guard::{crc32, CheckpointReader, CheckpointWriter, GuardError};
use apr_lattice::couette_channel;

/// A container with several sections of different sizes, including a real
/// lattice-state payload, mirroring what the guardian writes.
fn multi_section_blob() -> (Vec<u8>, Vec<(String, Vec<u8>)>) {
    let mut lat = couette_channel(4, 6, 4, 0.9, 0.02);
    for _ in 0..5 {
        lat.step();
    }
    let sections: Vec<(String, Vec<u8>)> = vec![
        ("meta".into(), vec![1, 2, 3, 4, 5]),
        ("lattice".into(), apr_guard::write_lattice(&lat)),
        ("trailer".into(), (0u8..=63).collect()),
    ];
    let mut w = CheckpointWriter::new();
    for (name, payload) in &sections {
        w.section(name, payload.clone());
    }
    (w.finish(), sections)
}

/// Byte ranges each section payload occupies in the serialized container.
/// Layout per section: name_len u8 | name | payload_len u64 | payload | crc u32.
fn payload_ranges(sections: &[(String, Vec<u8>)]) -> Vec<(String, std::ops::Range<usize>)> {
    let mut pos = 8 + 4 + 4; // magic + version + count
    let mut out = Vec::new();
    for (name, payload) in sections {
        pos += 1 + name.len() + 8;
        out.push((name.clone(), pos..pos + payload.len()));
        pos += payload.len() + 4;
    }
    out
}

#[test]
fn flipped_byte_in_every_section_yields_crc_error_naming_it() {
    let (blob, sections) = multi_section_blob();
    for (name, range) in payload_ranges(&sections) {
        // Flip the first, middle, and last byte of each payload.
        for idx in [range.start, range.start + range.len() / 2, range.end - 1] {
            let mut bad = blob.clone();
            bad[idx] ^= 0x10;
            match CheckpointReader::parse(&bad) {
                Err(GuardError::Crc {
                    section,
                    expected,
                    actual,
                }) => {
                    assert_eq!(section, name, "flip at byte {idx}");
                    assert_ne!(expected, actual);
                }
                other => {
                    panic!("flip at byte {idx} (section {name}): expected Crc error, got {other:?}")
                }
            }
        }
    }
}

#[test]
fn flipping_any_byte_never_panics_and_always_errors() {
    // Small hand-sized container so the exhaustive sweep stays fast.
    let mut w = CheckpointWriter::new();
    w.section("meta", vec![9, 8, 7]);
    w.section("fields", (0u8..32).collect());
    w.section("pool", (100u8..140).collect());
    let blob = w.finish();
    // Sanity: the pristine blob parses.
    assert!(CheckpointReader::parse(&blob).is_ok());
    for idx in 0..blob.len() {
        for bit in [0x01u8, 0x80u8] {
            let mut bad = blob.clone();
            bad[idx] ^= bit;
            // Any single-bit flip must be *detected*: magic/version/length
            // damage parses as Format/Version, payload damage as Crc, CRC
            // field damage as Crc. Nothing may parse clean or panic.
            let res = std::panic::catch_unwind(|| CheckpointReader::parse(&bad).map(|_| ()));
            match res {
                Ok(Err(_)) => {}
                Ok(Ok(())) => panic!("bit flip at byte {idx} went undetected"),
                Err(_) => panic!("bit flip at byte {idx} caused a panic"),
            }
        }
    }
}

#[test]
fn corrupted_lattice_payload_is_rejected_before_restore_touches_state() {
    let mut lat = couette_channel(4, 6, 4, 0.9, 0.02);
    for _ in 0..3 {
        lat.step();
    }
    let payload = apr_guard::write_lattice(&lat);
    let mut w = CheckpointWriter::new();
    w.section("lattice", payload.clone());
    let mut blob = w.finish();
    // Corrupt a distribution byte mid-payload.
    let idx = blob.len() - payload.len() / 2;
    blob[idx] ^= 0x04;
    let err = CheckpointReader::parse(&blob).unwrap_err();
    assert!(matches!(err, GuardError::Crc { ref section, .. } if section == "lattice"));
    // The CRC of the pristine payload still matches, i.e. the corruption
    // really was in the copy, not the source.
    assert_eq!(crc32(&payload), crc32(&apr_guard::write_lattice(&lat)));
}
