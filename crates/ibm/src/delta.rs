//! Discrete Dirac delta kernels for the immersed boundary method.
//!
//! The paper uses "a cosine function … to approximate δ for unit spacial
//! steps of the Eulerian grid with a four point support" (§2.3, Peskin 2002).
//! The 2- and 3-point kernels are provided for the support-width ablation
//! bench (DESIGN.md §6).

/// Supported discrete delta kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DeltaKernel {
    /// Peskin's 4-point cosine kernel (the paper's choice):
    /// `φ(r) = (1 + cos(πr/2))/4` for `|r| ≤ 2`.
    #[default]
    Cosine4,
    /// Roma–Peskin 3-point kernel.
    Peskin3,
    /// Linear (tent) 2-point kernel.
    Linear2,
}

impl DeltaKernel {
    /// Half-width of the support in lattice spacings.
    pub fn support(self) -> f64 {
        match self {
            DeltaKernel::Cosine4 => 2.0,
            DeltaKernel::Peskin3 => 1.5,
            DeltaKernel::Linear2 => 1.0,
        }
    }

    /// Number of lattice points the stencil spans per axis.
    pub fn stencil_width(self) -> usize {
        match self {
            DeltaKernel::Cosine4 => 4,
            DeltaKernel::Peskin3 => 3,
            DeltaKernel::Linear2 => 2,
        }
    }

    /// One-dimensional kernel weight at signed offset `r` (lattice units).
    #[inline]
    pub fn phi(self, r: f64) -> f64 {
        let a = r.abs();
        match self {
            DeltaKernel::Cosine4 => {
                if a >= 2.0 {
                    0.0
                } else {
                    0.25 * (1.0 + (std::f64::consts::FRAC_PI_2 * r).cos())
                }
            }
            DeltaKernel::Peskin3 => {
                if a >= 1.5 {
                    0.0
                } else if a <= 0.5 {
                    (1.0 + (-3.0 * r * r + 1.0).sqrt()) / 3.0
                } else {
                    (5.0 - 3.0 * a - (-3.0 * (1.0 - a) * (1.0 - a) + 1.0).sqrt()) / 6.0
                }
            }
            DeltaKernel::Linear2 => (1.0 - a).max(0.0),
        }
    }

    /// Three-dimensional tensor-product weight at offset `(rx, ry, rz)`.
    #[inline]
    pub fn phi3(self, rx: f64, ry: f64, rz: f64) -> f64 {
        self.phi(rx) * self.phi(ry) * self.phi(rz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KERNELS: [DeltaKernel; 3] = [
        DeltaKernel::Cosine4,
        DeltaKernel::Peskin3,
        DeltaKernel::Linear2,
    ];

    #[test]
    fn partition_of_unity() {
        // Σ_j φ(x − j) = 1 for any x — the defining moment condition.
        for k in KERNELS {
            for x in [0.0, 0.1, 0.25, 0.5, 0.73, 0.99] {
                let sum: f64 = (-4..=4).map(|j| k.phi(x - j as f64)).sum();
                assert!((sum - 1.0).abs() < 1e-12, "{k:?} at x={x}: Σ={sum}");
            }
        }
    }

    #[test]
    fn first_moment_vanishes_for_peskin3_and_linear2() {
        // Σ_j (x − j)·φ(x − j) = 0 preserves interpolated momentum exactly
        // for the Roma 3-point and tent kernels.
        for k in [DeltaKernel::Peskin3, DeltaKernel::Linear2] {
            for x in [0.0, 0.2, 0.5, 0.8] {
                let m1: f64 = (-4..=4).map(|j| (x - j as f64) * k.phi(x - j as f64)).sum();
                assert!(m1.abs() < 1e-12, "{k:?} at x={x}: m1={m1}");
            }
        }
    }

    #[test]
    fn first_moment_is_small_for_cosine4() {
        // The cosine kernel satisfies the moment condition only approximately
        // (exactly at integers and half-integers); the residual stays ≲2.5%.
        let k = DeltaKernel::Cosine4;
        for x in [0.0, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9] {
            let m1: f64 = (-4..=4).map(|j| (x - j as f64) * k.phi(x - j as f64)).sum();
            assert!(m1.abs() < 0.025, "at x={x}: m1={m1}");
        }
        // Exact at the lattice point and halfway between points.
        for x in [0.0, 0.5, 1.0] {
            let m1: f64 = (-4..=4).map(|j| (x - j as f64) * k.phi(x - j as f64)).sum();
            assert!(m1.abs() < 1e-12, "at x={x}: m1={m1}");
        }
    }

    #[test]
    fn kernels_are_nonnegative_and_compact() {
        for k in KERNELS {
            for i in -40..=40 {
                let r = i as f64 * 0.1;
                let v = k.phi(r);
                assert!(v >= 0.0, "{k:?} negative at {r}");
                if r.abs() >= k.support() {
                    assert_eq!(v, 0.0, "{k:?} leaks outside support at {r}");
                }
            }
        }
    }

    #[test]
    fn kernels_are_even() {
        for k in KERNELS {
            for i in 0..20 {
                let r = i as f64 * 0.1;
                assert!((k.phi(r) - k.phi(-r)).abs() < 1e-15, "{k:?} at {r}");
            }
        }
    }

    #[test]
    fn cosine4_peak_value() {
        assert!((DeltaKernel::Cosine4.phi(0.0) - 0.5).abs() < 1e-15);
        assert!((DeltaKernel::Cosine4.phi(1.0) - 0.25).abs() < 1e-15);
    }

    #[test]
    fn tensor_product_factorizes() {
        let k = DeltaKernel::Cosine4;
        let v = k.phi3(0.3, -0.7, 1.2);
        assert!((v - k.phi(0.3) * k.phi(-0.7) * k.phi(1.2)).abs() < 1e-15);
    }
}
