//! Immersed boundary method (paper §2.3).
//!
//! Couples the Lagrangian membrane meshes to the Eulerian LBM grid in the
//! paper's three-phase sequence: **interpolation** of fluid velocity onto
//! membrane vertices (Eq. 4), **updating** vertex positions with a no-slip
//! forward-Euler step (Eq. 5), and **spreading** of membrane forces back
//! onto the fluid (Eq. 6), all through a tensor-product discrete delta
//! function — by default Peskin's 4-point cosine kernel.

pub mod delta;
pub mod transfer;

pub use delta::DeltaKernel;
pub use transfer::{
    advect_points, interpolate_velocities, interpolate_velocity, spread_forces, spread_forces_into,
};
