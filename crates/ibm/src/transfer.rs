//! Velocity interpolation and force spreading (paper §2.3, Eq. 4–6).
//!
//! Positions are expressed in the lattice's own coordinate system where the
//! node `(x, y, z)` sits at position `(x, y, z)`; callers embedding a window
//! lattice in a global frame translate positions before calling.

use crate::delta::DeltaKernel;
use apr_exec::{ScratchPool, UnsafeSlice};
use apr_lattice::{Lattice, NodeClass};
use apr_mesh::Vec3;

/// Lagrangian points per exec chunk for the pure (gather) transfers. Any
/// fixed value keeps results thread-count independent; 32 points amortize
/// dispatch while still splitting a single cell's vertices across lanes.
const POINT_CHUNK: usize = 32;

/// Maximum scratch chunks for the (scatter) force spread. Fixed — never
/// derived from the thread count — so the chunk-ordered merge associates
/// identically for any `APR_THREADS`.
const SPREAD_MAX_CHUNKS: usize = 8;

/// Stencil description around a Lagrangian point for a given kernel.
struct Stencil {
    base: [i64; 3],
    width: usize,
}

#[inline]
fn stencil(kernel: DeltaKernel, p: Vec3) -> Stencil {
    // Leftmost lattice point inside the support [p − s, p + s] on each axis.
    let s = kernel.support();
    Stencil {
        base: [
            (p.x - s).ceil() as i64,
            (p.y - s).ceil() as i64,
            (p.z - s).ceil() as i64,
        ],
        width: kernel.stencil_width() + 1,
    }
}

#[inline]
fn wrap(v: i64, n: usize, periodic: bool) -> Option<usize> {
    let n = n as i64;
    if v >= 0 && v < n {
        Some(v as usize)
    } else if periodic {
        Some(((v % n + n) % n) as usize)
    } else {
        None
    }
}

/// Interpolate the Eulerian velocity field onto Lagrangian points (Eq. 4):
/// `V(X) = Σ_x v(x)·δ(x − X)`.
///
/// Reads the lattice's stored (collision-time, force-corrected) velocities.
/// Points whose support sticks out of a non-periodic boundary simply miss
/// those weights — consistent with cells being removed once they cross the
/// window boundary (paper §2.4.2).
pub fn interpolate_velocities(
    lattice: &Lattice,
    positions: &[Vec3],
    kernel: DeltaKernel,
) -> Vec<Vec3> {
    let mut out = vec![Vec3::ZERO; positions.len()];
    apr_exec::current().par_for_chunks_mut(&mut out, POINT_CHUNK, |chunk, part| {
        let first = chunk * POINT_CHUNK;
        for (k, v) in part.iter_mut().enumerate() {
            *v = interpolate_velocity(lattice, positions[first + k], kernel);
        }
    });
    out
}

/// Interpolate the velocity at a single Lagrangian point.
pub fn interpolate_velocity(lattice: &Lattice, p: Vec3, kernel: DeltaKernel) -> Vec3 {
    let s = stencil(kernel, p);
    let mut v = Vec3::ZERO;
    for dz in 0..s.width {
        let gz = s.base[2] + dz as i64;
        let Some(z) = wrap(gz, lattice.nz, lattice.periodic[2]) else {
            continue;
        };
        let wz = kernel.phi(p.z - gz as f64);
        if wz == 0.0 {
            continue;
        }
        for dy in 0..s.width {
            let gy = s.base[1] + dy as i64;
            let Some(y) = wrap(gy, lattice.ny, lattice.periodic[1]) else {
                continue;
            };
            let wyz = wz * kernel.phi(p.y - gy as f64);
            if wyz == 0.0 {
                continue;
            }
            for dx in 0..s.width {
                let gx = s.base[0] + dx as i64;
                let Some(x) = wrap(gx, lattice.nx, lattice.periodic[0]) else {
                    continue;
                };
                let w = wyz * kernel.phi(p.x - gx as f64);
                if w == 0.0 {
                    continue;
                }
                let node = lattice.idx(x, y, z);
                let u = lattice.velocity_at(node);
                v += Vec3::new(u[0], u[1], u[2]) * w;
            }
        }
    }
    v
}

/// Spread Lagrangian forces onto the Eulerian force field (Eq. 6):
/// `g(x) = Σ_X G(X)·δ(x − X)`.
///
/// Forces landing on wall/exterior nodes are dropped (the wall absorbs
/// them); total fluid-side force therefore equals the spread weight actually
/// covering fluid, which [`spread_forces`] returns for diagnostics.
///
/// # Panics
/// Panics if `positions` and `forces` differ in length.
pub fn spread_forces(
    lattice: &mut Lattice,
    positions: &[Vec3],
    forces: &[Vec3],
    kernel: DeltaKernel,
) -> f64 {
    let scratch = ScratchPool::new();
    // Detach the force field so the spread can read lattice flags while
    // accumulating into it.
    let mut field = std::mem::take(&mut lattice.force);
    let covered = spread_forces_into(lattice, positions, forces, kernel, &mut field, &scratch);
    lattice.force = field;
    covered
}

/// [`spread_forces`] variant that accumulates into a caller-owned force
/// field (`node*3 + axis`, same layout as `Lattice::force`) and recycles
/// scratch buffers across calls — the steady-state path used by the FSI
/// loop, which spreads many cells per sub-step.
///
/// Runs in parallel over fixed position chunks; per-chunk scratch fields
/// are merged into `out` in chunk order on the caller, so the result is
/// bit-identical for any thread count. Returns the mean spread weight that
/// landed on fluid nodes (see [`spread_forces`]).
///
/// # Panics
/// Panics if `positions`/`forces` lengths differ or `out` does not cover
/// every node.
pub fn spread_forces_into(
    lattice: &Lattice,
    positions: &[Vec3],
    forces: &[Vec3],
    kernel: DeltaKernel,
    out: &mut [f64],
    scratch: &ScratchPool<Vec<f64>>,
) -> f64 {
    assert_eq!(positions.len(), forces.len(), "positions/forces mismatch");
    assert_eq!(out.len(), lattice.node_count() * 3, "force field size");
    if positions.is_empty() {
        return 0.0;
    }
    let chunks = positions.len().min(SPREAD_MAX_CHUNKS);
    let mut chunk_weights = vec![0.0f64; chunks];
    {
        let weights = UnsafeSlice::new(&mut chunk_weights);
        apr_exec::current().par_accumulate_f64(
            out,
            positions.len(),
            SPREAD_MAX_CHUNKS,
            scratch,
            |chunk, range, buf| {
                let mut covered = 0.0;
                for (&p, &g) in positions[range.clone()].iter().zip(&forces[range]) {
                    covered += spread_one(lattice, p, g, kernel, buf);
                }
                // SAFETY: one writer per chunk slot.
                unsafe { weights.slice_mut(chunk, 1)[0] = covered };
            },
        );
    }
    // Chunk-ordered sum: association fixed by the chunk count alone.
    let covered_weight: f64 = chunk_weights.iter().sum();
    covered_weight / positions.len() as f64
}

/// Spread one Lagrangian force into `field`, returning the fluid-covered
/// weight of its stencil.
fn spread_one(lattice: &Lattice, p: Vec3, g: Vec3, kernel: DeltaKernel, field: &mut [f64]) -> f64 {
    let s = stencil(kernel, p);
    let mut covered_weight = 0.0;
    for dz in 0..s.width {
        let gz = s.base[2] + dz as i64;
        let Some(z) = wrap(gz, lattice.nz, lattice.periodic[2]) else {
            continue;
        };
        let wz = kernel.phi(p.z - gz as f64);
        if wz == 0.0 {
            continue;
        }
        for dy in 0..s.width {
            let gy = s.base[1] + dy as i64;
            let Some(y) = wrap(gy, lattice.ny, lattice.periodic[1]) else {
                continue;
            };
            let wyz = wz * kernel.phi(p.y - gy as f64);
            if wyz == 0.0 {
                continue;
            }
            for dx in 0..s.width {
                let gx = s.base[0] + dx as i64;
                let Some(x) = wrap(gx, lattice.nx, lattice.periodic[0]) else {
                    continue;
                };
                let w = wyz * kernel.phi(p.x - gx as f64);
                if w == 0.0 {
                    continue;
                }
                let node = lattice.idx(x, y, z);
                if lattice.flag(node) == NodeClass::Fluid {
                    field[node * 3] += g.x * w;
                    field[node * 3 + 1] += g.y * w;
                    field[node * 3 + 2] += g.z * w;
                    covered_weight += w;
                }
            }
        }
    }
    covered_weight
}

/// Advance Lagrangian points by interpolated velocity over one unit time
/// step (Eq. 5, forward Euler no-slip update): `X(t+1) = X(t) + V(t)·Δt`.
pub fn advect_points(lattice: &Lattice, positions: &mut [Vec3], kernel: DeltaKernel) {
    apr_exec::current().par_for_chunks_mut(positions, POINT_CHUNK, |_, part| {
        for p in part {
            let v = interpolate_velocity(lattice, *p, kernel);
            *p += v;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use apr_lattice::Lattice;

    fn uniform_lattice(u: [f64; 3]) -> Lattice {
        let mut lat = Lattice::new(12, 12, 12, 1.0);
        lat.periodic = [true, true, true];
        lat.initialize_equilibrium(1.0, u);
        lat
    }

    #[test]
    fn interpolation_recovers_uniform_field() {
        let lat = uniform_lattice([0.03, -0.01, 0.02]);
        for p in [
            Vec3::new(5.0, 5.0, 5.0),
            Vec3::new(5.3, 4.7, 6.1),
            Vec3::new(0.2, 11.8, 3.5), // near periodic boundary
        ] {
            let v = interpolate_velocity(&lat, p, DeltaKernel::Cosine4);
            assert!((v - Vec3::new(0.03, -0.01, 0.02)).norm() < 1e-12, "{p:?}");
        }
    }

    #[test]
    fn interpolation_is_exact_for_linear_fields() {
        // Kernels with vanishing first moment reproduce linear velocity
        // profiles exactly — the property behind IBM's second-order accuracy.
        let mut lat = Lattice::new(16, 16, 16, 1.0);
        lat.periodic = [false, false, false];
        for z in 0..16 {
            for y in 0..16 {
                for x in 0..16 {
                    let node = lat.idx(x, y, z);
                    lat.initialize_node_equilibrium(node, 1.0, [0.001 * y as f64, 0.0, 0.0]);
                }
            }
        }
        // Exact for kernels with a vanishing first moment…
        for kernel in [DeltaKernel::Peskin3, DeltaKernel::Linear2] {
            let p = Vec3::new(8.0, 7.4, 8.0);
            let v = interpolate_velocity(&lat, p, kernel);
            assert!((v.x - 0.001 * 7.4).abs() < 1e-12, "{kernel:?}: {v:?}");
        }
        // …and within a small residual for the cosine kernel.
        let v = interpolate_velocity(&lat, Vec3::new(8.0, 7.4, 8.0), DeltaKernel::Cosine4);
        assert!((v.x - 0.001 * 7.4).abs() < 2.5e-5, "Cosine4: {v:?}");
    }

    #[test]
    fn spreading_conserves_total_force() {
        let mut lat = uniform_lattice([0.0; 3]);
        let positions = [Vec3::new(6.2, 5.9, 6.4), Vec3::new(3.1, 3.3, 3.7)];
        let forces = [Vec3::new(1e-4, -2e-4, 5e-5), Vec3::new(-3e-5, 1e-5, 2e-5)];
        spread_forces(&mut lat, &positions, &forces, DeltaKernel::Cosine4);
        let mut total = Vec3::ZERO;
        for n in 0..lat.node_count() {
            total += Vec3::new(lat.force[n * 3], lat.force[n * 3 + 1], lat.force[n * 3 + 2]);
        }
        let expected: Vec3 = forces.iter().copied().sum();
        assert!((total - expected).norm() < 1e-15);
    }

    #[test]
    fn spread_then_interpolate_peaks_at_source() {
        // The force field after spreading is maximal at the node nearest to
        // the Lagrangian point.
        let mut lat = uniform_lattice([0.0; 3]);
        let p = Vec3::new(6.1, 6.0, 5.9);
        spread_forces(
            &mut lat,
            &[p],
            &[Vec3::new(1.0, 0.0, 0.0)],
            DeltaKernel::Cosine4,
        );
        let peak_node = lat.idx(6, 6, 6);
        let peak = lat.force[peak_node * 3];
        for n in 0..lat.node_count() {
            assert!(lat.force[n * 3] <= peak + 1e-15);
        }
        assert!(peak > 0.05);
    }

    #[test]
    fn advection_follows_uniform_flow() {
        let lat = uniform_lattice([0.01, 0.02, -0.005]);
        let mut pts = vec![Vec3::new(5.0, 5.0, 5.0)];
        for _ in 0..10 {
            advect_points(&lat, &mut pts, DeltaKernel::Cosine4);
        }
        let expected = Vec3::new(5.0 + 0.1, 5.0 + 0.2, 5.0 - 0.05);
        assert!((pts[0] - expected).norm() < 1e-9);
    }

    #[test]
    fn all_kernels_spread_to_their_stencil_size() {
        for kernel in [
            DeltaKernel::Cosine4,
            DeltaKernel::Peskin3,
            DeltaKernel::Linear2,
        ] {
            let mut lat = uniform_lattice([0.0; 3]);
            // Offset from the node so even-width stencils engage fully.
            let p = Vec3::new(6.3, 6.3, 6.3);
            spread_forces(&mut lat, &[p], &[Vec3::new(1.0, 0.0, 0.0)], kernel);
            let touched = (0..lat.node_count())
                .filter(|&n| lat.force[n * 3] != 0.0)
                .count();
            let w = kernel.stencil_width();
            assert!(
                touched <= w * w * w,
                "{kernel:?}: touched {touched} > {}",
                w * w * w
            );
            assert!(
                touched >= (w - 1).max(1).pow(3),
                "{kernel:?}: touched {touched}"
            );
        }
    }
}
