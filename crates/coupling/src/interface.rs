//! Two-way bulk ↔ window interface exchange (paper §2.4.1, Figure 2).
//!
//! The fine (window) lattice is embedded in the coarse (bulk) lattice at a
//! refinement ratio `n` with convective time scaling (`n` fine substeps per
//! coarse step). Each coarse step:
//!
//! 1. snapshot coarse state at the fine boundary-shell positions,
//! 2. advance the coarse lattice,
//! 3. snapshot again; for each fine substep impose on the shell the
//!    time-interpolated equilibrium + rescaled non-equilibrium state
//!    (Dupuis–Chopard, extended with the viscosity-jump factor λ so the
//!    viscous stress is continuous across the interface),
//! 4. after the substeps, restrict the fine solution back onto the coarse
//!    nodes interior to the window (inverse rescaling).

use crate::interpolation::{interpolate_distributions, moments};
use crate::refinement::{coarse_window_tau, neq_scale_coarse_to_fine, neq_scale_fine_to_coarse};
use apr_lattice::{equilibrium_all, Lattice, NodeClass, SubStep, Q};

/// Geometric and physical description of one window ↔ bulk coupling.
#[derive(Debug, Clone)]
pub struct CouplingMap {
    /// Refinement ratio `n` (coarse spacing / fine spacing).
    pub n: usize,
    /// Viscosity ratio `λ = ν_fine/ν_coarse` (plasma/whole blood < 1).
    pub lambda: f64,
    /// Coarse-lattice coordinates of fine node `(0, 0, 0)`.
    pub origin: [f64; 3],
    /// Fine boundary-shell node indices (imposed from the coarse solution).
    pub shell: Vec<usize>,
    /// Pairs `(coarse node, fine node)` for interior restriction.
    pub restrict_pairs: Vec<(usize, usize)>,
    /// Transfer the rescaled non-equilibrium part across the interface
    /// (true = the full Dupuis–Chopard coupling). Setting false degrades to
    /// equilibrium-only transfer — the ablation DESIGN.md §6 benchmarks.
    pub neq_transfer: bool,
}

/// Snapshot of interpolated coarse data at every shell node.
#[derive(Debug, Clone)]
pub struct ShellSnapshot {
    /// Interpolated distributions per shell node.
    pub f: Vec<[f64; Q]>,
    /// Local coarse relaxation time at each shell position (nearest node).
    pub tau_c: Vec<f64>,
}

impl CouplingMap {
    /// Build the coupling between `coarse` and `fine`.
    ///
    /// * `origin` — coarse coords of fine node 0 (fine node `i` sits at
    ///   `origin + i/n`).
    /// * `restrict_margin` — coarse cells to stay clear of the window edge
    ///   before restriction begins (paper-style overlap buffer; 2 works).
    ///
    /// Shell faces on axes where the fine lattice is periodic are skipped.
    ///
    /// # Panics
    /// Panics if the fine domain extends outside the coarse one.
    pub fn new(
        coarse: &Lattice,
        fine: &Lattice,
        origin: [f64; 3],
        n: usize,
        lambda: f64,
        restrict_margin: f64,
    ) -> Self {
        assert!(n >= 1, "refinement ratio must be ≥ 1");
        let fine_dims = [fine.nx, fine.ny, fine.nz];
        let coarse_dims = [coarse.nx, coarse.ny, coarse.nz];
        for a in 0..3 {
            if fine.periodic[a] {
                // Periodic axes must tile the same physical width so wrapped
                // interpolation positions stay meaningful.
                assert!(
                    fine_dims[a] == coarse_dims[a] * n && coarse.periodic[a],
                    "periodic axis {a}: fine width {} must equal coarse width {} × n",
                    fine_dims[a],
                    coarse_dims[a]
                );
            } else {
                let max_c = origin[a] + (fine_dims[a] - 1) as f64 / n as f64;
                assert!(
                    origin[a] >= 0.0 && max_c <= (coarse_dims[a] - 1) as f64 + 1e-9,
                    "fine domain leaves the coarse lattice on axis {a}"
                );
            }
        }

        // Boundary shell: outermost fine layer on non-periodic axes.
        let mut shell = Vec::new();
        for z in 0..fine.nz {
            for y in 0..fine.ny {
                for x in 0..fine.nx {
                    let on_face = (!fine.periodic[0] && (x == 0 || x == fine.nx - 1))
                        || (!fine.periodic[1] && (y == 0 || y == fine.ny - 1))
                        || (!fine.periodic[2] && (z == 0 || z == fine.nz - 1));
                    if on_face {
                        let node = fine.idx(x, y, z);
                        if fine.flag(node) == NodeClass::Fluid {
                            shell.push(node);
                        }
                    }
                }
            }
        }

        // Restriction: coarse nodes coincident with fine nodes, at least
        // `restrict_margin` coarse cells inside the window on every
        // non-periodic axis.
        let mut restrict_pairs = Vec::new();
        for z in 0..coarse.nz {
            for y in 0..coarse.ny {
                for x in 0..coarse.nx {
                    let pos = [x as f64, y as f64, z as f64];
                    let mut inside = true;
                    let mut fine_coord = [0usize; 3];
                    for a in 0..3 {
                        let lo = origin[a];
                        let hi = origin[a] + (fine_dims[a] - 1) as f64 / n as f64;
                        let (lo_m, hi_m) = if fine.periodic[a] {
                            (lo - 1e-9, hi + 1e-9)
                        } else {
                            (lo + restrict_margin - 1e-9, hi - restrict_margin + 1e-9)
                        };
                        if pos[a] < lo_m || pos[a] > hi_m {
                            inside = false;
                            break;
                        }
                        let rel = (pos[a] - lo) * n as f64;
                        let idx = rel.round();
                        if (rel - idx).abs() > 1e-6 {
                            inside = false; // not node-coincident
                            break;
                        }
                        fine_coord[a] = idx as usize;
                    }
                    if inside {
                        let cnode = coarse.idx(x, y, z);
                        let fnode = fine.idx(fine_coord[0], fine_coord[1], fine_coord[2]);
                        if coarse.flag(cnode) == NodeClass::Fluid
                            && fine.flag(fnode) == NodeClass::Fluid
                        {
                            restrict_pairs.push((cnode, fnode));
                        }
                    }
                }
            }
        }

        Self {
            n,
            lambda,
            origin,
            shell,
            restrict_pairs,
            neq_transfer: true,
        }
    }

    /// Coarse-lattice coordinates of a fine node.
    pub fn fine_to_coarse(&self, fine: &Lattice, node: usize) -> [f64; 3] {
        let (x, y, z) = fine.coords(node);
        [
            self.origin[0] + x as f64 / self.n as f64,
            self.origin[1] + y as f64 / self.n as f64,
            self.origin[2] + z as f64 / self.n as f64,
        ]
    }

    /// Capture interpolated coarse distributions (and local relaxation
    /// times) at every shell position.
    pub fn snapshot(&self, coarse: &Lattice, fine: &Lattice) -> ShellSnapshot {
        let mut f = Vec::with_capacity(self.shell.len());
        let mut tau_c = Vec::with_capacity(self.shell.len());
        for &node in &self.shell {
            let p = self.fine_to_coarse(fine, node);
            f.push(interpolate_distributions(coarse, p[0], p[1], p[2]));
            tau_c.push(coarse.tau_at(nearest_node(coarse, p)));
        }
        ShellSnapshot { f, tau_c }
    }

    /// Give the coarse lattice the window's physical viscosity inside the
    /// fine-domain footprint: `τ'_c = 1/2 + λ(τ_c − 1/2)` (paper §2.4.1's
    /// multi-viscosity treatment, applied at coarse resolution). Use for
    /// fluid-only windows where the window fluid really is the λ-viscosity
    /// fluid; cell-laden windows keep the bulk (whole-blood) value because
    /// the suspension's effective viscosity is the bulk viscosity.
    pub fn apply_window_viscosity(&self, coarse: &mut Lattice, fine: &Lattice) {
        let tau_prime = coarse_window_tau(coarse.tau, self.lambda);
        let fine_dims = [fine.nx, fine.ny, fine.nz];
        for z in 0..coarse.nz {
            for y in 0..coarse.ny {
                for x in 0..coarse.nx {
                    let pos = [x as f64, y as f64, z as f64];
                    let inside = (0..3).all(|a| {
                        fine.periodic[a]
                            || (pos[a] >= self.origin[a] - 1e-9
                                && pos[a]
                                    <= self.origin[a]
                                        + (fine_dims[a] - 1) as f64 / self.n as f64
                                        + 1e-9)
                    });
                    if inside {
                        let node = coarse.idx(x, y, z);
                        if coarse.flag(node) == NodeClass::Fluid {
                            coarse.set_tau_at(node, tau_prime);
                        }
                    }
                }
            }
        }
    }

    /// Impose the coupled state on the fine boundary shell, blending the
    /// `old` and `new` coarse snapshots at time fraction `theta ∈ [0, 1]`.
    ///
    /// Call **between** `advance(SubStep::Collide)` and
    /// `advance(SubStep::Stream)` of the fine
    /// lattice: the imposed state plays the role of the shell's
    /// post-collision distributions, so the rescaled non-equilibrium part
    /// carries the post-collision factor `(1 − 1/τ_f)`.
    pub fn impose_shell(
        &self,
        fine: &mut Lattice,
        old: &ShellSnapshot,
        new: &ShellSnapshot,
        theta: f64,
    ) {
        let post = 1.0 - 1.0 / fine.tau;
        for (s, &node) in self.shell.iter().enumerate() {
            let kappa = if self.neq_transfer {
                neq_scale_coarse_to_fine(new.tau_c[s], fine.tau, self.n) * post
            } else {
                0.0
            };
            let mut fi = [0.0; Q];
            for (i, f) in fi.iter_mut().enumerate() {
                *f = old.f[s][i] * (1.0 - theta) + new.f[s][i] * theta;
            }
            let (rho, u) = moments(&fi);
            let feq = equilibrium_all(rho, u[0], u[1], u[2]);
            let mut imposed = [0.0; Q];
            for i in 0..Q {
                imposed[i] = feq[i] + kappa * (fi[i] - feq[i]);
            }
            fine.set_distributions(node, &imposed);
            fine.rho[node] = rho;
            fine.vel[node * 3..node * 3 + 3].copy_from_slice(&u);
        }
    }

    /// Restrict the fine solution onto interior coarse nodes with inverse
    /// non-equilibrium rescaling. Call after the fine substeps, while both
    /// lattices are in their pre-collision state.
    pub fn restrict(&self, coarse: &mut Lattice, fine: &Lattice) {
        for &(cnode, fnode) in &self.restrict_pairs {
            let kappa = if self.neq_transfer {
                neq_scale_fine_to_coarse(coarse.tau_at(cnode), fine.tau, self.n)
            } else {
                0.0
            };
            let fs = fine.distributions(fnode);
            let mut fi = [0.0; Q];
            fi.copy_from_slice(fs);
            let (rho, u) = moments(&fi);
            let feq = equilibrium_all(rho, u[0], u[1], u[2]);
            let mut out = [0.0; Q];
            for i in 0..Q {
                out[i] = feq[i] + kappa * (fi[i] - feq[i]);
            }
            coarse.set_distributions(cnode, &out);
            coarse.rho[cnode] = rho;
            coarse.vel[cnode * 3..cnode * 3 + 3].copy_from_slice(&u);
        }
    }

    /// Seed the entire fine lattice from the coarse solution (equilibrium +
    /// rescaled non-equilibrium at each fine node's interpolated coarse
    /// state). Used at start-up and after window moves (paper §2.4.3).
    pub fn seed_fine_from_coarse(&self, coarse: &Lattice, fine: &mut Lattice) {
        for node in 0..fine.node_count() {
            if fine.flag(node) != NodeClass::Fluid {
                continue;
            }
            let p = self.fine_to_coarse(fine, node);
            let kappa =
                neq_scale_coarse_to_fine(coarse.tau_at(nearest_node(coarse, p)), fine.tau, self.n);
            let fi = interpolate_distributions(coarse, p[0], p[1], p[2]);
            let (rho, u) = moments(&fi);
            let feq = equilibrium_all(rho, u[0], u[1], u[2]);
            let mut out = [0.0; Q];
            for i in 0..Q {
                out[i] = feq[i] + kappa * (fi[i] - feq[i]);
            }
            fine.set_distributions(node, &out);
            fine.rho[node] = rho;
            fine.vel[node * 3..node * 3 + 3].copy_from_slice(&u);
        }
    }
}

/// Advance one coupled coarse step: coarse step, `n` fine substeps with
/// shell imposition, then restriction. `fine_hook(fine, substep)` runs
/// before each fine collision (IBM force spreading goes there).
pub fn coupled_step<F: FnMut(&mut Lattice, usize)>(
    coarse: &mut Lattice,
    fine: &mut Lattice,
    map: &CouplingMap,
    mut fine_hook: F,
) {
    let old = map.snapshot(coarse, fine);
    coarse.step();
    let new = map.snapshot(coarse, fine);
    for k in 0..map.n {
        let theta = (k + 1) as f64 / map.n as f64;
        fine_hook(fine, k);
        fine.advance(SubStep::Collide);
        map.impose_shell(fine, &old, &new, theta);
        fine.advance(SubStep::Stream);
    }
    map.restrict(coarse, fine);
}

/// Nearest coarse node to a fractional coarse-lattice position.
fn nearest_node(coarse: &Lattice, p: [f64; 3]) -> usize {
    let x = (p[0].round() as usize).min(coarse.nx - 1);
    let y = (p[1].round() as usize).min(coarse.ny - 1);
    let z = (p[2].round() as usize).min(coarse.nz - 1);
    coarse.idx(x, y, z)
}
