//! Trilinear interpolation of distribution data on a lattice.

use apr_lattice::{Lattice, Q};

/// Trilinearly interpolate all 19 distributions at fractional lattice
/// position `(x, y, z)` (in the lattice's own node coordinates).
///
/// Positions are clamped to the valid cell range, so querying exactly on the
/// domain edge is safe. Wall/exterior nodes contribute their (stale)
/// distributions; callers should keep interpolation points a node away from
/// geometry, as the window placement logic does.
pub fn interpolate_distributions(lat: &Lattice, x: f64, y: f64, z: f64) -> [f64; Q] {
    let cx = x.clamp(0.0, (lat.nx - 1) as f64);
    let cy = y.clamp(0.0, (lat.ny - 1) as f64);
    let cz = z.clamp(0.0, (lat.nz - 1) as f64);
    let x0 = (cx.floor() as usize).min(lat.nx.saturating_sub(2));
    let y0 = (cy.floor() as usize).min(lat.ny.saturating_sub(2));
    let z0 = (cz.floor() as usize).min(lat.nz.saturating_sub(2));
    let fx = cx - x0 as f64;
    let fy = cy - y0 as f64;
    let fz = cz - z0 as f64;
    let mut out = [0.0; Q];
    for dz in 0..2 {
        let wz = if dz == 0 { 1.0 - fz } else { fz };
        if wz == 0.0 {
            continue;
        }
        for dy in 0..2 {
            let wy = if dy == 0 { 1.0 - fy } else { fy };
            if wy == 0.0 {
                continue;
            }
            for dx in 0..2 {
                let wx = if dx == 0 { 1.0 - fx } else { fx };
                if wx == 0.0 {
                    continue;
                }
                let node = lat.idx(x0 + dx, y0 + dy, z0 + dz);
                let w = wx * wy * wz;
                let fs = lat.distributions(node);
                for i in 0..Q {
                    out[i] += w * fs[i];
                }
            }
        }
    }
    out
}

/// Density and velocity moments of a distribution set.
pub fn moments(f: &[f64; Q]) -> (f64, [f64; 3]) {
    use apr_lattice::C;
    let mut rho = 0.0;
    let mut m = [0.0f64; 3];
    for i in 0..Q {
        rho += f[i];
        m[0] += f[i] * C[i][0] as f64;
        m[1] += f[i] * C[i][1] as f64;
        m[2] += f[i] * C[i][2] as f64;
    }
    (rho, [m[0] / rho, m[1] / rho, m[2] / rho])
}

#[cfg(test)]
mod tests {
    use super::*;
    use apr_lattice::equilibrium_all;

    #[test]
    fn on_node_query_returns_node_values() {
        let mut lat = Lattice::new(6, 6, 6, 1.0);
        lat.initialize_node_equilibrium(lat.idx(2, 3, 4), 1.1, [0.02, 0.0, 0.01]);
        let f = interpolate_distributions(&lat, 2.0, 3.0, 4.0);
        let expected = equilibrium_all(1.1, 0.02, 0.0, 0.01);
        for i in 0..Q {
            assert!((f[i] - expected[i]).abs() < 1e-14, "direction {i}");
        }
    }

    #[test]
    fn linear_fields_interpolate_exactly() {
        // Seed a linearly varying equilibrium field: f is not linear in u
        // (quadratic terms), so check the midpoint of two equal-u nodes
        // and a linear ρ ramp instead.
        let mut lat = Lattice::new(8, 4, 4, 1.0);
        for x in 0..8 {
            for y in 0..4 {
                for z in 0..4 {
                    let rho = 1.0 + 0.01 * x as f64;
                    lat.initialize_node_equilibrium(lat.idx(x, y, z), rho, [0.0; 3]);
                }
            }
        }
        let f = interpolate_distributions(&lat, 2.5, 1.0, 1.0);
        let (rho, _) = moments(&f);
        assert!((rho - 1.025).abs() < 1e-12, "rho = {rho}");
    }

    #[test]
    fn clamping_handles_domain_edges() {
        let lat = Lattice::new(4, 4, 4, 1.0);
        let f = interpolate_distributions(&lat, -0.5, 3.9, 10.0);
        let (rho, u) = moments(&f);
        assert!((rho - 1.0).abs() < 1e-12);
        assert!(u.iter().all(|c| c.abs() < 1e-12));
    }

    #[test]
    fn moments_match_lattice_moments() {
        let mut lat = Lattice::new(4, 4, 4, 1.0);
        let node = lat.idx(1, 2, 3);
        lat.initialize_node_equilibrium(node, 0.97, [0.01, -0.03, 0.02]);
        let mut f = [0.0; Q];
        f.copy_from_slice(lat.distributions(node));
        let (rho, u) = moments(&f);
        let (rho2, u2) = lat.moments_at(node);
        assert!((rho - rho2).abs() < 1e-15);
        for a in 0..3 {
            assert!((u[a] - u2[a]).abs() < 1e-15);
        }
    }
}
