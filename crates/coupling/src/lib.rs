//! Multi-resolution, multi-viscosity APR coupling (paper §2.4.1).
//!
//! "Building upon the previous APR algorithm, for modeling RBCs explicitly
//! within the window region we consider a discontinuity in the physical
//! kinematic viscosity ν such that ν_f = λ·ν_c" — this crate links the
//! coarse whole-blood bulk lattice and the fine plasma window lattice:
//! relaxation-time mapping (Eq. 7, [`refinement`]), trilinear data transfer
//! ([`interpolation`]), and the two-way interface exchange with
//! non-equilibrium rescaling ([`interface`]).

pub mod interface;
pub mod interpolation;
pub mod refinement;

pub use interface::{coupled_step, CouplingMap, ShellSnapshot};
pub use interpolation::{interpolate_distributions, moments};
pub use refinement::{
    coarse_tau, coarse_window_tau, fine_tau, neq_scale_coarse_to_fine, neq_scale_fine_to_coarse,
};
