//! Relaxation-time mapping across resolution and viscosity (paper Eq. 7).
//!
//! The window lattice refines the bulk by a factor `n` in space and (with
//! convective scaling) in time, and carries a *different physical fluid*:
//! plasma at `ν_f = λ·ν_c` instead of whole blood. Matching both gives
//!
//! ```text
//! τ_f = 1/2 + n·λ·(τ_c − 1/2)
//! ```

/// Fine-lattice relaxation time from the coarse one (paper Eq. 7).
///
/// ```
/// // Figure 6 parameters: n = 5, plasma/blood λ = 0.3, τ_c = 1.
/// let tau_f = apr_coupling::fine_tau(1.0, 5, 0.3);
/// assert!((tau_f - 1.25).abs() < 1e-12);
/// ```
///
/// # Panics
/// Panics for `tau_c ≤ 1/2`, zero `n`, or non-positive `lambda`.
pub fn fine_tau(tau_c: f64, n: usize, lambda: f64) -> f64 {
    assert!(tau_c > 0.5, "coarse tau must exceed 1/2, got {tau_c}");
    assert!(n >= 1, "refinement ratio must be at least 1");
    assert!(
        lambda > 0.0,
        "viscosity ratio must be positive, got {lambda}"
    );
    0.5 + n as f64 * lambda * (tau_c - 0.5)
}

/// Inverse of [`fine_tau`]: coarse relaxation time realizing a given fine one.
pub fn coarse_tau(tau_f: f64, n: usize, lambda: f64) -> f64 {
    assert!(tau_f > 0.5, "fine tau must exceed 1/2, got {tau_f}");
    assert!(n >= 1 && lambda > 0.0);
    0.5 + (tau_f - 0.5) / (n as f64 * lambda)
}

/// Pre-collision non-equilibrium rescaling factor, coarse → fine
/// (Dupuis–Chopard), using the **local** coarse relaxation time.
///
/// From the Chapman–Enskog form `f^neq ≈ −(τ w ρ/c_s²) Q:S_lattice` with
/// `S_lattice = S_physical·Δt` and convective scaling `Δt_f = Δt_c/n`:
///
/// ```text
/// f^neq_f / f^neq_c = τ_f / (n·τ_c_local)
/// ```
///
/// Viscosity contrast enters through `τ_c_local`: where the coarse lattice
/// models the same physical fluid as the window (its footprint carries the
/// λ-scaled relaxation time, see `CouplingMap::apply_window_viscosity`), the
/// strain rates on both sides match and the plain refinement factor applies.
pub fn neq_scale_coarse_to_fine(tau_c_local: f64, tau_f: f64, n: usize) -> f64 {
    tau_f / (n as f64 * tau_c_local)
}

/// Pre-collision non-equilibrium rescaling factor, fine → coarse
/// (inverse of [`neq_scale_coarse_to_fine`]).
pub fn neq_scale_fine_to_coarse(tau_c_local: f64, tau_f: f64, n: usize) -> f64 {
    1.0 / neq_scale_coarse_to_fine(tau_c_local, tau_f, n)
}

/// Relaxation time the **coarse** lattice should carry inside the window
/// footprint when the window region physically holds the λ-viscosity fluid
/// (fluid-only verification, paper §3.1): `τ'_c = 1/2 + λ(τ_c − 1/2)`.
pub fn coarse_window_tau(tau_c: f64, lambda: f64) -> f64 {
    assert!(tau_c > 0.5 && lambda > 0.0);
    0.5 + lambda * (tau_c - 0.5)
}

/// Number of fine substeps per coarse step under convective scaling
/// (`Δt ∝ Δx`, which keeps lattice velocities identical across grids).
pub fn substeps(n: usize) -> usize {
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use apr_lattice::lattice_viscosity_from_tau;

    #[test]
    fn eq7_reproduces_paper_form() {
        // τf = 1/2 + nλ(τc − 1/2)
        let tau_c = 1.0;
        assert!((fine_tau(tau_c, 10, 0.5) - (0.5 + 10.0 * 0.5 * 0.5)).abs() < 1e-15);
        assert!((fine_tau(tau_c, 2, 1.0) - 1.5).abs() < 1e-15);
        // λ = 1, n = 1: identity.
        assert!((fine_tau(0.93, 1, 1.0) - 0.93).abs() < 1e-15);
    }

    #[test]
    fn round_trip_fine_coarse() {
        for (n, lambda) in [(2, 0.5), (5, 1.0 / 3.0), (10, 0.25)] {
            let tau_c = 1.02;
            let tau_f = fine_tau(tau_c, n, lambda);
            assert!((coarse_tau(tau_f, n, lambda) - tau_c).abs() < 1e-12);
        }
    }

    #[test]
    fn physical_viscosity_is_consistent_across_grids() {
        // ν_phys = ν_lat·Δx²/Δt; with Δx_f = Δx_c/n and Δt_f = Δt_c/n the
        // fine lattice viscosity must be n·λ·ν_lat_c to represent λ·ν_phys.
        for (n, lambda) in [(2usize, 0.5), (5, 1.0 / 3.0), (10, 0.25)] {
            let tau_c = 0.95;
            let tau_f = fine_tau(tau_c, n, lambda);
            let nu_lat_c = lattice_viscosity_from_tau(tau_c);
            let nu_lat_f = lattice_viscosity_from_tau(tau_f);
            // ν_phys_f / ν_phys_c = (ν_lat_f/(n²·(1/n))) / ν_lat_c  — Δx²/Δt
            // scaling contributes 1/n, so physical ratio = ν_lat_f/(n·ν_lat_c).
            let physical_ratio = nu_lat_f / (n as f64 * nu_lat_c);
            assert!(
                (physical_ratio - lambda).abs() < 1e-12,
                "n={n} λ={lambda}: ratio {physical_ratio}"
            );
        }
    }

    #[test]
    fn smaller_lambda_reduces_fine_tau() {
        // Paper §3.1: "τf will be reduced relative to single-viscosity
        // simulations since λ < 1".
        let tau_c = 1.0;
        let single = fine_tau(tau_c, 10, 1.0);
        for lambda in [0.5, 1.0 / 3.0, 0.25] {
            assert!(fine_tau(tau_c, 10, lambda) < single);
        }
    }

    #[test]
    fn neq_scales_are_reciprocal() {
        let (tau_c, n, lambda) = (1.0, 5, 1.0 / 3.0);
        let tau_f = fine_tau(tau_c, n, lambda);
        let tau_c_local = coarse_window_tau(tau_c, lambda);
        let down = neq_scale_coarse_to_fine(tau_c_local, tau_f, n);
        let up = neq_scale_fine_to_coarse(tau_c_local, tau_f, n);
        assert!((down * up - 1.0).abs() < 1e-15);
    }

    #[test]
    fn matched_fluids_give_unit_strain_transfer() {
        // When the coarse footprint carries τ'_c, the lattice viscosity
        // ratio between fine and local-coarse is exactly n (the resolution
        // factor), so the neq factor reduces to the single-fluid
        // Dupuis–Chopard value.
        let (tau_c, n, lambda) = (0.9, 10, 0.25);
        let tau_f = fine_tau(tau_c, n, lambda);
        let tau_local = coarse_window_tau(tau_c, lambda);
        assert!(
            ((tau_f - 0.5) - n as f64 * (tau_local - 0.5)).abs() < 1e-12,
            "ν_lat scaling must be n between matched grids"
        );
    }

    #[test]
    fn fine_tau_stays_stable_for_paper_parameters() {
        // All nine (λ, n) pairs of Table 1 must give τ_f in BGK's stable
        // range; λ < 1 keeps τ_f well below the single-viscosity value
        // n(τ_c − 1/2) + 1/2 (= 5.5 at n = 10), which is exactly why the
        // paper can afford τ_c ≈ 1 at n = 10.
        for lambda in [0.5, 1.0 / 3.0, 0.25] {
            for n in [2usize, 5, 10] {
                let tau_f = fine_tau(1.0, n, lambda);
                assert!(tau_f > 0.5 && tau_f <= 3.0, "λ={lambda} n={n}: τf={tau_f}");
                assert!(tau_f < fine_tau(1.0, n, 1.0));
            }
        }
    }
}
