//! Coupled bulk/window shear-flow verification — the paper's §3.1 problem
//! at test scale. A fine window at viscosity ratio λ spans the middle layer
//! of a three-layer Couette stack; the coupled steady state must reproduce
//! the piecewise-linear analytic profile (Eq. 8) in both lattices.

use apr_coupling::{coupled_step, fine_tau, CouplingMap};
use apr_hemo::analytic::ThreeLayerCouette;
use apr_hemo::error::l2_error_norm;
use apr_lattice::{couette_channel, Lattice};

/// Build the coupled Couette problem.
///
/// Coarse channel: walls at y = 0 and y = ny−1, fluid height `ny − 2`
/// lattice units, periodic x/z. The window spans coarse y ∈ [y_lo, y_hi]
/// (node-aligned) at refinement `n` and viscosity ratio `lambda`.
struct CoupledCouette {
    coarse: Lattice,
    fine: Lattice,
    map: CouplingMap,
    u_lid: f64,
    analytic: ThreeLayerCouette,
}

fn build(n: usize, lambda: f64) -> CoupledCouette {
    let (nx_c, ny_c, nz_c) = (4usize, 26usize, 4usize);
    let u_lid = 0.02;
    let tau_c = 1.0;
    let coarse = couette_channel(nx_c, ny_c, nz_c, tau_c, u_lid);

    // Window spans coarse y ∈ [8, 16]; physical heights (walls at 0.5 and
    // 24.5): layers of 7.5 / 8.0 / 8.5 lattice units.
    let (y_lo, y_hi) = (8usize, 16usize);
    let fine_ny = (y_hi - y_lo) * n + 1;
    let mut fine = Lattice::new(nx_c * n, fine_ny, nz_c * n, fine_tau(tau_c, n, lambda));
    fine.periodic = [true, false, true];

    let mut coarse = coarse;
    let map = CouplingMap::new(&coarse, &fine, [0.0, y_lo as f64, 0.0], n, lambda, 1.0);
    // Fluid-only window: the window region physically holds the λ-viscosity
    // fluid, so the coarse footprint carries the λ-scaled relaxation time.
    map.apply_window_viscosity(&mut coarse, &fine);
    map.seed_fine_from_coarse(&coarse, &mut fine);

    let analytic = ThreeLayerCouette::new([7.5, 8.0, 8.5], [1.0, lambda, 1.0], u_lid);
    CoupledCouette {
        coarse,
        fine,
        map,
        u_lid,
        analytic,
    }
}

/// Run the coupled problem to steady state and return (bulk L2, window L2)
/// velocity errors against Eq. 8.
fn run_case(n: usize, lambda: f64, steps: usize) -> (f64, f64) {
    let mut sys = build(n, lambda);
    for _ in 0..steps {
        coupled_step(&mut sys.coarse, &mut sys.fine, &sys.map, |_, _| {});
    }

    // Bulk error: coarse fluid nodes outside the window (regions 1 and 3).
    let mut sim = Vec::new();
    let mut exact = Vec::new();
    for y in 1..sys.coarse.ny - 1 {
        if (8..=16).contains(&y) {
            continue;
        }
        let node = sys.coarse.idx(2, y, 2);
        sim.push(sys.coarse.velocity_at(node)[0]);
        exact.push(sys.analytic.velocity(y as f64 - 0.5));
    }
    let bulk = l2_error_norm(&sim, &exact);

    // Window error: fine nodes through the window interior.
    let mut sim = Vec::new();
    let mut exact = Vec::new();
    for j in 1..sys.fine.ny - 1 {
        let node = sys.fine.idx(sys.fine.nx / 2, j, sys.fine.nz / 2);
        sim.push(sys.fine.velocity_at(node)[0]);
        exact.push(sys.analytic.velocity(7.5 + j as f64 / n as f64));
    }
    let window = l2_error_norm(&sim, &exact);
    let _ = sys.u_lid;
    (bulk, window)
}

#[test]
fn uniform_viscosity_coupling_recovers_linear_profile() {
    // λ = 1 degenerates to plain grid refinement: the classic linear
    // Couette profile must appear in both lattices.
    let (bulk, window) = run_case(2, 1.0, 6000);
    assert!(bulk < 0.01, "bulk L2 error {bulk}");
    assert!(window < 0.01, "window L2 error {window}");
}

#[test]
fn paper_lambda_half_n2() {
    let (bulk, window) = run_case(2, 0.5, 8000);
    // Paper Table 1 reports ~1% bulk and ~1.8% window for λ = 1/2.
    assert!(bulk < 0.04, "bulk L2 error {bulk}");
    assert!(window < 0.06, "window L2 error {window}");
}

#[test]
fn paper_lambda_quarter_n2() {
    let (bulk, window) = run_case(2, 0.25, 10000);
    // Paper Table 1: ~1% bulk, ~3.9% window for λ = 1/4.
    assert!(bulk < 0.05, "bulk L2 error {bulk}");
    assert!(window < 0.08, "window L2 error {window}");
}

#[test]
fn refinement_ratio_five() {
    let (bulk, window) = run_case(5, 0.5, 6000);
    assert!(bulk < 0.04, "bulk L2 error {bulk}");
    assert!(window < 0.06, "window L2 error {window}");
}

#[test]
fn window_shear_rate_is_amplified_by_viscosity_contrast() {
    // Physics check: the plasma layer shears 1/λ faster than the bulk.
    let lambda = 0.5;
    let mut sys = build(2, lambda);
    for _ in 0..8000 {
        coupled_step(&mut sys.coarse, &mut sys.fine, &sys.map, |_, _| {});
    }
    // Shear rate in the window (central difference around mid-window).
    let n = 2.0;
    let mid = sys.fine.ny / 2;
    let u_hi = sys.fine.velocity_at(sys.fine.idx(2, mid + 2, 2))[0];
    let u_lo = sys.fine.velocity_at(sys.fine.idx(2, mid - 2, 2))[0];
    let window_rate = (u_hi - u_lo) / (4.0 / n); // per coarse spacing
                                                 // Shear rate in region 1 (coarse).
    let u4 = sys.coarse.velocity_at(sys.coarse.idx(2, 4, 2))[0];
    let u2 = sys.coarse.velocity_at(sys.coarse.idx(2, 2, 2))[0];
    let bulk_rate = (u4 - u2) / 2.0;
    let ratio = window_rate / bulk_rate;
    assert!(
        (ratio - 1.0 / lambda).abs() < 0.15 / lambda,
        "shear amplification {ratio}, expected {}",
        1.0 / lambda
    );
}

#[test]
fn seeding_reproduces_coarse_state() {
    let sys = build(2, 0.5);
    // Freshly seeded fine lattice must mirror the (resting) coarse state.
    for j in [1usize, 5, 9, 15] {
        let node = sys.fine.idx(2, j, 2);
        let (rho, u) = sys.fine.moments_at(node);
        assert!((rho - 1.0).abs() < 1e-9);
        assert!(u.iter().all(|c| c.abs() < 1e-9));
    }
}

#[test]
fn mass_stays_bounded_through_coupling() {
    let mut sys = build(2, 0.5);
    let m0 = sys.coarse.total_mass() + sys.fine.total_mass();
    for _ in 0..2000 {
        coupled_step(&mut sys.coarse, &mut sys.fine, &sys.map, |_, _| {});
    }
    let m1 = sys.coarse.total_mass() + sys.fine.total_mass();
    // Interface exchange is not exactly conservative (interpolation), but
    // drift must stay far below a percent over thousands of steps.
    assert!((m1 - m0).abs() / m0 < 5e-3, "mass drift {m0} -> {m1}");
}
