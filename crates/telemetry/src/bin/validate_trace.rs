//! CI validator for exported telemetry artifacts.
//!
//! ```sh
//! cargo run -p apr-telemetry --bin validate_trace -- trace.json [metrics.jsonl] \
//!     [--min-coverage 0.95] [--flightrec flightrec.json]
//! ```
//!
//! Exits non-zero unless the Chrome trace parses, is schema-complete with
//! monotone timestamps, and its depth-1 phase spans cover at least the
//! requested fraction of top-level step time; the optional metrics JSONL
//! must parse as a non-empty monotone time series; the optional flight
//! record must carry the attribution header (session + runtime config).

use apr_telemetry::{validate_chrome_trace, validate_flightrec, validate_metrics_jsonl};

fn fail(msg: &str) -> ! {
    eprintln!("validate_trace: {msg}");
    std::process::exit(1)
}

fn main() {
    let mut trace_path: Option<String> = None;
    let mut metrics_path: Option<String> = None;
    let mut flightrec_path: Option<String> = None;
    let mut min_coverage = 0.0f64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--flightrec" => {
                flightrec_path = Some(
                    args.next()
                        .unwrap_or_else(|| fail("--flightrec needs a path")),
                );
            }
            "--min-coverage" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| fail("--min-coverage needs a value"));
                min_coverage = v
                    .parse()
                    .unwrap_or_else(|_| fail("--min-coverage must be a number"));
            }
            other if trace_path.is_none() => trace_path = Some(other.to_string()),
            other if metrics_path.is_none() => metrics_path = Some(other.to_string()),
            other => fail(&format!("unexpected argument {other}")),
        }
    }
    let trace_path = trace_path.unwrap_or_else(|| {
        fail(
            "usage: validate_trace <trace.json> [metrics.jsonl] [--min-coverage F] [--flightrec F]",
        )
    });

    let text = std::fs::read_to_string(&trace_path)
        .unwrap_or_else(|e| fail(&format!("cannot read {trace_path}: {e}")));
    let summary =
        validate_chrome_trace(&text).unwrap_or_else(|e| fail(&format!("{trace_path}: {e}")));
    println!(
        "{trace_path}: {} spans ({} correlated), {} events, phase coverage {:.1}% of {:.3} ms top-level",
        summary.span_records,
        summary.correlated_spans,
        summary.event_records,
        summary.phase_coverage() * 100.0,
        summary.top_level_us / 1e3,
    );
    if summary.phase_coverage() < min_coverage {
        fail(&format!(
            "phase coverage {:.3} below required {min_coverage}",
            summary.phase_coverage()
        ));
    }

    if let Some(metrics_path) = metrics_path {
        let text = std::fs::read_to_string(&metrics_path)
            .unwrap_or_else(|e| fail(&format!("cannot read {metrics_path}: {e}")));
        let m =
            validate_metrics_jsonl(&text).unwrap_or_else(|e| fail(&format!("{metrics_path}: {e}")));
        println!("{metrics_path}: {} metric samples, monotone", m.rows);
    }

    if let Some(flightrec_path) = flightrec_path {
        let text = std::fs::read_to_string(&flightrec_path)
            .unwrap_or_else(|e| fail(&format!("cannot read {flightrec_path}: {e}")));
        let f =
            validate_flightrec(&text).unwrap_or_else(|e| fail(&format!("{flightrec_path}: {e}")));
        let runtime: Vec<String> = f.runtime.iter().map(|(k, v)| format!("{k}={v}")).collect();
        println!(
            "{flightrec_path}: {} entries, session {}, runtime [{}]",
            f.entries,
            f.session,
            runtime.join(", ")
        );
    }
    println!("OK");
}
