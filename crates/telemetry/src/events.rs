//! Typed telemetry events: discrete happenings in the APR step loop that a
//! flat timer cannot express — window moves, insertion repopulations,
//! guardian rollbacks, halo exchanges.
//!
//! Every variant is `Copy` with no heap payload so that constructing one on
//! a disabled recorder costs nothing (the no-alloc guarantee the hot loop
//! relies on).

/// One discrete occurrence in the simulation, stamped by the recorder with
/// the shared clock on emission.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TelemetryEvent {
    /// The fine window recentred on the CTC.
    WindowMove {
        /// Engine step the move happened at.
        step: u64,
        /// Window-centre displacement (fine lattice units).
        shift: [f64; 3],
        /// Cells kept in place (capture region).
        captured: u32,
        /// Deformed copies placed into the fill region.
        copied: u32,
        /// Cells removed because they left the new window.
        removed: u32,
    },
    /// A hematocrit-maintenance sweep inserted cells.
    Repopulation {
        /// Engine step of the sweep.
        step: u64,
        /// Subregions below threshold.
        needy_subregions: u32,
        /// Cells successfully inserted.
        inserted: u32,
        /// Candidates rejected (overlap or out of region).
        rejected: u32,
    },
    /// Cells crossed the window boundary and were removed.
    EscapedCells {
        /// Engine step of the maintenance sweep.
        step: u64,
        /// Cells removed.
        count: u32,
    },
    /// The divergence sentinel found the state unhealthy.
    SentinelTrip {
        /// Engine step the inspection ran at.
        step: u64,
        /// Issues detected (truncated at the sentinel's cap).
        issues: u32,
        /// Kind of the first issue (e.g. `"non_finite_density"`).
        first_kind: &'static str,
    },
    /// A healthy checkpoint was captured.
    CheckpointSaved {
        /// Engine step the checkpoint represents.
        step: u64,
        /// Serialized size in bytes.
        bytes: u64,
    },
    /// The guardian rolled the engine back to the last good checkpoint.
    Rollback {
        /// Step the failure was detected at.
        step: u64,
        /// Consecutive recovery attempt number (1-based).
        attempt: u32,
        /// Step the engine was restored to.
        restored_step: u64,
        /// Fresh insertion-RNG seed after the rollback.
        new_seed: u64,
        /// Fine-lattice τ after any Eq.-7 tightening.
        fine_tau: f64,
    },
    /// The guardian exhausted its retry budget and gave up.
    RetriesExhausted {
        /// Step of the fatal incident.
        step: u64,
        /// Attempts consumed.
        attempts: u32,
    },
    /// One halo exchange completed across all tasks.
    HaloExchange {
        /// 0-based exchange round.
        round: u64,
        /// Total bytes moved.
        bytes: u64,
        /// Receives starved by dropped sends (fault injection only).
        starved: u32,
    },
    /// A sealed halo message failed validation or timed out and was
    /// re-requested from the sender's retained buffer.
    HaloResend {
        /// 0-based exchange round.
        round: u64,
        /// Resend attempt within the round (1-based).
        attempt: u32,
        /// Messages re-requested in this attempt.
        messages: u32,
    },
    /// The rank supervisor declared a rank dead (panic, kill, or
    /// heartbeat stall).
    RankDown {
        /// Step at which the loss was detected.
        step: u64,
        /// The lost rank.
        rank: u32,
        /// Detection reason (e.g. `"killed"`, `"panicked"`, `"hung"`).
        reason: &'static str,
    },
    /// A lost rank was respawned and restored from its buddy replica; all
    /// ranks rolled back to the common checkpoint epoch.
    RankRestored {
        /// Step at which recovery completed (pre-replay).
        step: u64,
        /// The recovered rank.
        rank: u32,
        /// Checkpoint epoch (step) the run was rolled back to.
        restored_epoch: u64,
    },
    /// The serve scheduler admitted a session into the job queue.
    SessionAdmitted {
        /// Service-assigned session id.
        session: u64,
        /// Scenario hash the session will run.
        scenario: u64,
    },
    /// A session was granted a time slice and (re)started stepping —
    /// either cold-built or restored from a parked checkpoint.
    SessionResumed {
        /// Session id.
        session: u64,
        /// Engine step the slice starts from.
        step: u64,
    },
    /// A session's slice expired: its engine was checkpointed to memory
    /// and the workers were handed to the next session.
    SessionPreempted {
        /// Session id.
        session: u64,
        /// Engine step the checkpoint represents.
        step: u64,
        /// Parked checkpoint size in bytes.
        bytes: u64,
    },
    /// A session reached its target step count and left the service.
    SessionCompleted {
        /// Session id.
        session: u64,
        /// Final engine step.
        step: u64,
    },
    /// A session's scenario was found pre-relaxed in the warm-state cache
    /// (setup skipped entirely).
    WarmCacheHit {
        /// Session id.
        session: u64,
        /// Scenario hash that hit.
        scenario: u64,
    },
    /// A session's scenario was not cached; it was built cold and the
    /// relaxed state was inserted for successors.
    WarmCacheMiss {
        /// Session id.
        session: u64,
        /// Scenario hash that missed.
        scenario: u64,
    },
}

impl TelemetryEvent {
    /// Stable machine-readable kind tag (used as the Chrome-trace event
    /// name and by tests asserting event sequences).
    pub fn kind(&self) -> &'static str {
        match self {
            TelemetryEvent::WindowMove { .. } => "window_move",
            TelemetryEvent::Repopulation { .. } => "repopulation",
            TelemetryEvent::EscapedCells { .. } => "escaped_cells",
            TelemetryEvent::SentinelTrip { .. } => "sentinel_trip",
            TelemetryEvent::CheckpointSaved { .. } => "checkpoint_saved",
            TelemetryEvent::Rollback { .. } => "rollback",
            TelemetryEvent::RetriesExhausted { .. } => "retries_exhausted",
            TelemetryEvent::HaloExchange { .. } => "halo_exchange",
            TelemetryEvent::HaloResend { .. } => "halo_resend",
            TelemetryEvent::RankDown { .. } => "rank_down",
            TelemetryEvent::RankRestored { .. } => "rank_restored",
            TelemetryEvent::SessionAdmitted { .. } => "session_admitted",
            TelemetryEvent::SessionResumed { .. } => "session_resumed",
            TelemetryEvent::SessionPreempted { .. } => "session_preempted",
            TelemetryEvent::SessionCompleted { .. } => "session_completed",
            TelemetryEvent::WarmCacheHit { .. } => "warm_cache_hit",
            TelemetryEvent::WarmCacheMiss { .. } => "warm_cache_miss",
        }
    }

    /// Engine step the event refers to (`HaloExchange` reports its round;
    /// admission and cache events, which precede any stepping, report 0).
    pub fn step(&self) -> u64 {
        match *self {
            TelemetryEvent::WindowMove { step, .. }
            | TelemetryEvent::Repopulation { step, .. }
            | TelemetryEvent::EscapedCells { step, .. }
            | TelemetryEvent::SentinelTrip { step, .. }
            | TelemetryEvent::CheckpointSaved { step, .. }
            | TelemetryEvent::Rollback { step, .. }
            | TelemetryEvent::RetriesExhausted { step, .. }
            | TelemetryEvent::RankDown { step, .. }
            | TelemetryEvent::RankRestored { step, .. } => step,
            TelemetryEvent::SessionResumed { step, .. }
            | TelemetryEvent::SessionPreempted { step, .. }
            | TelemetryEvent::SessionCompleted { step, .. } => step,
            TelemetryEvent::HaloExchange { round, .. }
            | TelemetryEvent::HaloResend { round, .. } => round,
            TelemetryEvent::SessionAdmitted { .. }
            | TelemetryEvent::WarmCacheHit { .. }
            | TelemetryEvent::WarmCacheMiss { .. } => 0,
        }
    }

    /// Session id for serve-layer events (`None` for engine/rank events).
    pub fn session(&self) -> Option<u64> {
        match *self {
            TelemetryEvent::SessionAdmitted { session, .. }
            | TelemetryEvent::SessionResumed { session, .. }
            | TelemetryEvent::SessionPreempted { session, .. }
            | TelemetryEvent::SessionCompleted { session, .. }
            | TelemetryEvent::WarmCacheHit { session, .. }
            | TelemetryEvent::WarmCacheMiss { session, .. } => Some(session),
            _ => None,
        }
    }
}

/// An event plus the recorder timestamp it was emitted at.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimedEvent {
    /// Nanoseconds since the recorder's clock origin.
    pub t_ns: u64,
    /// The payload.
    pub event: TelemetryEvent,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_stable_and_distinct() {
        let evs = [
            TelemetryEvent::WindowMove {
                step: 1,
                shift: [1.0, 0.0, 0.0],
                captured: 0,
                copied: 0,
                removed: 0,
            },
            TelemetryEvent::SentinelTrip {
                step: 2,
                issues: 3,
                first_kind: "non_finite_density",
            },
            TelemetryEvent::HaloExchange {
                round: 7,
                bytes: 1024,
                starved: 0,
            },
        ];
        let kinds: Vec<_> = evs.iter().map(|e| e.kind()).collect();
        assert_eq!(kinds, ["window_move", "sentinel_trip", "halo_exchange"]);
        assert_eq!(evs[2].step(), 7);
    }
}
