//! Exporters: Chrome `trace_event` JSON, metrics JSONL time series, and
//! the flat per-phase text table.
//!
//! The Chrome format is the common denominator of `about://tracing` and
//! [Perfetto](https://ui.perfetto.dev): a JSON array of event objects.
//! Spans become complete (`"ph":"X"`) events with microsecond timestamps;
//! typed telemetry events become instant (`"ph":"i"`) events carrying
//! their payload in `args`. Records are sorted by start timestamp so the
//! file is monotone — a property the CI validator asserts.

use crate::events::TelemetryEvent;
use crate::json::{escape, number};
use crate::metrics::MetricValue;
use crate::span::{PhaseStat, Recorder};
use std::fmt::Write as _;

/// Chrome-trace process id used for every record (one simulation = one
/// logical process).
pub const TRACE_PID: u64 = 1;

pub(crate) fn event_args(ev: &TelemetryEvent, out: &mut String) {
    match *ev {
        TelemetryEvent::WindowMove {
            step,
            shift,
            captured,
            copied,
            removed,
        } => {
            let _ = write!(
                out,
                "\"step\":{step},\"shift\":[{},{},{}],\"captured\":{captured},\"copied\":{copied},\"removed\":{removed}",
                number(shift[0]),
                number(shift[1]),
                number(shift[2]),
            );
        }
        TelemetryEvent::Repopulation {
            step,
            needy_subregions,
            inserted,
            rejected,
        } => {
            let _ = write!(
                out,
                "\"step\":{step},\"needy_subregions\":{needy_subregions},\"inserted\":{inserted},\"rejected\":{rejected}"
            );
        }
        TelemetryEvent::EscapedCells { step, count } => {
            let _ = write!(out, "\"step\":{step},\"count\":{count}");
        }
        TelemetryEvent::SentinelTrip {
            step,
            issues,
            first_kind,
        } => {
            let _ = write!(
                out,
                "\"step\":{step},\"issues\":{issues},\"first_kind\":{}",
                escape(first_kind)
            );
        }
        TelemetryEvent::CheckpointSaved { step, bytes } => {
            let _ = write!(out, "\"step\":{step},\"bytes\":{bytes}");
        }
        TelemetryEvent::Rollback {
            step,
            attempt,
            restored_step,
            new_seed,
            fine_tau,
        } => {
            let _ = write!(
                out,
                "\"step\":{step},\"attempt\":{attempt},\"restored_step\":{restored_step},\"new_seed\":{new_seed},\"fine_tau\":{}",
                number(fine_tau)
            );
        }
        TelemetryEvent::RetriesExhausted { step, attempts } => {
            let _ = write!(out, "\"step\":{step},\"attempts\":{attempts}");
        }
        TelemetryEvent::HaloExchange {
            round,
            bytes,
            starved,
        } => {
            let _ = write!(
                out,
                "\"round\":{round},\"bytes\":{bytes},\"starved\":{starved}"
            );
        }
        TelemetryEvent::HaloResend {
            round,
            attempt,
            messages,
        } => {
            let _ = write!(
                out,
                "\"round\":{round},\"attempt\":{attempt},\"messages\":{messages}"
            );
        }
        TelemetryEvent::RankDown { step, rank, reason } => {
            let _ = write!(
                out,
                "\"step\":{step},\"rank\":{rank},\"reason\":{}",
                escape(reason)
            );
        }
        TelemetryEvent::RankRestored {
            step,
            rank,
            restored_epoch,
        } => {
            let _ = write!(
                out,
                "\"step\":{step},\"rank\":{rank},\"restored_epoch\":{restored_epoch}"
            );
        }
        TelemetryEvent::SessionAdmitted { session, scenario } => {
            let _ = write!(out, "\"session\":{session},\"scenario\":{scenario}");
        }
        TelemetryEvent::SessionResumed { session, step } => {
            let _ = write!(out, "\"session\":{session},\"step\":{step}");
        }
        TelemetryEvent::SessionPreempted {
            session,
            step,
            bytes,
        } => {
            let _ = write!(
                out,
                "\"session\":{session},\"step\":{step},\"bytes\":{bytes}"
            );
        }
        TelemetryEvent::SessionCompleted { session, step } => {
            let _ = write!(out, "\"session\":{session},\"step\":{step}");
        }
        TelemetryEvent::WarmCacheHit { session, scenario }
        | TelemetryEvent::WarmCacheMiss { session, scenario } => {
            let _ = write!(out, "\"session\":{session},\"scenario\":{scenario}");
        }
    }
}

impl Recorder {
    /// Render everything captured so far as a Chrome `trace_event` JSON
    /// array, records sorted by start timestamp. Load the result in
    /// `about://tracing` or Perfetto.
    pub fn chrome_trace_json(&self) -> String {
        let inner = self.inner.lock().unwrap();
        // (ts_ns, rendered record) pairs, sorted at the end.
        let mut records: Vec<(u64, String)> = Vec::with_capacity(inner.trace.len() + 8);
        for span in &inner.trace {
            let mut rec = String::with_capacity(160);
            let _ = write!(
                rec,
                "{{\"name\":{},\"cat\":\"apr\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{TRACE_PID},\"tid\":{},\"args\":{{\"depth\":{},\"self_ns\":{}",
                escape(span.name),
                number(span.start_ns as f64 / 1e3),
                number(span.dur_ns as f64 / 1e3),
                span.tid,
                span.depth,
                span.self_ns,
            );
            // Correlation IDs are emitted only when scoped, keeping
            // unscoped traces byte-identical to the pre-correlation
            // format (and Perfetto-compatible: args are free-form).
            if span.session != 0 {
                let _ = write!(rec, ",\"session\":{}", span.session);
            }
            if let Some(rank) = span.rank {
                let _ = write!(rec, ",\"rank\":{rank}");
            }
            if span.step != 0 {
                let _ = write!(rec, ",\"step\":{}", span.step);
            }
            rec.push_str("}}");
            records.push((span.start_ns, rec));
        }
        for timed in &inner.events {
            let mut args = String::with_capacity(96);
            event_args(&timed.event, &mut args);
            let mut rec = String::with_capacity(160);
            let _ = write!(
                rec,
                "{{\"name\":{},\"cat\":\"apr.event\",\"ph\":\"i\",\"s\":\"g\",\"ts\":{},\"pid\":{TRACE_PID},\"tid\":0,\"args\":{{{args}}}}}",
                escape(timed.event.kind()),
                number(timed.t_ns as f64 / 1e3),
            );
            records.push((timed.t_ns, rec));
        }
        drop(inner);
        records.sort_by_key(|&(ts, _)| ts);

        let mut out = String::with_capacity(64 + records.len() * 170);
        out.push('[');
        let _ = write!(
            out,
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{TRACE_PID},\"tid\":0,\"args\":{{\"name\":\"apr-rbc\"}}}}"
        );
        for (key, value) in self.attributes() {
            out.push(',');
            out.push('\n');
            let _ = write!(
                out,
                "{{\"name\":\"run_attribute\",\"ph\":\"M\",\"pid\":{TRACE_PID},\"tid\":0,\"args\":{{{}:{}}}}}",
                escape(&key),
                escape(&value),
            );
        }
        for (_, rec) in &records {
            out.push(',');
            out.push('\n');
            out.push_str(rec);
        }
        out.push(']');
        out
    }

    /// Write the Chrome trace to `path`.
    pub fn write_chrome_trace(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.chrome_trace_json())
    }

    /// Snapshot every registered metric into one JSONL row tagged with the
    /// simulation `step` and the recorder clock. No-op when disabled.
    pub fn sample_metrics(&self, step: u64) {
        if !self.is_enabled() {
            return;
        }
        let t_ns = self.clock().now_ns();
        let mut inner = self.inner.lock().unwrap();
        let mut row = String::with_capacity(64 + inner.metrics.len() * 32);
        let _ = write!(row, "{{\"t_ns\":{t_ns},\"step\":{step}");
        for (name, value) in &inner.metrics {
            let _ = write!(row, ",{}:", escape(name));
            match value {
                MetricValue::Counter(c) => {
                    let _ = write!(row, "{c}");
                }
                MetricValue::Gauge(g) => row.push_str(&number(*g)),
                MetricValue::Histogram(h) => {
                    let _ = write!(row, "{{\"bounds\":[");
                    for (i, b) in h.bounds.iter().enumerate() {
                        if i > 0 {
                            row.push(',');
                        }
                        row.push_str(&number(*b));
                    }
                    let _ = write!(row, "],\"counts\":[");
                    for (i, c) in h.counts.iter().enumerate() {
                        if i > 0 {
                            row.push(',');
                        }
                        let _ = write!(row, "{c}");
                    }
                    let _ = write!(row, "],\"count\":{},\"sum\":{}}}", h.count, number(h.sum));
                }
            }
        }
        row.push('}');
        inner.metric_rows.push(row);
        inner
            .flight
            .push(crate::flight::FlightEntry::MetricsSample { t_ns, step });
    }

    /// All metric samples as a JSONL document (one JSON object per line).
    pub fn metrics_jsonl(&self) -> String {
        self.inner.lock().unwrap().metric_rows.join("\n")
    }

    /// Write the metric time series to `path` as JSONL.
    pub fn write_metrics_jsonl(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.metrics_jsonl())
    }

    /// Render the flat per-phase wall/self-time table as aligned text.
    pub fn render_phase_table(&self) -> String {
        render_phase_table(&self.phase_stats())
    }
}

/// Render a per-phase table (sorted as given) with wall/self/mean columns
/// plus per-worker attribution (mean/max worker time and the
/// load-imbalance factor) for phases that dispatched parallel regions.
pub fn render_phase_table(stats: &[PhaseStat]) -> String {
    let mut out = String::new();
    out.push_str(
        "phase                          count     wall_ms     self_ms     mean_us   w_mean_us    w_max_us     imb\n",
    );
    for s in stats {
        let _ = write!(
            out,
            "{:<28} {:>7} {:>11.3} {:>11.3} {:>11.3}",
            s.name,
            s.count,
            s.total_ns as f64 / 1e6,
            s.self_ns as f64 / 1e6,
            s.mean_ns() / 1e3,
        );
        if s.workers.regions > 0 {
            let _ = writeln!(
                out,
                " {:>11.3} {:>11.3} {:>7.2}",
                s.workers.mean_ns() / 1e3,
                s.workers.max_ns as f64 / 1e3,
                s.workers.imbalance(),
            );
        } else {
            out.push_str("           -           -       -\n");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::Clock;
    use crate::json::{parse, Value};

    #[test]
    fn metrics_jsonl_rows_parse() {
        let rec = Recorder::with_clock(Clock::manual());
        rec.enable();
        rec.counter_add("sites", 100);
        rec.gauge_set("ht", 0.25);
        rec.histogram_record("lat", &[1.0, 2.0], 1.5);
        rec.sample_metrics(1);
        rec.clock().advance(10);
        rec.counter_add("sites", 50);
        rec.sample_metrics(2);
        let jsonl = rec.metrics_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        let row = parse(lines[1]).unwrap();
        assert_eq!(row.get("step").unwrap().as_f64(), Some(2.0));
        assert_eq!(row.get("t_ns").unwrap().as_f64(), Some(10.0));
        assert_eq!(row.get("sites").unwrap().as_f64(), Some(150.0));
        assert_eq!(row.get("ht").unwrap().as_f64(), Some(0.25));
        let h = row.get("lat").unwrap();
        assert_eq!(h.get("count").unwrap().as_f64(), Some(1.0));
    }

    #[test]
    fn chrome_trace_is_valid_sorted_json() {
        let rec = Recorder::with_clock(Clock::manual());
        rec.enable();
        {
            let _a = rec.span("first");
            rec.clock().advance(10);
        }
        rec.emit(TelemetryEvent::CheckpointSaved { step: 1, bytes: 42 });
        rec.clock().advance(5);
        {
            let _b = rec.span("second");
            rec.clock().advance(3);
        }
        let doc = parse(&rec.chrome_trace_json()).unwrap();
        let arr = doc.as_arr().unwrap();
        // Metadata + 2 spans + 1 instant.
        assert_eq!(arr.len(), 4);
        let mut last_ts = f64::MIN;
        for item in &arr[1..] {
            let ts = item.get("ts").unwrap().as_f64().unwrap();
            assert!(ts >= last_ts, "timestamps must be sorted");
            last_ts = ts;
        }
        assert_eq!(arr[1].get("name").unwrap().as_str(), Some("first"));
        assert_eq!(
            arr[2].get("args").unwrap().get("bytes").unwrap().as_f64(),
            Some(42.0)
        );
        assert!(matches!(arr[0].get("ph"), Some(Value::Str(s)) if s == "M"));
    }

    #[test]
    fn phase_table_lists_all_phases() {
        let rec = Recorder::with_clock(Clock::manual());
        rec.enable();
        {
            let _s = rec.span("apr.step");
            rec.clock().advance(1_000_000);
        }
        let table = rec.render_phase_table();
        assert!(table.contains("apr.step"));
        assert!(table.contains("wall_ms"));
    }
}
