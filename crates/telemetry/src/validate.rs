//! Validators for the exported artifacts — used by the CI job (through the
//! `validate_trace` binary) and the golden tests.
//!
//! A trace that "looks plausible" is not enough for CI: these check that
//! the Chrome-trace document parses, every record is schema-complete,
//! timestamps are monotone, and the per-phase spans actually cover the
//! step loop; and that the metrics JSONL is a parseable, monotone time
//! series.

use crate::json::{parse, Value};

/// Summary of a validated Chrome trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSummary {
    /// Complete (`"X"`) span records.
    pub span_records: usize,
    /// Instant (`"i"`) event records.
    pub event_records: usize,
    /// Total wall microseconds of top-level (`depth == 0`) spans.
    pub top_level_us: f64,
    /// Total wall microseconds of `depth == 1` spans — the per-phase
    /// breakdown directly under the step spans.
    pub phase_us: f64,
    /// Span records carrying at least one correlation ID (`args.session`,
    /// `args.rank` or `args.step`) — the fields the critical-path
    /// analyzer groups by. Plain Perfetto viewers ignore them.
    pub correlated_spans: usize,
}

impl TraceSummary {
    /// Fraction of top-level span time covered by depth-1 phase spans
    /// (the acceptance criterion asks ≥ 0.95 for an instrumented run).
    pub fn phase_coverage(&self) -> f64 {
        if self.top_level_us <= 0.0 {
            0.0
        } else {
            self.phase_us / self.top_level_us
        }
    }
}

fn require_num(obj: &Value, key: &str, what: &str) -> Result<f64, String> {
    obj.get(key)
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("{what}: missing numeric \"{key}\""))
}

fn require_str<'a>(obj: &'a Value, key: &str, what: &str) -> Result<&'a str, String> {
    obj.get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| format!("{what}: missing string \"{key}\""))
}

/// Validate a Chrome `trace_event` JSON document.
pub fn validate_chrome_trace(text: &str) -> Result<TraceSummary, String> {
    let doc = parse(text).map_err(|e| format!("trace does not parse: {e}"))?;
    let arr = doc.as_arr().ok_or("trace root must be a JSON array")?;
    let mut summary = TraceSummary {
        span_records: 0,
        event_records: 0,
        top_level_us: 0.0,
        phase_us: 0.0,
        correlated_spans: 0,
    };
    let mut last_ts = f64::MIN;
    for (i, item) in arr.iter().enumerate() {
        let what = format!("record {i}");
        let ph = require_str(item, "ph", &what)?;
        if ph == "M" {
            continue; // metadata records carry no timeline position
        }
        require_str(item, "name", &what)?;
        require_num(item, "pid", &what)?;
        require_num(item, "tid", &what)?;
        let ts = require_num(item, "ts", &what)?;
        if ts < last_ts {
            return Err(format!("{what}: ts {ts} goes backwards (prev {last_ts})"));
        }
        last_ts = ts;
        match ph {
            "X" => {
                let dur = require_num(item, "dur", &what)?;
                if dur < 0.0 {
                    return Err(format!("{what}: negative duration"));
                }
                let depth = item
                    .get("args")
                    .and_then(|a| a.get("depth"))
                    .and_then(Value::as_f64)
                    .ok_or_else(|| format!("{what}: span missing args.depth"))?;
                if depth == 0.0 {
                    summary.top_level_us += dur;
                } else if depth == 1.0 {
                    summary.phase_us += dur;
                }
                // Correlation IDs are optional but must be non-negative
                // numbers when present.
                let mut correlated = false;
                for key in ["session", "rank", "step"] {
                    if let Some(v) = item.get("args").and_then(|a| a.get(key)) {
                        let n = v
                            .as_f64()
                            .ok_or_else(|| format!("{what}: args.{key} must be numeric"))?;
                        if n < 0.0 {
                            return Err(format!("{what}: args.{key} is negative"));
                        }
                        correlated = true;
                    }
                }
                if correlated {
                    summary.correlated_spans += 1;
                }
                summary.span_records += 1;
            }
            "i" => {
                item.get("args")
                    .ok_or_else(|| format!("{what}: instant event missing args"))?;
                summary.event_records += 1;
            }
            other => return Err(format!("{what}: unexpected phase type {other:?}")),
        }
    }
    if summary.span_records == 0 {
        return Err("trace contains no span records".into());
    }
    Ok(summary)
}

/// Summary of a validated metrics JSONL document.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricsSummary {
    /// Sample rows.
    pub rows: usize,
}

/// Validate a metrics JSONL document: every line parses as an object with
/// `t_ns` and `step`, both monotone non-decreasing, at least one row.
pub fn validate_metrics_jsonl(text: &str) -> Result<MetricsSummary, String> {
    let mut rows = 0usize;
    let mut last_t = f64::MIN;
    let mut last_step = f64::MIN;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let row = parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        let t = require_num(&row, "t_ns", &format!("line {}", i + 1))?;
        let step = require_num(&row, "step", &format!("line {}", i + 1))?;
        if t < last_t {
            return Err(format!("line {}: t_ns goes backwards", i + 1));
        }
        if step < last_step {
            return Err(format!("line {}: step goes backwards", i + 1));
        }
        last_t = t;
        last_step = step;
        rows += 1;
    }
    if rows == 0 {
        return Err("metrics series is empty".into());
    }
    Ok(MetricsSummary { rows })
}

/// Summary of a validated flight-recorder dump.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightSummary {
    /// Retained entries.
    pub entries: usize,
    /// Serve session recorded in the header (0 = unscoped).
    pub session: u64,
    /// Runtime annotations recorded in the header, as `(key, value)`
    /// pairs in header order (kernel / threads / chunking when present).
    pub runtime: Vec<(String, String)>,
}

/// Validate a flight-recorder dump: the schema tag matches, the header
/// carries `capacity`/`total`/`dropped` plus the attribution fields
/// (`session` id and the `runtime` object), and every entry is a typed
/// span/event/sample object.
pub fn validate_flightrec(text: &str) -> Result<FlightSummary, String> {
    let doc = parse(text).map_err(|e| format!("flightrec does not parse: {e}"))?;
    let schema = require_str(&doc, "schema", "header")?;
    if schema != crate::flight::FLIGHTREC_SCHEMA {
        return Err(format!("unexpected schema {schema:?}"));
    }
    for key in ["capacity", "total", "dropped"] {
        require_num(&doc, key, "header")?;
    }
    let session = require_num(&doc, "session", "header")? as u64;
    let runtime_obj = doc
        .get("runtime")
        .ok_or("header: missing \"runtime\" object")?;
    let mut runtime = Vec::new();
    for key in ["kernel", "threads", "chunking"] {
        if let Some(v) = runtime_obj.get(key).and_then(Value::as_str) {
            runtime.push((key.to_string(), v.to_string()));
        }
    }
    let entries = doc
        .get("entries")
        .and_then(Value::as_arr)
        .ok_or("header: missing \"entries\" array")?;
    for (i, entry) in entries.iter().enumerate() {
        let what = format!("entry {i}");
        match require_str(entry, "type", &what)? {
            "span" => {
                require_str(entry, "name", &what)?;
                for key in ["tid", "start_ns", "dur_ns", "self_ns", "depth"] {
                    require_num(entry, key, &what)?;
                }
            }
            "event" => {
                require_str(entry, "kind", &what)?;
                require_num(entry, "t_ns", &what)?;
                entry
                    .get("args")
                    .ok_or_else(|| format!("{what}: event missing args"))?;
            }
            "sample" => {
                require_num(entry, "t_ns", &what)?;
                require_num(entry, "step", &what)?;
            }
            other => return Err(format!("{what}: unknown entry type {other:?}")),
        }
    }
    Ok(FlightSummary {
        entries: entries.len(),
        session,
        runtime,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::Clock;
    use crate::span::Recorder;

    #[test]
    fn validator_accepts_recorder_output() {
        let rec = Recorder::with_clock(Clock::manual());
        rec.enable();
        {
            let _step = rec.span("apr.step");
            {
                let _a = rec.span("apr.coarse");
                rec.clock().advance(80);
            }
            {
                let _b = rec.span("fsi.spread");
                rec.clock().advance(15);
            }
            rec.clock().advance(5);
        }
        rec.counter_add("sites", 9);
        rec.sample_metrics(1);
        let summary = validate_chrome_trace(&rec.chrome_trace_json()).unwrap();
        assert_eq!(summary.span_records, 3);
        assert!((summary.phase_coverage() - 0.95).abs() < 1e-9);
        let m = validate_metrics_jsonl(&rec.metrics_jsonl()).unwrap();
        assert_eq!(m.rows, 1);
    }

    #[test]
    fn validator_rejects_garbage() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("[]").is_err());
        assert!(validate_chrome_trace("[{\"ph\":\"X\"}]").is_err());
        assert!(validate_metrics_jsonl("").is_err());
        assert!(validate_metrics_jsonl("{\"t_ns\":1}").is_err());
        // Backwards step.
        let two = "{\"t_ns\":1,\"step\":5}\n{\"t_ns\":2,\"step\":4}";
        assert!(validate_metrics_jsonl(two).is_err());
    }

    #[test]
    fn flightrec_validator_round_trips_header_fields() {
        let rec = Recorder::with_clock(Clock::manual());
        rec.enable();
        rec.set_attribute("runtime.kernel", "fused");
        rec.set_attribute("runtime.threads", "4");
        rec.set_attribute("runtime.chunking", "guided");
        let _scope = crate::span::session_scope(11);
        {
            let _s = rec.span("apr.step");
            rec.clock().advance(10);
        }
        rec.sample_metrics(1);
        let summary = validate_flightrec(&rec.flightrec_json()).unwrap();
        assert_eq!(summary.entries, 2);
        assert_eq!(summary.session, 11, "dumping thread's session id");
        assert_eq!(
            summary.runtime,
            vec![
                ("kernel".to_string(), "fused".to_string()),
                ("threads".to_string(), "4".to_string()),
                ("chunking".to_string(), "guided".to_string()),
            ]
        );
    }

    #[test]
    fn flightrec_validator_rejects_garbage() {
        assert!(validate_flightrec("not json").is_err());
        assert!(validate_flightrec("{\"schema\":\"wrong\"}").is_err());
        // Old-format header without session/runtime attribution fields.
        let old = "{\"schema\":\"apr.flightrec.v1\",\"capacity\":4,\"total\":0,\"dropped\":0,\"entries\":[]}";
        assert!(validate_flightrec(old).unwrap_err().contains("session"));
    }

    #[test]
    fn correlation_ids_round_trip_through_chrome_export() {
        let rec = Recorder::with_clock(Clock::manual());
        rec.enable();
        {
            let _session = crate::span::session_scope(5);
            let _rank = crate::span::rank_scope(0);
            let _step = crate::span::step_scope(42);
            let _s = rec.span("apr.step");
            rec.clock().advance(10);
        }
        {
            let _s = rec.span("plain");
            rec.clock().advance(1);
        }
        let text = rec.chrome_trace_json();
        let summary = validate_chrome_trace(&text).unwrap();
        assert_eq!(summary.span_records, 2);
        assert_eq!(summary.correlated_spans, 1);
        let doc = parse(&text).unwrap();
        let arr = doc.as_arr().unwrap();
        let tagged = arr
            .iter()
            .find(|r| r.get("name").and_then(Value::as_str) == Some("apr.step"))
            .unwrap();
        let args = tagged.get("args").unwrap();
        assert_eq!(args.get("session").unwrap().as_f64(), Some(5.0));
        assert_eq!(args.get("rank").unwrap().as_f64(), Some(0.0));
        assert_eq!(args.get("step").unwrap().as_f64(), Some(42.0));
        let plain = arr
            .iter()
            .find(|r| r.get("name").and_then(Value::as_str) == Some("plain"))
            .unwrap();
        assert!(plain.get("args").unwrap().get("step").is_none());
    }

    #[test]
    fn validator_rejects_non_monotone_trace() {
        let text = r#"[
            {"name":"a","ph":"X","ts":10.0,"dur":1.0,"pid":1,"tid":1,"args":{"depth":0}},
            {"name":"b","ph":"X","ts":5.0,"dur":1.0,"pid":1,"tid":1,"args":{"depth":0}}
        ]"#;
        assert!(validate_chrome_trace(text)
            .unwrap_err()
            .contains("backwards"));
    }
}
