//! Span-based profiler: RAII guards, nestable, thread-aware, with
//! wall/self-time accounting.
//!
//! A [`ScopedSpan`] measures the region between its creation and its drop.
//! Spans nest: each thread keeps a stack, a closing span charges its
//! duration to its parent's child-time accumulator, and the recorder
//! aggregates per-name **wall** time (inclusive) and **self** time
//! (exclusive of children) — the two columns of the §3.4-style breakdown.
//!
//! When the recorder is disabled, [`Recorder::span`] performs a single
//! relaxed atomic load and returns an inert guard: no lock, no allocation,
//! no clock read.

use crate::clock::Clock;
use crate::events::{TelemetryEvent, TimedEvent};
use crate::metrics::{Histogram, MetricValue};
use std::cell::Cell;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// Default cap on retained span records (~48 MB worst case); beyond it the
/// flat aggregates keep updating but the trace stops growing.
pub const DEFAULT_SPAN_CAPACITY: usize = 1_000_000;

static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Small dense thread id for trace export (`std::thread::ThreadId` has
    /// no stable integer form).
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

fn current_tid() -> u64 {
    TID.with(|t| *t)
}

thread_local! {
    /// Session id spans on this thread are attributed to (0 = unscoped).
    /// Set by [`SessionScope`], read at span open.
    static SESSION: Cell<u64> = const { Cell::new(0) };
}

/// Session id currently scoped on this thread (0 = unscoped).
pub fn current_session() -> u64 {
    SESSION.with(Cell::get)
}

/// RAII guard attributing every span opened on this thread to a serve
/// session while it lives. Scopes nest (innermost wins; the previous id is
/// restored on drop), so a scheduler worker that runs session after
/// session never leaks one session's id into the next slice.
#[must_use = "the scope attributes spans only while the guard lives"]
#[derive(Debug)]
pub struct SessionScope {
    prev: u64,
}

/// Attribute spans (and anything else reading [`current_session`]) on this
/// thread to `session` until the returned guard drops.
pub fn session_scope(session: u64) -> SessionScope {
    let prev = SESSION.with(|s| s.replace(session));
    SessionScope { prev }
}

impl Drop for SessionScope {
    fn drop(&mut self) {
        SESSION.with(|s| s.set(self.prev));
    }
}

thread_local! {
    /// Rank id spans on this thread are attributed to (`None` = unscoped).
    /// Set by [`RankScope`], read at span open.
    static RANK: Cell<Option<u32>> = const { Cell::new(None) };
    /// Simulation step spans on this thread are attributed to
    /// (0 = unscoped). Set by [`StepScope`], read at span open.
    static STEP: Cell<u64> = const { Cell::new(0) };
}

/// Rank currently scoped on this thread (`None` = unscoped).
pub fn current_rank() -> Option<u32> {
    RANK.with(Cell::get)
}

/// Simulation step currently scoped on this thread (0 = unscoped).
pub fn current_step() -> u64 {
    STEP.with(Cell::get)
}

/// RAII guard attributing every span opened on this thread to a logical
/// rank (an `apr-parallel` block) while it lives. Like [`SessionScope`],
/// scopes nest and the previous rank is restored on drop. Rank 0 is a
/// real rank, so the unscoped state is `None`, not zero.
#[must_use = "the scope attributes spans only while the guard lives"]
#[derive(Debug)]
pub struct RankScope {
    prev: Option<u32>,
}

/// Attribute spans (and anything else reading [`current_rank`]) on this
/// thread to `rank` until the returned guard drops.
pub fn rank_scope(rank: u32) -> RankScope {
    let prev = RANK.with(|r| r.replace(Some(rank)));
    RankScope { prev }
}

impl Drop for RankScope {
    fn drop(&mut self) {
        RANK.with(|r| r.set(self.prev));
    }
}

/// RAII guard attributing every span opened on this thread to a
/// simulation step while it lives (1-based by convention so that 0 means
/// "unscoped"; `AprEngine::step` scopes `steps + 1`). Together with
/// [`SessionScope`] and [`RankScope`] this forms the correlation-ID
/// triple the critical-path analyzer groups spans by.
#[must_use = "the scope attributes spans only while the guard lives"]
#[derive(Debug)]
pub struct StepScope {
    prev: u64,
}

/// Attribute spans (and anything else reading [`current_step`]) on this
/// thread to simulation step `step` until the returned guard drops.
pub fn step_scope(step: u64) -> StepScope {
    let prev = STEP.with(|s| s.replace(step));
    StepScope { prev }
}

impl Drop for StepScope {
    fn drop(&mut self) {
        STEP.with(|s| s.set(self.prev));
    }
}

/// One completed span occurrence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Phase name (static, from the span taxonomy in DESIGN.md §8).
    pub name: &'static str,
    /// Dense thread id.
    pub tid: u64,
    /// Start, nanoseconds since the recorder clock origin.
    pub start_ns: u64,
    /// Inclusive duration in nanoseconds.
    pub dur_ns: u64,
    /// Exclusive (self) duration: `dur_ns` minus child span time.
    pub self_ns: u64,
    /// Nesting depth at creation (0 = top level).
    pub depth: u16,
    /// Serve session the span ran under (0 = unscoped), captured from the
    /// thread's [`SessionScope`] when the span opened.
    pub session: u64,
    /// Logical rank the span ran under (`None` = unscoped), captured from
    /// the thread's [`RankScope`] when the span opened.
    pub rank: Option<u32>,
    /// Simulation step the span ran under (0 = unscoped), captured from
    /// the thread's [`StepScope`] when the span opened.
    pub step: u64,
}

/// Aggregated per-lane busy-time statistics attached to a span name —
/// "lane" meaning an `apr-exec` worker ([`PhaseStat::workers`]) or an
/// `apr-parallel` halo rank ([`PhaseStat::ranks`]).
///
/// One *region* is one parallel section (one pool dispatch or one halo
/// phase); each region contributes `lanes` samples of per-lane busy time
/// plus one imbalance observation `max_lane / mean_lane`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LaneStats {
    /// Parallel regions recorded under this phase.
    pub regions: u64,
    /// Total per-lane samples (`Σ lanes` over regions).
    pub samples: u64,
    /// Total busy nanoseconds summed over all lanes of all regions.
    pub busy_ns: u64,
    /// Fastest single lane sample.
    pub min_ns: u64,
    /// Slowest single lane sample.
    pub max_ns: u64,
    /// Total barrier-wait nanoseconds summed over all lanes of all
    /// regions: each lane's wait is the region span (dispatch-to-barrier
    /// wall time for pool regions, the slowest rank for rank regions)
    /// minus that lane's busy time. Kept separate from [`busy_ns`] so a
    /// lane idling at a barrier is never mistaken for a lane working —
    /// the distinction behind the paper's rank-wait analysis.
    ///
    /// [`busy_ns`]: LaneStats::busy_ns
    pub wait_ns: u64,
    /// Sum of per-region imbalance factors (see [`LaneStats::imbalance`]).
    pub imbalance_sum: f64,
}

impl LaneStats {
    /// Mean busy nanoseconds per lane sample.
    pub fn mean_ns(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.busy_ns as f64 / self.samples as f64
        }
    }

    /// Mean load-imbalance factor over regions: `max_lane / mean_lane`
    /// per region, averaged. 1.0 means perfectly balanced (and is the
    /// value reported when no regions were recorded); the paper's
    /// CPU-vs-GPU rank-wait analysis is the analogue at MPI scale.
    pub fn imbalance(&self) -> f64 {
        if self.regions == 0 {
            1.0
        } else {
            self.imbalance_sum / self.regions as f64
        }
    }

    fn record_region(&mut self, region_ns: u64, lane_busy_ns: &[u64]) {
        if lane_busy_ns.is_empty() {
            return;
        }
        if self.samples == 0 {
            self.min_ns = u64::MAX;
        }
        let sum: u64 = lane_busy_ns.iter().sum();
        let max = *lane_busy_ns.iter().max().unwrap();
        let min = *lane_busy_ns.iter().min().unwrap();
        self.regions += 1;
        self.samples += lane_busy_ns.len() as u64;
        self.busy_ns += sum;
        self.wait_ns += lane_busy_ns
            .iter()
            .map(|&b| region_ns.saturating_sub(b))
            .sum::<u64>();
        self.min_ns = self.min_ns.min(min);
        self.max_ns = self.max_ns.max(max);
        let mean = sum as f64 / lane_busy_ns.len() as f64;
        self.imbalance_sum += if mean > 0.0 { max as f64 / mean } else { 1.0 };
    }

    fn merge(&mut self, other: &LaneStats) {
        if other.samples == 0 {
            return;
        }
        if self.samples == 0 {
            self.min_ns = u64::MAX;
        }
        self.regions += other.regions;
        self.samples += other.samples;
        self.busy_ns += other.busy_ns;
        self.wait_ns += other.wait_ns;
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
        self.imbalance_sum += other.imbalance_sum;
    }
}

/// Aggregated statistics for one span name.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PhaseStat {
    /// Phase name.
    pub name: String,
    /// Completed occurrences.
    pub count: u64,
    /// Total inclusive nanoseconds.
    pub total_ns: u64,
    /// Total exclusive nanoseconds: wall minus child spans minus time
    /// blocked on the `apr-exec` pool barrier — main-thread work only.
    pub self_ns: u64,
    /// Fastest single occurrence.
    pub min_ns: u64,
    /// Slowest single occurrence.
    pub max_ns: u64,
    /// Total nanoseconds the owning thread spent blocked on pool barriers
    /// inside this phase (parallel-region wall minus its own lane's work).
    pub barrier_ns: u64,
    /// Per-worker attribution from `apr-exec` parallel regions.
    pub workers: LaneStats,
    /// Per-rank attribution from `apr-parallel` halo exchange.
    pub ranks: LaneStats,
}

impl PhaseStat {
    /// Mean inclusive nanoseconds per occurrence.
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.count as f64
        }
    }
}

#[derive(Debug)]
struct Frame {
    name: &'static str,
    start_ns: u64,
    child_ns: u64,
    barrier_ns: u64,
    workers: LaneStats,
    ranks: LaneStats,
    depth: u16,
    session: u64,
    rank: Option<u32>,
    step: u64,
}

#[derive(Debug, Default)]
struct PhaseAcc {
    count: u64,
    total_ns: u64,
    self_ns: u64,
    min_ns: u64,
    max_ns: u64,
    barrier_ns: u64,
    workers: LaneStats,
    ranks: LaneStats,
}

#[derive(Debug)]
pub(crate) struct Inner {
    stacks: HashMap<u64, Vec<Frame>>,
    pub(crate) trace: Vec<SpanRecord>,
    stats: BTreeMap<&'static str, PhaseAcc>,
    span_capacity: usize,
    pub(crate) dropped_spans: u64,
    pub(crate) metrics: BTreeMap<&'static str, MetricValue>,
    pub(crate) metric_rows: Vec<String>,
    pub(crate) events: Vec<TimedEvent>,
    pub(crate) flight: crate::flight::FlightRing,
    pub(crate) attributes: BTreeMap<&'static str, String>,
}

impl Inner {
    fn new() -> Self {
        Self {
            stacks: HashMap::new(),
            trace: Vec::new(),
            stats: BTreeMap::new(),
            span_capacity: DEFAULT_SPAN_CAPACITY,
            dropped_spans: 0,
            metrics: BTreeMap::new(),
            metric_rows: Vec::new(),
            events: Vec::new(),
            flight: crate::flight::FlightRing::new(crate::flight::DEFAULT_FLIGHT_CAPACITY),
            attributes: BTreeMap::new(),
        }
    }
}

/// The telemetry recorder: span profiler, metrics registry and event
/// stream behind one enable flag and one clock.
///
/// Most code uses the process-global recorder through the free functions
/// in the crate root; tests construct their own (optionally with a manual
/// clock) for isolation.
#[derive(Debug)]
pub struct Recorder {
    enabled: AtomicBool,
    clock: Clock,
    pub(crate) inner: Mutex<Inner>,
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

impl Recorder {
    /// New disabled recorder on the real monotonic clock.
    pub fn new() -> Self {
        Self::with_clock(Clock::real())
    }

    /// New disabled recorder on an explicit clock (tests pass
    /// [`Clock::manual`] for deterministic span timing).
    pub fn with_clock(clock: Clock) -> Self {
        Self {
            enabled: AtomicBool::new(false),
            clock,
            inner: Mutex::new(Inner::new()),
        }
    }

    /// Start recording.
    pub fn enable(&self) {
        self.enabled.store(true, Ordering::Release);
    }

    /// Stop recording (already-captured data is kept).
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Release);
    }

    /// Is the recorder currently capturing?
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// The recorder's clock (spans, events and manual timing all read it).
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// Drop all captured data (spans, stats, metrics, events); keeps the
    /// enable state and capacity.
    pub fn reset(&self) {
        let mut inner = self.inner.lock().unwrap();
        let cap = inner.span_capacity;
        let flight_cap = inner.flight.capacity();
        *inner = Inner::new();
        inner.span_capacity = cap;
        inner.flight = crate::flight::FlightRing::new(flight_cap);
    }

    /// Cap the retained span-record count (aggregates keep updating past
    /// the cap; the overflow is reported by [`Recorder::dropped_spans`]).
    pub fn set_span_capacity(&self, cap: usize) {
        self.inner.lock().unwrap().span_capacity = cap;
    }

    /// Span records discarded after the capacity was reached.
    pub fn dropped_spans(&self) -> u64 {
        self.inner.lock().unwrap().dropped_spans
    }

    /// Open a span; the returned guard closes it on drop. Near-zero cost
    /// when disabled.
    #[inline]
    pub fn span(&self, name: &'static str) -> ScopedSpan<'_> {
        if !self.is_enabled() {
            return ScopedSpan { rec: None, name };
        }
        self.begin_span(name);
        ScopedSpan {
            rec: Some(self),
            name,
        }
    }

    fn begin_span(&self, name: &'static str) {
        let now = self.clock.now_ns();
        let tid = current_tid();
        let session = current_session();
        let rank = current_rank();
        let step = current_step();
        let mut inner = self.inner.lock().unwrap();
        let stack = inner.stacks.entry(tid).or_default();
        let depth = stack.len() as u16;
        stack.push(Frame {
            name,
            start_ns: now,
            child_ns: 0,
            barrier_ns: 0,
            workers: LaneStats::default(),
            ranks: LaneStats::default(),
            depth,
            session,
            rank,
            step,
        });
    }

    fn end_span(&self, name: &'static str) {
        let now = self.clock.now_ns();
        let tid = current_tid();
        let mut inner = self.inner.lock().unwrap();
        let stack = inner.stacks.entry(tid).or_default();
        let Some(frame) = stack.pop() else { return };
        debug_assert_eq!(frame.name, name, "span guards must nest");
        let dur_ns = now.saturating_sub(frame.start_ns);
        // Self time is main-thread work only: wall minus child spans minus
        // time blocked on the exec-pool barrier (the workers' share is
        // reported separately through `PhaseStat::workers`).
        let self_ns = dur_ns
            .saturating_sub(frame.child_ns)
            .saturating_sub(frame.barrier_ns);
        if let Some(parent) = stack.last_mut() {
            parent.child_ns += dur_ns;
        }
        let acc = inner.stats.entry(frame.name).or_default();
        if acc.count == 0 {
            acc.min_ns = u64::MAX;
        }
        acc.count += 1;
        acc.total_ns += dur_ns;
        acc.self_ns += self_ns;
        acc.min_ns = acc.min_ns.min(dur_ns);
        acc.max_ns = acc.max_ns.max(dur_ns);
        acc.barrier_ns += frame.barrier_ns;
        acc.workers.merge(&frame.workers);
        acc.ranks.merge(&frame.ranks);
        let record = SpanRecord {
            name: frame.name,
            tid,
            start_ns: frame.start_ns,
            dur_ns,
            self_ns,
            depth: frame.depth,
            session: frame.session,
            rank: frame.rank,
            step: frame.step,
        };
        if inner.trace.len() < inner.span_capacity {
            inner.trace.push(record);
        } else {
            inner.dropped_spans += 1;
        }
        inner.flight.push(crate::flight::FlightEntry::Span(record));
    }

    /// Attribute one `apr-exec` parallel region to the innermost open span
    /// on the calling thread. `wall_ns` is the region's dispatch-to-barrier
    /// wall time; `lane_busy_ns[i]` is lane `i`'s busy time, lane 0 being
    /// the submitting thread itself. The submitting thread's barrier wait
    /// (`wall_ns - lane_busy_ns[0]`) is subtracted from the span's self
    /// time when it closes. No-op when disabled or with no open span.
    pub fn record_parallel_region(&self, wall_ns: u64, lane_busy_ns: &[u64]) {
        if !self.is_enabled() || lane_busy_ns.is_empty() {
            return;
        }
        let tid = current_tid();
        let mut inner = self.inner.lock().unwrap();
        let Some(frame) = inner.stacks.entry(tid).or_default().last_mut() else {
            return;
        };
        frame.barrier_ns += wall_ns.saturating_sub(lane_busy_ns[0]);
        frame.workers.record_region(wall_ns, lane_busy_ns);
    }

    /// Attribute one halo-exchange phase's per-rank busy times to the
    /// innermost open span on the calling thread. Unlike
    /// [`Recorder::record_parallel_region`] this does not touch the span's
    /// self time — ranks are a logical decomposition, not the thread that
    /// owns the span. No-op when disabled or with no open span.
    pub fn record_rank_times(&self, rank_busy_ns: &[u64]) {
        if !self.is_enabled() || rank_busy_ns.is_empty() {
            return;
        }
        let tid = current_tid();
        let mut inner = self.inner.lock().unwrap();
        let Some(frame) = inner.stacks.entry(tid).or_default().last_mut() else {
            return;
        };
        // A rank region has no independent wall clock: every rank logically
        // waits for the slowest one, so the slowest rank defines the span.
        let region_ns = *rank_busy_ns.iter().max().unwrap();
        frame.ranks.record_region(region_ns, rank_busy_ns);
    }

    /// Time `f` on the recorder clock, returning its result and the
    /// elapsed nanoseconds. The measurement is taken whether or not the
    /// recorder is enabled; when enabled, a span named `name` is recorded
    /// from the same two clock reads — one clock path for printed numbers
    /// and trace output.
    pub fn time<R>(&self, name: &'static str, f: impl FnOnce() -> R) -> (R, u64) {
        let start = self.clock.now_ns();
        let span = self.span(name);
        let out = f();
        drop(span);
        (out, self.clock.now_ns().saturating_sub(start))
    }

    /// Add `delta` to a named counter (created at zero on first touch).
    #[inline]
    pub fn counter_add(&self, name: &'static str, delta: u64) {
        if !self.is_enabled() {
            return;
        }
        let mut inner = self.inner.lock().unwrap();
        match inner.metrics.entry(name).or_insert(MetricValue::Counter(0)) {
            MetricValue::Counter(c) => *c += delta,
            other => debug_assert!(false, "metric {name} is not a counter: {other:?}"),
        }
    }

    /// Set a named gauge to `v`.
    #[inline]
    pub fn gauge_set(&self, name: &'static str, v: f64) {
        if !self.is_enabled() {
            return;
        }
        let mut inner = self.inner.lock().unwrap();
        match inner.metrics.entry(name).or_insert(MetricValue::Gauge(0.0)) {
            MetricValue::Gauge(g) => *g = v,
            other => debug_assert!(false, "metric {name} is not a gauge: {other:?}"),
        }
    }

    /// Record `v` into a named fixed-bucket histogram; `bounds` defines
    /// the buckets on first touch and is ignored afterwards.
    #[inline]
    pub fn histogram_record(&self, name: &'static str, bounds: &[f64], v: f64) {
        if !self.is_enabled() {
            return;
        }
        let mut inner = self.inner.lock().unwrap();
        match inner
            .metrics
            .entry(name)
            .or_insert_with(|| MetricValue::Histogram(Histogram::new(bounds)))
        {
            MetricValue::Histogram(h) => h.record(v),
            other => debug_assert!(false, "metric {name} is not a histogram: {other:?}"),
        }
    }

    /// Current value of a metric, if registered.
    pub fn metric(&self, name: &str) -> Option<MetricValue> {
        self.inner.lock().unwrap().metrics.get(name).cloned()
    }

    /// Set a run-level attribute: a small key → value annotation describing
    /// *how* the run was configured (e.g. `lattice.kernel` → `fused`), kept
    /// alongside the metrics and exported as Chrome-trace metadata so a
    /// profile is self-describing. Last write per key wins.
    #[inline]
    pub fn set_attribute(&self, key: &'static str, value: impl Into<String>) {
        if !self.is_enabled() {
            return;
        }
        self.inner
            .lock()
            .unwrap()
            .attributes
            .insert(key, value.into());
    }

    /// All run-level attributes set so far, sorted by key.
    pub fn attributes(&self) -> Vec<(String, String)> {
        self.inner
            .lock()
            .unwrap()
            .attributes
            .iter()
            .map(|(&k, v)| (k.to_string(), v.clone()))
            .collect()
    }

    /// Emit a typed event, stamped with the recorder clock.
    #[inline]
    pub fn emit(&self, event: TelemetryEvent) {
        if !self.is_enabled() {
            return;
        }
        let t_ns = self.clock.now_ns();
        let timed = TimedEvent { t_ns, event };
        let mut inner = self.inner.lock().unwrap();
        inner.events.push(timed);
        inner.flight.push(crate::flight::FlightEntry::Event(timed));
    }

    /// All events emitted so far, in emission order.
    pub fn events(&self) -> Vec<TimedEvent> {
        self.inner.lock().unwrap().events.clone()
    }

    /// All completed span records, in completion order.
    pub fn span_records(&self) -> Vec<SpanRecord> {
        self.inner.lock().unwrap().trace.clone()
    }

    /// Completed span records attributed to one serve session (see
    /// [`session_scope`]); `session` 0 selects unscoped spans.
    pub fn session_span_records(&self, session: u64) -> Vec<SpanRecord> {
        self.inner
            .lock()
            .unwrap()
            .trace
            .iter()
            .filter(|r| r.session == session)
            .copied()
            .collect()
    }

    /// Flat per-phase table (wall/self time), sorted by total wall time
    /// descending.
    pub fn phase_stats(&self) -> Vec<PhaseStat> {
        let inner = self.inner.lock().unwrap();
        let mut out: Vec<PhaseStat> = inner
            .stats
            .iter()
            .map(|(&name, a)| PhaseStat {
                name: name.to_string(),
                count: a.count,
                total_ns: a.total_ns,
                self_ns: a.self_ns,
                min_ns: a.min_ns,
                max_ns: a.max_ns,
                barrier_ns: a.barrier_ns,
                workers: a.workers,
                ranks: a.ranks,
            })
            .collect();
        out.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.name.cmp(&b.name)));
        out
    }

    /// Build a [`Histogram`] over the retained durations (ns) of spans
    /// named `name`, for percentile export. With at most `buckets`
    /// distinct durations the bounds are the exact observed values;
    /// otherwise `buckets` geometric buckets span the observed min..max.
    /// `None` when no record of that name is retained.
    pub fn phase_duration_histogram(&self, name: &str, buckets: usize) -> Option<Histogram> {
        let buckets = buckets.max(2);
        let durs: Vec<u64> = {
            let inner = self.inner.lock().unwrap();
            inner
                .trace
                .iter()
                .filter(|r| r.name == name)
                .map(|r| r.dur_ns)
                .collect()
        };
        if durs.is_empty() {
            return None;
        }
        let mut distinct = durs.clone();
        distinct.sort_unstable();
        distinct.dedup();
        let bounds: Vec<f64> = if distinct.len() <= buckets {
            distinct.iter().map(|&d| d as f64).collect()
        } else {
            let lo = (*distinct.first().unwrap() as f64).max(1.0);
            let hi = *distinct.last().unwrap() as f64;
            let ratio = (hi / lo).powf(1.0 / buckets as f64);
            let mut b: Vec<f64> = (1..buckets as u32)
                .map(|i| lo * ratio.powi(i as i32))
                .collect();
            b.push(hi); // exact top edge, immune to powf rounding
            b.dedup_by(|a, b| *a <= *b);
            b
        };
        let mut h = Histogram::new(&bounds);
        for d in durs {
            h.record(d as f64);
        }
        Some(h)
    }
}

/// RAII span guard returned by [`Recorder::span`]; the span closes when
/// this drops. Inert (a single `Option` check on drop) when the recorder
/// was disabled at creation.
#[must_use = "a span measures the region until the guard drops"]
#[derive(Debug)]
pub struct ScopedSpan<'a> {
    rec: Option<&'a Recorder>,
    name: &'static str,
}

impl Drop for ScopedSpan<'_> {
    fn drop(&mut self) {
        if let Some(rec) = self.rec {
            rec.end_span(self.name);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_captures_nothing() {
        let rec = Recorder::new();
        {
            let _s = rec.span("phantom");
        }
        rec.counter_add("c", 1);
        rec.gauge_set("g", 1.0);
        assert!(rec.span_records().is_empty());
        assert!(rec.phase_stats().is_empty());
        assert!(rec.metric("c").is_none());
    }

    #[test]
    fn nested_spans_split_wall_and_self_time() {
        let rec = Recorder::with_clock(Clock::manual());
        rec.enable();
        {
            let _outer = rec.span("outer");
            rec.clock().advance(100);
            {
                let _inner = rec.span("inner");
                rec.clock().advance(40);
            }
            rec.clock().advance(10);
        }
        let stats = rec.phase_stats();
        let outer = stats.iter().find(|s| s.name == "outer").unwrap();
        let inner = stats.iter().find(|s| s.name == "inner").unwrap();
        assert_eq!(outer.total_ns, 150);
        assert_eq!(outer.self_ns, 110);
        assert_eq!(inner.total_ns, 40);
        assert_eq!(inner.self_ns, 40);
        let records = rec.span_records();
        assert_eq!(records.len(), 2);
        // Completion order: inner first, at depth 1.
        assert_eq!(records[0].name, "inner");
        assert_eq!(records[0].depth, 1);
        assert_eq!(records[1].depth, 0);
    }

    #[test]
    fn sibling_children_accumulate_into_parent() {
        let rec = Recorder::with_clock(Clock::manual());
        rec.enable();
        {
            let _outer = rec.span("outer");
            for _ in 0..3 {
                let _child = rec.span("child");
                rec.clock().advance(20);
            }
            rec.clock().advance(5);
        }
        let stats = rec.phase_stats();
        let outer = stats.iter().find(|s| s.name == "outer").unwrap();
        let child = stats.iter().find(|s| s.name == "child").unwrap();
        assert_eq!(outer.total_ns, 65);
        assert_eq!(outer.self_ns, 5);
        assert_eq!(child.count, 3);
        assert_eq!(child.total_ns, 60);
        assert_eq!(child.min_ns, 20);
        assert_eq!(child.max_ns, 20);
    }

    #[test]
    fn capacity_caps_trace_but_not_stats() {
        let rec = Recorder::with_clock(Clock::manual());
        rec.enable();
        rec.set_span_capacity(2);
        for _ in 0..5 {
            let _s = rec.span("p");
            rec.clock().advance(1);
        }
        assert_eq!(rec.span_records().len(), 2);
        assert_eq!(rec.dropped_spans(), 3);
        assert_eq!(rec.phase_stats()[0].count, 5);
    }

    #[test]
    fn time_measures_with_and_without_recording() {
        let rec = Recorder::with_clock(Clock::manual());
        let (_, ns) = rec.time("bench", || rec.clock().advance(123));
        assert_eq!(ns, 123);
        assert!(rec.span_records().is_empty());
        rec.enable();
        let (_, ns) = rec.time("bench", || rec.clock().advance(55));
        assert_eq!(ns, 55);
        let recs = rec.span_records();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].dur_ns, 55);
    }

    #[test]
    fn histogram_registers_then_records() {
        let rec = Recorder::new();
        rec.enable();
        rec.histogram_record("h", &[1.0, 2.0], 1.5);
        rec.histogram_record("h", &[9.0], 5.0); // bounds ignored after first touch
        match rec.metric("h").unwrap() {
            MetricValue::Histogram(h) => {
                assert_eq!(h.bounds, vec![1.0, 2.0]);
                assert_eq!(h.counts, vec![0, 1, 1]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parallel_region_subtracts_barrier_from_self_time() {
        let rec = Recorder::with_clock(Clock::manual());
        rec.enable();
        {
            let _s = rec.span("par");
            rec.clock().advance(100);
            // One pool dispatch: 60 ns wall, lane 0 (the span's own
            // thread) busy 20 ns, lane 1 busy 40 ns → 40 ns barrier wait.
            rec.record_parallel_region(60, &[20, 40]);
        }
        let stats = rec.phase_stats();
        let par = stats.iter().find(|s| s.name == "par").unwrap();
        assert_eq!(par.total_ns, 100);
        assert_eq!(par.barrier_ns, 40);
        assert_eq!(par.self_ns, 60, "self excludes the barrier wait");
        assert_eq!(par.workers.regions, 1);
        assert_eq!(par.workers.samples, 2);
        assert_eq!(par.workers.busy_ns, 60);
        assert_eq!(par.workers.min_ns, 20);
        assert_eq!(par.workers.max_ns, 40);
        assert_eq!(par.workers.wait_ns, 60, "(60-20) + (60-40)");
        // max/mean = 40/30.
        assert!((par.workers.imbalance() - 4.0 / 3.0).abs() < 1e-12);
        let records = rec.span_records();
        assert_eq!(records[0].self_ns, 60);
    }

    #[test]
    fn balanced_region_has_unit_imbalance_and_skew_exceeds_it() {
        let mut balanced = LaneStats::default();
        balanced.record_region(200, &[50, 50, 50, 50]);
        assert_eq!(balanced.imbalance(), 1.0);
        assert_eq!(balanced.wait_ns, 600, "each lane waited 150 of 200 ns");
        let mut skewed = LaneStats::default();
        skewed.record_region(200, &[10, 190]);
        assert!((skewed.imbalance() - 1.9).abs() < 1e-12);
        assert_eq!(skewed.wait_ns, 200);
        // Sequential runs (one lane) are balanced by definition.
        let mut solo = LaneStats::default();
        solo.record_region(123, &[123]);
        assert_eq!(solo.imbalance(), 1.0);
        assert_eq!(solo.wait_ns, 0);
        assert_eq!(LaneStats::default().imbalance(), 1.0);
    }

    #[test]
    fn rank_times_attribute_without_touching_self_time() {
        let rec = Recorder::with_clock(Clock::manual());
        rec.enable();
        {
            let _s = rec.span("halo");
            rec.clock().advance(80);
            rec.record_rank_times(&[30, 10]);
        }
        let stats = rec.phase_stats();
        let halo = stats.iter().find(|s| s.name == "halo").unwrap();
        assert_eq!(halo.self_ns, 80);
        assert_eq!(halo.ranks.samples, 2);
        assert_eq!(halo.ranks.max_ns, 30);
        assert_eq!(halo.workers.regions, 0);
    }

    #[test]
    fn orphan_region_without_open_span_is_ignored() {
        let rec = Recorder::with_clock(Clock::manual());
        rec.enable();
        rec.record_parallel_region(10, &[10]);
        rec.record_rank_times(&[5]);
        assert!(rec.phase_stats().is_empty());
    }

    #[test]
    fn phase_duration_histogram_is_exact_for_small_n() {
        let rec = Recorder::with_clock(Clock::manual());
        rec.enable();
        for d in [10u64, 20, 30, 30] {
            let _s = rec.span("p");
            rec.clock().advance(d);
        }
        let h = rec.phase_duration_histogram("p", 32).unwrap();
        assert_eq!(h.bounds, vec![10.0, 20.0, 30.0]);
        assert_eq!(h.count, 4);
        assert_eq!(h.percentile(0.5), 20.0);
        assert_eq!(h.percentile(0.95), 30.0);
        assert!(rec.phase_duration_histogram("absent", 32).is_none());
    }

    #[test]
    fn phase_duration_histogram_geometric_covers_range() {
        let rec = Recorder::with_clock(Clock::manual());
        rec.enable();
        for d in 1..=100u64 {
            let _s = rec.span("p");
            rec.clock().advance(d * 7);
        }
        let h = rec.phase_duration_histogram("p", 8).unwrap();
        assert_eq!(h.count, 100);
        assert_eq!(h.overflow(), 0, "max duration must land inside a bucket");
        assert_eq!(h.min, 7.0);
        assert_eq!(h.max, 700.0);
        let p50 = h.percentile(0.5);
        assert!((7.0..=700.0).contains(&p50));
    }

    #[test]
    fn reset_clears_everything() {
        let rec = Recorder::new();
        rec.enable();
        {
            let _s = rec.span("x");
        }
        rec.counter_add("c", 2);
        rec.emit(TelemetryEvent::EscapedCells { step: 1, count: 2 });
        rec.set_attribute("k", "v");
        rec.reset();
        assert!(rec.span_records().is_empty());
        assert!(rec.events().is_empty());
        assert!(rec.metric("c").is_none());
        assert!(rec.attributes().is_empty());
        assert!(rec.is_enabled(), "reset keeps the enable state");
    }

    #[test]
    fn session_scope_attributes_spans_and_nests() {
        let rec = Recorder::with_clock(Clock::manual());
        rec.enable();
        {
            let _s = rec.span("outside");
            rec.clock().advance(1);
        }
        {
            let _scope = session_scope(7);
            {
                let _s = rec.span("inside");
                rec.clock().advance(1);
            }
            {
                let _nested = session_scope(9);
                let _s = rec.span("nested");
                rec.clock().advance(1);
            }
            assert_eq!(current_session(), 7, "inner scope restored outer id");
        }
        assert_eq!(current_session(), 0);
        let by_name = |n: &str| {
            rec.span_records()
                .into_iter()
                .find(|r| r.name == n)
                .unwrap()
        };
        assert_eq!(by_name("outside").session, 0);
        assert_eq!(by_name("inside").session, 7);
        assert_eq!(by_name("nested").session, 9);
        assert_eq!(rec.session_span_records(7).len(), 1);
        assert_eq!(rec.session_span_records(0).len(), 1);
    }

    #[test]
    fn rank_and_step_scopes_attribute_spans_and_nest() {
        let rec = Recorder::with_clock(Clock::manual());
        rec.enable();
        {
            let _s = rec.span("unscoped");
            rec.clock().advance(1);
        }
        {
            let _rank = rank_scope(0); // rank 0 is a real rank, not "unset"
            let _step = step_scope(3);
            {
                let _s = rec.span("scoped");
                rec.clock().advance(1);
            }
            {
                let _inner_rank = rank_scope(2);
                let _inner_step = step_scope(4);
                let _s = rec.span("nested");
                rec.clock().advance(1);
            }
            assert_eq!(current_rank(), Some(0), "inner scope restored");
            assert_eq!(current_step(), 3);
        }
        assert_eq!(current_rank(), None);
        assert_eq!(current_step(), 0);
        let by_name = |n: &str| {
            rec.span_records()
                .into_iter()
                .find(|r| r.name == n)
                .unwrap()
        };
        let unscoped = by_name("unscoped");
        assert_eq!(unscoped.rank, None);
        assert_eq!(unscoped.step, 0);
        let scoped = by_name("scoped");
        assert_eq!(scoped.rank, Some(0));
        assert_eq!(scoped.step, 3);
        let nested = by_name("nested");
        assert_eq!(nested.rank, Some(2));
        assert_eq!(nested.step, 4);
    }

    #[test]
    fn attributes_record_last_write_and_respect_enable() {
        let rec = Recorder::new();
        rec.set_attribute("lattice.kernel", "reference");
        assert!(rec.attributes().is_empty(), "disabled recorder drops them");
        rec.enable();
        rec.set_attribute("lattice.kernel", "reference");
        rec.set_attribute("lattice.kernel", "fused");
        assert_eq!(
            rec.attributes(),
            vec![("lattice.kernel".to_string(), "fused".to_string())]
        );
    }
}
