//! Flight recorder: a fixed-capacity ring buffer of the most recent
//! spans, events and metric samples, dumped to `flightrec.json` when the
//! guardian's sentinel trips so a divergence can be debugged post mortem.
//!
//! The ring is fed from the same recorder paths that build the trace
//! (span close, event emit, metric sample), but unlike the trace it never
//! grows past its capacity: old entries are overwritten, so what survives
//! a long campaign is exactly the window preceding the trip. Entries are
//! `Copy` and the buffer grows lazily up to its capacity, preserving the
//! no-alloc-when-disabled contract — a disabled recorder never pushes.

use crate::events::TimedEvent;
use crate::export::event_args;
use crate::json::escape;
use crate::span::{Recorder, SpanRecord};
use std::fmt::Write as _;

/// Default ring capacity; at ~72 bytes per entry the full ring is a few
/// hundred KB, small enough to keep alive for an entire campaign.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 4096;

/// Schema tag written into every flight-record dump.
pub const FLIGHTREC_SCHEMA: &str = "apr.flightrec.v1";

/// One entry in the flight ring.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FlightEntry {
    /// A completed span.
    Span(SpanRecord),
    /// A typed telemetry event.
    Event(TimedEvent),
    /// A metrics snapshot was taken (the row itself lives in the JSONL
    /// exporter; the ring keeps the when).
    MetricsSample {
        /// Recorder-clock timestamp.
        t_ns: u64,
        /// Simulation step tag passed to `sample_metrics`.
        step: u64,
    },
}

impl FlightEntry {
    /// Recorder-clock timestamp of this entry (span close time for spans).
    pub fn t_ns(&self) -> u64 {
        match *self {
            FlightEntry::Span(s) => s.start_ns + s.dur_ns,
            FlightEntry::Event(e) => e.t_ns,
            FlightEntry::MetricsSample { t_ns, .. } => t_ns,
        }
    }
}

/// Fixed-capacity overwrite-oldest ring of [`FlightEntry`] values.
#[derive(Debug)]
pub(crate) struct FlightRing {
    cap: usize,
    buf: Vec<FlightEntry>,
    head: usize,
    total: u64,
}

impl FlightRing {
    pub(crate) fn new(cap: usize) -> Self {
        Self {
            cap,
            buf: Vec::new(),
            head: 0,
            total: 0,
        }
    }

    pub(crate) fn capacity(&self) -> usize {
        self.cap
    }

    pub(crate) fn push(&mut self, entry: FlightEntry) {
        if self.cap == 0 {
            self.total += 1;
            return;
        }
        if self.buf.len() < self.cap {
            self.buf.push(entry);
        } else {
            self.buf[self.head] = entry;
            self.head = (self.head + 1) % self.cap;
        }
        self.total += 1;
    }

    pub(crate) fn total(&self) -> u64 {
        self.total
    }

    /// Entries overwritten (or never stored, for a zero-capacity ring).
    pub(crate) fn dropped(&self) -> u64 {
        self.total - self.buf.len() as u64
    }

    /// Retained entries, oldest first.
    pub(crate) fn entries(&self) -> Vec<FlightEntry> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }
}

impl Recorder {
    /// Resize the flight ring (clears retained entries).
    pub fn set_flight_capacity(&self, cap: usize) {
        self.inner.lock().unwrap().flight = FlightRing::new(cap);
    }

    /// Retained flight entries, oldest first.
    pub fn flight_entries(&self) -> Vec<FlightEntry> {
        self.inner.lock().unwrap().flight.entries()
    }

    /// Entries pushed into the flight ring since the last reset.
    pub fn flight_total(&self) -> u64 {
        self.inner.lock().unwrap().flight.total()
    }

    /// Flight entries already overwritten by newer ones.
    pub fn flight_dropped(&self) -> u64 {
        self.inner.lock().unwrap().flight.dropped()
    }

    /// Render the flight ring as a self-describing JSON document
    /// (`schema: "apr.flightrec.v1"`), entries oldest first.
    ///
    /// The header carries the serve session scoped on the dumping thread
    /// (0 = unscoped) and the active `RuntimeConfig` (kernel/threads/
    /// chunking, read from the `runtime.*` run attributes set when the
    /// engine was built), so a post-mortem dump is attributable to one
    /// session and one runtime configuration.
    pub fn flightrec_json(&self) -> String {
        let (cap, total, dropped, entries, runtime) = {
            let inner = self.inner.lock().unwrap();
            let mut runtime = String::from("{");
            for key in ["kernel", "threads", "chunking"] {
                let full = format!("runtime.{key}");
                if let Some((_, v)) = inner.attributes.iter().find(|(&k, _)| k == full) {
                    if runtime.len() > 1 {
                        runtime.push(',');
                    }
                    let _ = write!(runtime, "\"{key}\":{}", escape(v));
                }
            }
            runtime.push('}');
            (
                inner.flight.capacity(),
                inner.flight.total(),
                inner.flight.dropped(),
                inner.flight.entries(),
                runtime,
            )
        };
        let session = crate::span::current_session();
        let mut out = String::with_capacity(128 + entries.len() * 140);
        let _ = write!(
            out,
            "{{\"schema\":{},\"capacity\":{cap},\"total\":{total},\"dropped\":{dropped},\"session\":{session},\"runtime\":{runtime},\"entries\":[",
            escape(FLIGHTREC_SCHEMA)
        );
        for (i, entry) in entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('\n');
            match *entry {
                FlightEntry::Span(s) => {
                    let _ = write!(
                        out,
                        "{{\"type\":\"span\",\"name\":{},\"tid\":{},\"start_ns\":{},\"dur_ns\":{},\"self_ns\":{},\"depth\":{}",
                        escape(s.name),
                        s.tid,
                        s.start_ns,
                        s.dur_ns,
                        s.self_ns,
                        s.depth,
                    );
                    if s.session != 0 {
                        let _ = write!(out, ",\"session\":{}", s.session);
                    }
                    if let Some(rank) = s.rank {
                        let _ = write!(out, ",\"rank\":{rank}");
                    }
                    if s.step != 0 {
                        let _ = write!(out, ",\"step\":{}", s.step);
                    }
                    out.push('}');
                }
                FlightEntry::Event(e) => {
                    let _ = write!(
                        out,
                        "{{\"type\":\"event\",\"kind\":{},\"t_ns\":{},\"args\":{{",
                        escape(e.event.kind()),
                        e.t_ns,
                    );
                    event_args(&e.event, &mut out);
                    out.push_str("}}");
                }
                FlightEntry::MetricsSample { t_ns, step } => {
                    let _ = write!(
                        out,
                        "{{\"type\":\"sample\",\"t_ns\":{t_ns},\"step\":{step}}}"
                    );
                }
            }
        }
        out.push_str("\n]}");
        out
    }

    /// Write the flight record to `path`.
    pub fn write_flightrec(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.flightrec_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_wraps_and_keeps_newest() {
        let mut ring = FlightRing::new(3);
        for step in 0..5u64 {
            ring.push(FlightEntry::MetricsSample { t_ns: step, step });
        }
        assert_eq!(ring.total(), 5);
        assert_eq!(ring.dropped(), 2);
        let steps: Vec<u64> = ring
            .entries()
            .iter()
            .map(|e| match e {
                FlightEntry::MetricsSample { step, .. } => *step,
                other => panic!("{other:?}"),
            })
            .collect();
        assert_eq!(steps, vec![2, 3, 4]);
    }

    #[test]
    fn zero_capacity_ring_stores_nothing() {
        let mut ring = FlightRing::new(0);
        ring.push(FlightEntry::MetricsSample { t_ns: 0, step: 0 });
        assert!(ring.entries().is_empty());
        assert_eq!(ring.dropped(), 1);
    }
}
