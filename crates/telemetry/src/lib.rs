//! # apr-telemetry: unified tracing, metrics and profiling
//!
//! The observability layer behind the paper's §3.4 performance analysis
//! ("CPU, GPU timings along with the communication between them"): one
//! recorder collects
//!
//! * **spans** — RAII [`ScopedSpan`] guards over the step-loop phases,
//!   nestable and thread-aware, aggregated into a flat per-phase
//!   wall/self-time table and exportable as Chrome `trace_event` JSON
//!   (openable in `about://tracing` or [Perfetto](https://ui.perfetto.dev));
//! * **metrics** — named counters, gauges and fixed-bucket histograms
//!   with a JSONL time-series exporter;
//! * **events** — a typed stream of discrete happenings (window moves,
//!   repopulations, guardian rollbacks, halo exchanges).
//!
//! Everything hangs off one process-global [`Recorder`] reached through
//! the free functions below. Telemetry is **disabled by default**: a
//! disabled recorder costs one relaxed atomic load per call site and
//! allocates nothing, so instrumented hot paths pay effectively zero when
//! observability is off (`tests/no_alloc.rs` pins this down).
//!
//! ```
//! apr_telemetry::enable();
//! {
//!     let _step = apr_telemetry::span("apr.step");
//!     {
//!         let _collide = apr_telemetry::span("apr.coarse");
//!         // ... work ...
//!     }
//!     apr_telemetry::counter_add("apr.site_updates", 4096);
//! }
//! apr_telemetry::sample_metrics(1);
//! let table = apr_telemetry::global().render_phase_table();
//! assert!(table.contains("apr.step"));
//! # apr_telemetry::global().reset();
//! # apr_telemetry::disable();
//! ```

pub mod clock;
pub mod events;
pub mod export;
pub mod flight;
pub mod json;
pub mod metrics;
pub mod span;
pub mod validate;

pub use clock::Clock;
pub use events::{TelemetryEvent, TimedEvent};
pub use export::render_phase_table;
pub use flight::{FlightEntry, DEFAULT_FLIGHT_CAPACITY, FLIGHTREC_SCHEMA};
pub use metrics::{Histogram, MetricValue};
pub use span::{
    current_rank, current_session, current_step, rank_scope, session_scope, step_scope, LaneStats,
    PhaseStat, RankScope, Recorder, ScopedSpan, SessionScope, SpanRecord, StepScope,
};
pub use validate::{
    validate_chrome_trace, validate_flightrec, validate_metrics_jsonl, FlightSummary,
    MetricsSummary, TraceSummary,
};

use std::sync::OnceLock;

static GLOBAL: OnceLock<Recorder> = OnceLock::new();

/// The process-global recorder every instrumented crate reports to.
pub fn global() -> &'static Recorder {
    GLOBAL.get_or_init(Recorder::new)
}

/// Enable the global recorder.
pub fn enable() {
    global().enable();
}

/// Disable the global recorder (captured data is kept).
pub fn disable() {
    global().disable();
}

/// Is the global recorder capturing?
#[inline]
pub fn is_enabled() -> bool {
    // Avoid the OnceLock probe in the common never-enabled case is not
    // possible without unsafe statics; the probe is a single atomic load.
    global().is_enabled()
}

/// Open a span on the global recorder; closes when the guard drops.
#[inline]
pub fn span(name: &'static str) -> ScopedSpan<'static> {
    global().span(name)
}

/// Time `f` on the global recorder's clock; also records a span when
/// enabled. Returns `(result, elapsed_ns)`.
pub fn time<R>(name: &'static str, f: impl FnOnce() -> R) -> (R, u64) {
    global().time(name, f)
}

/// Add `delta` to a global counter.
#[inline]
pub fn counter_add(name: &'static str, delta: u64) {
    global().counter_add(name, delta);
}

/// Set a global gauge.
#[inline]
pub fn gauge_set(name: &'static str, v: f64) {
    global().gauge_set(name, v);
}

/// Record into a global fixed-bucket histogram (`bounds` bind on first
/// touch).
#[inline]
pub fn histogram_record(name: &'static str, bounds: &[f64], v: f64) {
    global().histogram_record(name, bounds, v);
}

/// Set a run-level attribute on the global recorder (e.g. which kernel
/// variant a lattice is running).
#[inline]
pub fn set_attribute(key: &'static str, value: impl Into<String>) {
    global().set_attribute(key, value);
}

/// Emit a typed event on the global recorder.
#[inline]
pub fn emit(event: TelemetryEvent) {
    global().emit(event);
}

/// Snapshot all global metrics into one JSONL row tagged `step`.
pub fn sample_metrics(step: u64) {
    global().sample_metrics(step);
}

#[cfg(test)]
mod tests {
    #[test]
    fn global_round_trip() {
        // Keep this the only test touching the global recorder's enable
        // state in this binary (unit tests run concurrently).
        super::enable();
        {
            let _s = super::span("global.test");
        }
        super::counter_add("global.count", 3);
        super::disable();
        assert!(super::global()
            .phase_stats()
            .iter()
            .any(|p| p.name == "global.test"));
    }
}
