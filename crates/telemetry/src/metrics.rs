//! Metric value types: monotone counters, last-value gauges, and
//! fixed-bucket histograms.
//!
//! The registry itself lives in the [`crate::Recorder`]; this module holds
//! the arithmetic so it can be tested without a recorder.

/// A fixed-bucket histogram: `bounds[i]` is the inclusive upper edge of
/// bucket `i`; one final overflow bucket catches everything above the last
/// bound.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Ascending inclusive upper bucket edges.
    pub bounds: Vec<f64>,
    /// Per-bucket observation counts; `counts.len() == bounds.len() + 1`.
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
}

impl Histogram {
    /// New histogram over ascending `bounds` (must be non-empty, finite,
    /// strictly increasing).
    pub fn new(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]) && bounds.iter().all(|b| b.is_finite()),
            "histogram bounds must be finite and strictly increasing"
        );
        Self {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0.0,
        }
    }

    /// Record one observation. NaN observations land in the overflow
    /// bucket (they are a signal worth keeping, not dropping).
    pub fn record(&mut self, v: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += v;
    }

    /// Mean of observed values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Observations above the last bound.
    pub fn overflow(&self) -> u64 {
        *self.counts.last().unwrap()
    }
}

/// One named metric's current value.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotone accumulator.
    Counter(u64),
    /// Last-set value.
    Gauge(f64),
    /// Fixed-bucket distribution.
    Histogram(Histogram),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucketing_is_inclusive_upper_edge() {
        let mut h = Histogram::new(&[1.0, 2.0, 4.0]);
        for v in [0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 9.0] {
            h.record(v);
        }
        // (-inf,1] = {0.5, 1.0}; (1,2] = {1.5, 2.0}; (2,4] = {3.0, 4.0};
        // (4,inf) = {9.0}.
        assert_eq!(h.counts, vec![2, 2, 2, 1]);
        assert_eq!(h.count, 7);
        assert_eq!(h.overflow(), 1);
        assert!((h.mean() - 21.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn nan_goes_to_overflow() {
        let mut h = Histogram::new(&[1.0]);
        h.record(f64::NAN);
        assert_eq!(h.overflow(), 1);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_unsorted_bounds() {
        let _ = Histogram::new(&[2.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "at least one bound")]
    fn rejects_empty_bounds() {
        let _ = Histogram::new(&[]);
    }
}
