//! Metric value types: monotone counters, last-value gauges, and
//! fixed-bucket histograms.
//!
//! The registry itself lives in the [`crate::Recorder`]; this module holds
//! the arithmetic so it can be tested without a recorder.

/// A fixed-bucket histogram: `bounds[i]` is the inclusive upper edge of
/// bucket `i`; one final overflow bucket catches everything above the last
/// bound.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Ascending inclusive upper bucket edges.
    pub bounds: Vec<f64>,
    /// Per-bucket observation counts; `counts.len() == bounds.len() + 1`.
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
    /// Smallest observation (`+inf` when empty; NaN observations ignored).
    pub min: f64,
    /// Largest observation (`-inf` when empty; NaN observations ignored).
    pub max: f64,
}

impl Histogram {
    /// New histogram over ascending `bounds` (must be non-empty, finite,
    /// strictly increasing).
    pub fn new(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]) && bounds.iter().all(|b| b.is_finite()),
            "histogram bounds must be finite and strictly increasing"
        );
        Self {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one observation. NaN observations land in the overflow
    /// bucket (they are a signal worth keeping, not dropping).
    pub fn record(&mut self, v: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Nearest-rank percentile estimate, `q` in `[0, 1]`. The value is
    /// quantized to the upper edge of the bucket holding the `⌈q·count⌉`-th
    /// observation, clamped to the observed `[min, max]`; `q = 0` returns
    /// the observed minimum exactly and `q = 1` the maximum. Returns 0.0
    /// when empty. Resolution is therefore one bucket width — choose
    /// geometric bounds for a relative-error guarantee.
    pub fn percentile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let (min, max) = (self.min.min(self.max), self.max.max(self.min));
        if q <= 0.0 {
            return min;
        }
        if q >= 1.0 {
            return max;
        }
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= target {
                let edge = self.bounds.get(i).copied().unwrap_or(max);
                return edge.clamp(min, max);
            }
        }
        max
    }

    /// Fold `other` into `self`. Both histograms must share identical
    /// bounds (merging across bucket layouts would silently misbin).
    /// Associative and commutative, so per-shard histograms can be
    /// combined in any order.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.bounds, other.bounds,
            "histogram bounds must match to merge"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Mean of observed values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Observations above the last bound.
    pub fn overflow(&self) -> u64 {
        *self.counts.last().unwrap()
    }
}

/// One named metric's current value.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotone accumulator.
    Counter(u64),
    /// Last-set value.
    Gauge(f64),
    /// Fixed-bucket distribution.
    Histogram(Histogram),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucketing_is_inclusive_upper_edge() {
        let mut h = Histogram::new(&[1.0, 2.0, 4.0]);
        for v in [0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 9.0] {
            h.record(v);
        }
        // (-inf,1] = {0.5, 1.0}; (1,2] = {1.5, 2.0}; (2,4] = {3.0, 4.0};
        // (4,inf) = {9.0}.
        assert_eq!(h.counts, vec![2, 2, 2, 1]);
        assert_eq!(h.count, 7);
        assert_eq!(h.overflow(), 1);
        assert!((h.mean() - 21.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn percentiles_are_exact_on_edge_aligned_values() {
        let mut h = Histogram::new(&[1.0, 2.0, 4.0]);
        for v in [0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 9.0] {
            h.record(v);
        }
        assert_eq!(h.percentile(0.0), 0.5);
        // ⌈0.5·7⌉ = 4th observation → bucket (1,2].
        assert_eq!(h.percentile(0.5), 2.0);
        // ⌈0.95·7⌉ = 7th observation → overflow, clamped to max.
        assert_eq!(h.percentile(0.95), 9.0);
        assert_eq!(h.percentile(1.0), 9.0);
        assert_eq!(Histogram::new(&[1.0]).percentile(0.5), 0.0);
    }

    #[test]
    fn percentile_clamps_to_observed_range() {
        let mut h = Histogram::new(&[100.0, 200.0]);
        h.record(42.0);
        h.record(42.0);
        // Both observations sit in bucket (-inf,100]; the edge estimate
        // 100.0 is clamped to the observed max.
        assert_eq!(h.percentile(0.5), 42.0);
    }

    #[test]
    fn merge_is_associative() {
        let bounds = [1.0, 2.0, 4.0];
        let mk = |vals: &[f64]| {
            let mut h = Histogram::new(&bounds);
            for &v in vals {
                h.record(v);
            }
            h
        };
        let (a, b, c) = (mk(&[0.5, 3.0]), mk(&[1.5]), mk(&[9.0, 2.0]));
        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc);
        assert_eq!(ab_c.count, 5);
        assert_eq!(ab_c.min, 0.5);
        assert_eq!(ab_c.max, 9.0);
        assert_eq!(ab_c.percentile(0.5), 2.0);
    }

    #[test]
    #[should_panic(expected = "bounds must match")]
    fn merge_rejects_mismatched_bounds() {
        let mut a = Histogram::new(&[1.0]);
        a.merge(&Histogram::new(&[2.0]));
    }

    #[test]
    fn nan_goes_to_overflow() {
        let mut h = Histogram::new(&[1.0]);
        h.record(f64::NAN);
        assert_eq!(h.overflow(), 1);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_unsorted_bounds() {
        let _ = Histogram::new(&[2.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "at least one bound")]
    fn rejects_empty_bounds() {
        let _ = Histogram::new(&[]);
    }
}
