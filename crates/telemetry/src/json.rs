//! Minimal JSON support: an escaping writer for the exporters and a small
//! recursive-descent parser for the validators and golden tests.
//!
//! The workspace is offline (no serde); trace files are simple enough that
//! ~150 lines of parser keep the exporters honest without a dependency.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Escape a string into a JSON string literal (with quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Format an `f64` so it round-trips through JSON (no NaN/inf literals —
/// they are not valid JSON, so they become null).
pub fn number(v: f64) -> String {
    if v.is_finite() {
        let mut s = format!("{v}");
        if !s.contains('.') && !s.contains('e') && !s.contains('E') {
            s.push_str(".0");
        }
        s
    } else {
        "null".to_string()
    }
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null` (also produced for non-finite numbers on export).
    Null,
    /// `true`/`false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object (sorted keys; duplicate keys keep the last value).
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }
}

/// Parse one complete JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected '{}' at byte {} (found {:?})",
            c as char,
            *pos,
            b.get(*pos).map(|&x| x as char)
        ))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(Value::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Value::Num)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or("invalid \\u escape")?;
                        // Surrogate pairs are not produced by our exporters;
                        // map lone surrogates to the replacement character.
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err("invalid escape".into()),
                }
                *pos += 1;
            }
            Some(&c) => {
                // Multi-byte UTF-8 sequences pass through untouched.
                let len = match c {
                    0x00..=0x7f => 1,
                    0xc0..=0xdf => 2,
                    0xe0..=0xef => 3,
                    _ => 4,
                };
                let chunk = b
                    .get(*pos..*pos + len)
                    .and_then(|s| std::str::from_utf8(s).ok())
                    .ok_or("invalid utf-8 in string")?;
                out.push_str(chunk);
                *pos += len;
            }
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'[')?;
    let mut out = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(out));
    }
    loop {
        out.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(out));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'{')?;
    let mut out = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(out));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        out.insert(key, value);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(out));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_round_trips() {
        let s = "a\"b\\c\nd\te\u{1}μ";
        let lit = escape(s);
        assert_eq!(parse(&lit).unwrap(), Value::Str(s.to_string()));
    }

    #[test]
    fn parses_nested_documents() {
        let v = parse(r#"{"a":[1,2.5,-3e2],"b":{"c":true,"d":null},"e":"x"}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Value::Bool(true)));
        assert_eq!(v.get("e").unwrap().as_str(), Some("x"));
    }

    #[test]
    fn rejects_trailing_garbage_and_bad_syntax() {
        assert!(parse("{} x").is_err());
        assert!(parse("[1,").is_err());
        assert!(parse("{\"a\" 1}").is_err());
    }

    #[test]
    fn number_formatting_is_parseable() {
        for v in [0.0, 1.5, -2.25e9, 123456789.0] {
            let s = number(v);
            assert_eq!(parse(&s).unwrap().as_f64(), Some(v), "{s}");
        }
        assert_eq!(number(f64::NAN), "null");
    }
}
