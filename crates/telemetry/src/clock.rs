//! Monotonic time source shared by every telemetry consumer.
//!
//! All spans, metric samples, events — and the benchmark harness's MLUPS
//! arithmetic — read the same clock, so a number in a trace file and a
//! number on stdout can never disagree about what "now" was. Tests swap in
//! a manual clock to make span timing exact.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic nanosecond clock: real (anchored `Instant`) or manual
/// (test-controlled counter).
#[derive(Debug)]
pub struct Clock {
    origin: Instant,
    manual: Option<AtomicU64>,
}

impl Clock {
    /// Real monotonic clock; zero is the moment of construction.
    pub fn real() -> Self {
        Self {
            origin: Instant::now(),
            manual: None,
        }
    }

    /// Manual clock starting at 0; advance it explicitly with
    /// [`Clock::advance`]. Used by deterministic tests.
    pub fn manual() -> Self {
        Self {
            origin: Instant::now(),
            manual: Some(AtomicU64::new(0)),
        }
    }

    /// Nanoseconds since the clock's origin.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        match &self.manual {
            Some(t) => t.load(Ordering::Relaxed),
            None => self.origin.elapsed().as_nanos() as u64,
        }
    }

    /// Advance a manual clock by `ns`. No-op on a real clock.
    pub fn advance(&self, ns: u64) {
        if let Some(t) = &self.manual {
            t.fetch_add(ns, Ordering::Relaxed);
        }
    }

    /// True when this is a test-controlled manual clock.
    pub fn is_manual(&self) -> bool {
        self.manual.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_clock_is_monotone() {
        let c = Clock::real();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_only_moves_when_told() {
        let c = Clock::manual();
        assert_eq!(c.now_ns(), 0);
        c.advance(1500);
        assert_eq!(c.now_ns(), 1500);
        c.advance(500);
        assert_eq!(c.now_ns(), 2000);
        assert!(c.is_manual());
    }
}
