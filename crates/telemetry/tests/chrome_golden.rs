//! Golden test: the Chrome-trace exporter emits valid, schema-complete
//! `trace_event` records for a known span/event script, and the JSONL
//! metrics exporter emits a monotone series — both checked through the
//! crate's own parser/validators plus exact structural assertions.

use apr_telemetry::json::{parse, Value};
use apr_telemetry::{
    validate_chrome_trace, validate_metrics_jsonl, Clock, Recorder, TelemetryEvent,
};

/// Deterministic script: two engine steps' worth of spans, one window-move
/// event, two metric samples.
fn scripted_recorder() -> Recorder {
    let rec = Recorder::with_clock(Clock::manual());
    rec.enable();
    for step in 0..2u64 {
        let _step_span = rec.span("apr.step");
        {
            let _c = rec.span("apr.coarse");
            rec.clock().advance(700);
        }
        {
            let _f = rec.span("apr.fine.collide");
            rec.clock().advance(250);
        }
        rec.clock().advance(50); // untimed glue
        rec.counter_add("apr.site_updates", 1000);
        rec.gauge_set("window.hematocrit", 0.25);
        drop(_step_span);
        rec.sample_metrics(step);
    }
    rec.emit(TelemetryEvent::WindowMove {
        step: 1,
        shift: [3.0, 0.0, -3.0],
        captured: 10,
        copied: 4,
        removed: 2,
    });
    rec
}

#[test]
fn chrome_trace_records_are_schema_complete() {
    let rec = scripted_recorder();
    let text = rec.chrome_trace_json();

    // The validator (parse + schema + monotone ts) accepts it.
    let summary = validate_chrome_trace(&text).unwrap();
    assert_eq!(summary.span_records, 6); // 2 steps × (step + coarse + fine)
    assert_eq!(summary.event_records, 1);
    // Phases cover 950/1000 ns of each step.
    assert!((summary.phase_coverage() - 0.95).abs() < 1e-9);

    // Exact structural checks on the parsed document.
    let doc = parse(&text).unwrap();
    let arr = doc.as_arr().unwrap();
    assert_eq!(arr.len(), 8); // metadata + 6 spans + 1 instant
    for item in arr {
        let ph = item.get("ph").unwrap().as_str().unwrap();
        match ph {
            "M" => {
                assert_eq!(
                    item.get("args").unwrap().get("name").unwrap().as_str(),
                    Some("apr-rbc")
                );
            }
            "X" => {
                for key in ["name", "cat", "ts", "dur", "pid", "tid"] {
                    assert!(item.get(key).is_some(), "span missing {key}");
                }
                let args = item.get("args").unwrap();
                assert!(args.get("depth").unwrap().as_f64().unwrap() >= 0.0);
                assert!(args.get("self_ns").unwrap().as_f64().unwrap() >= 0.0);
            }
            "i" => {
                assert_eq!(item.get("name").unwrap().as_str(), Some("window_move"));
                assert_eq!(item.get("s").unwrap().as_str(), Some("g"));
                let args = item.get("args").unwrap();
                assert_eq!(args.get("step").unwrap().as_f64(), Some(1.0));
                assert_eq!(args.get("copied").unwrap().as_f64(), Some(4.0));
                let shift = args.get("shift").unwrap().as_arr().unwrap();
                assert_eq!(shift[2].as_f64(), Some(-3.0));
            }
            other => panic!("unexpected ph {other:?}"),
        }
    }

    // Span durations survive the ns → µs conversion exactly.
    let coarse = arr
        .iter()
        .find(|i| i.get("name").and_then(Value::as_str) == Some("apr.coarse"))
        .unwrap();
    assert_eq!(coarse.get("dur").unwrap().as_f64(), Some(0.7));
}

#[test]
fn metrics_jsonl_is_monotone_and_complete() {
    let rec = scripted_recorder();
    let text = rec.metrics_jsonl();
    let summary = validate_metrics_jsonl(&text).unwrap();
    assert_eq!(summary.rows, 2);
    let last = parse(text.lines().last().unwrap()).unwrap();
    assert_eq!(last.get("apr.site_updates").unwrap().as_f64(), Some(2000.0));
    assert_eq!(last.get("window.hematocrit").unwrap().as_f64(), Some(0.25));
}

#[test]
fn spans_from_multiple_threads_keep_distinct_tids() {
    let rec = Recorder::new();
    rec.enable();
    std::thread::scope(|scope| {
        for _ in 0..2 {
            scope.spawn(|| {
                let _outer = rec.span("worker.outer");
                let _inner = rec.span("worker.inner");
            });
        }
    });
    let records = rec.span_records();
    assert_eq!(records.len(), 4);
    let tids: std::collections::BTreeSet<u64> = records.iter().map(|r| r.tid).collect();
    assert_eq!(tids.len(), 2, "each thread gets its own tid: {records:?}");
    // Nesting is tracked per thread: every inner span sits at depth 1.
    for r in &records {
        let want = if r.name == "worker.inner" { 1 } else { 0 };
        assert_eq!(r.depth, want, "{r:?}");
    }
}
