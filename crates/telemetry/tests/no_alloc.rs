//! The no-op recorder must add **zero heap allocations** to a timed step:
//! with telemetry disabled, spans, counters, gauges, histograms and events
//! all return before touching the heap. This is the contract that lets the
//! engines stay instrumented unconditionally.
//!
//! A counting global allocator measures allocations across a burst of
//! disabled-telemetry calls. This file deliberately contains a single test:
//! the counter is process-global, and a concurrent test's allocations
//! would show up in the window.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
fn disabled_telemetry_allocates_nothing() {
    use apr_telemetry::TelemetryEvent;

    // Force the global recorder (and this thread's tid slot) into
    // existence before the measured window.
    apr_telemetry::global().reset();
    assert!(!apr_telemetry::is_enabled());
    {
        let _warmup = apr_telemetry::span("warmup");
    }

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for step in 0..1000u64 {
        // The span/metric/event mix of one instrumented engine step.
        let _step = apr_telemetry::span("apr.step");
        {
            let _coarse = apr_telemetry::span("apr.coarse");
        }
        {
            let _fine = apr_telemetry::span("apr.fine.collide");
        }
        apr_telemetry::counter_add("apr.site_updates", 4096);
        apr_telemetry::gauge_set("window.hematocrit", 0.25);
        apr_telemetry::histogram_record("fsi.force", &[1.0, 2.0, 4.0], 0.5);
        apr_telemetry::emit(TelemetryEvent::EscapedCells { step, count: 1 });
        apr_telemetry::global().record_parallel_region(100, &[60, 40]);
        apr_telemetry::global().record_rank_times(&[30, 70]);
        apr_telemetry::sample_metrics(step);
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "disabled telemetry must not allocate (saw {} allocations)",
        after - before
    );

    // Sanity: the same burst with the recorder enabled does record (and
    // may allocate — that is the enabled path's job).
    apr_telemetry::enable();
    {
        let _s = apr_telemetry::span("enabled.probe");
    }
    apr_telemetry::disable();
    assert!(apr_telemetry::global()
        .phase_stats()
        .iter()
        .any(|p| p.name == "enabled.probe"));
}
