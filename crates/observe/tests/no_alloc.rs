//! The hub's nobody-listening publish path must add **zero heap
//! allocations**: engines publish a sample per step unconditionally, so
//! with no subscriber the cost has to be one relaxed atomic load — the
//! same contract disabled `apr-telemetry` recording makes.
//!
//! A counting global allocator measures allocations across a burst of
//! subscriber-free publishes. Single test per file: the counter is
//! process-global.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
fn publish_without_subscribers_allocates_nothing() {
    use apr_observe::{hub, ProgressSample, Sample};

    // Force the global hub into existence before the measured window.
    let h = hub();
    assert_eq!(h.subscriber_count(), 0);

    let sample = Sample::Progress(ProgressSample {
        session: 1,
        steps_done: 10,
        target_steps: 100,
        slice: 1,
        steps_per_sec: 1000.0,
        cache_hit: None,
        completed: false,
    });

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..10_000 {
        h.publish(sample);
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "subscriber-free publish must not allocate (saw {} allocations)",
        after - before
    );

    // Sanity: with a subscriber the same publish is delivered (and may
    // allocate — that is the delivering path's job).
    let sub = h.subscribe();
    h.publish(sample);
    assert_eq!(sub.drain().len(), 1);
}
