//! # apr-observe — live observability plane
//!
//! The simulation stack already *records* (spans, metrics, flight
//! recorder in `apr-telemetry`) and *protects* (sentinel, rollback in
//! `apr-guard`). This crate closes the remaining gap: **watching a run
//! while it happens and judging whether the physics is still right.**
//! Three pieces:
//!
//! - [`ledger`] — a conservation ledger accumulating per-step mass /
//!   momentum totals for the bulk domain and the moving window, window
//!   fill/capture flux accounting, and hematocrit drift. Drift beyond
//!   configured tolerances latches a [`DriftBreach`] the guardian
//!   converts into a health issue, so physics regressions trip the same
//!   sentinel machinery as NaNs.
//! - [`hub`] — a bounded broadcast channel over which engines, serve
//!   sessions and parallel ranks publish typed [`Sample`]s. Publishing
//!   with no subscribers costs one relaxed atomic load; slow consumers
//!   drop their own oldest samples, never the publisher's time.
//! - [`prometheus`] / [`critpath`] — offline consumers: a Prometheus
//!   text-exposition writer + format checker (`observe_export` bin) and
//!   a per-step critical-path analyzer over correlation-tagged Chrome
//!   traces (`observe_critpath` bin).
//!
//! Dependency rule: this crate depends only on `apr-telemetry`. The
//! guard crate stays observe-free; `apr-core` bridges ledger breaches
//! into `apr_guard::HealthIssue` values.

pub mod critpath;
pub mod hub;
pub mod ledger;
pub mod prometheus;

pub use critpath::{analyze_chrome_trace, render_report, CritPathReport, StepAttribution, BUCKETS};
pub use hub::{
    hub, MetricsHub, ProgressSample, Sample, ServiceSample, Subscription,
    DEFAULT_SUBSCRIPTION_CAPACITY,
};
pub use ledger::{
    ConservationLedger, DomainTotals, DriftBreach, LedgerConfig, LedgerSample, WindowFlux,
};
pub use prometheus::{
    exposition_from_jsonl, sanitize_metric_name, validate_exposition, ExpositionSummary, PromWriter,
};
