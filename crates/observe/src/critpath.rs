//! Cross-rank critical-path analysis over Chrome traces.
//!
//! `apr-telemetry` spans carry correlation tags (`session`, `rank`,
//! `step`) in their Chrome-trace `args`. This module groups the complete
//! spans of a trace by step, attributes each step's wall time to phase
//! buckets (collide, stream, halo wait, window coupling, FSI, guard /
//! preempt overhead), and — when spans from several ranks share a step —
//! reports the rank imbalance that sets the step's critical path.
//!
//! Attribution is structural, not nominal: within one step group the
//! shallowest spans define the step's wall time and their direct
//! children define the attributed breakdown, so the analyzer keeps
//! working as phases are renamed or added.

use apr_telemetry::json::{parse, Value};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Phase buckets, in display order. `OTHER` catches everything the
/// classifier cannot place.
pub const BUCKETS: [&str; 7] = [
    "collide", "stream", "halo", "coupling", "fsi", "overhead", "other",
];

const OTHER: usize = 6;

/// Classify a span name into a [`BUCKETS`] index.
pub fn bucket_index(name: &str) -> usize {
    if name.contains("collide") {
        0
    } else if name.contains("stream") {
        1
    } else if name.contains("halo") {
        2
    } else if name.contains("coupling") || name.contains("window") {
        3
    } else if name.contains("fsi") || name.contains("membrane") || name.contains("contact") {
        4
    } else if name.contains("guard")
        || name.contains("checkpoint")
        || name.contains("suspend")
        || name.contains("resume")
        || name.contains("preempt")
    {
        5
    } else {
        OTHER
    }
}

/// Attribution of one simulation step.
#[derive(Debug, Clone, PartialEq)]
pub struct StepAttribution {
    /// Simulation step (1-based, as tagged by the engine's step scope).
    pub step: u64,
    /// Wall time of the step's shallowest spans, microseconds. With
    /// several ranks this sums their concurrent step spans.
    pub wall_us: f64,
    /// Time attributed to the shallowest spans' direct children,
    /// microseconds.
    pub attributed_us: f64,
    /// Attributed time per [`BUCKETS`] entry, microseconds.
    pub bucket_us: [f64; 7],
    /// Distinct ranks contributing spans to this step (0 when the trace
    /// carries no rank tags).
    pub ranks: usize,
    /// Max-over-mean of per-rank busy time: 1.0 means perfectly
    /// balanced; defined as 1.0 when fewer than two ranks report.
    pub imbalance: f64,
}

impl StepAttribution {
    /// Fraction of wall time explained by the attributed children.
    pub fn coverage(&self) -> f64 {
        if self.wall_us > 0.0 {
            self.attributed_us / self.wall_us
        } else {
            1.0
        }
    }

    /// Index of the dominant bucket.
    pub fn dominant(&self) -> usize {
        let mut best = 0;
        for (i, v) in self.bucket_us.iter().enumerate() {
            if *v > self.bucket_us[best] {
                best = i;
            }
        }
        best
    }
}

/// Whole-trace critical-path report.
#[derive(Debug, Clone, PartialEq)]
pub struct CritPathReport {
    /// Per-step attribution, ascending by step.
    pub steps: Vec<StepAttribution>,
    /// Complete spans in the trace.
    pub total_spans: usize,
    /// Spans carrying a step tag.
    pub tagged_spans: usize,
    /// Total wall time over all attributed steps, microseconds.
    pub total_wall_us: f64,
    /// Total attributed time, microseconds.
    pub total_attributed_us: f64,
    /// Attributed totals per [`BUCKETS`] entry, microseconds.
    pub bucket_totals_us: [f64; 7],
}

impl CritPathReport {
    /// Fraction of step wall time the analyzer can attribute to phases.
    pub fn coverage(&self) -> f64 {
        if self.total_wall_us > 0.0 {
            self.total_attributed_us / self.total_wall_us
        } else {
            1.0
        }
    }
}

struct SpanRow {
    name: String,
    dur_us: f64,
    depth: i64,
    rank: Option<u32>,
}

/// Analyze a Chrome-trace JSON document (the `apr-telemetry`
/// `chrome_trace_json` output) into a per-step critical-path report.
pub fn analyze_chrome_trace(text: &str) -> Result<CritPathReport, String> {
    let root = parse(text).map_err(|e| format!("trace does not parse: {e}"))?;
    let records = root.as_arr().ok_or("trace must be a JSON array")?;
    let mut total_spans = 0usize;
    let mut tagged = 0usize;
    let mut by_step: BTreeMap<u64, Vec<SpanRow>> = BTreeMap::new();
    for rec in records {
        if rec.get("ph").and_then(Value::as_str) != Some("X") {
            continue;
        }
        total_spans += 1;
        let name = rec
            .get("name")
            .and_then(Value::as_str)
            .ok_or("span without name")?
            .to_string();
        let dur_us = rec.get("dur").and_then(Value::as_f64).unwrap_or(0.0);
        let args = rec.get("args");
        let get_arg = |key: &str| args.and_then(|a| a.get(key)).and_then(Value::as_f64);
        let depth = get_arg("depth").unwrap_or(0.0) as i64;
        let Some(step) = get_arg("step").map(|s| s as u64) else {
            continue;
        };
        tagged += 1;
        let rank = get_arg("rank").map(|r| r as u32);
        by_step.entry(step).or_default().push(SpanRow {
            name,
            dur_us,
            depth,
            rank,
        });
    }
    let mut steps = Vec::with_capacity(by_step.len());
    let mut total_wall = 0.0;
    let mut total_attr = 0.0;
    let mut bucket_totals = [0.0f64; 7];
    for (step, rows) in &by_step {
        let root_depth = rows.iter().map(|r| r.depth).min().unwrap_or(0);
        let mut wall = 0.0;
        let mut attributed = 0.0;
        let mut bucket_us = [0.0f64; 7];
        let mut per_rank: BTreeMap<u32, f64> = BTreeMap::new();
        for row in rows {
            if row.depth == root_depth {
                wall += row.dur_us;
                if let Some(rank) = row.rank {
                    *per_rank.entry(rank).or_insert(0.0) += row.dur_us;
                }
            } else if row.depth == root_depth + 1 {
                attributed += row.dur_us;
                bucket_us[bucket_index(&row.name)] += row.dur_us;
            }
        }
        let imbalance = if per_rank.len() >= 2 {
            let max = per_rank.values().cloned().fold(0.0f64, f64::max);
            let mean: f64 = per_rank.values().sum::<f64>() / per_rank.len() as f64;
            if mean > 0.0 {
                max / mean
            } else {
                1.0
            }
        } else {
            1.0
        };
        total_wall += wall;
        total_attr += attributed;
        for (t, b) in bucket_totals.iter_mut().zip(bucket_us.iter()) {
            *t += *b;
        }
        steps.push(StepAttribution {
            step: *step,
            wall_us: wall,
            attributed_us: attributed,
            bucket_us,
            ranks: per_rank.len(),
            imbalance,
        });
    }
    Ok(CritPathReport {
        steps,
        total_spans,
        tagged_spans: tagged,
        total_wall_us: total_wall,
        total_attributed_us: total_attr,
        bucket_totals_us: bucket_totals,
    })
}

/// Render a report as a human-readable table plus a summary line.
pub fn render_report(report: &CritPathReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>6}  {:>10}  {:>6}  {:>9}  {:>5}  dominant",
        "step", "wall_us", "cov%", "imbalance", "ranks"
    );
    for s in &report.steps {
        let _ = writeln!(
            out,
            "{:>6}  {:>10.1}  {:>5.1}%  {:>9.3}  {:>5}  {} ({:.1} us)",
            s.step,
            s.wall_us,
            s.coverage() * 100.0,
            s.imbalance,
            s.ranks,
            BUCKETS[s.dominant()],
            s.bucket_us[s.dominant()],
        );
    }
    let _ = writeln!(
        out,
        "steps: {}  spans: {} ({} step-tagged)  wall: {:.1} us  attributed: {:.1} us ({:.1}%)",
        report.steps.len(),
        report.total_spans,
        report.tagged_spans,
        report.total_wall_us,
        report.total_attributed_us,
        report.coverage() * 100.0,
    );
    let mut order: Vec<usize> = (0..BUCKETS.len()).collect();
    order.sort_by(|a, b| {
        report.bucket_totals_us[*b]
            .partial_cmp(&report.bucket_totals_us[*a])
            .unwrap()
    });
    let mut parts = Vec::new();
    for i in order {
        if report.bucket_totals_us[i] > 0.0 && report.total_attributed_us > 0.0 {
            parts.push(format!(
                "{} {:.1}%",
                BUCKETS[i],
                report.bucket_totals_us[i] / report.total_attributed_us * 100.0
            ));
        }
    }
    let _ = writeln!(out, "critical path: {}", parts.join(", "));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use apr_telemetry::Recorder;

    fn span(name: &str, ts: f64, dur: f64, depth: u32, step: u64, rank: Option<u32>) -> String {
        let rank = rank.map(|r| format!(",\"rank\":{r}")).unwrap_or_default();
        format!(
            "{{\"name\":\"{name}\",\"ph\":\"X\",\"ts\":{ts},\"dur\":{dur},\"pid\":1,\"tid\":1,\
             \"args\":{{\"depth\":{depth},\"self_ns\":0,\"step\":{step}{rank}}}}}"
        )
    }

    #[test]
    fn attributes_steps_structurally() {
        let trace = format!(
            "[{},{},{},{},{}]",
            span("apr.step", 0.0, 100.0, 0, 1, None),
            span("apr.fine.collide", 1.0, 60.0, 1, 1, None),
            span("apr.fine.stream", 61.0, 35.0, 1, 1, None),
            span("apr.step", 200.0, 80.0, 0, 2, None),
            span("coupling.restrict", 201.0, 79.0, 1, 2, None),
        );
        let report = analyze_chrome_trace(&trace).unwrap();
        assert_eq!(report.steps.len(), 2);
        let s1 = &report.steps[0];
        assert_eq!(s1.step, 1);
        assert_eq!(s1.wall_us, 100.0);
        assert_eq!(s1.attributed_us, 95.0);
        assert_eq!(BUCKETS[s1.dominant()], "collide");
        let s2 = &report.steps[1];
        assert_eq!(BUCKETS[s2.dominant()], "coupling");
        assert!((report.coverage() - 174.0 / 180.0).abs() < 1e-12);
    }

    #[test]
    fn rank_imbalance_is_max_over_mean() {
        let trace = format!(
            "[{},{},{}]",
            span("apr.step", 0.0, 90.0, 0, 1, Some(0)),
            span("apr.step", 0.0, 30.0, 0, 1, Some(1)),
            span("apr.fine.collide", 0.0, 100.0, 1, 1, Some(0)),
        );
        let report = analyze_chrome_trace(&trace).unwrap();
        let s = &report.steps[0];
        assert_eq!(s.ranks, 2);
        // max 90 / mean 60 = 1.5
        assert!((s.imbalance - 1.5).abs() < 1e-12);
    }

    #[test]
    fn untagged_spans_are_counted_but_not_attributed() {
        let trace = "[{\"name\":\"boot\",\"ph\":\"X\",\"ts\":0,\"dur\":5,\"pid\":1,\
                     \"tid\":1,\"args\":{\"depth\":0,\"self_ns\":0}}]";
        let report = analyze_chrome_trace(trace).unwrap();
        assert_eq!(report.total_spans, 1);
        assert_eq!(report.tagged_spans, 0);
        assert!(report.steps.is_empty());
        assert!((report.coverage() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn end_to_end_from_recorder_export() {
        let recorder = Recorder::new();
        recorder.enable();
        {
            let _step = apr_telemetry::step_scope(3);
            let _outer = recorder.span("apr.step");
            let _inner = recorder.span("apr.fine.collide");
        }
        let trace = recorder.chrome_trace_json();
        let report = analyze_chrome_trace(&trace).unwrap();
        assert_eq!(report.steps.len(), 1);
        assert_eq!(report.steps[0].step, 3);
        assert_eq!(BUCKETS[report.steps[0].dominant()], "collide");
        let rendered = render_report(&report);
        assert!(rendered.contains("critical path:"), "{rendered}");
    }
}
