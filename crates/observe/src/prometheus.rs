//! Prometheus text-format exposition: a hand-rolled writer (same
//! zero-dependency style as the telemetry JSON exporters) plus a format
//! checker strict enough to gate CI.
//!
//! The writer produces the [text exposition format]: `# HELP` / `# TYPE`
//! comments followed by sample lines, histograms expanded into
//! cumulative `_bucket{le=...}` series with `_sum` and `_count`. The
//! checker re-parses that grammar line by line — a malformed exposition
//! is exactly the kind of bug a scrape endpoint ships silently, so CI
//! round-trips every exposition through [`validate_exposition`].
//!
//! [text exposition format]:
//!     https://prometheus.io/docs/instrumenting/exposition_formats/

use apr_telemetry::json::{parse, Value};
use apr_telemetry::MetricValue;
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Sanitize an internal metric name (`apr.site_updates`) into a valid
/// Prometheus metric name (`apr_site_updates`): `[a-zA-Z_:][a-zA-Z0-9_:]*`.
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        if ok {
            out.push(c);
        } else if i == 0 && c.is_ascii_digit() {
            out.push('_');
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

fn format_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn render_labels(labels: &[(&str, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut out = String::from("{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{}\"", escape_label_value(v));
    }
    out.push('}');
    out
}

/// Incremental exposition builder. `# HELP`/`# TYPE` headers are emitted
/// once per metric family (the first sample of a family carries them);
/// callers may emit several labelled samples of the same family.
#[derive(Debug, Default)]
pub struct PromWriter {
    out: String,
    declared: BTreeSet<String>,
}

impl PromWriter {
    /// New empty exposition.
    pub fn new() -> Self {
        Self::default()
    }

    fn declare(&mut self, name: &str, help: &str, kind: &str) {
        if self.declared.insert(name.to_string()) {
            let _ = writeln!(self.out, "# HELP {name} {help}");
            let _ = writeln!(self.out, "# TYPE {name} {kind}");
        }
    }

    /// Emit one gauge sample.
    pub fn gauge(&mut self, name: &str, help: &str, labels: &[(&str, String)], value: f64) {
        let name = sanitize_metric_name(name);
        self.declare(&name, help, "gauge");
        let _ = writeln!(
            self.out,
            "{name}{} {}",
            render_labels(labels),
            format_value(value)
        );
    }

    /// Emit one counter sample (value must be the cumulative total).
    pub fn counter(&mut self, name: &str, help: &str, labels: &[(&str, String)], value: f64) {
        let name = sanitize_metric_name(name);
        self.declare(&name, help, "counter");
        let _ = writeln!(
            self.out,
            "{name}{} {}",
            render_labels(labels),
            format_value(value)
        );
    }

    /// Emit one histogram family: cumulative `_bucket{le=...}` series
    /// (including the mandatory `+Inf` bucket), `_sum`, and `_count`.
    /// `bounds` are the upper bucket edges; `counts` has one entry per
    /// bound plus one overflow entry (the `apr-telemetry` layout).
    #[allow(clippy::too_many_arguments)] // mirrors the apr-telemetry histogram layout
    pub fn histogram(
        &mut self,
        name: &str,
        help: &str,
        labels: &[(&str, String)],
        bounds: &[f64],
        counts: &[u64],
        sum: f64,
        count: u64,
    ) {
        let name = sanitize_metric_name(name);
        self.declare(&name, help, "histogram");
        let base = render_labels(labels);
        let mut cumulative = 0u64;
        for (i, bound) in bounds.iter().enumerate() {
            cumulative += counts.get(i).copied().unwrap_or(0);
            let mut bucket_labels: Vec<(&str, String)> = labels.to_vec();
            bucket_labels.push(("le", format_value(*bound)));
            let _ = writeln!(
                self.out,
                "{name}_bucket{} {cumulative}",
                render_labels(&bucket_labels)
            );
        }
        let mut inf_labels: Vec<(&str, String)> = labels.to_vec();
        inf_labels.push(("le", "+Inf".to_string()));
        let _ = writeln!(
            self.out,
            "{name}_bucket{} {count}",
            render_labels(&inf_labels)
        );
        let _ = writeln!(self.out, "{name}_sum{base} {}", format_value(sum));
        let _ = writeln!(self.out, "{name}_count{base} {count}");
    }

    /// The finished exposition text.
    pub fn finish(self) -> String {
        self.out
    }
}

/// Render an `apr-telemetry` metric value into `w`. Counters map to
/// Prometheus counters, gauges to gauges, histograms to full bucket
/// families.
pub fn write_metric_value(w: &mut PromWriter, name: &str, help: &str, value: &MetricValue) {
    match value {
        MetricValue::Counter(c) => w.counter(name, help, &[], *c as f64),
        MetricValue::Gauge(g) => w.gauge(name, help, &[], *g),
        MetricValue::Histogram(h) => {
            w.histogram(name, help, &[], &h.bounds, &h.counts, h.sum, h.count)
        }
    }
}

/// Convert the **last row** of a metrics JSONL time series (the format
/// `apr-telemetry` exports) into a Prometheus exposition. Plain numbers
/// become gauges (the JSONL rows carry no counter/gauge distinction;
/// gauge is the safe reading), histogram objects become bucket families,
/// and the row's `step` tag is exposed as `apr_metrics_step`.
pub fn exposition_from_jsonl(jsonl: &str) -> Result<String, String> {
    let last = jsonl
        .lines()
        .rfind(|l| !l.trim().is_empty())
        .ok_or("metrics series is empty")?;
    let row = parse(last).map_err(|e| format!("last row does not parse: {e}"))?;
    let Value::Obj(fields) = &row else {
        return Err("metrics row must be a JSON object".into());
    };
    let mut w = PromWriter::new();
    for (key, value) in fields {
        match key.as_str() {
            "t_ns" => continue,
            "step" => {
                let step = value.as_f64().ok_or("step must be numeric")?;
                w.gauge(
                    "apr_metrics_step",
                    "Simulation step of the exported sample",
                    &[],
                    step,
                );
            }
            _ => match value {
                Value::Num(v) => {
                    w.gauge(key, "Exported apr-telemetry metric", &[], *v);
                }
                Value::Obj(_) => {
                    let bounds: Vec<f64> = value
                        .get("bounds")
                        .and_then(Value::as_arr)
                        .ok_or_else(|| format!("{key}: histogram missing bounds"))?
                        .iter()
                        .map(|b| b.as_f64().ok_or_else(|| format!("{key}: bad bound")))
                        .collect::<Result<_, _>>()?;
                    let counts: Vec<u64> = value
                        .get("counts")
                        .and_then(Value::as_arr)
                        .ok_or_else(|| format!("{key}: histogram missing counts"))?
                        .iter()
                        .map(|c| {
                            c.as_f64()
                                .map(|v| v as u64)
                                .ok_or_else(|| format!("{key}: bad count"))
                        })
                        .collect::<Result<_, _>>()?;
                    let count = value
                        .get("count")
                        .and_then(Value::as_f64)
                        .ok_or_else(|| format!("{key}: histogram missing count"))?
                        as u64;
                    let sum = value
                        .get("sum")
                        .and_then(Value::as_f64)
                        .ok_or_else(|| format!("{key}: histogram missing sum"))?;
                    w.histogram(
                        key,
                        "Exported apr-telemetry histogram",
                        &[],
                        &bounds,
                        &counts,
                        sum,
                        count,
                    );
                }
                other => return Err(format!("{key}: unsupported value {other:?}")),
            },
        }
    }
    Ok(w.finish())
}

/// Summary of a validated exposition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExpositionSummary {
    /// Metric families declared with `# TYPE`.
    pub families: usize,
    /// Sample lines.
    pub samples: usize,
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// A parsed exposition sample: metric name, labels, value.
type ParsedSample = (String, Vec<(String, String)>, f64);

fn parse_sample_line(line: &str) -> Result<ParsedSample, String> {
    // name[{labels}] value [timestamp]
    let (name_part, rest) = match line.find('{') {
        Some(brace) => {
            let close = line.rfind('}').ok_or("unclosed label braces")?;
            if close < brace {
                return Err("unclosed label braces".into());
            }
            (&line[..brace], &line[close + 1..])
        }
        None => {
            let space = line.find(' ').ok_or("sample line has no value")?;
            (&line[..space], &line[space..])
        }
    };
    let name = name_part.trim().to_string();
    if !valid_metric_name(&name) {
        return Err(format!("invalid metric name {name:?}"));
    }
    let mut labels = Vec::new();
    if let Some(brace) = line.find('{') {
        let close = line.rfind('}').unwrap();
        let body = &line[brace + 1..close];
        let mut rest = body;
        while !rest.trim().is_empty() {
            let eq = rest.find('=').ok_or("label without '='")?;
            let key = rest[..eq].trim().to_string();
            let after = &rest[eq + 1..];
            let q0 = after.find('"').ok_or("unquoted label value")?;
            let mut end = None;
            let bytes = after.as_bytes();
            let mut i = q0 + 1;
            while i < bytes.len() {
                match bytes[i] {
                    b'\\' => i += 2,
                    b'"' => {
                        end = Some(i);
                        break;
                    }
                    _ => i += 1,
                }
            }
            let end = end.ok_or("unterminated label value")?;
            labels.push((key, after[q0 + 1..end].to_string()));
            rest = after[end + 1..].trim_start_matches(',');
        }
    }
    let mut parts = rest.split_whitespace();
    let value_str = parts.next().ok_or("sample line has no value")?;
    let value = match value_str {
        "NaN" => f64::NAN,
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        s => s
            .parse::<f64>()
            .map_err(|_| format!("invalid sample value {s:?}"))?,
    };
    if let Some(ts) = parts.next() {
        ts.parse::<i64>()
            .map_err(|_| format!("invalid timestamp {ts:?}"))?;
    }
    if parts.next().is_some() {
        return Err("trailing tokens after sample value".into());
    }
    Ok((name, labels, value))
}

fn family_of(name: &str) -> &str {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(stripped) = name.strip_suffix(suffix) {
            return stripped;
        }
    }
    name
}

/// Validate a Prometheus text exposition: every line is a well-formed
/// comment or sample, each sample's family is declared with `# TYPE`
/// before its first sample, counter samples are finite and non-negative,
/// and histogram families have monotone cumulative buckets ending in a
/// `+Inf` bucket that equals `_count`.
pub fn validate_exposition(text: &str) -> Result<ExpositionSummary, String> {
    use std::collections::BTreeMap;
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    let mut samples = 0usize;
    // Histogram bookkeeping: family -> (last cumulative bucket, inf bucket, count)
    let mut hist_last_bucket: BTreeMap<String, f64> = BTreeMap::new();
    let mut hist_inf: BTreeMap<String, f64> = BTreeMap::new();
    let mut hist_count: BTreeMap<String, f64> = BTreeMap::new();
    for (i, raw) in text.lines().enumerate() {
        let what = format!("line {}", i + 1);
        let line = raw.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let comment = comment.trim_start();
            if let Some(rest) = comment.strip_prefix("TYPE ") {
                let mut parts = rest.split_whitespace();
                let name = parts.next().ok_or(format!("{what}: TYPE without name"))?;
                let kind = parts.next().ok_or(format!("{what}: TYPE without kind"))?;
                if !matches!(
                    kind,
                    "counter" | "gauge" | "histogram" | "summary" | "untyped"
                ) {
                    return Err(format!("{what}: unknown TYPE {kind:?}"));
                }
                if !valid_metric_name(name) {
                    return Err(format!("{what}: invalid family name {name:?}"));
                }
                if types.insert(name.to_string(), kind.to_string()).is_some() {
                    return Err(format!("{what}: duplicate TYPE for {name}"));
                }
            } else if let Some(rest) = comment.strip_prefix("HELP ") {
                if rest.split_whitespace().next().is_none() {
                    return Err(format!("{what}: HELP without name"));
                }
            }
            // Other comments are permitted free text.
            continue;
        }
        let (name, labels, value) = parse_sample_line(line).map_err(|e| format!("{what}: {e}"))?;
        let family = family_of(&name);
        let kind = types
            .get(family)
            .or_else(|| types.get(name.as_str()))
            .ok_or_else(|| format!("{what}: sample {name} precedes its TYPE declaration"))?
            .clone();
        match kind.as_str() {
            "counter" if !value.is_finite() || value < 0.0 => {
                return Err(format!("{what}: counter {name} must be finite and >= 0"));
            }
            "histogram" => {
                if name.ends_with("_bucket") {
                    let le = labels
                        .iter()
                        .find(|(k, _)| k == "le")
                        .map(|(_, v)| v.clone())
                        .ok_or_else(|| format!("{what}: bucket without le label"))?;
                    if le == "+Inf" {
                        hist_inf.insert(family.to_string(), value);
                    } else {
                        le.parse::<f64>()
                            .map_err(|_| format!("{what}: invalid le {le:?}"))?;
                        let prev = hist_last_bucket.get(family).copied().unwrap_or(0.0);
                        if value < prev {
                            return Err(format!(
                                "{what}: histogram {family} buckets not cumulative"
                            ));
                        }
                        hist_last_bucket.insert(family.to_string(), value);
                    }
                } else if name.ends_with("_count") {
                    hist_count.insert(family.to_string(), value);
                }
            }
            _ => {}
        }
        samples += 1;
    }
    if samples == 0 {
        return Err("exposition has no samples".into());
    }
    for (family, kind) in &types {
        if kind == "histogram" {
            let inf = hist_inf
                .get(family)
                .ok_or_else(|| format!("histogram {family} missing +Inf bucket"))?;
            let count = hist_count
                .get(family)
                .ok_or_else(|| format!("histogram {family} missing _count"))?;
            if (inf - count).abs() > 0.0 {
                return Err(format!(
                    "histogram {family}: +Inf bucket {inf} != _count {count}"
                ));
            }
            if let Some(last) = hist_last_bucket.get(family) {
                if last > inf {
                    return Err(format!("histogram {family}: bucket exceeds +Inf"));
                }
            }
        }
    }
    Ok(ExpositionSummary {
        families: types.len(),
        samples,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitizes_names() {
        assert_eq!(sanitize_metric_name("apr.site_updates"), "apr_site_updates");
        assert_eq!(
            sanitize_metric_name("window.hematocrit"),
            "window_hematocrit"
        );
        assert_eq!(sanitize_metric_name("9lives"), "_9lives");
        assert_eq!(sanitize_metric_name(""), "_");
    }

    #[test]
    fn writer_output_validates() {
        let mut w = PromWriter::new();
        w.counter("apr.site_updates", "Fluid site updates", &[], 123456.0);
        w.gauge("window.hematocrit", "Window hematocrit", &[], 0.25);
        w.gauge(
            "serve_session_steps",
            "Per-session progress",
            &[("session", "7".to_string())],
            42.0,
        );
        w.histogram(
            "slice_ms",
            "Slice latency",
            &[],
            &[1.0, 5.0, 10.0],
            &[3, 2, 1, 1],
            44.0,
            7,
        );
        let text = w.finish();
        let summary = validate_exposition(&text).unwrap();
        assert_eq!(summary.families, 4);
        // counter + 2 gauges + 4 buckets + sum + count = 9
        assert_eq!(summary.samples, 9);
        assert!(text.contains("# TYPE apr_site_updates counter"));
        assert!(text.contains("serve_session_steps{session=\"7\"} 42"));
        assert!(text.contains("slice_ms_bucket{le=\"+Inf\"} 7"));
    }

    #[test]
    fn jsonl_conversion_round_trips() {
        let jsonl = concat!(
            "{\"t_ns\":10,\"step\":1,\"apr.site_updates\":1000,\"window.hematocrit\":0.2}\n",
            "{\"t_ns\":20,\"step\":2,\"apr.site_updates\":2000,\"window.hematocrit\":0.25,",
            "\"lat\":{\"bounds\":[1.0,2.0],\"counts\":[1,2,0],\"count\":3,\"sum\":4.5}}",
        );
        let text = exposition_from_jsonl(jsonl).unwrap();
        let summary = validate_exposition(&text).unwrap();
        assert!(summary.families >= 4);
        assert!(
            text.contains("apr_site_updates 2000"),
            "last row wins:\n{text}"
        );
        assert!(text.contains("apr_metrics_step 2"));
        assert!(text.contains("lat_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("lat_sum 4.5"));
    }

    #[test]
    fn validator_rejects_malformed_expositions() {
        assert!(validate_exposition("").is_err());
        assert!(validate_exposition("no_type_decl 1\n").is_err());
        let bad_counter = "# TYPE c counter\nc -1\n";
        assert!(validate_exposition(bad_counter).is_err());
        let no_inf = "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_count 1\nh_sum 1\n";
        assert!(validate_exposition(no_inf).unwrap_err().contains("+Inf"));
        let not_cumulative = concat!(
            "# TYPE h histogram\n",
            "h_bucket{le=\"1\"} 5\n",
            "h_bucket{le=\"2\"} 3\n",
            "h_bucket{le=\"+Inf\"} 5\nh_count 5\nh_sum 1\n",
        );
        assert!(validate_exposition(not_cumulative)
            .unwrap_err()
            .contains("cumulative"));
        let inf_mismatch = concat!(
            "# TYPE h histogram\n",
            "h_bucket{le=\"+Inf\"} 4\nh_count 5\nh_sum 1\n",
        );
        assert!(validate_exposition(inf_mismatch)
            .unwrap_err()
            .contains("!="));
    }
}
