//! Conservation ledger: per-step mass/momentum accounting for the bulk
//! domain and the moving fine window, with drift detection.
//!
//! The paper's APR scheme is only credible if the moving window conserves
//! what it claims to: fill/capture across a window move exchanges mass
//! between the coarse bulk and the fine window, the Eq.-7 coupling
//! restricts the fine solution back onto the coarse grid, and a bug in
//! either silently corrupts the physics while every node stays finite —
//! invisible to the NaN/Mach sentinel. The ledger closes that gap: the
//! engine feeds it per-step totals (computed with the deterministic
//! ordered reduction in `apr-exec`, so the ledger never perturbs
//! bit-identity), it tracks step-over-step drift, and any drift beyond
//! the configured tolerances is *latched* as a [`DriftBreach`] until the
//! guardian inspects (and converts it into a
//! `HealthIssue::ConservationDrift`) or a rollback resets continuity.
//!
//! Window moves are accounted, not flagged: a step whose
//! [`WindowFlux::moved`] is set legitimately changes the window totals
//! (fill/capture), so the ledger records the flux counts and restarts
//! window continuity instead of reporting drift.

use crate::hub::{hub, Sample};

/// Mass/momentum totals over one domain (bulk lattice or fine window),
/// produced by `Lattice::mass_momentum_totals`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DomainTotals {
    /// Total mass: Σ over fluid nodes of Σ_i f_i.
    pub mass: f64,
    /// Total momentum: Σ over fluid nodes of Σ_i f_i c_i.
    pub momentum: [f64; 3],
    /// Fluid nodes included in the sums.
    pub fluid_nodes: u64,
}

/// Window fill/capture flux counts for one step (all zero on steps
/// without a window move).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WindowFlux {
    /// Cells captured into the window by the move.
    pub captured: u32,
    /// Fine nodes copied (window overlap preserved across the move).
    pub copied: u32,
    /// Cells removed (escaped or dropped) by the move.
    pub removed: u32,
    /// True when a window move happened this step: the window totals
    /// legitimately change and window continuity restarts.
    pub moved: bool,
}

/// Drift tolerances and which checks are armed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LedgerConfig {
    /// Maximum tolerated relative step-over-step change of bulk mass.
    /// The coarse restrict overwrites the covered region with the fine
    /// solution every step, so a small physical exchange is expected;
    /// the default gives it generous headroom while still catching a
    /// leaked node (one node's mass is ~1e-4 of a small tube's total).
    pub bulk_mass_tol: f64,
    /// Maximum tolerated relative step-over-step change of window mass
    /// (only checked between moves; a move restarts continuity).
    pub window_mass_tol: f64,
    /// Optional absolute tolerance on step-over-step change of momentum
    /// magnitude. `None` (default) disarms the check: force-driven flows
    /// legitimately gain momentum every step.
    pub momentum_tol: Option<f64>,
    /// Maximum tolerated absolute hematocrit drift from the first
    /// recorded value.
    pub ht_drift_tol: f64,
}

impl Default for LedgerConfig {
    fn default() -> Self {
        Self {
            bulk_mass_tol: 1e-2,
            window_mass_tol: 5e-2,
            momentum_tol: None,
            ht_drift_tol: 0.2,
        }
    }
}

impl LedgerConfig {
    /// Strict profile for flows that conserve mass exactly (periodic +
    /// bounce-back closed lattices): drift beyond accumulated rounding
    /// is a bug. This is the profile the conservation integration tests
    /// pin the kernels against.
    pub fn strict() -> Self {
        Self {
            bulk_mass_tol: 1e-12,
            window_mass_tol: 1e-12,
            momentum_tol: None,
            ht_drift_tol: 0.2,
        }
    }
}

/// One per-step ledger record, published to the metrics hub as
/// [`Sample::Ledger`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LedgerSample {
    /// Engine step the totals were taken after.
    pub step: u64,
    /// Bulk (coarse lattice) totals.
    pub bulk: DomainTotals,
    /// Fine-window totals.
    pub window: DomainTotals,
    /// Window hematocrit, when a controller reports one.
    pub hematocrit: Option<f64>,
    /// Fill/capture flux for this step.
    pub flux: WindowFlux,
    /// Relative step-over-step bulk-mass change (0 on the first sample).
    pub bulk_mass_drift: f64,
    /// Relative step-over-step window-mass change (0 on the first sample
    /// and on move steps, where continuity restarts).
    pub window_mass_drift: f64,
}

/// A latched tolerance violation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftBreach {
    /// Which quantity drifted: `"bulk_mass"`, `"window_mass"`,
    /// `"momentum"` or `"hematocrit"`.
    pub quantity: &'static str,
    /// Observed drift (relative for mass, absolute otherwise).
    pub observed: f64,
    /// The tolerance it exceeded.
    pub tolerance: f64,
    /// Step the drift was measured at.
    pub step: u64,
}

fn rel_change(now: f64, before: f64) -> f64 {
    if before.abs() < f64::MIN_POSITIVE {
        if now.abs() < f64::MIN_POSITIVE {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        ((now - before) / before).abs()
    }
}

fn momentum_mag(m: [f64; 3]) -> f64 {
    (m[0] * m[0] + m[1] * m[1] + m[2] * m[2]).sqrt()
}

/// Per-step conservation accounting with latched drift detection.
///
/// Breaches accumulate in [`ConservationLedger::breaches`] until either a
/// guardian inspection converts them into health issues or a rollback
/// calls [`ConservationLedger::reset_continuity`] (a restored engine's
/// totals are discontinuous with the pre-restore ones by construction).
#[derive(Debug, Clone)]
pub struct ConservationLedger {
    config: LedgerConfig,
    prev: Option<LedgerSample>,
    baseline_ht: Option<f64>,
    breaches: Vec<DriftBreach>,
    samples: u64,
    cumulative_flux: (u64, u64, u64),
}

impl ConservationLedger {
    /// New ledger with `config` tolerances.
    pub fn new(config: LedgerConfig) -> Self {
        Self {
            config,
            prev: None,
            baseline_ht: None,
            breaches: Vec::new(),
            samples: 0,
            cumulative_flux: (0, 0, 0),
        }
    }

    /// The configured tolerances.
    pub fn config(&self) -> &LedgerConfig {
        &self.config
    }

    /// Record one step's totals; computes drift, latches breaches, and
    /// publishes the sample to the metrics hub. Returns the sample.
    pub fn record(
        &mut self,
        step: u64,
        bulk: DomainTotals,
        window: DomainTotals,
        hematocrit: Option<f64>,
        flux: WindowFlux,
    ) -> LedgerSample {
        let mut sample = LedgerSample {
            step,
            bulk,
            window,
            hematocrit,
            flux,
            bulk_mass_drift: 0.0,
            window_mass_drift: 0.0,
        };
        if let Some(prev) = self.prev {
            sample.bulk_mass_drift = rel_change(bulk.mass, prev.bulk.mass);
            if sample.bulk_mass_drift > self.config.bulk_mass_tol {
                self.breaches.push(DriftBreach {
                    quantity: "bulk_mass",
                    observed: sample.bulk_mass_drift,
                    tolerance: self.config.bulk_mass_tol,
                    step,
                });
            }
            // A window move exchanges mass with the bulk by design; the
            // flux counts account for it and continuity restarts.
            if !flux.moved {
                sample.window_mass_drift = rel_change(window.mass, prev.window.mass);
                if sample.window_mass_drift > self.config.window_mass_tol {
                    self.breaches.push(DriftBreach {
                        quantity: "window_mass",
                        observed: sample.window_mass_drift,
                        tolerance: self.config.window_mass_tol,
                        step,
                    });
                }
            }
            if let Some(tol) = self.config.momentum_tol {
                let d = (momentum_mag(bulk.momentum) - momentum_mag(prev.bulk.momentum)).abs();
                if d > tol {
                    self.breaches.push(DriftBreach {
                        quantity: "momentum",
                        observed: d,
                        tolerance: tol,
                        step,
                    });
                }
            }
        }
        if let Some(ht) = hematocrit {
            match self.baseline_ht {
                None => self.baseline_ht = Some(ht),
                Some(base) => {
                    let d = (ht - base).abs();
                    if d > self.config.ht_drift_tol {
                        self.breaches.push(DriftBreach {
                            quantity: "hematocrit",
                            observed: d,
                            tolerance: self.config.ht_drift_tol,
                            step,
                        });
                    }
                }
            }
        }
        self.cumulative_flux.0 += flux.captured as u64;
        self.cumulative_flux.1 += flux.copied as u64;
        self.cumulative_flux.2 += flux.removed as u64;
        self.samples += 1;
        self.prev = Some(sample);
        hub().publish(Sample::Ledger(sample));
        sample
    }

    /// Latched breaches since the last [`reset_continuity`] /
    /// [`take_breaches`] (peek; the guardian's inspection reads these).
    ///
    /// [`reset_continuity`]: ConservationLedger::reset_continuity
    /// [`take_breaches`]: ConservationLedger::take_breaches
    pub fn breaches(&self) -> &[DriftBreach] {
        &self.breaches
    }

    /// Drain the latched breaches.
    pub fn take_breaches(&mut self) -> Vec<DriftBreach> {
        std::mem::take(&mut self.breaches)
    }

    /// Restart step-over-step continuity and clear latched breaches.
    /// Called after a checkpoint restore: the restored totals are
    /// discontinuous with the pre-restore ones by construction, and the
    /// breaches that triggered the rollback are now handled.
    pub fn reset_continuity(&mut self) {
        self.prev = None;
        self.breaches.clear();
    }

    /// The most recent sample, if any.
    pub fn last(&self) -> Option<LedgerSample> {
        self.prev
    }

    /// Samples recorded since construction.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Cumulative `(captured, copied, removed)` fill/capture counts over
    /// every recorded step — the window's total exchange with the bulk.
    pub fn cumulative_flux(&self) -> (u64, u64, u64) {
        self.cumulative_flux
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn totals(mass: f64) -> DomainTotals {
        DomainTotals {
            mass,
            momentum: [0.0; 3],
            fluid_nodes: 100,
        }
    }

    #[test]
    fn steady_totals_latch_nothing() {
        let mut ledger = ConservationLedger::new(LedgerConfig::strict());
        for step in 1..=10 {
            let s = ledger.record(
                step,
                totals(1000.0),
                totals(50.0),
                None,
                WindowFlux::default(),
            );
            assert_eq!(s.bulk_mass_drift, 0.0);
        }
        assert!(ledger.breaches().is_empty());
        assert_eq!(ledger.samples(), 10);
    }

    #[test]
    fn mass_jump_latches_until_reset() {
        let mut ledger = ConservationLedger::new(LedgerConfig {
            bulk_mass_tol: 1e-6,
            ..LedgerConfig::default()
        });
        ledger.record(1, totals(1000.0), totals(50.0), None, WindowFlux::default());
        ledger.record(2, totals(999.0), totals(50.0), None, WindowFlux::default());
        // Drift happened at step 2; later clean steps must not clear it.
        ledger.record(3, totals(999.0), totals(50.0), None, WindowFlux::default());
        let breaches = ledger.breaches();
        assert_eq!(breaches.len(), 1);
        assert_eq!(breaches[0].quantity, "bulk_mass");
        assert_eq!(breaches[0].step, 2);
        assert!((breaches[0].observed - 1e-3).abs() < 1e-9);
        ledger.reset_continuity();
        assert!(ledger.breaches().is_empty());
        // Continuity restarted: the next sample compares against nothing.
        let s = ledger.record(4, totals(500.0), totals(50.0), None, WindowFlux::default());
        assert_eq!(s.bulk_mass_drift, 0.0);
        assert!(ledger.breaches().is_empty());
    }

    #[test]
    fn window_move_is_accounted_not_flagged() {
        let mut ledger = ConservationLedger::new(LedgerConfig {
            window_mass_tol: 1e-9,
            ..LedgerConfig::default()
        });
        ledger.record(1, totals(1000.0), totals(50.0), None, WindowFlux::default());
        // The move doubles window mass — legitimate fill/capture.
        let moved = WindowFlux {
            captured: 3,
            copied: 120,
            removed: 1,
            moved: true,
        };
        let s = ledger.record(2, totals(1000.0), totals(100.0), None, moved);
        assert_eq!(s.window_mass_drift, 0.0);
        assert!(ledger.breaches().is_empty());
        assert_eq!(ledger.cumulative_flux(), (3, 120, 1));
        // But an unexplained jump (no move) on the next step is drift.
        ledger.record(3, totals(1000.0), totals(90.0), None, WindowFlux::default());
        assert_eq!(ledger.breaches().len(), 1);
        assert_eq!(ledger.breaches()[0].quantity, "window_mass");
    }

    #[test]
    fn hematocrit_drifts_against_first_sample() {
        let mut ledger = ConservationLedger::new(LedgerConfig {
            ht_drift_tol: 0.05,
            ..LedgerConfig::default()
        });
        ledger.record(
            1,
            totals(1.0),
            totals(1.0),
            Some(0.25),
            WindowFlux::default(),
        );
        ledger.record(
            2,
            totals(1.0),
            totals(1.0),
            Some(0.27),
            WindowFlux::default(),
        );
        assert!(ledger.breaches().is_empty());
        ledger.record(
            3,
            totals(1.0),
            totals(1.0),
            Some(0.31),
            WindowFlux::default(),
        );
        assert_eq!(ledger.breaches().len(), 1);
        assert_eq!(ledger.breaches()[0].quantity, "hematocrit");
    }

    #[test]
    fn momentum_check_is_opt_in() {
        let mut cfg = LedgerConfig::default();
        let with_momentum = |m: [f64; 3]| DomainTotals {
            mass: 1.0,
            momentum: m,
            fluid_nodes: 1,
        };
        let mut ledger = ConservationLedger::new(cfg);
        ledger.record(
            1,
            with_momentum([0.0; 3]),
            totals(1.0),
            None,
            WindowFlux::default(),
        );
        ledger.record(
            2,
            with_momentum([5.0, 0.0, 0.0]),
            totals(1.0),
            None,
            WindowFlux::default(),
        );
        assert!(ledger.breaches().is_empty(), "disarmed by default");
        cfg.momentum_tol = Some(1.0);
        let mut armed = ConservationLedger::new(cfg);
        armed.record(
            1,
            with_momentum([0.0; 3]),
            totals(1.0),
            None,
            WindowFlux::default(),
        );
        armed.record(
            2,
            with_momentum([5.0, 0.0, 0.0]),
            totals(1.0),
            None,
            WindowFlux::default(),
        );
        assert_eq!(armed.breaches().len(), 1);
        assert_eq!(armed.breaches()[0].quantity, "momentum");
    }
}
