//! Per-step critical-path report over a correlation-tagged Chrome trace.
//!
//! Usage:
//!   observe_critpath <trace.json> [--min-coverage <fraction>] [--require-steps <n>]
//!
//! Prints the per-step attribution table (wall time, coverage, rank
//! imbalance, dominant phase) and a whole-trace summary. With
//! `--min-coverage` the run fails unless the analyzer attributes at
//! least that fraction of step wall time; with `--require-steps` it
//! fails unless at least that many steps were attributed. Both gates
//! exist for CI.

use apr_observe::{analyze_chrome_trace, render_report};

fn fail(msg: &str) -> ! {
    eprintln!("observe_critpath: {msg}");
    std::process::exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut trace_path = None;
    let mut min_coverage = None;
    let mut require_steps = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--min-coverage" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| fail("--min-coverage needs a value"));
                min_coverage = Some(
                    v.parse::<f64>()
                        .unwrap_or_else(|_| fail(&format!("bad coverage {v:?}"))),
                );
            }
            "--require-steps" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| fail("--require-steps needs a value"));
                require_steps = Some(
                    v.parse::<usize>()
                        .unwrap_or_else(|_| fail(&format!("bad step count {v:?}"))),
                );
            }
            _ if trace_path.is_none() => trace_path = Some(arg.clone()),
            other => fail(&format!("unexpected argument {other:?}")),
        }
    }
    let trace_path = trace_path.unwrap_or_else(|| {
        fail("usage: observe_critpath <trace.json> [--min-coverage F] [--require-steps N]")
    });
    let text = std::fs::read_to_string(&trace_path)
        .unwrap_or_else(|e| fail(&format!("{trace_path}: {e}")));
    let report =
        analyze_chrome_trace(&text).unwrap_or_else(|e| fail(&format!("{trace_path}: {e}")));
    print!("{}", render_report(&report));
    if let Some(min) = min_coverage {
        let cov = report.coverage();
        if cov < min {
            fail(&format!("coverage {cov:.4} below required {min:.4}"));
        }
        println!("coverage gate passed: {cov:.4} >= {min:.4}");
    }
    if let Some(n) = require_steps {
        if report.steps.len() < n {
            fail(&format!(
                "only {} attributed steps, {n} required",
                report.steps.len()
            ));
        }
        println!("step-count gate passed: {} >= {n}", report.steps.len());
    }
}
