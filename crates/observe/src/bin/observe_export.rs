//! Convert an `apr-telemetry` metrics JSONL series into a Prometheus
//! text exposition, or validate an existing exposition file.
//!
//! Usage:
//!   observe_export <metrics.jsonl> [-o <out.prom>]
//!   observe_export --check <exposition.prom>
//!
//! Without `-o` the exposition is printed to stdout. Every produced
//! exposition is validated before it is written; `--check` runs only the
//! validator. Exit code is non-zero on any failure, so CI can gate on it.

use apr_observe::{exposition_from_jsonl, validate_exposition};

fn fail(msg: &str) -> ! {
    eprintln!("observe_export: {msg}");
    std::process::exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        fail("usage: observe_export <metrics.jsonl> [-o out.prom] | --check <file.prom>");
    }
    if args[0] == "--check" {
        let path = args.get(1).unwrap_or_else(|| fail("--check needs a path"));
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| fail(&format!("{path}: {e}")));
        match validate_exposition(&text) {
            Ok(s) => println!(
                "{path}: OK ({} families, {} samples)",
                s.families, s.samples
            ),
            Err(e) => fail(&format!("{path}: INVALID: {e}")),
        }
        return;
    }
    let mut input = None;
    let mut output = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-o" => output = Some(it.next().unwrap_or_else(|| fail("-o needs a path")).clone()),
            _ if input.is_none() => input = Some(arg.clone()),
            other => fail(&format!("unexpected argument {other:?}")),
        }
    }
    let input = input.unwrap_or_else(|| fail("no input given"));
    let jsonl = std::fs::read_to_string(&input).unwrap_or_else(|e| fail(&format!("{input}: {e}")));
    let exposition =
        exposition_from_jsonl(&jsonl).unwrap_or_else(|e| fail(&format!("{input}: {e}")));
    let summary = validate_exposition(&exposition)
        .unwrap_or_else(|e| fail(&format!("produced exposition invalid: {e}")));
    match output {
        Some(path) => {
            std::fs::write(&path, &exposition).unwrap_or_else(|e| fail(&format!("{path}: {e}")));
            println!(
                "wrote {path} ({} families, {} samples)",
                summary.families, summary.samples
            );
        }
        None => print!("{exposition}"),
    }
}
