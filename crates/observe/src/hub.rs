//! Live metrics hub: a bounded broadcast channel over which engines,
//! serve sessions and parallel ranks publish typed samples.
//!
//! Design constraints, in order:
//!
//! 1. **Free when nobody listens.** The hot path (one publish per engine
//!    step / serve slice) must cost one relaxed atomic load when no
//!    subscriber exists — no lock, no allocation. This is the same
//!    contract `apr-telemetry` makes for disabled recording, and the
//!    `no_alloc` test pins it the same way.
//! 2. **Bounded.** A slow subscriber never blocks a publisher and never
//!    grows memory: each subscription owns a fixed-capacity deque and
//!    drops its *oldest* sample on overflow, counting what it lost.
//! 3. **Broadcast.** Every live subscriber sees every sample published
//!    after it subscribed (subject to its own bound).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock, Weak};
use std::time::Duration;

use crate::ledger::LedgerSample;

/// Default per-subscription queue bound.
pub const DEFAULT_SUBSCRIPTION_CAPACITY: usize = 1024;

/// Per-slice progress of one serve session, published by the scheduler
/// worker after each slice it grants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProgressSample {
    /// Session id.
    pub session: u64,
    /// Steps completed so far.
    pub steps_done: u64,
    /// Target step count.
    pub target_steps: u64,
    /// Slices granted so far (this sample reports the latest one).
    pub slice: u64,
    /// Stepping throughput of the slice just finished (steps per second
    /// of pure stepping time, excluding resume/suspend overhead).
    pub steps_per_sec: f64,
    /// Whether the session's cold build was served from the warm-state
    /// cache (`None` until known, i.e. for resumed slices it carries the
    /// admission-time answer).
    pub cache_hit: Option<bool>,
    /// True on the sample announcing session completion.
    pub completed: bool,
}

/// Service-level aggregate counters, published occasionally by the
/// scheduler (queue depth and in-flight counts move with every grant).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceSample {
    /// Sessions admitted since service start.
    pub admitted: u64,
    /// Sessions completed (successfully or failed).
    pub completed: u64,
    /// Sessions currently queued.
    pub queued: u64,
    /// Sessions currently running or parked mid-flight.
    pub inflight: u64,
}

/// Anything publishable on the hub. All variants are `Copy`: publishing
/// never allocates, so the nobody-listening fast path stays free and the
/// somebody-listening path is a couple of deque writes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Sample {
    /// A conservation-ledger record.
    Ledger(LedgerSample),
    /// Serve session progress.
    Progress(ProgressSample),
    /// Service-level aggregates.
    Service(ServiceSample),
}

#[derive(Debug)]
struct SubscriberInner {
    queue: Mutex<VecDeque<Sample>>,
    ready: Condvar,
    capacity: usize,
    dropped: AtomicU64,
}

/// The broadcast hub. Most code uses the process-global instance via
/// [`hub`]; tests construct their own for isolation.
#[derive(Debug, Default)]
pub struct MetricsHub {
    subscribers: Mutex<Vec<Weak<SubscriberInner>>>,
    active: AtomicUsize,
    published: AtomicU64,
}

impl MetricsHub {
    /// New hub with no subscribers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Publish a sample to every live subscriber. With no subscribers
    /// this is one relaxed atomic load — safe to call from hot paths.
    #[inline]
    pub fn publish(&self, sample: Sample) {
        if self.active.load(Ordering::Relaxed) == 0 {
            return;
        }
        self.publish_slow(sample);
    }

    fn publish_slow(&self, sample: Sample) {
        let mut subs = self.subscribers.lock().unwrap();
        subs.retain(|weak| {
            let Some(sub) = weak.upgrade() else {
                return false;
            };
            let mut queue = sub.queue.lock().unwrap();
            if queue.len() == sub.capacity {
                queue.pop_front();
                sub.dropped.fetch_add(1, Ordering::Relaxed);
            }
            queue.push_back(sample);
            drop(queue);
            sub.ready.notify_all();
            true
        });
        self.active.store(subs.len(), Ordering::Relaxed);
        self.published.fetch_add(1, Ordering::Relaxed);
    }

    /// Subscribe with the default queue bound.
    pub fn subscribe(&self) -> Subscription {
        self.subscribe_with_capacity(DEFAULT_SUBSCRIPTION_CAPACITY)
    }

    /// Subscribe with an explicit queue bound (min 1). The subscription
    /// sees every sample published after this call, oldest dropped first
    /// if the consumer lags past `capacity`.
    pub fn subscribe_with_capacity(&self, capacity: usize) -> Subscription {
        let inner = Arc::new(SubscriberInner {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            capacity: capacity.max(1),
            dropped: AtomicU64::new(0),
        });
        let mut subs = self.subscribers.lock().unwrap();
        subs.retain(|w| w.strong_count() > 0);
        subs.push(Arc::downgrade(&inner));
        self.active.store(subs.len(), Ordering::Relaxed);
        Subscription { inner }
    }

    /// Samples published while at least one subscriber was live.
    pub fn published(&self) -> u64 {
        self.published.load(Ordering::Relaxed)
    }

    /// Live subscriptions right now.
    pub fn subscriber_count(&self) -> usize {
        let mut subs = self.subscribers.lock().unwrap();
        subs.retain(|w| w.strong_count() > 0);
        let n = subs.len();
        self.active.store(n, Ordering::Relaxed);
        n
    }
}

/// A bounded receive handle returned by [`MetricsHub::subscribe`].
/// Dropping it unsubscribes (publishers notice lazily, on their next
/// publish).
#[derive(Debug)]
pub struct Subscription {
    inner: Arc<SubscriberInner>,
}

impl Subscription {
    /// Pop the oldest queued sample, if any, without blocking.
    pub fn try_recv(&self) -> Option<Sample> {
        self.inner.queue.lock().unwrap().pop_front()
    }

    /// Pop the oldest queued sample, waiting up to `timeout` for one to
    /// arrive.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<Sample> {
        let mut queue = self.inner.queue.lock().unwrap();
        if let Some(s) = queue.pop_front() {
            return Some(s);
        }
        let (mut queue, _) = self
            .inner
            .ready
            .wait_timeout_while(queue, timeout, |q| q.is_empty())
            .unwrap();
        queue.pop_front()
    }

    /// Drain everything currently queued, oldest first.
    pub fn drain(&self) -> Vec<Sample> {
        self.inner.queue.lock().unwrap().drain(..).collect()
    }

    /// Samples this subscription lost to its bound.
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }

    /// Samples currently queued.
    pub fn len(&self) -> usize {
        self.inner.queue.lock().unwrap().len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

static GLOBAL: OnceLock<MetricsHub> = OnceLock::new();

/// The process-global hub every instrumented crate publishes to.
pub fn hub() -> &'static MetricsHub {
    GLOBAL.get_or_init(MetricsHub::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn progress(session: u64, steps_done: u64) -> Sample {
        Sample::Progress(ProgressSample {
            session,
            steps_done,
            target_steps: 100,
            slice: 1,
            steps_per_sec: 0.0,
            cache_hit: None,
            completed: false,
        })
    }

    #[test]
    fn broadcast_reaches_every_subscriber() {
        let hub = MetricsHub::new();
        let a = hub.subscribe();
        let b = hub.subscribe();
        hub.publish(progress(1, 10));
        hub.publish(progress(2, 20));
        assert_eq!(a.drain().len(), 2);
        assert_eq!(b.len(), 2);
        assert_eq!(hub.published(), 2);
    }

    #[test]
    fn publish_without_subscribers_is_dropped() {
        let hub = MetricsHub::new();
        hub.publish(progress(1, 1));
        assert_eq!(hub.published(), 0, "fast path does not even count");
        let sub = hub.subscribe();
        assert!(sub.try_recv().is_none(), "no retroactive delivery");
    }

    #[test]
    fn bound_drops_oldest_and_counts() {
        let hub = MetricsHub::new();
        let sub = hub.subscribe_with_capacity(2);
        for i in 0..5 {
            hub.publish(progress(1, i));
        }
        assert_eq!(sub.dropped(), 3);
        let got = sub.drain();
        assert_eq!(got.len(), 2);
        match got[0] {
            Sample::Progress(p) => assert_eq!(p.steps_done, 3, "oldest were dropped"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn dropped_subscription_unregisters() {
        let hub = MetricsHub::new();
        let sub = hub.subscribe();
        assert_eq!(hub.subscriber_count(), 1);
        drop(sub);
        assert_eq!(hub.subscriber_count(), 0);
        hub.publish(progress(1, 1));
        assert_eq!(hub.published(), 0, "publish sees zero active again");
    }

    #[test]
    fn recv_timeout_wakes_on_publish() {
        let hub = Arc::new(MetricsHub::new());
        let sub = hub.subscribe();
        let publisher = {
            let hub = Arc::clone(&hub);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                hub.publish(progress(7, 42));
            })
        };
        let got = sub.recv_timeout(Duration::from_secs(5));
        publisher.join().unwrap();
        match got {
            Some(Sample::Progress(p)) => assert_eq!(p.session, 7),
            other => panic!("{other:?}"),
        }
        assert!(sub.recv_timeout(Duration::from_millis(5)).is_none());
    }
}
