//! The persistent scoped worker pool and its deterministic parallel
//! primitives.
//!
//! Every primitive partitions work into **chunks whose layout depends only
//! on the problem size and the chunk length** — never on the worker count.
//! Chunk outputs are either disjoint writes (no reduction at all) or are
//! reduced on the submitting thread in a fixed-shape pairwise tree over
//! chunk order. Both make results bit-identical for any thread count,
//! including one; see the crate docs for the full argument.

use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// One parallel region: a lane-indexed closure erased to a raw pointer so
/// the persistent workers can run borrowed closures. The pointee is only
/// valid while the submitting [`ExecPool::run`] call is blocked, which the
/// epoch/pending protocol guarantees.
#[derive(Clone, Copy)]
struct Job {
    f: *const (dyn Fn(usize) + Sync),
    lanes: usize,
}

// SAFETY: the pointer is dereferenced only between job publication and the
// final `pending` decrement, during which the submitter keeps the closure
// alive (it is blocked in `run`). The pointee is `Sync`, so shared calls
// from many workers are sound.
unsafe impl Send for Job {}

struct PoolState {
    epoch: u64,
    job: Option<Job>,
    /// Workers that have not yet finished the current epoch.
    pending: usize,
    /// Panic payloads captured from worker lanes this epoch.
    panics: Vec<Box<dyn std::any::Any + Send>>,
    /// Busy nanoseconds accumulated by worker lanes this epoch.
    busy_ns: u64,
    shutdown: bool,
}

struct Shared {
    state: Mutex<PoolState>,
    /// Workers wait here for a new epoch.
    work: Condvar,
    /// The submitter waits here for `pending == 0`.
    done: Condvar,
    /// Lock-free per-lane busy-time slots (`lane_busy[lane]`, ns) for the
    /// most recent region. Each lane writes only its own slot; the
    /// submitter reads them after the barrier, so plain relaxed ordering
    /// suffices (the `pending`-protocol mutex orders the accesses).
    lane_busy: Vec<AtomicU64>,
}

/// Wall/busy accounting for the most recent parallel region.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunStats {
    /// Wall-clock nanoseconds of the region (submit to last lane done).
    pub wall_ns: u64,
    /// Summed per-lane busy nanoseconds.
    pub busy_ns: u64,
    /// Lanes the region ran with.
    pub lanes: usize,
}

impl RunStats {
    /// Fraction of the region's lane-seconds actually spent executing —
    /// `busy / (wall × lanes)`, in `[0, 1]`. 1.0 when nothing has run.
    pub fn utilization(&self) -> f64 {
        if self.wall_ns == 0 || self.lanes == 0 {
            return 1.0;
        }
        (self.busy_ns as f64 / (self.wall_ns as f64 * self.lanes as f64)).min(1.0)
    }
}

thread_local! {
    /// True inside a pool lane (worker thread, or the caller while it runs
    /// lane 0). Nested `run` calls execute inline instead of deadlocking on
    /// the submission lock.
    static IN_POOL: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// A persistent scoped worker pool over `std::thread`.
///
/// `threads` is the total lane count: the submitting thread always executes
/// lane 0, and `threads − 1` background workers execute the rest, so a
/// 1-thread pool spawns nothing and runs everything inline (the sequential
/// fast path has zero synchronization). Threads are parked between regions
/// and shut down when the pool is dropped.
pub struct ExecPool {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
    /// Serializes parallel regions from concurrent submitters (e.g. two
    /// test threads sharing the global pool).
    submit: Mutex<()>,
    last_run: Mutex<RunStats>,
    threads: usize,
}

impl std::fmt::Debug for ExecPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecPool")
            .field("threads", &self.threads)
            .finish()
    }
}

impl ExecPool {
    /// Pool with `threads` lanes (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState {
                epoch: 0,
                job: None,
                pending: 0,
                panics: Vec::new(),
                busy_ns: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
            lane_busy: (0..threads).map(|_| AtomicU64::new(0)).collect(),
        });
        let workers = (1..threads)
            .map(|lane| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("apr-exec-{lane}"))
                    .spawn(move || worker_loop(lane, &shared))
                    .expect("spawn exec worker")
            })
            .collect();
        Self {
            shared,
            workers,
            submit: Mutex::new(()),
            last_run: Mutex::new(RunStats::default()),
            threads,
        }
    }

    /// Single-lane pool: everything runs inline on the caller.
    pub fn sequential() -> Self {
        Self::new(1)
    }

    /// Total lane count (worker threads + the submitting thread).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Wall/busy accounting for the most recent parallel region.
    pub fn last_run_stats(&self) -> RunStats {
        *self.last_run.lock().unwrap()
    }

    /// Execute `f(lane)` once per lane `0..threads()`, returning when every
    /// lane has finished. The closure may borrow from the caller's stack.
    ///
    /// Nested calls (from inside a lane) run all lanes inline on the
    /// current thread — parallelism does not compose, determinism does.
    ///
    /// # Panics
    /// Re-raises the first lane panic after all lanes have stopped, so
    /// borrowed data is never freed while a worker may still touch it.
    pub fn run(&self, f: &(dyn Fn(usize) + Sync)) {
        let lanes = self.threads;
        if lanes == 1 || IN_POOL.with(|p| p.get()) {
            if IN_POOL.with(|p| p.get()) || !apr_telemetry::is_enabled() {
                for lane in 0..lanes {
                    f(lane);
                }
                return;
            }
            // Sequential top-level region with telemetry on: time the
            // single lane so the phase table's worker attribution covers
            // APR_THREADS=1 runs too (imbalance is exactly 1.0). IN_POOL
            // is set so a nested region is not double-attributed.
            let t0 = Instant::now();
            IN_POOL.with(|p| p.set(true));
            let result = catch_unwind(AssertUnwindSafe(|| f(0)));
            IN_POOL.with(|p| p.set(false));
            let busy = t0.elapsed().as_nanos() as u64;
            apr_telemetry::global().record_parallel_region(busy, &[busy]);
            if let Err(payload) = result {
                resume_unwind(payload);
            }
            return;
        }
        // Poison is harmless here: the guard only serializes regions, and a
        // previous lane panic leaves no broken invariant behind.
        let _region = self
            .submit
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let start = Instant::now();
        // Erase the closure's lifetime for the workers; `run` does not
        // return until every lane is done, keeping the borrow alive.
        let erased: *const (dyn Fn(usize) + Sync) =
            unsafe { std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static _>(f) };
        {
            let mut st = self.shared.state.lock().unwrap();
            st.epoch += 1;
            st.job = Some(Job { f: erased, lanes });
            st.pending = lanes - 1;
            st.busy_ns = 0;
            self.shared.work.notify_all();
        }
        // Lane 0 on the submitting thread.
        let t0 = Instant::now();
        IN_POOL.with(|p| p.set(true));
        let lane0 = catch_unwind(AssertUnwindSafe(|| f(0)));
        IN_POOL.with(|p| p.set(false));
        let lane0_busy = t0.elapsed().as_nanos() as u64;
        // Wait for the workers even if lane 0 panicked.
        let (busy, panics) = {
            let mut st = self.shared.state.lock().unwrap();
            while st.pending > 0 {
                st = self.shared.done.wait(st).unwrap();
            }
            st.job = None;
            (st.busy_ns, std::mem::take(&mut st.panics))
        };
        let wall_ns = start.elapsed().as_nanos() as u64;
        *self.last_run.lock().unwrap() = RunStats {
            wall_ns,
            busy_ns: busy + lane0_busy,
            lanes,
        };
        if panics.is_empty() && lane0.is_ok() && apr_telemetry::is_enabled() {
            self.shared.lane_busy[0].store(lane0_busy, Ordering::Relaxed);
            let lane_ns: Vec<u64> = self.shared.lane_busy[..lanes]
                .iter()
                .map(|slot| slot.load(Ordering::Relaxed))
                .collect();
            apr_telemetry::global().record_parallel_region(wall_ns, &lane_ns);
        }
        if let Err(payload) = lane0 {
            resume_unwind(payload);
        }
        if let Some(payload) = panics.into_iter().next() {
            resume_unwind(payload);
        }
    }

    /// Deterministic static chunking over `0..len`: `f(chunk_index, range)`
    /// for every chunk of `chunk_len` items (last chunk may be short).
    /// Chunk layout depends only on `len` and `chunk_len`; lanes process
    /// contiguous runs of chunks.
    pub fn par_for_ranges(
        &self,
        len: usize,
        chunk_len: usize,
        f: impl Fn(usize, Range<usize>) + Sync,
    ) {
        if len == 0 {
            return;
        }
        let chunk_len = chunk_len.max(1);
        let chunks = len.div_ceil(chunk_len);
        self.run(&|lane| {
            for chunk in lane_chunks(chunks, self.threads, lane) {
                let start = chunk * chunk_len;
                let end = (start + chunk_len).min(len);
                f(chunk, start..end);
            }
        });
    }

    /// Deterministic fused-region dispatch: each lane receives its **entire
    /// contiguous run** of `0..len` in a single `f(lane, range)` call, with
    /// run boundaries aligned to `chunk_len` (the same static layout as
    /// [`Self::par_for_ranges`], so the assignment depends only on `len`,
    /// `chunk_len` and the lane count). One call per lane means a kernel can
    /// carry per-node state across the whole run (e.g. swap-streaming's
    /// "has my partner been processed yet?" test against `range.start`)
    /// instead of paying a dispatch per chunk. Lanes with no chunks are not
    /// called.
    pub fn par_for_lane_runs(
        &self,
        len: usize,
        chunk_len: usize,
        f: impl Fn(usize, Range<usize>) + Sync,
    ) {
        if len == 0 {
            return;
        }
        let chunk_len = chunk_len.max(1);
        let chunks = len.div_ceil(chunk_len);
        self.run(&|lane| {
            let cr = lane_chunks(chunks, self.threads, lane);
            if cr.is_empty() {
                return;
            }
            let start = cr.start * chunk_len;
            let end = (cr.end * chunk_len).min(len);
            f(lane, start..end);
        });
    }

    /// Deterministic parallel iteration over disjoint mutable chunks of a
    /// slice: `f(chunk_index, chunk)` for every `chunk_len`-sized chunk.
    pub fn par_for_chunks_mut<T: Send>(
        &self,
        data: &mut [T],
        chunk_len: usize,
        f: impl Fn(usize, &mut [T]) + Sync,
    ) {
        let chunk_len = chunk_len.max(1);
        let slice = UnsafeSlice::new(data);
        self.par_for_ranges(slice.len(), chunk_len, |chunk, range| {
            // SAFETY: chunk ranges are pairwise disjoint by construction.
            let part = unsafe { slice.slice_mut(range.start, range.len()) };
            f(chunk, part);
        });
    }

    /// Deterministic map–reduce: maps every fixed-size chunk of `0..len` to
    /// an `R`, then reduces the per-chunk values on the calling thread in a
    /// **fixed-shape ordered pairwise tree** over chunk index — adjacent
    /// pairs first, repeatedly, so the reduction shape (and therefore the
    /// floating-point rounding) depends only on the chunk count. Returns
    /// `None` for `len == 0`.
    pub fn par_map_reduce<R: Send>(
        &self,
        len: usize,
        chunk_len: usize,
        map: impl Fn(usize, Range<usize>) -> R + Sync,
        mut reduce: impl FnMut(R, R) -> R,
    ) -> Option<R> {
        if len == 0 {
            return None;
        }
        let chunk_len = chunk_len.max(1);
        let chunks = len.div_ceil(chunk_len);
        let mut partials: Vec<Option<R>> = Vec::with_capacity(chunks);
        partials.resize_with(chunks, || None);
        let slots = UnsafeSlice::new(&mut partials);
        self.run(&|lane| {
            for chunk in lane_chunks(chunks, self.threads, lane) {
                let start = chunk * chunk_len;
                let end = (start + chunk_len).min(len);
                // SAFETY: each chunk index is visited by exactly one lane.
                let slot = unsafe { &mut slots.slice_mut(chunk, 1)[0] };
                *slot = Some(map(chunk, start..end));
            }
        });
        // Ordered pairwise tree: (0,1)(2,3)… then (01,23)… — shape is a
        // function of the chunk count alone.
        let mut level: Vec<R> = partials
            .into_iter()
            .map(|p| p.expect("chunk ran"))
            .collect();
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(2));
            let mut it = level.into_iter();
            while let Some(a) = it.next() {
                match it.next() {
                    Some(b) => next.push(reduce(a, b)),
                    None => next.push(a),
                }
            }
            level = next;
        }
        level.into_iter().next()
    }
}

impl Drop for ExecPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
            self.shared.work.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Contiguous run of chunk indices assigned to `lane` out of `lanes`.
/// Depends only on `(chunks, lanes, lane)` — and the *results* computed
/// from it never depend on `lanes` because chunks are independent.
fn lane_chunks(chunks: usize, lanes: usize, lane: usize) -> Range<usize> {
    let per = chunks.div_ceil(lanes);
    let start = (lane * per).min(chunks);
    let end = ((lane + 1) * per).min(chunks);
    start..end
}

fn worker_loop(lane: usize, shared: &Shared) {
    IN_POOL.with(|p| p.set(true));
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if st.shutdown {
                    return;
                }
                if let Some(job) = st.job {
                    if st.epoch != seen_epoch {
                        seen_epoch = st.epoch;
                        break job;
                    }
                }
                st = shared.work.wait(st).unwrap();
            }
        };
        let mut busy = 0u64;
        let result = if lane < job.lanes {
            let t0 = Instant::now();
            // SAFETY: see `Job` — the submitter keeps the closure alive
            // until `pending` reaches zero below.
            let r = catch_unwind(AssertUnwindSafe(|| unsafe { (*job.f)(lane) }));
            busy = t0.elapsed().as_nanos() as u64;
            r
        } else {
            Ok(())
        };
        shared.lane_busy[lane].store(busy, Ordering::Relaxed);
        let mut st = shared.state.lock().unwrap();
        st.busy_ns += busy;
        if let Err(payload) = result {
            st.panics.push(payload);
        }
        st.pending -= 1;
        if st.pending == 0 {
            shared.done.notify_all();
        }
    }
}

/// A shared view of a mutable slice for disjoint-range parallel writes.
///
/// The pool primitives use this to hand each chunk its own sub-slice; it is
/// public so call sites with multiple zipped arrays (e.g. the lattice
/// collision touching `f`, `rho` and `vel` per node) can do the same.
pub struct UnsafeSlice<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: std::marker::PhantomData<&'a mut [T]>,
}

// SAFETY: access is coordinated by the caller handing out disjoint ranges.
unsafe impl<T: Send> Send for UnsafeSlice<'_, T> {}
unsafe impl<T: Send> Sync for UnsafeSlice<'_, T> {}

impl<'a, T> UnsafeSlice<'a, T> {
    /// Wrap a mutable slice.
    pub fn new(slice: &'a mut [T]) -> Self {
        Self {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            _marker: std::marker::PhantomData,
        }
    }

    /// Length of the underlying slice.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the underlying slice is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Mutable sub-slice `[start, start + len)`.
    ///
    /// # Safety
    /// The caller must guarantee that concurrently outstanding sub-slices
    /// are pairwise disjoint and within bounds.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn slice_mut(&self, start: usize, len: usize) -> &mut [T] {
        debug_assert!(start + len <= self.len);
        std::slice::from_raw_parts_mut(self.ptr.add(start), len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn run_covers_every_lane_once() {
        for threads in [1, 2, 4, 7] {
            let pool = ExecPool::new(threads);
            let hits: Vec<AtomicUsize> = (0..threads).map(|_| AtomicUsize::new(0)).collect();
            pool.run(&|lane| {
                hits[lane].fetch_add(1, Ordering::SeqCst);
            });
            for (lane, h) in hits.iter().enumerate() {
                assert_eq!(h.load(Ordering::SeqCst), 1, "lane {lane}");
            }
        }
    }

    #[test]
    fn par_for_chunks_mut_writes_every_chunk() {
        for threads in [1, 3, 8] {
            let pool = ExecPool::new(threads);
            let mut data = vec![0usize; 103];
            pool.par_for_chunks_mut(&mut data, 10, |chunk, part| {
                for v in part.iter_mut() {
                    *v = chunk + 1;
                }
            });
            for (i, v) in data.iter().enumerate() {
                assert_eq!(*v, i / 10 + 1, "index {i}");
            }
        }
    }

    #[test]
    fn lane_runs_partition_the_index_space() {
        // Every index covered exactly once, runs are chunk-aligned and
        // contiguous per lane, and each lane is called at most once.
        for threads in [1, 2, 3, 8, 13] {
            let pool = ExecPool::new(threads);
            let mut cover = vec![0usize; 103];
            let slots = UnsafeSlice::new(&mut cover);
            let calls: Vec<AtomicUsize> = (0..threads).map(|_| AtomicUsize::new(0)).collect();
            pool.par_for_lane_runs(103, 10, |lane, range| {
                calls[lane].fetch_add(1, Ordering::SeqCst);
                assert_eq!(range.start % 10, 0, "run start is chunk-aligned");
                for i in range {
                    // SAFETY: asserting disjointness is the point; overlap
                    // would show up as a double-count below.
                    unsafe { slots.slice_mut(i, 1)[0] += 1 };
                }
            });
            assert!(cover.iter().all(|&c| c == 1), "{threads} threads");
            for c in &calls {
                assert!(c.load(Ordering::SeqCst) <= 1);
            }
        }
        let pool = ExecPool::new(2);
        pool.par_for_lane_runs(0, 4, |_, _| panic!("must not run for len 0"));
    }

    #[test]
    fn map_reduce_is_thread_count_invariant() {
        // A floating-point sum whose value depends on association order:
        // identical partials + a fixed tree ⇒ identical bits on any pool.
        let data: Vec<f64> = (0..1000).map(|i| 1.0 / (i as f64 + 1.0)).collect();
        let sum_with = |threads: usize| {
            let pool = ExecPool::new(threads);
            pool.par_map_reduce(
                data.len(),
                64,
                |_, range| data[range].iter().sum::<f64>(),
                |a, b| a + b,
            )
            .unwrap()
        };
        let s1 = sum_with(1);
        for threads in [2, 4, 8] {
            assert_eq!(
                s1.to_bits(),
                sum_with(threads).to_bits(),
                "{threads} threads"
            );
        }
    }

    #[test]
    fn map_reduce_empty_is_none() {
        let pool = ExecPool::new(2);
        assert!(pool
            .par_map_reduce(0, 8, |_, _| 1.0f64, |a, b| a + b)
            .is_none());
    }

    #[test]
    fn nested_runs_execute_inline() {
        let pool = ExecPool::new(4);
        let outer = AtomicUsize::new(0);
        pool.run(&|_| {
            // A nested region must not deadlock on the submission lock.
            pool.run(&|_| {
                outer.fetch_add(1, Ordering::SeqCst);
            });
        });
        assert_eq!(outer.load(Ordering::SeqCst), 16);
    }

    #[test]
    fn lane_panic_propagates_after_completion() {
        let pool = ExecPool::new(4);
        let survived = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(&|lane| {
                if lane == 1 {
                    panic!("lane 1 fails");
                }
                survived.fetch_add(1, Ordering::SeqCst);
            });
        }));
        assert!(result.is_err());
        assert_eq!(survived.load(Ordering::SeqCst), 3);
        // The pool stays usable after a panic.
        pool.run(&|_| {});
    }

    #[test]
    fn utilization_is_reported() {
        let pool = ExecPool::new(2);
        pool.run(&|_| {
            std::hint::black_box((0..10_000).sum::<u64>());
        });
        let stats = pool.last_run_stats();
        assert_eq!(stats.lanes, 2);
        let u = stats.utilization();
        assert!((0.0..=1.0).contains(&u), "utilization {u}");
    }

    #[test]
    fn stress_repeat_100_race_smoke() {
        // Loom-free race smoke: hammer all primitives from a fresh pool 100
        // times so TSan-style runs and repeat-CI catch protocol races.
        for round in 0..100 {
            let threads = 1 + round % 8;
            let pool = ExecPool::new(threads);
            let mut data = vec![0u64; 257];
            pool.par_for_chunks_mut(&mut data, 16, |chunk, part| {
                for (k, v) in part.iter_mut().enumerate() {
                    *v = (chunk * 16 + k) as u64;
                }
            });
            let direct: u64 = data.iter().sum();
            let reduced = pool
                .par_map_reduce(
                    data.len(),
                    16,
                    |_, range| data[range].iter().sum::<u64>(),
                    |a, b| a + b,
                )
                .unwrap();
            assert_eq!(direct, reduced, "round {round}");
        }
    }
}
