//! The persistent scoped worker pool and its deterministic parallel
//! primitives.
//!
//! Every primitive partitions work into **chunks whose layout depends only
//! on the problem size and the chunk length** — never on the worker count.
//! Chunk outputs are either disjoint writes (no reduction at all) or are
//! reduced on the submitting thread in a fixed-shape pairwise tree over
//! chunk order. Both make results bit-identical for any thread count,
//! including one; see the crate docs for the full argument.

use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Per-thread CPU time in nanoseconds (`CLOCK_THREAD_CPUTIME_ID`), via a
/// raw `clock_gettime` syscall so the crate stays free of a libc
/// dependency. `None` where the syscall is unavailable; callers fall back
/// to wall-clock time.
///
/// This is what makes worker *busy* attribution honest on oversubscribed
/// hosts: wall time inside a lane includes involuntary preemption (other
/// lanes sharing the core), CPU time does not — so
/// `wait = wall − cpu_busy` cleanly separates "worked" from "waited".
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
pub fn thread_cpu_ns() -> Option<u64> {
    const SYS_CLOCK_GETTIME: i64 = 228;
    const CLOCK_THREAD_CPUTIME_ID: i64 = 3;
    let mut ts = [0i64; 2];
    let ret: i64;
    unsafe {
        std::arch::asm!(
            "syscall",
            inlateout("rax") SYS_CLOCK_GETTIME => ret,
            in("rdi") CLOCK_THREAD_CPUTIME_ID,
            in("rsi") ts.as_mut_ptr(),
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
    }
    (ret == 0).then(|| ts[0] as u64 * 1_000_000_000 + ts[1] as u64)
}

/// See the x86_64 variant; aarch64 `clock_gettime` is syscall 113.
#[cfg(all(target_os = "linux", target_arch = "aarch64"))]
pub fn thread_cpu_ns() -> Option<u64> {
    const SYS_CLOCK_GETTIME: i64 = 113;
    const CLOCK_THREAD_CPUTIME_ID: i64 = 3;
    let mut ts = [0i64; 2];
    let ret: i64;
    unsafe {
        std::arch::asm!(
            "svc #0",
            inlateout("x0") CLOCK_THREAD_CPUTIME_ID => ret,
            in("x1") ts.as_mut_ptr(),
            in("x8") SYS_CLOCK_GETTIME,
            options(nostack),
        );
    }
    (ret == 0).then(|| ts[0] as u64 * 1_000_000_000 + ts[1] as u64)
}

/// Fallback for platforms without the raw-syscall path.
#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
pub fn thread_cpu_ns() -> Option<u64> {
    None
}

/// Lane busy-time stopwatch: CPU time when the platform provides it,
/// wall time otherwise.
struct BusyTimer {
    wall: Instant,
    cpu: Option<u64>,
}

impl BusyTimer {
    fn start() -> Self {
        Self {
            wall: Instant::now(),
            cpu: thread_cpu_ns(),
        }
    }

    fn elapsed_ns(&self) -> u64 {
        match (self.cpu, thread_cpu_ns()) {
            (Some(a), Some(b)) => b.saturating_sub(a),
            _ => self.wall.elapsed().as_nanos() as u64,
        }
    }
}

/// Test-only per-lane startup delay, enabled by the determinism suite to
/// randomize guided-claim interleavings. Off (and a single relaxed atomic
/// load) in normal operation.
static JITTER_ON: AtomicBool = AtomicBool::new(false);
static JITTER_NS: Mutex<Vec<u64>> = Mutex::new(Vec::new());

/// Install (`Some`) or clear (`None`) a per-lane region-start delay table
/// in nanoseconds; lane `l` sleeps `table[l % table.len()]` at the top of
/// every parallel region. Exists so determinism tests can randomize worker
/// start order — results must not change. Not a stable API.
#[doc(hidden)]
pub fn set_test_start_jitter(jitter: Option<Vec<u64>>) {
    match jitter {
        Some(table) => {
            *JITTER_NS.lock().unwrap() = table;
            JITTER_ON.store(true, Ordering::Release);
        }
        None => {
            JITTER_ON.store(false, Ordering::Release);
            JITTER_NS.lock().unwrap().clear();
        }
    }
}

#[inline]
fn apply_start_jitter(lane: usize) {
    if JITTER_ON.load(Ordering::Acquire) {
        let ns = {
            let table = JITTER_NS.lock().unwrap();
            if table.is_empty() {
                0
            } else {
                table[lane % table.len()]
            }
        };
        if ns > 0 {
            std::thread::sleep(std::time::Duration::from_nanos(ns));
        }
    }
}

/// One parallel region: a lane-indexed closure erased to a raw pointer so
/// the persistent workers can run borrowed closures. The pointee is only
/// valid while the submitting [`ExecPool::run`] call is blocked, which the
/// epoch/pending protocol guarantees.
#[derive(Clone, Copy)]
struct Job {
    f: *const (dyn Fn(usize) + Sync),
    lanes: usize,
}

// SAFETY: the pointer is dereferenced only between job publication and the
// final `pending` decrement, during which the submitter keeps the closure
// alive (it is blocked in `run`). The pointee is `Sync`, so shared calls
// from many workers are sound.
unsafe impl Send for Job {}

struct PoolState {
    epoch: u64,
    job: Option<Job>,
    /// Workers that have not yet finished the current epoch.
    pending: usize,
    /// Panic payloads captured from worker lanes this epoch.
    panics: Vec<Box<dyn std::any::Any + Send>>,
    /// Busy nanoseconds accumulated by worker lanes this epoch.
    busy_ns: u64,
    shutdown: bool,
}

struct Shared {
    state: Mutex<PoolState>,
    /// Workers wait here for a new epoch.
    work: Condvar,
    /// The submitter waits here for `pending == 0`.
    done: Condvar,
    /// Lock-free per-lane busy-time slots (`lane_busy[lane]`, ns) for the
    /// most recent region. Each lane writes only its own slot; the
    /// submitter reads them after the barrier, so plain relaxed ordering
    /// suffices (the `pending`-protocol mutex orders the accesses).
    lane_busy: Vec<AtomicU64>,
}

/// Wall/busy accounting for the most recent parallel region.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunStats {
    /// Wall-clock nanoseconds of the region (submit to last lane done).
    pub wall_ns: u64,
    /// Summed per-lane busy nanoseconds.
    pub busy_ns: u64,
    /// Lanes the region ran with.
    pub lanes: usize,
}

impl RunStats {
    /// Fraction of the region's lane-seconds actually spent executing —
    /// `busy / (wall × lanes)`, in `[0, 1]`. 1.0 when nothing has run.
    pub fn utilization(&self) -> f64 {
        if self.wall_ns == 0 || self.lanes == 0 {
            return 1.0;
        }
        (self.busy_ns as f64 / (self.wall_ns as f64 * self.lanes as f64)).min(1.0)
    }
}

thread_local! {
    /// True inside a pool lane (worker thread, or the caller while it runs
    /// lane 0). Nested `run` calls execute inline instead of deadlocking on
    /// the submission lock.
    static IN_POOL: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// A persistent scoped worker pool over `std::thread`.
///
/// `threads` is the total lane count: the submitting thread always executes
/// lane 0, and `threads − 1` background workers execute the rest, so a
/// 1-thread pool spawns nothing and runs everything inline (the sequential
/// fast path has zero synchronization). Threads are parked between regions
/// and shut down when the pool is dropped.
pub struct ExecPool {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
    /// Serializes parallel regions from concurrent submitters (e.g. two
    /// test threads sharing the global pool).
    submit: Mutex<()>,
    last_run: Mutex<RunStats>,
    threads: usize,
}

impl std::fmt::Debug for ExecPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecPool")
            .field("threads", &self.threads)
            .finish()
    }
}

impl ExecPool {
    /// Pool with `threads` lanes (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState {
                epoch: 0,
                job: None,
                pending: 0,
                panics: Vec::new(),
                busy_ns: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
            lane_busy: (0..threads).map(|_| AtomicU64::new(0)).collect(),
        });
        let workers = (1..threads)
            .map(|lane| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("apr-exec-{lane}"))
                    .spawn(move || worker_loop(lane, &shared))
                    .expect("spawn exec worker")
            })
            .collect();
        Self {
            shared,
            workers,
            submit: Mutex::new(()),
            last_run: Mutex::new(RunStats::default()),
            threads,
        }
    }

    /// Single-lane pool: everything runs inline on the caller.
    pub fn sequential() -> Self {
        Self::new(1)
    }

    /// Total lane count (worker threads + the submitting thread).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Wall/busy accounting for the most recent parallel region.
    pub fn last_run_stats(&self) -> RunStats {
        *self.last_run.lock().unwrap()
    }

    /// Execute `f(lane)` once per lane `0..threads()`, returning when every
    /// lane has finished. The closure may borrow from the caller's stack.
    ///
    /// Nested calls (from inside a lane) run all lanes inline on the
    /// current thread — parallelism does not compose, determinism does.
    ///
    /// # Panics
    /// Re-raises the first lane panic after all lanes have stopped, so
    /// borrowed data is never freed while a worker may still touch it.
    pub fn run(&self, f: &(dyn Fn(usize) + Sync)) {
        let jittered = |lane: usize| {
            apply_start_jitter(lane);
            f(lane)
        };
        self.run_inner(&jittered);
    }

    fn run_inner(&self, f: &(dyn Fn(usize) + Sync)) {
        let lanes = self.threads;
        if lanes == 1 || IN_POOL.with(|p| p.get()) {
            if IN_POOL.with(|p| p.get()) || !apr_telemetry::is_enabled() {
                for lane in 0..lanes {
                    f(lane);
                }
                return;
            }
            // Sequential top-level region with telemetry on: time the
            // single lane so the phase table's worker attribution covers
            // APR_THREADS=1 runs too (imbalance is exactly 1.0). IN_POOL
            // is set so a nested region is not double-attributed.
            let t0 = Instant::now();
            let busy_timer = BusyTimer::start();
            IN_POOL.with(|p| p.set(true));
            let result = catch_unwind(AssertUnwindSafe(|| f(0)));
            IN_POOL.with(|p| p.set(false));
            let busy = busy_timer.elapsed_ns();
            let wall = t0.elapsed().as_nanos() as u64;
            apr_telemetry::global().record_parallel_region(wall, &[busy]);
            if let Err(payload) = result {
                resume_unwind(payload);
            }
            return;
        }
        // Poison is harmless here: the guard only serializes regions, and a
        // previous lane panic leaves no broken invariant behind.
        let _region = self
            .submit
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let start = Instant::now();
        // Erase the closure's lifetime for the workers; `run` does not
        // return until every lane is done, keeping the borrow alive.
        let erased: *const (dyn Fn(usize) + Sync) =
            unsafe { std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static _>(f) };
        {
            let mut st = self.shared.state.lock().unwrap();
            st.epoch += 1;
            st.job = Some(Job { f: erased, lanes });
            st.pending = lanes - 1;
            st.busy_ns = 0;
            self.shared.work.notify_all();
        }
        // Lane 0 on the submitting thread.
        let t0 = BusyTimer::start();
        IN_POOL.with(|p| p.set(true));
        let lane0 = catch_unwind(AssertUnwindSafe(|| f(0)));
        IN_POOL.with(|p| p.set(false));
        let lane0_busy = t0.elapsed_ns();
        // Wait for the workers even if lane 0 panicked.
        let (busy, panics) = {
            let mut st = self.shared.state.lock().unwrap();
            while st.pending > 0 {
                st = self.shared.done.wait(st).unwrap();
            }
            st.job = None;
            (st.busy_ns, std::mem::take(&mut st.panics))
        };
        let wall_ns = start.elapsed().as_nanos() as u64;
        *self.last_run.lock().unwrap() = RunStats {
            wall_ns,
            busy_ns: busy + lane0_busy,
            lanes,
        };
        if panics.is_empty() && lane0.is_ok() && apr_telemetry::is_enabled() {
            self.shared.lane_busy[0].store(lane0_busy, Ordering::Relaxed);
            let lane_ns: Vec<u64> = self.shared.lane_busy[..lanes]
                .iter()
                .map(|slot| slot.load(Ordering::Relaxed))
                .collect();
            apr_telemetry::global().record_parallel_region(wall_ns, &lane_ns);
        }
        if let Err(payload) = lane0 {
            resume_unwind(payload);
        }
        if let Some(payload) = panics.into_iter().next() {
            resume_unwind(payload);
        }
    }

    /// Deterministic static chunking over `0..len`: `f(chunk_index, range)`
    /// for every chunk of `chunk_len` items (last chunk may be short).
    /// Chunk layout depends only on `len` and `chunk_len`; lanes process
    /// contiguous runs of chunks.
    pub fn par_for_ranges(
        &self,
        len: usize,
        chunk_len: usize,
        f: impl Fn(usize, Range<usize>) + Sync,
    ) {
        if len == 0 {
            return;
        }
        let chunk_len = chunk_len.max(1);
        let chunks = len.div_ceil(chunk_len);
        self.run(&|lane| {
            for chunk in lane_chunks(chunks, self.threads, lane) {
                let start = chunk * chunk_len;
                let end = (start + chunk_len).min(len);
                f(chunk, start..end);
            }
        });
    }

    /// Deterministic fused-region dispatch: each lane receives its **entire
    /// contiguous run** of `0..len` in a single `f(lane, range)` call, with
    /// run boundaries aligned to `chunk_len` (the same static layout as
    /// [`Self::par_for_ranges`], so the assignment depends only on `len`,
    /// `chunk_len` and the lane count). One call per lane means a kernel can
    /// carry per-node state across the whole run (e.g. swap-streaming's
    /// "has my partner been processed yet?" test against `range.start`)
    /// instead of paying a dispatch per chunk. Lanes with no chunks are not
    /// called.
    pub fn par_for_lane_runs(
        &self,
        len: usize,
        chunk_len: usize,
        f: impl Fn(usize, Range<usize>) + Sync,
    ) {
        if len == 0 {
            return;
        }
        let chunk_len = chunk_len.max(1);
        let chunks = len.div_ceil(chunk_len);
        self.run(&|lane| {
            let cr = lane_chunks(chunks, self.threads, lane);
            if cr.is_empty() {
                return;
            }
            let start = cr.start * chunk_len;
            let end = (cr.end * chunk_len).min(len);
            f(lane, start..end);
        });
    }

    /// Deterministic parallel iteration over disjoint mutable chunks of a
    /// slice: `f(chunk_index, chunk)` for every `chunk_len`-sized chunk.
    pub fn par_for_chunks_mut<T: Send>(
        &self,
        data: &mut [T],
        chunk_len: usize,
        f: impl Fn(usize, &mut [T]) + Sync,
    ) {
        let chunk_len = chunk_len.max(1);
        let slice = UnsafeSlice::new(data);
        self.par_for_ranges(slice.len(), chunk_len, |chunk, range| {
            // SAFETY: chunk ranges are pairwise disjoint by construction.
            let part = unsafe { slice.slice_mut(range.start, range.len()) };
            f(chunk, part);
        });
    }

    /// Deterministic map–reduce: maps every fixed-size chunk of `0..len` to
    /// an `R`, then reduces the per-chunk values on the calling thread in a
    /// **fixed-shape ordered pairwise tree** over chunk index — adjacent
    /// pairs first, repeatedly, so the reduction shape (and therefore the
    /// floating-point rounding) depends only on the chunk count. Returns
    /// `None` for `len == 0`.
    pub fn par_map_reduce<R: Send>(
        &self,
        len: usize,
        chunk_len: usize,
        map: impl Fn(usize, Range<usize>) -> R + Sync,
        mut reduce: impl FnMut(R, R) -> R,
    ) -> Option<R> {
        if len == 0 {
            return None;
        }
        let chunk_len = chunk_len.max(1);
        let chunks = len.div_ceil(chunk_len);
        let mut partials: Vec<Option<R>> = Vec::with_capacity(chunks);
        partials.resize_with(chunks, || None);
        let slots = UnsafeSlice::new(&mut partials);
        self.run(&|lane| {
            for chunk in lane_chunks(chunks, self.threads, lane) {
                let start = chunk * chunk_len;
                let end = (start + chunk_len).min(len);
                // SAFETY: each chunk index is visited by exactly one lane.
                let slot = unsafe { &mut slots.slice_mut(chunk, 1)[0] };
                *slot = Some(map(chunk, start..end));
            }
        });
        // Ordered pairwise tree: (0,1)(2,3)… then (01,23)… — shape is a
        // function of the chunk count alone.
        let mut level: Vec<R> = partials
            .into_iter()
            .map(|p| p.expect("chunk ran"))
            .collect();
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(2));
            let mut it = level.into_iter();
            while let Some(a) = it.next() {
                match it.next() {
                    Some(b) => next.push(reduce(a, b)),
                    None => next.push(a),
                }
            }
            level = next;
        }
        level.into_iter().next()
    }

    /// Deterministic parallel sum of four accumulators at once (the shape
    /// conservation accounting needs: mass plus three momentum
    /// components). `map` produces a `[f64; 4]` partial per chunk; the
    /// partials are combined componentwise through the same fixed-shape
    /// ordered pairwise tree as [`Self::par_map_reduce`], so totals are
    /// bit-identical across thread counts. Returns zeros for `len == 0`.
    pub fn par_sum4(
        &self,
        len: usize,
        chunk_len: usize,
        map: impl Fn(usize, Range<usize>) -> [f64; 4] + Sync,
    ) -> [f64; 4] {
        self.par_map_reduce(len, chunk_len, map, |a, b| {
            [a[0] + b[0], a[1] + b[1], a[2] + b[2], a[3] + b[3]]
        })
        .unwrap_or([0.0; 4])
    }

    /// Deterministic **guided** chunking over a [`ChunkPlan`]: chunks are
    /// claimed in fixed ascending order from a shared atomic cursor by
    /// whichever lane frees up next, so a lane that drew cheap chunks keeps
    /// pulling work instead of idling at the barrier. `f(chunk, range)` runs
    /// exactly once per chunk.
    ///
    /// The chunk *layout* comes from the plan alone and the per-chunk
    /// computation must not depend on which lane runs it (the same contract
    /// as [`Self::par_for_ranges`]) — under that contract the claim
    /// interleaving is unobservable and results stay bit-identical for any
    /// thread count and any scheduling accident.
    pub fn par_for_guided(&self, plan: &ChunkPlan, f: impl Fn(usize, Range<usize>) + Sync) {
        if plan.is_empty() {
            return;
        }
        let sched = GuidedScheduler::guided(plan);
        self.run(&|lane| {
            while let Some((chunk, range)) = sched.claim(lane) {
                f(chunk, range);
            }
        });
    }
}

/// A precomputed chunk layout over `0..len`: contiguous, non-overlapping,
/// covering ranges whose boundaries depend only on the inputs used to build
/// the plan — never on the thread count that later executes it (the
/// *assignment* of chunks to lanes may vary; the layout does not).
///
/// Built either with fixed-size chunks ([`ChunkPlan::fixed`]) or by
/// grouping variable-cost units so every chunk carries roughly equal cost
/// ([`ChunkPlan::from_costs`] — e.g. z-planes weighted by fluid-node count,
/// so a plane of walls does not occupy a lane as long as a plane of fluid).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkPlan {
    /// Chunk `c` covers `bounds[c]..bounds[c + 1]`; strictly increasing
    /// except for the degenerate empty plan `[0, 0]`.
    bounds: Vec<usize>,
}

impl ChunkPlan {
    /// Fixed-size chunks of `chunk_len` over `0..len` (last may be short) —
    /// the same layout as [`ExecPool::par_for_ranges`].
    pub fn fixed(len: usize, chunk_len: usize) -> Self {
        let chunk_len = chunk_len.max(1);
        let chunks = len.div_ceil(chunk_len).max(1);
        let mut bounds = Vec::with_capacity(chunks + 1);
        for c in 0..=chunks {
            bounds.push((c * chunk_len).min(len));
        }
        Self { bounds }
    }

    /// Cost-balanced chunks over `0..unit_len * costs.len()`, where unit
    /// `u` (indices `u*unit_len..(u+1)*unit_len`) carries `costs[u]`.
    /// Contiguous units are grouped until a chunk reaches ~`total/target`
    /// cost, so every chunk represents a comparable amount of work while
    /// staying unit-aligned. Every chunk contains at least one unit.
    pub fn from_costs(unit_len: usize, costs: &[u64], target_chunks: usize) -> Self {
        let unit_len = unit_len.max(1);
        if costs.is_empty() {
            return Self { bounds: vec![0, 0] };
        }
        let len = unit_len * costs.len();
        let total: u64 = costs.iter().sum();
        let target = target_chunks.clamp(1, costs.len());
        let per = (total.div_ceil(target as u64)).max(1);
        let mut bounds = vec![0];
        let mut acc = 0u64;
        for (u, &c) in costs.iter().enumerate() {
            acc += c;
            if acc >= per && u + 1 < costs.len() {
                bounds.push((u + 1) * unit_len);
                acc = 0;
            }
        }
        bounds.push(len);
        Self { bounds }
    }

    /// Total index-space length the plan covers.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        *self.bounds.last().expect("plan has bounds")
    }

    /// Whether the plan covers an empty index space.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of chunks.
    pub fn chunks(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Index range of chunk `c`.
    pub fn range(&self, c: usize) -> Range<usize> {
        self.bounds[c]..self.bounds[c + 1]
    }

    /// The chunk containing `index`.
    pub fn chunk_of(&self, index: usize) -> usize {
        debug_assert!(index < self.len());
        self.bounds.partition_point(|&b| b <= index) - 1
    }
}

/// Claim-based chunk scheduler for a single parallel region: lanes [claim]
/// chunks (from a shared cursor in guided mode, or from a fixed per-lane
/// pre-partition in static mode), [mark them done][Self::mark_done] as
/// completion milestones, and may then [claim drain work][Self::claim_drain]
/// over completed chunks — the mechanism the fused kernels use to overlap
/// their deferred cross-chunk swap drain with the tail of the sweep.
///
/// [claim]: Self::claim
pub struct GuidedScheduler<'a> {
    plan: &'a ChunkPlan,
    mode: SchedMode,
    /// `done[c]` is set (Release) after chunk `c`'s sweep completes;
    /// readers Acquire-load it before touching anything the sweep wrote.
    done: Vec<AtomicBool>,
    drain: AtomicUsize,
}

enum SchedMode {
    /// Shared cursor: chunks go to whichever lane asks next.
    Guided { cursor: AtomicUsize },
    /// PR-3-style static pre-partition: lane `l` owns
    /// `lane_chunks(chunks, lanes, l)`.
    Static { pos: Vec<AtomicUsize>, lanes: usize },
}

impl<'a> GuidedScheduler<'a> {
    /// Scheduler with a shared claim cursor (dynamic load balancing).
    pub fn guided(plan: &'a ChunkPlan) -> Self {
        Self {
            plan,
            mode: SchedMode::Guided {
                cursor: AtomicUsize::new(0),
            },
            done: (0..plan.chunks()).map(|_| AtomicBool::new(false)).collect(),
            drain: AtomicUsize::new(0),
        }
    }

    /// Scheduler with the static contiguous per-lane pre-partition.
    pub fn preassigned(plan: &'a ChunkPlan, lanes: usize) -> Self {
        let lanes = lanes.max(1);
        let chunks = plan.chunks();
        Self {
            plan,
            mode: SchedMode::Static {
                pos: (0..lanes)
                    .map(|l| AtomicUsize::new(lane_chunks(chunks, lanes, l).start))
                    .collect(),
                lanes,
            },
            done: (0..chunks).map(|_| AtomicBool::new(false)).collect(),
            drain: AtomicUsize::new(0),
        }
    }

    /// Number of chunks in the region's plan.
    pub fn chunks(&self) -> usize {
        self.plan.chunks()
    }

    /// The chunk containing `index`.
    pub fn chunk_of(&self, index: usize) -> usize {
        self.plan.chunk_of(index)
    }

    /// Claim the next chunk for `lane`; `None` when the lane's work (its
    /// pre-partition, or the shared cursor) is exhausted.
    pub fn claim(&self, lane: usize) -> Option<(usize, Range<usize>)> {
        let c = match &self.mode {
            SchedMode::Guided { cursor } => {
                let c = cursor.fetch_add(1, Ordering::Relaxed);
                (c < self.plan.chunks()).then_some(c)?
            }
            SchedMode::Static { pos, lanes } => {
                let own = lane_chunks(self.plan.chunks(), *lanes, lane % *lanes);
                let c = pos[lane % *lanes].fetch_add(1, Ordering::Relaxed);
                (c < own.end).then_some(c)?
            }
        };
        Some((c, self.plan.range(c)))
    }

    /// Publish chunk `c` as complete (Release: everything the sweep wrote
    /// is visible to whoever observes [`Self::is_done`]).
    pub fn mark_done(&self, c: usize) {
        self.done[c].store(true, Ordering::Release);
    }

    /// Whether chunk `c` has been published complete (Acquire).
    pub fn is_done(&self, c: usize) -> bool {
        self.done[c].load(Ordering::Acquire)
    }

    /// Claim the next chunk index from the drain cursor — shared across
    /// lanes, ascending, each chunk handed out exactly once. Callers must
    /// check [`Self::is_done`] before reading chunk state: a claimed chunk
    /// may still be in flight on another lane, in which case its drain work
    /// is left for the post-barrier pass.
    pub fn claim_drain(&self) -> Option<usize> {
        let c = self.drain.fetch_add(1, Ordering::Relaxed);
        (c < self.plan.chunks()).then_some(c)
    }
}

impl Drop for ExecPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
            self.shared.work.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Contiguous run of chunk indices assigned to `lane` out of `lanes`.
/// Depends only on `(chunks, lanes, lane)` — and the *results* computed
/// from it never depend on `lanes` because chunks are independent.
fn lane_chunks(chunks: usize, lanes: usize, lane: usize) -> Range<usize> {
    let per = chunks.div_ceil(lanes);
    let start = (lane * per).min(chunks);
    let end = ((lane + 1) * per).min(chunks);
    start..end
}

fn worker_loop(lane: usize, shared: &Shared) {
    IN_POOL.with(|p| p.set(true));
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if st.shutdown {
                    return;
                }
                if let Some(job) = st.job {
                    if st.epoch != seen_epoch {
                        seen_epoch = st.epoch;
                        break job;
                    }
                }
                st = shared.work.wait(st).unwrap();
            }
        };
        let mut busy = 0u64;
        let result = if lane < job.lanes {
            let t0 = BusyTimer::start();
            // SAFETY: see `Job` — the submitter keeps the closure alive
            // until `pending` reaches zero below.
            let r = catch_unwind(AssertUnwindSafe(|| unsafe { (*job.f)(lane) }));
            busy = t0.elapsed_ns();
            r
        } else {
            Ok(())
        };
        shared.lane_busy[lane].store(busy, Ordering::Relaxed);
        let mut st = shared.state.lock().unwrap();
        st.busy_ns += busy;
        if let Err(payload) = result {
            st.panics.push(payload);
        }
        st.pending -= 1;
        if st.pending == 0 {
            shared.done.notify_all();
        }
    }
}

/// A shared view of a mutable slice for disjoint-range parallel writes.
///
/// The pool primitives use this to hand each chunk its own sub-slice; it is
/// public so call sites with multiple zipped arrays (e.g. the lattice
/// collision touching `f`, `rho` and `vel` per node) can do the same.
pub struct UnsafeSlice<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: std::marker::PhantomData<&'a mut [T]>,
}

// SAFETY: access is coordinated by the caller handing out disjoint ranges.
unsafe impl<T: Send> Send for UnsafeSlice<'_, T> {}
unsafe impl<T: Send> Sync for UnsafeSlice<'_, T> {}

impl<'a, T> UnsafeSlice<'a, T> {
    /// Wrap a mutable slice.
    pub fn new(slice: &'a mut [T]) -> Self {
        Self {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            _marker: std::marker::PhantomData,
        }
    }

    /// Length of the underlying slice.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the underlying slice is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Mutable sub-slice `[start, start + len)`.
    ///
    /// # Safety
    /// The caller must guarantee that concurrently outstanding sub-slices
    /// are pairwise disjoint and within bounds.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn slice_mut(&self, start: usize, len: usize) -> &mut [T] {
        debug_assert!(start + len <= self.len);
        std::slice::from_raw_parts_mut(self.ptr.add(start), len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn run_covers_every_lane_once() {
        for threads in [1, 2, 4, 7] {
            let pool = ExecPool::new(threads);
            let hits: Vec<AtomicUsize> = (0..threads).map(|_| AtomicUsize::new(0)).collect();
            pool.run(&|lane| {
                hits[lane].fetch_add(1, Ordering::SeqCst);
            });
            for (lane, h) in hits.iter().enumerate() {
                assert_eq!(h.load(Ordering::SeqCst), 1, "lane {lane}");
            }
        }
    }

    #[test]
    fn par_for_chunks_mut_writes_every_chunk() {
        for threads in [1, 3, 8] {
            let pool = ExecPool::new(threads);
            let mut data = vec![0usize; 103];
            pool.par_for_chunks_mut(&mut data, 10, |chunk, part| {
                for v in part.iter_mut() {
                    *v = chunk + 1;
                }
            });
            for (i, v) in data.iter().enumerate() {
                assert_eq!(*v, i / 10 + 1, "index {i}");
            }
        }
    }

    #[test]
    fn lane_runs_partition_the_index_space() {
        // Every index covered exactly once, runs are chunk-aligned and
        // contiguous per lane, and each lane is called at most once.
        for threads in [1, 2, 3, 8, 13] {
            let pool = ExecPool::new(threads);
            let mut cover = vec![0usize; 103];
            let slots = UnsafeSlice::new(&mut cover);
            let calls: Vec<AtomicUsize> = (0..threads).map(|_| AtomicUsize::new(0)).collect();
            pool.par_for_lane_runs(103, 10, |lane, range| {
                calls[lane].fetch_add(1, Ordering::SeqCst);
                assert_eq!(range.start % 10, 0, "run start is chunk-aligned");
                for i in range {
                    // SAFETY: asserting disjointness is the point; overlap
                    // would show up as a double-count below.
                    unsafe { slots.slice_mut(i, 1)[0] += 1 };
                }
            });
            assert!(cover.iter().all(|&c| c == 1), "{threads} threads");
            for c in &calls {
                assert!(c.load(Ordering::SeqCst) <= 1);
            }
        }
        let pool = ExecPool::new(2);
        pool.par_for_lane_runs(0, 4, |_, _| panic!("must not run for len 0"));
    }

    #[test]
    fn map_reduce_is_thread_count_invariant() {
        // A floating-point sum whose value depends on association order:
        // identical partials + a fixed tree ⇒ identical bits on any pool.
        let data: Vec<f64> = (0..1000).map(|i| 1.0 / (i as f64 + 1.0)).collect();
        let sum_with = |threads: usize| {
            let pool = ExecPool::new(threads);
            pool.par_map_reduce(
                data.len(),
                64,
                |_, range| data[range].iter().sum::<f64>(),
                |a, b| a + b,
            )
            .unwrap()
        };
        let s1 = sum_with(1);
        for threads in [2, 4, 8] {
            assert_eq!(
                s1.to_bits(),
                sum_with(threads).to_bits(),
                "{threads} threads"
            );
        }
    }

    #[test]
    fn map_reduce_empty_is_none() {
        let pool = ExecPool::new(2);
        assert!(pool
            .par_map_reduce(0, 8, |_, _| 1.0f64, |a, b| a + b)
            .is_none());
    }

    #[test]
    fn nested_runs_execute_inline() {
        let pool = ExecPool::new(4);
        let outer = AtomicUsize::new(0);
        pool.run(&|_| {
            // A nested region must not deadlock on the submission lock.
            pool.run(&|_| {
                outer.fetch_add(1, Ordering::SeqCst);
            });
        });
        assert_eq!(outer.load(Ordering::SeqCst), 16);
    }

    #[test]
    fn lane_panic_propagates_after_completion() {
        let pool = ExecPool::new(4);
        let survived = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(&|lane| {
                if lane == 1 {
                    panic!("lane 1 fails");
                }
                survived.fetch_add(1, Ordering::SeqCst);
            });
        }));
        assert!(result.is_err());
        assert_eq!(survived.load(Ordering::SeqCst), 3);
        // The pool stays usable after a panic.
        pool.run(&|_| {});
    }

    #[test]
    fn utilization_is_reported() {
        let pool = ExecPool::new(2);
        pool.run(&|_| {
            std::hint::black_box((0..10_000).sum::<u64>());
        });
        let stats = pool.last_run_stats();
        assert_eq!(stats.lanes, 2);
        let u = stats.utilization();
        assert!((0.0..=1.0).contains(&u), "utilization {u}");
    }

    #[test]
    fn par_sum4_is_bit_identical_across_thread_counts() {
        // Awkward magnitudes so any reassociation of the reduction tree
        // would change the rounding and fail the exact comparison.
        let data: Vec<f64> = (0..1003)
            .map(|i| ((i * 2654435761_usize) % 1000) as f64 * 1e-7 + 1.0)
            .collect();
        let map = |_chunk: usize, range: std::ops::Range<usize>| {
            let mut acc = [0.0; 4];
            for i in range {
                acc[0] += data[i];
                acc[1] += data[i] * 0.5;
                acc[2] -= data[i] * 0.25;
                acc[3] += 1.0;
            }
            acc
        };
        let reference = ExecPool::new(1).par_sum4(data.len(), 64, map);
        assert_eq!(reference[3], data.len() as f64);
        for threads in [2, 3, 8] {
            let pool = ExecPool::new(threads);
            assert_eq!(
                pool.par_sum4(data.len(), 64, map),
                reference,
                "{threads} threads"
            );
        }
        assert_eq!(ExecPool::new(4).par_sum4(0, 64, map), [0.0; 4]);
    }

    #[test]
    fn chunk_plan_fixed_matches_ranges_layout() {
        let plan = ChunkPlan::fixed(103, 10);
        assert_eq!(plan.len(), 103);
        assert_eq!(plan.chunks(), 11);
        assert_eq!(plan.range(0), 0..10);
        assert_eq!(plan.range(10), 100..103);
        assert_eq!(plan.chunk_of(0), 0);
        assert_eq!(plan.chunk_of(99), 9);
        assert_eq!(plan.chunk_of(102), 10);
        let empty = ChunkPlan::fixed(0, 8);
        assert!(empty.is_empty());
        assert_eq!(empty.chunks(), 1);
    }

    #[test]
    fn chunk_plan_from_costs_balances_and_aligns() {
        // 8 units of 4 indices; cost concentrated in the middle. Chunks
        // must stay unit-aligned, cover everything, and split the heavy
        // units apart rather than by unit count.
        let costs = [0, 0, 100, 100, 100, 100, 0, 0];
        let plan = ChunkPlan::from_costs(4, &costs, 4);
        assert_eq!(plan.len(), 32);
        assert!(plan.chunks() >= 4, "heavy units split: {:?}", plan);
        let mut covered = 0;
        for c in 0..plan.chunks() {
            let r = plan.range(c);
            assert_eq!(r.start % 4, 0, "unit-aligned");
            assert!(r.start <= r.end);
            covered += r.len();
            for i in r {
                assert_eq!(plan.chunk_of(i), c);
            }
        }
        assert_eq!(covered, 32);
        // Degenerate inputs.
        assert!(ChunkPlan::from_costs(4, &[], 3).is_empty());
        let all_zero = ChunkPlan::from_costs(2, &[0, 0, 0], 2);
        assert_eq!(all_zero.len(), 6);
    }

    #[test]
    fn par_for_guided_covers_every_chunk_once_any_thread_count() {
        let costs: Vec<u64> = (0..13).map(|u| (u % 5) as u64).collect();
        let plan = ChunkPlan::from_costs(7, &costs, 6);
        for threads in [1, 2, 4, 8] {
            let pool = ExecPool::new(threads);
            let mut cover = vec![0usize; plan.len()];
            let slots = UnsafeSlice::new(&mut cover);
            let calls = AtomicUsize::new(0);
            pool.par_for_guided(&plan, |_, range| {
                calls.fetch_add(1, Ordering::SeqCst);
                for i in range {
                    // SAFETY: chunks are disjoint; a double claim would
                    // show up as a double count.
                    unsafe { slots.slice_mut(i, 1)[0] += 1 };
                }
            });
            assert_eq!(calls.load(Ordering::SeqCst), plan.chunks());
            assert!(cover.iter().all(|&c| c == 1), "{threads} threads");
        }
    }

    #[test]
    fn guided_scheduler_hands_out_claims_and_drains_once() {
        let plan = ChunkPlan::fixed(40, 10);
        for sched in [
            GuidedScheduler::guided(&plan),
            GuidedScheduler::preassigned(&plan, 3),
        ] {
            let mut seen = vec![0; plan.chunks()];
            for lane in 0..3 {
                while let Some((c, range)) = sched.claim(lane) {
                    assert_eq!(range, plan.range(c));
                    seen[c] += 1;
                    sched.mark_done(c);
                }
            }
            assert!(seen.iter().all(|&s| s == 1), "each chunk claimed once");
            let mut drained = vec![0; plan.chunks()];
            while let Some(c) = sched.claim_drain() {
                assert!(sched.is_done(c));
                drained[c] += 1;
            }
            assert!(drained.iter().all(|&d| d == 1));
        }
    }

    #[test]
    fn start_jitter_does_not_change_guided_results() {
        let plan = ChunkPlan::fixed(500, 7);
        let run_once = || {
            let pool = ExecPool::new(4);
            let mut out = vec![0u64; plan.len()];
            let slots = UnsafeSlice::new(&mut out);
            pool.par_for_guided(&plan, |chunk, range| {
                for i in range {
                    // SAFETY: disjoint chunk ranges.
                    unsafe { slots.slice_mut(i, 1)[0] = (chunk as u64) << 32 | i as u64 };
                }
            });
            out
        };
        let baseline = run_once();
        for round in 0u64..3 {
            let table: Vec<u64> = (0..4)
                .map(|l| (l * 37 + round * 101) % 200 * 1_000)
                .collect();
            set_test_start_jitter(Some(table));
            let jittered = run_once();
            set_test_start_jitter(None);
            assert_eq!(baseline, jittered, "round {round}");
        }
    }

    #[test]
    fn thread_cpu_time_is_monotonic_when_available() {
        if let Some(a) = thread_cpu_ns() {
            std::hint::black_box((0..100_000).sum::<u64>());
            let b = thread_cpu_ns().expect("still available");
            assert!(b >= a, "thread CPU time went backwards: {a} -> {b}");
        }
    }

    #[test]
    fn stress_repeat_100_race_smoke() {
        // Loom-free race smoke: hammer all primitives from a fresh pool 100
        // times so TSan-style runs and repeat-CI catch protocol races.
        for round in 0..100 {
            let threads = 1 + round % 8;
            let pool = ExecPool::new(threads);
            let mut data = vec![0u64; 257];
            pool.par_for_chunks_mut(&mut data, 16, |chunk, part| {
                for (k, v) in part.iter_mut().enumerate() {
                    *v = (chunk * 16 + k) as u64;
                }
            });
            let direct: u64 = data.iter().sum();
            let reduced = pool
                .par_map_reduce(
                    data.len(),
                    16,
                    |_, range| data[range].iter().sum::<u64>(),
                    |a, b| a + b,
                )
                .unwrap();
            assert_eq!(direct, reduced, "round {round}");
        }
    }
}
