//! Worker-budget leasing: bound total lane occupancy across concurrent
//! engine drivers.
//!
//! The serve scheduler admits far more sessions than the machine has
//! cores. Engines reach their pool through [`crate::current()`], so the
//! budget works by *scoping*: a [`WorkerBudget`] holds a fixed number of
//! lanes; a driver blocks in [`WorkerBudget::lease`] until its requested
//! lane count is free, then runs its slice inside [`WorkerLease::scope`],
//! which installs a lease-sized pool as the thread-local current pool.
//! Every `apr_exec::current()` call the engine makes during the slice —
//! kernels, IBM transfer, cell maintenance — lands on the leased pool,
//! unchanged code. Dropping the lease returns the lanes and wakes
//! waiters.
//!
//! Pools are cached per lane count inside the budget, so repeated
//! lease/release cycles (one per scheduler time slice) reuse warm worker
//! threads instead of spawning fresh ones.

use crate::pool::ExecPool;
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

/// A fixed budget of worker lanes shared by concurrent lessees.
#[derive(Debug)]
pub struct WorkerBudget {
    total: usize,
    state: Mutex<BudgetState>,
    freed: Condvar,
}

#[derive(Debug)]
struct BudgetState {
    available: usize,
    /// Warm pools keyed by lane count, reused across leases.
    pools: HashMap<usize, Vec<Arc<ExecPool>>>,
}

impl WorkerBudget {
    /// Budget of `total` lanes (`total` ≥ 1 enforced).
    pub fn new(total: usize) -> Self {
        let total = total.max(1);
        Self {
            total,
            state: Mutex::new(BudgetState {
                available: total,
                pools: HashMap::new(),
            }),
            freed: Condvar::new(),
        }
    }

    /// Total lanes in the budget.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Lanes currently unleased.
    pub fn available(&self) -> usize {
        self.state.lock().unwrap().available
    }

    /// Block until `lanes` lanes are free, then lease them. Requests are
    /// clamped to the budget total so a single oversized request cannot
    /// deadlock.
    pub fn lease(self: &Arc<Self>, lanes: usize) -> WorkerLease {
        let lanes = lanes.clamp(1, self.total);
        let mut state = self.state.lock().unwrap();
        while state.available < lanes {
            state = self.freed.wait(state).unwrap();
        }
        state.available -= lanes;
        let pool = Self::pool_from(&mut state, lanes);
        drop(state);
        WorkerLease {
            budget: Arc::clone(self),
            lanes,
            pool,
        }
    }

    /// Lease `lanes` lanes if they are free right now; `None` otherwise.
    pub fn try_lease(self: &Arc<Self>, lanes: usize) -> Option<WorkerLease> {
        let lanes = lanes.clamp(1, self.total);
        let mut state = self.state.lock().unwrap();
        if state.available < lanes {
            return None;
        }
        state.available -= lanes;
        let pool = Self::pool_from(&mut state, lanes);
        drop(state);
        Some(WorkerLease {
            budget: Arc::clone(self),
            lanes,
            pool,
        })
    }

    fn pool_from(state: &mut BudgetState, lanes: usize) -> Arc<ExecPool> {
        state
            .pools
            .get_mut(&lanes)
            .and_then(Vec::pop)
            .unwrap_or_else(|| Arc::new(ExecPool::new(lanes)))
    }

    fn release(&self, lanes: usize, pool: Arc<ExecPool>) {
        let mut state = self.state.lock().unwrap();
        state.available += lanes;
        debug_assert!(state.available <= self.total, "lease over-release");
        state.pools.entry(lanes).or_default().push(pool);
        drop(state);
        self.freed.notify_all();
    }
}

/// A held slice of the budget. Lanes return (and the pool is recycled)
/// on drop.
#[derive(Debug)]
pub struct WorkerLease {
    budget: Arc<WorkerBudget>,
    lanes: usize,
    pool: Arc<ExecPool>,
}

impl WorkerLease {
    /// Lanes this lease holds.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// The lease's pool (lane count == `lanes()`).
    pub fn pool(&self) -> Arc<ExecPool> {
        Arc::clone(&self.pool)
    }

    /// Run `f` with this lease's pool installed as the thread-local
    /// current pool: every [`crate::current()`] call inside `f` on this
    /// thread resolves to the leased pool instead of the global one.
    pub fn scope<R>(&self, f: impl FnOnce() -> R) -> R {
        crate::with_pool(Arc::clone(&self.pool), f)
    }
}

impl Drop for WorkerLease {
    fn drop(&mut self) {
        self.budget.release(self.lanes, Arc::clone(&self.pool));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lease_bounds_occupancy_and_returns_on_drop() {
        let budget = Arc::new(WorkerBudget::new(4));
        let a = budget.lease(2);
        let b = budget.lease(2);
        assert_eq!(budget.available(), 0);
        assert!(budget.try_lease(1).is_none());
        drop(a);
        assert_eq!(budget.available(), 2);
        let c = budget.try_lease(2).expect("lanes freed");
        assert_eq!(c.lanes(), 2);
        drop(b);
        drop(c);
        assert_eq!(budget.available(), 4);
    }

    #[test]
    fn oversized_request_is_clamped() {
        let budget = Arc::new(WorkerBudget::new(2));
        let lease = budget.lease(16);
        assert_eq!(lease.lanes(), 2);
        assert_eq!(budget.available(), 0);
    }

    #[test]
    fn scope_overrides_current_pool() {
        let budget = Arc::new(WorkerBudget::new(3));
        let lease = budget.lease(3);
        let inside = lease.scope(|| crate::current().threads());
        assert_eq!(inside, 3);
    }

    #[test]
    fn pools_are_recycled_per_lane_count() {
        let budget = Arc::new(WorkerBudget::new(4));
        let first = budget.lease(2);
        let ptr = Arc::as_ptr(&first.pool());
        drop(first);
        let second = budget.lease(2);
        assert_eq!(Arc::as_ptr(&second.pool()), ptr, "warm pool reused");
    }

    #[test]
    fn blocked_lease_wakes_when_lanes_free() {
        let budget = Arc::new(WorkerBudget::new(2));
        let held = budget.lease(2);
        let b2 = Arc::clone(&budget);
        let waiter = std::thread::spawn(move || b2.lease(1).lanes());
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(held);
        assert_eq!(waiter.join().unwrap(), 1);
    }
}
