//! # apr-exec — deterministic multithreaded execution backend
//!
//! A persistent scoped worker pool over `std::thread` with **deterministic
//! static chunking**. The determinism contract:
//!
//! 1. Work is split into chunks whose layout depends only on
//!    `(len, chunk_len)` — never on the thread count. Lanes execute
//!    contiguous runs of chunks, so the *assignment* varies with the lane
//!    count but the per-chunk computation does not.
//! 2. Disjoint-write kernels ([`ExecPool::par_for_chunks_mut`],
//!    [`ExecPool::par_for_ranges`]) therefore produce bit-identical output
//!    for any thread count, including 1.
//! 3. Reductions ([`ExecPool::par_map_reduce`]) collect per-chunk partials
//!    into a slot array indexed by chunk and combine them on the calling
//!    thread in a fixed-shape ordered pairwise tree over chunk index —
//!    the floating-point association order is a function of the chunk
//!    count alone.
//! 4. Write-conflicting accumulations (IBM force spreading) use
//!    per-**chunk** scratch buffers from a [`ScratchPool`], merged into the
//!    output in chunk order on the caller
//!    ([`ExecPool::par_accumulate_f64`]).
//!
//! Together these make every result a pure function of the input and the
//! chunk layout, so `APR_THREADS=8` reproduces `APR_THREADS=1` bit for
//! bit. See `DESIGN.md` §9 for the full execution model and the
//! rayon-shim retirement plan.
//!
//! ## Thread count selection
//!
//! The typed front door is `apr_kernels::RuntimeConfig::from_env`, which
//! parses `APR_THREADS` (with `APR_KERNEL` / `APR_CHUNKING`) and installs
//! the result via [`set_threads`]. The lazily created global pool still
//! falls back to a lenient `APR_THREADS` read (unset or `0` → all
//! available cores). Process-wide consumers go through the global pool:
//! [`current()`] hands out a shared [`ExecPool`]; [`set_threads`] swaps it
//! (used by CLI `--threads` flags and the determinism suite).

pub mod lease;
pub mod pool;
pub mod scratch;

pub use lease::{WorkerBudget, WorkerLease};
pub use pool::{
    set_test_start_jitter, thread_cpu_ns, ChunkPlan, ExecPool, GuidedScheduler, RunStats,
    UnsafeSlice,
};
pub use scratch::ScratchPool;

use std::cell::RefCell;
use std::sync::{Arc, Mutex, OnceLock};

/// Execution configuration resolved from the environment / CLI.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecConfig {
    /// Worker lanes to run (≥ 1). `1` means fully sequential.
    pub threads: usize,
}

impl ExecConfig {
    /// Resolve from the `APR_THREADS` environment variable.
    ///
    /// Unset, empty, unparsable, or `0` → one lane per available core.
    #[deprecated(
        since = "0.2.0",
        note = "use apr_kernels::RuntimeConfig::from_env (typed errors, one \
                parser for APR_KERNEL/APR_THREADS/APR_CHUNKING) and install()"
    )]
    pub fn from_env() -> Self {
        Self::resolve_env()
    }

    /// Lenient `APR_THREADS` resolution, kept for the lazily created global
    /// pool. The strict, typed parse lives in
    /// `apr_kernels::RuntimeConfig::from_env`.
    pub(crate) fn resolve_env() -> Self {
        let requested = std::env::var("APR_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or(0);
        Self {
            threads: if requested == 0 {
                available_cores()
            } else {
                requested
            },
        }
    }

    /// Explicit thread count (`0` → all available cores).
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads: if threads == 0 {
                available_cores()
            } else {
                threads
            },
        }
    }
}

impl Default for ExecConfig {
    fn default() -> Self {
        Self::resolve_env()
    }
}

/// Lanes the hardware offers (≥ 1).
pub fn available_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn global() -> &'static Mutex<Option<Arc<ExecPool>>> {
    static GLOBAL: OnceLock<Mutex<Option<Arc<ExecPool>>>> = OnceLock::new();
    GLOBAL.get_or_init(|| Mutex::new(None))
}

thread_local! {
    /// Stack of scoped pool overrides installed by [`with_pool`] /
    /// [`WorkerLease::scope`]. Innermost override wins.
    static POOL_OVERRIDE: RefCell<Vec<Arc<ExecPool>>> = const { RefCell::new(Vec::new()) };
}

/// The current pool: the innermost [`with_pool`] override on this thread
/// if one is active, otherwise the process-wide pool (created from the
/// `APR_THREADS` environment on first use). Clones of the `Arc` stay valid
/// across [`set_threads`] swaps and scope exits (they keep the old pool
/// alive until dropped).
pub fn current() -> Arc<ExecPool> {
    if let Some(p) = POOL_OVERRIDE.with(|s| s.borrow().last().cloned()) {
        return p;
    }
    let mut slot = global().lock().unwrap();
    slot.get_or_insert_with(|| Arc::new(ExecPool::new(ExecConfig::resolve_env().threads)))
        .clone()
}

/// Run `f` with `pool` installed as this thread's [`current`] pool.
/// Scopes nest (innermost wins) and unwind-safely pop on panic, so a
/// poisoned engine slice cannot leak its pool override into the next
/// session scheduled on the same worker thread.
pub fn with_pool<R>(pool: Arc<ExecPool>, f: impl FnOnce() -> R) -> R {
    struct PopGuard;
    impl Drop for PopGuard {
        fn drop(&mut self) {
            POOL_OVERRIDE.with(|s| {
                s.borrow_mut().pop();
            });
        }
    }
    POOL_OVERRIDE.with(|s| s.borrow_mut().push(pool));
    let _guard = PopGuard;
    f()
}

/// Replace the process-wide pool with one of `threads` lanes
/// (`0` → all available cores). Existing [`current`] clones keep running
/// on the pool they hold.
pub fn set_threads(threads: usize) {
    let pool = Arc::new(ExecPool::new(ExecConfig::with_threads(threads).threads));
    *global().lock().unwrap() = Some(pool);
}

/// Lane count of the process-wide pool.
pub fn current_threads() -> usize {
    current().threads()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_with_explicit_threads() {
        assert_eq!(ExecConfig::with_threads(3).threads, 3);
        assert!(ExecConfig::with_threads(0).threads >= 1);
    }

    #[test]
    fn global_pool_swaps() {
        set_threads(2);
        assert_eq!(current_threads(), 2);
        let held = current();
        set_threads(1);
        assert_eq!(current_threads(), 1);
        // The old pool is still usable through the retained clone.
        let sum = held
            .par_map_reduce(8, 2, |_, r| r.len() as u64, |a, b| a + b)
            .unwrap_or(0);
        assert_eq!(sum, 8);
    }

    #[test]
    fn with_pool_overrides_nest_and_unwind() {
        let outer = Arc::new(ExecPool::new(3));
        let inner = Arc::new(ExecPool::new(2));
        with_pool(Arc::clone(&outer), || {
            assert_eq!(current().threads(), 3);
            with_pool(Arc::clone(&inner), || {
                assert_eq!(current().threads(), 2);
            });
            assert_eq!(current().threads(), 3);
            // A panic inside a scope must pop its override.
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                with_pool(Arc::clone(&inner), || panic!("boom"))
            }));
            assert!(r.is_err());
            assert_eq!(current().threads(), 3);
        });
    }
}
