//! Reusable per-chunk scratch buffers for write-conflicting accumulations.
//!
//! Scatter-style kernels (IBM force spreading) have many producers writing
//! overlapping regions of one output field. The deterministic recipe:
//! every **chunk** of producers accumulates into its own scratch buffer,
//! and the buffers are merged into the output on the calling thread in
//! chunk-index order. Because the chunk layout is independent of the worker
//! count, the merged result is bit-identical for any thread count —
//! including a 1-thread pool. The [`ScratchPool`] recycles the buffers so
//! steady-state simulation does no per-step allocation.

use crate::pool::{ExecPool, UnsafeSlice};
use std::ops::Range;
use std::sync::Mutex;

/// A free list of reusable buffers, shared across parallel regions.
#[derive(Debug, Default)]
pub struct ScratchPool<T> {
    free: Mutex<Vec<T>>,
}

impl<T> ScratchPool<T> {
    /// New empty pool.
    pub fn new() -> Self {
        Self {
            free: Mutex::new(Vec::new()),
        }
    }

    /// Take a recycled buffer, or `make` a fresh one.
    pub fn take_or(&self, make: impl FnOnce() -> T) -> T {
        self.free.lock().unwrap().pop().unwrap_or_else(make)
    }

    /// Return a buffer for reuse.
    pub fn put(&self, buf: T) {
        self.free.lock().unwrap().push(buf);
    }

    /// Buffers currently cached.
    pub fn cached(&self) -> usize {
        self.free.lock().unwrap().len()
    }
}

impl ExecPool {
    /// Deterministic parallel accumulation into `out`.
    ///
    /// `0..items` is split into at most `max_chunks` fixed chunks (layout
    /// independent of the thread count). Each chunk takes a zeroed
    /// `out`-sized scratch buffer from `scratch`, runs
    /// `fill(chunk_index, item_range, buffer)`, and the buffers are then
    /// summed into `out` **on the calling thread in chunk order** before
    /// being recycled. Element-wise: `out[i] += Σ_chunks buf_c[i]` with a
    /// fixed association order, so results are bit-identical for any
    /// thread count.
    pub fn par_accumulate_f64(
        &self,
        out: &mut [f64],
        items: usize,
        max_chunks: usize,
        scratch: &ScratchPool<Vec<f64>>,
        fill: impl Fn(usize, Range<usize>, &mut [f64]) + Sync,
    ) {
        if items == 0 {
            return;
        }
        let chunks = items.min(max_chunks.max(1));
        let chunk_len = items.div_ceil(chunks);
        let chunks = items.div_ceil(chunk_len);
        let mut bufs: Vec<Option<Vec<f64>>> = Vec::with_capacity(chunks);
        bufs.resize_with(chunks, || None);
        let slots = UnsafeSlice::new(&mut bufs);
        let out_len = out.len();
        self.par_for_ranges(items, chunk_len, |chunk, range| {
            let mut buf = scratch.take_or(Vec::new);
            buf.clear();
            buf.resize(out_len, 0.0);
            fill(chunk, range, &mut buf);
            // SAFETY: one writer per chunk slot.
            unsafe { slots.slice_mut(chunk, 1)[0] = Some(buf) };
        });
        for buf in bufs.into_iter().map(|b| b.expect("chunk filled")) {
            for (o, v) in out.iter_mut().zip(&buf) {
                *o += v;
            }
            scratch.put(buf);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulation_is_thread_count_invariant() {
        // Overlapping scatter with FP-order-sensitive values.
        let run = |threads: usize| {
            let pool = ExecPool::new(threads);
            let scratch = ScratchPool::new();
            let mut out = vec![0.0f64; 32];
            pool.par_accumulate_f64(&mut out, 100, 8, &scratch, |_, range, buf| {
                for item in range {
                    for (i, b) in buf.iter_mut().enumerate() {
                        *b += 1.0 / ((item + i) as f64 + 1.0);
                    }
                }
            });
            out
        };
        let base = run(1);
        for threads in [2, 4, 8] {
            let got = run(threads);
            for (i, (a, b)) in base.iter().zip(&got).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "node {i} at {threads} threads");
            }
        }
    }

    #[test]
    fn buffers_are_recycled() {
        let pool = ExecPool::new(2);
        let scratch = ScratchPool::new();
        let mut out = vec![0.0f64; 8];
        for _ in 0..3 {
            pool.par_accumulate_f64(&mut out, 10, 4, &scratch, |_, range, buf| {
                buf[0] += range.len() as f64;
            });
        }
        assert!(scratch.cached() >= 1);
        assert_eq!(out[0], 30.0);
    }

    #[test]
    fn accumulate_adds_onto_existing_content() {
        let pool = ExecPool::sequential();
        let scratch = ScratchPool::new();
        let mut out = vec![1.0f64; 4];
        pool.par_accumulate_f64(&mut out, 2, 2, &scratch, |_, range, buf| {
            for _ in range {
                buf[0] += 2.0;
            }
        });
        assert_eq!(out, vec![5.0, 1.0, 1.0, 1.0]);
    }
}
