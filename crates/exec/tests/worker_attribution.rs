//! Per-worker time attribution: pool regions must surface per-lane busy
//! times into the span open on the submitting thread.
//!
//! Single test function — it owns the process-global telemetry recorder's
//! enable state for this binary.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Spin until this thread has *consumed* `ns` of CPU time (falling back to
/// wall time where the platform offers no thread clock). Lane busy time is
/// measured as CPU time, so sleeping would attribute nothing — work must
/// burn cycles to show up, which is the point of the metric.
fn burn_cpu(ns: u64) {
    let wall = std::time::Instant::now();
    let cpu0 = apr_exec::thread_cpu_ns();
    loop {
        std::hint::black_box((0..512u64).sum::<u64>());
        let spent = match (cpu0, apr_exec::thread_cpu_ns()) {
            (Some(a), Some(b)) => b.saturating_sub(a),
            _ => wall.elapsed().as_nanos() as u64,
        };
        if spent >= ns {
            return;
        }
    }
}

#[test]
fn pool_regions_attribute_worker_time_to_open_span() {
    let rec = apr_telemetry::global();
    rec.reset();
    rec.enable();

    // Multithreaded: every lane burns CPU, lane 0 the most, so each lane's
    // busy slot must be populated and the barrier wait is bounded.
    let pool = apr_exec::ExecPool::new(3);
    {
        let _s = apr_telemetry::span("exec.test.mt");
        pool.run(&|lane| {
            burn_cpu((2 + 2 * (2 - lane as u64)) * 1_000_000);
        });
        pool.run(&|lane| {
            burn_cpu((1 + lane as u64) * 1_000_000);
        });
    }

    // Sequential top-level region: recorded as a single perfectly
    // balanced lane.
    let seq = apr_exec::ExecPool::sequential();
    {
        let _s = apr_telemetry::span("exec.test.seq");
        seq.run(&|_| burn_cpu(2_200_000));
    }

    // Nested regions run inline and must not double-attribute.
    let regions_before = stat(rec, "exec.test.mt").workers.regions;
    {
        let _s = apr_telemetry::span("exec.test.nested");
        pool.run(&|_| {
            pool.run(&|_| {});
        });
    }
    rec.disable();

    let mt = stat(rec, "exec.test.mt");
    assert_eq!(mt.workers.regions, 2);
    assert_eq!(mt.workers.samples, 6, "3 lanes x 2 regions");
    assert!(mt.workers.min_ns > 0, "every lane slot was populated");
    assert!(mt.workers.imbalance() >= 1.0);
    assert!(
        mt.barrier_ns <= mt.total_ns,
        "barrier wait is part of the span wall time"
    );

    let seq_stat = stat(rec, "exec.test.seq");
    assert_eq!(seq_stat.workers.regions, 1);
    assert_eq!(seq_stat.workers.samples, 1);
    assert_eq!(seq_stat.workers.imbalance(), 1.0);
    assert!(seq_stat.workers.busy_ns >= 2_000_000);
    assert!(
        seq_stat.self_ns >= seq_stat.total_ns.saturating_sub(seq_stat.workers.busy_ns),
        "a 1-lane region has no barrier to subtract"
    );

    let nested = stat(rec, "exec.test.nested");
    assert_eq!(
        nested.workers.regions, 1,
        "the inner inline region must not be attributed separately"
    );
    assert_eq!(regions_before, 2);

    // Panicking regions leave the pool usable and record nothing extra.
    let hits = AtomicUsize::new(0);
    let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        pool.run(&|lane| {
            hits.fetch_add(1, Ordering::SeqCst);
            if lane == 1 {
                panic!("boom");
            }
        });
    }));
    assert!(panicked.is_err());
    rec.reset();
}

fn stat(rec: &apr_telemetry::Recorder, name: &str) -> apr_telemetry::PhaseStat {
    rec.phase_stats()
        .into_iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("phase {name} missing"))
}
