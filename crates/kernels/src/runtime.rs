//! Unified runtime configuration: one typed front door for everything
//! that used to be scattered `std::env` reads.
//!
//! [`RuntimeConfig`] bundles the four knobs that shape a run — kernel
//! backend, worker thread count, chunking policy, and whether the kernel
//! auto-probe may run — and [`RuntimeConfig::from_env`] is the *single*
//! parser for `APR_KERNEL` / `APR_THREADS` / `APR_CHUNKING` /
//! `APR_KERNEL_PROBE`, returning a typed [`RuntimeConfigError`] instead of
//! panicking on a typo. [`RuntimeConfig::install`] applies the parsed
//! config process-wide: it swaps the global worker pool and records the
//! kernel/chunking/probe defaults that `apr-lattice` consults when a
//! solver has no explicit override.
//!
//! Lattice-level consumers read the installed state through
//! [`kernel_override`], [`default_chunking`], and [`probe_enabled`]; when
//! nothing was installed those fall back to a lenient env read so plain
//! `APR_KERNEL=fused cargo test` keeps working without any setup call.

use std::sync::atomic::{AtomicU8, Ordering};

use crate::KernelKind;

/// How a parallel sweep hands chunks to worker lanes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ChunkingPolicy {
    /// Contiguous chunk runs pre-assigned per lane (the pre-guided
    /// behaviour). Kept for A/B measurement and as a fallback.
    Static,
    /// Fluid-node-costed chunks claimed from a shared cursor in a fixed
    /// order; bit-identical to `Static` by construction (disjoint writes,
    /// order-free swaps) but immune to per-lane cost skew.
    #[default]
    Guided,
}

impl ChunkingPolicy {
    /// Stable lowercase name, accepted back by the env parser.
    pub fn as_str(self) -> &'static str {
        match self {
            ChunkingPolicy::Static => "static",
            ChunkingPolicy::Guided => "guided",
        }
    }
}

impl std::fmt::Display for ChunkingPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A malformed runtime environment variable. Each variant carries the
/// rejected value verbatim.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeConfigError {
    /// `APR_KERNEL` was none of `auto`/`reference`/`fused`/`simd`.
    Kernel(String),
    /// `APR_THREADS` was not a non-negative integer.
    Threads(String),
    /// `APR_CHUNKING` was neither `static` nor `guided`.
    Chunking(String),
    /// `APR_KERNEL_PROBE` was not a recognised boolean.
    Probe(String),
}

impl std::fmt::Display for RuntimeConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeConfigError::Kernel(v) => write!(
                f,
                "APR_KERNEL={v:?}: expected auto, reference, fused, or simd"
            ),
            RuntimeConfigError::Threads(v) => write!(
                f,
                "APR_THREADS={v:?}: expected a non-negative integer (0 = all cores)"
            ),
            RuntimeConfigError::Chunking(v) => {
                write!(f, "APR_CHUNKING={v:?}: expected static or guided")
            }
            RuntimeConfigError::Probe(v) => write!(
                f,
                "APR_KERNEL_PROBE={v:?}: expected 1/0, true/false, on/off, or yes/no"
            ),
        }
    }
}

impl std::error::Error for RuntimeConfigError {}

/// The typed runtime surface: every knob the engine reads at startup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuntimeConfig {
    /// Kernel backend to force, or `None` to let the selector decide
    /// (probe when [`RuntimeConfig::probe`] allows it).
    pub kernel: Option<KernelKind>,
    /// Worker lanes (`0` = one per available core).
    pub threads: usize,
    /// Chunk hand-out policy for parallel sweeps.
    pub chunking: ChunkingPolicy,
    /// Whether the kernel auto-probe may time backends on first use when
    /// no kernel is forced. Off → the selector picks [`KernelKind::FusedSimd`].
    pub probe: bool,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self {
            kernel: None,
            threads: 0,
            chunking: ChunkingPolicy::default(),
            probe: true,
        }
    }
}

impl RuntimeConfig {
    /// Parse the full runtime environment (`APR_KERNEL`, `APR_THREADS`,
    /// `APR_CHUNKING`, `APR_KERNEL_PROBE`). Unset variables take their
    /// defaults; a set-but-malformed variable is a typed error, never a
    /// panic and never silently ignored.
    pub fn from_env() -> Result<Self, RuntimeConfigError> {
        let get = |k: &str| std::env::var(k).ok();
        Self::parse(
            get("APR_KERNEL").as_deref(),
            get("APR_THREADS").as_deref(),
            get("APR_CHUNKING").as_deref(),
            get("APR_KERNEL_PROBE").as_deref(),
        )
    }

    /// The pure parser behind [`RuntimeConfig::from_env`], separated so
    /// tests can exercise it without mutating process env. `None` means
    /// the variable was unset.
    pub fn parse(
        kernel: Option<&str>,
        threads: Option<&str>,
        chunking: Option<&str>,
        probe: Option<&str>,
    ) -> Result<Self, RuntimeConfigError> {
        let mut cfg = Self::default();
        if let Some(v) = kernel {
            cfg.kernel = parse_kernel(v).map_err(RuntimeConfigError::Kernel)?;
        }
        if let Some(v) = threads {
            let t = v.trim();
            cfg.threads = if t.is_empty() {
                0
            } else {
                t.parse::<usize>()
                    .map_err(|_| RuntimeConfigError::Threads(v.to_string()))?
            };
        }
        if let Some(v) = chunking {
            cfg.chunking = parse_chunking(v).map_err(RuntimeConfigError::Chunking)?;
        }
        if let Some(v) = probe {
            cfg.probe = parse_bool(v).map_err(RuntimeConfigError::Probe)?;
        }
        Ok(cfg)
    }

    /// Force a specific kernel backend (builder style).
    pub fn with_kernel(mut self, kernel: KernelKind) -> Self {
        self.kernel = Some(kernel);
        self
    }

    /// Set the worker lane count (builder style, `0` = all cores).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Set the chunking policy (builder style).
    pub fn with_chunking(mut self, chunking: ChunkingPolicy) -> Self {
        self.chunking = chunking;
        self
    }

    /// Enable / disable the kernel auto-probe (builder style).
    pub fn with_probe(mut self, probe: bool) -> Self {
        self.probe = probe;
        self
    }

    /// Apply this config process-wide: swap the global worker pool to
    /// [`RuntimeConfig::threads`] lanes and record the kernel / chunking /
    /// probe defaults consulted by lattices without explicit overrides.
    /// Later installs fully replace earlier ones.
    pub fn install(&self) {
        apr_exec::set_threads(self.threads);
        KERNEL_OVERRIDE.store(encode_kernel(self.kernel), Ordering::Release);
        CHUNKING.store(encode_chunking(Some(self.chunking)), Ordering::Release);
        PROBE.store(encode_bool(Some(self.probe)), Ordering::Release);
    }
}

fn parse_kernel(v: &str) -> Result<Option<KernelKind>, String> {
    match v.trim() {
        "" | "auto" => Ok(None),
        "reference" => Ok(Some(KernelKind::Reference)),
        "fused" => Ok(Some(KernelKind::FusedSwap)),
        "simd" => Ok(Some(KernelKind::FusedSimd)),
        _ => Err(v.to_string()),
    }
}

fn parse_chunking(v: &str) -> Result<ChunkingPolicy, String> {
    match v.trim() {
        "" | "guided" => Ok(ChunkingPolicy::Guided),
        "static" => Ok(ChunkingPolicy::Static),
        _ => Err(v.to_string()),
    }
}

fn parse_bool(v: &str) -> Result<bool, String> {
    match v.trim() {
        "" | "1" | "true" | "on" | "yes" => Ok(true),
        "0" | "false" | "off" | "no" => Ok(false),
        _ => Err(v.to_string()),
    }
}

// Installed process defaults. Encoding: 0 = not installed (fall back to a
// lenient env read), otherwise value + 1 in the type's own order.
static KERNEL_OVERRIDE: AtomicU8 = AtomicU8::new(0);
static CHUNKING: AtomicU8 = AtomicU8::new(0);
static PROBE: AtomicU8 = AtomicU8::new(0);

fn encode_kernel(k: Option<KernelKind>) -> u8 {
    match k {
        None => 1, // installed-as-auto still overrides the env
        Some(KernelKind::Reference) => 2,
        Some(KernelKind::FusedSwap) => 3,
        Some(KernelKind::FusedSimd) => 4,
    }
}

fn encode_chunking(c: Option<ChunkingPolicy>) -> u8 {
    match c {
        None => 0,
        Some(ChunkingPolicy::Static) => 1,
        Some(ChunkingPolicy::Guided) => 2,
    }
}

fn encode_bool(b: Option<bool>) -> u8 {
    match b {
        None => 0,
        Some(false) => 1,
        Some(true) => 2,
    }
}

/// The kernel forced by the installed [`RuntimeConfig`], if any.
/// `None` either means "nothing installed" or "installed as auto" — both
/// leave the decision to the selector (which then consults
/// [`env_kernel`] / the probe).
pub fn kernel_override() -> Option<KernelKind> {
    match KERNEL_OVERRIDE.load(Ordering::Acquire) {
        2 => Some(KernelKind::Reference),
        3 => Some(KernelKind::FusedSwap),
        4 => Some(KernelKind::FusedSimd),
        _ => None,
    }
}

/// Whether an installed [`RuntimeConfig`] pinned the kernel choice —
/// including pinning it to `auto`. When true the selector must not read
/// `APR_KERNEL` again.
pub fn kernel_pinned() -> bool {
    KERNEL_OVERRIDE.load(Ordering::Acquire) != 0
}

/// The chunking policy lattices use when none was set on the solver:
/// the installed config's policy, else a lenient `APR_CHUNKING` read
/// (malformed values fall back to the default rather than erroring —
/// strict validation belongs to [`RuntimeConfig::from_env`]).
pub fn default_chunking() -> ChunkingPolicy {
    match CHUNKING.load(Ordering::Acquire) {
        1 => ChunkingPolicy::Static,
        2 => ChunkingPolicy::Guided,
        _ => std::env::var("APR_CHUNKING")
            .ok()
            .and_then(|v| parse_chunking(&v).ok())
            .unwrap_or_default(),
    }
}

/// Whether the kernel auto-probe may run: the installed config's flag,
/// else a lenient `APR_KERNEL_PROBE` read (default on).
pub fn probe_enabled() -> bool {
    match PROBE.load(Ordering::Acquire) {
        1 => false,
        2 => true,
        _ => std::env::var("APR_KERNEL_PROBE")
            .ok()
            .and_then(|v| parse_bool(&v).ok())
            .unwrap_or(true),
    }
}

/// Non-panicking `APR_KERNEL` read for the selector: `Ok(None)` when
/// unset or `auto`, a typed error on garbage. The deprecated
/// [`crate::kernel_from_env`] routes through this and panics on `Err` to
/// preserve its documented behaviour.
pub fn env_kernel() -> Result<Option<KernelKind>, RuntimeConfigError> {
    match std::env::var("APR_KERNEL") {
        Ok(v) => parse_kernel(&v).map_err(RuntimeConfigError::Kernel),
        Err(_) => Ok(None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_defaults_when_all_unset() {
        let cfg = RuntimeConfig::parse(None, None, None, None).unwrap();
        assert_eq!(cfg, RuntimeConfig::default());
        assert_eq!(cfg.kernel, None);
        assert_eq!(cfg.threads, 0);
        assert_eq!(cfg.chunking, ChunkingPolicy::Guided);
        assert!(cfg.probe);
    }

    #[test]
    fn parse_accepts_every_kernel_name() {
        for (name, want) in [
            ("auto", None),
            ("", None),
            ("reference", Some(KernelKind::Reference)),
            ("fused", Some(KernelKind::FusedSwap)),
            ("simd", Some(KernelKind::FusedSimd)),
        ] {
            let cfg = RuntimeConfig::parse(Some(name), None, None, None).unwrap();
            assert_eq!(cfg.kernel, want, "APR_KERNEL={name}");
        }
        // Round trip through the canonical names.
        for kind in [
            KernelKind::Reference,
            KernelKind::FusedSwap,
            KernelKind::FusedSimd,
        ] {
            let cfg = RuntimeConfig::parse(Some(kind.as_str()), None, None, None).unwrap();
            assert_eq!(cfg.kernel, Some(kind));
        }
    }

    #[test]
    fn parse_rejects_garbage_with_typed_errors() {
        assert_eq!(
            RuntimeConfig::parse(Some("fast"), None, None, None),
            Err(RuntimeConfigError::Kernel("fast".into()))
        );
        assert_eq!(
            RuntimeConfig::parse(None, Some("-3"), None, None),
            Err(RuntimeConfigError::Threads("-3".into()))
        );
        assert_eq!(
            RuntimeConfig::parse(None, None, Some("dynamic"), None),
            Err(RuntimeConfigError::Chunking("dynamic".into()))
        );
        assert_eq!(
            RuntimeConfig::parse(None, None, None, Some("maybe")),
            Err(RuntimeConfigError::Probe("maybe".into()))
        );
        // Errors render the offending variable and value.
        let msg = RuntimeConfig::parse(Some("fast"), None, None, None)
            .unwrap_err()
            .to_string();
        assert!(msg.contains("APR_KERNEL") && msg.contains("fast"), "{msg}");
    }

    #[test]
    fn parse_threads_chunking_probe() {
        let cfg = RuntimeConfig::parse(None, Some("4"), Some("static"), Some("off")).unwrap();
        assert_eq!(cfg.threads, 4);
        assert_eq!(cfg.chunking, ChunkingPolicy::Static);
        assert!(!cfg.probe);
        let cfg = RuntimeConfig::parse(None, Some(" 0 "), Some("guided"), Some("1")).unwrap();
        assert_eq!(cfg.threads, 0);
        assert_eq!(cfg.chunking, ChunkingPolicy::Guided);
        assert!(cfg.probe);
    }

    #[test]
    fn builder_style_setters_compose() {
        let cfg = RuntimeConfig::default()
            .with_kernel(KernelKind::FusedSimd)
            .with_threads(2)
            .with_chunking(ChunkingPolicy::Static)
            .with_probe(false);
        assert_eq!(cfg.kernel, Some(KernelKind::FusedSimd));
        assert_eq!(cfg.threads, 2);
        assert_eq!(cfg.chunking, ChunkingPolicy::Static);
        assert!(!cfg.probe);
    }

    #[test]
    fn chunking_policy_names_round_trip() {
        for p in [ChunkingPolicy::Static, ChunkingPolicy::Guided] {
            assert_eq!(parse_chunking(p.as_str()), Ok(p));
            assert_eq!(p.to_string(), p.as_str());
        }
    }
}
