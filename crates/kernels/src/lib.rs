//! LBM kernel engine for the APR-RBC reproduction.
//!
//! The paper's performance story (§3.6, Table 1) treats the lattice update
//! and distribution storage as the scaling bottleneck; this crate is the
//! dedicated home for that inner loop. It provides:
//!
//! - [`d3q19`]: the D3Q19 velocity set and BGK/Guo closed forms (moved
//!   down from `apr-lattice`, which re-exports them).
//! - [`adjacency`]: per-node streaming stencils compiled to flat op tables
//!   at geometry-freeze time.
//! - [`ReferenceKernel`]: the solver's original two-pass collide + pull
//!   stream, kept verbatim as the equivalence baseline.
//! - [`FusedSwapKernel`]: in-place swap streaming fused with collision
//!   into a single parallel region — no second distribution array, one
//!   pool barrier per step instead of two, bit-identical results.
//! - [`FusedSimdKernel`]: the swap-streaming adjacency with the BGK
//!   collision vectorized four nodes wide ([`simd`]), bit-identical to
//!   both of the above.
//! - [`runtime`]: the unified [`RuntimeConfig`] surface — one typed
//!   parser for `APR_KERNEL` / `APR_THREADS` / `APR_CHUNKING` /
//!   `APR_KERNEL_PROBE`, installed process-wide.
//!
//! Backends implement [`KernelBackend`] and are selected per lattice by
//! [`KernelKind`], from the installed [`RuntimeConfig`] or the engine
//! builder.
#![cfg_attr(feature = "portable-simd", feature(portable_simd))]

pub mod adjacency;
pub mod d3q19;
mod fused;
mod reference;
pub mod runtime;
pub mod simd;
mod view;

pub use adjacency::{neighbor_index, AdjacencyTable, NodeKind};
pub use fused::FusedSwapKernel;
pub use reference::ReferenceKernel;
pub use runtime::{ChunkingPolicy, RuntimeConfig, RuntimeConfigError};
pub use simd::FusedSimdKernel;
pub use view::{stream_grain, LatticeView, NodeClass};

/// Selectable kernel backend variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelKind {
    /// Two-array collide + pull-stream — the equivalence baseline.
    Reference,
    /// Fused in-place swap streaming.
    FusedSwap,
    /// Swap streaming with the collision vectorized 4 nodes wide
    /// (default when the probe is disabled or when it probes fastest).
    FusedSimd,
}

impl KernelKind {
    /// Stable lowercase name, as accepted by `APR_KERNEL`.
    pub fn as_str(self) -> &'static str {
        match self {
            KernelKind::Reference => "reference",
            KernelKind::FusedSwap => "fused",
            KernelKind::FusedSimd => "simd",
        }
    }

    /// Whether this backend keeps distributions direction-reversed
    /// between the collide and stream halves (see
    /// [`KernelBackend::reversed_between_halves`]). Checkpoint restore
    /// uses this to translate stored mid-step state.
    pub fn reversed_storage(self) -> bool {
        matches!(self, KernelKind::FusedSwap | KernelKind::FusedSimd)
    }
}

impl std::fmt::Display for KernelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Kernel selection from the `APR_KERNEL` environment variable:
/// `reference`, `fused`, or `simd` force a variant, `auto`/unset (`None`)
/// defers to the caller's default (the solver runs a startup micro-probe).
///
/// # Panics
/// Panics on an unrecognized value — a silently ignored typo here would
/// invalidate a benchmark run.
#[deprecated(
    since = "0.2.0",
    note = "use RuntimeConfig::from_env (typed error instead of panic) or \
            runtime::env_kernel"
)]
pub fn kernel_from_env() -> Option<KernelKind> {
    match runtime::env_kernel() {
        Ok(k) => k,
        Err(e) => panic!("{e}"),
    }
}

/// A lattice kernel backend: one collision/streaming strategy.
///
/// The contract every backend must honour:
///
/// - **Bit-identity**: for any geometry and any thread count, the
///   distributions, densities and velocities visible *at step boundaries*
///   (after `stream`) are bit-identical to [`ReferenceKernel`]'s.
/// - **Split halves**: `collide` then `stream` must equal `step`; between
///   the halves a backend may keep distributions in a private storage
///   order, declared via [`Self::reversed_between_halves`] so the solver
///   can translate its accessors.
/// - **Determinism**: results never depend on the `apr-exec` lane count
///   or on the chunking policy in effect.
pub trait KernelBackend {
    /// Which variant this is.
    fn kind(&self) -> KernelKind;
    /// Collision half-step over every fluid node.
    fn collide(&mut self, view: &mut LatticeView);
    /// Streaming half-step (bounce-back and link transport; the solver
    /// applies velocity/pressure boundary rebuilds afterwards).
    fn stream(&mut self, view: &mut LatticeView);
    /// Full step; backends may override with a fused implementation.
    fn step(&mut self, view: &mut LatticeView) {
        self.collide(view);
        self.stream(view);
    }
    /// Whether distributions are stored direction-reversed between
    /// `collide` and `stream`.
    fn reversed_between_halves(&self) -> bool {
        false
    }
    /// Auxiliary heap memory held by this backend (scratch arrays, op
    /// tables) — reported through the memory-accounting surface.
    fn scratch_bytes(&self) -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_kind_names_round_trip() {
        assert_eq!(KernelKind::Reference.as_str(), "reference");
        assert_eq!(KernelKind::FusedSwap.as_str(), "fused");
        assert_eq!(KernelKind::FusedSimd.as_str(), "simd");
        assert_eq!(format!("{}", KernelKind::FusedSimd), "simd");
    }

    #[test]
    fn reversed_storage_matches_backend_contract() {
        assert!(!KernelKind::Reference.reversed_storage());
        assert!(KernelKind::FusedSwap.reversed_storage());
        assert!(KernelKind::FusedSimd.reversed_storage());
    }
}
