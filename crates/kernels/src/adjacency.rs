//! Precomputed streaming adjacency.
//!
//! `Lattice::stream` historically resolved every link with a
//! branch-per-axis periodic-wrap closure plus a `HashMap` probe for
//! moving-wall data — per link, per step. This module does that work once,
//! at geometry-freeze time, compiling the whole streaming stencil into a
//! flat table of per-link *ops* that both kernel backends can replay with
//! nothing but indexed loads.
//!
//! ## Op encoding
//!
//! One `u32` per `(node, direction)` slot, indexed `node * 19 + i`:
//! a 3-bit tag in the top bits and a 29-bit payload (partner node index or
//! moving-coefficient index) below. For a fluid node `n` and direction `i`,
//! pull-streaming wants slot `(n, i)` to end up holding the post-collision
//! population `f*_i(m)` of the source node `m = n − c_i`. After the fused
//! kernel's collision phase stores each node's populations
//! *direction-reversed* (slot `(n, i)` holds `f*_opp(i)(n)`), every boundary
//! case reduces to one of five ops:
//!
//! - [`TAG_SWAP`]: `m` is fluid — exchange slots `(n, i) ↔ (m, opp(i))`.
//!   Emitted only for the nine [`FWD`] directions so each opposite pair is
//!   exchanged exactly once.
//! - [`TAG_DONE`]: nothing to do — the rest direction, or a backward
//!   direction whose exchange is owned by the fluid partner's `SWAP`.
//! - [`TAG_LOAD`]: `m` is a velocity/pressure boundary node — copy its
//!   (naturally-stored, collision-exempt) population: `f[n,i] ← f[m,i]`.
//! - [`TAG_BOUNCE`]: `m` is a stationary wall/exterior or outside the
//!   domain — halfway bounce-back pulls the node's own opposite
//!   population, which is exactly what the reversed store already placed in
//!   slot `(n, i)`. A no-op at stream time.
//! - [`TAG_MOVING`]: like bounce, plus the moving-wall momentum term
//!   `6 w_i ρ(n) (c_i · u_wall)`; the `ρ`-independent factor is precomputed
//!   in [`AdjacencyTable::moving_coeff`].
//!
//! Every op touches a distinct slot set (a `SWAP` owns its pair; the only
//! would-be second writer of a `LOAD`/`BOUNCE`/`MOVING` slot is the source
//! node's own `SWAP`, and those sources are by definition not fluid), so
//! ops may execute in any order, on any lane — streaming becomes
//! embarrassingly parallel *and* bit-deterministic.
//!
//! Interior nodes whose 18 neighbours are all fluid — the overwhelming bulk
//! of a dense box — are classified [`NodeKind::Fast`] and skip the table
//! entirely at run time: their nine swaps use the constant flat offsets in
//! [`AdjacencyTable::fwd_offset`].

use crate::d3q19::{C, OPPOSITE, Q, W};
use crate::view::NodeClass;

/// The nine "forward" directions: `c_i` lexicographically positive in
/// `(z, y, x)` priority, matching the flat index order
/// `node = x + nx·(y + ny·z)`. Each opposite pair has exactly one member
/// here, and for a forward direction the pull source `m = n − c_i` has a
/// smaller flat index than `n` whenever the link does not wrap.
pub const FWD: [usize; 9] = [1, 3, 5, 7, 10, 11, 14, 15, 18];

const IS_FWD: [bool; Q] = {
    let mut t = [false; Q];
    let mut k = 0;
    while k < FWD.len() {
        t[FWD[k]] = true;
        k += 1;
    }
    t
};

/// No stream-time work for this slot.
pub const TAG_DONE: u32 = 0;
/// Exchange slots `(n, i) ↔ (payload, opp(i))`.
pub const TAG_SWAP: u32 = 1;
/// Copy `f[payload, i]` into slot `(n, i)`.
pub const TAG_LOAD: u32 = 2;
/// Halfway bounce-back off a stationary obstacle: a no-op after the
/// reversed store.
pub const TAG_BOUNCE: u32 = 3;
/// Bounce-back off a moving wall: add the momentum term built from
/// `moving_coeff[payload]` and `ρ(n)`.
pub const TAG_MOVING: u32 = 4;
/// Bit position of the tag within an op word.
pub const TAG_SHIFT: u32 = 29;
/// Mask selecting the payload bits of an op word.
pub const PAYLOAD_MASK: u32 = (1 << TAG_SHIFT) - 1;

/// Per-node streaming classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum NodeKind {
    /// Non-fluid: no collision, no ops.
    Skip = 0,
    /// Interior fluid with 18 fluid neighbours: nine constant-offset swaps,
    /// no table reads.
    Fast = 1,
    /// Fluid near a boundary or a periodic wrap: replay the op table.
    Slow = 2,
}

/// Neighbour flat index of `(x, y, z)` displaced by `c_i`, respecting
/// per-axis periodicity; `None` if the displacement leaves a non-periodic
/// domain. The free-function form of `Lattice::neighbor`, shared so the
/// table builder and the solver agree on wrap semantics by construction.
#[inline]
pub fn neighbor_index(
    dims: [usize; 3],
    periodic: [bool; 3],
    x: usize,
    y: usize,
    z: usize,
    i: usize,
) -> Option<usize> {
    let d = [dims[0] as i64, dims[1] as i64, dims[2] as i64];
    let mut p = [
        x as i64 + C[i][0] as i64,
        y as i64 + C[i][1] as i64,
        z as i64 + C[i][2] as i64,
    ];
    for a in 0..3 {
        if p[a] < 0 || p[a] >= d[a] {
            if periodic[a] {
                p[a] = (p[a] + d[a]) % d[a];
            } else {
                return None;
            }
        }
    }
    Some((p[0] + d[0] * (p[1] + d[1] * p[2])) as usize)
}

/// The compiled streaming stencil of one lattice geometry.
#[derive(Debug, Clone)]
pub struct AdjacencyTable {
    /// One op word per `(node, direction)` slot, indexed `node * 19 + i`.
    pub ops: Vec<u32>,
    /// Per-node execution class.
    pub kind: Vec<NodeKind>,
    /// Precomputed `(6 w_i, c_i · u_wall)` factor pairs for [`TAG_MOVING`]
    /// ops. Kept as two factors — not pre-multiplied — so the runtime can
    /// evaluate `6 w_i · ρ · (c·u)` in the reference kernel's exact
    /// association order and stay bit-identical.
    pub moving_coeff: Vec<[f64; 2]>,
    /// Flat-index offsets of the nine [`FWD`] pull sources (`m = n − off`),
    /// valid for interior nodes. All strictly positive.
    pub fwd_offset: [usize; 9],
    /// Fluid-node count per z-plane — the cost model for guided chunking:
    /// a sparse tube plane costs what its fluid nodes cost, not what its
    /// bounding box suggests.
    pub fluid_per_plane: Vec<u32>,
    node_count: usize,
}

impl AdjacencyTable {
    /// Compile the streaming stencil for a lattice geometry.
    ///
    /// `moving_walls` lists `(node, wall velocity)` sorted by node index.
    ///
    /// # Panics
    /// Panics if the node count exceeds the 29-bit payload range.
    pub fn build(
        nx: usize,
        ny: usize,
        nz: usize,
        periodic: [bool; 3],
        flags: &[NodeClass],
        moving_walls: &[(usize, [f64; 3])],
    ) -> Self {
        let n = nx * ny * nz;
        assert_eq!(flags.len(), n);
        assert!(
            n < (1usize << TAG_SHIFT),
            "lattice too large for 29-bit adjacency payloads: {n} nodes"
        );
        debug_assert!(moving_walls.windows(2).all(|w| w[0].0 < w[1].0));
        let dims = [nx, ny, nz];
        let mut ops = vec![TAG_DONE; n * Q];
        let mut kind = vec![NodeKind::Skip; n];
        let mut moving_coeff = Vec::new();
        let mut fluid_per_plane = vec![0u32; nz];
        let mut fwd_offset = [0usize; 9];
        for (k, &i) in FWD.iter().enumerate() {
            let off = C[i][0] as i64 + nx as i64 * (C[i][1] as i64 + ny as i64 * C[i][2] as i64);
            // Only Fast (interior, dims ≥ 3) nodes ever use these offsets;
            // degenerate dims can make them non-positive, but then no node
            // qualifies as Fast.
            debug_assert!(
                off > 0 || nx < 3 || ny < 3 || nz < 3,
                "forward offset for direction {i}"
            );
            fwd_offset[k] = off.max(0) as usize;
        }
        let moving = |node: usize| -> Option<[f64; 3]> {
            moving_walls
                .binary_search_by_key(&node, |e| e.0)
                .ok()
                .map(|j| moving_walls[j].1)
        };
        for (z, plane_fluid) in fluid_per_plane.iter_mut().enumerate() {
            for y in 0..ny {
                for x in 0..nx {
                    let node = x + nx * (y + ny * z);
                    if flags[node] != NodeClass::Fluid {
                        continue;
                    }
                    *plane_fluid += 1;
                    let mut fast =
                        x >= 1 && x + 1 < nx && y >= 1 && y + 1 < ny && z >= 1 && z + 1 < nz;
                    for i in 1..Q {
                        // Pull source of slot (node, i): the neighbour the
                        // population streamed in from, one step along −c_i.
                        let src = neighbor_index(dims, periodic, x, y, z, OPPOSITE[i]);
                        if src.map(|m| flags[m] != NodeClass::Fluid).unwrap_or(true) {
                            fast = false;
                        }
                        let op = match src {
                            None => TAG_BOUNCE << TAG_SHIFT,
                            Some(m) => match flags[m] {
                                NodeClass::Fluid => {
                                    if IS_FWD[i] {
                                        (TAG_SWAP << TAG_SHIFT) | m as u32
                                    } else {
                                        TAG_DONE
                                    }
                                }
                                NodeClass::Velocity | NodeClass::Pressure => {
                                    (TAG_LOAD << TAG_SHIFT) | m as u32
                                }
                                NodeClass::Wall => match moving(m) {
                                    Some(uw) => {
                                        let cu = C[i][0] as f64 * uw[0]
                                            + C[i][1] as f64 * uw[1]
                                            + C[i][2] as f64 * uw[2];
                                        let idx = moving_coeff.len() as u32;
                                        assert!(idx < PAYLOAD_MASK, "moving-coeff overflow");
                                        moving_coeff.push([6.0 * W[i], cu]);
                                        (TAG_MOVING << TAG_SHIFT) | idx
                                    }
                                    None => TAG_BOUNCE << TAG_SHIFT,
                                },
                                NodeClass::Exterior => TAG_BOUNCE << TAG_SHIFT,
                            },
                        };
                        ops[node * Q + i] = op;
                    }
                    kind[node] = if fast { NodeKind::Fast } else { NodeKind::Slow };
                }
            }
        }
        Self {
            ops,
            kind,
            moving_coeff,
            fwd_offset,
            fluid_per_plane,
            node_count: n,
        }
    }

    /// Number of nodes the table was built for.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Heap footprint of the table in bytes — the fused backend's answer to
    /// the reference backend's `n·19·8`-byte scratch array.
    pub fn bytes(&self) -> usize {
        self.ops.len() * std::mem::size_of::<u32>()
            + self.kind.len()
            + self.moving_coeff.len() * std::mem::size_of::<[f64; 2]>()
            + self.fluid_per_plane.len() * std::mem::size_of::<u32>()
            + std::mem::size_of::<[usize; 9]>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_fluid(n: usize) -> Vec<NodeClass> {
        vec![NodeClass::Fluid; n]
    }

    #[test]
    fn fwd_is_one_per_opposite_pair_and_positive() {
        let mut seen = [false; Q];
        for &i in &FWD {
            assert!(!seen[i] && !seen[OPPOSITE[i]], "pair {i} split twice");
            seen[i] = true;
            seen[OPPOSITE[i]] = true;
            // Lexicographic (z, y, x) positivity ⇒ positive flat offset.
            let c = C[i];
            assert!(
                c[2] > 0 || (c[2] == 0 && (c[1] > 0 || (c[1] == 0 && c[0] > 0))),
                "direction {i} not forward"
            );
        }
        assert!(seen.iter().skip(1).all(|&s| s), "every moving dir covered");
    }

    #[test]
    fn periodic_box_is_all_swaps() {
        let (nx, ny, nz) = (4, 4, 4);
        let flags = all_fluid(nx * ny * nz);
        let t = AdjacencyTable::build(nx, ny, nz, [true; 3], &flags, &[]);
        let mut swaps = 0;
        for node in 0..nx * ny * nz {
            assert_ne!(t.kind[node], NodeKind::Skip);
            for i in 1..Q {
                let op = t.ops[node * Q + i];
                match op >> TAG_SHIFT {
                    TAG_SWAP => {
                        assert!(IS_FWD[i]);
                        swaps += 1;
                        let m = (op & PAYLOAD_MASK) as usize;
                        // The partner's mirrored slot must be DONE (the
                        // exchange is owned here, not there).
                        assert_eq!(t.ops[m * Q + OPPOSITE[i]], TAG_DONE);
                    }
                    TAG_DONE => assert!(!IS_FWD[i]),
                    tag => panic!("unexpected tag {tag} in periodic box"),
                }
            }
        }
        assert_eq!(swaps, nx * ny * nz * FWD.len(), "one swap per link pair");
        // Interior 2×2×2 block is Fast, wrap-touching shell is Slow.
        let fast = t.kind.iter().filter(|&&k| k == NodeKind::Fast).count();
        assert_eq!(fast, 8);
    }

    #[test]
    fn fast_offsets_match_table_payloads() {
        let (nx, ny, nz) = (5, 6, 7);
        let flags = all_fluid(nx * ny * nz);
        let t = AdjacencyTable::build(nx, ny, nz, [false; 3], &flags, &[]);
        for node in 0..nx * ny * nz {
            if t.kind[node] != NodeKind::Fast {
                continue;
            }
            for (k, &i) in FWD.iter().enumerate() {
                let op = t.ops[node * Q + i];
                assert_eq!(op >> TAG_SHIFT, TAG_SWAP);
                assert_eq!((op & PAYLOAD_MASK) as usize, node - t.fwd_offset[k]);
            }
        }
    }

    #[test]
    fn degenerate_periodic_axis_self_swaps() {
        // A 1-node-wide periodic axis wraps a node onto itself; the swap
        // must still be emitted exactly once (slots i and opp(i) differ).
        let t = AdjacencyTable::build(1, 1, 4, [true; 3], &all_fluid(4), &[]);
        for node in 0..4 {
            let op = t.ops[node * Q + 1]; // +x wraps to self
            assert_eq!(op >> TAG_SHIFT, TAG_SWAP);
            assert_eq!((op & PAYLOAD_MASK) as usize, node);
        }
    }

    #[test]
    fn walls_and_bcs_get_the_right_tags() {
        // 3×1×1 closed tube: wall | fluid | velocity-inlet.
        let flags = [NodeClass::Wall, NodeClass::Fluid, NodeClass::Velocity];
        let t = AdjacencyTable::build(3, 1, 1, [false; 3], &flags, &[]);
        assert_eq!(t.kind[0], NodeKind::Skip);
        assert_eq!(t.kind[2], NodeKind::Skip);
        assert_eq!(t.kind[1], NodeKind::Slow);
        // Direction +x pulls from node 0 (wall): bounce.
        assert_eq!(t.ops[Q + 1] >> TAG_SHIFT, TAG_BOUNCE);
        // Direction −x pulls from node 2 (velocity): load.
        let op = t.ops[Q + 2];
        assert_eq!(op >> TAG_SHIFT, TAG_LOAD);
        assert_eq!((op & PAYLOAD_MASK) as usize, 2);
        // Off-axis directions leave the (non-periodic) domain: bounce.
        assert_eq!(t.ops[Q + 3] >> TAG_SHIFT, TAG_BOUNCE);
    }

    #[test]
    fn moving_wall_coefficients_match_reference_formula() {
        let uw = [0.05, -0.02, 0.0];
        let flags = [NodeClass::Wall, NodeClass::Fluid, NodeClass::Wall];
        let t = AdjacencyTable::build(3, 1, 1, [false; 3], &flags, &[(0, uw)]);
        let op = t.ops[Q + 1]; // +x pulls from moving node 0
        assert_eq!(op >> TAG_SHIFT, TAG_MOVING);
        let [six_w, cu] = t.moving_coeff[(op & PAYLOAD_MASK) as usize];
        let expect_cu = C[1][0] as f64 * uw[0] + C[1][1] as f64 * uw[1];
        assert_eq!((six_w, cu), (6.0 * W[1], expect_cu));
        // The stationary wall on the other side stays a plain bounce.
        assert_eq!(t.ops[Q + 2] >> TAG_SHIFT, TAG_BOUNCE);
    }

    #[test]
    fn fluid_per_plane_counts_fluid_nodes_only() {
        // 2×1×2: plane 0 = fluid|wall, plane 1 = fluid|fluid.
        let flags = [
            NodeClass::Fluid,
            NodeClass::Wall,
            NodeClass::Fluid,
            NodeClass::Fluid,
        ];
        let t = AdjacencyTable::build(2, 1, 2, [true; 3], &flags, &[]);
        assert_eq!(t.fluid_per_plane, vec![1, 2]);
        let full = AdjacencyTable::build(4, 4, 4, [true; 3], &all_fluid(64), &[]);
        assert_eq!(full.fluid_per_plane, vec![16; 4]);
    }

    #[test]
    fn table_is_compact() {
        let n = 32 * 32 * 32;
        let t = AdjacencyTable::build(32, 32, 32, [true; 3], &all_fluid(n), &[]);
        // Strictly smaller than the n·19·8-byte scratch array it replaces.
        assert!(t.bytes() < n * Q * 8, "{} vs {}", t.bytes(), n * Q * 8);
    }
}
