//! The reference two-pass kernel: the solver's original collide and
//! pull-stream loops, kept verbatim so every other backend can be
//! equivalence-tested against it bit-for-bit.
//!
//! Two deliberate fixes ride along without changing any produced value:
//! the moving-wall lookup is skipped wholesale when the lattice has no
//! moving walls (it used to probe a `HashMap` for every wall link), and the
//! streaming chunk grain follows [`stream_grain`] instead of a hard-coded
//! one z-slab per chunk (the chunk layout never affects the numbers — every
//! write is slot-local).

use crate::d3q19::{equilibrium_all, guo_force_term, C, OPPOSITE, Q, W};
use crate::view::{stream_grain, LatticeView, NodeClass};
use crate::{KernelBackend, KernelKind};
use apr_exec::UnsafeSlice;

/// BGK collision with Guo forcing at one node: returns the density, the
/// (half-force corrected) velocity, and the 19 post-collision populations.
/// This is the exact arithmetic of the original `Lattice::collide` body —
/// both backends route through it so "bit-identical" holds by construction.
#[inline]
pub(crate) fn bgk_post_collision(
    fs: &[f64],
    g: &[f64],
    bf: [f64; 3],
    tau: f64,
) -> (f64, [f64; 3], [f64; Q]) {
    let omega = 1.0 / tau;
    let force_scale = 1.0 - 0.5 * omega;
    let mut r = 0.0;
    let mut m = [0.0f64; 3];
    for i in 0..Q {
        r += fs[i];
        m[0] += fs[i] * C[i][0] as f64;
        m[1] += fs[i] * C[i][1] as f64;
        m[2] += fs[i] * C[i][2] as f64;
    }
    let gx = g[0] + bf[0];
    let gy = g[1] + bf[1];
    let gz = g[2] + bf[2];
    let ux = (m[0] + 0.5 * gx) / r;
    let uy = (m[1] + 0.5 * gy) / r;
    let uz = (m[2] + 0.5 * gz) / r;
    let feq = equilibrium_all(r, ux, uy, uz);
    let mut post = [0.0; Q];
    for i in 0..Q {
        let forcing = guo_force_term(i, ux, uy, uz, gx, gy, gz);
        post[i] = fs[i] + (omega * (feq[i] - fs[i]) + force_scale * forcing);
    }
    (r, [ux, uy, uz], post)
}

/// Relaxation time at `node` under an optional per-node τ field.
#[inline]
pub(crate) fn tau_at(tau_field: Option<&[f64]>, global_tau: f64, node: usize) -> f64 {
    match tau_field {
        Some(f) => f[node],
        None => global_tau,
    }
}

/// The original two-array collide → pull-stream pair behind the
/// [`KernelBackend`] interface. Owns the second distribution array as
/// private scratch (sized lazily on first stream), so the solver itself no
/// longer carries `f_tmp`.
#[derive(Debug, Clone, Default)]
pub struct ReferenceKernel {
    scratch: Vec<f64>,
}

impl ReferenceKernel {
    /// New kernel with no scratch allocated yet.
    pub fn new() -> Self {
        Self::default()
    }
}

impl KernelBackend for ReferenceKernel {
    fn kind(&self) -> KernelKind {
        KernelKind::Reference
    }

    /// BGK collision with Guo forcing on every fluid node; updates stored
    /// `rho` and `vel`. One z-plane of nodes per chunk; every write is
    /// node-local, so the result is independent of the thread count.
    fn collide(&mut self, view: &mut LatticeView) {
        let global_tau = view.tau;
        let bf = view.body_force;
        let flags = view.flags;
        let tau_field = view.tau_field;
        let force = view.force;
        let n = view.node_count();
        let plane = view.nx * view.ny;
        let f = UnsafeSlice::new(view.f.as_mut_slice());
        let rho = UnsafeSlice::new(&mut view.rho[..]);
        let vel = UnsafeSlice::new(&mut view.vel[..]);
        let pool = apr_exec::current();
        pool.par_for_ranges(n, plane, |_, range| {
            for node in range {
                if flags[node] != NodeClass::Fluid {
                    continue;
                }
                // SAFETY: chunk ranges are disjoint, so each node (and its
                // f/rho/vel storage) is touched by exactly one lane.
                let fs = unsafe { f.slice_mut(node * Q, Q) };
                let rho = unsafe { &mut rho.slice_mut(node, 1)[0] };
                let vel = unsafe { vel.slice_mut(node * 3, 3) };
                let g = &force[node * 3..node * 3 + 3];
                let tau = tau_at(tau_field, global_tau, node);
                let (r, u, post) = bgk_post_collision(fs, g, bf, tau);
                *rho = r;
                vel.copy_from_slice(&u);
                fs.copy_from_slice(&post);
            }
        });
        if apr_telemetry::is_enabled() {
            apr_telemetry::gauge_set(
                "exec.lattice.collide.utilization",
                pool.last_run_stats().utilization(),
            );
        }
    }

    /// Pull-streaming with halfway bounce-back (optionally moving walls).
    /// Parallel over z-slabs of the scratch array; each slab is written by
    /// one lane while `f` is read-only, so the result is thread-count
    /// independent.
    fn stream(&mut self, view: &mut LatticeView) {
        let (nx, ny, nz) = (view.nx, view.ny, view.nz);
        let plane = nx * ny;
        let f: &[f64] = view.f;
        let flags = view.flags;
        let has_moving_walls = !view.moving_walls.is_empty();
        let moving_walls = view.moving_walls;
        let moving_wall = |src: usize| -> Option<[f64; 3]> {
            moving_walls
                .binary_search_by_key(&src, |e| e.0)
                .ok()
                .map(|j| moving_walls[j].1)
        };
        let rho: &[f64] = view.rho;
        let periodic = view.periodic;
        let neighbor = move |x: usize, y: usize, z: usize, i: usize| -> Option<usize> {
            crate::adjacency::neighbor_index([nx, ny, nz], periodic, x, y, z, i)
        };
        self.scratch.resize(f.len(), 0.0);
        let f_tmp = UnsafeSlice::new(&mut self.scratch);
        let pool = apr_exec::current();
        let grain = stream_grain(nz, pool.threads());
        pool.par_for_ranges(nz, grain, |_, zrange| {
            for z in zrange {
                // SAFETY: z-slabs are disjoint and each z is visited once.
                let slab = unsafe { f_tmp.slice_mut(z * plane * Q, plane * Q) };
                for y in 0..ny {
                    for x in 0..nx {
                        let node = x + nx * (y + ny * z);
                        let local = (x + nx * y) * Q;
                        match flags[node] {
                            NodeClass::Fluid => {
                                for i in 0..Q {
                                    // Pull from the node the population left.
                                    let o = OPPOSITE[i];
                                    let pulled = match neighbor(x, y, z, o) {
                                        Some(src)
                                            if matches!(
                                                flags[src],
                                                NodeClass::Fluid
                                                    | NodeClass::Velocity
                                                    | NodeClass::Pressure
                                            ) =>
                                        {
                                            f[src * Q + i]
                                        }
                                        Some(src) => {
                                            // Wall / exterior: halfway
                                            // bounce-back, with moving-wall
                                            // momentum term.
                                            let mut v = f[node * Q + o];
                                            if has_moving_walls {
                                                if let Some(uw) = moving_wall(src) {
                                                    let cu = C[i][0] as f64 * uw[0]
                                                        + C[i][1] as f64 * uw[1]
                                                        + C[i][2] as f64 * uw[2];
                                                    v += 6.0 * W[i] * rho[node] * cu;
                                                }
                                            }
                                            v
                                        }
                                        None => f[node * Q + o],
                                    };
                                    slab[local + i] = pulled;
                                }
                            }
                            _ => {
                                // Non-fluid nodes carry their distributions
                                // forward; BC nodes are rebuilt right after.
                                slab[local..local + Q].copy_from_slice(&f[node * Q..node * Q + Q]);
                            }
                        }
                    }
                }
            }
        });
        if apr_telemetry::is_enabled() {
            apr_telemetry::gauge_set(
                "exec.lattice.stream.utilization",
                pool.last_run_stats().utilization(),
            );
            apr_telemetry::gauge_set("lattice.stream.grain", grain as f64);
        }
        std::mem::swap(view.f, &mut self.scratch);
    }

    fn reversed_between_halves(&self) -> bool {
        false
    }

    fn scratch_bytes(&self) -> usize {
        self.scratch.len() * std::mem::size_of::<f64>()
    }
}
