//! The fused swap-streaming kernel: collide + stream in one parallel
//! region, in place, with no second distribution array.
//!
//! ## How it works
//!
//! **Collision (phase A)** runs the exact reference BGK arithmetic
//! ([`crate::reference::bgk_post_collision`]) but stores each node's
//! post-collision populations *direction-reversed*: slot `(n, i)` receives
//! `f*_opp(i)(n)`. That single indexing trick makes halfway bounce-back a
//! no-op (the bounced value is already in place) and turns fluid–fluid
//! streaming into a pure exchange of two slots — see the op taxonomy in
//! [`crate::adjacency`].
//!
//! **Streaming (phase B)** replays the precomputed op table. Every op
//! touches a slot set no other op touches, so ops can run in any order on
//! any lane and the result is bit-identical to the reference backend for
//! every thread count — the values moved are the very doubles the reference
//! kernel would have copied.
//!
//! **Fusion with guided chunking.** In [`KernelBackend::step`] both phases
//! run inside a *single* pool dispatch. The node space is cut into
//! fine-grained chunks costed by **fluid-node count** per z-plane
//! ([`crate::adjacency::AdjacencyTable::fluid_per_plane`] through
//! [`apr_exec::ChunkPlan::from_costs`]), and lanes claim chunks through a
//! [`apr_exec::GuidedScheduler`]: either from a shared cursor in fixed
//! ascending order ([`crate::ChunkingPolicy::Guided`], the default) or
//! from the legacy contiguous per-lane pre-partition
//! ([`crate::ChunkingPolicy::Static`], kept for A/B runs). Within a chunk
//! each node collides and then executes its ops immediately; a swap whose
//! partner lies outside the already-collided part of the chunk goes into a
//! **per-chunk** deferral list.
//!
//! Lanes that run out of chunks don't park at the barrier: they claim
//! completed chunks from a drain cursor and execute every deferred swap
//! whose partner chunk has also completed, overlapping the drain with the
//! tail of the sweep. Whatever remains (partners still in flight, chunks
//! claimed before completion) is finished sequentially after the barrier.
//!
//! **Determinism argument** (DESIGN.md §14): the chunk layout is a pure
//! function of the plan inputs; every op owns a pairwise-disjoint slot
//! set; a deferred swap is a pure exchange of two already-final doubles,
//! executed after both endpoints' collisions (enforced by the Release
//! `mark_done` / Acquire `is_done` pair) and exactly once (inline, xor
//! removed from its list by the one drain lane holding that chunk, xor in
//! the post-barrier sweep). The claim interleaving is therefore
//! unobservable in the output — bit-identical for any thread count, any
//! chunking policy, and any scheduling accident.
//!
//! Versus the reference backend this halves distribution-array memory
//! traffic (no second array to write and swap), eliminates the `n·19·8`-byte
//! scratch allocation entirely (the op table is ~17× smaller), and pays one
//! pool barrier per step instead of two.
//!
//! The split [`KernelBackend::collide`]/[`KernelBackend::stream`] halves
//! remain available for grid couplings that impose post-collision states
//! between them; between the halves the distributions sit in reversed
//! order, which the solver tracks as its *swap parity* and transparently
//! untangles in its accessors.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::adjacency::{
    AdjacencyTable, NodeKind, FWD, PAYLOAD_MASK, TAG_BOUNCE, TAG_DONE, TAG_LOAD, TAG_MOVING,
    TAG_SHIFT, TAG_SWAP,
};
use crate::d3q19::{OPPOSITE, Q};
use crate::reference::{bgk_post_collision, tau_at};
use crate::view::{stream_grain, LatticeView};
use crate::{ChunkingPolicy, KernelBackend, KernelKind};
use apr_exec::{ChunkPlan, GuidedScheduler, UnsafeSlice};

/// Deferred-swap encoding: `(node << 5) | direction` (19 < 2⁵ directions).
const DIR_BITS: u32 = 5;
const DIR_MASK: u64 = (1 << DIR_BITS) - 1;

/// Chunks handed out per pool lane: fine enough that a lane drawing cheap
/// chunks keeps pulling work, coarse enough that claim traffic stays
/// negligible next to a chunk's node sweep.
pub(crate) const CHUNKS_PER_LANE: usize = 8;

/// Swap slots `(n, i)` and `(m, opp(i))` through a shared raw view.
///
/// # Safety
/// The two slots must not be concurrently accessed by any other op — which
/// the adjacency construction guarantees (each op owns its slot set).
#[inline]
unsafe fn swap_slots(f: &UnsafeSlice<f64>, n: usize, i: usize, m: usize) {
    let a = &mut f.slice_mut(n * Q + i, 1)[0];
    let b = &mut f.slice_mut(m * Q + OPPOSITE[i], 1)[0];
    std::mem::swap(a, b);
}

/// Shared raw-view context for one fused pass: everything a per-chunk
/// closure needs to collide nodes and replay ops.
pub(crate) struct FusedCtx<'v> {
    pub table: &'v AdjacencyTable,
    pub f: UnsafeSlice<'v, f64>,
    pub rho: UnsafeSlice<'v, f64>,
    pub vel: UnsafeSlice<'v, f64>,
    pub force: &'v [f64],
    pub tau_field: Option<&'v [f64]>,
    pub global_tau: f64,
    pub bf: [f64; 3],
}

impl<'v> FusedCtx<'v> {
    pub(crate) fn new(view: &'v mut LatticeView<'_>, table: &'v AdjacencyTable) -> Self {
        Self {
            table,
            f: UnsafeSlice::new(view.f.as_mut_slice()),
            rho: UnsafeSlice::new(&mut view.rho[..]),
            vel: UnsafeSlice::new(&mut view.vel[..]),
            force: view.force,
            tau_field: view.tau_field,
            global_tau: view.tau,
            bf: view.body_force,
        }
    }
}

/// Collide one fluid node with the reference BGK arithmetic and store the
/// post-collision populations direction-reversed. Returns the density.
///
/// # Safety
/// The caller must be the sole accessor of `node`'s f/rho/vel storage.
#[inline]
pub(crate) unsafe fn collide_node_reversed(ctx: &FusedCtx, node: usize) -> f64 {
    let fs = ctx.f.slice_mut(node * Q, Q);
    let rho = &mut ctx.rho.slice_mut(node, 1)[0];
    let vel = ctx.vel.slice_mut(node * 3, 3);
    let g = &ctx.force[node * 3..node * 3 + 3];
    let tau = tau_at(ctx.tau_field, ctx.global_tau, node);
    let (r, u, post) = bgk_post_collision(fs, g, ctx.bf, tau);
    *rho = r;
    vel.copy_from_slice(&u);
    for i in 0..Q {
        fs[OPPOSITE[i]] = post[i];
    }
    r
}

/// The cost-balanced chunk plan for this geometry at `threads` lanes,
/// rebuilt only when the target chunk count changes (the geometry is fixed
/// for the kernel's lifetime). Chunks are z-plane-aligned and weighted by
/// fluid-node count, so a plane of walls never occupies a lane as long as
/// a plane of fluid.
pub(crate) fn costed_plan<'a>(
    table: &AdjacencyTable,
    plane: usize,
    cache: &'a mut Option<(usize, ChunkPlan)>,
    threads: usize,
) -> &'a ChunkPlan {
    let target = threads.max(1) * CHUNKS_PER_LANE;
    if cache.as_ref().map(|(t, _)| *t) != Some(target) {
        let costs: Vec<u64> = table.fluid_per_plane.iter().map(|&c| c as u64).collect();
        *cache = Some((target, ChunkPlan::from_costs(plane, &costs, target)));
    }
    &cache.as_ref().expect("plan cached above").1
}

/// Scalar fused sweep of one chunk: collide each node, then execute its
/// ops — inline when the partner has already collided *in this chunk's
/// sweep*, deferred into `pending` otherwise.
pub(crate) fn scalar_fused_chunk(ctx: &FusedCtx, range: Range<usize>, pending: &mut Vec<u64>) {
    let table = ctx.table;
    let lo = range.start;
    for node in range {
        let kind = table.kind[node];
        if kind == NodeKind::Skip {
            continue;
        }
        // Phase A. SAFETY: node-local storage, one owner per node (chunks
        // are disjoint and claimed exactly once).
        let r = unsafe { collide_node_reversed(ctx, node) };
        // Phase B, inline where the partner has already collided in this
        // chunk's sweep; deferred past the chunk otherwise.
        // SAFETY (all swap/load/moving arms): each op owns its slot set,
        // and no op of node `p` executes before `p`'s own collision except
        // via the drain (which gates on the partner chunk's completion).
        match kind {
            NodeKind::Fast => {
                for (k, &i) in FWD.iter().enumerate() {
                    let m = node - table.fwd_offset[k];
                    if m >= lo {
                        unsafe { swap_slots(&ctx.f, node, i, m) };
                    } else {
                        pending.push(((node as u64) << DIR_BITS) | i as u64);
                    }
                }
            }
            NodeKind::Slow => {
                for i in 1..Q {
                    let op = table.ops[node * Q + i];
                    let payload = (op & PAYLOAD_MASK) as usize;
                    match op >> TAG_SHIFT {
                        TAG_DONE | TAG_BOUNCE => {}
                        TAG_SWAP => {
                            if payload >= lo && payload < node {
                                unsafe { swap_slots(&ctx.f, node, i, payload) };
                            } else {
                                pending.push(((node as u64) << DIR_BITS) | i as u64);
                            }
                        }
                        // LOAD sources are boundary nodes: exempt from
                        // collision, so their populations are already final.
                        TAG_LOAD => unsafe {
                            ctx.f.slice_mut(node * Q + i, 1)[0] =
                                ctx.f.slice_mut(payload * Q + i, 1)[0];
                        },
                        TAG_MOVING => unsafe {
                            // Same association order as the reference:
                            // (6 w_i * rho) * (c.u_w).
                            let [six_w, cu] = table.moving_coeff[payload];
                            ctx.f.slice_mut(node * Q + i, 1)[0] += six_w * r * cu;
                        },
                        tag => unreachable!("corrupt op tag {tag}"),
                    }
                }
            }
            NodeKind::Skip => unreachable!(),
        }
    }
}

/// Op replay for a fully-collided chunk `[lo, hi)`: inline when the
/// partner lies anywhere *within the chunk* (both endpoints collided —
/// this is the two-pass form used after a whole-chunk SIMD collide),
/// deferred into `pending` otherwise.
pub(crate) fn replay_chunk_deferring(ctx: &FusedCtx, range: Range<usize>, pending: &mut Vec<u64>) {
    let table = ctx.table;
    let (lo, hi) = (range.start, range.end);
    for node in range {
        match table.kind[node] {
            NodeKind::Skip => {}
            // SAFETY (all arms): each op owns its slot set; inline
            // execution requires only that both endpoints have collided,
            // which holds for any partner inside this chunk.
            NodeKind::Fast => {
                for (k, &i) in FWD.iter().enumerate() {
                    let m = node - table.fwd_offset[k];
                    if m >= lo {
                        unsafe { swap_slots(&ctx.f, node, i, m) };
                    } else {
                        pending.push(((node as u64) << DIR_BITS) | i as u64);
                    }
                }
            }
            NodeKind::Slow => {
                for i in 1..Q {
                    let op = table.ops[node * Q + i];
                    let payload = (op & PAYLOAD_MASK) as usize;
                    match op >> TAG_SHIFT {
                        TAG_DONE | TAG_BOUNCE => {}
                        TAG_SWAP => {
                            if payload >= lo && payload < hi {
                                unsafe { swap_slots(&ctx.f, node, i, payload) };
                            } else {
                                pending.push(((node as u64) << DIR_BITS) | i as u64);
                            }
                        }
                        TAG_LOAD => unsafe {
                            ctx.f.slice_mut(node * Q + i, 1)[0] =
                                ctx.f.slice_mut(payload * Q + i, 1)[0];
                        },
                        TAG_MOVING => unsafe {
                            let [six_w, cu] = table.moving_coeff[payload];
                            let r = ctx.rho.slice_mut(node, 1)[0];
                            ctx.f.slice_mut(node * Q + i, 1)[0] += six_w * r * cu;
                        },
                        tag => unreachable!("corrupt op tag {tag}"),
                    }
                }
            }
        }
    }
}

/// The shared fused-step driver: claim chunks through a
/// [`GuidedScheduler`] (guided cursor or static pre-partition per
/// `chunking`), run `process` once per chunk, overlap the deferred-swap
/// drain with the sweep tail, and finish leftovers sequentially after the
/// barrier. `process(ctx, chunk, range, pending)` must fully collide and
/// replay its chunk, pushing cross-chunk swaps into `pending` encoded as
/// `(node << 5) | dir`.
pub(crate) fn run_fused_step(
    ctx: &FusedCtx,
    chunking: ChunkingPolicy,
    defer: &mut Vec<Vec<u64>>,
    plan: &ChunkPlan,
    process: impl Fn(&FusedCtx, usize, Range<usize>, &mut Vec<u64>) + Sync,
) {
    if plan.is_empty() {
        return;
    }
    let pool = apr_exec::current();
    let chunks = plan.chunks();
    if defer.len() < chunks {
        defer.resize_with(chunks, Vec::new);
    }
    for d in defer.iter_mut() {
        d.clear();
    }
    let table = ctx.table;
    let sched = match chunking {
        ChunkingPolicy::Guided => GuidedScheduler::guided(plan),
        ChunkingPolicy::Static => GuidedScheduler::preassigned(plan, pool.threads()),
    };
    let pending = UnsafeSlice::new(defer.as_mut_slice());
    let overlapped = AtomicUsize::new(0);
    pool.run(&|lane| {
        while let Some((c, range)) = sched.claim(lane) {
            // SAFETY: every chunk is claimed exactly once, so its
            // deferral list has one owner here.
            let list = unsafe { &mut pending.slice_mut(c, 1)[0] };
            process(ctx, c, range, list);
            sched.mark_done(c);
        }
        // Drain overlap: instead of idling at the barrier, execute
        // deferred swaps of completed chunks whose partner chunk has also
        // completed. Never waits (a claimed-but-unfinished chunk is simply
        // left for the post-barrier pass), so this cannot deadlock even
        // when the pool runs lanes inline.
        let mut ran = 0usize;
        while let Some(c) = sched.claim_drain() {
            if !sched.is_done(c) {
                continue;
            }
            // SAFETY: the drain cursor hands each chunk to one lane, and
            // `is_done` (Acquire) ordered the owner's pushes before us.
            let list = unsafe { &mut pending.slice_mut(c, 1)[0] };
            list.retain(|&e| {
                let node = (e >> DIR_BITS) as usize;
                let i = (e & DIR_MASK) as usize;
                let m = (table.ops[node * Q + i] & PAYLOAD_MASK) as usize;
                if sched.is_done(sched.chunk_of(m)) {
                    // SAFETY: both endpoints collided; the op owns its
                    // slot pair.
                    unsafe { swap_slots(&ctx.f, node, i, m) };
                    ran += 1;
                    false
                } else {
                    true
                }
            });
        }
        if ran > 0 {
            overlapped.fetch_add(ran, Ordering::Relaxed);
        }
    });
    // Post-barrier: every chunk is done; whatever the overlap drain left
    // behind executes here, in chunk order. Order is irrelevant to the
    // values (disjoint slot sets) but deterministic anyway.
    let mut leftover = 0usize;
    for list in defer[..chunks].iter() {
        leftover += list.len();
        for &e in list {
            let node = (e >> DIR_BITS) as usize;
            let i = (e & DIR_MASK) as usize;
            let m = (table.ops[node * Q + i] & PAYLOAD_MASK) as usize;
            // SAFETY: sequential, and each op owns its slot set.
            unsafe { swap_slots(&ctx.f, node, i, m) };
        }
    }
    if apr_telemetry::is_enabled() {
        let overlapped = overlapped.load(Ordering::Relaxed);
        apr_telemetry::gauge_set(
            "exec.lattice.step.utilization",
            pool.last_run_stats().utilization(),
        );
        apr_telemetry::gauge_set("lattice.step.chunks", chunks as f64);
        apr_telemetry::gauge_set(
            "lattice.step.deferred_swaps",
            (overlapped + leftover) as f64,
        );
        apr_telemetry::gauge_set("lattice.step.drain_leftover", leftover as f64);
    }
}

/// Streaming phase for reversed-stored populations: replay the op table
/// over the whole domain (every node has collided, so all ops run
/// inline). Chunk hand-out follows the view's chunking policy; either way
/// the values are slot-local and order-free.
pub(crate) fn stream_replay(view: &mut LatticeView, table: &AdjacencyTable, plan: &ChunkPlan) {
    let n = view.node_count();
    let plane = view.nx * view.ny;
    let chunking = view.chunking;
    let rho: &[f64] = view.rho;
    let f = UnsafeSlice::new(view.f.as_mut_slice());
    let pool = apr_exec::current();
    let grain = stream_grain(view.nz, pool.threads());
    let body = |range: Range<usize>| replay_range(table, &f, rho, range);
    match chunking {
        ChunkingPolicy::Guided => pool.par_for_guided(plan, |_, range| body(range)),
        ChunkingPolicy::Static => pool.par_for_ranges(n, plane * grain, |_, range| body(range)),
    }
    if apr_telemetry::is_enabled() {
        apr_telemetry::gauge_set(
            "exec.lattice.stream.utilization",
            pool.last_run_stats().utilization(),
        );
        apr_telemetry::gauge_set("lattice.stream.grain", grain as f64);
    }
}

/// Replay every op of `range` inline — valid only when *all* nodes have
/// already collided (the split-half stream).
fn replay_range(table: &AdjacencyTable, f: &UnsafeSlice<f64>, rho: &[f64], range: Range<usize>) {
    for node in range {
        match table.kind[node] {
            NodeKind::Skip => {}
            NodeKind::Fast => {
                for (k, &i) in FWD.iter().enumerate() {
                    let m = node - table.fwd_offset[k];
                    // SAFETY: this op is the sole owner of both slots.
                    unsafe { swap_slots(f, node, i, m) };
                }
            }
            NodeKind::Slow => {
                for i in 1..Q {
                    let op = table.ops[node * Q + i];
                    let payload = (op & PAYLOAD_MASK) as usize;
                    // SAFETY (all arms): each op owns its slot set.
                    match op >> TAG_SHIFT {
                        TAG_DONE | TAG_BOUNCE => {}
                        TAG_SWAP => unsafe { swap_slots(f, node, i, payload) },
                        TAG_LOAD => unsafe {
                            f.slice_mut(node * Q + i, 1)[0] = f.slice_mut(payload * Q + i, 1)[0];
                        },
                        TAG_MOVING => unsafe {
                            // Same association order as the reference:
                            // (6 w_i * rho) * (c.u_w).
                            let [six_w, cu] = table.moving_coeff[payload];
                            f.slice_mut(node * Q + i, 1)[0] += six_w * rho[node] * cu;
                        },
                        tag => unreachable!("corrupt op tag {tag}"),
                    }
                }
            }
        }
    }
}

/// Collision phase over the whole domain with reversed stores, dispatched
/// per the view's chunking policy. Shared by the scalar backend's split
/// half; the SIMD backend has its own vectorized equivalent.
pub(crate) fn collide_reversed(view: &mut LatticeView, table: &AdjacencyTable, plan: &ChunkPlan) {
    let n = view.node_count();
    let plane = view.nx * view.ny;
    let chunking = view.chunking;
    let pool = apr_exec::current();
    let ctx = FusedCtx::new(view, table);
    let body = |range: Range<usize>| {
        for node in range {
            if ctx.table.kind[node] == NodeKind::Skip {
                continue;
            }
            // SAFETY: chunk ranges are disjoint; node storage is touched
            // by exactly one lane.
            unsafe { collide_node_reversed(&ctx, node) };
        }
    };
    match chunking {
        ChunkingPolicy::Guided => pool.par_for_guided(plan, |_, range| body(range)),
        ChunkingPolicy::Static => pool.par_for_ranges(n, plane, |_, range| body(range)),
    }
    if apr_telemetry::is_enabled() {
        apr_telemetry::gauge_set(
            "exec.lattice.collide.utilization",
            pool.last_run_stats().utilization(),
        );
    }
}

/// Heap bytes held by a per-chunk deferral-list set plus a cached plan —
/// shared accounting for both fused backends' `scratch_bytes`.
pub(crate) fn fused_scratch_bytes(
    table: &AdjacencyTable,
    defer: &[Vec<u64>],
    plan: &Option<(usize, ChunkPlan)>,
) -> usize {
    table.bytes()
        + defer
            .iter()
            .map(|d| d.capacity() * std::mem::size_of::<u64>())
            .sum::<usize>()
        + plan
            .as_ref()
            .map(|(_, p)| (p.chunks() + 1) * std::mem::size_of::<usize>())
            .unwrap_or(0)
}

/// In-place fused collide+stream backend over a precomputed
/// [`AdjacencyTable`].
#[derive(Debug, Clone)]
pub struct FusedSwapKernel {
    table: AdjacencyTable,
    /// Per-chunk deferred swaps, reused across steps.
    defer: Vec<Vec<u64>>,
    /// Cached cost-balanced plan, keyed by target chunk count.
    plan: Option<(usize, ChunkPlan)>,
}

impl FusedSwapKernel {
    /// Compile the streaming stencil for the view's current geometry. The
    /// solver rebuilds the kernel whenever flags, boundaries or periodicity
    /// change (tracked by its geometry revision).
    pub fn build(view: &LatticeView) -> Self {
        Self {
            table: AdjacencyTable::build(
                view.nx,
                view.ny,
                view.nz,
                view.periodic,
                view.flags,
                view.moving_walls,
            ),
            defer: Vec::new(),
            plan: None,
        }
    }

    /// The compiled adjacency table.
    pub fn table(&self) -> &AdjacencyTable {
        &self.table
    }
}

impl KernelBackend for FusedSwapKernel {
    fn kind(&self) -> KernelKind {
        KernelKind::FusedSwap
    }

    fn collide(&mut self, view: &mut LatticeView) {
        let Self { table, plan, .. } = self;
        let threads = apr_exec::current().threads();
        let plan = costed_plan(table, view.nx * view.ny, plan, threads);
        collide_reversed(view, table, plan);
    }

    fn stream(&mut self, view: &mut LatticeView) {
        let Self { table, plan, .. } = self;
        let threads = apr_exec::current().threads();
        let plan = costed_plan(table, view.nx * view.ny, plan, threads);
        stream_replay(view, table, plan);
    }

    /// Fused full step: one pool dispatch for both phases, with the
    /// deferred-swap drain overlapped into the sweep tail.
    fn step(&mut self, view: &mut LatticeView) {
        let Self { table, defer, plan } = self;
        let threads = apr_exec::current().threads();
        let plan = costed_plan(table, view.nx * view.ny, plan, threads);
        let chunking = view.chunking;
        let ctx = FusedCtx::new(view, table);
        run_fused_step(&ctx, chunking, defer, plan, |ctx, _c, range, pending| {
            scalar_fused_chunk(ctx, range, pending)
        });
    }

    fn reversed_between_halves(&self) -> bool {
        true
    }

    /// Table + deferral + plan footprint — the fused path's entire
    /// auxiliary memory, replacing the reference backend's full-size
    /// scratch array.
    fn scratch_bytes(&self) -> usize {
        fused_scratch_bytes(&self.table, &self.defer, &self.plan)
    }
}
