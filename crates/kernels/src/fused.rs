//! The fused swap-streaming kernel: collide + stream in one parallel
//! region, in place, with no second distribution array.
//!
//! ## How it works
//!
//! **Collision (phase A)** runs the exact reference BGK arithmetic
//! ([`crate::reference::bgk_post_collision`]) but stores each node's
//! post-collision populations *direction-reversed*: slot `(n, i)` receives
//! `f*_opp(i)(n)`. That single indexing trick makes halfway bounce-back a
//! no-op (the bounced value is already in place) and turns fluid–fluid
//! streaming into a pure exchange of two slots — see the op taxonomy in
//! [`crate::adjacency`].
//!
//! **Streaming (phase B)** replays the precomputed op table. Every op
//! touches a slot set no other op touches, so ops can run in any order on
//! any lane and the result is bit-identical to the reference backend for
//! every thread count — the values moved are the very doubles the reference
//! kernel would have copied.
//!
//! **Fusion.** In [`KernelBackend::step`] both phases run inside a *single*
//! pool dispatch ([`apr_exec::ExecPool::par_for_lane_runs`]): each lane
//! sweeps its contiguous node run `[lo, hi)` in index order, colliding a
//! node and then executing its ops immediately. A swap with partner
//! `m ∈ [lo, n)` is safe inline — this lane already collided `m`. Any other
//! partner (previous lane's run, periodic wrap to `m ≥ n`, self-wrap) goes
//! into a per-lane deferral list and is drained sequentially after the
//! barrier, when every node has collided. On a dense box the deferrals are
//! a thin O(surface) sliver — the bulk of streaming happens in-cache,
//! right after the node's collision touched the same 19 doubles.
//!
//! Versus the reference backend this halves distribution-array memory
//! traffic (no second array to write and swap), eliminates the `n·19·8`-byte
//! scratch allocation entirely (the op table is ~17× smaller), and pays one
//! pool barrier per step instead of two.
//!
//! The split [`KernelBackend::collide`]/[`KernelBackend::stream`] halves
//! remain available for grid couplings that impose post-collision states
//! between them; between the halves the distributions sit in reversed
//! order, which the solver tracks as its *swap parity* and transparently
//! untangles in its accessors.

use crate::adjacency::{
    AdjacencyTable, NodeKind, FWD, PAYLOAD_MASK, TAG_BOUNCE, TAG_DONE, TAG_LOAD, TAG_MOVING,
    TAG_SHIFT, TAG_SWAP,
};
use crate::d3q19::{OPPOSITE, Q};
use crate::reference::{bgk_post_collision, tau_at};
use crate::view::{stream_grain, LatticeView, NodeClass};
use crate::{KernelBackend, KernelKind};
use apr_exec::UnsafeSlice;

/// Deferred-swap encoding: `(node << 5) | direction` (19 < 2⁵ directions).
const DIR_BITS: u32 = 5;
const DIR_MASK: u64 = (1 << DIR_BITS) - 1;

/// Swap slots `(n, i)` and `(m, opp(i))` through a shared raw view.
///
/// # Safety
/// The two slots must not be concurrently accessed by any other op — which
/// the adjacency construction guarantees (each op owns its slot set).
#[inline]
unsafe fn swap_slots(f: &UnsafeSlice<f64>, n: usize, i: usize, m: usize) {
    let a = &mut f.slice_mut(n * Q + i, 1)[0];
    let b = &mut f.slice_mut(m * Q + OPPOSITE[i], 1)[0];
    std::mem::swap(a, b);
}

/// In-place fused collide+stream backend over a precomputed
/// [`AdjacencyTable`].
#[derive(Debug, Clone)]
pub struct FusedSwapKernel {
    table: AdjacencyTable,
    /// Per-lane deferred swaps, reused across steps.
    defer: Vec<Vec<u64>>,
}

impl FusedSwapKernel {
    /// Compile the streaming stencil for the view's current geometry. The
    /// solver rebuilds the kernel whenever flags, boundaries or periodicity
    /// change (tracked by its geometry revision).
    pub fn build(view: &LatticeView) -> Self {
        Self {
            table: AdjacencyTable::build(
                view.nx,
                view.ny,
                view.nz,
                view.periodic,
                view.flags,
                view.moving_walls,
            ),
            defer: Vec::new(),
        }
    }

    /// The compiled adjacency table.
    pub fn table(&self) -> &AdjacencyTable {
        &self.table
    }

    /// Collision phase: reference BGK arithmetic, stored reversed.
    fn phase_a(&mut self, view: &mut LatticeView) {
        let global_tau = view.tau;
        let bf = view.body_force;
        let flags = view.flags;
        let tau_field = view.tau_field;
        let force = view.force;
        let n = view.node_count();
        let plane = view.nx * view.ny;
        let f = UnsafeSlice::new(view.f.as_mut_slice());
        let rho = UnsafeSlice::new(&mut view.rho[..]);
        let vel = UnsafeSlice::new(&mut view.vel[..]);
        let pool = apr_exec::current();
        pool.par_for_ranges(n, plane, |_, range| {
            for node in range {
                if flags[node] != NodeClass::Fluid {
                    continue;
                }
                // SAFETY: chunk ranges are disjoint; node storage is
                // touched by exactly one lane.
                let fs = unsafe { f.slice_mut(node * Q, Q) };
                let rho = unsafe { &mut rho.slice_mut(node, 1)[0] };
                let vel = unsafe { vel.slice_mut(node * 3, 3) };
                let g = &force[node * 3..node * 3 + 3];
                let tau = tau_at(tau_field, global_tau, node);
                let (r, u, post) = bgk_post_collision(fs, g, bf, tau);
                *rho = r;
                vel.copy_from_slice(&u);
                for i in 0..Q {
                    fs[OPPOSITE[i]] = post[i];
                }
            }
        });
        if apr_telemetry::is_enabled() {
            apr_telemetry::gauge_set(
                "exec.lattice.collide.utilization",
                pool.last_run_stats().utilization(),
            );
        }
    }

    /// Streaming phase: replay the op table over reversed-stored
    /// populations. Parallel over node ranges; safe because ops own
    /// pairwise-disjoint slot sets regardless of chunk placement.
    fn phase_b(&mut self, view: &mut LatticeView) {
        let table = &self.table;
        let n = view.node_count();
        let plane = view.nx * view.ny;
        let rho: &[f64] = view.rho;
        let f = UnsafeSlice::new(view.f.as_mut_slice());
        let pool = apr_exec::current();
        let grain = stream_grain(view.nz, pool.threads());
        pool.par_for_ranges(n, plane * grain, |_, range| {
            for node in range {
                match table.kind[node] {
                    NodeKind::Skip => {}
                    NodeKind::Fast => {
                        for (k, &i) in FWD.iter().enumerate() {
                            let m = node - table.fwd_offset[k];
                            // SAFETY: this op is the sole owner of both slots.
                            unsafe { swap_slots(&f, node, i, m) };
                        }
                    }
                    NodeKind::Slow => {
                        for i in 1..Q {
                            let op = table.ops[node * Q + i];
                            let payload = (op & PAYLOAD_MASK) as usize;
                            // SAFETY (all arms): each op owns its slot set.
                            match op >> TAG_SHIFT {
                                TAG_DONE | TAG_BOUNCE => {}
                                TAG_SWAP => unsafe { swap_slots(&f, node, i, payload) },
                                TAG_LOAD => unsafe {
                                    f.slice_mut(node * Q + i, 1)[0] =
                                        f.slice_mut(payload * Q + i, 1)[0];
                                },
                                TAG_MOVING => unsafe {
                                    // Same association order as the
                                    // reference: (6 w_i * rho) * (c.u_w).
                                    let [six_w, cu] = table.moving_coeff[payload];
                                    f.slice_mut(node * Q + i, 1)[0] += six_w * rho[node] * cu;
                                },
                                tag => unreachable!("corrupt op tag {tag}"),
                            }
                        }
                    }
                }
            }
        });
        if apr_telemetry::is_enabled() {
            apr_telemetry::gauge_set(
                "exec.lattice.stream.utilization",
                pool.last_run_stats().utilization(),
            );
            apr_telemetry::gauge_set("lattice.stream.grain", grain as f64);
        }
    }
}

impl KernelBackend for FusedSwapKernel {
    fn kind(&self) -> KernelKind {
        KernelKind::FusedSwap
    }

    fn collide(&mut self, view: &mut LatticeView) {
        self.phase_a(view);
    }

    fn stream(&mut self, view: &mut LatticeView) {
        self.phase_b(view);
    }

    /// Fused full step: one pool dispatch for both phases, then a
    /// sequential drain of the (thin) deferred-swap sliver.
    fn step(&mut self, view: &mut LatticeView) {
        let table = &self.table;
        let defer = &mut self.defer;
        let global_tau = view.tau;
        let bf = view.body_force;
        let tau_field = view.tau_field;
        let force = view.force;
        let n = view.node_count();
        let plane = view.nx * view.ny;
        let pool = apr_exec::current();
        let threads = pool.threads();
        let grain = stream_grain(view.nz, threads);
        if defer.len() < threads {
            defer.resize_with(threads, Vec::new);
        }
        for d in defer.iter_mut() {
            d.clear();
        }
        let f = UnsafeSlice::new(view.f.as_mut_slice());
        let rho = UnsafeSlice::new(&mut view.rho[..]);
        let vel = UnsafeSlice::new(&mut view.vel[..]);
        let pending = UnsafeSlice::new(defer);
        pool.par_for_lane_runs(n, plane * grain, |lane, range| {
            let lo = range.start;
            // SAFETY: one deferral list per lane.
            let pending = unsafe { &mut pending.slice_mut(lane, 1)[0] };
            for node in range {
                let kind = table.kind[node];
                if kind == NodeKind::Skip {
                    continue;
                }
                // Phase A. SAFETY: node-local storage, one owner per node.
                let fs = unsafe { f.slice_mut(node * Q, Q) };
                let r = {
                    let rho = unsafe { &mut rho.slice_mut(node, 1)[0] };
                    let vel = unsafe { vel.slice_mut(node * 3, 3) };
                    let g = &force[node * 3..node * 3 + 3];
                    let tau = tau_at(tau_field, global_tau, node);
                    let (r, u, post) = bgk_post_collision(fs, g, bf, tau);
                    *rho = r;
                    vel.copy_from_slice(&u);
                    for i in 0..Q {
                        fs[OPPOSITE[i]] = post[i];
                    }
                    r
                };
                // Phase B, inline where the partner has already collided in
                // this lane's run; deferred past the barrier otherwise.
                // SAFETY (all swap/load/moving arms): each op owns its slot
                // set, and no op of node `p` executes before `p`'s own
                // collision except via the post-barrier drain.
                match kind {
                    NodeKind::Fast => {
                        for (k, &i) in FWD.iter().enumerate() {
                            let m = node - table.fwd_offset[k];
                            if m >= lo {
                                unsafe { swap_slots(&f, node, i, m) };
                            } else {
                                pending.push(((node as u64) << DIR_BITS) | i as u64);
                            }
                        }
                    }
                    NodeKind::Slow => {
                        for i in 1..Q {
                            let op = table.ops[node * Q + i];
                            let payload = (op & PAYLOAD_MASK) as usize;
                            match op >> TAG_SHIFT {
                                TAG_DONE | TAG_BOUNCE => {}
                                TAG_SWAP => {
                                    if payload >= lo && payload < node {
                                        unsafe { swap_slots(&f, node, i, payload) };
                                    } else {
                                        pending.push(((node as u64) << DIR_BITS) | i as u64);
                                    }
                                }
                                // LOAD sources are boundary nodes: exempt
                                // from collision, so their populations are
                                // already final.
                                TAG_LOAD => unsafe {
                                    f.slice_mut(node * Q + i, 1)[0] =
                                        f.slice_mut(payload * Q + i, 1)[0];
                                },
                                TAG_MOVING => unsafe {
                                    // Same association order as the
                                    // reference: (6 w_i * rho) * (c.u_w).
                                    let [six_w, cu] = table.moving_coeff[payload];
                                    f.slice_mut(node * Q + i, 1)[0] += six_w * r * cu;
                                },
                                tag => unreachable!("corrupt op tag {tag}"),
                            }
                        }
                    }
                    NodeKind::Skip => unreachable!(),
                }
            }
        });
        // Drain: every node has collided; deferred swaps are disjoint, so
        // order is irrelevant — but this order is deterministic anyway.
        let mut deferred = 0usize;
        for lane in defer.iter() {
            deferred += lane.len();
            for &e in lane {
                let node = (e >> DIR_BITS) as usize;
                let i = (e & DIR_MASK) as usize;
                let m = (table.ops[node * Q + i] & PAYLOAD_MASK) as usize;
                // SAFETY: sequential, and each op owns its slot set.
                unsafe { swap_slots(&f, node, i, m) };
            }
        }
        if apr_telemetry::is_enabled() {
            apr_telemetry::gauge_set(
                "exec.lattice.step.utilization",
                pool.last_run_stats().utilization(),
            );
            apr_telemetry::gauge_set("lattice.stream.grain", grain as f64);
            apr_telemetry::gauge_set("lattice.step.deferred_swaps", deferred as f64);
        }
    }

    fn reversed_between_halves(&self) -> bool {
        true
    }

    /// Table + deferral footprint — the fused path's entire auxiliary
    /// memory, replacing the reference backend's full-size scratch array.
    fn scratch_bytes(&self) -> usize {
        self.table.bytes()
            + self
                .defer
                .iter()
                .map(|d| d.capacity() * std::mem::size_of::<u64>())
                .sum::<usize>()
    }
}
