//! Vectorized D3Q19 BGK collision: the swap-streaming adjacency of
//! [`crate::FusedSwapKernel`] with the per-node collision processed four
//! contiguous fluid nodes at a time.
//!
//! ## Bit-identity by construction
//!
//! The vector path replicates the *exact expression tree* of
//! [`crate::reference::bgk_post_collision`] lane-by-lane — same operation
//! order, same associativity, one IEEE-754 `f64` op per lane per scalar
//! op. Rust never contracts separate multiplies and adds into FMAs, so a
//! 4-lane block produces bit-for-bit the doubles the scalar loop would
//! have produced, and the kernel-equivalence zoo holds with no tolerance.
//!
//! Ragged run tails (fluid runs shorter than 4, interrupted by walls) fall
//! back to the scalar [`crate::fused::collide_node_reversed`], which *is*
//! the reference arithmetic.
//!
//! ## Two code paths, one shape
//!
//! With the `portable-simd` feature (nightly toolchains) the lane type is
//! `std::simd::f64x4`. On stable it is a hand-unrolled 4-lane struct whose
//! `#[inline(always)]` elementwise operators autovectorize under `-O`;
//! both satisfy the same tiny splat/`from_array`/`to_array` surface, so
//! the collision body is written once and compiles against either.
//!
//! ## Step structure
//!
//! Unlike the scalar fused kernel (collide a node, stream it immediately),
//! [`FusedSimdKernel::step`] processes each guided chunk in two passes:
//! vector-collide every fluid node in the chunk, then replay the chunk's
//! ops with partners anywhere *inside* the chunk inline (both endpoints
//! have collided) and cross-chunk swaps deferred — the same per-chunk
//! deferral lists, drain overlap, and determinism argument as the scalar
//! backend (see `fused.rs` and DESIGN.md §14).

use std::ops::Range;

use crate::adjacency::{AdjacencyTable, NodeKind};
use crate::d3q19::{C, OPPOSITE, Q, W};
use crate::fused::{
    collide_node_reversed, costed_plan, fused_scratch_bytes, replay_chunk_deferring,
    run_fused_step, stream_replay, FusedCtx,
};
use crate::view::LatticeView;
use crate::{KernelBackend, KernelKind};
use apr_exec::ChunkPlan;

/// Vector width: four `f64` lanes.
pub const LANES: usize = 4;

#[cfg(feature = "portable-simd")]
use std::simd::f64x4 as V;

#[cfg(not(feature = "portable-simd"))]
use fallback::F64x4 as V;

/// Stable-Rust stand-in for `std::simd::f64x4`: a 4-lane value type whose
/// elementwise operators unroll to four independent scalar IEEE ops —
/// exactly what the portable-SIMD type lowers to per lane — which LLVM
/// then packs into vector instructions where the target allows.
#[cfg(not(feature = "portable-simd"))]
mod fallback {
    #[derive(Debug, Clone, Copy)]
    pub struct F64x4([f64; 4]);

    impl F64x4 {
        #[inline(always)]
        pub fn splat(v: f64) -> Self {
            Self([v; 4])
        }

        #[inline(always)]
        pub fn from_array(a: [f64; 4]) -> Self {
            Self(a)
        }

        #[inline(always)]
        pub fn to_array(self) -> [f64; 4] {
            self.0
        }
    }

    macro_rules! elementwise {
        ($trait:ident, $method:ident, $op:tt) => {
            impl std::ops::$trait for F64x4 {
                type Output = Self;
                #[inline(always)]
                fn $method(self, rhs: Self) -> Self {
                    Self([
                        self.0[0] $op rhs.0[0],
                        self.0[1] $op rhs.0[1],
                        self.0[2] $op rhs.0[2],
                        self.0[3] $op rhs.0[3],
                    ])
                }
            }
        };
    }
    elementwise!(Add, add, +);
    elementwise!(Sub, sub, -);
    elementwise!(Mul, mul, *);
    elementwise!(Div, div, /);
}

/// Collide the four consecutive fluid nodes `n0..n0+4` with the reference
/// BGK + Guo arithmetic, one lane per node, storing the post-collision
/// populations direction-reversed (the fused-streaming storage order).
///
/// # Safety
/// The caller must be the sole accessor of these nodes' f/rho/vel storage,
/// and all four nodes must be fluid.
unsafe fn collide_block4(ctx: &FusedCtx, n0: usize) {
    let gather = |at: &dyn Fn(usize) -> usize| -> V {
        V::from_array([
            ctx.f.slice_mut(at(0), 1)[0],
            ctx.f.slice_mut(at(1), 1)[0],
            ctx.f.slice_mut(at(2), 1)[0],
            ctx.f.slice_mut(at(3), 1)[0],
        ])
    };
    let mut fs = [V::splat(0.0); Q];
    for (i, slot) in fs.iter_mut().enumerate() {
        *slot = gather(&|k| (n0 + k) * Q + i);
    }
    let tau = match ctx.tau_field {
        Some(t) => V::from_array([t[n0], t[n0 + 1], t[n0 + 2], t[n0 + 3]]),
        None => V::splat(ctx.global_tau),
    };
    let force_at =
        |a: usize| V::from_array([0, 1, 2, 3].map(|k: usize| ctx.force[(n0 + k) * 3 + a]));

    // From here on: the exact expression tree of `bgk_post_collision`,
    // per lane. Do not re-associate, reorder, or skip zero-constant terms
    // (a skipped `x * 0.0` can flip the sign of a zero accumulator).
    let one = V::splat(1.0);
    let omega = one / tau;
    let force_scale = one - V::splat(0.5) * omega;
    let mut r = V::splat(0.0);
    let mut m0 = V::splat(0.0);
    let mut m1 = V::splat(0.0);
    let mut m2 = V::splat(0.0);
    for (i, f) in fs.iter().enumerate() {
        r = r + *f;
        m0 = m0 + *f * V::splat(C[i][0] as f64);
        m1 = m1 + *f * V::splat(C[i][1] as f64);
        m2 = m2 + *f * V::splat(C[i][2] as f64);
    }
    let gx = force_at(0) + V::splat(ctx.bf[0]);
    let gy = force_at(1) + V::splat(ctx.bf[1]);
    let gz = force_at(2) + V::splat(ctx.bf[2]);
    let half = V::splat(0.5);
    let ux = (m0 + half * gx) / r;
    let uy = (m1 + half * gy) / r;
    let uz = (m2 + half * gz) / r;
    let usq = V::splat(1.5) * (ux * ux + uy * uy + uz * uz);
    for i in 0..Q {
        let cx = V::splat(C[i][0] as f64);
        let cy = V::splat(C[i][1] as f64);
        let cz = V::splat(C[i][2] as f64);
        let cu = cx * ux + cy * uy + cz * uz;
        let feq = V::splat(W[i]) * r * (one + V::splat(3.0) * cu + V::splat(4.5) * cu * cu - usq);
        let forcing = V::splat(W[i])
            * (V::splat(3.0) * ((cx - ux) * gx + (cy - uy) * gy + (cz - uz) * gz)
                + V::splat(9.0) * cu * (cx * gx + cy * gy + cz * gz));
        let post = (fs[i] + (omega * (feq - fs[i]) + force_scale * forcing)).to_array();
        for (k, &p) in post.iter().enumerate() {
            ctx.f.slice_mut((n0 + k) * Q + OPPOSITE[i], 1)[0] = p;
        }
    }
    let (ra, uxa, uya, uza) = (r.to_array(), ux.to_array(), uy.to_array(), uz.to_array());
    for k in 0..LANES {
        ctx.rho.slice_mut(n0 + k, 1)[0] = ra[k];
        let vel = ctx.vel.slice_mut((n0 + k) * 3, 3);
        vel[0] = uxa[k];
        vel[1] = uya[k];
        vel[2] = uza[k];
    }
}

/// Vector-collide every fluid node in `range` with reversed stores:
/// contiguous fluid runs go through [`collide_block4`] four nodes at a
/// time; ragged tails and runs shorter than [`LANES`] use the scalar
/// reference arithmetic. Results are bit-identical either way.
pub(crate) fn simd_collide_range(ctx: &FusedCtx, range: Range<usize>) {
    let kind = &ctx.table.kind;
    let mut node = range.start;
    while node < range.end {
        if kind[node] == NodeKind::Skip {
            node += 1;
            continue;
        }
        // Extend the contiguous fluid run.
        let mut end = node + 1;
        while end < range.end && kind[end] != NodeKind::Skip {
            end += 1;
        }
        // SAFETY (both calls): chunk ranges are disjoint and claimed
        // once, so this lane solely owns these nodes' storage.
        while node + LANES <= end {
            unsafe { collide_block4(ctx, node) };
            node += LANES;
        }
        while node < end {
            unsafe { collide_node_reversed(ctx, node) };
            node += 1;
        }
    }
}

/// Swap-streaming backend with the collision vectorized 4 nodes wide.
/// Shares the adjacency table, guided chunking, deferral machinery, and
/// bit-identity contract of [`FusedSwapKernel`](crate::FusedSwapKernel).
#[derive(Debug, Clone)]
pub struct FusedSimdKernel {
    table: AdjacencyTable,
    /// Per-chunk deferred swaps, reused across steps.
    defer: Vec<Vec<u64>>,
    /// Cached cost-balanced plan, keyed by target chunk count.
    plan: Option<(usize, ChunkPlan)>,
}

impl FusedSimdKernel {
    /// Compile the streaming stencil for the view's current geometry.
    pub fn build(view: &LatticeView) -> Self {
        Self {
            table: AdjacencyTable::build(
                view.nx,
                view.ny,
                view.nz,
                view.periodic,
                view.flags,
                view.moving_walls,
            ),
            defer: Vec::new(),
            plan: None,
        }
    }

    /// The compiled adjacency table.
    pub fn table(&self) -> &AdjacencyTable {
        &self.table
    }
}

impl KernelBackend for FusedSimdKernel {
    fn kind(&self) -> KernelKind {
        KernelKind::FusedSimd
    }

    fn collide(&mut self, view: &mut LatticeView) {
        let Self { table, plan, .. } = self;
        let pool = apr_exec::current();
        let plan = costed_plan(table, view.nx * view.ny, plan, pool.threads());
        let n = view.node_count();
        let plane = view.nx * view.ny;
        let chunking = view.chunking;
        let ctx = FusedCtx::new(view, table);
        match chunking {
            crate::ChunkingPolicy::Guided => {
                pool.par_for_guided(plan, |_, range| simd_collide_range(&ctx, range))
            }
            crate::ChunkingPolicy::Static => {
                pool.par_for_ranges(n, plane, |_, range| simd_collide_range(&ctx, range))
            }
        }
        if apr_telemetry::is_enabled() {
            apr_telemetry::gauge_set(
                "exec.lattice.collide.utilization",
                pool.last_run_stats().utilization(),
            );
        }
    }

    fn stream(&mut self, view: &mut LatticeView) {
        let Self { table, plan, .. } = self;
        let threads = apr_exec::current().threads();
        let plan = costed_plan(table, view.nx * view.ny, plan, threads);
        stream_replay(view, table, plan);
    }

    /// Fused full step, two passes per guided chunk: vector-collide the
    /// chunk, then replay its ops with intra-chunk partners inline and
    /// cross-chunk swaps deferred into the shared drain.
    fn step(&mut self, view: &mut LatticeView) {
        let Self { table, defer, plan } = self;
        let threads = apr_exec::current().threads();
        let plan = costed_plan(table, view.nx * view.ny, plan, threads);
        let chunking = view.chunking;
        let ctx = FusedCtx::new(view, table);
        run_fused_step(&ctx, chunking, defer, plan, |ctx, _c, range, pending| {
            simd_collide_range(ctx, range.clone());
            replay_chunk_deferring(ctx, range, pending);
        });
    }

    fn reversed_between_halves(&self) -> bool {
        true
    }

    fn scratch_bytes(&self) -> usize {
        fused_scratch_bytes(&self.table, &self.defer, &self.plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::NodeClass;
    use crate::{ChunkingPolicy, FusedSwapKernel};

    /// Owned storage backing a LatticeView for tests.
    struct Dom {
        nx: usize,
        ny: usize,
        nz: usize,
        flags: Vec<NodeClass>,
        f: Vec<f64>,
        rho: Vec<f64>,
        vel: Vec<f64>,
        force: Vec<f64>,
        tau_field: Vec<f64>,
    }

    impl Dom {
        fn new(nx: usize, ny: usize, nz: usize, flags: Vec<NodeClass>) -> Self {
            let n = nx * ny * nz;
            assert_eq!(flags.len(), n);
            // Deterministic, non-uniform state: perturbed distributions,
            // varied force and per-node tau.
            let f = (0..n * Q)
                .map(|j| W[j % Q] * (1.0 + 0.01 * ((j * 37 % 101) as f64 - 50.0) / 50.0))
                .collect();
            let force = (0..n * 3)
                .map(|j| 1e-5 * ((j * 13 % 17) as f64 - 8.0))
                .collect();
            let tau_field = (0..n).map(|j| 0.7 + 0.2 * ((j % 7) as f64) / 7.0).collect();
            Self {
                nx,
                ny,
                nz,
                flags,
                f,
                rho: vec![1.0; n],
                vel: vec![0.0; n * 3],
                force,
                tau_field,
            }
        }

        fn view(&mut self) -> LatticeView<'_> {
            LatticeView {
                nx: self.nx,
                ny: self.ny,
                nz: self.nz,
                periodic: [true; 3],
                tau: 0.8,
                body_force: [1e-6, -2e-6, 5e-7],
                tau_field: Some(&self.tau_field),
                flags: &self.flags,
                f: &mut self.f,
                rho: &mut self.rho,
                vel: &mut self.vel,
                force: &self.force,
                moving_walls: &[],
                chunking: ChunkingPolicy::Guided,
            }
        }
    }

    fn digest(d: &Dom) -> Vec<u64> {
        d.f.iter()
            .chain(d.rho.iter())
            .chain(d.vel.iter())
            .map(|v| v.to_bits())
            .collect()
    }

    /// The vector collide must be bit-identical to the scalar fused
    /// collide — same reversed storage, same doubles — including on a
    /// geometry with walls that force ragged (non-multiple-of-4) runs.
    #[test]
    fn simd_collide_matches_scalar_bitwise() {
        let (nx, ny, nz) = (7, 5, 4);
        let n = nx * ny * nz;
        let mut flags = vec![NodeClass::Fluid; n];
        // Scatter walls to break fluid runs at awkward offsets.
        for j in (0..n).step_by(11) {
            flags[j] = NodeClass::Wall;
        }
        let mut a = Dom::new(nx, ny, nz, flags.clone());
        let mut b = Dom::new(nx, ny, nz, flags);
        assert_eq!(digest(&a), digest(&b), "identical starting state");

        let mut scalar = FusedSwapKernel::build(&a.view());
        scalar.collide(&mut a.view());
        let mut simd = FusedSimdKernel::build(&b.view());
        simd.collide(&mut b.view());
        assert_eq!(digest(&a), digest(&b), "collide halves diverged");

        scalar.stream(&mut a.view());
        simd.stream(&mut b.view());
        assert_eq!(digest(&a), digest(&b), "stream halves diverged");
    }

    /// Fused steps (single dispatch, deferral + drain) must match the
    /// split halves bitwise across both backends and multiple steps.
    #[test]
    fn simd_step_matches_scalar_step_bitwise() {
        let (nx, ny, nz) = (6, 6, 9);
        let n = nx * ny * nz;
        let mut flags = vec![NodeClass::Fluid; n];
        for j in (0..n).step_by(23) {
            flags[j] = NodeClass::Wall;
        }
        let mut a = Dom::new(nx, ny, nz, flags.clone());
        let mut b = Dom::new(nx, ny, nz, flags);
        let mut scalar = FusedSwapKernel::build(&a.view());
        let mut simd = FusedSimdKernel::build(&b.view());
        for _ in 0..5 {
            scalar.step(&mut a.view());
            simd.step(&mut b.view());
        }
        assert_eq!(digest(&a), digest(&b), "fused steps diverged");
    }

    /// Both chunking policies must produce the same bits.
    #[test]
    fn chunking_policy_does_not_change_results() {
        let (nx, ny, nz) = (5, 5, 8);
        let n = nx * ny * nz;
        let flags = vec![NodeClass::Fluid; n];
        let mut a = Dom::new(nx, ny, nz, flags.clone());
        let mut b = Dom::new(nx, ny, nz, flags);
        let mut ka = FusedSimdKernel::build(&a.view());
        let mut kb = FusedSimdKernel::build(&b.view());
        for _ in 0..3 {
            ka.step(&mut a.view());
            let mut v = b.view();
            v.chunking = ChunkingPolicy::Static;
            kb.step(&mut v);
        }
        assert_eq!(digest(&a), digest(&b), "policy changed the physics");
    }

    #[test]
    fn lane_ops_are_elementwise() {
        let a = V::from_array([1.0, -2.0, 0.5, 4.0]);
        let b = V::from_array([2.0, 0.5, -1.0, 8.0]);
        assert_eq!((a + b).to_array(), [3.0, -1.5, -0.5, 12.0]);
        assert_eq!((a - b).to_array(), [-1.0, -2.5, 1.5, -4.0]);
        assert_eq!((a * b).to_array(), [2.0, -1.0, -0.5, 32.0]);
        assert_eq!((a / b).to_array(), [0.5, -4.0, -0.5, 0.5]);
        assert_eq!(V::splat(3.0).to_array(), [3.0; 4]);
    }
}
