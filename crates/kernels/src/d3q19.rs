//! The D3Q19 velocity discretization (paper §2.1).
//!
//! Nineteen discrete velocities: the rest particle, six axis neighbours and
//! twelve edge diagonals, with the standard weights 1/3, 1/18 and 1/36 and
//! lattice speed of sound `c_s² = 1/3`.

/// Number of discrete velocities.
pub const Q: usize = 19;

/// Lattice speed of sound squared.
pub const CS2: f64 = 1.0 / 3.0;

/// Inverse of [`CS2`].
pub const INV_CS2: f64 = 3.0;

/// Discrete velocity vectors `c_i` (integer lattice offsets).
///
/// Ordering: rest, 6 axis directions, 12 diagonals; [`OPPOSITE`] maps each
/// direction to its negation.
pub const C: [[i32; 3]; Q] = [
    [0, 0, 0],
    [1, 0, 0],
    [-1, 0, 0],
    [0, 1, 0],
    [0, -1, 0],
    [0, 0, 1],
    [0, 0, -1],
    [1, 1, 0],
    [-1, -1, 0],
    [1, -1, 0],
    [-1, 1, 0],
    [1, 0, 1],
    [-1, 0, -1],
    [1, 0, -1],
    [-1, 0, 1],
    [0, 1, 1],
    [0, -1, -1],
    [0, 1, -1],
    [0, -1, 1],
];

/// Quadrature weights `w_i`.
pub const W: [f64; Q] = [
    1.0 / 3.0,
    1.0 / 18.0,
    1.0 / 18.0,
    1.0 / 18.0,
    1.0 / 18.0,
    1.0 / 18.0,
    1.0 / 18.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
];

/// Index of the direction opposite to `i` (`C[OPPOSITE[i]] == -C[i]`).
pub const OPPOSITE: [usize; Q] = [
    0, 2, 1, 4, 3, 6, 5, 8, 7, 10, 9, 12, 11, 14, 13, 16, 15, 18, 17,
];

/// Maxwell–Boltzmann equilibrium distribution truncated to second order:
///
/// `f_i^eq = w_i ρ (1 + 3 c·u + 9/2 (c·u)² − 3/2 u²)`.
#[inline]
pub fn equilibrium(i: usize, rho: f64, ux: f64, uy: f64, uz: f64) -> f64 {
    let cu = C[i][0] as f64 * ux + C[i][1] as f64 * uy + C[i][2] as f64 * uz;
    let usq = ux * ux + uy * uy + uz * uz;
    W[i] * rho * (1.0 + 3.0 * cu + 4.5 * cu * cu - 1.5 * usq)
}

/// All 19 equilibrium populations at once.
#[inline]
pub fn equilibrium_all(rho: f64, ux: f64, uy: f64, uz: f64) -> [f64; Q] {
    let mut out = [0.0; Q];
    let usq = 1.5 * (ux * ux + uy * uy + uz * uz);
    for i in 0..Q {
        let cu = C[i][0] as f64 * ux + C[i][1] as f64 * uy + C[i][2] as f64 * uz;
        out[i] = W[i] * rho * (1.0 + 3.0 * cu + 4.5 * cu * cu - usq);
    }
    out
}

/// Guo forcing term `F_i` for body-force density `(gx, gy, gz)` acting on a
/// node with velocity `(ux, uy, uz)` (Guo, Zheng & Shi 2002):
///
/// `F_i = w_i [ 3(c−u) + 9(c·u)c ] · g`.
///
/// The collision applies `(1 − 1/(2τ)) F_i` and the macroscopic velocity
/// gains `g/(2ρ)`.
#[inline]
pub fn guo_force_term(i: usize, ux: f64, uy: f64, uz: f64, gx: f64, gy: f64, gz: f64) -> f64 {
    let cx = C[i][0] as f64;
    let cy = C[i][1] as f64;
    let cz = C[i][2] as f64;
    let cu = cx * ux + cy * uy + cz * uz;
    W[i] * (3.0 * ((cx - ux) * gx + (cy - uy) * gy + (cz - uz) * gz)
        + 9.0 * cu * (cx * gx + cy * gy + cz * gz))
}

/// Relaxation time for a lattice kinematic viscosity: `τ = ν/c_s² + 1/2`.
#[inline]
pub fn tau_from_lattice_viscosity(nu: f64) -> f64 {
    nu * INV_CS2 + 0.5
}

/// Lattice kinematic viscosity for a relaxation time: `ν = c_s²(τ − 1/2)`.
#[inline]
pub fn lattice_viscosity_from_tau(tau: f64) -> f64 {
    CS2 * (tau - 0.5)
}

#[cfg(test)]
// Index loops here mirror the tensor notation of the moment identities.
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;

    #[test]
    fn opposites_negate() {
        for i in 0..Q {
            let o = OPPOSITE[i];
            for k in 0..3 {
                assert_eq!(C[i][k], -C[o][k], "direction {i}");
            }
            assert_eq!(OPPOSITE[o], i);
            assert_eq!(W[i], W[o]);
        }
    }

    #[test]
    fn weights_sum_to_one() {
        let s: f64 = W.iter().sum();
        assert!((s - 1.0).abs() < 1e-15);
    }

    #[test]
    fn lattice_isotropy_moments() {
        // Σ w_i c_iα = 0; Σ w_i c_iα c_iβ = c_s² δ_αβ.
        for a in 0..3 {
            let m1: f64 = (0..Q).map(|i| W[i] * C[i][a] as f64).sum();
            assert!(m1.abs() < 1e-15);
            for b in 0..3 {
                let m2: f64 = (0..Q).map(|i| W[i] * C[i][a] as f64 * C[i][b] as f64).sum();
                let expected = if a == b { CS2 } else { 0.0 };
                assert!((m2 - expected).abs() < 1e-15, "axes {a},{b}");
            }
        }
    }

    #[test]
    fn fourth_order_isotropy() {
        // Σ w_i c_iα c_iβ c_iγ c_iδ = c_s⁴ (δαβδγδ + δαγδβδ + δαδδβγ).
        for a in 0..3 {
            for b in 0..3 {
                for g in 0..3 {
                    for d in 0..3 {
                        let m4: f64 = (0..Q)
                            .map(|i| {
                                W[i] * C[i][a] as f64
                                    * C[i][b] as f64
                                    * C[i][g] as f64
                                    * C[i][d] as f64
                            })
                            .sum();
                        let kron = |x: usize, y: usize| if x == y { 1.0 } else { 0.0 };
                        let expected = CS2
                            * CS2
                            * (kron(a, b) * kron(g, d)
                                + kron(a, g) * kron(b, d)
                                + kron(a, d) * kron(b, g));
                        assert!(
                            (m4 - expected).abs() < 1e-14,
                            "{a}{b}{g}{d}: {m4} vs {expected}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn equilibrium_moments_recover_rho_and_u() {
        let (rho, u) = (1.05, [0.03, -0.02, 0.01]);
        let f = equilibrium_all(rho, u[0], u[1], u[2]);
        let mass: f64 = f.iter().sum();
        assert!((mass - rho).abs() < 1e-14);
        for a in 0..3 {
            let mom: f64 = (0..Q).map(|i| f[i] * C[i][a] as f64).sum();
            assert!((mom - rho * u[a]).abs() < 1e-14, "axis {a}");
        }
    }

    #[test]
    fn equilibrium_scalar_matches_batch() {
        let (rho, u) = (0.97, [0.05, 0.01, -0.04]);
        let batch = equilibrium_all(rho, u[0], u[1], u[2]);
        for i in 0..Q {
            assert!((equilibrium(i, rho, u[0], u[1], u[2]) - batch[i]).abs() < 1e-16);
        }
    }

    #[test]
    fn guo_force_moments() {
        // Σ F_i = 0 and Σ F_i c_i = g at u = 0 (first-order force moments).
        let g = [1e-5, -2e-5, 3e-5];
        let mut sum = 0.0;
        let mut mom = [0.0; 3];
        for i in 0..Q {
            let fi = guo_force_term(i, 0.0, 0.0, 0.0, g[0], g[1], g[2]);
            sum += fi;
            for a in 0..3 {
                mom[a] += fi * C[i][a] as f64;
            }
        }
        assert!(sum.abs() < 1e-18);
        for a in 0..3 {
            assert!((mom[a] - g[a]).abs() < 1e-18, "axis {a}");
        }
    }

    #[test]
    fn tau_viscosity_round_trip() {
        for tau in [0.6, 1.0, 1.7] {
            let nu = lattice_viscosity_from_tau(tau);
            assert!((tau_from_lattice_viscosity(nu) - tau).abs() < 1e-15);
        }
    }
}
