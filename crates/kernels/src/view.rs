//! The kernel-facing view of a lattice domain.
//!
//! Kernels operate on [`LatticeView`], a borrowed decomposition of the
//! solver's storage, so the kernel engine stays below `apr-lattice` in the
//! crate graph: `apr-lattice` builds a view of its own fields and hands it
//! to whichever [`crate::KernelBackend`] is selected.

/// Classification of a lattice node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum NodeClass {
    /// Interior fluid: collides and streams.
    Fluid = 0,
    /// Solid wall: neighbours bounce back off it (optionally moving).
    Wall = 1,
    /// Prescribed-velocity boundary (non-equilibrium extrapolation).
    Velocity = 2,
    /// Prescribed-density (pressure) boundary.
    Pressure = 3,
    /// Outside the simulated geometry; behaves as a stationary wall but is
    /// excluded from fluid-point counts (memory accounting, §3.6).
    Exterior = 4,
}

/// Borrowed view of one lattice's storage, handed to a kernel for one
/// collide/stream (half-)pass.
///
/// `moving_walls` lists the moving-wall nodes **sorted by node index** (the
/// reference backend binary-searches it; the fused backend bakes the
/// coefficients into its adjacency table at build time).
pub struct LatticeView<'a> {
    /// Grid extent in x.
    pub nx: usize,
    /// Grid extent in y.
    pub ny: usize,
    /// Grid extent in z.
    pub nz: usize,
    /// Per-axis periodicity.
    pub periodic: [bool; 3],
    /// Global BGK relaxation time.
    pub tau: f64,
    /// Uniform body-force density.
    pub body_force: [f64; 3],
    /// Per-node relaxation times, if installed.
    pub tau_field: Option<&'a [f64]>,
    /// Node classification per node.
    pub flags: &'a [NodeClass],
    /// Distributions, `node*19 + i`. A `Vec` (not a slice) because the
    /// reference backend swaps it with its scratch array.
    pub f: &'a mut Vec<f64>,
    /// Densities per node.
    pub rho: &'a mut [f64],
    /// Velocities per node, `node*3 + axis`.
    pub vel: &'a mut [f64],
    /// External force field per node, `node*3 + axis`.
    pub force: &'a [f64],
    /// `(node, wall velocity)` for every moving-wall node, sorted by node.
    pub moving_walls: &'a [(usize, [f64; 3])],
    /// Chunk hand-out policy for this pass (resolved by the solver from
    /// its override or the installed [`crate::RuntimeConfig`]). Never
    /// affects results — only which lane computes what, when.
    pub chunking: crate::ChunkingPolicy,
}

impl LatticeView<'_> {
    /// Total node count.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.nx * self.ny * self.nz
    }
}

/// Streaming chunk grain in z-slabs: aim for ~4 chunks per pool lane so the
/// tail imbalance stays small without paying per-slab dispatch overhead on
/// shallow boxes (the old hard-coded grain of 1 z-slab). The *values* a
/// kernel produces never depend on the grain — every write is slot-local —
/// so this is free to vary with the thread count.
#[inline]
pub fn stream_grain(nz: usize, threads: usize) -> usize {
    (nz / (threads.max(1) * 4)).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grain_scales_with_depth_and_threads() {
        assert_eq!(stream_grain(32, 1), 8);
        assert_eq!(stream_grain(32, 4), 2);
        assert_eq!(stream_grain(32, 8), 1);
        assert_eq!(stream_grain(4, 8), 1, "never zero");
        assert_eq!(stream_grain(0, 0), 1);
        assert_eq!(stream_grain(256, 4), 16);
    }
}
