//! Quasi-static RBC stretching — the optical-tweezer benchmark every RBC
//! membrane model is validated against (Mills et al. 2004; used by the
//! HARVEY lineage the paper builds on).
//!
//! Opposite forces pull on small patches at the cell's diametral ends; the
//! axial diameter grows, the transverse diameter shrinks, monotonically in
//! the applied force and sublinearly at large forces (strain hardening from
//! the Skalak I₂ term).

use apr_membrane::{relax, Membrane, MembraneMaterial, ReferenceState, RelaxParams};
use apr_mesh::{biconcave_rbc_mesh, Vec3};
use std::sync::Arc;

/// Stretch the cell with total force `f` (split over end patches) and
/// return (axial diameter, transverse diameter) at elastic equilibrium.
fn stretch(membrane: &Membrane, base: &[Vec3], f: f64) -> (f64, f64) {
    // End patches: the 5% of vertices with extreme x.
    let n = base.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| base[a].x.total_cmp(&base[b].x));
    let k = (n / 20).max(3);
    let left: Vec<usize> = order[..k].to_vec();
    let right: Vec<usize> = order[n - k..].to_vec();

    let mut verts = base.to_vec();
    let mut forces = vec![Vec3::ZERO; n];
    // Quasi-static: alternate force application and membrane relaxation by
    // explicit damped iteration (gradient flow with the external load).
    let per_vertex = f / k as f64;
    for _ in 0..4000 {
        forces.iter_mut().for_each(|x| *x = Vec3::ZERO);
        membrane.compute_forces(&verts, &mut forces);
        for &i in &left {
            forces[i].x -= per_vertex;
        }
        for &i in &right {
            forces[i].x += per_vertex;
        }
        let fmax = forces.iter().map(|v| v.norm()).fold(0.0f64, f64::max);
        if fmax < 1e-9 {
            break;
        }
        let step = 0.02 / fmax.max(1e-12);
        for (v, g) in verts.iter_mut().zip(&forces) {
            *v += *g * step.min(0.05);
        }
    }
    let (mut xmin, mut xmax) = (f64::MAX, f64::MIN);
    let (mut ymin, mut ymax) = (f64::MAX, f64::MIN);
    for v in &verts {
        xmin = xmin.min(v.x);
        xmax = xmax.max(v.x);
        ymin = ymin.min(v.y);
        ymax = ymax.max(v.y);
    }
    (xmax - xmin, ymax - ymin)
}

#[test]
fn stretching_response_matches_tweezer_phenomenology() {
    let mesh = biconcave_rbc_mesh(2, 1.0);
    let re = Arc::new(ReferenceState::build(&mesh));
    let membrane = Membrane::new(re, MembraneMaterial::rbc(1.0, 0.005));

    // Relax the discretized reference first (FEM equilibrium ≈ input shape).
    let mut base = mesh.vertices.clone();
    relax(
        &membrane,
        &mut base,
        RelaxParams {
            max_iterations: 200,
            ..Default::default()
        },
    );
    let (d_axial0, d_trans0) = stretch(&membrane, &base, 0.0);

    let mut prev_axial = d_axial0;
    let mut prev_trans = d_trans0;
    let mut stiffness = Vec::new();
    for force in [0.2, 0.5, 1.0] {
        let (da, dt) = stretch(&membrane, &base, force);
        // Axial diameter grows, transverse shrinks — monotonically.
        assert!(
            da > prev_axial - 1e-6,
            "axial shrank at f={force}: {da} < {prev_axial}"
        );
        assert!(
            dt < prev_trans + 1e-6,
            "transverse grew at f={force}: {dt} > {prev_trans}"
        );
        stiffness.push((da - d_axial0) / force);
        prev_axial = da;
        prev_trans = dt;
    }
    // Meaningful deformation at the top force (tweezer stretches reach
    // ~50% axial strain at 200 pN; we just require a clearly elastic range).
    let strain = (prev_axial - d_axial0) / d_axial0;
    assert!(strain > 0.05, "top-force axial strain only {strain}");
    // The response stays in a bounded elastic band: compliance may rise
    // modestly while the dimple unfolds (the soft geometric mode the real
    // tweezer curve also shows at low force) but must not run away.
    let (min_c, max_c) = stiffness
        .iter()
        .fold((f64::MAX, f64::MIN), |(lo, hi), &c| (lo.min(c), hi.max(c)));
    assert!(max_c < 2.0 * min_c, "compliance not bounded: {stiffness:?}");
    // And the cell visibly necks: transverse diameter shrank.
    assert!(
        prev_trans < d_trans0 - 1e-3,
        "no transverse necking: {prev_trans} vs {d_trans0}"
    );
}

#[test]
fn stiffer_membrane_stretches_less() {
    let mesh = biconcave_rbc_mesh(1, 1.0);
    let re = Arc::new(ReferenceState::build(&mesh));
    let soft = Membrane::new(Arc::clone(&re), MembraneMaterial::rbc(1.0, 0.005));
    let stiff = Membrane::new(re, MembraneMaterial::rbc(5.0, 0.025));

    let mut base = mesh.vertices.clone();
    relax(
        &soft,
        &mut base,
        RelaxParams {
            max_iterations: 100,
            ..Default::default()
        },
    );
    let f = 0.1;
    let (da_soft, _) = stretch(&soft, &base, f);
    let (da_stiff, _) = stretch(&stiff, &base, f);
    let (da0, _) = stretch(&soft, &base, 0.0);
    let ext_soft = da_soft - da0;
    let ext_stiff = da_stiff - da0;
    assert!(
        ext_stiff < 0.5 * ext_soft,
        "5× modulus should stretch ≪: soft {ext_soft}, stiff {ext_stiff}"
    );
}
