//! Property-based tests of membrane energetics.

use apr_membrane::skalak::skalak_energy_density;
use apr_membrane::{Membrane, MembraneMaterial, ReferenceState};
use apr_mesh::{icosphere, Vec3};
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    /// The Skalak energy density is non-negative for any physical
    /// principal-stretch pair (it vanishes only at λ₁ = λ₂ = 1).
    #[test]
    fn skalak_density_nonnegative(
        l1 in 0.2..3.0f64,
        l2 in 0.2..3.0f64,
        c in 1.0..200.0f64,
    ) {
        let i1 = l1 * l1 + l2 * l2 - 2.0;
        let i2 = l1 * l1 * l2 * l2 - 1.0;
        let w = skalak_energy_density(1.0, c, i1, i2);
        prop_assert!(w >= -1e-12, "W({l1},{l2}) = {w}");
    }

    /// Energy is invariant under rigid translation and rotation for
    /// arbitrary transforms.
    #[test]
    fn energy_is_frame_invariant(
        tx in -5.0..5.0f64,
        ty in -5.0..5.0f64,
        tz in -5.0..5.0f64,
        angle in -3.0..3.0f64,
        stretch in 0.9..1.1f64,
    ) {
        let mesh = icosphere(1, 1.0);
        let re = Arc::new(ReferenceState::build(&mesh));
        let mem = Membrane::new(re, MembraneMaterial::rbc(1.0, 0.1));
        // Deform, measure, then rigidly move and re-measure.
        let deformed: Vec<Vec3> = mesh.vertices.iter().map(|&v| v * stretch).collect();
        let e0 = mem.energy(&deformed).total();
        let axis = Vec3::new(0.3, -0.5, 0.8);
        let moved: Vec<Vec3> = deformed
            .iter()
            .map(|&v| v.rotate_about(axis, angle) + Vec3::new(tx, ty, tz))
            .collect();
        let e1 = mem.energy(&moved).total();
        prop_assert!((e0 - e1).abs() <= 1e-9 * (1.0 + e0), "{e0} vs {e1}");
    }

    /// The reference configuration is the unique energy minimum along
    /// uniform dilations: any scale ≠ 1 raises the energy.
    #[test]
    fn reference_is_dilation_minimum(scale in 0.7..1.3f64) {
        let mesh = icosphere(1, 1.0);
        let re = Arc::new(ReferenceState::build(&mesh));
        let mem = Membrane::new(re, MembraneMaterial::rbc(1.0, 0.1));
        let scaled: Vec<Vec3> = mesh.vertices.iter().map(|&v| v * scale).collect();
        let e = mem.energy(&scaled).total();
        prop_assert!(e >= -1e-12, "negative energy {e}");
        if (scale - 1.0).abs() > 0.01 {
            prop_assert!(e > 1e-6, "scale {scale}: energy {e}");
        }
        // Quadratic growth bound near the minimum (all penalty terms are
        // quadratic in the dilation with O(10³) stiffness here).
        prop_assert!(
            e <= 1e5 * (scale - 1.0) * (scale - 1.0) + 1e-12,
            "scale {scale}: energy {e} grows faster than quadratic bound"
        );
    }
}
