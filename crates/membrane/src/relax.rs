//! Quasi-static membrane relaxation.
//!
//! Gradient descent with backtracking line search on the total membrane
//! energy. Used to pre-equilibrate cell shapes — the paper stresses that
//! "simply dropping in undeformed cells near the CTC would almost certainly
//! have an unphysical effect" (§1), so shapes inserted near sensitive
//! regions are first relaxed to their elastic equilibrium, and deformed
//! shapes recycled on window moves can be sanitized the same way.

use crate::forces::Membrane;
use apr_mesh::Vec3;

/// Outcome of a relaxation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RelaxReport {
    /// Iterations performed.
    pub iterations: usize,
    /// Energy before relaxation.
    pub initial_energy: f64,
    /// Energy after relaxation.
    pub final_energy: f64,
    /// Maximum force magnitude at exit.
    pub residual_force: f64,
    /// True if the force residual dropped below the requested tolerance.
    pub converged: bool,
}

/// Relaxation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RelaxParams {
    /// Maximum iterations.
    pub max_iterations: usize,
    /// Stop once the max vertex force falls below this.
    pub force_tolerance: f64,
    /// Initial trial displacement of the most-loaded vertex per iteration.
    pub step: f64,
}

impl Default for RelaxParams {
    fn default() -> Self {
        Self {
            max_iterations: 500,
            force_tolerance: 1e-8,
            step: 0.01,
        }
    }
}

/// Relax `vertices` toward the membrane's elastic equilibrium in place.
pub fn relax(membrane: &Membrane, vertices: &mut [Vec3], params: RelaxParams) -> RelaxReport {
    assert_eq!(
        vertices.len(),
        membrane.vertex_count(),
        "vertex count mismatch"
    );
    let mut forces = vec![Vec3::ZERO; vertices.len()];
    let mut energy = membrane.energy(vertices).total();
    let initial_energy = energy;
    let mut residual = f64::MAX;
    let mut iterations = 0;
    let mut scratch: Vec<Vec3> = vertices.to_vec();

    for it in 0..params.max_iterations {
        iterations = it + 1;
        forces.iter_mut().for_each(|f| *f = Vec3::ZERO);
        membrane.compute_forces(vertices, &mut forces);
        residual = forces.iter().map(|f| f.norm()).fold(0.0f64, f64::max);
        if residual < params.force_tolerance {
            return RelaxReport {
                iterations,
                initial_energy,
                final_energy: energy,
                residual_force: residual,
                converged: true,
            };
        }
        // Backtracking line search along the (descent) force direction.
        let mut step = params.step / residual;
        scratch.copy_from_slice(vertices);
        loop {
            for ((v, s), f) in vertices.iter_mut().zip(&scratch).zip(&forces) {
                *v = *s + *f * step;
            }
            let e = membrane.energy(vertices).total();
            if e <= energy {
                energy = e;
                break;
            }
            step *= 0.5;
            if step * residual < 1e-15 {
                // Cannot descend further (numerical floor): restore and stop.
                vertices.copy_from_slice(&scratch);
                return RelaxReport {
                    iterations,
                    initial_energy,
                    final_energy: energy,
                    residual_force: residual,
                    converged: residual < params.force_tolerance,
                };
            }
        }
    }
    RelaxReport {
        iterations,
        initial_energy,
        final_energy: energy,
        residual_force: residual,
        converged: residual < params.force_tolerance,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::material::MembraneMaterial;
    use crate::reference::ReferenceState;
    use apr_mesh::icosphere;
    use std::sync::Arc;

    fn membrane() -> (Membrane, Vec<Vec3>) {
        let mesh = icosphere(1, 1.0);
        let re = Arc::new(ReferenceState::build(&mesh));
        (
            Membrane::new(re, MembraneMaterial::rbc(1.0, 0.02)),
            mesh.vertices,
        )
    }

    #[test]
    fn relaxation_recovers_reference_shape() {
        let (mem, reference) = membrane();
        let mut verts: Vec<Vec3> = reference
            .iter()
            .enumerate()
            .map(|(i, &v)| v * (1.0 + 0.08 * ((i * 7 % 11) as f64 / 11.0 - 0.5)))
            .collect();
        let report = relax(
            &mem,
            &mut verts,
            RelaxParams {
                max_iterations: 2000,
                ..Default::default()
            },
        );
        assert!(
            report.final_energy < 0.01 * report.initial_energy,
            "{report:?}"
        );
        // Vertices return close to the unit sphere.
        for v in &verts {
            assert!((v.norm() - 1.0).abs() < 0.05, "radius {}", v.norm());
        }
    }

    #[test]
    fn already_relaxed_shape_converges_immediately() {
        let (mem, reference) = membrane();
        let mut verts = reference.clone();
        let report = relax(&mem, &mut verts, RelaxParams::default());
        assert!(report.converged);
        assert!(report.iterations <= 2, "{report:?}");
    }

    #[test]
    fn energy_never_increases() {
        let (mem, reference) = membrane();
        let mut verts: Vec<Vec3> = reference.iter().map(|&v| v * 1.15).collect();
        let report = relax(
            &mem,
            &mut verts,
            RelaxParams {
                max_iterations: 50,
                ..Default::default()
            },
        );
        assert!(report.final_energy <= report.initial_energy);
    }
}
