//! Global area and volume penalty constraints.
//!
//! RBC interiors are incompressible and the lipid membrane is locally
//! area-preserving; on top of the Skalak `C` term these quadratic global
//! penalties keep the FEM cells within physiological bounds:
//!
//! ```text
//! E_A = k_A/2 · (A − A₀)²/A₀        E_V = k_V/2 · (V − V₀)²/V₀
//! ```

use crate::reference::ReferenceState;
use apr_mesh::Vec3;

/// Current surface area over the reference connectivity.
pub fn surface_area(reference: &ReferenceState, vertices: &[Vec3]) -> f64 {
    reference
        .triangles
        .iter()
        .map(|&[a, b, c]| {
            let (a, b, c) = (
                vertices[a as usize],
                vertices[b as usize],
                vertices[c as usize],
            );
            0.5 * (b - a).cross(c - a).norm()
        })
        .sum()
}

/// Current enclosed volume over the reference connectivity.
pub fn enclosed_volume(reference: &ReferenceState, vertices: &[Vec3]) -> f64 {
    reference
        .triangles
        .iter()
        .map(|&[a, b, c]| {
            vertices[a as usize].dot(vertices[b as usize].cross(vertices[c as usize])) / 6.0
        })
        .sum()
}

/// Add global-area and volume penalty forces; returns the constraint energy.
pub fn add_constraint_forces(
    reference: &ReferenceState,
    global_area_k: f64,
    volume_k: f64,
    vertices: &[Vec3],
    forces: &mut [Vec3],
) -> f64 {
    assert_eq!(
        vertices.len(),
        reference.vertex_count,
        "vertex count mismatch"
    );
    let a = surface_area(reference, vertices);
    let v = enclosed_volume(reference, vertices);
    let (a0, v0) = (reference.area0, reference.volume0);
    let coeff_a = -global_area_k * (a - a0) / a0;
    let coeff_v = -volume_k * (v - v0) / v0;

    for &[ia, ib, ic] in &reference.triangles {
        let (pa, pb, pc) = (
            vertices[ia as usize],
            vertices[ib as usize],
            vertices[ic as usize],
        );
        // Area gradient: ∂A_t/∂p_a = ((b − c) × n̂)/2, cyclic.
        let n = (pb - pa).cross(pc - pa);
        if let Some(nhat) = n.try_normalize(1e-300) {
            forces[ia as usize] += (pb - pc).cross(nhat) * (0.5 * coeff_a);
            forces[ib as usize] += (pc - pa).cross(nhat) * (0.5 * coeff_a);
            forces[ic as usize] += (pa - pb).cross(nhat) * (0.5 * coeff_a);
        }
        // Volume gradient: ∂V/∂p_a = (b × c)/6, cyclic.
        forces[ia as usize] += pb.cross(pc) * (coeff_v / 6.0);
        forces[ib as usize] += pc.cross(pa) * (coeff_v / 6.0);
        forces[ic as usize] += pa.cross(pb) * (coeff_v / 6.0);
    }
    0.5 * global_area_k * (a - a0) * (a - a0) / a0 + 0.5 * volume_k * (v - v0) * (v - v0) / v0
}

/// Constraint energy without force evaluation.
pub fn constraint_energy(
    reference: &ReferenceState,
    global_area_k: f64,
    volume_k: f64,
    vertices: &[Vec3],
) -> f64 {
    let a = surface_area(reference, vertices);
    let v = enclosed_volume(reference, vertices);
    0.5 * global_area_k * (a - reference.area0).powi(2) / reference.area0
        + 0.5 * volume_k * (v - reference.volume0).powi(2) / reference.volume0
}

#[cfg(test)]
mod tests {
    use super::*;
    use apr_mesh::icosphere;

    #[test]
    fn undeformed_has_no_constraint_force() {
        let mesh = icosphere(2, 1.0);
        let re = ReferenceState::build(&mesh);
        let mut forces = vec![Vec3::ZERO; mesh.vertex_count()];
        let e = add_constraint_forces(&re, 1.0, 1.0, &mesh.vertices, &mut forces);
        assert!(e.abs() < 1e-18);
        for f in &forces {
            assert!(f.norm() < 1e-12);
        }
    }

    #[test]
    fn forces_match_finite_difference() {
        let mesh = icosphere(1, 1.0);
        let re = ReferenceState::build(&mesh);
        let (ka, kv) = (3.0, 7.0);
        let mut verts: Vec<Vec3> = mesh
            .vertices
            .iter()
            .enumerate()
            .map(|(i, &v)| v * (1.0 + 0.04 * ((i % 5) as f64 / 5.0 - 0.4)))
            .collect();
        let mut forces = vec![Vec3::ZERO; verts.len()];
        add_constraint_forces(&re, ka, kv, &verts, &mut forces);
        let h = 1e-6;
        for vi in [0usize, 3, 9, 24] {
            for axis in 0..3 {
                let orig = verts[vi][axis];
                verts[vi][axis] = orig + h;
                let ep = constraint_energy(&re, ka, kv, &verts);
                verts[vi][axis] = orig - h;
                let em = constraint_energy(&re, ka, kv, &verts);
                verts[vi][axis] = orig;
                let fd = -(ep - em) / (2.0 * h);
                let an = forces[vi][axis];
                assert!(
                    (fd - an).abs() < 1e-5 * (1.0 + an.abs()),
                    "vertex {vi} axis {axis}: analytic {an} vs fd {fd}"
                );
            }
        }
    }

    #[test]
    fn inflation_is_resisted_by_volume_penalty() {
        let mesh = icosphere(2, 1.0);
        let re = ReferenceState::build(&mesh);
        let mut inflated = mesh.clone();
        inflated.scale(1.1);
        let mut forces = vec![Vec3::ZERO; inflated.vertex_count()];
        add_constraint_forces(&re, 0.0, 1.0, &inflated.vertices, &mut forces);
        for (v, f) in inflated.vertices.iter().zip(&forces) {
            assert!(f.dot(*v) < 0.0, "volume force must point inward");
        }
    }

    #[test]
    fn deflation_is_resisted() {
        let mesh = icosphere(2, 1.0);
        let re = ReferenceState::build(&mesh);
        let mut shrunk = mesh.clone();
        shrunk.scale(0.9);
        let mut forces = vec![Vec3::ZERO; shrunk.vertex_count()];
        add_constraint_forces(&re, 1.0, 1.0, &shrunk.vertices, &mut forces);
        for (v, f) in shrunk.vertices.iter().zip(&forces) {
            assert!(f.dot(*v) > 0.0, "restoring force must point outward");
        }
    }

    #[test]
    fn helper_metrics_match_mesh_methods() {
        let mesh = icosphere(3, 1.3);
        let re = ReferenceState::build(&mesh);
        assert!((surface_area(&re, &mesh.vertices) - mesh.surface_area()).abs() < 1e-12);
        assert!((enclosed_volume(&re, &mesh.vertices) - mesh.enclosed_volume()).abs() < 1e-12);
    }
}
