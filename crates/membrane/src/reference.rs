//! Precomputed reference (undeformed) state of a membrane mesh.
//!
//! Built once per cell *shape*; shared by every instance of that shape, so a
//! window full of thousands of identical RBCs stores one copy (part of the
//! paper's cell-memory frugality, §2.4.5/§3.6).

use apr_mesh::topology::EdgeTopology;
use apr_mesh::{TriMesh, Vec3};

/// Per-triangle reference data for the in-plane FEM.
#[derive(Debug, Clone, Copy)]
pub struct TriangleRef {
    /// Inverse of the 2×2 reference edge matrix `[A1 A2]` (columns are the
    /// two edge vectors expressed in the reference triangle's local frame).
    pub inv_ref: [[f64; 2]; 2],
    /// Undeformed triangle area.
    pub area: f64,
}

/// Per-interior-edge reference data for bending.
#[derive(Debug, Clone, Copy)]
pub struct EdgeRef {
    /// Edge endpoint vertex indices.
    pub v: [u32; 2],
    /// Opposite vertices of the two adjacent triangles.
    pub opposite: [u32; 2],
    /// Spontaneous (reference) dihedral angle, radians; 0 = flat.
    pub theta0: f64,
}

/// Complete reference state of a membrane mesh.
#[derive(Debug, Clone)]
pub struct ReferenceState {
    /// Triangle connectivity (copied from the reference mesh).
    pub triangles: Vec<[u32; 3]>,
    /// Per-triangle FEM reference data.
    pub tri_refs: Vec<TriangleRef>,
    /// Per-interior-edge bending reference data.
    pub edge_refs: Vec<EdgeRef>,
    /// Undeformed total surface area.
    pub area0: f64,
    /// Undeformed enclosed volume.
    pub volume0: f64,
    /// Number of vertices in the mesh.
    pub vertex_count: usize,
}

/// Project triangle edges into a local orthonormal frame:
/// returns the 2×2 matrix columns `(A1, A2)` for edges `(b−a, c−a)`.
#[inline]
pub fn local_edge_matrix(a: Vec3, b: Vec3, c: Vec3) -> [[f64; 2]; 2] {
    let e1 = b - a;
    let e2 = c - a;
    let u = e1.normalized();
    let n = e1.cross(e2);
    let v = n.cross(e1).normalized();
    // Columns: [A1 A2] with A1 = (|e1|, 0), A2 = (e2·u, e2·v).
    [[e1.norm(), e2.dot(u)], [0.0, e2.dot(v)]]
}

/// Signed dihedral angle across the edge shared by triangles `(e0, e1, o0)`
/// and `(e1, e0, o1)`; 0 when coplanar, positive when the surface is locally
/// convex with respect to the triangle normals.
#[inline]
pub fn dihedral_angle(e0: Vec3, e1: Vec3, o0: Vec3, o1: Vec3) -> f64 {
    let e = e1 - e0;
    let n1 = (e1 - e0).cross(o0 - e0);
    let n2 = (o1 - e0).cross(e1 - e0);
    let n1n = n1.norm();
    let n2n = n2.norm();
    if n1n < 1e-300 || n2n < 1e-300 {
        return 0.0;
    }
    let cos = (n1.dot(n2) / (n1n * n2n)).clamp(-1.0, 1.0);
    let sin = n1.cross(n2).dot(e) / (n1n * n2n * e.norm().max(1e-300));
    sin.atan2(cos)
}

impl ReferenceState {
    /// Build the reference state from an undeformed mesh.
    ///
    /// # Panics
    /// Panics on open meshes (cell membranes are closed) or degenerate
    /// reference triangles.
    pub fn build(mesh: &TriMesh) -> Self {
        let topo = EdgeTopology::build(mesh);
        assert!(topo.is_closed(), "membrane meshes must be closed");
        let tri_refs = mesh
            .triangles
            .iter()
            .enumerate()
            .map(|(t, &[a, b, c])| {
                let m = local_edge_matrix(
                    mesh.vertices[a as usize],
                    mesh.vertices[b as usize],
                    mesh.vertices[c as usize],
                );
                let det = m[0][0] * m[1][1] - m[0][1] * m[1][0];
                assert!(det.abs() > 1e-300, "degenerate reference triangle {t}");
                let inv = [
                    [m[1][1] / det, -m[0][1] / det],
                    [-m[1][0] / det, m[0][0] / det],
                ];
                TriangleRef {
                    inv_ref: inv,
                    area: mesh.triangle_area(t),
                }
            })
            .collect();
        let edge_refs = topo
            .edges
            .iter()
            .map(|e| {
                let theta0 = dihedral_angle(
                    mesh.vertices[e.v[0] as usize],
                    mesh.vertices[e.v[1] as usize],
                    mesh.vertices[e.opposite[0] as usize],
                    mesh.vertices[e.opposite[1] as usize],
                );
                EdgeRef {
                    v: e.v,
                    opposite: e.opposite,
                    theta0,
                }
            })
            .collect();
        Self {
            triangles: mesh.triangles.clone(),
            tri_refs,
            edge_refs,
            area0: mesh.surface_area(),
            volume0: mesh.enclosed_volume(),
            vertex_count: mesh.vertex_count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apr_mesh::icosphere;

    #[test]
    fn sphere_reference_is_consistent() {
        let mesh = icosphere(2, 1.0);
        let re = ReferenceState::build(&mesh);
        assert_eq!(re.tri_refs.len(), mesh.triangle_count());
        assert!((re.area0 - mesh.surface_area()).abs() < 1e-12);
        assert!((re.volume0 - mesh.enclosed_volume()).abs() < 1e-12);
        // Every edge of a convex mesh is genuinely folded; magnitudes on an
        // icosphere cluster tightly. (Signs depend on the stored edge
        // ordering and are only consistent per edge, which is all the
        // bending energy requires.)
        let mags: Vec<f64> = re.edge_refs.iter().map(|e| e.theta0.abs()).collect();
        let mean = mags.iter().sum::<f64>() / mags.len() as f64;
        assert!(
            mean > 0.05,
            "sphere edges should be folded, mean |θ₀| = {mean}"
        );
        for m in &mags {
            assert!(
                (m - mean).abs() < 0.6 * mean,
                "outlier dihedral {m} vs mean {mean}"
            );
        }
    }

    #[test]
    fn dihedral_angle_is_zero_for_coplanar() {
        let t = dihedral_angle(
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.5, 1.0, 0.0),
            Vec3::new(0.5, -1.0, 0.0),
        );
        assert!(t.abs() < 1e-12);
    }

    #[test]
    fn dihedral_angle_is_antisymmetric_under_fold_direction() {
        let up = dihedral_angle(
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.5, 1.0, 0.2),
            Vec3::new(0.5, -1.0, 0.2),
        );
        let down = dihedral_angle(
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.5, 1.0, -0.2),
            Vec3::new(0.5, -1.0, -0.2),
        );
        assert!((up + down).abs() < 1e-12);
        assert!(up.abs() > 0.1);
    }

    #[test]
    fn local_edge_matrix_preserves_lengths_and_area() {
        let (a, b, c) = (
            Vec3::new(0.3, -0.2, 0.9),
            Vec3::new(1.1, 0.4, 0.7),
            Vec3::new(0.5, 1.2, 1.4),
        );
        let m = local_edge_matrix(a, b, c);
        // First column length = |b−a|.
        let l1 = (m[0][0] * m[0][0] + m[1][0] * m[1][0]).sqrt();
        assert!((l1 - (b - a).norm()).abs() < 1e-12);
        // Determinant / 2 = triangle area.
        let det = m[0][0] * m[1][1] - m[0][1] * m[1][0];
        let area = 0.5 * (b - a).cross(c - a).norm();
        assert!((det.abs() / 2.0 - area).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "closed")]
    fn open_mesh_rejected() {
        let open = TriMesh::new(vec![Vec3::ZERO, Vec3::X, Vec3::Y], vec![[0, 1, 2]]);
        let _ = ReferenceState::build(&open);
    }
}
