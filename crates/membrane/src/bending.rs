//! Bending resistance via dihedral angles (discrete Helfrich analogue of
//! paper Eq. 3).
//!
//! Each interior edge stores its spontaneous dihedral angle `θ₀` from the
//! reference shape; the energy `E_b·(1 − cos(θ − θ₀))` penalizes deviation,
//! which for small angles reduces to the quadratic Helfrich form
//! `E_b/2·(θ − θ₀)²` with the spontaneous-curvature offset of Eq. 3.

use crate::reference::{dihedral_angle, ReferenceState};
use apr_mesh::Vec3;

/// Gradient of the dihedral angle θ with respect to the four stencil
/// vertices `(x0, x1)` = edge, `(x2, x3)` = opposite vertices. Uses the
/// discrete-shells closed form; the four gradients sum to zero.
#[inline]
pub fn dihedral_gradient(x0: Vec3, x1: Vec3, x2: Vec3, x3: Vec3) -> [Vec3; 4] {
    let e = x1 - x0;
    let l = e.norm();
    if l < 1e-300 {
        return [Vec3::ZERO; 4];
    }
    let n1 = (x1 - x0).cross(x2 - x0);
    let n2 = (x3 - x0).cross(x1 - x0);
    let n1sq = n1.norm_sq();
    let n2sq = n2.norm_sq();
    if n1sq < 1e-300 || n2sq < 1e-300 {
        return [Vec3::ZERO; 4];
    }
    let g2 = -n1 * (l / n1sq);
    let g3 = -n2 * (l / n2sq);
    let g0 = -(n1 * ((x2 - x1).dot(e) / (l * n1sq)) + n2 * ((x3 - x1).dot(e) / (l * n2sq)));
    let g1 = -(n1 * ((x0 - x2).dot(e) / (l * n1sq)) + n2 * ((x0 - x3).dot(e) / (l * n2sq)));
    [g0, g1, g2, g3]
}

/// Add bending forces for every interior edge; returns total bending energy.
pub fn add_bending_forces(
    reference: &ReferenceState,
    eb: f64,
    vertices: &[Vec3],
    forces: &mut [Vec3],
) -> f64 {
    assert_eq!(
        vertices.len(),
        reference.vertex_count,
        "vertex count mismatch"
    );
    let mut energy = 0.0;
    for er in &reference.edge_refs {
        let x0 = vertices[er.v[0] as usize];
        let x1 = vertices[er.v[1] as usize];
        let x2 = vertices[er.opposite[0] as usize];
        let x3 = vertices[er.opposite[1] as usize];
        let theta = dihedral_angle(x0, x1, x2, x3);
        let dt = theta - er.theta0;
        energy += eb * (1.0 - dt.cos());
        let scale = -eb * dt.sin();
        let g = dihedral_gradient(x0, x1, x2, x3);
        forces[er.v[0] as usize] += g[0] * scale;
        forces[er.v[1] as usize] += g[1] * scale;
        forces[er.opposite[0] as usize] += g[2] * scale;
        forces[er.opposite[1] as usize] += g[3] * scale;
    }
    energy
}

/// Total bending energy without force evaluation.
pub fn bending_energy(reference: &ReferenceState, eb: f64, vertices: &[Vec3]) -> f64 {
    reference
        .edge_refs
        .iter()
        .map(|er| {
            let theta = dihedral_angle(
                vertices[er.v[0] as usize],
                vertices[er.v[1] as usize],
                vertices[er.opposite[0] as usize],
                vertices[er.opposite[1] as usize],
            );
            eb * (1.0 - (theta - er.theta0).cos())
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use apr_mesh::icosphere;

    #[test]
    fn gradients_sum_to_zero() {
        let x = [
            Vec3::new(0.0, 0.0, 0.1),
            Vec3::new(1.0, 0.1, 0.0),
            Vec3::new(0.5, 0.9, 0.3),
            Vec3::new(0.4, -0.8, 0.2),
        ];
        let g = dihedral_gradient(x[0], x[1], x[2], x[3]);
        let total: Vec3 = g.iter().copied().sum();
        assert!(total.norm() < 1e-12, "{total:?}");
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let mut x = [
            Vec3::new(0.0, 0.0, 0.1),
            Vec3::new(1.0, 0.1, 0.0),
            Vec3::new(0.5, 0.9, 0.3),
            Vec3::new(0.4, -0.8, 0.2),
        ];
        let g = dihedral_gradient(x[0], x[1], x[2], x[3]);
        let h = 1e-7;
        for vi in 0..4 {
            for axis in 0..3 {
                let orig = x[vi][axis];
                x[vi][axis] = orig + h;
                let tp = dihedral_angle(x[0], x[1], x[2], x[3]);
                x[vi][axis] = orig - h;
                let tm = dihedral_angle(x[0], x[1], x[2], x[3]);
                x[vi][axis] = orig;
                let fd = (tp - tm) / (2.0 * h);
                assert!(
                    (fd - g[vi][axis]).abs() < 1e-5 * (1.0 + fd.abs()),
                    "vertex {vi} axis {axis}: analytic {} vs fd {fd}",
                    g[vi][axis]
                );
            }
        }
    }

    #[test]
    fn undeformed_shape_has_zero_energy_and_force() {
        let mesh = icosphere(2, 1.0);
        let re = ReferenceState::build(&mesh);
        let mut forces = vec![Vec3::ZERO; mesh.vertex_count()];
        let e = add_bending_forces(&re, 1.0, &mesh.vertices, &mut forces);
        assert!(e.abs() < 1e-18, "energy = {e}");
        for f in &forces {
            assert!(f.norm() < 1e-12);
        }
    }

    #[test]
    fn bending_forces_match_finite_difference() {
        let mesh = icosphere(1, 1.0);
        let re = ReferenceState::build(&mesh);
        let eb = 0.5;
        let mut verts: Vec<Vec3> = mesh
            .vertices
            .iter()
            .enumerate()
            .map(|(i, &v)| v * (1.0 + 0.05 * ((i * 11 % 17) as f64 / 17.0 - 0.5)))
            .collect();
        let mut forces = vec![Vec3::ZERO; verts.len()];
        add_bending_forces(&re, eb, &verts, &mut forces);
        let h = 1e-6;
        for vi in [0usize, 5, 17, 33] {
            for axis in 0..3 {
                let orig = verts[vi][axis];
                verts[vi][axis] = orig + h;
                let ep = bending_energy(&re, eb, &verts);
                verts[vi][axis] = orig - h;
                let em = bending_energy(&re, eb, &verts);
                verts[vi][axis] = orig;
                let fd = -(ep - em) / (2.0 * h);
                let an = forces[vi][axis];
                assert!(
                    (fd - an).abs() < 1e-5 * (1.0 + an.abs()),
                    "vertex {vi} axis {axis}: analytic {an} vs fd {fd}"
                );
            }
        }
    }

    #[test]
    fn bending_resists_sharp_folds() {
        // Fold one vertex of the sphere inward: energy must increase and the
        // force on it must push it back outward.
        let mesh = icosphere(2, 1.0);
        let re = ReferenceState::build(&mesh);
        let mut verts = mesh.vertices.clone();
        verts[0] *= 0.7;
        let e = bending_energy(&re, 1.0, &verts);
        assert!(e > 1e-4, "energy = {e}");
        let mut forces = vec![Vec3::ZERO; verts.len()];
        add_bending_forces(&re, 1.0, &verts, &mut forces);
        // Outward = along the original vertex direction.
        assert!(forces[0].dot(mesh.vertices[0]) > 0.0, "{:?}", forces[0]);
    }

    #[test]
    fn rigid_rotation_produces_no_bending_force() {
        let mesh = icosphere(1, 1.0);
        let re = ReferenceState::build(&mesh);
        let mut moved = mesh.clone();
        moved.rotate(Vec3::new(1.0, 0.2, 0.1), 0.7);
        let mut forces = vec![Vec3::ZERO; moved.vertex_count()];
        let e = add_bending_forces(&re, 1.0, &moved.vertices, &mut forces);
        assert!(e < 1e-18);
        for f in &forces {
            assert!(f.norm() < 1e-9);
        }
    }
}
