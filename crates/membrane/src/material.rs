//! Membrane material parameters.

/// Elastic parameters of a cell membrane, in whatever unit system the caller
/// works in (engines pass lattice units via `apr_hemo::UnitConverter`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MembraneMaterial {
    /// Skalak shear elastic modulus `G_s` (force/length).
    pub shear_modulus: f64,
    /// Skalak area-preservation constant `C` (dimensionless, paper Eq. 2).
    pub skalak_c: f64,
    /// Bending modulus `E_b` (energy units, paper Eq. 3).
    pub bending_modulus: f64,
    /// Global surface-area penalty coefficient (energy/area).
    pub global_area_k: f64,
    /// Enclosed-volume penalty coefficient (energy/volume).
    pub volume_k: f64,
}

impl MembraneMaterial {
    /// A healthy RBC membrane with moduli expressed in the caller's units.
    ///
    /// `gs` is the shear modulus (paper: 5·10⁻⁶ N/m) and `eb` the bending
    /// modulus; the constraint coefficients default to values that hold area
    /// within ~1% and volume within ~0.1% under physiological shear.
    pub fn rbc(gs: f64, eb: f64) -> Self {
        Self {
            shear_modulus: gs,
            skalak_c: 100.0,
            bending_modulus: eb,
            global_area_k: 50.0 * gs,
            volume_k: 500.0 * gs,
        }
    }

    /// A circulating tumor cell: stiffer by the paper's factor (§3.3 uses
    /// `G_s = 1·10⁻⁴ N/m`, 20× the RBC value) and closer to spherical, so a
    /// smaller Skalak C suffices.
    pub fn ctc(gs: f64, eb: f64) -> Self {
        Self {
            shear_modulus: gs,
            skalak_c: 10.0,
            bending_modulus: eb,
            global_area_k: 50.0 * gs,
            volume_k: 500.0 * gs,
        }
    }

    /// Scale all moduli by `s` (unit conversions).
    pub fn scaled(self, s: f64) -> Self {
        Self {
            shear_modulus: self.shear_modulus * s,
            skalak_c: self.skalak_c,
            bending_modulus: self.bending_modulus * s,
            global_area_k: self.global_area_k * s,
            volume_k: self.volume_k * s,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctc_is_stiffer_than_rbc() {
        let rbc = MembraneMaterial::rbc(5e-6, 2e-19);
        let ctc = MembraneMaterial::ctc(1e-4, 2e-19);
        assert!(ctc.shear_modulus > 10.0 * rbc.shear_modulus);
    }

    #[test]
    fn scaling_is_linear_in_moduli_only() {
        let m = MembraneMaterial::rbc(5e-6, 2e-19).scaled(2.0);
        assert_eq!(m.shear_modulus, 1e-5);
        assert_eq!(m.skalak_c, 100.0);
        assert_eq!(m.bending_modulus, 4e-19);
    }
}
