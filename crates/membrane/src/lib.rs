//! Finite-element cell membrane mechanics (paper §2.2).
//!
//! "Each cell is modeled as a fluid-filled membrane represented by a
//! Lagrangian surface mesh composed of triangular elements. The membrane
//! model includes both elasticity and bending stiffness." This crate
//! provides exactly that: the Skalak constitutive law (Eq. 2) on linear
//! triangle finite elements, a discrete Helfrich-type dihedral bending
//! energy (Eq. 3), and global area/volume constraints, assembled by
//! [`Membrane`] into the surface force density the immersed boundary method
//! spreads onto the fluid.

pub mod bending;
pub mod constraints;
pub mod forces;
pub mod material;
pub mod neohookean;
pub mod reference;
pub mod relax;
pub mod skalak;

pub use forces::{EnergyBreakdown, Membrane};
pub use material::MembraneMaterial;
pub use neohookean::{add_neohookean_forces, neohookean_energy, neohookean_energy_density};
pub use reference::{dihedral_angle, ReferenceState};
pub use relax::{relax, RelaxParams, RelaxReport};
