//! In-plane Skalak finite-element forces (paper Eq. 2).
//!
//! Linear-triangle implementation: each triangle carries a 2×2 deformation
//! gradient `D` from its reference configuration; the strain invariants
//! `I₁ = tr(DᵀD) − 2` and `I₂ = det(DᵀD) − 1` feed the Skalak energy
//!
//! ```text
//! W_s = G_s/4 (I₁² + 2I₁ − 2I₂) + G_s·C/4 · I₂²
//! ```
//!
//! and analytic nodal forces follow from `F = −A₀ ∂W/∂x` via the first
//! Piola–Kirchhoff tensor `P = ∂W/∂D`, rotated back into the current
//! triangle plane. (DESIGN.md records the substitution of linear elements
//! for the paper's Loop-subdivision shells.)

use crate::reference::{local_edge_matrix, ReferenceState, TriangleRef};
use apr_mesh::Vec3;

/// Skalak energy density (per undeformed area) at invariants `(i1, i2)`.
#[inline]
pub fn skalak_energy_density(gs: f64, c: f64, i1: f64, i2: f64) -> f64 {
    gs / 4.0 * (i1 * i1 + 2.0 * i1 - 2.0 * i2) + gs * c / 4.0 * i2 * i2
}

/// Partial derivatives `(∂W/∂I₁, ∂W/∂I₂)`.
#[inline]
pub fn skalak_energy_gradient(gs: f64, c: f64, i1: f64, i2: f64) -> (f64, f64) {
    (gs / 2.0 * (i1 + 1.0), -gs / 2.0 + gs * c / 2.0 * i2)
}

/// Strain invariants of one deformed triangle against its reference.
#[inline]
pub fn triangle_invariants(tri: &TriangleRef, a: Vec3, b: Vec3, c: Vec3) -> (f64, f64) {
    let (d, _, _) = deformation_gradient(tri, a, b, c);
    let g00 = d[0][0] * d[0][0] + d[1][0] * d[1][0];
    let g11 = d[0][1] * d[0][1] + d[1][1] * d[1][1];
    let det_d = d[0][0] * d[1][1] - d[0][1] * d[1][0];
    (g00 + g11 - 2.0, det_d * det_d - 1.0)
}

/// Deformation gradient `D = B·M⁻¹` plus the current local frame `(u, v)`.
#[inline]
fn deformation_gradient(
    tri: &TriangleRef,
    a: Vec3,
    b: Vec3,
    c: Vec3,
) -> ([[f64; 2]; 2], Vec3, Vec3) {
    let bmat = local_edge_matrix(a, b, c);
    let e1 = (b - a).normalized();
    let n = (b - a).cross(c - a);
    let v = n.cross(b - a).normalized();
    let inv = tri.inv_ref;
    // D_{ij} = Σ_k B_{ik} inv_{kj}
    let mut d = [[0.0; 2]; 2];
    for i in 0..2 {
        for j in 0..2 {
            d[i][j] = bmat[i][0] * inv[0][j] + bmat[i][1] * inv[1][j];
        }
    }
    (d, e1, v)
}

/// Add Skalak in-plane forces for every triangle; returns the total elastic
/// energy. `forces` must have one slot per vertex.
pub fn add_skalak_forces(
    reference: &ReferenceState,
    gs: f64,
    c_skalak: f64,
    vertices: &[Vec3],
    forces: &mut [Vec3],
) -> f64 {
    add_inplane_forces_with(
        reference,
        vertices,
        forces,
        |i1, i2| skalak_energy_density(gs, c_skalak, i1, i2),
        |i1, i2| skalak_energy_gradient(gs, c_skalak, i1, i2),
    )
}

/// Generic in-plane FEM driver: any hyperelastic membrane law expressed as
/// `W(I₁, I₂)` with gradient `(∂W/∂I₁, ∂W/∂I₂)` gets analytic nodal forces
/// through the shared deformation-gradient machinery (used by both the
/// Skalak law and `crate::neohookean`).
pub fn add_inplane_forces_with(
    reference: &ReferenceState,
    vertices: &[Vec3],
    forces: &mut [Vec3],
    energy_density: impl Fn(f64, f64) -> f64,
    energy_gradient: impl Fn(f64, f64) -> (f64, f64),
) -> f64 {
    assert_eq!(
        vertices.len(),
        reference.vertex_count,
        "vertex count mismatch"
    );
    assert_eq!(forces.len(), vertices.len(), "force buffer mismatch");
    let mut energy = 0.0;
    for (t, &[ia, ib, ic]) in reference.triangles.iter().enumerate() {
        let tri = &reference.tri_refs[t];
        let (a, b, c) = (
            vertices[ia as usize],
            vertices[ib as usize],
            vertices[ic as usize],
        );
        let (d, u_axis, v_axis) = deformation_gradient(tri, a, b, c);
        let g00 = d[0][0] * d[0][0] + d[1][0] * d[1][0];
        let g11 = d[0][1] * d[0][1] + d[1][1] * d[1][1];
        let det_d = d[0][0] * d[1][1] - d[0][1] * d[1][0];
        let i1 = g00 + g11 - 2.0;
        let i2 = det_d * det_d - 1.0;
        energy += tri.area * energy_density(i1, i2);
        let (dw1, dw2) = energy_gradient(i1, i2);

        // P = 2·dw1·D + 2·dw2·det(G)·D⁻ᵀ, with det(G) = det(D)² and
        // det(G)·D⁻ᵀ = det(D)·adj(D)ᵀ (avoids dividing by det D).
        let adj_t = [[d[1][1], -d[1][0]], [-d[0][1], d[0][0]]];
        let mut p = [[0.0; 2]; 2];
        for i in 0..2 {
            for j in 0..2 {
                p[i][j] = 2.0 * dw1 * d[i][j] + 2.0 * dw2 * det_d * adj_t[i][j];
            }
        }

        // Edge-space gradient: G_edge = A0 · P · inv_refᵀ; columns are the
        // energy gradients w.r.t. edge1 (b−a) and edge2 (c−a) in 2D.
        let inv = tri.inv_ref;
        let mut ge = [[0.0; 2]; 2];
        for i in 0..2 {
            for k in 0..2 {
                ge[i][k] = tri.area * (p[i][0] * inv[k][0] + p[i][1] * inv[k][1]);
            }
        }
        // Back to 3D: force = −gradient, rotated by the current frame.
        let fb = -(u_axis * ge[0][0] + v_axis * ge[1][0]);
        let fc = -(u_axis * ge[0][1] + v_axis * ge[1][1]);
        forces[ib as usize] += fb;
        forces[ic as usize] += fc;
        forces[ia as usize] -= fb + fc;
    }
    energy
}

/// Total Skalak energy without force evaluation.
pub fn skalak_energy(reference: &ReferenceState, gs: f64, c_skalak: f64, vertices: &[Vec3]) -> f64 {
    inplane_energy_with(reference, vertices, |i1, i2| {
        skalak_energy_density(gs, c_skalak, i1, i2)
    })
}

/// Generic in-plane energy for any `W(I₁, I₂)` law.
pub fn inplane_energy_with(
    reference: &ReferenceState,
    vertices: &[Vec3],
    energy_density: impl Fn(f64, f64) -> f64,
) -> f64 {
    let mut energy = 0.0;
    for (t, &[ia, ib, ic]) in reference.triangles.iter().enumerate() {
        let tri = &reference.tri_refs[t];
        let (i1, i2) = triangle_invariants(
            tri,
            vertices[ia as usize],
            vertices[ib as usize],
            vertices[ic as usize],
        );
        energy += tri.area * energy_density(i1, i2);
    }
    energy
}

#[cfg(test)]
mod tests {
    use super::*;
    use apr_mesh::icosphere;

    #[test]
    fn undeformed_triangle_has_zero_invariants_and_force() {
        let mesh = icosphere(1, 1.0);
        let re = ReferenceState::build(&mesh);
        let mut forces = vec![Vec3::ZERO; mesh.vertex_count()];
        let e = add_skalak_forces(&re, 1.0, 50.0, &mesh.vertices, &mut forces);
        assert!(e.abs() < 1e-20, "energy = {e}");
        for f in &forces {
            assert!(f.norm() < 1e-12);
        }
    }

    #[test]
    fn rigid_motion_produces_no_force() {
        let mesh = icosphere(1, 1.0);
        let re = ReferenceState::build(&mesh);
        let mut moved = mesh.clone();
        moved.rotate(Vec3::new(0.3, 1.0, -0.2), 0.8);
        moved.translate(Vec3::new(2.0, -1.0, 0.5));
        let mut forces = vec![Vec3::ZERO; moved.vertex_count()];
        let e = add_skalak_forces(&re, 1.0, 50.0, &moved.vertices, &mut forces);
        assert!(e.abs() < 1e-12, "energy = {e}");
        for f in &forces {
            assert!(f.norm() < 1e-9, "{f:?}");
        }
    }

    #[test]
    fn uniform_dilation_invariants() {
        // Scaling the sphere by s gives λ1 = λ2 = s everywhere:
        // I1 = 2s² − 2, I2 = s⁴ − 1.
        let mesh = icosphere(2, 1.0);
        let re = ReferenceState::build(&mesh);
        let s = 1.1f64;
        let mut scaled = mesh.clone();
        scaled.scale(s);
        for (t, &[a, b, c]) in re.triangles.iter().enumerate() {
            let (i1, i2) = triangle_invariants(
                &re.tri_refs[t],
                scaled.vertices[a as usize],
                scaled.vertices[b as usize],
                scaled.vertices[c as usize],
            );
            assert!((i1 - (2.0 * s * s - 2.0)).abs() < 1e-9, "I1 = {i1}");
            assert!((i2 - (s.powi(4) - 1.0)).abs() < 1e-9, "I2 = {i2}");
        }
    }

    #[test]
    fn forces_match_finite_difference_gradient() {
        let mesh = icosphere(1, 1.0);
        let re = ReferenceState::build(&mesh);
        let (gs, c) = (2.0, 30.0);
        // Deform deterministically so forces are nonzero.
        let mut verts: Vec<Vec3> = mesh
            .vertices
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                v + Vec3::new(
                    0.03 * ((i * 7 % 13) as f64 / 13.0 - 0.5),
                    0.03 * ((i * 5 % 11) as f64 / 11.0 - 0.5),
                    0.03 * ((i * 3 % 7) as f64 / 7.0 - 0.5),
                )
            })
            .collect();
        let mut forces = vec![Vec3::ZERO; verts.len()];
        add_skalak_forces(&re, gs, c, &verts, &mut forces);
        let h = 1e-6;
        for vi in [0usize, 7, 20, 41] {
            for axis in 0..3 {
                let orig = verts[vi][axis];
                verts[vi][axis] = orig + h;
                let ep = skalak_energy(&re, gs, c, &verts);
                verts[vi][axis] = orig - h;
                let em = skalak_energy(&re, gs, c, &verts);
                verts[vi][axis] = orig;
                let fd = -(ep - em) / (2.0 * h);
                let an = forces[vi][axis];
                assert!(
                    (fd - an).abs() < 1e-5 * (1.0 + an.abs()),
                    "vertex {vi} axis {axis}: analytic {an} vs fd {fd}"
                );
            }
        }
    }

    #[test]
    fn total_force_and_torque_vanish() {
        let mesh = icosphere(2, 1.0);
        let re = ReferenceState::build(&mesh);
        let verts: Vec<Vec3> = mesh
            .vertices
            .iter()
            .map(|&v| Vec3::new(v.x * 1.2, v.y * 0.9, v.z * 1.05))
            .collect();
        let mut forces = vec![Vec3::ZERO; verts.len()];
        add_skalak_forces(&re, 1.0, 20.0, &verts, &mut forces);
        let total: Vec3 = forces.iter().copied().sum();
        assert!(total.norm() < 1e-10, "net force {total:?}");
        let torque: Vec3 = verts.iter().zip(&forces).map(|(&x, &f)| x.cross(f)).sum();
        assert!(torque.norm() < 1e-10, "net torque {torque:?}");
    }

    #[test]
    fn stretched_sphere_is_pulled_back() {
        // Inflate the sphere: elastic forces must point inward.
        let mesh = icosphere(2, 1.0);
        let re = ReferenceState::build(&mesh);
        let mut inflated = mesh.clone();
        inflated.scale(1.2);
        let mut forces = vec![Vec3::ZERO; inflated.vertex_count()];
        add_skalak_forces(&re, 1.0, 20.0, &inflated.vertices, &mut forces);
        let mut inward = 0usize;
        for (v, f) in inflated.vertices.iter().zip(&forces) {
            if f.dot(*v) < 0.0 {
                inward += 1;
            }
        }
        assert!(
            inward > inflated.vertex_count() * 95 / 100,
            "only {inward} inward"
        );
    }
}
