//! Aggregate membrane force model: Skalak + bending + constraints.

use crate::bending::{add_bending_forces, bending_energy};
use crate::constraints::{add_constraint_forces, constraint_energy};
use crate::material::MembraneMaterial;
use crate::reference::ReferenceState;
use crate::skalak::{add_skalak_forces, skalak_energy};
use apr_mesh::Vec3;
use std::sync::Arc;

/// A membrane force model: one reference shape plus material parameters.
///
/// Shared (via `Arc`) across every cell instance of the same type, so the
/// per-cell state is just positions/velocities/forces — the paper's
/// cell-memory layout (§2.4.5).
#[derive(Debug, Clone)]
pub struct Membrane {
    /// Reference (undeformed) state.
    pub reference: Arc<ReferenceState>,
    /// Elastic parameters.
    pub material: MembraneMaterial,
}

/// Energy breakdown returned by [`Membrane::compute_forces`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// In-plane Skalak energy.
    pub skalak: f64,
    /// Dihedral bending energy.
    pub bending: f64,
    /// Global area + volume penalty energy.
    pub constraint: f64,
}

impl EnergyBreakdown {
    /// Sum of all contributions.
    pub fn total(&self) -> f64 {
        self.skalak + self.bending + self.constraint
    }
}

impl Membrane {
    /// New membrane model from an undeformed mesh and material.
    pub fn new(reference: Arc<ReferenceState>, material: MembraneMaterial) -> Self {
        Self {
            reference,
            material,
        }
    }

    /// Compute all membrane forces into `forces` (accumulated, not reset)
    /// and return the energy breakdown.
    pub fn compute_forces(&self, vertices: &[Vec3], forces: &mut [Vec3]) -> EnergyBreakdown {
        let m = &self.material;
        EnergyBreakdown {
            skalak: add_skalak_forces(
                &self.reference,
                m.shear_modulus,
                m.skalak_c,
                vertices,
                forces,
            ),
            bending: add_bending_forces(&self.reference, m.bending_modulus, vertices, forces),
            constraint: add_constraint_forces(
                &self.reference,
                m.global_area_k,
                m.volume_k,
                vertices,
                forces,
            ),
        }
    }

    /// Total elastic energy of a configuration.
    pub fn energy(&self, vertices: &[Vec3]) -> EnergyBreakdown {
        let m = &self.material;
        EnergyBreakdown {
            skalak: skalak_energy(&self.reference, m.shear_modulus, m.skalak_c, vertices),
            bending: bending_energy(&self.reference, m.bending_modulus, vertices),
            constraint: constraint_energy(&self.reference, m.global_area_k, m.volume_k, vertices),
        }
    }

    /// Vertex count this membrane expects.
    pub fn vertex_count(&self) -> usize {
        self.reference.vertex_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apr_mesh::{biconcave_rbc_mesh, icosphere};

    fn rbc_membrane() -> (Membrane, Vec<Vec3>) {
        let mesh = biconcave_rbc_mesh(2, 1.0);
        let re = Arc::new(ReferenceState::build(&mesh));
        let mat = MembraneMaterial::rbc(1.0, 0.01);
        (Membrane::new(re, mat), mesh.vertices)
    }

    #[test]
    fn combined_forces_match_combined_finite_difference() {
        let (mem, verts0) = rbc_membrane();
        let mut verts: Vec<Vec3> = verts0
            .iter()
            .enumerate()
            .map(|(i, &v)| v * (1.0 + 0.03 * ((i * 13 % 19) as f64 / 19.0 - 0.5)))
            .collect();
        let mut forces = vec![Vec3::ZERO; verts.len()];
        mem.compute_forces(&verts, &mut forces);
        let h = 1e-6;
        for vi in [0usize, 11, 50, 101] {
            for axis in 0..3 {
                let orig = verts[vi][axis];
                verts[vi][axis] = orig + h;
                let ep = mem.energy(&verts).total();
                verts[vi][axis] = orig - h;
                let em = mem.energy(&verts).total();
                verts[vi][axis] = orig;
                let fd = -(ep - em) / (2.0 * h);
                let an = forces[vi][axis];
                assert!(
                    (fd - an).abs() < 1e-4 * (1.0 + an.abs()),
                    "vertex {vi} axis {axis}: analytic {an} vs fd {fd}"
                );
            }
        }
    }

    #[test]
    fn relaxation_decreases_energy() {
        // Gradient descent along the computed forces must reduce the energy
        // of a perturbed biconcave cell monotonically (for a sane step).
        let (mem, verts0) = rbc_membrane();
        let mut verts: Vec<Vec3> = verts0
            .iter()
            .enumerate()
            .map(|(i, &v)| v * (1.0 + 0.05 * ((i % 7) as f64 / 7.0 - 0.4)))
            .collect();
        let initial = mem.energy(&verts).total();
        let mut energy = initial;
        let mut forces = vec![Vec3::ZERO; verts.len()];
        for _ in 0..60 {
            forces.iter_mut().for_each(|f| *f = Vec3::ZERO);
            mem.compute_forces(&verts, &mut forces);
            let fmax = forces.iter().map(|f| f.norm()).fold(0.0f64, f64::max);
            // Backtracking line search along the force direction: because
            // force = −∇E, a small enough step always decreases the energy.
            let mut step = 0.002 / fmax.max(1e-12);
            let before = verts.clone();
            loop {
                for ((v, f), b) in verts.iter_mut().zip(&forces).zip(&before) {
                    *v = *b + *f * step;
                }
                let e = mem.energy(&verts).total();
                if e <= energy {
                    energy = e;
                    break;
                }
                step *= 0.5;
                assert!(step > 1e-12, "descent failed: gradient direction wrong");
            }
        }
        assert!(
            energy < 0.5 * initial,
            "descent barely moved: {initial} -> {energy}"
        );
    }

    #[test]
    fn energy_breakdown_total_is_sum() {
        let mesh = icosphere(2, 1.0);
        let re = Arc::new(ReferenceState::build(&mesh));
        let mem = Membrane::new(re, MembraneMaterial::rbc(1.0, 0.1));
        let verts: Vec<Vec3> = mesh.vertices.iter().map(|&v| v * 1.05).collect();
        let e = mem.energy(&verts);
        assert!((e.total() - (e.skalak + e.bending + e.constraint)).abs() < 1e-15);
        assert!(e.skalak > 0.0 && e.constraint > 0.0);
    }

    #[test]
    fn stiffer_ctc_resists_more() {
        let mesh = icosphere(2, 1.0);
        let re = Arc::new(ReferenceState::build(&mesh));
        let rbc = Membrane::new(Arc::clone(&re), MembraneMaterial::rbc(1.0, 0.01));
        let ctc = Membrane::new(re, MembraneMaterial::ctc(20.0, 0.01));
        let verts: Vec<Vec3> = mesh
            .vertices
            .iter()
            .map(|&v| Vec3::new(v.x * 1.2, v.y / 1.2, v.z))
            .collect();
        // Same material law, 20× modulus: energy scales exactly linearly.
        let rbc_stiff = Membrane::new(
            Arc::clone(&rbc.reference),
            MembraneMaterial::rbc(20.0, 0.01),
        );
        let ratio = rbc_stiff.energy(&verts).skalak / rbc.energy(&verts).skalak;
        assert!((ratio - 20.0).abs() < 1e-9, "ratio = {ratio}");
        // The CTC preset (20× G_s, softer area term) still resists clearly
        // more than the RBC under shear-dominated deformation.
        assert!(ctc.energy(&verts).skalak > 2.0 * rbc.energy(&verts).skalak);
    }
}
