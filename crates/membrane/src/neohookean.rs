//! Neo-Hookean in-plane membrane law — the alternative constitutive model
//! the paper's own reference [18] (Pepona, Gounley & Randles 2023,
//! "Effect of constitutive law on the erythrocyte membrane response to
//! large strains") compares against Skalak.
//!
//! Two-dimensional incompressible Neo-Hookean membrane energy density in
//! terms of the Skalak strain invariants:
//!
//! ```text
//! W_NH = G_s/2 · (I₁ + 1/(I₂ + 1) − 1... )
//! ```
//!
//! concretely, with `J² = I₂ + 1 = (λ₁λ₂)²`:
//! `W = G_s/2 (λ₁² + λ₂² + 1/(λ₁λ₂)² − 3)` — strain-hardening-free shear
//! response with volumetric (areal) stiffening from the `1/J²` term.

use crate::reference::ReferenceState;
use apr_mesh::Vec3;

/// Neo-Hookean energy density per undeformed area at invariants `(i1, i2)`
/// (Skalak convention: `I₁ = λ₁² + λ₂² − 2`, `I₂ = λ₁²λ₂² − 1`).
#[inline]
pub fn neohookean_energy_density(gs: f64, i1: f64, i2: f64) -> f64 {
    let j2 = i2 + 1.0; // (λ₁λ₂)²
    gs / 2.0 * (i1 + 2.0 + 1.0 / j2 - 3.0)
}

/// Partial derivatives `(∂W/∂I₁, ∂W/∂I₂)`.
#[inline]
pub fn neohookean_energy_gradient(gs: f64, _i1: f64, i2: f64) -> (f64, f64) {
    let j2 = i2 + 1.0;
    (gs / 2.0, -gs / (2.0 * j2 * j2))
}

/// Add Neo-Hookean in-plane forces for every triangle; returns the total
/// elastic energy. Drop-in alternative to
/// [`crate::skalak::add_skalak_forces`].
pub fn add_neohookean_forces(
    reference: &ReferenceState,
    gs: f64,
    vertices: &[Vec3],
    forces: &mut [Vec3],
) -> f64 {
    crate::skalak::add_inplane_forces_with(
        reference,
        vertices,
        forces,
        |i1, i2| neohookean_energy_density(gs, i1, i2),
        |i1, i2| neohookean_energy_gradient(gs, i1, i2),
    )
}

/// Total Neo-Hookean energy without force evaluation.
pub fn neohookean_energy(reference: &ReferenceState, gs: f64, vertices: &[Vec3]) -> f64 {
    crate::skalak::inplane_energy_with(reference, vertices, |i1, i2| {
        neohookean_energy_density(gs, i1, i2)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use apr_mesh::icosphere;

    #[test]
    fn reference_state_has_zero_energy() {
        // λ₁ = λ₂ = 1 ⇒ I₁ = 0, I₂ = 0 ⇒ W = 0.
        assert!(neohookean_energy_density(1.0, 0.0, 0.0).abs() < 1e-15);
    }

    #[test]
    fn density_is_positive_off_reference() {
        for (l1, l2) in [(1.2, 1.0), (0.8, 0.9), (1.5, 0.7), (2.0, 2.0)] {
            let (l1, l2): (f64, f64) = (l1, l2);
            let i1 = l1 * l1 + l2 * l2 - 2.0;
            let i2 = l1 * l1 * l2 * l2 - 1.0;
            let w = neohookean_energy_density(1.0, i1, i2);
            assert!(w > 0.0, "W({l1},{l2}) = {w}");
        }
    }

    #[test]
    fn forces_match_finite_difference() {
        let mesh = icosphere(1, 1.0);
        let re = ReferenceState::build(&mesh);
        let gs = 1.7;
        let mut verts: Vec<Vec3> = mesh
            .vertices
            .iter()
            .enumerate()
            .map(|(i, &v)| v * (1.0 + 0.05 * ((i * 5 % 9) as f64 / 9.0 - 0.4)))
            .collect();
        let mut forces = vec![Vec3::ZERO; verts.len()];
        add_neohookean_forces(&re, gs, &verts, &mut forces);
        let h = 1e-6;
        for vi in [0usize, 8, 23, 40] {
            for axis in 0..3 {
                let orig = verts[vi][axis];
                verts[vi][axis] = orig + h;
                let ep = neohookean_energy(&re, gs, &verts);
                verts[vi][axis] = orig - h;
                let em = neohookean_energy(&re, gs, &verts);
                verts[vi][axis] = orig;
                let fd = -(ep - em) / (2.0 * h);
                let an = forces[vi][axis];
                assert!(
                    (fd - an).abs() < 1e-5 * (1.0 + an.abs()),
                    "vertex {vi} axis {axis}: analytic {an} vs fd {fd}"
                );
            }
        }
    }

    #[test]
    fn softer_than_skalak_under_area_dilation() {
        // Reference [18]'s headline: Skalak (with large C) strain-hardens
        // against area change much harder than Neo-Hookean.
        let s = 1.3f64;
        let i1 = 2.0 * s * s - 2.0;
        let i2 = s.powi(4) - 1.0;
        let w_nh = neohookean_energy_density(1.0, i1, i2);
        let w_sk = crate::skalak::skalak_energy_density(1.0, 100.0, i1, i2);
        assert!(w_sk > 10.0 * w_nh, "Skalak {w_sk} vs NH {w_nh}");
    }

    #[test]
    fn total_force_vanishes() {
        let mesh = icosphere(2, 1.0);
        let re = ReferenceState::build(&mesh);
        let verts: Vec<Vec3> = mesh.vertices.iter().map(|&v| v * 1.15).collect();
        let mut forces = vec![Vec3::ZERO; verts.len()];
        add_neohookean_forces(&re, 1.0, &verts, &mut forces);
        let total: Vec3 = forces.iter().copied().sum();
        assert!(total.norm() < 1e-10, "net force {total:?}");
    }
}
