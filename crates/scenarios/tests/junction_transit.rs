//! The junction-transit acceptance tests: a refinement window following
//! its tracked cell through a branch point.
//!
//! Two layers, matching what each tolerance can honestly promise:
//!
//! 1. The *closed bulk lumen* (side-branch union, periodic z, body
//!    force) conserves mass to machine precision — `LedgerConfig::strict`
//!    (≤ 1e-12 relative drift) over hundreds of steps, bit-identical
//!    under 1 and 4 threads.
//! 2. The *full APR engine* on the registered `branch_transit` scenario
//!    crosses the junction: window moves fire, the tracked cell ends up
//!    past the branch point, the default-tolerance ledger stays clean
//!    (APR coupling deliberately exchanges mass between domains, so
//!    machine-precision drift is not the contract there), and the entire
//!    run — suspend blob included — is bit-identical under 1 and 4
//!    threads.

use apr_geom::{voxelize, Capsule, Cylinder, Sdf, Union};
use apr_lattice::Lattice;
use apr_mesh::Vec3;
use apr_observe::{ConservationLedger, DomainTotals, LedgerConfig, WindowFlux};
use apr_scenarios::{lookup, GeometrySpec, SimSession};

/// The `branch_transit` bulk lumen, built exactly as the scenario does.
fn closed_side_branch_lattice() -> Lattice {
    let spec = lookup("branch_transit").unwrap();
    let GeometrySpec::SideBranch {
        radius,
        branch_radius,
        junction_z,
        branch_angle,
        branch_length,
    } = spec.geometry
    else {
        panic!("branch_transit is a side-branch scenario");
    };
    let (cx, cy) = ((spec.nx - 1) as f64 / 2.0, (spec.ny - 1) as f64 / 2.0);
    let junction = Vec3::new(cx, cy, junction_z);
    let dir = Vec3::new(branch_angle.sin(), 0.0, branch_angle.cos());
    let sdf = Union(vec![
        Box::new(Cylinder::new(Vec3::new(cx, cy, 0.0), Vec3::Z, radius)) as Box<dyn Sdf>,
        Box::new(Capsule::new(
            junction,
            junction + dir * branch_length,
            branch_radius,
        )),
    ]);
    let mut lat = Lattice::new(spec.nx, spec.ny, spec.nz, spec.tau_c);
    lat.periodic = [false, false, true];
    lat.body_force = [0.0, 0.0, 4e-4];
    voxelize(&mut lat, &sdf, Vec3::ZERO, 1.0);
    lat
}

fn domain_totals(lat: &Lattice) -> DomainTotals {
    let (mass, momentum, fluid_nodes) = lat.mass_momentum_totals();
    DomainTotals {
        mass,
        momentum,
        fluid_nodes: fluid_nodes as u64,
    }
}

#[test]
fn closed_branch_lumen_holds_strict_ledger_and_thread_invariance() {
    const STEPS: u64 = 200;
    let mut ledger = ConservationLedger::new(LedgerConfig::strict());

    apr_exec::set_threads(1);
    let mut single = closed_side_branch_lattice();
    for step in 0..STEPS {
        single.step();
        ledger.record(
            step,
            domain_totals(&single),
            DomainTotals::default(),
            None,
            WindowFlux::default(),
        );
    }
    assert!(
        ledger.breaches().is_empty(),
        "strict (1e-12) ledger breached on the closed lumen: {:?}",
        ledger.breaches()
    );

    apr_exec::set_threads(4);
    let mut quad = closed_side_branch_lattice();
    for _ in 0..STEPS {
        quad.step();
    }
    apr_exec::set_threads(1);

    assert_eq!(
        apr_guard::write_lattice(&single),
        apr_guard::write_lattice(&quad),
        "closed side-branch run must be bit-identical under 1 and 4 threads"
    );
}

#[test]
fn window_crosses_generation_one_junction() {
    const STEPS: u64 = 600;
    let spec = lookup("branch_transit").unwrap();
    let GeometrySpec::SideBranch { junction_z, .. } = spec.geometry else {
        panic!("branch_transit is a side-branch scenario");
    };

    apr_exec::set_threads(1);
    let mut eng = spec.build_apr().unwrap();
    eng.step_n(STEPS);

    let ledger = eng.ledger.as_ref().expect("ledger armed");
    assert!(
        ledger.breaches().is_empty(),
        "ledger breaches during junction transit: {:?}",
        ledger.breaches()
    );
    assert!(
        eng.window_moves() > 0,
        "window never moved while chasing the cell"
    );
    let ctc = eng.ctc_position().expect("branch_transit tracks a CTC");
    let world = eng.fine_to_world(ctc);
    assert!(
        world.z > junction_z,
        "tracked cell should be past the junction (z = {junction_z}): got {world:?}"
    );
    let blob1 = SimSession::suspend(&eng);

    // Thread invariance of the complete APR run, suspend blob included.
    apr_exec::set_threads(4);
    let mut quad = spec.build_apr().unwrap();
    quad.step_n(STEPS);
    apr_exec::set_threads(1);
    assert_eq!(
        blob1,
        SimSession::suspend(&quad),
        "branch_transit must be bit-identical under 1 and 4 threads"
    );
}
