//! Every registered scenario must build, run 20 steps, and keep its
//! conservation ledger clean — the contract the `scenarios` CI job
//! enforces. A registry entry that cannot survive this smoke test does
//! not belong in the zoo.

use apr_scenarios::{registry, SimSession};

const SMOKE_STEPS: u64 = 20;

#[test]
fn every_registered_scenario_builds_steps_and_conserves() {
    for spec in registry() {
        if spec.windows.len() == 1 {
            let mut eng = spec
                .build_apr()
                .unwrap_or_else(|e| panic!("{}: build failed: {e}", spec.name));
            if spec.hematocrit > 0.0 {
                assert!(eng.populate_window() > 0, "{}: no cells packed", spec.name);
            }
            eng.step_n(SMOKE_STEPS);
            assert_eq!(SimSession::steps(&eng), SMOKE_STEPS, "{}", spec.name);
            let ledger = eng.ledger.as_ref().expect("build_apr arms the ledger");
            assert!(
                ledger.breaches().is_empty(),
                "{}: ledger breaches {:?}",
                spec.name,
                ledger.breaches()
            );
        } else {
            let mut eng = spec
                .build_multi()
                .unwrap_or_else(|e| panic!("{}: build failed: {e}", spec.name));
            if spec.hematocrit > 0.0 {
                eng.populate_windows();
            }
            eng.step_n(SMOKE_STEPS);
            assert_eq!(SimSession::steps(&eng), SMOKE_STEPS, "{}", spec.name);
            let ledger = eng.ledger.as_ref().expect("build_multi arms the ledger");
            assert!(
                ledger.breaches().is_empty(),
                "{}: ledger breaches {:?}",
                spec.name,
                ledger.breaches()
            );
        }
    }
}

#[test]
fn cold_builds_are_deterministic_per_scenario() {
    // Same spec, two cold builds → bit-identical suspend blobs. This is
    // the property the warm-state cache keys on (spec hash → state).
    for spec in registry() {
        let a = spec
            .build_cold()
            .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        let b = spec
            .build_cold()
            .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        assert_eq!(
            a.suspend(),
            b.suspend(),
            "{}: cold build drifted",
            spec.name
        );
    }
}
