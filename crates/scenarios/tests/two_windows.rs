//! Two concurrent refinement windows: disjoint ownership is enforced as
//! typed errors at admission and holds over a real run.

use apr_scenarios::{lookup, ScenarioError, ScenarioSpec, SimSession, WindowSpec};

#[test]
fn overlapping_window_request_is_a_typed_error() {
    let mut spec = lookup("twin_ctc").unwrap();
    // Slide the second window onto the first: footprints collide.
    spec.windows[1] = WindowSpec {
        origin: [5.0, 5.0, 9.0],
        ctc_radius: 2.5,
    };
    assert_eq!(
        spec.validate().unwrap_err(),
        ScenarioError::WindowOverlap {
            first: 0,
            second: 1
        }
    );
    // The builders refuse too — same typed error, never a panic.
    let err = spec.build_multi().err().unwrap();
    assert_eq!(
        err,
        ScenarioError::WindowOverlap {
            first: 0,
            second: 1
        }
    );
    assert!(spec.build_shell().is_err());
}

#[test]
fn twin_ctc_runs_with_disjoint_ownership() {
    let spec = lookup("twin_ctc").unwrap();
    let mut eng = spec.build_multi().unwrap();
    assert_eq!(eng.windows.len(), 2);
    eng.step_n(40);

    // Both windows still track a cell, and their footprints never merged.
    let mut spans: Vec<(f64, f64)> = Vec::new();
    for w in &eng.windows {
        assert!(w.ctc_position().is_some(), "window lost its tracked cell");
        let z0 = w.map.origin[2];
        spans.push((z0, z0 + w.footprint_extent()[2]));
    }
    spans.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    assert!(
        spans[0].1 < spans[1].0,
        "window footprints overlap after 40 steps: {spans:?}"
    );

    let ledger = eng.ledger.as_ref().expect("ledger armed");
    assert!(
        ledger.breaches().is_empty(),
        "twin-window ledger breaches: {:?}",
        ledger.breaches()
    );
}

#[test]
fn out_of_bounds_window_is_a_typed_error() {
    let mut spec = ScenarioSpec::tube_small(1);
    spec.windows[0].origin = [5.0, 5.0, 40.0]; // z + span runs off nz = 24
    assert_eq!(
        spec.validate().unwrap_err(),
        ScenarioError::WindowOutOfBounds { index: 0 }
    );
    assert!(spec.build_apr().is_err());
}
