//! The declarative scenario description and its canonical identity.
//!
//! A [`ScenarioSpec`] is plain data: geometry, inlet, physics knobs and a
//! list of refinement windows. Every *physics* field feeds
//! [`ScenarioSpec::hash`] — the warm-cache key — while the `name` (a
//! registry label) and the `runtime` (kernel/chunking knobs, bit-identical
//! by contract) are deliberately excluded, so two specs that describe the
//! same physics are *the same scenario* regardless of what they are called
//! or how they are executed.

use apr_guard::ByteWriter;
use apr_lattice::{ChunkingPolicy, KernelKind, RuntimeConfig};
use apr_telemetry::json::{self, Value};

/// Schema tag stamped into every serialized spec.
pub const SCENARIO_SCHEMA: &str = "apr.scenario.v1";

/// Margin (in coarse cells) required between two windows' coarse
/// footprints: windows closer than this are considered overlapping, both
/// at validation and when a window move is proposed.
pub const OWNERSHIP_MARGIN: f64 = 1.0;

/// Vascular geometry of the bulk domain. All lengths are in coarse
/// lattice units; tubes and their variants run along +z through the x/y
/// domain center.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GeometrySpec {
    /// Straight circular tube (periodic in z under a body-force inlet —
    /// the classic force-driven recipe).
    Tube {
        /// Lumen radius.
        radius: f64,
    },
    /// Murray's-law bifurcating tree grown along +z from near the inlet
    /// face (requires an open inlet; voxelized from the tree SDF).
    Tree {
        /// Bifurcation levels (1 = a single segment).
        levels: usize,
        /// Root vessel radius.
        root_radius: f64,
        /// Root segment length.
        root_length: f64,
        /// Bifurcation half-angle, radians.
        branch_angle: f64,
        /// Murray asymmetry (0.5 = symmetric).
        asymmetry: f64,
    },
    /// A generation-1 bifurcation that stays closed under periodic z: a
    /// parent tube with a dead-ended daughter branch leaving the
    /// junction. The closed topology keeps mass exactly conserved, which
    /// the junction-transit conservation tests rely on.
    SideBranch {
        /// Parent tube radius.
        radius: f64,
        /// Daughter branch radius.
        branch_radius: f64,
        /// Axial position of the branch point.
        junction_z: f64,
        /// Angle of the daughter off +z (x–z plane), radians.
        branch_angle: f64,
        /// Daughter length along its axis.
        branch_length: f64,
    },
    /// Cosine-smoothed axisymmetric constriction (see
    /// [`apr_geom::StenosedTube`]); z-invariant away from the throat so
    /// the tube can wrap a periodic axis.
    Stenosis {
        /// Nominal lumen radius.
        radius: f64,
        /// Radius at the narrowest point.
        throat_radius: f64,
        /// Axial position of the throat.
        center_z: f64,
        /// Axial extent of the constriction.
        length: f64,
    },
    /// Saccular aneurysm: a spherical bulge unioned onto the tube wall
    /// (the paper's cerebral use case in miniature).
    Aneurysm {
        /// Parent tube radius.
        radius: f64,
        /// Bulge sphere radius.
        bulge_radius: f64,
        /// Axial position of the bulge center.
        center_z: f64,
    },
}

/// Inlet condition driving the bulk flow.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InletSpec {
    /// Uniform body force along +z (closed, periodic-z domains).
    BodyForce {
        /// Force density.
        g: f64,
    },
    /// Steady parabolic velocity inlet (open domains; trees use a plug
    /// profile, see `build`).
    Poiseuille {
        /// Centerline speed, lattice units.
        u_max: f64,
    },
    /// Pulsatile Womersley inlet: a steady Poiseuille mean plus an
    /// oscillatory Womersley harmonic, restamped onto the existing
    /// `Boundary::Velocity` nodes every step (no new setter API).
    Womersley {
        /// Centerline speed of the steady component.
        u_mean: f64,
        /// Centerline amplitude of the oscillatory component.
        u_amp: f64,
        /// Womersley number α = R√(ω/ν).
        alpha: f64,
        /// Oscillation period in coarse steps.
        period: u64,
    },
}

/// One refinement window request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowSpec {
    /// Coarse-lattice coordinates of fine node (0,0,0).
    pub origin: [f64; 3],
    /// Radius of the tracked CTC seeded at the window center, in **fine**
    /// lattice units; `0.0` = no tracked cell (the window stays put).
    pub ctc_radius: f64,
}

/// Errors from validating, parsing or building a scenario.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// A field combination fails validation.
    Invalid(String),
    /// Two windows' coarse footprints (plus the ownership margin)
    /// intersect.
    WindowOverlap {
        /// Index of the first window of the offending pair.
        first: usize,
        /// Index of the second window of the offending pair.
        second: usize,
    },
    /// A window's footprint leaves the coarse domain.
    WindowOutOfBounds {
        /// Index of the offending window.
        index: usize,
    },
    /// JSON parse or shape error.
    Json(String),
    /// Registry lookup miss.
    UnknownScenario(String),
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioError::Invalid(msg) => write!(f, "invalid scenario: {msg}"),
            ScenarioError::WindowOverlap { first, second } => write!(
                f,
                "windows {first} and {second} overlap (footprints must be \
                 ≥ {OWNERSHIP_MARGIN} coarse cells apart)"
            ),
            ScenarioError::WindowOutOfBounds { index } => {
                write!(f, "window {index} leaves the coarse domain")
            }
            ScenarioError::Json(msg) => write!(f, "scenario JSON: {msg}"),
            ScenarioError::UnknownScenario(name) => {
                write!(
                    f,
                    "unknown scenario {name:?} (see apr_scenarios::registry())"
                )
            }
        }
    }
}

impl std::error::Error for ScenarioError {}

/// A complete declarative scenario: everything needed to assemble a ready
/// engine, and nothing that isn't either physics or a label.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Registry label. **Excluded from the hash** — identity is physics.
    pub name: String,
    /// Coarse lattice dimensions.
    pub nx: usize,
    /// Coarse lattice dimensions.
    pub ny: usize,
    /// Coarse lattice dimensions (flow axis).
    pub nz: usize,
    /// Vascular geometry.
    pub geometry: GeometrySpec,
    /// Inlet condition.
    pub inlet: InletSpec,
    /// Refinement ratio n (fine spacings per coarse spacing).
    pub refine: usize,
    /// Window span in coarse cells (fine dimension = `span * refine + 1`).
    pub span: usize,
    /// Coarse relaxation time.
    pub tau_c: f64,
    /// Viscosity ratio ν_f/ν_c.
    pub lambda: f64,
    /// Target window hematocrit; `0.0` = pure-plasma windows.
    pub hematocrit: f64,
    /// Refinement windows (≥ 1; N > 1 builds a multi-window engine).
    pub windows: Vec<WindowSpec>,
    /// Insertion-RNG seed.
    pub seed: u64,
    /// Relaxation steps baked into the warm state.
    pub warmup_steps: u64,
    /// Execution knobs (kernel, chunking). **Excluded from the hash**:
    /// every kernel and chunking policy is bit-identical by contract, so
    /// warm blobs are valid across runtimes (test-enforced, as for
    /// `TubeScenario`).
    pub runtime: RuntimeConfig,
}

impl ScenarioSpec {
    /// The `TubeScenario::small` recipe as a spec: 17×17×24 coarse tube,
    /// n = 2, 13³ fine window, no cells.
    pub fn tube_small(seed: u64) -> Self {
        Self {
            name: "tube_small".into(),
            nx: 17,
            ny: 17,
            nz: 24,
            geometry: GeometrySpec::Tube { radius: 7.0 },
            inlet: InletSpec::BodyForce { g: 4e-6 },
            refine: 2,
            span: 6,
            tau_c: 0.9,
            lambda: 0.3,
            hematocrit: 0.0,
            windows: vec![WindowSpec {
                origin: [5.0, 5.0, 4.0],
                ctc_radius: 0.0,
            }],
            seed,
            warmup_steps: 4,
            runtime: RuntimeConfig::default(),
        }
    }

    /// The `TubeScenario::cellular` recipe as a spec: 21×21×48 tube with a
    /// cell-laden window (hematocrit 0.12, n = 3).
    pub fn tube_cellular(seed: u64) -> Self {
        Self {
            name: "tube_cellular".into(),
            nx: 21,
            ny: 21,
            nz: 48,
            geometry: GeometrySpec::Tube { radius: 9.0 },
            inlet: InletSpec::BodyForce { g: 4e-6 },
            refine: 3,
            span: 8,
            tau_c: 0.9,
            lambda: 0.3,
            hematocrit: 0.12,
            windows: vec![WindowSpec {
                origin: [6.0, 6.0, 4.0],
                ctc_radius: 0.0,
            }],
            seed,
            warmup_steps: 5,
            runtime: RuntimeConfig::default(),
        }
    }

    /// Coarse extent of a window's footprint along each axis.
    pub fn window_extent(&self) -> f64 {
        self.span as f64
    }

    /// Validate the spec: dimension/physics sanity, every window inside
    /// the coarse domain, and pairwise-disjoint window footprints (with
    /// the [`OWNERSHIP_MARGIN`]).
    pub fn validate(&self) -> Result<(), ScenarioError> {
        let invalid = |msg: String| Err(ScenarioError::Invalid(msg));
        if self.nx < 4 || self.ny < 4 || self.nz < 4 {
            return invalid(format!(
                "coarse domain too small: {}×{}×{}",
                self.nx, self.ny, self.nz
            ));
        }
        if self.refine == 0 {
            return invalid("refine must be ≥ 1".into());
        }
        if self.span < 2 {
            return invalid(format!("span {} must be ≥ 2", self.span));
        }
        if self.tau_c <= 0.5 {
            return invalid(format!("tau_c {} must exceed 0.5", self.tau_c));
        }
        if !(self.lambda > 0.0 && self.lambda <= 1.0) {
            return invalid(format!("lambda {} must be in (0, 1]", self.lambda));
        }
        if !(0.0..=0.6).contains(&self.hematocrit) {
            return invalid(format!("hematocrit {} outside [0, 0.6]", self.hematocrit));
        }
        match self.geometry {
            GeometrySpec::Tube { radius } => {
                if radius <= 1.0 {
                    return invalid(format!("tube radius {radius} too small"));
                }
            }
            GeometrySpec::Tree {
                levels,
                root_radius,
                root_length,
                asymmetry,
                ..
            } => {
                if levels == 0 {
                    return invalid("tree levels must be ≥ 1".into());
                }
                if root_radius <= 1.0 || root_length <= 0.0 {
                    return invalid("tree root radius/length too small".into());
                }
                if !(asymmetry > 0.0 && asymmetry < 1.0) {
                    return invalid(format!("tree asymmetry {asymmetry} outside (0, 1)"));
                }
                if matches!(self.inlet, InletSpec::BodyForce { .. }) {
                    return invalid(
                        "tree geometry needs an open inlet (Poiseuille or Womersley), \
                         not a body force"
                            .into(),
                    );
                }
            }
            GeometrySpec::SideBranch {
                radius,
                branch_radius,
                junction_z,
                branch_length,
                ..
            } => {
                if radius <= 1.0 || branch_radius <= 1.0 {
                    return invalid("side-branch radii too small".into());
                }
                if branch_length <= 0.0 {
                    return invalid("side-branch length must be positive".into());
                }
                if !(0.0..self.nz as f64).contains(&junction_z) {
                    return invalid(format!("junction_z {junction_z} outside the domain"));
                }
            }
            GeometrySpec::Stenosis {
                radius,
                throat_radius,
                length,
                ..
            } => {
                if radius <= 1.0 || throat_radius <= 0.5 {
                    return invalid("stenosis radii too small".into());
                }
                if throat_radius >= radius {
                    return invalid(format!(
                        "stenosis throat {throat_radius} must be narrower than the tube {radius}"
                    ));
                }
                if length <= 0.0 {
                    return invalid("stenosis length must be positive".into());
                }
            }
            GeometrySpec::Aneurysm {
                radius,
                bulge_radius,
                ..
            } => {
                if radius <= 1.0 || bulge_radius <= 0.0 {
                    return invalid("aneurysm radii too small".into());
                }
            }
        }
        match self.inlet {
            InletSpec::BodyForce { g } => {
                if g <= 0.0 {
                    return invalid(format!("body force {g} must be positive"));
                }
            }
            InletSpec::Poiseuille { u_max } => {
                if !(0.0..0.2).contains(&u_max) || u_max == 0.0 {
                    return invalid(format!("inlet speed {u_max} outside (0, 0.2)"));
                }
            }
            InletSpec::Womersley {
                u_mean,
                u_amp,
                alpha,
                period,
            } => {
                if u_mean <= 0.0 || u_amp < 0.0 || u_mean + u_amp >= 0.2 {
                    return invalid(format!(
                        "womersley speeds (mean {u_mean}, amp {u_amp}) outside (0, 0.2)"
                    ));
                }
                if !(0.0..10.0).contains(&alpha) || alpha == 0.0 {
                    return invalid(format!("womersley alpha {alpha} outside (0, 10)"));
                }
                if period < 2 {
                    return invalid(format!("womersley period {period} must be ≥ 2"));
                }
            }
        }
        if self.windows.is_empty() {
            return invalid("at least one window is required".into());
        }
        let dims = [self.nx, self.ny, self.nz];
        let ext = self.window_extent();
        for (i, w) in self.windows.iter().enumerate() {
            for (a, &dim) in dims.iter().enumerate() {
                if w.origin[a] < 0.0 || w.origin[a] + ext > (dim - 1) as f64 {
                    return Err(ScenarioError::WindowOutOfBounds { index: i });
                }
            }
            if w.ctc_radius < 0.0 {
                return invalid(format!("window {i} has negative ctc_radius"));
            }
        }
        for i in 0..self.windows.len() {
            for j in (i + 1)..self.windows.len() {
                if footprints_conflict(
                    self.windows[i].origin,
                    [ext; 3],
                    self.windows[j].origin,
                    [ext; 3],
                    OWNERSHIP_MARGIN,
                ) {
                    return Err(ScenarioError::WindowOverlap {
                        first: i,
                        second: j,
                    });
                }
            }
        }
        Ok(())
    }

    /// Canonical FNV-1a hash over every physics field — the warm-cache key
    /// and the scenario's identity in telemetry. `name` and `runtime` are
    /// excluded (see their field docs). Equal physics hash equal on every
    /// platform (floats hash by IEEE bits via the little-endian encoding).
    pub fn hash(&self) -> u64 {
        let mut w = ByteWriter::new();
        w.usize(self.nx);
        w.usize(self.ny);
        w.usize(self.nz);
        match self.geometry {
            GeometrySpec::Tube { radius } => {
                w.u8(0);
                w.f64(radius);
            }
            GeometrySpec::Tree {
                levels,
                root_radius,
                root_length,
                branch_angle,
                asymmetry,
            } => {
                w.u8(1);
                w.usize(levels);
                w.f64(root_radius);
                w.f64(root_length);
                w.f64(branch_angle);
                w.f64(asymmetry);
            }
            GeometrySpec::SideBranch {
                radius,
                branch_radius,
                junction_z,
                branch_angle,
                branch_length,
            } => {
                w.u8(2);
                w.f64(radius);
                w.f64(branch_radius);
                w.f64(junction_z);
                w.f64(branch_angle);
                w.f64(branch_length);
            }
            GeometrySpec::Stenosis {
                radius,
                throat_radius,
                center_z,
                length,
            } => {
                w.u8(3);
                w.f64(radius);
                w.f64(throat_radius);
                w.f64(center_z);
                w.f64(length);
            }
            GeometrySpec::Aneurysm {
                radius,
                bulge_radius,
                center_z,
            } => {
                w.u8(4);
                w.f64(radius);
                w.f64(bulge_radius);
                w.f64(center_z);
            }
        }
        match self.inlet {
            InletSpec::BodyForce { g } => {
                w.u8(0);
                w.f64(g);
            }
            InletSpec::Poiseuille { u_max } => {
                w.u8(1);
                w.f64(u_max);
            }
            InletSpec::Womersley {
                u_mean,
                u_amp,
                alpha,
                period,
            } => {
                w.u8(2);
                w.f64(u_mean);
                w.f64(u_amp);
                w.f64(alpha);
                w.u64(period);
            }
        }
        w.usize(self.refine);
        w.usize(self.span);
        w.f64(self.tau_c);
        w.f64(self.lambda);
        w.f64(self.hematocrit);
        w.usize(self.windows.len());
        for win in &self.windows {
            for a in 0..3 {
                w.f64(win.origin[a]);
            }
            w.f64(win.ctc_radius);
        }
        w.u64(self.seed);
        w.u64(self.warmup_steps);
        fnv1a64(&w.into_bytes())
    }

    /// Serialize to schema-tagged JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512);
        out.push_str(&format!(
            "{{\"schema\":\"{}\",\"name\":{},",
            SCENARIO_SCHEMA,
            json::escape(&self.name)
        ));
        out.push_str(&format!("\"dims\":[{},{},{}],", self.nx, self.ny, self.nz));
        out.push_str("\"geometry\":");
        match self.geometry {
            GeometrySpec::Tube { radius } => {
                out.push_str(&format!(
                    "{{\"kind\":\"tube\",\"radius\":{}}}",
                    json::number(radius)
                ));
            }
            GeometrySpec::Tree {
                levels,
                root_radius,
                root_length,
                branch_angle,
                asymmetry,
            } => {
                out.push_str(&format!(
                    "{{\"kind\":\"tree\",\"levels\":{levels},\"root_radius\":{},\
                     \"root_length\":{},\"branch_angle\":{},\"asymmetry\":{}}}",
                    json::number(root_radius),
                    json::number(root_length),
                    json::number(branch_angle),
                    json::number(asymmetry)
                ));
            }
            GeometrySpec::SideBranch {
                radius,
                branch_radius,
                junction_z,
                branch_angle,
                branch_length,
            } => {
                out.push_str(&format!(
                    "{{\"kind\":\"side_branch\",\"radius\":{},\"branch_radius\":{},\
                     \"junction_z\":{},\"branch_angle\":{},\"branch_length\":{}}}",
                    json::number(radius),
                    json::number(branch_radius),
                    json::number(junction_z),
                    json::number(branch_angle),
                    json::number(branch_length)
                ));
            }
            GeometrySpec::Stenosis {
                radius,
                throat_radius,
                center_z,
                length,
            } => {
                out.push_str(&format!(
                    "{{\"kind\":\"stenosis\",\"radius\":{},\"throat_radius\":{},\
                     \"center_z\":{},\"length\":{}}}",
                    json::number(radius),
                    json::number(throat_radius),
                    json::number(center_z),
                    json::number(length)
                ));
            }
            GeometrySpec::Aneurysm {
                radius,
                bulge_radius,
                center_z,
            } => {
                out.push_str(&format!(
                    "{{\"kind\":\"aneurysm\",\"radius\":{},\"bulge_radius\":{},\
                     \"center_z\":{}}}",
                    json::number(radius),
                    json::number(bulge_radius),
                    json::number(center_z)
                ));
            }
        }
        out.push_str(",\"inlet\":");
        match self.inlet {
            InletSpec::BodyForce { g } => {
                out.push_str(&format!(
                    "{{\"kind\":\"body_force\",\"g\":{}}}",
                    json::number(g)
                ));
            }
            InletSpec::Poiseuille { u_max } => {
                out.push_str(&format!(
                    "{{\"kind\":\"poiseuille\",\"u_max\":{}}}",
                    json::number(u_max)
                ));
            }
            InletSpec::Womersley {
                u_mean,
                u_amp,
                alpha,
                period,
            } => {
                out.push_str(&format!(
                    "{{\"kind\":\"womersley\",\"u_mean\":{},\"u_amp\":{},\
                     \"alpha\":{},\"period\":{period}}}",
                    json::number(u_mean),
                    json::number(u_amp),
                    json::number(alpha)
                ));
            }
        }
        out.push_str(&format!(
            ",\"refine\":{},\"span\":{},\"tau_c\":{},\"lambda\":{},\"hematocrit\":{}",
            self.refine,
            self.span,
            json::number(self.tau_c),
            json::number(self.lambda),
            json::number(self.hematocrit)
        ));
        out.push_str(",\"windows\":[");
        for (i, win) in self.windows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"origin\":[{},{},{}],\"ctc_radius\":{}}}",
                json::number(win.origin[0]),
                json::number(win.origin[1]),
                json::number(win.origin[2]),
                json::number(win.ctc_radius)
            ));
        }
        out.push_str(&format!(
            "],\"seed\":{},\"warmup_steps\":{},",
            self.seed, self.warmup_steps
        ));
        let kernel = match self.runtime.kernel {
            None => "auto",
            Some(KernelKind::Reference) => "reference",
            Some(KernelKind::FusedSwap) => "fused",
            Some(KernelKind::FusedSimd) => "simd",
        };
        out.push_str(&format!(
            "\"runtime\":{{\"kernel\":\"{kernel}\",\"threads\":{},\
             \"chunking\":\"{}\",\"probe\":{}}}}}",
            self.runtime.threads,
            self.runtime.chunking.as_str(),
            self.runtime.probe
        ));
        out
    }

    /// Parse a spec from [`ScenarioSpec::to_json`]'s output (or any JSON
    /// matching the [`SCENARIO_SCHEMA`] layout). The parsed spec is
    /// validated before being returned.
    pub fn from_json(text: &str) -> Result<Self, ScenarioError> {
        let v = json::parse(text).map_err(ScenarioError::Json)?;
        let schema = str_field(&v, "schema")?;
        if schema != SCENARIO_SCHEMA {
            return Err(ScenarioError::Json(format!(
                "schema {schema:?}, expected {SCENARIO_SCHEMA:?}"
            )));
        }
        let name = str_field(&v, "name")?.to_string();
        let dims = arr_field(&v, "dims")?;
        if dims.len() != 3 {
            return Err(ScenarioError::Json("dims must have 3 entries".into()));
        }
        let dim = |i: usize| -> Result<usize, ScenarioError> {
            dims[i]
                .as_f64()
                .map(|d| d as usize)
                .ok_or_else(|| ScenarioError::Json("non-numeric dim".into()))
        };
        let geometry = {
            let g = field(&v, "geometry")?;
            match str_field(g, "kind")? {
                "tube" => GeometrySpec::Tube {
                    radius: num_field(g, "radius")?,
                },
                "tree" => GeometrySpec::Tree {
                    levels: num_field(g, "levels")? as usize,
                    root_radius: num_field(g, "root_radius")?,
                    root_length: num_field(g, "root_length")?,
                    branch_angle: num_field(g, "branch_angle")?,
                    asymmetry: num_field(g, "asymmetry")?,
                },
                "side_branch" => GeometrySpec::SideBranch {
                    radius: num_field(g, "radius")?,
                    branch_radius: num_field(g, "branch_radius")?,
                    junction_z: num_field(g, "junction_z")?,
                    branch_angle: num_field(g, "branch_angle")?,
                    branch_length: num_field(g, "branch_length")?,
                },
                "stenosis" => GeometrySpec::Stenosis {
                    radius: num_field(g, "radius")?,
                    throat_radius: num_field(g, "throat_radius")?,
                    center_z: num_field(g, "center_z")?,
                    length: num_field(g, "length")?,
                },
                "aneurysm" => GeometrySpec::Aneurysm {
                    radius: num_field(g, "radius")?,
                    bulge_radius: num_field(g, "bulge_radius")?,
                    center_z: num_field(g, "center_z")?,
                },
                kind => {
                    return Err(ScenarioError::Json(format!(
                        "unknown geometry kind {kind:?}"
                    )))
                }
            }
        };
        let inlet = {
            let i = field(&v, "inlet")?;
            match str_field(i, "kind")? {
                "body_force" => InletSpec::BodyForce {
                    g: num_field(i, "g")?,
                },
                "poiseuille" => InletSpec::Poiseuille {
                    u_max: num_field(i, "u_max")?,
                },
                "womersley" => InletSpec::Womersley {
                    u_mean: num_field(i, "u_mean")?,
                    u_amp: num_field(i, "u_amp")?,
                    alpha: num_field(i, "alpha")?,
                    period: num_field(i, "period")? as u64,
                },
                kind => return Err(ScenarioError::Json(format!("unknown inlet kind {kind:?}"))),
            }
        };
        let mut windows = Vec::new();
        for w in arr_field(&v, "windows")? {
            let o = arr_field(w, "origin")?;
            if o.len() != 3 {
                return Err(ScenarioError::Json(
                    "window origin must have 3 entries".into(),
                ));
            }
            let coord = |i: usize| -> Result<f64, ScenarioError> {
                o[i].as_f64()
                    .ok_or_else(|| ScenarioError::Json("non-numeric origin".into()))
            };
            windows.push(WindowSpec {
                origin: [coord(0)?, coord(1)?, coord(2)?],
                ctc_radius: num_field(w, "ctc_radius")?,
            });
        }
        let runtime = {
            let r = field(&v, "runtime")?;
            let kernel = match str_field(r, "kernel")? {
                "auto" => None,
                "reference" => Some(KernelKind::Reference),
                "fused" => Some(KernelKind::FusedSwap),
                "simd" => Some(KernelKind::FusedSimd),
                k => return Err(ScenarioError::Json(format!("unknown kernel {k:?}"))),
            };
            let chunking = match str_field(r, "chunking")? {
                "static" => ChunkingPolicy::Static,
                "guided" => ChunkingPolicy::Guided,
                c => return Err(ScenarioError::Json(format!("unknown chunking {c:?}"))),
            };
            let probe = match field(r, "probe")? {
                Value::Bool(b) => *b,
                _ => return Err(ScenarioError::Json("probe must be a bool".into())),
            };
            RuntimeConfig {
                kernel,
                threads: num_field(r, "threads")? as usize,
                chunking,
                probe,
            }
        };
        let spec = ScenarioSpec {
            name,
            nx: dim(0)?,
            ny: dim(1)?,
            nz: dim(2)?,
            geometry,
            inlet,
            refine: num_field(&v, "refine")? as usize,
            span: num_field(&v, "span")? as usize,
            tau_c: num_field(&v, "tau_c")?,
            lambda: num_field(&v, "lambda")?,
            hematocrit: num_field(&v, "hematocrit")?,
            windows,
            seed: num_field(&v, "seed")? as u64,
            warmup_steps: num_field(&v, "warmup_steps")? as u64,
            runtime,
        };
        spec.validate()?;
        Ok(spec)
    }
}

/// Do two axis-aligned footprints come within `margin` of each other on
/// every axis? Footprint `a` spans `[a, a + ext_a]` per axis.
pub(crate) fn footprints_conflict(
    a: [f64; 3],
    ext_a: [f64; 3],
    b: [f64; 3],
    ext_b: [f64; 3],
    margin: f64,
) -> bool {
    (0..3).all(|ax| a[ax] < b[ax] + ext_b[ax] + margin && b[ax] < a[ax] + ext_a[ax] + margin)
}

fn field<'a>(v: &'a Value, key: &str) -> Result<&'a Value, ScenarioError> {
    v.get(key)
        .ok_or_else(|| ScenarioError::Json(format!("missing field {key:?}")))
}

fn num_field(v: &Value, key: &str) -> Result<f64, ScenarioError> {
    field(v, key)?
        .as_f64()
        .ok_or_else(|| ScenarioError::Json(format!("field {key:?} must be a number")))
}

fn str_field<'a>(v: &'a Value, key: &str) -> Result<&'a str, ScenarioError> {
    field(v, key)?
        .as_str()
        .ok_or_else(|| ScenarioError::Json(format!("field {key:?} must be a string")))
}

fn arr_field<'a>(v: &'a Value, key: &str) -> Result<&'a [Value], ScenarioError> {
    field(v, key)?
        .as_arr()
        .ok_or_else(|| ScenarioError::Json(format!("field {key:?} must be an array")))
}

/// FNV-1a, 64-bit: tiny, dependency-free, stable across platforms. Kept
/// numerically identical to apr-serve's historical implementation so
/// existing cache-key expectations carry over.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_specs_hash_equal_and_fields_matter() {
        let a = ScenarioSpec::tube_small(7);
        let b = ScenarioSpec::tube_small(7);
        assert_eq!(a.hash(), b.hash());
        let c = ScenarioSpec::tube_small(8);
        assert_ne!(a.hash(), c.hash());
        let mut d = ScenarioSpec::tube_small(7);
        d.inlet = InletSpec::BodyForce { g: 8e-6 };
        assert_ne!(a.hash(), d.hash());
        let mut e = ScenarioSpec::tube_small(7);
        e.windows[0].ctc_radius = 2.0;
        assert_ne!(a.hash(), e.hash());
    }

    #[test]
    fn name_and_runtime_do_not_change_hash() {
        let base = ScenarioSpec::tube_small(11);
        let mut renamed = base.clone();
        renamed.name = "anything_else".into();
        assert_eq!(base.hash(), renamed.hash());
        let mut pinned = base.clone();
        pinned.runtime = RuntimeConfig::default()
            .with_kernel(KernelKind::Reference)
            .with_chunking(ChunkingPolicy::Static);
        assert_eq!(base.hash(), pinned.hash());
    }

    #[test]
    fn json_round_trips_every_geometry_and_inlet() {
        let mut specs = vec![ScenarioSpec::tube_small(3), ScenarioSpec::tube_cellular(4)];
        let mut tree = ScenarioSpec::tube_small(5);
        tree.name = "tree".into();
        tree.nx = 32;
        tree.ny = 32;
        tree.nz = 32;
        tree.geometry = GeometrySpec::Tree {
            levels: 2,
            root_radius: 4.0,
            root_length: 10.0,
            branch_angle: 0.5,
            asymmetry: 0.5,
        };
        tree.inlet = InletSpec::Womersley {
            u_mean: 0.02,
            u_amp: 0.01,
            alpha: 1.5,
            period: 40,
        };
        tree.windows[0].origin = [12.0, 12.0, 4.0];
        specs.push(tree);
        let mut sten = ScenarioSpec::tube_small(6);
        sten.name = "sten".into();
        sten.geometry = GeometrySpec::Stenosis {
            radius: 6.0,
            throat_radius: 3.5,
            center_z: 12.0,
            length: 10.0,
        };
        specs.push(sten);
        let mut an = ScenarioSpec::tube_small(7);
        an.name = "an".into();
        an.geometry = GeometrySpec::Aneurysm {
            radius: 5.0,
            bulge_radius: 3.0,
            center_z: 12.0,
        };
        an.inlet = InletSpec::Poiseuille { u_max: 0.03 };
        specs.push(an);
        let mut sb = ScenarioSpec::tube_small(8);
        sb.name = "sb".into();
        sb.geometry = GeometrySpec::SideBranch {
            radius: 5.5,
            branch_radius: 3.5,
            junction_z: 12.0,
            branch_angle: 0.6,
            branch_length: 8.0,
        };
        specs.push(sb);
        for spec in specs {
            let text = spec.to_json();
            let back = ScenarioSpec::from_json(&text)
                .unwrap_or_else(|e| panic!("{}: {e}\n{text}", spec.name));
            assert_eq!(spec, back, "round trip of {}", spec.name);
            assert_eq!(spec.hash(), back.hash());
        }
    }

    #[test]
    fn from_json_rejects_bad_schema_and_shapes() {
        assert!(matches!(
            ScenarioSpec::from_json("{\"schema\":\"other.v9\"}"),
            Err(ScenarioError::Json(_))
        ));
        assert!(matches!(
            ScenarioSpec::from_json("not json at all"),
            Err(ScenarioError::Json(_))
        ));
    }

    #[test]
    fn overlapping_windows_are_a_typed_error() {
        let mut spec = ScenarioSpec::tube_cellular(1);
        spec.nz = 64;
        spec.windows = vec![
            WindowSpec {
                origin: [6.0, 6.0, 4.0],
                ctc_radius: 0.0,
            },
            WindowSpec {
                origin: [6.0, 6.0, 10.0],
                ctc_radius: 0.0,
            },
        ];
        assert_eq!(
            spec.validate(),
            Err(ScenarioError::WindowOverlap {
                first: 0,
                second: 1
            })
        );
        // Far enough apart: valid.
        spec.windows[1].origin[2] = 24.0;
        assert_eq!(spec.validate(), Ok(()));
    }

    #[test]
    fn out_of_bounds_window_is_a_typed_error() {
        let mut spec = ScenarioSpec::tube_small(1);
        spec.windows[0].origin = [5.0, 5.0, 19.0];
        assert_eq!(
            spec.validate(),
            Err(ScenarioError::WindowOutOfBounds { index: 0 })
        );
    }

    #[test]
    fn tree_with_body_force_is_rejected() {
        let mut spec = ScenarioSpec::tube_small(1);
        spec.nx = 32;
        spec.ny = 32;
        spec.nz = 32;
        spec.geometry = GeometrySpec::Tree {
            levels: 2,
            root_radius: 4.0,
            root_length: 10.0,
            branch_angle: 0.5,
            asymmetry: 0.5,
        };
        spec.windows[0].origin = [12.0, 12.0, 4.0];
        assert!(matches!(spec.validate(), Err(ScenarioError::Invalid(_))));
    }
}
