//! Assembling a ready engine from a [`ScenarioSpec`].
//!
//! Every geometry×inlet combination maps onto one of three bulk recipes:
//!
//! * **Force-driven tube** (`Tube` + `BodyForce`) — the exact
//!   `apr-serve` `TubeScenario` recipe, byte-for-byte: same generator,
//!   same window defaults, no fine-geometry callback. Warm blobs built
//!   here restore into shells built by the legacy type and vice versa.
//! * **Closed periodic lumen** (`SideBranch`/`Stenosis`/`Aneurysm` +
//!   `BodyForce`) — the SDF is voxelized onto a z-periodic lattice and
//!   flow is driven by a body force. All three SDFs are z-invariant at
//!   the wrap plane, so the periodic axis is valid and mass is conserved
//!   to machine precision (the conservation tests lean on this).
//! * **Open flow** (any geometry + `Poiseuille`/`Womersley`) — a
//!   non-periodic lattice with a velocity inlet disc near `z = 0` and a
//!   ρ = 1 pressure outlet plane near `z = nz − 1` (trees use
//!   [`apr_geom::open_tree_flow`]'s plug inlet and per-leaf outlets). A
//!   pulsatile inlet installs a [`apr_core::BulkDriver`] that restamps
//!   the existing `Boundary::Velocity` nodes from the analytic
//!   [`Womersley`] profile each step — values only, no new setter API, no
//!   geometry revisions.
//!
//! One window builds an [`AprEngine`]; several build a
//! [`MultiWindowEngine`]. Branching geometries (`SideBranch`, `Tree`)
//! automatically install a [`JunctionGuide`] steer so windows navigate
//! junctions along the tracked cell's trajectory.

use crate::multi::{MultiWindowEngine, WindowUnit};
use crate::spec::{GeometrySpec, InletSpec, ScenarioError, ScenarioSpec};
use crate::transit::{Junction, JunctionGuide};
use crate::womersley::Womersley;
use apr_cells::RbcTile;
use apr_core::{AprEngine, BulkDriver, FineGeometry, LedgerConfig, SimSession};
use apr_coupling::fine_tau;
use apr_geom::{
    open_tree_flow, voxelize, Capsule, Cylinder, Sdf, Sphere, StenosedTube, TreeParams, Union,
    VascularTree,
};
use apr_lattice::{force_driven_tube, Boundary, Lattice, NodeClass};
use apr_membrane::{Membrane, MembraneMaterial, ReferenceState};
use apr_mesh::{biconcave_rbc_mesh, icosphere, Vec3};
use apr_window::{HematocritController, InsertionContext};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Everything `build_bulk` produces beyond the lattice itself.
struct BulkSetup {
    lattice: Lattice,
    /// Lumen SDF in coarse coordinates; `None` for the legacy
    /// force-driven tube (whose fine window is deliberately unflagged for
    /// `TubeScenario` byte-compatibility).
    sdf: Option<Arc<dyn Sdf>>,
    /// Pulsatile inlet restamper.
    driver: Option<BulkDriver>,
    /// Junction steering for branching geometries.
    guide: Option<JunctionGuide>,
}

/// One inlet node: lattice index, radial fraction s = r/R, steady
/// velocity, and the unit flow direction the oscillation acts along.
type InletNode = (usize, f64, [f64; 3], [f64; 3]);

fn domain_axis_center(spec: &ScenarioSpec) -> (f64, f64) {
    ((spec.nx as f64 - 1.0) / 2.0, (spec.ny as f64 - 1.0) / 2.0)
}

/// The lumen SDF for a non-tree geometry, in coarse coordinates.
fn geometry_sdf(spec: &ScenarioSpec) -> Option<Arc<dyn Sdf>> {
    let (cx, cy) = domain_axis_center(spec);
    let axis_origin = Vec3::new(cx, cy, 0.0);
    match spec.geometry {
        GeometrySpec::Tube { radius } => {
            Some(Arc::new(Cylinder::new(axis_origin, Vec3::Z, radius)))
        }
        GeometrySpec::SideBranch {
            radius,
            branch_radius,
            junction_z,
            branch_angle,
            branch_length,
        } => {
            let junction = Vec3::new(cx, cy, junction_z);
            let dir = Vec3::new(branch_angle.sin(), 0.0, branch_angle.cos());
            Some(Arc::new(Union(vec![
                Box::new(Cylinder::new(axis_origin, Vec3::Z, radius)),
                Box::new(Capsule::new(
                    junction,
                    junction + dir * branch_length,
                    branch_radius,
                )),
            ])))
        }
        GeometrySpec::Stenosis {
            radius,
            throat_radius,
            center_z,
            length,
        } => Some(Arc::new(StenosedTube {
            r0: radius,
            throat: throat_radius,
            center_z,
            length,
            origin: axis_origin,
        })),
        GeometrySpec::Aneurysm {
            radius,
            bulge_radius,
            center_z,
        } => Some(Arc::new(Union(vec![
            Box::new(Cylinder::new(axis_origin, Vec3::Z, radius)),
            Box::new(Sphere::new(
                Vec3::new(cx + radius, cy, center_z),
                bulge_radius,
            )),
        ]))),
        GeometrySpec::Tree { .. } => None, // handled by build_bulk directly
    }
}

/// The parent-lumen radius at the inlet plane (z-invariant there for
/// every geometry).
fn inlet_radius(spec: &ScenarioSpec) -> f64 {
    match spec.geometry {
        GeometrySpec::Tube { radius }
        | GeometrySpec::SideBranch { radius, .. }
        | GeometrySpec::Stenosis { radius, .. }
        | GeometrySpec::Aneurysm { radius, .. } => radius,
        GeometrySpec::Tree { root_radius, .. } => root_radius,
    }
}

/// Stamp a velocity inlet disc at `z = 1` and a ρ = 1 pressure outlet
/// plane at `z = nz − 2` on an open (non-periodic) lumen. Returns the
/// inlet nodes with their radial fractions; velocities hold the profile's
/// step-0 values.
fn stamp_tube_ports(
    lat: &mut Lattice,
    cx: f64,
    cy: f64,
    radius: f64,
    u_at: impl Fn(f64) -> f64,
) -> Vec<InletNode> {
    let mut inlet = Vec::new();
    let z_out = lat.nz - 2;
    for y in 0..lat.ny {
        for x in 0..lat.nx {
            let node = lat.idx(x, y, 1);
            if lat.flag(node) == NodeClass::Fluid {
                let r = ((x as f64 - cx).powi(2) + (y as f64 - cy).powi(2)).sqrt();
                if r < radius {
                    let s = (r / radius).min(1.0);
                    let u = [0.0, 0.0, u_at(s)];
                    lat.set_boundary(node, Boundary::Velocity(u));
                    inlet.push((node, s, u, [0.0, 0.0, 1.0]));
                }
            }
            let node = lat.idx(x, y, z_out);
            if lat.flag(node) == NodeClass::Fluid {
                lat.set_boundary(node, Boundary::Pressure(1.0));
            }
        }
    }
    inlet
}

/// Build the pulsatile restamper over a fixed inlet-node list.
fn womersley_driver(nodes: Vec<InletNode>, u_amp: f64, w: Womersley) -> BulkDriver {
    Box::new(move |lat, step| {
        for &(node, s, steady, dir) in &nodes {
            let osc = u_amp * w.profile(s, step);
            lat.update_velocity_bc(
                node,
                [
                    steady[0] + dir[0] * osc,
                    steady[1] + dir[1] * osc,
                    steady[2] + dir[2] * osc,
                ],
            );
        }
    })
}

/// Assemble the bulk lattice (plus SDF / driver / steer) for a validated
/// spec.
fn build_bulk(spec: &ScenarioSpec) -> Result<BulkSetup, ScenarioError> {
    let (cx, cy) = domain_axis_center(spec);
    // The legacy recipe: byte-compatible with apr-serve's TubeScenario.
    if let (GeometrySpec::Tube { radius }, InletSpec::BodyForce { g }) = (spec.geometry, spec.inlet)
    {
        return Ok(BulkSetup {
            lattice: force_driven_tube(spec.nx, spec.ny, spec.nz, spec.tau_c, radius, g),
            sdf: None,
            driver: None,
            guide: None,
        });
    }

    // Trees grow from near the inlet face along +z and always run open.
    if let GeometrySpec::Tree {
        levels,
        root_radius,
        root_length,
        branch_angle,
        asymmetry,
    } = spec.geometry
    {
        let params = TreeParams {
            root_radius,
            root_length,
            levels,
            branch_angle,
            asymmetry,
            jitter: 0.0, // deterministic: the spec hash must pin the geometry
        };
        let mut rng = StdRng::seed_from_u64(spec.seed);
        let tree = VascularTree::grow(&params, Vec3::new(cx, cy, 2.0), Vec3::Z, &mut rng);
        let mut lat = Lattice::new(spec.nx, spec.ny, spec.nz, spec.tau_c);
        let sdf: Arc<dyn Sdf> = Arc::new(tree.sdf());
        voxelize(&mut lat, sdf.as_ref(), Vec3::ZERO, 1.0);
        let (u_plug, pulsatile) = match spec.inlet {
            InletSpec::Poiseuille { u_max } => (u_max, None),
            InletSpec::Womersley {
                u_mean,
                u_amp,
                alpha,
                period,
            } => (u_mean, Some((u_amp, Womersley::new(alpha, period)))),
            InletSpec::BodyForce { .. } => {
                unreachable!("validate() rejects Tree + BodyForce")
            }
        };
        open_tree_flow(&mut lat, &tree, Vec3::ZERO, 1.0, u_plug);
        // Pulsatile trees restamp every inlet node with the plug (s = 0)
        // oscillation on top of the steady plug.
        let driver = pulsatile.map(|(u_amp, w)| {
            let dir = [0.0, 0.0, 1.0];
            let nodes: Vec<InletNode> = (0..lat.node_count())
                .filter(|&n| lat.flag(n) == NodeClass::Velocity)
                .map(|n| (n, 0.0, [0.0, 0.0, u_plug], dir))
                .collect();
            womersley_driver(nodes, u_amp, w)
        });
        let guide = JunctionGuide::from_tree(&tree, spec.span as f64, 1.5);
        return Ok(BulkSetup {
            lattice: lat,
            sdf: Some(sdf),
            driver,
            guide: Some(guide),
        });
    }

    let sdf = geometry_sdf(spec).expect("non-tree geometry has an SDF");
    let guide = match spec.geometry {
        GeometrySpec::SideBranch {
            junction_z,
            branch_angle,
            ..
        } => Some(JunctionGuide::new(
            vec![Junction {
                center: Vec3::new(cx, cy, junction_z),
                daughters: vec![
                    Vec3::Z,
                    Vec3::new(branch_angle.sin(), 0.0, branch_angle.cos()),
                ],
            }],
            spec.span as f64,
            1.5,
        )),
        _ => None,
    };
    match spec.inlet {
        InletSpec::BodyForce { g } => {
            // Closed periodic lumen: exactly mass-conserving.
            let mut lat = Lattice::new(spec.nx, spec.ny, spec.nz, spec.tau_c);
            lat.periodic = [false, false, true];
            lat.body_force = [0.0, 0.0, g];
            voxelize(&mut lat, sdf.as_ref(), Vec3::ZERO, 1.0);
            Ok(BulkSetup {
                lattice: lat,
                sdf: Some(sdf),
                driver: None,
                guide,
            })
        }
        InletSpec::Poiseuille { u_max } => {
            let mut lat = Lattice::new(spec.nx, spec.ny, spec.nz, spec.tau_c);
            voxelize(&mut lat, sdf.as_ref(), Vec3::ZERO, 1.0);
            let radius = inlet_radius(spec);
            stamp_tube_ports(&mut lat, cx, cy, radius, |s| u_max * (1.0 - s * s));
            Ok(BulkSetup {
                lattice: lat,
                sdf: Some(sdf),
                driver: None,
                guide,
            })
        }
        InletSpec::Womersley {
            u_mean,
            u_amp,
            alpha,
            period,
        } => {
            let mut lat = Lattice::new(spec.nx, spec.ny, spec.nz, spec.tau_c);
            voxelize(&mut lat, sdf.as_ref(), Vec3::ZERO, 1.0);
            let radius = inlet_radius(spec);
            let w = Womersley::new(alpha, period);
            let nodes = stamp_tube_ports(&mut lat, cx, cy, radius, |s| {
                u_mean * (1.0 - s * s) + u_amp * w.profile(s, 0)
            });
            // The stamped values include the step-0 oscillation; the driver
            // owns the steady part so restamping is self-contained.
            let nodes: Vec<InletNode> = nodes
                .into_iter()
                .map(|(n, s, _, dir)| (n, s, [0.0, 0.0, u_mean * (1.0 - s * s)], dir))
                .collect();
            Ok(BulkSetup {
                lattice: lat,
                sdf: Some(sdf),
                driver: Some(womersley_driver(nodes, u_amp, w)),
                guide,
            })
        }
    }
}

/// Re-flag a fine lattice from the coarse-coordinate lumen SDF at any
/// window origin: clear every node, then voxelize at spacing 1/n.
fn fine_geometry_for(sdf: Arc<dyn Sdf>, n: usize) -> FineGeometry {
    Box::new(move |fine, origin| {
        for node in 0..fine.node_count() {
            fine.clear_boundary(node);
        }
        voxelize(
            fine,
            sdf.as_ref(),
            Vec3::new(origin[0], origin[1], origin[2]),
            1.0 / n as f64,
        );
    })
}

/// The shared RBC insertion recipe (identical to `TubeScenario`'s).
fn insertion_for(spec: &ScenarioSpec) -> (InsertionContext, HematocritController) {
    let radius = 3.0;
    let rbc_mesh = biconcave_rbc_mesh(1, radius);
    let re = Arc::new(ReferenceState::build(&rbc_mesh));
    let membrane = Arc::new(Membrane::new(re, MembraneMaterial::rbc(2e-4, 1e-5)));
    let volume = rbc_mesh.enclosed_volume();
    let mut tile_rng = StdRng::seed_from_u64(spec.seed ^ 0x7115);
    let tile = RbcTile::build(
        40.0,
        spec.hematocrit,
        radius,
        radius * 0.6,
        volume,
        &mut tile_rng,
    );
    (
        InsertionContext {
            rbc_mesh,
            rbc_membrane: membrane,
            tile,
            min_gap: 0.8,
        },
        HematocritController::new(spec.hematocrit, 0.85, volume),
    )
}

/// A tracked CTC: icosphere mesh at the fine-domain centre.
fn ctc_parts(fine_dim: usize, radius: f64) -> (Arc<Membrane>, Vec<Vec3>) {
    let mesh = icosphere(1, radius);
    let membrane = Arc::new(Membrane::new(
        Arc::new(ReferenceState::build(&mesh)),
        MembraneMaterial::ctc(2e-3, 1e-4),
    ));
    let center = (fine_dim - 1) as f64 / 2.0;
    let offset = Vec3::new(center, center, center);
    let verts = mesh.vertices.iter().map(|&v| v + offset).collect();
    (membrane, verts)
}

fn fine_lattice(spec: &ScenarioSpec) -> Lattice {
    let fine_dim = spec.span * spec.refine + 1;
    let mut fine = Lattice::new(
        fine_dim,
        fine_dim,
        fine_dim,
        fine_tau(spec.tau_c, spec.refine, spec.lambda),
    );
    if let InletSpec::BodyForce { g } = spec.inlet {
        fine.body_force = [0.0, 0.0, g / spec.refine as f64];
    }
    fine
}

impl ScenarioSpec {
    /// Build the single-window [`AprEngine`] shell for this spec (no cells
    /// placed, no steps taken). Errors unless `windows.len() == 1`.
    pub fn build_apr(&self) -> Result<AprEngine, ScenarioError> {
        self.validate()?;
        if self.windows.len() != 1 {
            return Err(ScenarioError::Invalid(format!(
                "build_apr needs exactly one window, spec has {}",
                self.windows.len()
            )));
        }
        let bulk = build_bulk(self)?;
        let w = self.windows[0];
        let mut eng = AprEngine::builder(
            bulk.lattice,
            fine_lattice(self),
            w.origin,
            self.refine,
            self.lambda,
        )
        .seed(self.seed)
        .maintenance_interval(10)
        .runtime(self.runtime)
        .ledger(LedgerConfig::default())
        .build();
        if let Some(sdf) = bulk.sdf {
            eng.set_fine_geometry(fine_geometry_for(sdf, self.refine));
        }
        if let Some(driver) = bulk.driver {
            eng.set_bulk_driver(driver);
        }
        if let Some(guide) = bulk.guide {
            eng.set_window_steer(guide.into_steer());
        }
        if self.hematocrit > 0.0 {
            let (ctx, controller) = insertion_for(self);
            eng.insertion = Some(ctx);
            eng.controller = Some(controller);
        }
        if w.ctc_radius > 0.0 {
            let (membrane, verts) = ctc_parts(self.span * self.refine + 1, w.ctc_radius);
            eng.add_ctc(membrane, verts);
        }
        Ok(eng)
    }

    /// Build the [`MultiWindowEngine`] shell for this spec (works for any
    /// window count ≥ 1; the N-window path apr-serve schedules).
    pub fn build_multi(&self) -> Result<MultiWindowEngine, ScenarioError> {
        self.validate()?;
        let bulk = build_bulk(self)?;
        let mut eng = MultiWindowEngine::new(bulk.lattice);
        eng.maintenance_interval = 10;
        eng.set_ledger(LedgerConfig::default());
        if let Some(driver) = bulk.driver {
            eng.set_bulk_driver(driver);
        }
        for (i, w) in self.windows.iter().enumerate() {
            // Distinct deterministic insertion streams per window.
            let seed = self
                .seed
                .wrapping_add((i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
            let mut unit = WindowUnit::new(
                &eng.coarse,
                fine_lattice(self),
                w.origin,
                self.refine,
                self.lambda,
                seed,
            )
            .map_err(|_| ScenarioError::WindowOutOfBounds { index: i })?;
            if let Some(sdf) = &bulk.sdf {
                unit.set_fine_geometry(
                    &eng.coarse,
                    fine_geometry_for(Arc::clone(sdf), self.refine),
                );
            }
            if let Some(guide) = &bulk.guide {
                unit.set_window_steer(guide.clone().into_steer());
            }
            if self.hematocrit > 0.0 {
                let (ctx, controller) = insertion_for(self);
                unit.insertion = Some(ctx);
                unit.controller = Some(controller);
            }
            if w.ctc_radius > 0.0 {
                let (membrane, verts) = ctc_parts(self.span * self.refine + 1, w.ctc_radius);
                unit.add_ctc(membrane, verts);
            }
            eng.add_window(unit)?;
        }
        Ok(eng)
    }

    /// Build the engine shell behind the scheduler-facing trait: one
    /// window → [`AprEngine`], several → [`MultiWindowEngine`]. The shell
    /// is the resume target for warm-cache blobs.
    pub fn build_shell(&self) -> Result<Box<dyn SimSession>, ScenarioError> {
        if self.windows.len() == 1 {
            Ok(Box::new(self.build_apr()?))
        } else {
            Ok(Box::new(self.build_multi()?))
        }
    }

    /// Cold setup: build the shell, pack cell-laden windows, and run the
    /// warmup relaxation. The returned session is at step `warmup_steps` —
    /// the state the warm cache stores.
    pub fn build_cold(&self) -> Result<Box<dyn SimSession>, ScenarioError> {
        if self.windows.len() == 1 {
            let mut eng = self.build_apr()?;
            if self.hematocrit > 0.0 {
                eng.populate_window();
            }
            eng.step_n(self.warmup_steps);
            Ok(Box::new(eng))
        } else {
            let mut eng = self.build_multi()?;
            if self.hematocrit > 0.0 {
                eng.populate_windows();
            }
            eng.step_n(self.warmup_steps);
            Ok(Box::new(eng))
        }
    }

    /// Alias for [`ScenarioSpec::build_cold`]: the one-call "give me a
    /// running scenario" entry point.
    pub fn build(&self) -> Result<Box<dyn SimSession>, ScenarioError> {
        self.build_cold()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::WindowSpec;

    fn plane_fluid_count(lat: &Lattice, z: usize) -> usize {
        let mut count = 0;
        for y in 0..lat.ny {
            for x in 0..lat.nx {
                if lat.flag(lat.idx(x, y, z)) == NodeClass::Fluid {
                    count += 1;
                }
            }
        }
        count
    }

    #[test]
    fn tube_small_matches_reference_recipe_bytes() {
        // The ScenarioSpec presets must stay byte-compatible with the
        // historical TubeScenario recipe: same generator, same defaults.
        let spec = ScenarioSpec::tube_small(3);
        let a = spec.build_cold().unwrap().suspend();
        let b = spec.build_cold().unwrap().suspend();
        assert_eq!(a, b, "cold builds of one spec must be bit-identical");
        let mut shell = spec.build_shell().unwrap();
        shell.resume(&a).unwrap();
        assert_eq!(shell.suspend(), a);
        assert_eq!(shell.steps(), spec.warmup_steps);
    }

    #[test]
    fn stenosis_voxelizes_with_narrowed_throat() {
        let mut spec = ScenarioSpec::tube_small(1);
        spec.name = "sten".into();
        spec.nz = 48;
        spec.geometry = GeometrySpec::Stenosis {
            radius: 6.0,
            throat_radius: 3.0,
            center_z: 24.0,
            length: 16.0,
        };
        spec.inlet = InletSpec::BodyForce { g: 4e-6 };
        spec.validate().unwrap();
        let bulk = build_bulk(&spec).unwrap();
        let far = plane_fluid_count(&bulk.lattice, 4);
        let throat = plane_fluid_count(&bulk.lattice, 24);
        assert!(
            throat < far / 2,
            "throat cross-section {throat} should be well under the far-field {far}"
        );
        assert!(throat > 0, "throat must stay open");
    }

    #[test]
    fn aneurysm_bulges_and_side_branch_widens_past_junction() {
        let mut spec = ScenarioSpec::tube_small(1);
        spec.nx = 24;
        spec.ny = 17;
        spec.nz = 48;
        spec.windows[0].origin = [5.0, 5.0, 4.0];
        spec.geometry = GeometrySpec::Aneurysm {
            radius: 5.0,
            bulge_radius: 4.0,
            center_z: 24.0,
        };
        let bulk = build_bulk(&spec).unwrap();
        let far = plane_fluid_count(&bulk.lattice, 4);
        let sac = plane_fluid_count(&bulk.lattice, 24);
        assert!(
            sac > far,
            "aneurysm plane {sac} should exceed the plain tube {far}"
        );

        spec.geometry = GeometrySpec::SideBranch {
            radius: 5.0,
            branch_radius: 3.0,
            junction_z: 20.0,
            branch_angle: 0.6,
            branch_length: 12.0,
        };
        let bulk = build_bulk(&spec).unwrap();
        assert!(
            bulk.guide.is_some(),
            "side branch installs a junction guide"
        );
        let far = plane_fluid_count(&bulk.lattice, 4);
        let branch_plane = plane_fluid_count(&bulk.lattice, 26);
        assert!(
            branch_plane > far,
            "daughter lumen should add fluid: {branch_plane} vs {far}"
        );
    }

    #[test]
    fn tree_opens_with_two_outlets_and_junction_guide() {
        let mut spec = ScenarioSpec::tube_small(5);
        spec.name = "tree".into();
        spec.nx = 32;
        spec.ny = 32;
        spec.nz = 48;
        spec.geometry = GeometrySpec::Tree {
            levels: 2,
            root_radius: 4.0,
            root_length: 18.0,
            branch_angle: 0.45,
            asymmetry: 0.5,
        };
        spec.inlet = InletSpec::Poiseuille { u_max: 0.02 };
        spec.windows[0].origin = [13.0, 13.0, 6.0];
        spec.validate().unwrap();
        let bulk = build_bulk(&spec).unwrap();
        let guide = bulk.guide.expect("tree installs a junction guide");
        assert_eq!(guide.junctions.len(), 1);
        assert_eq!(guide.junctions[0].daughters.len(), 2);
        // The inlet plane carries velocity nodes.
        let lat = &bulk.lattice;
        let velocity_nodes = (0..lat.node_count())
            .filter(|&n| lat.flag(n) == NodeClass::Velocity)
            .count();
        assert!(velocity_nodes > 5, "plug inlet stamped: {velocity_nodes}");
    }

    #[test]
    fn womersley_inlet_oscillates_through_the_boundary_enum() {
        let mut spec = ScenarioSpec::tube_small(2);
        spec.name = "puls".into();
        spec.inlet = InletSpec::Womersley {
            u_mean: 0.02,
            u_amp: 0.01,
            alpha: 1.0,
            period: 20,
        };
        let mut eng = spec.build_apr().unwrap();
        // Track a fluid node on the axis mid-domain over one period.
        let (cx, cy) = ((spec.nx - 1) / 2, (spec.ny - 1) / 2);
        let probe = eng.coarse.idx(cx, cy, spec.nz / 2);
        let mut us = Vec::new();
        for _ in 0..40 {
            eng.step();
            us.push(eng.coarse.velocity_at(probe)[2]);
        }
        let max = us.iter().cloned().fold(f64::MIN, f64::max);
        let min = us.iter().cloned().fold(f64::MAX, f64::min);
        assert!(
            max - min > 1e-4,
            "pulsatile inlet should modulate the core flow: range {min}..{max}"
        );
    }

    #[test]
    fn two_window_spec_builds_multi_engine() {
        let mut spec = ScenarioSpec::tube_small(9);
        spec.name = "twin".into();
        spec.nz = 48;
        spec.windows = vec![
            WindowSpec {
                origin: [5.0, 5.0, 4.0],
                ctc_radius: 0.0,
            },
            WindowSpec {
                origin: [5.0, 5.0, 24.0],
                ctc_radius: 0.0,
            },
        ];
        let mut session = spec.build_cold().unwrap();
        assert_eq!(session.steps(), spec.warmup_steps);
        session.step_n(3);
        assert_eq!(session.steps(), spec.warmup_steps + 3);
    }
}
