//! The scenario zoo: named canonical workloads.
//!
//! Each entry maps a paper-relevant vascular workload onto a spec small
//! enough for CI (every registered scenario must build, run 20 steps and
//! keep its conservation ledger clean — enforced by `tests/zoo_smoke.rs`
//! and the `scenarios` CI job). EXPERIMENTS.md maps the entries to the
//! paper's use cases; the bench suite's `network` scenario enumerates
//! this registry, so adding an entry here automatically adds it to
//! `BENCH_network.json`.

use crate::spec::{GeometrySpec, InletSpec, ScenarioError, ScenarioSpec, WindowSpec};

/// All registered scenarios, in stable order.
pub fn registry() -> Vec<ScenarioSpec> {
    vec![
        ScenarioSpec::tube_small(1),
        ScenarioSpec::tube_cellular(1),
        tube_pulsatile(),
        stenosis_focus(),
        aneurysm_sac(),
        branch_transit(),
        tree_open(),
        twin_ctc(),
    ]
}

/// Look a scenario up by registry name.
pub fn lookup(name: &str) -> Result<ScenarioSpec, ScenarioError> {
    registry()
        .into_iter()
        .find(|s| s.name == name)
        .ok_or_else(|| ScenarioError::UnknownScenario(name.to_string()))
}

/// Open tube with a pulsatile Womersley inlet: the minimal unsteady
/// workload (paper §4's pulsatile cerebral flow, miniaturised).
fn tube_pulsatile() -> ScenarioSpec {
    ScenarioSpec {
        name: "tube_pulsatile".into(),
        nx: 17,
        ny: 17,
        nz: 32,
        geometry: GeometrySpec::Tube { radius: 7.0 },
        inlet: InletSpec::Womersley {
            u_mean: 0.02,
            u_amp: 0.01,
            alpha: 1.5,
            period: 40,
        },
        refine: 2,
        span: 6,
        tau_c: 0.9,
        lambda: 0.3,
        hematocrit: 0.0,
        windows: vec![WindowSpec {
            origin: [5.0, 5.0, 8.0],
            ctc_radius: 0.0,
        }],
        seed: 2,
        warmup_steps: 4,
        runtime: Default::default(),
    }
}

/// Cosine-throat stenosis with the window parked on the constriction —
/// the high-shear focal lesion workload. Closed (periodic z + body
/// force), so mass is conserved exactly.
fn stenosis_focus() -> ScenarioSpec {
    ScenarioSpec {
        name: "stenosis_focus".into(),
        nx: 17,
        ny: 17,
        nz: 48,
        geometry: GeometrySpec::Stenosis {
            radius: 6.0,
            throat_radius: 3.5,
            center_z: 24.0,
            length: 16.0,
        },
        inlet: InletSpec::BodyForce { g: 4e-5 },
        refine: 2,
        span: 6,
        tau_c: 0.9,
        lambda: 0.3,
        hematocrit: 0.0,
        windows: vec![WindowSpec {
            origin: [5.0, 5.0, 21.0],
            ctc_radius: 0.0,
        }],
        seed: 3,
        warmup_steps: 2,
        runtime: Default::default(),
    }
}

/// Saccular aneurysm with the window over the sac neck — the paper's
/// cerebral-aneurysm use case in miniature.
fn aneurysm_sac() -> ScenarioSpec {
    ScenarioSpec {
        name: "aneurysm_sac".into(),
        nx: 25,
        ny: 17,
        nz: 32,
        geometry: GeometrySpec::Aneurysm {
            radius: 5.0,
            bulge_radius: 4.0,
            center_z: 16.0,
        },
        inlet: InletSpec::BodyForce { g: 4e-5 },
        refine: 2,
        span: 6,
        tau_c: 0.9,
        lambda: 0.3,
        hematocrit: 0.0,
        windows: vec![WindowSpec {
            origin: [12.0, 5.0, 13.0],
            ctc_radius: 0.0,
        }],
        seed: 4,
        warmup_steps: 2,
        runtime: Default::default(),
    }
}

/// A tracked CTC approaching a generation-1 bifurcation: the
/// junction-transit workload. The side branch keeps the domain closed
/// (periodic z), the strong body force pushes the cell toward the
/// junction at `z = 12`, and the installed [`crate::JunctionGuide`]
/// steers window moves into the daughter the cell chooses.
fn branch_transit() -> ScenarioSpec {
    ScenarioSpec {
        name: "branch_transit".into(),
        nx: 17,
        ny: 17,
        nz: 64,
        geometry: GeometrySpec::SideBranch {
            radius: 5.5,
            branch_radius: 3.0,
            junction_z: 12.0,
            branch_angle: 0.6,
            branch_length: 10.0,
        },
        inlet: InletSpec::BodyForce { g: 4e-4 },
        refine: 2,
        span: 6,
        tau_c: 0.9,
        lambda: 0.3,
        hematocrit: 0.0,
        windows: vec![WindowSpec {
            origin: [5.0, 5.0, 6.0],
            ctc_radius: 3.0,
        }],
        seed: 5,
        warmup_steps: 2,
        runtime: Default::default(),
    }
}

/// Two-level Murray-law tree opened to flow (plug inlet, per-leaf
/// pressure outlets) — the network workload of Lu et al.
/// (arXiv:1909.11085), miniaturised.
fn tree_open() -> ScenarioSpec {
    ScenarioSpec {
        name: "tree_open".into(),
        nx: 33,
        ny: 33,
        nz: 48,
        geometry: GeometrySpec::Tree {
            levels: 2,
            root_radius: 4.0,
            root_length: 18.0,
            branch_angle: 0.45,
            asymmetry: 0.5,
        },
        inlet: InletSpec::Poiseuille { u_max: 0.02 },
        refine: 2,
        span: 6,
        tau_c: 0.9,
        lambda: 0.3,
        hematocrit: 0.0,
        windows: vec![WindowSpec {
            origin: [13.0, 13.0, 6.0],
            ctc_radius: 0.0,
        }],
        seed: 6,
        warmup_steps: 2,
        runtime: Default::default(),
    }
}

/// Two tracked CTCs, two concurrent refinement windows in one bulk tube —
/// the N > 1 disjoint-ownership workload.
fn twin_ctc() -> ScenarioSpec {
    ScenarioSpec {
        name: "twin_ctc".into(),
        nx: 17,
        ny: 17,
        nz: 48,
        geometry: GeometrySpec::Tube { radius: 7.0 },
        inlet: InletSpec::BodyForce { g: 4e-6 },
        refine: 2,
        span: 6,
        tau_c: 0.9,
        lambda: 0.3,
        hematocrit: 0.0,
        windows: vec![
            WindowSpec {
                origin: [5.0, 5.0, 6.0],
                ctc_radius: 2.5,
            },
            WindowSpec {
                origin: [5.0, 5.0, 26.0],
                ctc_radius: 2.5,
            },
        ],
        seed: 7,
        warmup_steps: 2,
        runtime: Default::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn every_entry_validates_with_a_unique_name_and_hash() {
        let entries = registry();
        assert!(entries.len() >= 8);
        let mut names = HashSet::new();
        let mut hashes = HashSet::new();
        for spec in &entries {
            spec.validate()
                .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
            assert!(names.insert(spec.name.clone()), "duplicate {}", spec.name);
            assert!(
                hashes.insert(spec.hash()),
                "hash collision involving {}",
                spec.name
            );
        }
    }

    #[test]
    fn lookup_finds_entries_and_rejects_unknowns() {
        let spec = lookup("branch_transit").unwrap();
        assert_eq!(spec.name, "branch_transit");
        assert_eq!(
            lookup("no_such_scenario").unwrap_err(),
            ScenarioError::UnknownScenario("no_such_scenario".into())
        );
    }

    #[test]
    fn every_entry_round_trips_through_json() {
        for spec in registry() {
            let back = ScenarioSpec::from_json(&spec.to_json())
                .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
            assert_eq!(spec, back, "{}", spec.name);
            assert_eq!(spec.hash(), back.hash(), "{}", spec.name);
        }
    }
}
