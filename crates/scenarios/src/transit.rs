//! Window navigation through branch points.
//!
//! The default window-move policy re-centres the fine window on the
//! tracked cell. That is correct inside a straight vessel, but when the
//! window straddles a junction the cell is about to *choose a daughter
//! branch* — and a window re-centred on the cell's instantaneous position
//! lags the turn, clipping the daughter lumen at the window edge.
//!
//! A [`JunctionGuide`] fixes this with a tiny amount of vascular
//! knowledge: the junction positions and the unit directions of their
//! daughter branches (both known exactly for every registry geometry).
//! Near a junction the guide reads the tracked cell's recent trajectory
//! from the [`CtcTracker`], picks the daughter whose direction best
//! aligns with the cell's velocity, and aims the window *ahead of the
//! cell along that daughter's centreline*. Away from junctions (or before
//! the trajectory is informative) the guide is the identity and the
//! engine's default re-centring behaviour applies unchanged.
//!
//! The guide is a pure function of `(tracker, position)` — installing it
//! changes where windows move, never how state is stored, so checkpoints
//! and resume replay identically.

use apr_core::WindowSteer;
use apr_geom::VascularTree;
use apr_mesh::Vec3;
use apr_window::CtcTracker;

/// How many tracker samples back to reach for the trajectory estimate.
const TRAJECTORY_LAG: usize = 6;

/// A branch point: where it is, and the unit directions of the vessels
/// leaving it (world coordinates, coarse lattice units).
#[derive(Debug, Clone)]
pub struct Junction {
    /// Branch-point position.
    pub center: Vec3,
    /// Unit directions of the daughter branches leaving the junction.
    pub daughters: Vec<Vec3>,
}

/// Steers window moves through the [`Junction`]s of a vascular network.
#[derive(Debug, Clone)]
pub struct JunctionGuide {
    /// Known branch points.
    pub junctions: Vec<Junction>,
    /// A junction influences aims within this distance of its centre
    /// (coarse lattice units).
    pub radius: f64,
    /// How far ahead of the cell (along the chosen daughter) to aim the
    /// window centre.
    pub lead: f64,
}

impl JunctionGuide {
    /// Guide with explicit junctions.
    pub fn new(junctions: Vec<Junction>, radius: f64, lead: f64) -> Self {
        let junctions = junctions
            .into_iter()
            .map(|j| Junction {
                center: j.center,
                daughters: j
                    .daughters
                    .into_iter()
                    .filter(|d| d.norm() > 1e-12)
                    .map(|d| d.normalized())
                    .collect(),
            })
            .collect();
        Self {
            junctions,
            radius,
            lead,
        }
    }

    /// Extract every bifurcation of a [`VascularTree`] (world coordinates
    /// = tree coordinates; callers translate if the tree was voxelized at
    /// a non-zero origin).
    pub fn from_tree(tree: &VascularTree, radius: f64, lead: f64) -> Self {
        let mut junctions: Vec<Junction> = Vec::new();
        for (i, seg) in tree.segments.iter().enumerate() {
            // Children are segments whose parent is i (excluding the root's
            // self-parent loop).
            let daughters: Vec<Vec3> = tree
                .segments
                .iter()
                .enumerate()
                .filter(|(j, s)| *j != i && s.parent == i)
                .map(|(_, s)| s.b - s.a)
                .collect();
            if daughters.len() >= 2 {
                junctions.push(Junction {
                    center: seg.b,
                    daughters,
                });
            }
        }
        Self::new(junctions, radius, lead)
    }

    /// Estimate the cell's direction of travel from the tracker: the
    /// displacement between the latest sample and one [`TRAJECTORY_LAG`]
    /// samples back. `None` when the history is too short or the cell is
    /// effectively stationary.
    fn trajectory(tracker: &CtcTracker) -> Option<Vec3> {
        let n = tracker.samples.len();
        if n < 2 {
            return None;
        }
        let (_, latest) = tracker.samples[n - 1];
        let back = n.saturating_sub(1 + TRAJECTORY_LAG.min(n - 1));
        let (_, earlier) = tracker.samples[back];
        let v = latest - earlier;
        if v.norm() < 1e-9 {
            None
        } else {
            Some(v.normalized())
        }
    }

    /// Compute the window aim for a tracked cell at `ctc` (world
    /// coordinates). Returns `ctc` unchanged unless the cell is within
    /// [`JunctionGuide::radius`] of a junction *and* its trajectory is
    /// informative; then aims [`JunctionGuide::lead`] ahead of the cell's
    /// projection onto the chosen daughter's centreline (behind the
    /// junction for cells still approaching it).
    pub fn aim(&self, tracker: &CtcTracker, ctc: Vec3) -> Vec3 {
        let Some(junction) = self
            .junctions
            .iter()
            .filter(|j| j.center.distance(ctc) <= self.radius)
            .min_by(|a, b| {
                a.center
                    .distance(ctc)
                    .partial_cmp(&b.center.distance(ctc))
                    .unwrap()
            })
        else {
            return ctc;
        };
        let Some(v) = Self::trajectory(tracker) else {
            return ctc;
        };
        // Choose the daughter whose direction best matches the velocity.
        // Strict `>` keeps ties deterministic (first daughter wins).
        let mut best: Option<(f64, Vec3)> = None;
        for &d in &junction.daughters {
            let score = v.dot(d);
            match best {
                Some((s, _)) if score <= s => {}
                _ => best = Some((score, d)),
            }
        }
        let Some((_, d)) = best else { return ctc };
        // Project the cell onto the daughter centreline and lead its
        // projection downstream. The aim tracks the cell continuously —
        // approaching cells (t < 0) are led toward the junction, not
        // teleported past it, so the window never leaps ahead of the cell.
        let t = (ctc - junction.center).dot(d);
        junction.center + d * (t + self.lead)
    }

    /// Box the guide up as an engine [`WindowSteer`] hook.
    pub fn into_steer(self) -> WindowSteer {
        Box::new(move |tracker, ctc| self.aim(tracker, ctc))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracker_moving(from: Vec3, step: Vec3, n: usize) -> CtcTracker {
        let mut t = CtcTracker::new();
        for k in 0..n {
            t.record(k as u64, from + step * k as f64);
        }
        t
    }

    fn y_junction() -> JunctionGuide {
        JunctionGuide::new(
            vec![Junction {
                center: Vec3::new(0.0, 0.0, 10.0),
                daughters: vec![
                    Vec3::new(0.5, 0.0, 1.0),  // right daughter
                    Vec3::new(-0.5, 0.0, 1.0), // left daughter
                ],
            }],
            4.0,
            1.5,
        )
    }

    #[test]
    fn identity_far_from_junction() {
        let g = y_junction();
        let tracker = tracker_moving(Vec3::new(0.0, 0.0, 0.0), Vec3::new(0.0, 0.0, 0.1), 10);
        let p = Vec3::new(0.0, 0.0, 2.0);
        assert_eq!(g.aim(&tracker, p), p);
    }

    #[test]
    fn identity_without_trajectory() {
        let g = y_junction();
        let near = Vec3::new(0.0, 0.0, 9.0);
        // Too few samples.
        let fresh = CtcTracker::new();
        assert_eq!(g.aim(&fresh, near), near);
        // Stationary cell.
        let still = tracker_moving(near, Vec3::ZERO, 10);
        assert_eq!(g.aim(&still, near), near);
    }

    #[test]
    fn picks_daughter_matching_trajectory() {
        let g = y_junction();
        // Cell drifting up-right: should be steered onto the right daughter.
        let tracker = tracker_moving(Vec3::new(-0.5, 0.0, 7.0), Vec3::new(0.05, 0.0, 0.3), 10);
        let ctc = Vec3::new(0.0, 0.0, 9.5);
        let aim = g.aim(&tracker, ctc);
        assert!(aim.x > 0.0, "aim {aim:?} should lean toward +x daughter");
        assert!(aim.z > 10.0, "aim {aim:?} should lead past the junction");

        // Mirror trajectory: left daughter.
        let tracker = tracker_moving(Vec3::new(0.5, 0.0, 7.0), Vec3::new(-0.05, 0.0, 0.3), 10);
        let aim = g.aim(&tracker, ctc);
        assert!(aim.x < 0.0, "aim {aim:?} should lean toward -x daughter");
    }

    #[test]
    fn aim_leads_cell_along_daughter() {
        let g = y_junction();
        let tracker = tracker_moving(Vec3::new(0.0, 0.0, 8.0), Vec3::new(0.04, 0.0, 0.3), 10);
        // Cell just past the junction, on the right daughter.
        let d = Vec3::new(0.5, 0.0, 1.0).normalized();
        let ctc = Vec3::new(0.0, 0.0, 10.0) + d * 1.0;
        let aim = g.aim(&tracker, ctc);
        let along = (aim - Vec3::new(0.0, 0.0, 10.0)).dot(d);
        assert!(
            (along - 2.5).abs() < 1e-9,
            "aim should sit lead=1.5 ahead of the cell's projection (t=1): got {along}"
        );
        // Aim lies on the daughter centreline.
        let off_axis = (aim - Vec3::new(0.0, 0.0, 10.0)) - d * along;
        assert!(off_axis.norm() < 1e-9);
    }

    #[test]
    fn from_tree_finds_generation_one_bifurcation() {
        use apr_geom::TreeParams;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let params = TreeParams {
            root_radius: 4.0,
            root_length: 12.0,
            levels: 2,
            branch_angle: 0.5,
            asymmetry: 0.5,
            jitter: 0.0,
        };
        let mut rng = StdRng::seed_from_u64(1);
        let tree = VascularTree::grow(
            &params,
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(0.0, 0.0, 1.0),
            &mut rng,
        );
        let guide = JunctionGuide::from_tree(&tree, 4.0, 1.5);
        assert_eq!(guide.junctions.len(), 1, "2-level tree has one bifurcation");
        let j = &guide.junctions[0];
        assert_eq!(j.daughters.len(), 2);
        assert!((j.center - tree.segments[0].b).norm() < 1e-12);
        for d in &j.daughters {
            assert!((d.norm() - 1.0).abs() < 1e-12, "daughters normalized");
            assert!(d.z > 0.0, "daughters continue downstream");
        }
    }
}
