//! Analytic Womersley pulsatile pipe-flow profile.
//!
//! The oscillatory component of laminar flow in a rigid circular tube
//! driven by a sinusoidal pressure gradient is (Womersley 1955):
//!
//! ```text
//! F(s, t) = Re[ (1 − J0(ζ s) / J0(ζ)) / (1 − 1 / J0(ζ)) · e^{iωt} ]
//! ```
//!
//! with `s = r/R ∈ [0, 1]`, `ζ = α·i^{3/2}` and the Womersley number
//! `α = R√(ω/ν)`. The normalization puts the *centerline* at
//! `F(0, t) = cos(ωt)`, so a physical inlet is
//! `u(s, t) = u_mean·(1 − s²) + u_amp·F(s, t)`. In the low-α limit the
//! oscillation is quasi-steady, `F → (1 − s²)·cos(ωt)`; at high α the
//! profile flattens and the near-wall annulus leads the core in phase.
//!
//! `J0` is evaluated by its everywhere-convergent power series
//! `Σ (−z²/4)^k / (k!)²` in plain complex arithmetic — no special-function
//! dependency, bit-reproducible across platforms, accurate to well below
//! lattice truncation error for the α < 10 range the spec validator admits.

/// Complex number as (re, im); just enough arithmetic for the J0 series.
#[derive(Debug, Clone, Copy)]
struct C(f64, f64);

impl C {
    fn mul(self, o: C) -> C {
        C(self.0 * o.0 - self.1 * o.1, self.0 * o.1 + self.1 * o.0)
    }

    fn sub(self, o: C) -> C {
        C(self.0 - o.0, self.1 - o.1)
    }

    fn scale(self, k: f64) -> C {
        C(self.0 * k, self.1 * k)
    }

    fn inv(self) -> C {
        let d = self.0 * self.0 + self.1 * self.1;
        C(self.0 / d, -self.1 / d)
    }
}

/// Bessel J0 of a complex argument by power series.
fn j0(z: C) -> C {
    // term_k = (−z²/4)^k / (k!)², accumulated iteratively.
    let m = z.mul(z).scale(-0.25);
    let mut term = C(1.0, 0.0);
    let mut sum = term;
    for k in 1..=60u32 {
        term = term.mul(m).scale(1.0 / ((k * k) as f64));
        sum = C(sum.0 + term.0, sum.1 + term.1);
        if term.0.abs() + term.1.abs() < 1e-16 {
            break;
        }
    }
    sum
}

/// Precomputed Womersley oscillation for one (α, period) pair.
///
/// [`Womersley::profile`] is a pure function of `(s, step)` — restamping
/// it onto inlet nodes each step is code-not-state and therefore
/// resume-safe: a resumed engine replays exactly the same inlet history.
#[derive(Debug, Clone, Copy)]
pub struct Womersley {
    /// Womersley number α.
    pub alpha: f64,
    /// Oscillation period in steps.
    pub period: u64,
    zeta: C,
    inv_j0_zeta: C,
    inv_denom: C,
}

impl Womersley {
    /// Build the profile for Womersley number `alpha` and an oscillation
    /// `period` given in lattice steps.
    pub fn new(alpha: f64, period: u64) -> Self {
        assert!(alpha > 0.0, "alpha must be positive, got {alpha}");
        assert!(period >= 2, "period must be ≥ 2 steps, got {period}");
        // ζ = α·i^{3/2} = α·e^{i·3π/4}
        let half_sqrt2 = std::f64::consts::FRAC_1_SQRT_2;
        let zeta = C(-alpha * half_sqrt2, alpha * half_sqrt2);
        let inv_j0_zeta = j0(zeta).inv();
        // denom = 1 − 1/J0(ζ)
        let denom = C(1.0, 0.0).sub(inv_j0_zeta);
        Self {
            alpha,
            period,
            zeta,
            inv_j0_zeta,
            inv_denom: denom.inv(),
        }
    }

    /// Normalized oscillatory velocity at radial fraction `s = r/R ∈ [0,1]`
    /// and time `step`; the centerline is `profile(0, t) = cos(2πt/period)`.
    pub fn profile(&self, s: f64, step: u64) -> f64 {
        let ratio = self.shape(s);
        let omega_t = 2.0 * std::f64::consts::PI * (step % self.period) as f64 / self.period as f64;
        // Re[ratio · e^{iωt}]
        ratio.0 * omega_t.cos() - ratio.1 * omega_t.sin()
    }

    /// Complex spatial shape (1 − J0(ζs)/J0(ζ)) / (1 − 1/J0(ζ)).
    fn shape(&self, s: f64) -> C {
        let zs = self.zeta.scale(s.clamp(0.0, 1.0));
        C(1.0, 0.0)
            .sub(j0(zs).mul(self.inv_j0_zeta))
            .mul(self.inv_denom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn j0_matches_real_axis_reference() {
        // Abramowitz & Stegun table values for J0 on the real axis.
        let cases = [(0.0, 1.0), (1.0, 0.765_197_686_6), (2.0, 0.223_890_779_1)];
        for (x, want) in cases {
            let got = j0(C(x, 0.0));
            assert!(
                (got.0 - want).abs() < 1e-9,
                "J0({x}) = {}, want {want}",
                got.0
            );
            assert!(got.1.abs() < 1e-12);
        }
    }

    #[test]
    fn centerline_is_cosine() {
        let w = Womersley::new(3.0, 40);
        for step in [0u64, 7, 13, 25, 39] {
            let want = (2.0 * std::f64::consts::PI * step as f64 / 40.0).cos();
            let got = w.profile(0.0, step);
            assert!(
                (got - want).abs() < 1e-12,
                "step {step}: centerline {got} vs cos {want}"
            );
        }
    }

    #[test]
    fn low_alpha_limit_is_quasi_steady_poiseuille() {
        // α → 0: F(s,t) → (1 − s²)·cos(ωt). At α = 0.3 the correction is
        // O(α⁴) ≈ 1e-2 relative; require 2% absolute-of-peak agreement.
        let w = Womersley::new(0.3, 100);
        for step in [0u64, 12, 31, 50, 77] {
            let ct = (2.0 * std::f64::consts::PI * step as f64 / 100.0).cos();
            for s in [0.0, 0.25, 0.5, 0.75, 0.95] {
                let analytic = (1.0 - s * s) * ct;
                let got = w.profile(s, step);
                assert!(
                    (got - analytic).abs() < 0.02,
                    "s={s} step={step}: {got} vs quasi-steady {analytic}"
                );
            }
        }
    }

    #[test]
    fn wall_value_vanishes_and_high_alpha_flattens() {
        let w = Womersley::new(6.0, 64);
        for step in [0u64, 16, 32, 48] {
            assert!(w.profile(1.0, step).abs() < 1e-10, "no-slip at the wall");
        }
        // High α: the core profile is much flatter than parabolic —
        // |F(0.5, t)| stays close to |F(0, t)| over a period's peak.
        let peak_center: f64 = (0..64).map(|t| w.profile(0.0, t).abs()).fold(0.0, f64::max);
        let peak_half: f64 = (0..64).map(|t| w.profile(0.5, t).abs()).fold(0.0, f64::max);
        assert!(
            peak_half > 0.85 * peak_center,
            "plug-like core expected: |F(0.5)| peak {peak_half} vs center {peak_center}"
        );
    }

    #[test]
    fn profile_is_periodic_in_step() {
        let w = Womersley::new(2.0, 24);
        for s in [0.0, 0.4, 0.8] {
            for step in 0..24u64 {
                assert_eq!(w.profile(s, step), w.profile(s, step + 24));
            }
        }
    }
}
