//! N > 1 concurrent refinement windows in one bulk domain.
//!
//! A [`MultiWindowEngine`] runs one coarse lattice and a vector of
//! [`WindowUnit`]s, each a complete window stack — fine lattice, coupling
//! map, anatomy, cell pool, tracker, optional steer/geometry callbacks —
//! mirroring [`apr_core::AprEngine`]'s single-window machinery field for
//! field. Each step advances the coarse lattice once, then runs every
//! unit's `n` FSI substeps against its own shell snapshots and restricts
//! the fine solutions back. Restriction regions are disjoint (ownership
//! is enforced, see below), so the unit order never changes the physics.
//!
//! **Disjoint ownership.** Every window owns its coarse footprint plus an
//! [`OWNERSHIP_MARGIN`]-cell moat. Adding an overlapping window is a typed
//! [`ScenarioError::WindowOverlap`] — never a panic — and a window *move*
//! whose destination would invade another window's footprint is
//! deterministically deferred: the move simply does not happen that step
//! and is re-evaluated the next time the trigger fires. Deferral depends
//! only on engine state, so thread counts cannot change the outcome.
//!
//! The engine implements [`SimSession`], so apr-serve schedules a
//! multi-window scenario exactly like a single-window one:
//! checkpoint-preempt-resume with bit-identical suspend blobs.

use crate::spec::{footprints_conflict, ScenarioError, OWNERSHIP_MARGIN};
use apr_cells::{CellKind, CellPool, ContactParams, UniformSubgrid};
use apr_core::{fsi, BulkDriver, FineGeometry, SimSession, WindowSteer};
use apr_coupling::CouplingMap;
use apr_guard::{
    read_lattice, read_pool, write_lattice, write_pool, ByteWriter, CheckpointReader,
    CheckpointWriter, GuardError,
};
use apr_ibm::DeltaKernel;
use apr_lattice::{Lattice, SubStep};
use apr_membrane::Membrane;
use apr_mesh::Vec3;
use apr_observe::{ConservationLedger, DomainTotals, LedgerConfig, WindowFlux};
use apr_window::{
    move_window, remove_escaped_cells, repopulate, CtcTracker, HematocritController,
    InsertionContext, MoveTrigger, WindowAnatomy,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// One window's complete stack: everything [`apr_core::AprEngine`] owns
/// except the coarse lattice and the bulk driver, which the enclosing
/// [`MultiWindowEngine`] holds once.
pub struct WindowUnit {
    /// Fine (window, plasma) lattice.
    pub fine: Lattice,
    /// Bulk↔window coupling for this unit.
    pub map: CouplingMap,
    /// Window anatomy in fine coordinates.
    pub anatomy: WindowAnatomy,
    /// Live cells (fine coordinates).
    pub pool: CellPool,
    /// Spatial hash over cell vertices.
    pub grid: UniformSubgrid,
    /// Intercellular repulsion.
    pub contact: ContactParams,
    /// IBM delta kernel.
    pub kernel: DeltaKernel,
    /// Hematocrit controller (None = no density maintenance).
    pub controller: Option<HematocritController>,
    /// Insertion machinery (None = no repopulation).
    pub insertion: Option<InsertionContext>,
    /// Window-move trigger.
    pub trigger: MoveTrigger,
    /// This unit's tracked-cell trajectory, world coordinates.
    pub tracker: CtcTracker,
    /// Window moves executed by this unit.
    pub moves: u64,
    geometry: Option<FineGeometry>,
    steer: Option<WindowSteer>,
    rng: StdRng,
    ctc_membrane: Option<Arc<Membrane>>,
}

impl WindowUnit {
    /// Build a unit with the same defaults as `AprEngineBuilder`: anatomy
    /// 0.22/0.12/0.14 × fine span, contact (1.2, 5e-4), `Cosine4` kernel,
    /// trigger at a quarter of the proper half-width.
    ///
    /// Fails with [`ScenarioError::WindowOutOfBounds`] (index 0 — the
    /// caller knows the real slot) if the fine footprint leaves the coarse
    /// domain, instead of letting `CouplingMap::new` panic.
    pub fn new(
        coarse: &Lattice,
        mut fine: Lattice,
        origin: [f64; 3],
        n: usize,
        lambda: f64,
        seed: u64,
    ) -> Result<Self, ScenarioError> {
        let span = (fine.nx.min(fine.ny).min(fine.nz) - 1) as f64;
        let (proper_half, onramp, insertion_width) = (span * 0.22, span * 0.12, span * 0.14);
        let ext = [
            (fine.nx - 1) as f64 / n as f64,
            (fine.ny - 1) as f64 / n as f64,
            (fine.nz - 1) as f64 / n as f64,
        ];
        let dims = [coarse.nx, coarse.ny, coarse.nz];
        for a in 0..3 {
            if origin[a] < 0.0 || origin[a] + ext[a] > (dims[a] - 1) as f64 {
                return Err(ScenarioError::WindowOutOfBounds { index: 0 });
            }
        }
        let map = CouplingMap::new(coarse, &fine, origin, n, lambda, 1.0);
        map.seed_fine_from_coarse(coarse, &mut fine);
        let center = Vec3::new(
            (fine.nx - 1) as f64 / 2.0,
            (fine.ny - 1) as f64 / 2.0,
            (fine.nz - 1) as f64 / 2.0,
        );
        let contact = ContactParams {
            cutoff: 1.2,
            strength: 5e-4,
        };
        let grid = UniformSubgrid::new(contact.cutoff.max(2.0));
        Ok(WindowUnit {
            fine,
            map,
            anatomy: WindowAnatomy::new(center, proper_half, onramp, insertion_width),
            pool: CellPool::with_capacity(256),
            grid,
            contact,
            kernel: DeltaKernel::Cosine4,
            controller: None,
            insertion: None,
            trigger: MoveTrigger {
                trigger_distance: proper_half * 0.25,
            },
            tracker: CtcTracker::new(),
            moves: 0,
            geometry: None,
            steer: None,
            rng: StdRng::seed_from_u64(seed),
            ctc_membrane: None,
        })
    }

    /// Install a geometry callback re-flagging the fine lattice after
    /// moves; applies it immediately for the current origin.
    pub fn set_fine_geometry(&mut self, coarse: &Lattice, geometry: FineGeometry) {
        geometry(&mut self.fine, self.map.origin);
        self.rebuild_coupling(coarse);
        self.map.seed_fine_from_coarse(coarse, &mut self.fine);
        self.geometry = Some(geometry);
    }

    /// Install a window-steering callback (see [`apr_core::WindowSteer`]).
    pub fn set_window_steer(&mut self, steer: WindowSteer) {
        self.steer = Some(steer);
    }

    /// Add this unit's tracked CTC (fine coordinates); returns its ID.
    pub fn add_ctc(&mut self, membrane: Arc<Membrane>, vertices: Vec<Vec3>) -> u64 {
        self.ctc_membrane = Some(Arc::clone(&membrane));
        let (_, id) = self.pool.insert_shape(CellKind::Ctc, membrane, vertices);
        id
    }

    /// World (coarse) coordinates of a fine-coordinate point.
    pub fn fine_to_world(&self, p: Vec3) -> Vec3 {
        let n = self.map.n as f64;
        Vec3::new(
            self.map.origin[0] + p.x / n,
            self.map.origin[1] + p.y / n,
            self.map.origin[2] + p.z / n,
        )
    }

    /// Fine coordinates of a world point.
    pub fn world_to_fine(&self, p: Vec3) -> Vec3 {
        let n = self.map.n as f64;
        Vec3::new(
            (p.x - self.map.origin[0]) * n,
            (p.y - self.map.origin[1]) * n,
            (p.z - self.map.origin[2]) * n,
        )
    }

    /// This unit's CTC centroid in fine coordinates.
    pub fn ctc_position(&self) -> Option<Vec3> {
        self.pool
            .iter()
            .find(|c| c.kind == CellKind::Ctc)
            .map(|c| c.centroid())
    }

    /// Window hematocrit (if a controller is installed).
    pub fn window_hematocrit(&self) -> Option<f64> {
        self.controller
            .as_ref()
            .map(|c| c.window_hematocrit(&self.pool, &self.anatomy))
    }

    /// Coarse-cell extent of this unit's footprint along each axis.
    pub fn footprint_extent(&self) -> [f64; 3] {
        let n = self.map.n as f64;
        [
            (self.fine.nx - 1) as f64 / n,
            (self.fine.ny - 1) as f64 / n,
            (self.fine.nz - 1) as f64 / n,
        ]
    }

    /// Initially pack the window interior with RBCs from the insertion
    /// tile (same logic as `AprEngine::populate_window`).
    pub fn populate_window(&mut self) -> usize {
        let Some(ctx) = &self.insertion else { return 0 };
        apr_cells::rebuild_grid(&mut self.grid, &self.pool);
        let (lo, hi) = self.anatomy.bounds();
        let edge = (hi.x - lo.x).min(ctx.tile.edge);
        let placements = ctx.tile.sample_cube(edge, &mut self.rng);
        let mut inserted = 0;
        for p in placements {
            let mut verts = p.realize(&ctx.rbc_mesh);
            for v in &mut verts {
                *v += lo;
            }
            let centroid: Vec3 = verts.iter().copied().sum::<Vec3>() / verts.len() as f64;
            if !self.anatomy.contains(centroid) {
                continue;
            }
            if apr_cells::centroid_conflict(&self.pool, centroid, 2.0 * ctx.min_gap) {
                continue;
            }
            if let apr_cells::OverlapOutcome::Clear =
                apr_cells::test_overlap(&self.grid, &verts, ctx.min_gap)
            {
                let (_, id) =
                    self.pool
                        .insert_shape(CellKind::Rbc, Arc::clone(&ctx.rbc_membrane), verts);
                let cell = self.pool.find_by_id(id).expect("just inserted");
                self.grid.insert_cell(id, &cell.vertices);
                inserted += 1;
            }
        }
        inserted
    }

    fn rebuild_coupling(&mut self, coarse: &Lattice) {
        self.map = CouplingMap::new(
            coarse,
            &self.fine,
            self.map.origin,
            self.map.n,
            self.map.lambda,
            1.0,
        );
    }

    /// Run this unit's `n` FSI substeps between the shell snapshots and
    /// restrict the fine solution into the coarse lattice.
    fn substep_and_restrict(
        &mut self,
        coarse: &mut Lattice,
        old: &apr_coupling::ShellSnapshot,
        new: &apr_coupling::ShellSnapshot,
    ) {
        let n = self.map.n;
        for k in 0..n {
            let theta = (k + 1) as f64 / n as f64;
            fsi::compute_membrane_forces(&mut self.pool);
            fsi::compute_contact_forces(&mut self.pool, &mut self.grid, self.contact);
            self.fine.clear_forces();
            fsi::spread_cell_forces(&mut self.fine, &self.pool, self.kernel, |v| v, 1.0);
            self.fine.advance(SubStep::Collide);
            self.map.impose_shell(&mut self.fine, old, new, theta);
            self.fine.advance(SubStep::Stream);
            fsi::advect_cells(&self.fine, &mut self.pool, self.kernel, |v| v, 1.0);
        }
        self.map.restrict(coarse, &self.fine);
    }

    /// Attempt the window move toward the CTC at fine position `ctc`,
    /// refusing (deterministically, without side effects) any destination
    /// whose footprint would conflict with `others` — the footprints
    /// `(origin, extent)` of every *other* live window.
    fn try_move(
        &mut self,
        coarse: &mut Lattice,
        ctc: Vec3,
        step: u64,
        others: &[([f64; 3], [f64; 3])],
    ) -> Option<WindowFlux> {
        let n = self.map.n as f64;
        let aim = match &self.steer {
            Some(steer) => {
                let world = self.fine_to_world(ctc);
                self.world_to_fine(steer(&self.tracker, world))
            }
            None => ctc,
        };
        let shift_c = Vec3::new(
            ((aim.x - self.anatomy.center.x) / n).round(),
            ((aim.y - self.anatomy.center.y) / n).round(),
            ((aim.z - self.anatomy.center.z) / n).round(),
        );
        if shift_c == Vec3::ZERO {
            return None;
        }
        let new_origin = [
            self.map.origin[0] + shift_c.x,
            self.map.origin[1] + shift_c.y,
            self.map.origin[2] + shift_c.z,
        ];
        // Stay inside the coarse domain along non-periodic axes.
        let fine_dims = [self.fine.nx, self.fine.ny, self.fine.nz];
        let coarse_dims = [coarse.nx, coarse.ny, coarse.nz];
        for a in 0..3 {
            if self.fine.periodic[a] {
                continue;
            }
            let hi = new_origin[a] + (fine_dims[a] - 1) as f64 / n;
            if new_origin[a] < 0.0 || hi > (coarse_dims[a] - 1) as f64 {
                return None;
            }
        }
        // Ownership: defer any move that would invade another window's
        // footprint (plus the margin moat).
        let ext = self.footprint_extent();
        for &(other_origin, other_ext) in others {
            if footprints_conflict(new_origin, ext, other_origin, other_ext, OWNERSHIP_MARGIN) {
                apr_telemetry::counter_add("multi.move_deferred", 1);
                return None;
            }
        }

        let shift_fine = shift_c * n;
        let target = self.anatomy.center + shift_fine;
        let (_, move_report) = move_window(
            &self.anatomy,
            &mut self.pool,
            &mut self.grid,
            target,
            self.insertion.as_ref().map_or(1.0, |c| c.min_gap),
        );
        for cell in self.pool.iter_mut() {
            cell.translate(-shift_fine);
        }
        apr_cells::rebuild_grid(&mut self.grid, &self.pool);

        self.map = CouplingMap::new(
            coarse,
            &self.fine,
            new_origin,
            self.map.n,
            self.map.lambda,
            1.0,
        );
        if let Some(geometry) = &self.geometry {
            geometry(&mut self.fine, new_origin);
            self.rebuild_coupling(coarse);
        }
        self.map.seed_fine_from_coarse(coarse, &mut self.fine);
        self.moves += 1;
        apr_telemetry::emit(apr_telemetry::TelemetryEvent::WindowMove {
            step,
            shift: [shift_c.x, shift_c.y, shift_c.z],
            captured: move_report.captured as u32,
            copied: move_report.copied as u32,
            removed: move_report.removed as u32,
        });
        Some(WindowFlux {
            captured: move_report.captured as u32,
            copied: move_report.copied as u32,
            removed: move_report.removed as u32,
            moved: true,
        })
    }
}

/// Coarse bulk lattice plus N disjoint refinement windows, scheduled as
/// one [`SimSession`].
pub struct MultiWindowEngine {
    /// Coarse (bulk) lattice.
    pub coarse: Lattice,
    /// The window units, in insertion order.
    pub windows: Vec<WindowUnit>,
    /// Aggregated conservation ledger (bulk vs sum-of-windows totals).
    pub ledger: Option<ConservationLedger>,
    /// Steps between window-maintenance sweeps.
    pub maintenance_interval: u64,
    bulk_driver: Option<BulkDriver>,
    steps: u64,
    site_updates: u64,
}

impl MultiWindowEngine {
    /// New engine over a prepared coarse lattice, with no windows yet.
    pub fn new(coarse: Lattice) -> Self {
        MultiWindowEngine {
            coarse,
            windows: Vec::new(),
            ledger: None,
            maintenance_interval: 10,
            bulk_driver: None,
            steps: 0,
            site_updates: 0,
        }
    }

    /// Arm the aggregated conservation ledger.
    pub fn set_ledger(&mut self, config: LedgerConfig) {
        self.ledger = Some(ConservationLedger::new(config));
    }

    /// Install a bulk driver (time-dependent coarse forcing).
    pub fn set_bulk_driver(&mut self, driver: BulkDriver) {
        self.bulk_driver = Some(driver);
    }

    /// Add a window, enforcing disjoint ownership against every existing
    /// window and the coarse domain bounds. The returned index identifies
    /// the unit in [`MultiWindowEngine::windows`].
    pub fn add_window(&mut self, unit: WindowUnit) -> Result<usize, ScenarioError> {
        let ext = unit.footprint_extent();
        let origin = unit.map.origin;
        let dims = [self.coarse.nx, self.coarse.ny, self.coarse.nz];
        for a in 0..3 {
            if unit.fine.periodic[a] {
                continue;
            }
            if origin[a] < 0.0 || origin[a] + ext[a] > (dims[a] - 1) as f64 {
                return Err(ScenarioError::WindowOutOfBounds {
                    index: self.windows.len(),
                });
            }
        }
        for (i, existing) in self.windows.iter().enumerate() {
            if footprints_conflict(
                origin,
                ext,
                existing.map.origin,
                existing.footprint_extent(),
                OWNERSHIP_MARGIN,
            ) {
                return Err(ScenarioError::WindowOverlap {
                    first: i,
                    second: self.windows.len(),
                });
            }
        }
        self.windows.push(unit);
        Ok(self.windows.len() - 1)
    }

    /// Pack every cell-laden window (see [`WindowUnit::populate_window`]);
    /// returns total cells inserted.
    pub fn populate_windows(&mut self) -> usize {
        self.windows.iter_mut().map(|w| w.populate_window()).sum()
    }

    /// Total window moves across all units.
    pub fn window_moves(&self) -> u64 {
        self.windows.iter().map(|w| w.moves).sum()
    }

    /// Advance one coarse step: bulk driver, coarse collide/stream, every
    /// unit's FSI substeps + restriction, per-unit tracking/moves (with
    /// ownership deferral), maintenance, and the aggregated ledger sample.
    pub fn step(&mut self) {
        let _step_scope = apr_telemetry::step_scope(self.steps + 1);
        let _span = apr_telemetry::span("multi.step");
        if let Some(driver) = &self.bulk_driver {
            driver(&mut self.coarse, self.steps);
        }
        let old: Vec<_> = self
            .windows
            .iter()
            .map(|w| w.map.snapshot(&self.coarse, &w.fine))
            .collect();
        self.coarse.step();
        let new: Vec<_> = self
            .windows
            .iter()
            .map(|w| w.map.snapshot(&self.coarse, &w.fine))
            .collect();
        let mut flux = WindowFlux::default();
        for (i, unit) in self.windows.iter_mut().enumerate() {
            let _s = apr_telemetry::span("multi.window");
            unit.substep_and_restrict(&mut self.coarse, &old[i], &new[i]);
        }

        self.steps += 1;
        let mut step_sites = self.coarse.fluid_node_count() as u64;
        for unit in &self.windows {
            step_sites += (unit.fine.fluid_node_count() * unit.map.n) as u64;
        }
        self.site_updates += step_sites;
        apr_telemetry::counter_add("apr.site_updates", step_sites);

        // Tracking + moves, in unit order. Each unit sees the *current*
        // footprints of all others (including moves earlier this step) —
        // state-dependent only, so deferral is deterministic.
        for i in 0..self.windows.len() {
            let Some(ctc) = self.windows[i].ctc_position() else {
                continue;
            };
            let world = self.windows[i].fine_to_world(ctc);
            self.windows[i].tracker.record(self.steps, world);
            if !self.windows[i]
                .trigger
                .should_move(&self.windows[i].anatomy, ctc)
            {
                continue;
            }
            let others: Vec<([f64; 3], [f64; 3])> = self
                .windows
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, w)| (w.map.origin, w.footprint_extent()))
                .collect();
            let steps = self.steps;
            if let Some(moved) = self.windows[i].try_move(&mut self.coarse, ctc, steps, &others) {
                flux.captured += moved.captured;
                flux.copied += moved.copied;
                flux.removed += moved.removed;
                flux.moved = true;
            }
        }

        if self.steps.is_multiple_of(self.maintenance_interval) {
            for unit in &mut self.windows {
                let escaped = remove_escaped_cells(&mut unit.pool, &mut unit.grid, &unit.anatomy);
                if escaped > 0 {
                    apr_telemetry::emit(apr_telemetry::TelemetryEvent::EscapedCells {
                        step: self.steps,
                        count: escaped as u32,
                    });
                }
                if let (Some(controller), Some(ctx)) = (&unit.controller, &unit.insertion) {
                    repopulate(
                        &mut unit.pool,
                        &mut unit.grid,
                        &unit.anatomy,
                        controller,
                        ctx,
                        &mut unit.rng,
                    );
                }
            }
        }

        self.sample_ledger(flux);
    }

    fn sample_ledger(&mut self, flux: WindowFlux) {
        if self.ledger.is_none() {
            return;
        }
        let (mass, momentum, nodes) = self.coarse.mass_momentum_totals();
        let bulk = DomainTotals {
            mass,
            momentum,
            fluid_nodes: nodes as u64,
        };
        let mut window = DomainTotals::default();
        for unit in &self.windows {
            let (mass, momentum, nodes) = unit.fine.mass_momentum_totals();
            window.mass += mass;
            for (acc, m) in window.momentum.iter_mut().zip(momentum) {
                *acc += m;
            }
            window.fluid_nodes += nodes as u64;
        }
        // Mean hematocrit over the controlled windows, if any.
        let hts: Vec<f64> = self
            .windows
            .iter()
            .filter_map(|w| w.window_hematocrit())
            .collect();
        let hematocrit = if hts.is_empty() {
            None
        } else {
            Some(hts.iter().sum::<f64>() / hts.len() as f64)
        };
        let steps = self.steps;
        let ledger = self.ledger.as_mut().expect("checked above");
        ledger.record(steps, bulk, window, hematocrit, flux);
    }
}

impl SimSession for MultiWindowEngine {
    fn step_n(&mut self, n: u64) -> u64 {
        let before = self.site_updates;
        for _ in 0..n {
            self.step();
        }
        self.site_updates - before
    }

    fn steps(&self) -> u64 {
        self.steps
    }

    fn site_updates(&self) -> u64 {
        self.site_updates
    }

    fn suspend(&self) -> Vec<u8> {
        let mut ckpt = CheckpointWriter::new();
        let mut meta = ByteWriter::new();
        meta.u64(self.steps);
        meta.u64(self.site_updates);
        meta.u64(self.maintenance_interval);
        meta.usize(self.windows.len());
        ckpt.section("meta", meta.into_bytes());
        ckpt.section("coarse", write_lattice(&self.coarse));
        for (i, unit) in self.windows.iter().enumerate() {
            let mut wmeta = ByteWriter::new();
            wmeta.u64(unit.moves);
            wmeta.f64(unit.trigger.trigger_distance);
            for s in unit.rng.state() {
                wmeta.u64(s);
            }
            ckpt.section(&format!("w{i}.meta"), wmeta.into_bytes());

            let mut map = ByteWriter::new();
            for a in 0..3 {
                map.f64(unit.map.origin[a]);
            }
            map.usize(unit.map.n);
            map.f64(unit.map.lambda);
            ckpt.section(&format!("w{i}.map"), map.into_bytes());

            let mut anatomy = ByteWriter::new();
            anatomy.vec3(unit.anatomy.center);
            anatomy.f64(unit.anatomy.proper_half);
            anatomy.f64(unit.anatomy.onramp);
            anatomy.f64(unit.anatomy.insertion);
            ckpt.section(&format!("w{i}.anatomy"), anatomy.into_bytes());

            ckpt.section(&format!("w{i}.fine"), write_lattice(&unit.fine));
            ckpt.section(&format!("w{i}.pool"), write_pool(&unit.pool));

            let mut tracker = ByteWriter::new();
            tracker.usize(unit.tracker.samples.len());
            for &(step, p) in &unit.tracker.samples {
                tracker.u64(step);
                tracker.vec3(p);
            }
            ckpt.section(&format!("w{i}.tracker"), tracker.into_bytes());

            let mut controller = ByteWriter::new();
            match &unit.controller {
                Some(c) => {
                    controller.bool(true);
                    controller.f64(c.target);
                    controller.f64(c.threshold);
                    controller.f64(c.cell_volume);
                }
                None => controller.bool(false),
            }
            ckpt.section(&format!("w{i}.controller"), controller.into_bytes());
        }
        ckpt.finish()
    }

    fn resume(&mut self, blob: &[u8]) -> Result<(), GuardError> {
        let ckpt = CheckpointReader::parse(blob)?;
        let mut meta = ckpt.require("meta")?;
        let steps = meta.u64()?;
        let site_updates = meta.u64()?;
        let maintenance_interval = meta.u64()?;
        let count = meta.usize()?;
        if count != self.windows.len() {
            return Err(GuardError::Format(format!(
                "window count mismatch: checkpoint {count} vs engine {}",
                self.windows.len()
            )));
        }
        read_lattice(&mut self.coarse, &mut ckpt.require("coarse")?)?;
        for (i, unit) in self.windows.iter_mut().enumerate() {
            let mut wmeta = ckpt.require(&format!("w{i}.meta"))?;
            unit.moves = wmeta.u64()?;
            let trigger_distance = wmeta.f64()?;
            let rng_state = [wmeta.u64()?, wmeta.u64()?, wmeta.u64()?, wmeta.u64()?];

            let mut map = ckpt.require(&format!("w{i}.map"))?;
            let origin = [map.f64()?, map.f64()?, map.f64()?];
            let n = map.usize()?;
            let lambda = map.f64()?;
            if n != unit.map.n {
                return Err(GuardError::Format(format!(
                    "window {i} refinement mismatch: checkpoint {n} vs engine {}",
                    unit.map.n
                )));
            }
            // Geometry from code for the stored origin, state from the blob.
            if let Some(geometry) = &unit.geometry {
                geometry(&mut unit.fine, origin);
            }
            read_lattice(&mut unit.fine, &mut ckpt.require(&format!("w{i}.fine"))?)?;
            unit.map = CouplingMap::new(&self.coarse, &unit.fine, origin, n, lambda, 1.0);

            let rbc_membrane = unit.insertion.as_ref().map(|c| Arc::clone(&c.rbc_membrane));
            let ctc_membrane = unit.ctc_membrane.clone();
            let provider = |kind: CellKind| match kind {
                CellKind::Rbc => rbc_membrane.clone(),
                CellKind::Ctc => ctc_membrane.clone(),
            };
            unit.pool = read_pool(&mut ckpt.require(&format!("w{i}.pool"))?, &provider)?;
            apr_cells::rebuild_grid(&mut unit.grid, &unit.pool);

            let mut anatomy = ckpt.require(&format!("w{i}.anatomy"))?;
            unit.anatomy = WindowAnatomy {
                center: anatomy.vec3()?,
                proper_half: anatomy.f64()?,
                onramp: anatomy.f64()?,
                insertion: anatomy.f64()?,
            };

            let mut tracker = ckpt.require(&format!("w{i}.tracker"))?;
            let samples = tracker.usize()?;
            let mut history = Vec::with_capacity(samples);
            for _ in 0..samples {
                let step = tracker.u64()?;
                let p = tracker.vec3()?;
                history.push((step, p));
            }
            unit.tracker.samples = history;

            let mut controller = ckpt.require(&format!("w{i}.controller"))?;
            unit.controller = if controller.bool()? {
                Some(HematocritController {
                    target: controller.f64()?,
                    threshold: controller.f64()?,
                    cell_volume: controller.f64()?,
                })
            } else {
                None
            };
            unit.trigger = MoveTrigger { trigger_distance };
            unit.rng = StdRng::from_state(rng_state);
        }
        self.maintenance_interval = maintenance_interval;
        self.steps = steps;
        self.site_updates = site_updates;
        if let Some(ledger) = self.ledger.as_mut() {
            ledger.reset_continuity();
        }
        Ok(())
    }
}

// The serve scheduler migrates sessions between worker threads.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<MultiWindowEngine>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use apr_coupling::fine_tau;
    use apr_lattice::force_driven_tube;

    fn two_window_engine() -> MultiWindowEngine {
        let coarse = force_driven_tube(17, 17, 48, 0.9, 7.0, 4e-6);
        let mut eng = MultiWindowEngine::new(coarse);
        eng.set_ledger(LedgerConfig::default());
        for z in [4.0, 24.0] {
            let fine = Lattice::new(13, 13, 13, fine_tau(0.9, 2, 0.3));
            let unit = WindowUnit::new(&eng.coarse, fine, [5.0, 5.0, z], 2, 0.3, 7).unwrap();
            eng.add_window(unit).unwrap();
        }
        eng
    }

    #[test]
    fn overlapping_window_is_typed_error_not_panic() {
        let coarse = force_driven_tube(17, 17, 48, 0.9, 7.0, 4e-6);
        let mut eng = MultiWindowEngine::new(coarse);
        let fine = Lattice::new(13, 13, 13, fine_tau(0.9, 2, 0.3));
        let unit = WindowUnit::new(&eng.coarse, fine, [5.0, 5.0, 4.0], 2, 0.3, 1).unwrap();
        eng.add_window(unit).unwrap();
        let fine = Lattice::new(13, 13, 13, fine_tau(0.9, 2, 0.3));
        let unit = WindowUnit::new(&eng.coarse, fine, [5.0, 5.0, 8.0], 2, 0.3, 2).unwrap();
        assert_eq!(
            eng.add_window(unit).unwrap_err(),
            ScenarioError::WindowOverlap {
                first: 0,
                second: 1
            }
        );
        // Out of bounds is its own error, raised before the coupling map
        // (which would panic) is ever built.
        let fine = Lattice::new(13, 13, 13, fine_tau(0.9, 2, 0.3));
        assert_eq!(
            WindowUnit::new(&eng.coarse, fine, [5.0, 5.0, 44.0], 2, 0.3, 3)
                .err()
                .unwrap(),
            ScenarioError::WindowOutOfBounds { index: 0 }
        );
    }

    #[test]
    fn steps_and_ledger_stay_clean() {
        let mut eng = two_window_engine();
        eng.step_n(12);
        assert_eq!(SimSession::steps(&eng), 12);
        assert!(SimSession::site_updates(&eng) > 0);
        assert!(
            eng.ledger.as_ref().unwrap().breaches().is_empty(),
            "aggregated ledger must stay clean: {:?}",
            eng.ledger.as_ref().unwrap().breaches()
        );
    }

    #[test]
    fn suspend_resume_round_trip_is_bit_identical() {
        let mut a = two_window_engine();
        let mut b = two_window_engine();
        a.step_n(5);
        let parked = SimSession::suspend(&a);
        b.resume(&parked).unwrap();
        assert_eq!(SimSession::steps(&b), 5);
        a.step_n(5);
        b.step_n(5);
        assert_eq!(SimSession::suspend(&a), SimSession::suspend(&b));
    }

    #[test]
    fn resume_rejects_window_count_mismatch() {
        let a = two_window_engine();
        let blob = SimSession::suspend(&a);
        let coarse = force_driven_tube(17, 17, 48, 0.9, 7.0, 4e-6);
        let mut one = MultiWindowEngine::new(coarse);
        let fine = Lattice::new(13, 13, 13, fine_tau(0.9, 2, 0.3));
        let unit = WindowUnit::new(&one.coarse, fine, [5.0, 5.0, 4.0], 2, 0.3, 7).unwrap();
        one.add_window(unit).unwrap();
        assert!(one.resume(&blob).is_err());
    }
}
