//! # apr-scenarios — the declarative vascular scenario zoo
//!
//! The paper's workloads are *scenarios*: a vascular geometry, an inlet
//! condition, a hematocrit, and one or more tracked cells each owning a
//! moving refinement window. This crate turns that description into plain
//! data — [`ScenarioSpec`] — with:
//!
//! - a **registry** of named canonical scenarios ([`registry`],
//!   [`lookup`]): tubes, bifurcating Murray-law trees, stenoses, saccular
//!   aneurysms, pulsatile inlets, junction-transit and twin-window runs;
//! - **canonical hashing** ([`ScenarioSpec::hash`]) compatible with
//!   apr-serve's warm-state cache (physics fields only; the runtime config
//!   is excluded, test-enforced);
//! - JSON round-tripping ([`ScenarioSpec::to_json`] /
//!   [`ScenarioSpec::from_json`], schema [`SCENARIO_SCHEMA`]) through the
//!   workspace's dependency-free `apr_telemetry::json`;
//! - **builders** assembling a ready engine: one window builds an
//!   [`apr_core::AprEngine`], N > 1 windows build a [`MultiWindowEngine`]
//!   — both behind `Box<dyn SimSession>` so apr-serve schedules either.
//!
//! The genuinely new mechanics live here too:
//!
//! - [`transit`] — window navigation through a branch point: a
//!   [`JunctionGuide`] steers window moves into the daughter branch chosen
//!   by the tracked cell's trajectory;
//! - [`multi`] — N > 1 concurrent windows in one bulk domain with
//!   disjoint-ownership enforcement (overlapping window requests are a
//!   typed [`ScenarioError::WindowOverlap`], and a move that would collide
//!   with another window's footprint is deterministically deferred).

pub mod build;
pub mod multi;
pub mod registry;
pub mod spec;
pub mod transit;
pub mod womersley;

pub use apr_core::SimSession;
pub use multi::{MultiWindowEngine, WindowUnit};
pub use registry::{lookup, registry};
pub use spec::{GeometrySpec, InletSpec, ScenarioError, ScenarioSpec, WindowSpec, SCENARIO_SCHEMA};
pub use transit::{Junction, JunctionGuide};
pub use womersley::Womersley;
