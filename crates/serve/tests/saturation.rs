//! Satellite: saturation smoke — 16 sessions on a 4-worker budget.
//!
//! Asserts the service's level objectives under 4× oversubscription:
//! every session completes, progress is fair (bounded grant gaps, no
//! starvation), the warm cache serves ≥ 50% of lookups when sessions
//! share scenarios, identical specs produce identical results, and
//! admission control refuses work past the cap.

use apr_serve::{
    AdmitError, GeometrySpec, InletSpec, JobSpec, ScenarioSpec, ServeConfig, SimService,
};

#[test]
fn sixteen_sessions_on_four_workers_complete_fairly() {
    let sessions = 16u64;
    let workers = 4usize;
    let target = 20u64;
    let config = ServeConfig {
        workers,
        lanes_per_worker: 1,
        slice_steps: 5, // 4 slices per session → heavy interleaving
        max_sessions: sessions as usize,
        cache_capacity: 4,
        park_bytes_cap: usize::MAX,
    };
    let service = SimService::start(config);

    // Two alternating scenarios: 16 lookups over 2 distinct hashes.
    let scenarios = [ScenarioSpec::tube_small(1), ScenarioSpec::tube_small(2)];
    let ids: Vec<u64> = (0..sessions)
        .map(|i| {
            service
                .submit(JobSpec {
                    scenario: scenarios[(i % 2) as usize].clone(),
                    target_steps: target,
                })
                .unwrap()
        })
        .collect();
    assert_eq!(ids.len(), 16);

    let results = service.wait_all();
    assert_eq!(results.len(), 16, "every admitted session must complete");
    for r in &results {
        assert_eq!(r.error, None, "session {} failed", r.session);
        assert_eq!(r.steps, target, "session {} stopped early", r.session);
        assert!(
            r.preempts >= 3,
            "session {} was not preempted enough ({} preempts) to exercise scheduling",
            r.session,
            r.preempts
        );
    }

    // Fairness: round-robin bounds the gap between a session's consecutive
    // grants by the number of concurrently active sessions (plus the
    // workers that may each have claimed a grant in the same instant).
    let bound = sessions + workers as u64;
    for &id in &ids {
        let stats = service.session_stats(id).unwrap();
        assert!(
            stats.max_grant_gap <= bound,
            "session {id} starved: max grant gap {} > bound {bound}",
            stats.max_grant_gap
        );
    }
    let metrics = service.metrics();
    assert_eq!(metrics.sessions_completed, 16);
    assert_eq!(metrics.sessions_failed, 0);
    assert!(metrics.max_grant_gap <= bound);
    assert!(metrics.total_preempts >= 16 * 3);

    // Warm cache: 16 lookups over 2 scenarios. Worst case every worker
    // races a cold build for each scenario before a blob lands: 8 misses.
    // ≥ 50% hit rate is the service-level objective from the issue.
    assert!(
        metrics.cache_hit_rate >= 0.5,
        "warm-cache hit rate {} below 0.5 ({} hits / {} misses)",
        metrics.cache_hit_rate,
        metrics.cache_hits,
        metrics.cache_misses
    );

    // Zero cross-session nondeterminism: identical specs → identical
    // final checkpoints, despite 4 workers interleaving 16 sessions.
    for pair in results.chunks(2) {
        // ids alternate scenarios, so results[2k] and results[2k+1] differ,
        // but all even-indexed share scenario 1 and odd share scenario 2.
        assert_ne!(pair[0].scenario, pair[1].scenario);
    }
    let first_a = results
        .iter()
        .find(|r| r.scenario == scenarios[0].hash())
        .unwrap();
    let first_b = results
        .iter()
        .find(|r| r.scenario == scenarios[1].hash())
        .unwrap();
    for r in &results {
        let reference = if r.scenario == scenarios[0].hash() {
            first_a
        } else {
            first_b
        };
        assert_eq!(
            r.final_checkpoint, reference.final_checkpoint,
            "sessions {} and {} ran identical specs but diverged",
            r.session, reference.session
        );
    }
}

#[test]
fn admission_control_refuses_past_the_cap() {
    let config = ServeConfig {
        workers: 1,
        lanes_per_worker: 1,
        slice_steps: 4,
        max_sessions: 3,
        cache_capacity: 2,
        park_bytes_cap: usize::MAX,
    };
    let service = SimService::start(config);
    let spec = JobSpec {
        scenario: ScenarioSpec::tube_small(9),
        target_steps: 12,
    };
    let mut admitted = Vec::new();
    for _ in 0..3 {
        admitted.push(service.submit(spec.clone()).unwrap());
    }
    match service.submit(spec.clone()) {
        Err(AdmitError::Saturated { inflight, max }) => {
            assert_eq!(max, 3);
            assert!(inflight >= 1);
        }
        other => panic!("expected saturation, got {other:?}"),
    }
    // Capacity frees as sessions complete: once all three finish,
    // admission opens again.
    service.wait_all();
    assert!(service.submit(spec).is_ok());
}

#[test]
fn admission_control_refuses_invalid_specs() {
    // Malformed physics never reaches a worker: validation runs at submit.
    let config = ServeConfig::new(1);
    let service = SimService::start(config);
    let mut bad = ScenarioSpec::tube_small(1);
    bad.tau_c = 0.4; // tau ≤ 1/2 is unphysical; validate() rejects it
    match service.submit(JobSpec {
        scenario: bad,
        target_steps: 8,
    }) {
        Err(AdmitError::InvalidScenario) => {}
        other => panic!("expected InvalidScenario, got {other:?}"),
    }
}

#[test]
fn a_panicking_session_does_not_poison_the_service() {
    // A tree whose root segment is longer than the domain passes spec
    // validation (the spec cannot know where the grown tree's outlets
    // land) but trips `open_tree_flow`'s "no outlet nodes stamped"
    // assertion during the doomed session's cold build — inside the
    // slice's catch_unwind. The session must complete with an error while
    // a healthy session sharing the service still finishes.
    let config = ServeConfig {
        workers: 2,
        lanes_per_worker: 1,
        slice_steps: 4,
        max_sessions: 4,
        cache_capacity: 2,
        park_bytes_cap: usize::MAX,
    };
    let service = SimService::start(config);
    let mut bad_scenario = ScenarioSpec::tube_small(1);
    bad_scenario.name = "tree_overrun".into();
    bad_scenario.geometry = GeometrySpec::Tree {
        levels: 1,
        root_radius: 4.0,
        root_length: 60.0, // nz = 24: the root exits the domain, no outlets
        branch_angle: 0.45,
        asymmetry: 0.5,
    };
    bad_scenario.inlet = InletSpec::Poiseuille { u_max: 0.02 };
    assert!(bad_scenario.validate().is_ok(), "spec-level checks pass");
    let bad = service
        .submit(JobSpec {
            scenario: bad_scenario,
            target_steps: 8,
        })
        .unwrap();
    let good = service
        .submit(JobSpec {
            scenario: ScenarioSpec::tube_small(4),
            target_steps: 8,
        })
        .unwrap();
    let bad_result = service.wait(bad).unwrap();
    assert!(
        bad_result.error.is_some(),
        "doomed session must report its panic"
    );
    assert!(bad_result.final_checkpoint.is_empty());
    let good_result = service.wait(good).unwrap();
    assert_eq!(good_result.error, None);
    assert_eq!(good_result.steps, 8);
}
