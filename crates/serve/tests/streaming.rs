//! Live progress streaming: every scheduler slice pushes a sample to the
//! observability hub, and `subscribe_progress` delivers them in order
//! with a final completion sample — no polling required.

use apr_serve::{JobSpec, ProgressSample, ScenarioSpec, ServeConfig, SimService};
use std::time::Duration;

fn collect_until_complete(
    sub: &apr_serve::ProgressSubscription,
    session: u64,
) -> Vec<ProgressSample> {
    let mut samples = Vec::new();
    loop {
        let p = sub
            .recv_timeout(Duration::from_secs(30))
            .expect("progress stream must not stall");
        if p.session != session {
            continue; // another test's session on the shared hub
        }
        let done = p.completed;
        samples.push(p);
        if done {
            return samples;
        }
    }
}

#[test]
fn every_slice_streams_a_progress_sample() {
    let mut cfg = ServeConfig::new(1);
    cfg.slice_steps = 4;
    let service = SimService::start(cfg);
    // Subscribe before submitting so the first slice cannot be missed.
    let sub = service.subscribe_progress(None);
    let id = service
        .submit(JobSpec {
            scenario: ScenarioSpec::tube_small(71),
            target_steps: 12,
        })
        .expect("admission");

    let samples = collect_until_complete(&sub, id);
    assert_eq!(samples.len(), 3, "12 steps / 4-step slices = 3 samples");
    for (i, p) in samples.iter().enumerate() {
        assert_eq!(p.slice, i as u64 + 1, "slice counter increments");
        assert_eq!(p.steps_done, 4 * (i as u64 + 1), "steps accumulate");
        assert_eq!(p.target_steps, 12);
        assert!(p.steps_per_sec > 0.0, "rate must be positive");
        assert!(
            p.cache_hit.is_some(),
            "cache temperature known from slice 1"
        );
    }
    assert!(samples.last().unwrap().completed);
    assert!(
        !samples[..samples.len() - 1].iter().any(|p| p.completed),
        "only the final sample is marked completed"
    );
    let result = service.wait(id).expect("session known");
    assert_eq!(result.steps, 12);
}

#[test]
fn session_filter_drops_other_sessions() {
    let mut cfg = ServeConfig::new(2);
    cfg.slice_steps = 4;
    let service = SimService::start(cfg);
    // Session ids are sequential per service, starting at 1 — subscribe
    // to the first id before submitting so no sample can be missed.
    let sub = service.subscribe_progress(Some(1));
    let a = service
        .submit(JobSpec {
            scenario: ScenarioSpec::tube_small(72),
            target_steps: 8,
        })
        .expect("admission");
    assert_eq!(a, 1);
    let _b = service
        .submit(JobSpec {
            scenario: ScenarioSpec::tube_small(73),
            target_steps: 8,
        })
        .expect("admission");
    service.wait_all();
    // Everything already published; drain without blocking.
    let mut seen = Vec::new();
    while let Some(p) = sub.try_recv() {
        seen.push(p);
    }
    assert!(!seen.is_empty(), "session A produced samples");
    assert!(seen.iter().all(|p| p.session == a), "filter admits only A");
}
