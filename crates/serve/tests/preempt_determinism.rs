//! Satellite: checkpoint-preempt-resume is invisible to the physics.
//!
//! A session preempted and resumed ~10 times through the service must
//! produce a final checkpoint byte-identical to the same scenario stepped
//! straight through with no service, no preemption, and no cache — at
//! lane counts 1 and 4. This is the serve subsystem's core contract:
//! scheduling is not allowed to perturb a single bit of simulation state.

use apr_serve::{JobSpec, ScenarioSpec, ServeConfig, SimService};

/// Straight-through reference: cold build + `target` steps, no service.
fn straight_through(scenario: &ScenarioSpec, target: u64) -> Vec<u8> {
    let mut eng = scenario.build_cold().unwrap();
    eng.step_n(target);
    eng.suspend()
}

/// Run one session through the service with `slice_steps` forcing ~10
/// preemptions, and return its final checkpoint.
fn serve_preempted(scenario: &ScenarioSpec, target: u64, lanes: usize) -> (Vec<u8>, u64) {
    let config = ServeConfig {
        workers: 2,
        lanes_per_worker: lanes,
        slice_steps: target / 10, // ≥ 10 slices → ≥ 9 preemptions
        max_sessions: 8,
        cache_capacity: 4,
        park_bytes_cap: usize::MAX,
    };
    let service = SimService::start(config);
    let id = service
        .submit(JobSpec {
            scenario: scenario.clone(),
            target_steps: target,
        })
        .unwrap();
    let result = service.wait(id).expect("session exists");
    assert_eq!(result.error, None);
    assert_eq!(result.steps, target);
    (result.final_checkpoint, result.preempts)
}

fn preempted_matches_straight_through(scenario: &ScenarioSpec, target: u64) {
    let reference = straight_through(scenario, target);
    for lanes in [1usize, 4] {
        let (served, preempts) = serve_preempted(scenario, target, lanes);
        assert!(
            preempts >= 9,
            "expected ≥ 9 preemptions, got {preempts} (lanes = {lanes})"
        );
        assert_eq!(
            served, reference,
            "preempted session diverged from straight-through (lanes = {lanes})"
        );
    }
}

#[test]
fn preempted_session_is_bit_identical_plasma() {
    preempted_matches_straight_through(&ScenarioSpec::tube_small(11), 40);
}

#[test]
fn preempted_session_is_bit_identical_cellular() {
    // Cell-laden window: membranes, IBM spread/interpolate, insertion and
    // the hematocrit controller all run under preemption.
    preempted_matches_straight_through(&ScenarioSpec::tube_cellular(5), 30);
}

#[test]
fn warm_cache_restore_is_bit_identical_to_cold_build() {
    // Two identical sessions in one service: the second restores from the
    // warm cache and must end at exactly the same bytes as the first.
    let scenario = ScenarioSpec::tube_small(23);
    let target = 24;
    let config = ServeConfig {
        workers: 1, // serialize so session 2 deterministically hits the cache
        lanes_per_worker: 1,
        slice_steps: 6,
        max_sessions: 4,
        cache_capacity: 2,
        park_bytes_cap: usize::MAX,
    };
    let service = SimService::start(config);
    let a = service
        .submit(JobSpec {
            scenario: scenario.clone(),
            target_steps: target,
        })
        .unwrap();
    let ra = service.wait(a).unwrap();
    let b = service
        .submit(JobSpec {
            scenario: scenario.clone(),
            target_steps: target,
        })
        .unwrap();
    let rb = service.wait(b).unwrap();
    assert!(!ra.cache_hit, "first session must build cold");
    assert!(rb.cache_hit, "second session must restore warm");
    assert_eq!(
        ra.final_checkpoint, rb.final_checkpoint,
        "warm-started session diverged from cold-started"
    );
    assert_eq!(ra.final_checkpoint, straight_through(&scenario, target));
}
