//! Satellite: parked checkpoints spill to disk past the byte cap and the
//! physics never notices.
//!
//! A tiny `park_bytes_cap` forces every preempt to push the oldest parked
//! blob to the disk tier. Sessions must still complete at their exact
//! targets with final checkpoints byte-identical to an unconstrained
//! service, and the spill counters must show the disk tier actually
//! carried traffic.

use apr_serve::{JobSpec, ScenarioSpec, ServeConfig, SimService};

fn run_sessions(park_bytes_cap: usize) -> (Vec<Vec<u8>>, apr_serve::ServiceMetrics) {
    let config = ServeConfig {
        workers: 1, // serialize grants: parked pool deterministically fills
        lanes_per_worker: 1,
        slice_steps: 5,
        max_sessions: 4,
        cache_capacity: 2,
        park_bytes_cap,
    };
    let mut service = SimService::start(config);
    let ids: Vec<u64> = (0..3)
        .map(|i| {
            service
                .submit(JobSpec {
                    scenario: ScenarioSpec::tube_small(40 + i),
                    target_steps: 20,
                })
                .unwrap()
        })
        .collect();
    let mut finals = Vec::new();
    for id in ids {
        let r = service.wait(id).expect("session exists");
        assert_eq!(r.error, None, "session {} failed", r.session);
        assert_eq!(r.steps, 20);
        assert!(r.preempts >= 3, "small slices must preempt each session");
        finals.push(r.final_checkpoint);
    }
    let metrics = service.metrics();
    service.shutdown();
    (finals, metrics)
}

#[test]
fn parked_checkpoints_spill_to_disk_and_round_trip() {
    // Unbounded pool: the in-memory reference behaviour.
    let (reference, unbounded) = run_sessions(usize::MAX);
    assert_eq!(unbounded.park_spills, 0, "unbounded pool never spills");
    assert_eq!(unbounded.park_disk_hits, 0);
    assert!(unbounded.park_memory_hits > 0, "preempts park and resume");

    // A cap far below one parked checkpoint: every park evicts the
    // previous tenant to disk (the newest blob always stays resident).
    let (spilled, capped) = run_sessions(1024);
    assert!(
        capped.park_spills > 0,
        "cap of 1 KiB must force spills (got {:?})",
        capped.park_spills
    );
    assert!(
        capped.park_disk_hits > 0,
        "resumes must have been served from the disk tier"
    );
    assert_eq!(
        reference, spilled,
        "disk-tier round trips changed simulation bytes"
    );
}
