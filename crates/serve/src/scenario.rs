//! Declarative scenarios: the recipe a session is built from, and the key
//! the warm-state cache is hashed by.
//!
//! A [`TubeScenario`] is plain data — every field feeds the canonical hash
//! — so two sessions with equal specs are *the same scenario*: they build
//! bit-identical engines, and the second can skip setup entirely by
//! restoring the first one's post-warmup checkpoint from the cache. The
//! engine shell (lattices, geometry, insertion context, membranes) is
//! rebuilt from the recipe on every resume; only evolving state travels in
//! checkpoint blobs (see `apr-core::guardian`).

use apr_cells::RbcTile;
use apr_core::{AprEngine, SimSession};
use apr_coupling::fine_tau;
use apr_guard::ByteWriter;
use apr_lattice::{force_driven_tube, Lattice, RuntimeConfig};
use apr_membrane::{Membrane, MembraneMaterial, ReferenceState};
use apr_mesh::biconcave_rbc_mesh;
use apr_window::{HematocritController, InsertionContext};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// A force-driven tube with a refined APR window: the workload every serve
/// session runs. All fields participate in [`TubeScenario::hash`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TubeScenario {
    /// Coarse lattice dimensions.
    pub nx: usize,
    /// Coarse lattice dimensions.
    pub ny: usize,
    /// Coarse lattice dimensions (flow axis).
    pub nz: usize,
    /// Tube radius in coarse lattice units.
    pub tube_radius: f64,
    /// Refinement ratio n (fine spacings per coarse spacing).
    pub refine: usize,
    /// Window span in coarse cells (fine dimension = `span * refine + 1`).
    pub span: usize,
    /// Coarse relaxation time.
    pub tau_c: f64,
    /// Viscosity ratio ν_f/ν_c.
    pub lambda: f64,
    /// Body-force density driving the tube flow.
    pub force_g: f64,
    /// Target window hematocrit; `0.0` runs a pure-plasma window with no
    /// cells (the cheap smoke-test configuration).
    pub hematocrit: f64,
    /// Insertion-RNG seed.
    pub seed: u64,
    /// Relaxation steps baked into the warm state: a cold build runs these
    /// before the session's own stepping starts, and the cached blob is
    /// taken after them.
    pub warmup_steps: u64,
    /// Execution knobs (kernel, chunking) applied to the engine's lattices.
    /// Deliberately **excluded** from [`TubeScenario::hash`]: every kernel
    /// and chunking policy is bit-identical by contract (the
    /// kernel-equivalence suite enforces it), so a warm blob produced under
    /// one runtime is valid under any other and the cache can be shared.
    pub runtime: RuntimeConfig,
}

impl TubeScenario {
    /// Test-sized scenario: 17×17×24 coarse tube, n = 2, 13³ fine window,
    /// no cells. Small enough that a slice is milliseconds.
    pub fn small(seed: u64) -> Self {
        Self {
            nx: 17,
            ny: 17,
            nz: 24,
            tube_radius: 7.0,
            refine: 2,
            span: 6,
            tau_c: 0.9,
            lambda: 0.3,
            force_g: 4e-6,
            hematocrit: 0.0,
            seed,
            warmup_steps: 4,
            runtime: RuntimeConfig::default(),
        }
    }

    /// The determinism-suite recipe scaled to serve: same tube as the
    /// exec-determinism tests with a cell-laden window (every parallel
    /// code path — collide, stream, spread, interpolate, membrane forces,
    /// insertion — runs each step).
    pub fn cellular(seed: u64) -> Self {
        Self {
            nx: 21,
            ny: 21,
            nz: 48,
            tube_radius: 9.0,
            refine: 3,
            span: 8,
            tau_c: 0.9,
            lambda: 0.3,
            force_g: 4e-6,
            hematocrit: 0.12,
            seed,
            warmup_steps: 5,
            runtime: RuntimeConfig::default(),
        }
    }

    /// Canonical FNV-1a hash over every field: the warm-cache key and the
    /// scenario's identity in telemetry. Equal specs hash equal on every
    /// platform (floats hash by IEEE bits via the little-endian encoding).
    pub fn hash(&self) -> u64 {
        let mut w = ByteWriter::new();
        w.usize(self.nx);
        w.usize(self.ny);
        w.usize(self.nz);
        w.f64(self.tube_radius);
        w.usize(self.refine);
        w.usize(self.span);
        w.f64(self.tau_c);
        w.f64(self.lambda);
        w.f64(self.force_g);
        w.f64(self.hematocrit);
        w.u64(self.seed);
        w.u64(self.warmup_steps);
        fnv1a64(&w.into_bytes())
    }

    /// Build the engine shell: lattices, coupling, insertion context and
    /// controller — but no cells placed and no steps taken. This is the
    /// resume target: restoring any checkpoint of this scenario into a
    /// fresh shell reproduces the checkpointed engine exactly.
    pub fn build_shell(&self) -> AprEngine {
        let coarse = force_driven_tube(
            self.nx,
            self.ny,
            self.nz,
            self.tau_c,
            self.tube_radius,
            self.force_g,
        );
        let fine_dim = self.span * self.refine + 1;
        let mut fine = Lattice::new(
            fine_dim,
            fine_dim,
            fine_dim,
            fine_tau(self.tau_c, self.refine, self.lambda),
        );
        fine.body_force = [0.0, 0.0, self.force_g / self.refine as f64];
        let origin = [
            (self.nx as f64 - 1.0) / 2.0 - self.span as f64 / 2.0,
            (self.ny as f64 - 1.0) / 2.0 - self.span as f64 / 2.0,
            4.0,
        ];
        let mut eng = AprEngine::builder(coarse, fine, origin, self.refine, self.lambda)
            .seed(self.seed)
            .maintenance_interval(10)
            .runtime(self.runtime)
            .build();
        if self.hematocrit > 0.0 {
            let radius = 3.0;
            let rbc_mesh = biconcave_rbc_mesh(1, radius);
            let re = Arc::new(ReferenceState::build(&rbc_mesh));
            let membrane = Arc::new(Membrane::new(re, MembraneMaterial::rbc(2e-4, 1e-5)));
            let volume = rbc_mesh.enclosed_volume();
            let mut tile_rng = StdRng::seed_from_u64(self.seed ^ 0x7115);
            let tile = RbcTile::build(
                40.0,
                self.hematocrit,
                radius,
                radius * 0.6,
                volume,
                &mut tile_rng,
            );
            eng.insertion = Some(InsertionContext {
                rbc_mesh,
                rbc_membrane: membrane,
                tile,
                min_gap: 0.8,
            });
            eng.controller = Some(HematocritController::new(self.hematocrit, 0.85, volume));
        }
        eng
    }

    /// Cold setup: build the shell, pack the window (when cellular) and
    /// run the warmup relaxation. The returned engine is at step
    /// `warmup_steps` — the state the warm cache stores.
    pub fn build_cold(&self) -> AprEngine {
        let mut eng = self.build_shell();
        if self.hematocrit > 0.0 {
            eng.populate_window();
        }
        eng.step_n(self.warmup_steps);
        eng
    }
}

/// FNV-1a, 64-bit: tiny, dependency-free, stable across platforms.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_specs_hash_equal_and_fields_matter() {
        let a = TubeScenario::small(7);
        let b = TubeScenario::small(7);
        assert_eq!(a.hash(), b.hash());
        let c = TubeScenario::small(8);
        assert_ne!(a.hash(), c.hash());
        let mut d = TubeScenario::small(7);
        d.force_g *= 2.0;
        assert_ne!(a.hash(), d.hash());
    }

    #[test]
    fn runtime_does_not_change_hash_or_warm_state() {
        use apr_lattice::{ChunkingPolicy, KernelKind};
        let base = TubeScenario::small(11);
        let mut pinned = base;
        pinned.runtime = RuntimeConfig::default()
            .with_kernel(KernelKind::Reference)
            .with_chunking(ChunkingPolicy::Static);
        // Cache key ignores execution knobs...
        assert_eq!(base.hash(), pinned.hash());
        // ...because the physics is kernel- and chunking-invariant: warm
        // blobs built under different runtimes are bit-identical.
        let mut simd = base;
        simd.runtime = RuntimeConfig::default().with_kernel(KernelKind::FusedSimd);
        assert_eq!(
            SimSession::suspend(&pinned.build_cold()),
            SimSession::suspend(&simd.build_cold()),
            "warm state must not depend on the runtime config"
        );
    }

    #[test]
    fn cold_build_is_reproducible_and_warm_restorable() {
        let spec = TubeScenario::small(3);
        let warm = SimSession::suspend(&spec.build_cold());
        assert_eq!(
            warm,
            SimSession::suspend(&spec.build_cold()),
            "cold builds of one spec must be bit-identical"
        );
        // Restoring the warm blob into a fresh shell reproduces it.
        let mut shell = spec.build_shell();
        shell.resume(&warm).unwrap();
        assert_eq!(SimSession::suspend(&shell), warm);
        assert_eq!(SimSession::steps(&shell), spec.warmup_steps);
    }
}
