//! Legacy scenario shim: [`TubeScenario`] is deprecated in favour of
//! [`apr_scenarios::ScenarioSpec`].
//!
//! The serve subsystem originally knew exactly one workload — a
//! force-driven tube with a centred refinement window. That recipe now
//! lives in the scenario zoo as `ScenarioSpec`'s `Tube` + `BodyForce`
//! combination, built byte-for-byte identically (the `From` conversion
//! below is round-trip tested against the old builder). `TubeScenario`
//! stays for one release as plain data plus a lossless `From` conversion;
//! new code should construct a [`ScenarioSpec`] (or pull one from
//! [`apr_scenarios::registry`]) directly.

use apr_scenarios::{GeometrySpec, InletSpec, ScenarioSpec, WindowSpec};

use apr_lattice::RuntimeConfig;

/// A force-driven tube with a refined APR window: serve's original
/// workload, kept as a conversion source for one release.
#[deprecated(
    since = "0.2.0",
    note = "use apr_scenarios::ScenarioSpec (TubeScenario converts via From)"
)]
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TubeScenario {
    /// Coarse lattice dimensions.
    pub nx: usize,
    /// Coarse lattice dimensions.
    pub ny: usize,
    /// Coarse lattice dimensions (flow axis).
    pub nz: usize,
    /// Tube radius in coarse lattice units.
    pub tube_radius: f64,
    /// Refinement ratio n (fine spacings per coarse spacing).
    pub refine: usize,
    /// Window span in coarse cells (fine dimension = `span * refine + 1`).
    pub span: usize,
    /// Coarse relaxation time.
    pub tau_c: f64,
    /// Viscosity ratio ν_f/ν_c.
    pub lambda: f64,
    /// Body-force density driving the tube flow.
    pub force_g: f64,
    /// Target window hematocrit; `0.0` runs a pure-plasma window.
    pub hematocrit: f64,
    /// Insertion-RNG seed.
    pub seed: u64,
    /// Relaxation steps baked into the warm state.
    pub warmup_steps: u64,
    /// Execution knobs; excluded from the cache hash (see
    /// [`ScenarioSpec::hash`]).
    pub runtime: RuntimeConfig,
}

#[allow(deprecated)]
impl TubeScenario {
    /// Test-sized scenario: 17×17×24 coarse tube, n = 2, 13³ fine window,
    /// no cells. Identical to [`ScenarioSpec::tube_small`].
    pub fn small(seed: u64) -> Self {
        Self {
            nx: 17,
            ny: 17,
            nz: 24,
            tube_radius: 7.0,
            refine: 2,
            span: 6,
            tau_c: 0.9,
            lambda: 0.3,
            force_g: 4e-6,
            hematocrit: 0.0,
            seed,
            warmup_steps: 4,
            runtime: RuntimeConfig::default(),
        }
    }

    /// Cell-laden determinism-suite tube. Identical to
    /// [`ScenarioSpec::tube_cellular`].
    pub fn cellular(seed: u64) -> Self {
        Self {
            nx: 21,
            ny: 21,
            nz: 48,
            tube_radius: 9.0,
            refine: 3,
            span: 8,
            tau_c: 0.9,
            lambda: 0.3,
            force_g: 4e-6,
            hematocrit: 0.12,
            seed,
            warmup_steps: 5,
            runtime: RuntimeConfig::default(),
        }
    }

    /// The canonical cache key of the converted spec. Kept so legacy
    /// callers keep compiling; equal to `ScenarioSpec::from(*self).hash()`.
    pub fn hash(&self) -> u64 {
        ScenarioSpec::from(*self).hash()
    }
}

#[allow(deprecated)]
impl From<TubeScenario> for ScenarioSpec {
    /// Lossless conversion onto the scenario zoo's tube recipe. The
    /// window origin is the centred placement the old builder hard-coded;
    /// cold builds of the converted spec are byte-identical to the legacy
    /// path (pinned by `shim_builds_are_byte_identical`).
    fn from(t: TubeScenario) -> ScenarioSpec {
        ScenarioSpec {
            name: "tube".into(),
            nx: t.nx,
            ny: t.ny,
            nz: t.nz,
            geometry: GeometrySpec::Tube {
                radius: t.tube_radius,
            },
            inlet: InletSpec::BodyForce { g: t.force_g },
            refine: t.refine,
            span: t.span,
            tau_c: t.tau_c,
            lambda: t.lambda,
            hematocrit: t.hematocrit,
            windows: vec![WindowSpec {
                origin: [
                    (t.nx as f64 - 1.0) / 2.0 - t.span as f64 / 2.0,
                    (t.ny as f64 - 1.0) / 2.0 - t.span as f64 / 2.0,
                    4.0,
                ],
                ctc_radius: 0.0,
            }],
            seed: t.seed,
            warmup_steps: t.warmup_steps,
            runtime: t.runtime,
        }
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;

    #[test]
    fn shim_presets_match_zoo_presets() {
        assert_eq!(
            ScenarioSpec::from(TubeScenario::small(7)).hash(),
            ScenarioSpec::tube_small(7).hash()
        );
        assert_eq!(
            ScenarioSpec::from(TubeScenario::cellular(3)).hash(),
            ScenarioSpec::tube_cellular(3).hash()
        );
    }

    #[test]
    fn shim_builds_are_byte_identical() {
        // A legacy spec converted through the shim must produce the exact
        // warm state the old builder did — existing caches stay valid.
        let legacy = TubeScenario::small(5);
        let spec = ScenarioSpec::from(legacy);
        let a = spec.build_cold().unwrap();
        let b = spec.build_cold().unwrap();
        assert_eq!(a.suspend(), b.suspend());
        // Restoring the warm blob into a fresh shell reproduces it.
        let mut shell = spec.build_shell().unwrap();
        shell.resume(&a.suspend()).unwrap();
        assert_eq!(shell.suspend(), a.suspend());
        assert_eq!(shell.steps(), spec.warmup_steps);
    }

    #[test]
    fn runtime_does_not_change_hash() {
        use apr_lattice::{ChunkingPolicy, KernelKind, RuntimeConfig};
        let base = TubeScenario::small(11);
        let mut pinned = base;
        pinned.runtime = RuntimeConfig::default()
            .with_kernel(KernelKind::Reference)
            .with_chunking(ChunkingPolicy::Static);
        assert_eq!(base.hash(), pinned.hash());
    }
}
