//! Session records: what a job asked for, where it is, and what it
//! produced.

use apr_scenarios::ScenarioSpec;
use std::time::{Duration, Instant};

/// What a client submits: a scenario plus how long to run it. The target
/// counts *session* steps — warmup (cold-built or restored warm) is
/// setup, not progress. Any zoo scenario is a valid job, including
/// multi-window specs (the shell behind the scheduler is a
/// `Box<dyn SimSession>` either way).
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// The scenario to run.
    pub scenario: ScenarioSpec,
    /// Steps to run beyond the scenario's warmup.
    pub target_steps: u64,
}

/// Where a session is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionStatus {
    /// In the ready queue (never yet run, or parked after a preempt).
    Queued,
    /// A worker is running a slice right now.
    Running,
    /// Reached its target (or failed); result available.
    Completed,
}

/// Per-session bookkeeping the scheduler maintains. Timing fields feed
/// [`crate::ServiceMetrics`]; grant fields feed the fairness assertion.
#[derive(Debug, Clone)]
pub struct SessionStats {
    /// When the service admitted the session.
    pub admitted_at: Instant,
    /// Admission → first engine step of the first slice.
    pub time_to_first_step: Option<Duration>,
    /// Slices granted (= resumes; the first grant is the cold/warm start).
    pub resumes: u64,
    /// Preemptions (slices that ended before the target).
    pub preempts: u64,
    /// Did setup hit the warm cache? `None` until the first slice ran.
    pub cache_hit: Option<bool>,
    /// Global grant-counter value at this session's last grant.
    pub last_grant: u64,
    /// Largest gap between this session's consecutive grants, in grants
    /// handed to *anyone*. Round-robin bounds this by the number of active
    /// sessions; a starved session shows up as a large gap.
    pub max_grant_gap: u64,
    /// Nanoseconds spent stepping the engine.
    pub step_ns: u64,
    /// Nanoseconds spent suspending (checkpointing) on preempt/complete.
    pub suspend_ns: u64,
    /// Nanoseconds spent rebuilding + restoring on resume (excludes the
    /// one-time cold build, which is setup cost, not preempt overhead).
    pub resume_ns: u64,
    /// Nanoseconds of the first slice's setup (cold build or warm
    /// restore).
    pub setup_ns: u64,
}

impl SessionStats {
    pub(crate) fn new(admitted_at: Instant) -> Self {
        Self {
            admitted_at,
            time_to_first_step: None,
            resumes: 0,
            preempts: 0,
            cache_hit: None,
            last_grant: 0,
            max_grant_gap: 0,
            step_ns: 0,
            suspend_ns: 0,
            resume_ns: 0,
            setup_ns: 0,
        }
    }
}

/// What a completed session hands back.
#[derive(Debug, Clone)]
pub struct SessionResult {
    /// Service-assigned session id.
    pub session: u64,
    /// Scenario hash the session ran.
    pub scenario: u64,
    /// Session steps completed (== target unless the session failed).
    pub steps: u64,
    /// Engine site updates performed across all slices.
    pub site_updates: u64,
    /// Final engine checkpoint at the target step. Byte-identical to the
    /// same scenario run straight through with no preemption — the
    /// zero-cross-session-nondeterminism contract.
    pub final_checkpoint: Vec<u8>,
    /// Did the session's setup hit the warm cache?
    pub cache_hit: bool,
    /// Times the session was preempted mid-run.
    pub preempts: u64,
    /// Panic message if the session's engine blew up (checkpoint empty).
    pub error: Option<String>,
}
