//! Parked-checkpoint placement: memory first, disk beyond a byte cap.
//!
//! The preempt hot path parks suspended sessions in a [`MemoryStore`] —
//! no disk I/O, byte-identical round trips. But parked state is resident
//! memory, and admission control alone only bounds the *count* of parked
//! sessions, not their bytes (a cellular scenario's checkpoint is orders
//! of magnitude larger than a plasma one's). [`SpillStore`] adds the
//! byte-bound: parked blobs live in memory until the pool exceeds
//! `cap_bytes`, at which point the **oldest-parked** blobs spill to an
//! atomic-write [`FileStore`] until the pool fits again. Retrieval checks
//! memory first, then disk; blobs come back byte-identical from either
//! tier (the determinism contract does not care where a blob slept).
//!
//! Spill order is park order (FIFO), not size or key order: the
//! longest-parked session is the least likely to be granted next under
//! round-robin, so it pays the disk round-trip.

use apr_guard::{CheckpointStore, FileStore, GuardError, MemoryStore};
use std::collections::VecDeque;

/// A two-tier parked-checkpoint store: bounded memory atop an optional
/// disk spill directory.
#[derive(Debug)]
pub struct SpillStore {
    memory: MemoryStore,
    disk: Option<FileStore>,
    cap_bytes: usize,
    /// Keys currently in memory, oldest parked first.
    order: VecDeque<String>,
    spills: u64,
    memory_hits: u64,
    disk_hits: u64,
}

impl SpillStore {
    /// Memory-only store (cap `usize::MAX`, nothing ever spills).
    pub fn unbounded() -> Self {
        Self::new(usize::MAX, None)
    }

    /// Store keeping at most `cap_bytes` parked bytes in memory; the
    /// overflow spills to `disk` (oldest first). A `None` disk with a
    /// finite cap parks everything in memory anyway — the cap needs a
    /// spill target to act on.
    pub fn new(cap_bytes: usize, disk: Option<FileStore>) -> Self {
        Self {
            memory: MemoryStore::new(),
            disk,
            cap_bytes,
            order: VecDeque::new(),
            spills: 0,
            memory_hits: 0,
            disk_hits: 0,
        }
    }

    /// Park a blob. Inserts into memory, then spills oldest-parked blobs
    /// to disk until the memory pool is back under the cap.
    pub fn put(&mut self, key: &str, blob: Vec<u8>) -> Result<(), GuardError> {
        self.order.retain(|k| k != key);
        self.memory.put(key, blob)?;
        self.order.push_back(key.to_string());
        while self.memory.total_bytes() > self.cap_bytes && self.order.len() > 1 {
            let Some(disk) = self.disk.as_mut() else {
                break;
            };
            let oldest = self.order.pop_front().expect("non-empty order");
            let blob = self
                .memory
                .take(&oldest)?
                .expect("ordered key is in memory");
            disk.put(&oldest, blob)?;
            self.spills += 1;
        }
        Ok(())
    }

    /// Retrieve and remove a parked blob: memory first, then disk.
    pub fn take(&mut self, key: &str) -> Result<Option<Vec<u8>>, GuardError> {
        if let Some(blob) = self.memory.take(key)? {
            self.order.retain(|k| k != key);
            self.memory_hits += 1;
            return Ok(Some(blob));
        }
        if let Some(disk) = self.disk.as_mut() {
            if let Some(blob) = disk.take(key)? {
                self.disk_hits += 1;
                return Ok(Some(blob));
            }
        }
        Ok(None)
    }

    /// Parked bytes currently resident in memory.
    pub fn memory_bytes(&self) -> usize {
        self.memory.total_bytes()
    }

    /// Blobs spilled to disk over the store's lifetime.
    pub fn spills(&self) -> u64 {
        self.spills
    }

    /// Takes served from the memory tier.
    pub fn memory_hits(&self) -> u64 {
        self.memory_hits
    }

    /// Takes served from the disk tier.
    pub fn disk_hits(&self) -> u64 {
        self.disk_hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(tag: u8, len: usize) -> Vec<u8> {
        vec![tag; len]
    }

    fn spill_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("apr-serve-spill-test-{name}"));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn unbounded_store_never_spills() {
        let mut store = SpillStore::unbounded();
        for i in 0..8u8 {
            store.put(&format!("s{i}"), blob(i, 1000)).unwrap();
        }
        assert_eq!(store.spills(), 0);
        assert_eq!(store.memory_bytes(), 8000);
        assert_eq!(store.take("s3").unwrap(), Some(blob(3, 1000)));
        assert_eq!(store.memory_hits(), 1);
        assert_eq!(store.disk_hits(), 0);
    }

    #[test]
    fn oldest_blobs_spill_past_the_cap_and_round_trip() {
        let dir = spill_dir("roundtrip");
        let disk = FileStore::open(&dir).unwrap();
        // Cap fits two 1000-byte blobs; the third park spills the oldest.
        let mut store = SpillStore::new(2000, Some(disk));
        store.put("a", blob(1, 1000)).unwrap();
        store.put("b", blob(2, 1000)).unwrap();
        assert_eq!(store.spills(), 0);
        store.put("c", blob(3, 1000)).unwrap();
        assert_eq!(store.spills(), 1, "oldest blob (a) spills");
        assert!(store.memory_bytes() <= 2000);

        // Disk tier returns the identical bytes; memory tier still serves
        // the resident blobs.
        assert_eq!(store.take("a").unwrap(), Some(blob(1, 1000)));
        assert_eq!(store.disk_hits(), 1);
        assert_eq!(store.take("b").unwrap(), Some(blob(2, 1000)));
        assert_eq!(store.take("c").unwrap(), Some(blob(3, 1000)));
        assert_eq!(store.memory_hits(), 2);
        assert_eq!(store.take("a").unwrap(), None, "take removes from disk");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn finite_cap_without_disk_keeps_blobs_in_memory() {
        let mut store = SpillStore::new(100, None);
        store.put("a", blob(1, 1000)).unwrap();
        store.put("b", blob(2, 1000)).unwrap();
        assert_eq!(store.spills(), 0);
        assert_eq!(store.take("a").unwrap(), Some(blob(1, 1000)));
    }

    #[test]
    fn reparking_a_key_refreshes_its_age() {
        let dir = spill_dir("repark");
        let mut store = SpillStore::new(2000, Some(FileStore::open(&dir).unwrap()));
        store.put("a", blob(1, 1000)).unwrap();
        store.put("b", blob(2, 1000)).unwrap();
        // Re-park "a": it becomes youngest, so the next spill evicts "b".
        store.put("a", blob(9, 1000)).unwrap();
        store.put("c", blob(3, 1000)).unwrap();
        assert_eq!(store.take("b").unwrap(), Some(blob(2, 1000)));
        assert_eq!(store.disk_hits(), 1, "b went to disk, not a");
        assert_eq!(store.take("a").unwrap(), Some(blob(9, 1000)));
        assert_eq!(store.memory_hits(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
