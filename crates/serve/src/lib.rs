//! # apr-serve — multi-tenant simulation service
//!
//! A channel-fed job-queue server that admits **N ≫ cores** concurrent
//! simulation sessions and schedules them round-robin with a fair
//! time-slice budget by **checkpoint-preempt-resume**: when a session's
//! slice (measured in engine steps, a deterministic unit) expires, the
//! engine is suspended through `apr-guard`'s bit-exact checkpoint path
//! into an in-memory store, its worker resumes another session, and the
//! parked session later restores into a fresh engine shell rebuilt from
//! its scenario recipe. A **warm-state cache** keyed by scenario hash lets
//! repeat scenarios skip cold setup (geometry voxelization, window
//! packing, warmup relaxation) by restoring the first session's
//! post-warmup checkpoint. Parked checkpoints live in memory up to a
//! configurable byte cap ([`ServeConfig::park_bytes_cap`]); beyond the
//! cap the oldest-parked blobs spill to an atomic-write disk tier and
//! restore byte-identically from either tier ([`SpillStore`]).
//!
//! Jobs are [`apr_scenarios::ScenarioSpec`]s — any scenario in the zoo
//! (tube, bifurcating tree, stenosis, aneurysm; steady or pulsatile
//! inlet; one window or several) is a valid job, and specs are validated
//! at admission so malformed geometry is refused up front instead of
//! panicking in a worker.
//!
//! The parameter-sweep workloads of the APR paper (SC 2023) — many
//! cell-resolved window simulations over a shared scenario family — are
//! exactly this shape: far more sessions than cores, heavy per-session
//! setup, identical recipes differing only in seeds or physics knobs.
//!
//! ## Module map
//!
//! - [`scenario`] — the deprecated [`TubeScenario`] shim; recipes now
//!   live in [`apr_scenarios`] ([`ScenarioSpec`], registry, builders).
//! - [`session`] — [`JobSpec`], [`SessionStatus`], [`SessionStats`],
//!   [`SessionResult`].
//! - [`cache`] — [`WarmCache`], the scenario-hash-keyed warm-state cache.
//! - [`store`] — [`SpillStore`], the two-tier parked-checkpoint pool.
//! - [`service`] — [`SimService`]: admission control, the round-robin
//!   scheduler, worker leasing, preempt/park/resume.
//! - [`metrics`] — [`ServiceMetrics`], the service-level aggregate view.
//!
//! ## Guarantees
//!
//! - **Zero cross-session nondeterminism.** A session's final checkpoint
//!   is byte-identical whether it ran straight through or was preempted
//!   any number of times, at any worker/lane configuration, regardless of
//!   what other sessions shared the service.
//! - **Bounded occupancy.** Engine work only runs inside a
//!   [`WorkerBudget`](apr_exec::WorkerBudget) lease, so lane occupancy
//!   never exceeds `workers × lanes_per_worker`.
//! - **Fault isolation.** A panicking session completes with an error
//!   result; its worker and every other session continue.
//!
//! ## Quickstart
//!
//! ```
//! use apr_serve::{JobSpec, ScenarioSpec, ServeConfig, SimService};
//!
//! let mut cfg = ServeConfig::new(2); // 2 workers
//! cfg.slice_steps = 4;               // preempt every 4 steps
//! let service = SimService::start(cfg);
//! for seed in 0..4 {
//!     service
//!         .submit(JobSpec {
//!             scenario: ScenarioSpec::tube_small(1), // one scenario: 3 warm hits
//!             target_steps: 8 + seed,
//!         })
//!         .unwrap();
//! }
//! let results = service.wait_all();
//! assert_eq!(results.len(), 4);
//! assert!(results.iter().all(|r| r.error.is_none()));
//! ```

pub mod cache;
pub mod metrics;
pub mod scenario;
pub mod service;
pub mod session;
pub mod store;

pub use apr_observe::{ProgressSample, Sample, ServiceSample};
pub use apr_scenarios::{GeometrySpec, InletSpec, ScenarioSpec, WindowSpec};
pub use cache::WarmCache;
pub use metrics::ServiceMetrics;
#[allow(deprecated)]
pub use scenario::TubeScenario;
pub use service::{AdmitError, ProgressSubscription, ServeConfig, SimService};
pub use session::{JobSpec, SessionResult, SessionStats, SessionStatus};
pub use store::SpillStore;
