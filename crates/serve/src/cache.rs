//! Warm-state cache: scenario-hash-keyed post-warmup checkpoints.
//!
//! The first session of a scenario pays the full setup cost — voxelized
//! tube geometry, window packing, warmup relaxation — then donates the
//! resulting checkpoint blob here. Every later session of the same
//! scenario restores that blob into a fresh engine shell and starts
//! stepping immediately. Because cold builds are deterministic, a racing
//! duplicate build produces an identical blob, so first-insert-wins is
//! correct without any build-coordination locking.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Scenario-hash → warm checkpoint blob, FIFO-evicted at capacity, with
/// hit/miss counters for the service-level metrics.
#[derive(Debug)]
pub struct WarmCache {
    inner: Mutex<CacheInner>,
    hits: AtomicU64,
    misses: AtomicU64,
}

#[derive(Debug)]
struct CacheInner {
    blobs: HashMap<u64, Arc<Vec<u8>>>,
    /// Insertion order for FIFO eviction.
    order: VecDeque<u64>,
    capacity: usize,
}

impl WarmCache {
    /// Cache holding at most `capacity` scenarios (≥ 1 enforced).
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(CacheInner {
                blobs: HashMap::new(),
                order: VecDeque::new(),
                capacity: capacity.max(1),
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Look up a scenario's warm state, counting the outcome. `Arc` so the
    /// (potentially multi-megabyte) blob is never copied on a hit.
    pub fn lookup(&self, scenario: u64) -> Option<Arc<Vec<u8>>> {
        let found = self.inner.lock().unwrap().blobs.get(&scenario).cloned();
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Donate a freshly built warm state. First insert wins (identical by
    /// determinism); at capacity the oldest scenario is evicted.
    pub fn insert(&self, scenario: u64, blob: Vec<u8>) {
        let mut inner = self.inner.lock().unwrap();
        if inner.blobs.contains_key(&scenario) {
            return;
        }
        while inner.blobs.len() >= inner.capacity {
            let Some(old) = inner.order.pop_front() else {
                break;
            };
            inner.blobs.remove(&old);
        }
        inner.blobs.insert(scenario, Arc::new(blob));
        inner.order.push_back(scenario);
    }

    /// Scenarios currently cached.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().blobs.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups that found a warm state.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to build cold.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Fraction of lookups served warm (0.0 when none happened yet).
    pub fn hit_rate(&self) -> f64 {
        let h = self.hits() as f64;
        let m = self.misses() as f64;
        if h + m == 0.0 {
            0.0
        } else {
            h / (h + m)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_counts_hits_and_misses() {
        let cache = WarmCache::new(4);
        assert!(cache.lookup(1).is_none());
        cache.insert(1, vec![9, 9]);
        assert_eq!(cache.lookup(1).unwrap().as_slice(), &[9, 9]);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert!((cache.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn first_insert_wins_and_fifo_evicts() {
        let cache = WarmCache::new(2);
        cache.insert(1, vec![1]);
        cache.insert(1, vec![99]); // duplicate build: ignored
        assert_eq!(cache.lookup(1).unwrap().as_slice(), &[1]);
        cache.insert(2, vec![2]);
        cache.insert(3, vec![3]); // evicts scenario 1 (oldest)
        assert_eq!(cache.len(), 2);
        assert!(cache.lookup(1).is_none());
        assert!(cache.lookup(2).is_some());
        assert!(cache.lookup(3).is_some());
    }
}
