//! The scheduler: N ≫ cores sessions time-sliced over a bounded worker
//! budget by checkpoint-preempt-resume.
//!
//! ## Scheduling policy
//!
//! Round-robin over a FIFO ready queue, with the slice budget measured in
//! **engine steps**, not wall time — a deterministic unit, so the sequence
//! of states every session passes through is independent of machine load,
//! worker count, and scheduling order. A granted session leases
//! `lanes_per_worker` lanes from the shared [`WorkerBudget`], runs inside
//! the lease's pool scope (every `apr_exec::current()` call the engine
//! makes lands on the leased pool), steps at most `slice_steps`, then
//! either completes or is **preempted**: suspended via the engine's
//! bit-exact checkpoint, parked in an in-memory [`MemoryStore`], and
//! re-queued at the back. Nothing touches disk on the preempt hot path.
//!
//! ## Determinism
//!
//! Suspend/resume is bit-exact, stepping is bit-identical for any lane
//! count, and checkpoint blobs at step boundaries are kernel-independent;
//! therefore a session preempted N times produces a final checkpoint
//! byte-identical to the same scenario run straight through — the
//! zero-cross-session-nondeterminism contract
//! (`tests/preempt_determinism.rs` pins it).
//!
//! ## Worker isolation
//!
//! Each slice runs under `catch_unwind`: a session whose engine panics
//! (numerical blow-up) completes with an error result; the worker thread,
//! its lease, and every other session are unaffected.

use crate::cache::WarmCache;
use crate::metrics::ServiceMetrics;
use crate::session::{JobSpec, SessionResult, SessionStats, SessionStatus};
use crate::store::SpillStore;
use apr_core::SimSession;
use apr_exec::WorkerBudget;
use apr_guard::FileStore;
use apr_observe::{hub, ProgressSample, Sample, ServiceSample, Subscription};
use apr_telemetry::TelemetryEvent;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Service sizing knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Scheduler worker threads (concurrent sessions in flight).
    pub workers: usize,
    /// Exec-pool lanes each running slice leases from the shared budget;
    /// total lane occupancy never exceeds `workers * lanes_per_worker`.
    pub lanes_per_worker: usize,
    /// Time-slice budget in engine steps (deterministic preemption unit).
    pub slice_steps: u64,
    /// Admission-control cap on in-flight (admitted, not yet completed)
    /// sessions; [`SimService::submit`] rejects beyond it.
    pub max_sessions: usize,
    /// Warm-state cache capacity in scenarios.
    pub cache_capacity: usize,
    /// Byte cap on parked checkpoints held in memory. Beyond it the
    /// oldest-parked blobs spill to an atomic-write file store in a
    /// service-private temp directory (see [`crate::SpillStore`]).
    /// `usize::MAX` (the default) never spills and never touches disk.
    pub park_bytes_cap: usize,
}

impl ServeConfig {
    /// Config for `workers` single-lane workers with serve defaults:
    /// 10-step slices, 64-session admission cap, 8-scenario cache,
    /// unbounded in-memory parking.
    pub fn new(workers: usize) -> Self {
        Self {
            workers: workers.max(1),
            lanes_per_worker: 1,
            slice_steps: 10,
            max_sessions: 64,
            cache_capacity: 8,
            park_bytes_cap: usize::MAX,
        }
    }
}

/// Why [`SimService::submit`] refused a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitError {
    /// The in-flight session count is at `max_sessions`.
    Saturated {
        /// Sessions currently admitted and not yet completed.
        inflight: usize,
        /// The configured cap.
        max: usize,
    },
    /// The service is shutting down.
    ShuttingDown,
    /// The job's scenario failed [`apr_scenarios::ScenarioSpec::validate`]
    /// (bad physics parameters, out-of-bounds or overlapping windows).
    /// Rejected at admission so a doomed build never occupies a worker.
    InvalidScenario,
}

impl std::fmt::Display for AdmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmitError::Saturated { inflight, max } => {
                write!(f, "admission refused: {inflight}/{max} sessions in flight")
            }
            AdmitError::ShuttingDown => write!(f, "admission refused: service shutting down"),
            AdmitError::InvalidScenario => {
                write!(f, "admission refused: scenario spec failed validation")
            }
        }
    }
}

impl std::error::Error for AdmitError {}

struct SessionEntry {
    spec: JobSpec,
    status: SessionStatus,
    steps_done: u64,
    site_updates: u64,
    stats: SessionStats,
    result: Option<SessionResult>,
}

struct State {
    next_id: u64,
    queue: VecDeque<u64>,
    sessions: HashMap<u64, SessionEntry>,
    /// Parked checkpoints of preempted sessions, keyed `session-<id>`;
    /// memory-resident up to `park_bytes_cap`, spilled to disk beyond.
    parked: SpillStore,
    /// Global slice-grant counter (fairness clock).
    grants: u64,
    inflight: usize,
}

struct Shared {
    state: Mutex<State>,
    /// Workers wait here for runnable sessions.
    ready: Condvar,
    /// Waiters ([`SimService::wait`]/[`SimService::wait_all`]) wait here.
    done: Condvar,
    cache: WarmCache,
    shutdown: AtomicBool,
}

fn park_key(id: u64) -> String {
    format!("session-{id}")
}

/// Snapshot the scheduler's service-level counters for the metrics hub.
/// Called under the state lock; the publish itself happens after release.
fn service_sample(st: &State) -> ServiceSample {
    ServiceSample {
        admitted: st.next_id,
        completed: st.sessions.values().filter(|e| e.result.is_some()).count() as u64,
        queued: st.queue.len() as u64,
        inflight: st.inflight as u64,
    }
}

/// A live, filtered view of per-slice session progress from the global
/// metrics hub. Obtained from [`SimService::subscribe_progress`]; samples
/// arriving while nobody polls are bounded by the hub's drop-oldest queue.
pub struct ProgressSubscription {
    inner: Subscription,
    session: Option<u64>,
}

impl ProgressSubscription {
    fn wants(&self, sample: &ProgressSample) -> bool {
        self.session.is_none_or(|id| sample.session == id)
    }

    /// Next matching progress sample without blocking.
    pub fn try_recv(&self) -> Option<ProgressSample> {
        while let Some(sample) = self.inner.try_recv() {
            if let Sample::Progress(p) = sample {
                if self.wants(&p) {
                    return Some(p);
                }
            }
        }
        None
    }

    /// Block up to `timeout` for the next matching progress sample.
    pub fn recv_timeout(&self, timeout: std::time::Duration) -> Option<ProgressSample> {
        let deadline = Instant::now() + timeout;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            let sample = self.inner.recv_timeout(remaining)?;
            if let Sample::Progress(p) = sample {
                if self.wants(&p) {
                    return Some(p);
                }
            }
            if Instant::now() >= deadline {
                return None;
            }
        }
    }

    /// Samples the hub dropped on this subscription because the queue was
    /// full (observability of the observer's own lag).
    pub fn dropped(&self) -> u64 {
        self.inner.dropped()
    }
}

/// The multi-tenant simulation service. Construct with
/// [`SimService::start`]; submit jobs; wait; shut down (automatic on
/// drop).
pub struct SimService {
    shared: Arc<Shared>,
    budget: Arc<WorkerBudget>,
    config: ServeConfig,
    workers: Vec<JoinHandle<()>>,
    started: Instant,
    /// Spill directory for parked checkpoints; removed on shutdown.
    spill_dir: Option<std::path::PathBuf>,
}

impl SimService {
    /// Start the service: spawns `config.workers` scheduler threads
    /// sharing a `workers × lanes_per_worker`-lane budget.
    pub fn start(config: ServeConfig) -> Self {
        // A finite park cap needs somewhere to spill: a service-private
        // temp directory, removed on shutdown.
        let spill_dir = (config.park_bytes_cap < usize::MAX).then(|| {
            static INSTANCE: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
            std::env::temp_dir().join(format!(
                "apr-serve-spill-{}-{}",
                std::process::id(),
                INSTANCE.fetch_add(1, Ordering::Relaxed)
            ))
        });
        let parked = match &spill_dir {
            Some(dir) => SpillStore::new(
                config.park_bytes_cap,
                Some(FileStore::open(dir).expect("create spill directory")),
            ),
            None => SpillStore::unbounded(),
        };
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                next_id: 0,
                queue: VecDeque::new(),
                sessions: HashMap::new(),
                parked,
                grants: 0,
                inflight: 0,
            }),
            ready: Condvar::new(),
            done: Condvar::new(),
            cache: WarmCache::new(config.cache_capacity),
            shutdown: AtomicBool::new(false),
        });
        let budget = Arc::new(WorkerBudget::new(
            config.workers * config.lanes_per_worker.max(1),
        ));
        let workers = (0..config.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let budget = Arc::clone(&budget);
                std::thread::Builder::new()
                    .name(format!("apr-serve-{i}"))
                    .spawn(move || worker_loop(&shared, &budget, config))
                    .expect("spawn serve worker")
            })
            .collect();
        Self {
            shared,
            budget,
            config,
            workers,
            started: Instant::now(),
            spill_dir,
        }
    }

    /// The service's sizing config.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The shared worker budget (exposed for occupancy assertions).
    pub fn budget(&self) -> &Arc<WorkerBudget> {
        &self.budget
    }

    /// The warm-state cache (hit/miss counters feed the metrics).
    pub fn cache(&self) -> &WarmCache {
        &self.shared.cache
    }

    /// Admit a job. Returns its session id, or refuses when the in-flight
    /// count is at `max_sessions` (admission control: parked state is
    /// resident memory, so the cap bounds the service's footprint).
    pub fn submit(&self, spec: JobSpec) -> Result<u64, AdmitError> {
        if self.shared.shutdown.load(Ordering::Acquire) {
            return Err(AdmitError::ShuttingDown);
        }
        if spec.scenario.validate().is_err() {
            return Err(AdmitError::InvalidScenario);
        }
        let mut st = self.shared.state.lock().unwrap();
        if st.inflight >= self.config.max_sessions {
            return Err(AdmitError::Saturated {
                inflight: st.inflight,
                max: self.config.max_sessions,
            });
        }
        st.next_id += 1;
        let id = st.next_id;
        let scenario = spec.scenario.hash();
        st.sessions.insert(
            id,
            SessionEntry {
                spec,
                status: SessionStatus::Queued,
                steps_done: 0,
                site_updates: 0,
                stats: SessionStats::new(Instant::now()),
                result: None,
            },
        );
        st.queue.push_back(id);
        st.inflight += 1;
        let service_sample = service_sample(&st);
        drop(st);
        hub().publish(Sample::Service(service_sample));
        apr_telemetry::emit(TelemetryEvent::SessionAdmitted {
            session: id,
            scenario,
        });
        self.shared.ready.notify_one();
        Ok(id)
    }

    /// A session's lifecycle status (`None` for unknown ids).
    pub fn status(&self, id: u64) -> Option<SessionStatus> {
        self.shared
            .state
            .lock()
            .unwrap()
            .sessions
            .get(&id)
            .map(|e| e.status)
    }

    /// Subscribe to live per-slice progress. Every scheduler slice
    /// publishes a [`ProgressSample`] (steps done, steps/s, cache-hit,
    /// completion) to the global metrics hub; this returns a bounded
    /// subscription filtered to `session` when `Some`, or to all sessions
    /// when `None`. Replaces polling [`Self::progress_snapshot`] for live
    /// consumers: samples push as slices retire instead of being pulled
    /// under the scheduler lock.
    pub fn subscribe_progress(&self, session: Option<u64>) -> ProgressSubscription {
        ProgressSubscription {
            inner: hub().subscribe(),
            session,
        }
    }

    /// Session steps completed so far, per session — the fairness
    /// observable (`(id, steps_done, target)` triples, sorted by id).
    pub fn progress_snapshot(&self) -> Vec<(u64, u64, u64)> {
        let st = self.shared.state.lock().unwrap();
        let mut out: Vec<(u64, u64, u64)> = st
            .sessions
            .iter()
            .map(|(&id, e)| (id, e.steps_done, e.spec.target_steps))
            .collect();
        out.sort_unstable();
        out
    }

    /// Scheduler bookkeeping for one session (`None` for unknown ids).
    pub fn session_stats(&self, id: u64) -> Option<SessionStats> {
        self.shared
            .state
            .lock()
            .unwrap()
            .sessions
            .get(&id)
            .map(|e| e.stats.clone())
    }

    /// Block until session `id` completes; returns its result (`None` for
    /// unknown ids).
    pub fn wait(&self, id: u64) -> Option<SessionResult> {
        let mut st = self.shared.state.lock().unwrap();
        loop {
            match st.sessions.get(&id) {
                None => return None,
                Some(e) => {
                    if let Some(r) = &e.result {
                        return Some(r.clone());
                    }
                }
            }
            st = self.shared.done.wait(st).unwrap();
        }
    }

    /// Block until every admitted session completes; returns all results
    /// sorted by session id.
    pub fn wait_all(&self) -> Vec<SessionResult> {
        let mut st = self.shared.state.lock().unwrap();
        while st.inflight > 0 {
            st = self.shared.done.wait(st).unwrap();
        }
        let mut out: Vec<SessionResult> = st
            .sessions
            .values()
            .filter_map(|e| e.result.clone())
            .collect();
        out.sort_unstable_by_key(|r| r.session);
        out
    }

    /// Service-level metrics over everything observed so far.
    pub fn metrics(&self) -> ServiceMetrics {
        let st = self.shared.state.lock().unwrap();
        ServiceMetrics::compute(
            st.sessions.values().map(|e| (&e.stats, e.result.as_ref())),
            self.started.elapsed().as_secs_f64(),
            &self.shared.cache,
            &st.parked,
        )
    }

    /// Stop the workers after their current slices; in-queue sessions stay
    /// incomplete. Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.ready.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        // Unblock any wait()/wait_all() callers stuck on sessions that
        // will now never complete.
        self.shared.done.notify_all();
        if let Some(dir) = &self.spill_dir {
            std::fs::remove_dir_all(dir).ok();
        }
    }
}

impl Drop for SimService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// What one slice produced, applied to the session entry under the state
/// lock afterwards.
struct SliceOutcome {
    stepped: u64,
    site_updates: u64,
    /// Final checkpoint when the session reached its target.
    completed: Option<Vec<u8>>,
    /// Parked checkpoint when preempted.
    parked: Option<Vec<u8>>,
    /// `Some` on the first slice: did setup hit the warm cache?
    cache_hit: Option<bool>,
    /// Instant stepping began (for time-to-first-step on slice one).
    stepping_started: Instant,
    setup_ns: u64,
    resume_ns: u64,
    step_ns: u64,
    suspend_ns: u64,
}

/// Build the per-slice progress sample published to the metrics hub.
/// Called under the state lock with the just-updated session entry.
fn progress_sample(
    id: u64,
    entry: &SessionEntry,
    stepped: u64,
    step_ns: u64,
    completed: bool,
) -> ProgressSample {
    ProgressSample {
        session: id,
        steps_done: entry.steps_done,
        target_steps: entry.spec.target_steps,
        slice: entry.stats.resumes,
        steps_per_sec: stepped as f64 * 1e9 / step_ns.max(1) as f64,
        cache_hit: entry.stats.cache_hit,
        completed,
    }
}

fn worker_loop(shared: &Arc<Shared>, budget: &Arc<WorkerBudget>, cfg: ServeConfig) {
    loop {
        let mut st = shared.state.lock().unwrap();
        let id = loop {
            if shared.shutdown.load(Ordering::Acquire) {
                return;
            }
            if let Some(id) = st.queue.pop_front() {
                break id;
            }
            st = shared.ready.wait(st).unwrap();
        };
        st.grants += 1;
        let grant = st.grants;
        let parked = st
            .parked
            .take(&park_key(id))
            .expect("parked checkpoint retrieval failed");
        let entry = st.sessions.get_mut(&id).expect("queued session exists");
        entry.status = SessionStatus::Running;
        if entry.stats.last_grant != 0 {
            let gap = grant - entry.stats.last_grant;
            entry.stats.max_grant_gap = entry.stats.max_grant_gap.max(gap);
        }
        entry.stats.last_grant = grant;
        entry.stats.resumes += 1;
        let spec = entry.spec.clone();
        let steps_done = entry.steps_done;
        drop(st);

        // Lease lanes for the slice; the lease scope routes every
        // apr_exec::current() call inside to the leased pool.
        let lease = budget.lease(cfg.lanes_per_worker);
        let slice = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            lease.scope(|| {
                run_slice(
                    &shared.cache,
                    id,
                    &spec,
                    steps_done,
                    parked,
                    cfg.slice_steps,
                )
            })
        }));
        drop(lease);

        let mut st = shared.state.lock().unwrap();
        let entry = st.sessions.get_mut(&id).expect("running session exists");
        match slice {
            Ok(out) => {
                entry.steps_done += out.stepped;
                entry.site_updates += out.site_updates;
                entry.stats.setup_ns += out.setup_ns;
                entry.stats.resume_ns += out.resume_ns;
                entry.stats.step_ns += out.step_ns;
                entry.stats.suspend_ns += out.suspend_ns;
                if let Some(hit) = out.cache_hit {
                    entry.stats.cache_hit = Some(hit);
                    entry.stats.time_to_first_step =
                        Some(out.stepping_started.duration_since(entry.stats.admitted_at));
                }
                if let Some(final_checkpoint) = out.completed {
                    entry.status = SessionStatus::Completed;
                    entry.result = Some(SessionResult {
                        session: id,
                        scenario: spec.scenario.hash(),
                        steps: entry.steps_done,
                        site_updates: entry.site_updates,
                        final_checkpoint,
                        cache_hit: entry.stats.cache_hit.unwrap_or(false),
                        preempts: entry.stats.preempts,
                        error: None,
                    });
                    let progress = progress_sample(id, entry, out.stepped, out.step_ns, true);
                    st.inflight -= 1;
                    let svc = service_sample(&st);
                    drop(st);
                    hub().publish(Sample::Progress(progress));
                    hub().publish(Sample::Service(svc));
                    shared.done.notify_all();
                } else {
                    entry.stats.preempts += 1;
                    entry.status = SessionStatus::Queued;
                    let progress = progress_sample(id, entry, out.stepped, out.step_ns, false);
                    let blob = out.parked.expect("preempted slice parks a checkpoint");
                    st.parked
                        .put(&park_key(id), blob)
                        .expect("parking a checkpoint failed");
                    st.queue.push_back(id);
                    drop(st);
                    hub().publish(Sample::Progress(progress));
                    shared.ready.notify_one();
                }
            }
            Err(payload) => {
                // The session's engine blew up; the session completes
                // with an error and the worker moves on.
                let message = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "opaque panic payload".to_string());
                entry.status = SessionStatus::Completed;
                entry.result = Some(SessionResult {
                    session: id,
                    scenario: spec.scenario.hash(),
                    steps: entry.steps_done,
                    site_updates: entry.site_updates,
                    final_checkpoint: Vec::new(),
                    cache_hit: entry.stats.cache_hit.unwrap_or(false),
                    preempts: entry.stats.preempts,
                    error: Some(message),
                });
                let progress = progress_sample(id, entry, 0, 1, true);
                st.inflight -= 1;
                let svc = service_sample(&st);
                drop(st);
                hub().publish(Sample::Progress(progress));
                hub().publish(Sample::Service(svc));
                shared.done.notify_all();
            }
        }
    }
}

/// Run one time slice of session `id`: materialize the engine (parked
/// checkpoint → warm cache → cold build, in that order), step up to
/// `slice_steps`, and suspend. Runs inside the worker's lease scope and
/// the session's telemetry scope.
fn run_slice(
    cache: &WarmCache,
    id: u64,
    spec: &JobSpec,
    steps_done: u64,
    parked: Option<Vec<u8>>,
    slice_steps: u64,
) -> SliceOutcome {
    let _scope = apr_telemetry::session_scope(id);
    let scenario = spec.scenario.hash();
    let mut cache_hit = None;
    let mut setup_ns = 0u64;
    let mut resume_ns = 0u64;

    let mut engine: Box<dyn SimSession> = if let Some(blob) = parked {
        let t = Instant::now();
        let mut shell = spec
            .scenario
            .build_shell()
            .expect("admitted scenario must build a shell");
        shell
            .resume(&blob)
            .expect("parked checkpoint must restore into its own recipe");
        resume_ns = t.elapsed().as_nanos() as u64;
        shell
    } else {
        let t = Instant::now();
        let eng = match cache.lookup(scenario) {
            Some(warm) => {
                cache_hit = Some(true);
                apr_telemetry::emit(TelemetryEvent::WarmCacheHit {
                    session: id,
                    scenario,
                });
                let mut shell = spec
                    .scenario
                    .build_shell()
                    .expect("admitted scenario must build a shell");
                shell
                    .resume(&warm)
                    .expect("warm checkpoint must restore into its own recipe");
                shell
            }
            None => {
                cache_hit = Some(false);
                apr_telemetry::emit(TelemetryEvent::WarmCacheMiss {
                    session: id,
                    scenario,
                });
                let eng = spec
                    .scenario
                    .build_cold()
                    .expect("admitted scenario must build cold");
                cache.insert(scenario, eng.suspend());
                eng
            }
        };
        setup_ns = t.elapsed().as_nanos() as u64;
        eng
    };
    apr_telemetry::emit(TelemetryEvent::SessionResumed {
        session: id,
        step: engine.steps(),
    });

    let stepping_started = Instant::now();
    let run = (spec.target_steps - steps_done).min(slice_steps.max(1));
    let t = Instant::now();
    let site_updates = engine.step_n(run);
    let step_ns = t.elapsed().as_nanos() as u64;

    let t = Instant::now();
    let blob = engine.suspend();
    let suspend_ns = t.elapsed().as_nanos() as u64;

    let done = steps_done + run >= spec.target_steps;
    if done {
        apr_telemetry::emit(TelemetryEvent::SessionCompleted {
            session: id,
            step: engine.steps(),
        });
    } else {
        apr_telemetry::emit(TelemetryEvent::SessionPreempted {
            session: id,
            step: engine.steps(),
            bytes: blob.len() as u64,
        });
    }
    SliceOutcome {
        stepped: run,
        site_updates,
        completed: done.then(|| blob.clone()),
        parked: (!done).then_some(blob),
        cache_hit,
        stepping_started,
        setup_ns,
        resume_ns,
        step_ns,
        suspend_ns,
    }
}
