//! Service-level metrics: throughput, latency percentiles, preemption
//! overhead, cache effectiveness, and the fairness observable.

use crate::cache::WarmCache;
use crate::session::{SessionResult, SessionStats};
use crate::store::SpillStore;

/// Aggregated view over every session the service has observed. Produced
/// by `SimService::metrics`; the bench scenario serializes it into
/// `BENCH_serve.json`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceMetrics {
    /// Sessions admitted so far (completed or not).
    pub sessions_admitted: u64,
    /// Sessions that reached their target.
    pub sessions_completed: u64,
    /// Sessions that completed with an error (engine panic).
    pub sessions_failed: u64,
    /// Seconds since the service started.
    pub wall_seconds: f64,
    /// Completed sessions per wall-clock second.
    pub sessions_per_sec: f64,
    /// Median admission → first-engine-step latency, milliseconds.
    pub p50_ttfs_ms: f64,
    /// 95th-percentile admission → first-engine-step latency, ms.
    pub p95_ttfs_ms: f64,
    /// Preemption overhead: time suspending + restoring as a percentage
    /// of total slice time (step + suspend + restore). One-time setup
    /// (cold build / warm restore) is excluded — it is paid once per
    /// session regardless of scheduling.
    pub preempt_overhead_pct: f64,
    /// Warm-cache lookups that found a blob.
    pub cache_hits: u64,
    /// Warm-cache lookups that had to build cold.
    pub cache_misses: u64,
    /// `hits / (hits + misses)`; 0.0 before any lookup.
    pub cache_hit_rate: f64,
    /// Total preemptions across all sessions.
    pub total_preempts: u64,
    /// Worst gap any session saw between consecutive slice grants,
    /// measured in grants handed to anyone. Round-robin bounds this by
    /// the number of concurrently active sessions; starvation shows up
    /// here as a large value.
    pub max_grant_gap: u64,
    /// Engine site updates summed over all sessions.
    pub total_site_updates: u64,
    /// Parked checkpoints spilled from memory to disk (0 with the default
    /// unbounded park pool).
    pub park_spills: u64,
    /// Parked-checkpoint takes served from the memory tier.
    pub park_memory_hits: u64,
    /// Parked-checkpoint takes served from the disk tier.
    pub park_disk_hits: u64,
}

impl ServiceMetrics {
    /// Fold per-session bookkeeping into the service view.
    pub(crate) fn compute<'a>(
        sessions: impl Iterator<Item = (&'a SessionStats, Option<&'a SessionResult>)>,
        wall_seconds: f64,
        cache: &WarmCache,
        parked: &SpillStore,
    ) -> Self {
        let mut admitted = 0u64;
        let mut completed = 0u64;
        let mut failed = 0u64;
        let mut preempts = 0u64;
        let mut max_gap = 0u64;
        let mut site_updates = 0u64;
        let mut step_ns = 0u64;
        let mut suspend_ns = 0u64;
        let mut resume_ns = 0u64;
        let mut ttfs_ms: Vec<f64> = Vec::new();
        for (stats, result) in sessions {
            admitted += 1;
            preempts += stats.preempts;
            max_gap = max_gap.max(stats.max_grant_gap);
            step_ns += stats.step_ns;
            suspend_ns += stats.suspend_ns;
            resume_ns += stats.resume_ns;
            if let Some(ttfs) = stats.time_to_first_step {
                ttfs_ms.push(ttfs.as_secs_f64() * 1e3);
            }
            if let Some(r) = result {
                site_updates += r.site_updates;
                if r.error.is_some() {
                    failed += 1;
                } else {
                    completed += 1;
                }
            }
        }
        ttfs_ms.sort_by(|a, b| a.total_cmp(b));
        let overhead_ns = suspend_ns + resume_ns;
        let slice_ns = step_ns + overhead_ns;
        Self {
            sessions_admitted: admitted,
            sessions_completed: completed,
            sessions_failed: failed,
            wall_seconds,
            sessions_per_sec: if wall_seconds > 0.0 {
                completed as f64 / wall_seconds
            } else {
                0.0
            },
            p50_ttfs_ms: percentile(&ttfs_ms, 0.50),
            p95_ttfs_ms: percentile(&ttfs_ms, 0.95),
            preempt_overhead_pct: if slice_ns > 0 {
                overhead_ns as f64 / slice_ns as f64 * 100.0
            } else {
                0.0
            },
            cache_hits: cache.hits(),
            cache_misses: cache.misses(),
            cache_hit_rate: cache.hit_rate(),
            total_preempts: preempts,
            max_grant_gap: max_gap,
            total_site_updates: site_updates,
            park_spills: parked.spills(),
            park_memory_hits: parked.memory_hits(),
            park_disk_hits: parked.disk_hits(),
        }
    }
}

/// Nearest-rank percentile over a sorted slice (0.0 for empty input).
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = (p * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::{Duration, Instant};

    #[test]
    fn compute_folds_sessions_and_percentiles() {
        let cache = WarmCache::new(2);
        cache.insert(1, vec![0]);
        cache.lookup(1); // hit
        cache.lookup(2); // miss
        let now = Instant::now();
        let mut a = SessionStats::new(now);
        a.time_to_first_step = Some(Duration::from_millis(10));
        a.preempts = 3;
        a.max_grant_gap = 5;
        a.step_ns = 900;
        a.suspend_ns = 60;
        a.resume_ns = 40;
        let mut b = SessionStats::new(now);
        b.time_to_first_step = Some(Duration::from_millis(30));
        b.max_grant_gap = 2;
        let ra = SessionResult {
            session: 1,
            scenario: 1,
            steps: 20,
            site_updates: 4000,
            final_checkpoint: vec![1],
            cache_hit: true,
            preempts: 3,
            error: None,
        };
        let parked = SpillStore::unbounded();
        let m = ServiceMetrics::compute(
            [(&a, Some(&ra)), (&b, None)].into_iter(),
            2.0,
            &cache,
            &parked,
        );
        assert_eq!(m.sessions_admitted, 2);
        assert_eq!(m.sessions_completed, 1);
        assert_eq!(m.sessions_failed, 0);
        assert!((m.sessions_per_sec - 0.5).abs() < 1e-12);
        assert!((m.p50_ttfs_ms - 10.0).abs() < 1e-9 || (m.p50_ttfs_ms - 30.0).abs() < 1e-9);
        assert!((m.p95_ttfs_ms - 30.0).abs() < 1e-9);
        // overhead = (60 + 40) / (900 + 100) = 10%
        assert!((m.preempt_overhead_pct - 10.0).abs() < 1e-9);
        assert_eq!(m.total_preempts, 3);
        assert_eq!(m.max_grant_gap, 5);
        assert_eq!(m.cache_hits, 1);
        assert_eq!(m.cache_misses, 1);
        assert_eq!(m.total_site_updates, 4000);
        assert_eq!(m.park_spills, 0);
        assert_eq!(m.park_memory_hits, 0);
        assert_eq!(m.park_disk_hits, 0);
    }
}
