//! Property-based tests of mesh invariants.

use apr_mesh::icosphere;
use apr_mesh::quality::triangle_quality;
use apr_mesh::rcm::{rcm_order, reorder_vertices};
use apr_mesh::topology::{EdgeTopology, MeshTopology};
use apr_mesh::Vec3;
use proptest::prelude::*;

proptest! {
    /// Triangle quality is bounded in [0, 1] for arbitrary triangles.
    #[test]
    fn quality_bounded(
        ax in -10.0..10.0f64, ay in -10.0..10.0f64, az in -10.0..10.0f64,
        bx in -10.0..10.0f64, by in -10.0..10.0f64, bz in -10.0..10.0f64,
        cx in -10.0..10.0f64, cy in -10.0..10.0f64, cz in -10.0..10.0f64,
    ) {
        let a = Vec3::new(ax, ay, az);
        let b = Vec3::new(bx, by, bz);
        let c = Vec3::new(cx, cy, cz);
        prop_assume!((b - a).cross(c - a).norm() > 1e-9);
        let m = apr_mesh::TriMesh::new(vec![a, b, c], vec![[0, 1, 2]]);
        let q = triangle_quality(&m, 0);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&q), "q = {q}");
    }

    /// Rigid motions preserve volume, area and closedness of the icosphere
    /// at any subdivision level.
    #[test]
    fn rigid_motion_preserves_metrics(
        level in 0u32..3,
        angle in -3.0..3.0f64,
        tx in -5.0..5.0f64,
    ) {
        let mut m = icosphere(level, 1.0);
        let (v0, a0) = (m.enclosed_volume(), m.surface_area());
        m.rotate(Vec3::new(1.0, 0.7, -0.3), angle);
        m.translate(Vec3::new(tx, -tx, 0.5 * tx));
        prop_assert!((m.enclosed_volume() - v0).abs() < 1e-9);
        prop_assert!((m.surface_area() - a0).abs() < 1e-9);
        prop_assert!(EdgeTopology::build(&m).is_closed());
    }

    /// RCM yields a valid permutation whose reordered mesh preserves the
    /// geometry exactly, for any subdivision level.
    #[test]
    fn rcm_preserves_geometry(level in 0u32..3) {
        let m = icosphere(level, 1.0);
        let topo = MeshTopology::build(&m);
        let order = rcm_order(&topo);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        let expected: Vec<u32> = (0..m.vertex_count() as u32).collect();
        prop_assert_eq!(sorted, expected);
        let r = reorder_vertices(&m, &order);
        prop_assert!((r.enclosed_volume() - m.enclosed_volume()).abs() < 1e-12);
        prop_assert!((r.surface_area() - m.surface_area()).abs() < 1e-12);
    }
}
