//! Edge / dihedral / adjacency extraction for triangle meshes.
//!
//! The bending model needs, for every interior edge, the two opposite
//! vertices of the adjacent triangle pair; the Skalak FEM needs per-triangle
//! reference data; RCM needs the vertex adjacency graph. All of that is
//! derived once here and reused.

use crate::tri_mesh::TriMesh;
use std::collections::HashMap;

/// A mesh edge shared by one or two triangles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Endpoint vertex indices, `v0 < v1`.
    pub v: [u32; 2],
    /// Adjacent triangle indices; `t[1] == u32::MAX` for boundary edges.
    pub t: [u32; 2],
    /// Vertex of `t[0]` / `t[1]` opposite this edge (`u32::MAX` if absent).
    pub opposite: [u32; 2],
}

impl Edge {
    /// Is this edge on an open boundary (only one incident triangle)?
    pub fn is_boundary(&self) -> bool {
        self.t[1] == u32::MAX
    }
}

/// Edge table of a triangle mesh.
#[derive(Debug, Clone, Default)]
pub struct EdgeTopology {
    /// All unique edges.
    pub edges: Vec<Edge>,
}

impl EdgeTopology {
    /// Build the edge table.
    ///
    /// # Panics
    /// Panics if an edge is shared by more than two triangles
    /// (non-manifold mesh).
    pub fn build(mesh: &TriMesh) -> Self {
        let mut map: HashMap<(u32, u32), usize> =
            HashMap::with_capacity(mesh.triangle_count() * 3 / 2);
        let mut edges: Vec<Edge> = Vec::with_capacity(mesh.triangle_count() * 3 / 2);
        for (t, &[a, b, c]) in mesh.triangles.iter().enumerate() {
            for (u, v, w) in [(a, b, c), (b, c, a), (c, a, b)] {
                let key = (u.min(v), u.max(v));
                match map.get(&key) {
                    None => {
                        map.insert(key, edges.len());
                        edges.push(Edge {
                            v: [key.0, key.1],
                            t: [t as u32, u32::MAX],
                            opposite: [w, u32::MAX],
                        });
                    }
                    Some(&e) => {
                        let edge = &mut edges[e];
                        assert!(
                            edge.t[1] == u32::MAX,
                            "non-manifold edge {key:?}: more than two incident triangles"
                        );
                        edge.t[1] = t as u32;
                        edge.opposite[1] = w;
                    }
                }
            }
        }
        Self { edges }
    }

    /// Count of interior (two-triangle) edges.
    pub fn interior_count(&self) -> usize {
        self.edges.iter().filter(|e| !e.is_boundary()).count()
    }

    /// Is the mesh closed (no boundary edges)?
    pub fn is_closed(&self) -> bool {
        self.edges.iter().all(|e| !e.is_boundary())
    }
}

/// Full mesh topology: edges plus vertex adjacency.
#[derive(Debug, Clone, Default)]
pub struct MeshTopology {
    /// Unique edge table.
    pub edges: EdgeTopology,
    /// CSR-style vertex adjacency: neighbours of vertex `v` are
    /// `adjacency[offsets[v]..offsets[v+1]]`.
    pub offsets: Vec<u32>,
    /// Flattened neighbour lists.
    pub adjacency: Vec<u32>,
}

impl MeshTopology {
    /// Build edges and vertex adjacency for `mesh`.
    pub fn build(mesh: &TriMesh) -> Self {
        let edges = EdgeTopology::build(mesh);
        let n = mesh.vertex_count();
        let mut degree = vec![0u32; n];
        for e in &edges.edges {
            degree[e.v[0] as usize] += 1;
            degree[e.v[1] as usize] += 1;
        }
        let mut offsets = vec![0u32; n + 1];
        for v in 0..n {
            offsets[v + 1] = offsets[v] + degree[v];
        }
        let mut adjacency = vec![0u32; offsets[n] as usize];
        let mut cursor = offsets.clone();
        for e in &edges.edges {
            let (a, b) = (e.v[0] as usize, e.v[1] as usize);
            adjacency[cursor[a] as usize] = e.v[1];
            cursor[a] += 1;
            adjacency[cursor[b] as usize] = e.v[0];
            cursor[b] += 1;
        }
        Self {
            edges,
            offsets,
            adjacency,
        }
    }

    /// Neighbours of vertex `v`.
    pub fn neighbors(&self, v: usize) -> &[u32] {
        &self.adjacency[self.offsets[v] as usize..self.offsets[v + 1] as usize]
    }

    /// Degree of vertex `v`.
    pub fn degree(&self, v: usize) -> usize {
        (self.offsets[v + 1] - self.offsets[v]) as usize
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.offsets.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::icosphere::icosphere;
    use crate::vec3::Vec3;

    fn tetra() -> TriMesh {
        TriMesh::new(
            vec![
                Vec3::new(0.0, 0.0, 0.0),
                Vec3::new(1.0, 0.0, 0.0),
                Vec3::new(0.0, 1.0, 0.0),
                Vec3::new(0.0, 0.0, 1.0),
            ],
            vec![[0, 2, 1], [0, 1, 3], [0, 3, 2], [1, 2, 3]],
        )
    }

    #[test]
    fn tetrahedron_has_six_interior_edges() {
        let topo = EdgeTopology::build(&tetra());
        assert_eq!(topo.edges.len(), 6);
        assert!(topo.is_closed());
        assert_eq!(topo.interior_count(), 6);
    }

    #[test]
    fn open_mesh_has_boundary_edges() {
        let single = TriMesh::new(vec![Vec3::ZERO, Vec3::X, Vec3::Y], vec![[0, 1, 2]]);
        let topo = EdgeTopology::build(&single);
        assert_eq!(topo.edges.len(), 3);
        assert!(!topo.is_closed());
        assert_eq!(topo.interior_count(), 0);
    }

    #[test]
    fn opposite_vertices_are_correct_for_tetrahedron() {
        let topo = EdgeTopology::build(&tetra());
        for e in &topo.edges {
            // Opposite vertices must not be edge endpoints.
            for o in e.opposite {
                assert!(o != e.v[0] && o != e.v[1]);
            }
            // In a tetrahedron the two opposites plus the edge cover all 4.
            let mut all = vec![e.v[0], e.v[1], e.opposite[0], e.opposite[1]];
            all.sort_unstable();
            assert_eq!(all, vec![0, 1, 2, 3]);
        }
    }

    #[test]
    fn adjacency_is_symmetric() {
        let mesh = icosphere(2, 1.0);
        let topo = MeshTopology::build(&mesh);
        for v in 0..topo.vertex_count() {
            for &w in topo.neighbors(v) {
                assert!(
                    topo.neighbors(w as usize).contains(&(v as u32)),
                    "edge {v}-{w} not symmetric"
                );
            }
        }
    }

    #[test]
    fn euler_characteristic_of_icosphere() {
        let mesh = icosphere(3, 1.0);
        let topo = EdgeTopology::build(&mesh);
        let (v, e, f) = (
            mesh.vertex_count() as i64,
            topo.edges.len() as i64,
            mesh.triangle_count() as i64,
        );
        assert_eq!(v - e + f, 2, "V - E + F must be 2 on a sphere");
        assert!(topo.is_closed());
    }

    #[test]
    fn icosphere_vertex_degrees_are_5_or_6() {
        let mesh = icosphere(2, 1.0);
        let topo = MeshTopology::build(&mesh);
        let mut fives = 0;
        for v in 0..topo.vertex_count() {
            match topo.degree(v) {
                5 => fives += 1,
                6 => {}
                d => panic!("unexpected degree {d} at vertex {v}"),
            }
        }
        // Exactly the 12 original icosahedron vertices keep degree 5.
        assert_eq!(fives, 12);
    }
}
