//! Icosahedron and icosphere generation.
//!
//! The paper's RBC meshes are "3 subdivision steps of an initially
//! icosahedral mesh, leading to 1280 elements and 642 vertices" (§3.6).

use crate::tri_mesh::TriMesh;
use crate::vec3::Vec3;
use std::collections::HashMap;

/// Regular icosahedron with unit circumradius, centered at the origin.
pub fn icosahedron() -> TriMesh {
    let phi = (1.0 + 5f64.sqrt()) / 2.0;
    let inv = 1.0 / (1.0 + phi * phi).sqrt();
    let a = inv;
    let b = phi * inv;
    let vertices = vec![
        Vec3::new(-a, b, 0.0),
        Vec3::new(a, b, 0.0),
        Vec3::new(-a, -b, 0.0),
        Vec3::new(a, -b, 0.0),
        Vec3::new(0.0, -a, b),
        Vec3::new(0.0, a, b),
        Vec3::new(0.0, -a, -b),
        Vec3::new(0.0, a, -b),
        Vec3::new(b, 0.0, -a),
        Vec3::new(b, 0.0, a),
        Vec3::new(-b, 0.0, -a),
        Vec3::new(-b, 0.0, a),
    ];
    let triangles = vec![
        [0, 11, 5],
        [0, 5, 1],
        [0, 1, 7],
        [0, 7, 10],
        [0, 10, 11],
        [1, 5, 9],
        [5, 11, 4],
        [11, 10, 2],
        [10, 7, 6],
        [7, 1, 8],
        [3, 9, 4],
        [3, 4, 2],
        [3, 2, 6],
        [3, 6, 8],
        [3, 8, 9],
        [4, 9, 5],
        [2, 4, 11],
        [6, 2, 10],
        [8, 6, 7],
        [9, 8, 1],
    ];
    TriMesh::new(vertices, triangles)
}

/// Split every triangle of `mesh` into four, placing new vertices at edge
/// midpoints. Purely combinatorial: no smoothing or projection.
pub fn subdivide_midpoint(mesh: &TriMesh) -> TriMesh {
    let mut vertices = mesh.vertices.clone();
    let mut midpoint: HashMap<(u32, u32), u32> = HashMap::new();
    let mut triangles = Vec::with_capacity(mesh.triangle_count() * 4);
    let mut mid = |a: u32, b: u32, vertices: &mut Vec<Vec3>| -> u32 {
        let key = (a.min(b), a.max(b));
        *midpoint.entry(key).or_insert_with(|| {
            let p = (vertices[a as usize] + vertices[b as usize]) * 0.5;
            vertices.push(p);
            (vertices.len() - 1) as u32
        })
    };
    for &[a, b, c] in &mesh.triangles {
        let ab = mid(a, b, &mut vertices);
        let bc = mid(b, c, &mut vertices);
        let ca = mid(c, a, &mut vertices);
        triangles.push([a, ab, ca]);
        triangles.push([ab, b, bc]);
        triangles.push([ca, bc, c]);
        triangles.push([ab, bc, ca]);
    }
    TriMesh::new(vertices, triangles)
}

/// Icosphere of radius `radius`: `subdivisions` midpoint splits of an
/// icosahedron with every vertex projected back onto the sphere.
///
/// `subdivisions = 3` gives the paper's 642-vertex / 1280-triangle cell mesh.
///
/// ```
/// let m = apr_mesh::icosphere(3, 1.0);
/// assert_eq!(m.vertex_count(), 642);
/// assert_eq!(m.triangle_count(), 1280);
/// // Volume within 1% of the true sphere.
/// let v = 4.0 / 3.0 * std::f64::consts::PI;
/// assert!((m.enclosed_volume() - v).abs() / v < 0.01);
/// ```
pub fn icosphere(subdivisions: u32, radius: f64) -> TriMesh {
    assert!(radius > 0.0, "radius must be positive, got {radius}");
    let mut mesh = icosahedron();
    for _ in 0..subdivisions {
        mesh = subdivide_midpoint(&mesh);
        for v in &mut mesh.vertices {
            *v = v.normalized();
        }
    }
    for v in &mut mesh.vertices {
        *v *= radius;
    }
    mesh
}

/// Sphere mesh sized for FSI: radius in lattice/physical units, with enough
/// subdivisions that the mean edge length is at most `target_edge`.
///
/// Used to mesh CTCs: the paper prescribes submicron resolution where "the
/// window resolution is an order of magnitude smaller than the length scale
/// of an individual RBC" (§3.6), so meshes follow the fluid grid.
pub fn sphere_mesh(radius: f64, target_edge: f64) -> TriMesh {
    assert!(radius > 0.0 && target_edge > 0.0);
    // Icosahedron edge ≈ 1.05·R; each split halves the edge length.
    let mut subdivisions = 0u32;
    let mut edge = 1.0514622 * radius;
    while edge > target_edge && subdivisions < 7 {
        subdivisions += 1;
        edge *= 0.5;
    }
    icosphere(subdivisions, radius)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn icosahedron_has_12_vertices_20_faces() {
        let m = icosahedron();
        assert_eq!(m.vertex_count(), 12);
        assert_eq!(m.triangle_count(), 20);
        for v in &m.vertices {
            assert!((v.norm() - 1.0).abs() < 1e-12, "vertices on unit sphere");
        }
    }

    #[test]
    fn icosahedron_winding_is_outward() {
        let m = icosahedron();
        assert!(m.enclosed_volume() > 0.0);
        for t in 0..m.triangle_count() {
            let outward = m.triangle_normal(t).dot(m.triangle_centroid(t));
            assert!(outward > 0.0, "triangle {t} wound inward");
        }
    }

    #[test]
    fn subdivision_counts_match_paper() {
        // 3 subdivisions: 642 vertices, 1280 triangles (paper §3.6).
        let m = icosphere(3, 1.0);
        assert_eq!(m.vertex_count(), 642);
        assert_eq!(m.triangle_count(), 1280);
    }

    #[test]
    fn icosphere_converges_to_sphere_metrics() {
        let r = 2.5;
        let m = icosphere(4, r);
        let area_exact = 4.0 * PI * r * r;
        let vol_exact = 4.0 / 3.0 * PI * r * r * r;
        assert!((m.surface_area() - area_exact).abs() / area_exact < 0.01);
        assert!((m.enclosed_volume() - vol_exact).abs() / vol_exact < 0.01);
    }

    #[test]
    fn icosphere_vertices_lie_on_sphere() {
        let m = icosphere(3, 4.0);
        for v in &m.vertices {
            assert!((v.norm() - 4.0).abs() < 1e-9);
        }
    }

    #[test]
    fn sphere_mesh_meets_edge_target() {
        let m = sphere_mesh(4.0, 1.0);
        let topo = crate::topology::EdgeTopology::build(&m);
        let mean_edge: f64 = topo
            .edges
            .iter()
            .map(|e| m.vertices[e.v[0] as usize].distance(m.vertices[e.v[1] as usize]))
            .sum::<f64>()
            / topo.edges.len() as f64;
        assert!(mean_edge <= 1.05, "mean edge {mean_edge} exceeds target");
    }

    #[test]
    fn midpoint_subdivision_preserves_closedness() {
        let m = subdivide_midpoint(&icosahedron());
        let topo = crate::topology::EdgeTopology::build(&m);
        assert!(topo.is_closed());
        assert_eq!(m.triangle_count(), 80);
        assert_eq!(m.vertex_count(), 42);
    }
}
