//! Triangulated surface meshes for deformable cells.
//!
//! The paper models every cell as "a fluid-filled membrane represented by a
//! Lagrangian surface mesh composed of triangular elements" (§2.2), built by
//! subdividing an icosahedron three times (642 vertices, 1280 triangles,
//! §3.6) and reordered with reverse Cuthill–McKee for FEM memory locality
//! (§2.4.5). This crate provides that substrate:
//!
//! * [`vec3`] — minimal 3-vector math used across the workspace.
//! * [`tri_mesh`] — indexed triangle mesh with areas/normals/volume.
//! * [`topology`] — edge and dihedral connectivity extraction.
//! * [`icosphere`] — icosahedron generation and spherical subdivision.
//! * [`subdivision`] — Loop subdivision (the paper's FEM basis, §2.2).
//! * [`biconcave`] — Evans–Fung biconcave discocyte mapping for RBCs.
//! * [`rcm`] — reverse Cuthill–McKee vertex reordering (§2.4.5).
//! * [`off_io`] — OFF geometry file reader/writer (the paper's artifact
//!   geometry format).
//! * [`quality`] — mesh-quality metrics used by tests and diagnostics.

pub mod biconcave;
pub mod icosphere;
pub mod off_io;
pub mod quality;
pub mod rcm;
pub mod subdivision;
pub mod topology;
pub mod tri_mesh;
pub mod vec3;

pub use biconcave::{biconcave_rbc_mesh, BiconcaveShape};
pub use icosphere::{icosahedron, icosphere, sphere_mesh};
pub use rcm::{bandwidth, rcm_order, reorder_vertices};
pub use topology::{EdgeTopology, MeshTopology};
pub use tri_mesh::TriMesh;
pub use vec3::Vec3;
