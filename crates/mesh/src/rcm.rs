//! Reverse Cuthill–McKee vertex reordering.
//!
//! Paper §2.4.5: "The reverse Cuthill-McKee (RCM) ordering algorithm has been
//! shown to improve locality in a manner well suited for FEM applications,
//! and we use RCM in the present work to optimally order our deformable cell
//! mesh connectivity arrays." Each FEM element touches twelve surrounding
//! vertices, so adjacency bandwidth maps directly to cache behaviour.

use crate::topology::MeshTopology;
use crate::tri_mesh::TriMesh;

/// Compute the RCM permutation of the mesh's vertex adjacency graph.
///
/// Returns `order` such that `order[new_index] = old_index`. The traversal is
/// breadth-first from a minimum-degree vertex of each connected component,
/// visiting neighbours in increasing-degree order, then reversed.
pub fn rcm_order(topo: &MeshTopology) -> Vec<u32> {
    let n = topo.vertex_count();
    let mut visited = vec![false; n];
    let mut order: Vec<u32> = Vec::with_capacity(n);
    let mut queue: std::collections::VecDeque<u32> = std::collections::VecDeque::new();
    let mut neighbors_buf: Vec<u32> = Vec::new();

    loop {
        // Seed: unvisited vertex of minimum degree (a pseudo-peripheral
        // approximation that works well for near-uniform surface meshes).
        let seed = (0..n)
            .filter(|&v| !visited[v])
            .min_by_key(|&v| topo.degree(v));
        let Some(seed) = seed else { break };
        visited[seed] = true;
        queue.push_back(seed as u32);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            neighbors_buf.clear();
            neighbors_buf.extend(
                topo.neighbors(v as usize)
                    .iter()
                    .copied()
                    .filter(|&w| !visited[w as usize]),
            );
            neighbors_buf.sort_unstable_by_key(|&w| topo.degree(w as usize));
            for &w in &neighbors_buf {
                visited[w as usize] = true;
                queue.push_back(w);
            }
        }
    }
    order.reverse();
    order
}

/// Graph bandwidth of a mesh under the identity ordering: the maximum index
/// distance across any edge. Lower bandwidth ⇒ better FEM memory locality.
pub fn bandwidth(topo: &MeshTopology) -> usize {
    let mut max = 0usize;
    for v in 0..topo.vertex_count() {
        for &w in topo.neighbors(v) {
            max = max.max(v.abs_diff(w as usize));
        }
    }
    max
}

/// Bandwidth of the graph under a permutation `order[new] = old`.
pub fn bandwidth_under(topo: &MeshTopology, order: &[u32]) -> usize {
    let mut new_of_old = vec![0usize; order.len()];
    for (new, &old) in order.iter().enumerate() {
        new_of_old[old as usize] = new;
    }
    let mut max = 0usize;
    for v in 0..topo.vertex_count() {
        for &w in topo.neighbors(v) {
            max = max.max(new_of_old[v].abs_diff(new_of_old[w as usize]));
        }
    }
    max
}

/// Rebuild `mesh` with vertices permuted by `order[new] = old`, rewriting
/// triangle connectivity accordingly.
///
/// # Panics
/// Panics if `order` is not a permutation of the vertex indices.
pub fn reorder_vertices(mesh: &TriMesh, order: &[u32]) -> TriMesh {
    assert_eq!(order.len(), mesh.vertex_count(), "order length mismatch");
    let mut new_of_old = vec![u32::MAX; order.len()];
    for (new, &old) in order.iter().enumerate() {
        assert!(
            new_of_old[old as usize] == u32::MAX,
            "order repeats vertex {old}"
        );
        new_of_old[old as usize] = new as u32;
    }
    let vertices = order
        .iter()
        .map(|&old| mesh.vertices[old as usize])
        .collect();
    let triangles = mesh
        .triangles
        .iter()
        .map(|&[a, b, c]| {
            [
                new_of_old[a as usize],
                new_of_old[b as usize],
                new_of_old[c as usize],
            ]
        })
        .collect();
    TriMesh::new(vertices, triangles)
}

/// Apply RCM to a mesh: returns the reordered mesh and the permutation used.
pub fn rcm_reorder(mesh: &TriMesh) -> (TriMesh, Vec<u32>) {
    let topo = MeshTopology::build(mesh);
    let order = rcm_order(&topo);
    (reorder_vertices(mesh, &order), order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::biconcave::biconcave_rbc_mesh;
    use crate::icosphere::icosphere;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    #[test]
    fn rcm_is_a_permutation() {
        let mesh = icosphere(3, 1.0);
        let topo = MeshTopology::build(&mesh);
        let order = rcm_order(&topo);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        let expected: Vec<u32> = (0..mesh.vertex_count() as u32).collect();
        assert_eq!(sorted, expected);
    }

    #[test]
    fn rcm_reduces_bandwidth_of_shuffled_mesh() {
        // Shuffle vertex IDs to destroy locality, then confirm RCM restores it.
        let mesh = icosphere(3, 1.0);
        let n = mesh.vertex_count();
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut perm: Vec<u32> = (0..n as u32).collect();
        perm.shuffle(&mut rng);
        let shuffled = reorder_vertices(&mesh, &perm);
        let topo_shuffled = MeshTopology::build(&shuffled);
        let bw_shuffled = bandwidth(&topo_shuffled);

        let (rcm_mesh, _) = rcm_reorder(&shuffled);
        let bw_rcm = bandwidth(&MeshTopology::build(&rcm_mesh));
        assert!(
            bw_rcm * 4 < bw_shuffled,
            "RCM bandwidth {bw_rcm} not ≪ shuffled {bw_shuffled}"
        );
    }

    #[test]
    fn reordering_preserves_geometry() {
        let mesh = biconcave_rbc_mesh(2, 1.0);
        let (reordered, _) = rcm_reorder(&mesh);
        assert!((reordered.surface_area() - mesh.surface_area()).abs() < 1e-12);
        assert!((reordered.enclosed_volume() - mesh.enclosed_volume()).abs() < 1e-12);
        assert_eq!(reordered.vertex_count(), mesh.vertex_count());
        assert_eq!(reordered.triangle_count(), mesh.triangle_count());
    }

    #[test]
    fn bandwidth_under_matches_explicit_reorder() {
        let mesh = icosphere(2, 1.0);
        let topo = MeshTopology::build(&mesh);
        let order = rcm_order(&topo);
        let implicit = bandwidth_under(&topo, &order);
        let explicit = bandwidth(&MeshTopology::build(&reorder_vertices(&mesh, &order)));
        assert_eq!(implicit, explicit);
    }

    #[test]
    #[should_panic(expected = "repeats vertex")]
    fn duplicate_order_rejected() {
        let mesh = icosphere(0, 1.0);
        let mut order: Vec<u32> = (0..mesh.vertex_count() as u32).collect();
        order[1] = order[0];
        let _ = reorder_vertices(&mesh, &order);
    }
}
