//! OFF (Object File Format) reader/writer.
//!
//! The paper's artifacts specify simulation domains "using a geometry in the
//! form of an OFF file" (Appendix). We support the ASCII triangle subset that
//! vascular geometry pipelines produce: optional comments, the `OFF` header,
//! counts line, vertex lines, and polygonal faces (triangulated on load via
//! fan decomposition).

use crate::tri_mesh::TriMesh;
use crate::vec3::Vec3;
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Errors produced by OFF parsing.
#[derive(Debug)]
pub enum OffError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structural problem with the file, with a human-readable description.
    Parse(String),
}

impl std::fmt::Display for OffError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OffError::Io(e) => write!(f, "OFF I/O error: {e}"),
            OffError::Parse(msg) => write!(f, "OFF parse error: {msg}"),
        }
    }
}

impl std::error::Error for OffError {}

impl From<std::io::Error> for OffError {
    fn from(e: std::io::Error) -> Self {
        OffError::Io(e)
    }
}

/// Parse an OFF mesh from a reader.
pub fn read_off<R: Read>(reader: R) -> Result<TriMesh, OffError> {
    let buf = BufReader::new(reader);
    let mut tokens: Vec<String> = Vec::new();
    for line in buf.lines() {
        let line = line?;
        let content = line.split('#').next().unwrap_or("");
        tokens.extend(content.split_whitespace().map(str::to_owned));
    }
    let mut it = tokens.into_iter();
    let header = it
        .next()
        .ok_or_else(|| OffError::Parse("empty file".into()))?;
    if header != "OFF" {
        return Err(OffError::Parse(format!(
            "expected OFF header, got {header:?}"
        )));
    }
    let next_usize =
        |what: &str, it: &mut dyn Iterator<Item = String>| -> Result<usize, OffError> {
            it.next()
                .ok_or_else(|| OffError::Parse(format!("missing {what}")))?
                .parse()
                .map_err(|e| OffError::Parse(format!("bad {what}: {e}")))
        };
    let nv = next_usize("vertex count", &mut it)?;
    let nf = next_usize("face count", &mut it)?;
    let _ne = next_usize("edge count", &mut it)?;

    let next_f64 = |what: &str, it: &mut dyn Iterator<Item = String>| -> Result<f64, OffError> {
        it.next()
            .ok_or_else(|| OffError::Parse(format!("missing {what}")))?
            .parse()
            .map_err(|e| OffError::Parse(format!("bad {what}: {e}")))
    };

    let mut vertices = Vec::with_capacity(nv);
    for i in 0..nv {
        let x = next_f64(&format!("vertex {i} x"), &mut it)?;
        let y = next_f64(&format!("vertex {i} y"), &mut it)?;
        let z = next_f64(&format!("vertex {i} z"), &mut it)?;
        vertices.push(Vec3::new(x, y, z));
    }

    let mut triangles = Vec::with_capacity(nf);
    for f in 0..nf {
        let k = next_usize(&format!("face {f} arity"), &mut it)?;
        if k < 3 {
            return Err(OffError::Parse(format!(
                "face {f} has fewer than 3 vertices"
            )));
        }
        let mut poly = Vec::with_capacity(k);
        for j in 0..k {
            let v = next_usize(&format!("face {f} vertex {j}"), &mut it)?;
            if v >= nv {
                return Err(OffError::Parse(format!(
                    "face {f} references vertex {v} beyond count {nv}"
                )));
            }
            poly.push(v as u32);
        }
        // Fan-triangulate polygons.
        for j in 1..k - 1 {
            triangles.push([poly[0], poly[j], poly[j + 1]]);
        }
    }
    Ok(TriMesh::new(vertices, triangles))
}

/// Read an OFF file from disk.
pub fn read_off_file<P: AsRef<Path>>(path: P) -> Result<TriMesh, OffError> {
    read_off(std::fs::File::open(path)?)
}

/// Serialize a mesh to ASCII OFF.
pub fn write_off<W: Write>(mesh: &TriMesh, mut writer: W) -> std::io::Result<()> {
    let mut out = String::new();
    out.push_str("OFF\n");
    let _ = writeln!(
        out,
        "{} {} {}",
        mesh.vertex_count(),
        mesh.triangle_count(),
        0
    );
    for v in &mesh.vertices {
        let _ = writeln!(out, "{} {} {}", v.x, v.y, v.z);
    }
    for t in &mesh.triangles {
        let _ = writeln!(out, "3 {} {} {}", t[0], t[1], t[2]);
    }
    writer.write_all(out.as_bytes())
}

/// Write a mesh to an OFF file on disk.
pub fn write_off_file<P: AsRef<Path>>(mesh: &TriMesh, path: P) -> std::io::Result<()> {
    write_off(mesh, std::fs::File::create(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::icosphere::icosphere;

    #[test]
    fn round_trip_preserves_mesh() {
        let mesh = icosphere(2, 1.5);
        let mut buf = Vec::new();
        write_off(&mesh, &mut buf).unwrap();
        let back = read_off(&buf[..]).unwrap();
        assert_eq!(back.vertex_count(), mesh.vertex_count());
        assert_eq!(back.triangles, mesh.triangles);
        for (a, b) in back.vertices.iter().zip(&mesh.vertices) {
            assert!((*a - *b).norm() < 1e-12);
        }
    }

    #[test]
    fn parses_comments_and_quads() {
        let text =
            "# a comment\nOFF\n4 1 0\n0 0 0\n1 0 0 # inline comment\n1 1 0\n0 1 0\n4 0 1 2 3\n";
        let mesh = read_off(text.as_bytes()).unwrap();
        assert_eq!(mesh.vertex_count(), 4);
        // Quad fan-triangulated into two triangles.
        assert_eq!(mesh.triangle_count(), 2);
        assert!((mesh.surface_area() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_missing_header() {
        let err = read_off("3 1 0\n".as_bytes()).unwrap_err();
        assert!(matches!(err, OffError::Parse(_)));
    }

    #[test]
    fn rejects_out_of_range_face() {
        let text = "OFF\n3 1 0\n0 0 0\n1 0 0\n0 1 0\n3 0 1 5\n";
        let err = read_off(text.as_bytes()).unwrap_err();
        let msg = format!("{err}");
        assert!(msg.contains("beyond count"), "{msg}");
    }

    #[test]
    fn rejects_truncated_vertices() {
        let text = "OFF\n3 1 0\n0 0 0\n1 0 0\n";
        assert!(read_off(text.as_bytes()).is_err());
    }
}
