//! Loop subdivision surfaces.
//!
//! The paper's membrane FEM uses the Loop-subdivision basis (Cirak et al.,
//! §2.2 "For the FEM membrane force calculations, Loop subdivision approach
//! is applied"). The force model in `apr-membrane` uses linear elements (see
//! DESIGN.md substitution table), but mesh *generation* still offers true
//! Loop subdivision so refined cell meshes inherit its C² smoothness away
//! from irregular vertices.

use crate::topology::MeshTopology;
use crate::tri_mesh::TriMesh;
use crate::vec3::Vec3;
use std::collections::HashMap;

/// Loop's β weight for a vertex of valence `n` (Warren's simplified form for
/// `n > 3`, 3/16 for `n = 3`).
pub fn loop_beta(n: usize) -> f64 {
    assert!(n >= 3, "closed triangle meshes have valence ≥ 3, got {n}");
    if n == 3 {
        3.0 / 16.0
    } else {
        3.0 / (8.0 * n as f64)
    }
}

/// One step of Loop subdivision on a **closed** triangle mesh.
///
/// Old vertices are repositioned by the valence-weighted one-ring average;
/// new edge vertices use the 3/8–3/8–1/8–1/8 stencil. Face count quadruples.
///
/// # Panics
/// Panics if the mesh has boundary edges (cell membranes are closed).
pub fn loop_subdivide(mesh: &TriMesh) -> TriMesh {
    let topo = MeshTopology::build(mesh);
    assert!(
        topo.edges.is_closed(),
        "loop_subdivide requires a closed mesh (no boundary edges)"
    );

    // Reposition original vertices.
    let mut vertices: Vec<Vec3> = Vec::with_capacity(mesh.vertex_count() + topo.edges.edges.len());
    for v in 0..mesh.vertex_count() {
        let neighbors = topo.neighbors(v);
        let n = neighbors.len();
        let beta = loop_beta(n);
        let ring: Vec3 = neighbors.iter().map(|&w| mesh.vertices[w as usize]).sum();
        vertices.push(mesh.vertices[v] * (1.0 - n as f64 * beta) + ring * beta);
    }

    // New edge vertices.
    let mut edge_vertex: HashMap<(u32, u32), u32> = HashMap::with_capacity(topo.edges.edges.len());
    for e in &topo.edges.edges {
        let (a, b) = (e.v[0], e.v[1]);
        let (oa, ob) = (e.opposite[0], e.opposite[1]);
        let p = (mesh.vertices[a as usize] + mesh.vertices[b as usize]) * (3.0 / 8.0)
            + (mesh.vertices[oa as usize] + mesh.vertices[ob as usize]) * (1.0 / 8.0);
        edge_vertex.insert((a, b), vertices.len() as u32);
        vertices.push(p);
    }

    // Re-triangulate: 1 → 4.
    let ev = |a: u32, b: u32| -> u32 { edge_vertex[&(a.min(b), a.max(b))] };
    let mut triangles = Vec::with_capacity(mesh.triangle_count() * 4);
    for &[a, b, c] in &mesh.triangles {
        let ab = ev(a, b);
        let bc = ev(b, c);
        let ca = ev(c, a);
        triangles.push([a, ab, ca]);
        triangles.push([ab, b, bc]);
        triangles.push([ca, bc, c]);
        triangles.push([ab, bc, ca]);
    }
    TriMesh::new(vertices, triangles)
}

/// Apply `steps` rounds of Loop subdivision.
pub fn loop_subdivide_n(mesh: &TriMesh, steps: u32) -> TriMesh {
    let mut m = mesh.clone();
    for _ in 0..steps {
        m = loop_subdivide(&m);
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::icosphere::{icosahedron, icosphere};
    use crate::topology::EdgeTopology;
    use std::f64::consts::PI;

    #[test]
    fn counts_quadruple() {
        let m0 = icosahedron();
        let m1 = loop_subdivide(&m0);
        assert_eq!(m1.triangle_count(), 80);
        assert_eq!(m1.vertex_count(), 42);
        assert!(EdgeTopology::build(&m1).is_closed());
    }

    #[test]
    fn beta_weights_are_convex() {
        for n in 3..12 {
            let beta = loop_beta(n);
            assert!(beta > 0.0);
            assert!(
                1.0 - n as f64 * beta > 0.0,
                "central weight positive, n={n}"
            );
        }
    }

    #[test]
    fn limit_surface_shrinks_inside_control_sphere() {
        // Loop subdivision is approximating: the limit of a convex control
        // mesh lies strictly inside it.
        let m0 = icosphere(1, 1.0);
        let m1 = loop_subdivide(&m0);
        let max_r = m1.vertices.iter().map(|v| v.norm()).fold(0.0f64, f64::max);
        assert!(max_r < 1.0 + 1e-12);
        let min_r = m1
            .vertices
            .iter()
            .map(|v| v.norm())
            .fold(f64::MAX, f64::min);
        assert!(min_r > 0.8, "should not collapse, min radius {min_r}");
    }

    #[test]
    fn repeated_subdivision_converges_to_smooth_surface() {
        // Volume ratio between successive subdivisions approaches 1 — each
        // further step shrinks the surface less than the previous one.
        let m1 = loop_subdivide_n(&icosahedron(), 2);
        let m2 = loop_subdivide(&m1);
        let m3 = loop_subdivide(&m2);
        let r12 = m2.enclosed_volume() / m1.enclosed_volume();
        let r23 = m3.enclosed_volume() / m2.enclosed_volume();
        assert!((r12 - 1.0).abs() < 0.05, "r12 = {r12}");
        assert!(
            (r23 - 1.0).abs() < (r12 - 1.0).abs(),
            "r23 = {r23} vs r12 = {r12}"
        );
    }

    #[test]
    fn sphere_control_mesh_stays_spherical() {
        // Subdividing a fine sphere keeps near-uniform radius (smoothness).
        let m = loop_subdivide(&icosphere(3, 1.0));
        let radii: Vec<f64> = m.vertices.iter().map(|v| v.norm()).collect();
        let mean = radii.iter().sum::<f64>() / radii.len() as f64;
        let spread = radii
            .iter()
            .map(|r| (r - mean).abs())
            .fold(0.0f64, f64::max);
        assert!(spread / mean < 0.01, "radius spread {spread}");
        // Surface area close to a sphere of the mean radius.
        let area = m.surface_area();
        let expected = 4.0 * PI * mean * mean;
        assert!((area - expected).abs() / expected < 0.02);
    }

    #[test]
    #[should_panic(expected = "closed mesh")]
    fn open_meshes_are_rejected() {
        use crate::vec3::Vec3;
        let open = TriMesh::new(vec![Vec3::ZERO, Vec3::X, Vec3::Y], vec![[0, 1, 2]]);
        let _ = loop_subdivide(&open);
    }
}
