//! Indexed triangle surface mesh.

use crate::vec3::Vec3;

/// An indexed triangle mesh describing a closed (or open) surface.
///
/// Triangles are stored as vertex-index triples with counter-clockwise
/// winding producing outward normals for closed surfaces.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TriMesh {
    /// Vertex positions.
    pub vertices: Vec<Vec3>,
    /// Triangles as CCW vertex-index triples.
    pub triangles: Vec<[u32; 3]>,
}

impl TriMesh {
    /// New mesh from raw parts, validating indices.
    ///
    /// # Panics
    /// Panics if a triangle references a missing vertex or repeats a vertex.
    pub fn new(vertices: Vec<Vec3>, triangles: Vec<[u32; 3]>) -> Self {
        let n = vertices.len() as u32;
        for (t, tri) in triangles.iter().enumerate() {
            assert!(
                tri.iter().all(|&v| v < n),
                "triangle {t} references vertex beyond {n}: {tri:?}"
            );
            assert!(
                tri[0] != tri[1] && tri[1] != tri[2] && tri[0] != tri[2],
                "triangle {t} is degenerate: {tri:?}"
            );
        }
        Self {
            vertices,
            triangles,
        }
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.vertices.len()
    }

    /// Number of triangles.
    pub fn triangle_count(&self) -> usize {
        self.triangles.len()
    }

    /// Positions of a triangle's corners.
    #[inline]
    pub fn triangle_vertices(&self, t: usize) -> [Vec3; 3] {
        let [a, b, c] = self.triangles[t];
        [
            self.vertices[a as usize],
            self.vertices[b as usize],
            self.vertices[c as usize],
        ]
    }

    /// Area of triangle `t`.
    #[inline]
    pub fn triangle_area(&self, t: usize) -> f64 {
        let [a, b, c] = self.triangle_vertices(t);
        0.5 * (b - a).cross(c - a).norm()
    }

    /// Unit normal of triangle `t` (CCW outward for closed meshes).
    #[inline]
    pub fn triangle_normal(&self, t: usize) -> Vec3 {
        let [a, b, c] = self.triangle_vertices(t);
        (b - a).cross(c - a).normalized()
    }

    /// Centroid of triangle `t`.
    #[inline]
    pub fn triangle_centroid(&self, t: usize) -> Vec3 {
        let [a, b, c] = self.triangle_vertices(t);
        (a + b + c) / 3.0
    }

    /// Total surface area.
    pub fn surface_area(&self) -> f64 {
        (0..self.triangle_count())
            .map(|t| self.triangle_area(t))
            .sum()
    }

    /// Signed enclosed volume by the divergence theorem
    /// (`V = Σ (a · (b × c)) / 6`); positive for outward-wound closed meshes.
    pub fn enclosed_volume(&self) -> f64 {
        self.triangles
            .iter()
            .map(|&[a, b, c]| {
                let (a, b, c) = (
                    self.vertices[a as usize],
                    self.vertices[b as usize],
                    self.vertices[c as usize],
                );
                a.dot(b.cross(c)) / 6.0
            })
            .sum()
    }

    /// Mean of all vertex positions.
    pub fn vertex_centroid(&self) -> Vec3 {
        assert!(!self.vertices.is_empty(), "mesh has no vertices");
        self.vertices.iter().copied().sum::<Vec3>() / self.vertices.len() as f64
    }

    /// Volume-weighted centroid of the enclosed solid.
    pub fn volume_centroid(&self) -> Vec3 {
        let mut vol = 0.0;
        let mut c = Vec3::ZERO;
        for &[a, b, c_ix] in &self.triangles {
            let (a, b, cc) = (
                self.vertices[a as usize],
                self.vertices[b as usize],
                self.vertices[c_ix as usize],
            );
            let v = a.dot(b.cross(cc)) / 6.0;
            vol += v;
            c += (a + b + cc) * (v / 4.0);
        }
        assert!(vol.abs() > 0.0, "mesh encloses no volume");
        c / vol
    }

    /// Axis-aligned bounding box `(min, max)`.
    pub fn bounding_box(&self) -> (Vec3, Vec3) {
        assert!(!self.vertices.is_empty(), "mesh has no vertices");
        let mut lo = self.vertices[0];
        let mut hi = self.vertices[0];
        for &v in &self.vertices[1..] {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        (lo, hi)
    }

    /// Translate every vertex by `d`.
    pub fn translate(&mut self, d: Vec3) {
        for v in &mut self.vertices {
            *v += d;
        }
    }

    /// Uniformly scale about the origin.
    pub fn scale(&mut self, s: f64) {
        for v in &mut self.vertices {
            *v *= s;
        }
    }

    /// Rotate every vertex about the origin around `axis` by `angle` rad.
    pub fn rotate(&mut self, axis: Vec3, angle: f64) {
        for v in &mut self.vertices {
            *v = v.rotate_about(axis, angle);
        }
    }

    /// Area-weighted vertex normals (unit length).
    pub fn vertex_normals(&self) -> Vec<Vec3> {
        let mut normals = vec![Vec3::ZERO; self.vertex_count()];
        for &[a, b, c] in &self.triangles {
            let (pa, pb, pc) = (
                self.vertices[a as usize],
                self.vertices[b as usize],
                self.vertices[c as usize],
            );
            // Cross product magnitude is 2×area: area weighting for free.
            let n = (pb - pa).cross(pc - pa);
            normals[a as usize] += n;
            normals[b as usize] += n;
            normals[c as usize] += n;
        }
        for n in &mut normals {
            if let Some(u) = n.try_normalize(1e-300) {
                *n = u;
            }
        }
        normals
    }

    /// One-ring vertex areas (one third of each incident triangle's area) —
    /// the barycentric lumped mass used by membrane FEM.
    pub fn vertex_areas(&self) -> Vec<f64> {
        let mut areas = vec![0.0; self.vertex_count()];
        for (t, &[a, b, c]) in self.triangles.iter().enumerate() {
            let third = self.triangle_area(t) / 3.0;
            areas[a as usize] += third;
            areas[b as usize] += third;
            areas[c as usize] += third;
        }
        areas
    }

    /// Flip the winding (and thus normals) of every triangle.
    pub fn flip_winding(&mut self) {
        for tri in &mut self.triangles {
            tri.swap(1, 2);
        }
    }

    /// True if every vertex coordinate is finite.
    pub fn is_finite(&self) -> bool {
        self.vertices.iter().all(|v| v.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Unit-ish tetrahedron with outward winding.
    pub(crate) fn tetrahedron() -> TriMesh {
        let v = vec![
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
            Vec3::new(0.0, 0.0, 1.0),
        ];
        // Outward-facing winding for each face.
        let t = vec![[0u32, 2, 1], [0, 1, 3], [0, 3, 2], [1, 2, 3]];
        TriMesh::new(v, t)
    }

    #[test]
    fn tetrahedron_volume_and_area() {
        let m = tetrahedron();
        assert!((m.enclosed_volume() - 1.0 / 6.0).abs() < 1e-12);
        // 3 right triangles of area 1/2 plus the oblique face √3/2.
        let expected = 1.5 + 3f64.sqrt() / 2.0;
        assert!((m.surface_area() - expected).abs() < 1e-12);
    }

    #[test]
    fn flipping_winding_negates_volume() {
        let mut m = tetrahedron();
        let v = m.enclosed_volume();
        m.flip_winding();
        assert!((m.enclosed_volume() + v).abs() < 1e-12);
    }

    #[test]
    fn translation_preserves_volume_and_area() {
        let mut m = tetrahedron();
        let (v0, a0) = (m.enclosed_volume(), m.surface_area());
        m.translate(Vec3::new(5.0, -3.0, 2.0));
        assert!((m.enclosed_volume() - v0).abs() < 1e-9);
        assert!((m.surface_area() - a0).abs() < 1e-9);
    }

    #[test]
    fn scaling_scales_volume_cubically() {
        let mut m = tetrahedron();
        let v0 = m.enclosed_volume();
        m.scale(2.0);
        assert!((m.enclosed_volume() - 8.0 * v0).abs() < 1e-9);
    }

    #[test]
    fn rotation_preserves_metrics() {
        let mut m = tetrahedron();
        let (v0, a0) = (m.enclosed_volume(), m.surface_area());
        m.rotate(Vec3::new(1.0, 1.0, 0.3), 1.234);
        assert!((m.enclosed_volume() - v0).abs() < 1e-9);
        assert!((m.surface_area() - a0).abs() < 1e-9);
    }

    #[test]
    fn vertex_areas_sum_to_surface_area() {
        let m = tetrahedron();
        let sum: f64 = m.vertex_areas().iter().sum();
        assert!((sum - m.surface_area()).abs() < 1e-12);
    }

    #[test]
    fn volume_centroid_of_tetrahedron() {
        let m = tetrahedron();
        let c = m.volume_centroid();
        assert!((c - Vec3::splat(0.25)).norm() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn degenerate_triangle_rejected() {
        let _ = TriMesh::new(vec![Vec3::ZERO, Vec3::X], vec![[0, 0, 1]]);
    }

    #[test]
    #[should_panic(expected = "references vertex")]
    fn out_of_range_index_rejected() {
        let _ = TriMesh::new(vec![Vec3::ZERO, Vec3::X], vec![[0, 1, 2]]);
    }
}
