//! Minimal 3-component vector used throughout the workspace.
//!
//! Deliberately plain: `#[repr(C)]` over three `f64`s so slices of vertices
//! can be viewed as flat scalar arrays by the solvers, with only the
//! operations the physics needs.

use std::ops::{
    Add, AddAssign, Div, DivAssign, Index, IndexMut, Mul, MulAssign, Neg, Sub, SubAssign,
};

/// A 3-vector of `f64` components.
#[repr(C)]
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    pub x: f64,
    pub y: f64,
    pub z: f64,
}

impl Vec3 {
    /// All-zero vector.
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };
    /// Unit x.
    pub const X: Vec3 = Vec3 {
        x: 1.0,
        y: 0.0,
        z: 0.0,
    };
    /// Unit y.
    pub const Y: Vec3 = Vec3 {
        x: 0.0,
        y: 1.0,
        z: 0.0,
    };
    /// Unit z.
    pub const Z: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 1.0,
    };

    /// Construct from components.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Self { x, y, z }
    }

    /// Vector with all components equal to `v`.
    #[inline]
    pub const fn splat(v: f64) -> Self {
        Self { x: v, y: v, z: v }
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, o: Vec3) -> f64 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    /// Cross product.
    #[inline]
    pub fn cross(self, o: Vec3) -> Vec3 {
        Vec3::new(
            self.y * o.z - self.z * o.y,
            self.z * o.x - self.x * o.z,
            self.x * o.y - self.y * o.x,
        )
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Squared norm (no sqrt).
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.dot(self)
    }

    /// Unit vector in this direction.
    ///
    /// # Panics
    /// Panics (debug) on a zero vector; use [`Vec3::try_normalize`] when the
    /// input may vanish.
    #[inline]
    pub fn normalized(self) -> Vec3 {
        let n = self.norm();
        debug_assert!(n > 0.0, "cannot normalize the zero vector");
        self / n
    }

    /// Unit vector, or `None` if the norm is below `eps`.
    #[inline]
    pub fn try_normalize(self, eps: f64) -> Option<Vec3> {
        let n = self.norm();
        (n > eps).then(|| self / n)
    }

    /// Distance to another point.
    #[inline]
    pub fn distance(self, o: Vec3) -> f64 {
        (self - o).norm()
    }

    /// Squared distance to another point.
    #[inline]
    pub fn distance_sq(self, o: Vec3) -> f64 {
        (self - o).norm_sq()
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x.min(o.x), self.y.min(o.y), self.z.min(o.z))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x.max(o.x), self.y.max(o.y), self.z.max(o.z))
    }

    /// Component-wise absolute value.
    #[inline]
    pub fn abs(self) -> Vec3 {
        Vec3::new(self.x.abs(), self.y.abs(), self.z.abs())
    }

    /// Linear interpolation `self + t (o − self)`.
    #[inline]
    pub fn lerp(self, o: Vec3, t: f64) -> Vec3 {
        self + (o - self) * t
    }

    /// Largest component.
    #[inline]
    pub fn max_component(self) -> f64 {
        self.x.max(self.y).max(self.z)
    }

    /// All components finite?
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }

    /// Components as an array.
    #[inline]
    pub fn to_array(self) -> [f64; 3] {
        [self.x, self.y, self.z]
    }

    /// Any orthogonal unit vector (used to seed local frames).
    pub fn any_orthonormal(self) -> Vec3 {
        let n = self.normalized();
        let trial = if n.x.abs() < 0.9 { Vec3::X } else { Vec3::Y };
        (trial - n * trial.dot(n)).normalized()
    }

    /// Rotate about a unit `axis` by `angle` radians (Rodrigues' formula).
    pub fn rotate_about(self, axis: Vec3, angle: f64) -> Vec3 {
        let k = axis.normalized();
        let (s, c) = angle.sin_cos();
        self * c + k.cross(self) * s + k * (k.dot(self) * (1.0 - c))
    }
}

impl From<[f64; 3]> for Vec3 {
    fn from(a: [f64; 3]) -> Self {
        Vec3::new(a[0], a[1], a[2])
    }
}

impl Index<usize> for Vec3 {
    type Output = f64;
    #[inline]
    fn index(&self, i: usize) -> &f64 {
        match i {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            _ => panic!("Vec3 index out of range: {i}"),
        }
    }
}

impl IndexMut<usize> for Vec3 {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        match i {
            0 => &mut self.x,
            1 => &mut self.y,
            2 => &mut self.z,
            _ => panic!("Vec3 index out of range: {i}"),
        }
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, o: Vec3) {
        *self = *self + o;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, o: Vec3) {
        *self = *self - o;
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, s: f64) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }
}

impl Mul<Vec3> for f64 {
    type Output = Vec3;
    #[inline]
    fn mul(self, v: Vec3) -> Vec3 {
        v * self
    }
}

impl MulAssign<f64> for Vec3 {
    #[inline]
    fn mul_assign(&mut self, s: f64) {
        *self = *self * s;
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, s: f64) -> Vec3 {
        Vec3::new(self.x / s, self.y / s, self.z / s)
    }
}

impl DivAssign<f64> for Vec3 {
    #[inline]
    fn div_assign(&mut self, s: f64) {
        *self = *self / s;
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl std::iter::Sum for Vec3 {
    fn sum<I: Iterator<Item = Vec3>>(iter: I) -> Vec3 {
        iter.fold(Vec3::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn cross_product_is_orthogonal() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-2.0, 0.5, 4.0);
        let c = a.cross(b);
        assert!(c.dot(a).abs() < 1e-12);
        assert!(c.dot(b).abs() < 1e-12);
    }

    #[test]
    fn rotation_preserves_norm_and_angle() {
        let v = Vec3::new(1.0, 2.0, -0.5);
        let r = v.rotate_about(Vec3::Z, std::f64::consts::FRAC_PI_2);
        assert!((r.norm() - v.norm()).abs() < 1e-12);
        // Rotating x̂ by 90° about ẑ gives ŷ.
        let e = Vec3::X.rotate_about(Vec3::Z, std::f64::consts::FRAC_PI_2);
        assert!((e - Vec3::Y).norm() < 1e-12);
    }

    #[test]
    fn any_orthonormal_is_orthogonal_unit() {
        for v in [Vec3::X, Vec3::Y, Vec3::Z, Vec3::new(0.3, -0.4, 0.5)] {
            let o = v.any_orthonormal();
            assert!(o.dot(v.normalized()).abs() < 1e-12);
            assert!((o.norm() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn indexing_matches_fields() {
        let v = Vec3::new(4.0, 5.0, 6.0);
        assert_eq!(v[0], 4.0);
        assert_eq!(v[1], 5.0);
        assert_eq!(v[2], 6.0);
    }

    proptest! {
        #[test]
        fn lerp_endpoints(ax in -1e3..1e3f64, ay in -1e3..1e3f64, az in -1e3..1e3f64,
                          bx in -1e3..1e3f64, by in -1e3..1e3f64, bz in -1e3..1e3f64) {
            let a = Vec3::new(ax, ay, az);
            let b = Vec3::new(bx, by, bz);
            prop_assert!((a.lerp(b, 0.0) - a).norm() < 1e-9);
            prop_assert!((a.lerp(b, 1.0) - b).norm() < 1e-9);
        }

        #[test]
        fn triangle_inequality(ax in -1e3..1e3f64, ay in -1e3..1e3f64, az in -1e3..1e3f64,
                               bx in -1e3..1e3f64, by in -1e3..1e3f64, bz in -1e3..1e3f64) {
            let a = Vec3::new(ax, ay, az);
            let b = Vec3::new(bx, by, bz);
            prop_assert!((a + b).norm() <= a.norm() + b.norm() + 1e-9);
        }

        #[test]
        fn lagrange_identity(ax in -10.0..10.0f64, ay in -10.0..10.0f64, az in -10.0..10.0f64,
                             bx in -10.0..10.0f64, by in -10.0..10.0f64, bz in -10.0..10.0f64) {
            // |a×b|² + (a·b)² = |a|²|b|²
            let a = Vec3::new(ax, ay, az);
            let b = Vec3::new(bx, by, bz);
            let lhs = a.cross(b).norm_sq() + a.dot(b) * a.dot(b);
            let rhs = a.norm_sq() * b.norm_sq();
            prop_assert!((lhs - rhs).abs() <= 1e-9 * (1.0 + rhs));
        }
    }
}
