//! Mesh-quality metrics used by tests, diagnostics and the insertion
//! pipeline (deformed-cell sanity checks before re-use, paper §2.4.3).

use crate::tri_mesh::TriMesh;

/// Summary statistics of mesh triangle quality.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualityReport {
    /// Minimum triangle aspect quality over the mesh (1 = equilateral, → 0
    /// degenerate), computed as `4√3·A / Σl²`.
    pub min_triangle_quality: f64,
    /// Mean triangle quality.
    pub mean_triangle_quality: f64,
    /// Ratio of longest to shortest edge over the whole mesh.
    pub edge_length_ratio: f64,
    /// Mean edge length.
    pub mean_edge_length: f64,
}

/// Aspect quality of a single triangle: `4√3·A / (l₀² + l₁² + l₂²)`,
/// normalized so an equilateral triangle scores exactly 1.
pub fn triangle_quality(mesh: &TriMesh, t: usize) -> f64 {
    let [a, b, c] = mesh.triangle_vertices(t);
    let l2 = (b - a).norm_sq() + (c - b).norm_sq() + (a - c).norm_sq();
    if l2 == 0.0 {
        return 0.0;
    }
    4.0 * 3f64.sqrt() * mesh.triangle_area(t) / l2
}

/// Compute a [`QualityReport`] for a mesh.
///
/// # Panics
/// Panics on an empty mesh.
pub fn quality_report(mesh: &TriMesh) -> QualityReport {
    assert!(mesh.triangle_count() > 0, "mesh has no triangles");
    let mut min_q = f64::MAX;
    let mut sum_q = 0.0;
    let mut min_edge = f64::MAX;
    let mut max_edge = 0.0f64;
    let mut sum_edge = 0.0;
    let mut n_edges = 0usize;
    for t in 0..mesh.triangle_count() {
        let q = triangle_quality(mesh, t);
        min_q = min_q.min(q);
        sum_q += q;
        let [a, b, c] = mesh.triangle_vertices(t);
        for l in [(b - a).norm(), (c - b).norm(), (a - c).norm()] {
            min_edge = min_edge.min(l);
            max_edge = max_edge.max(l);
            sum_edge += l;
            n_edges += 1;
        }
    }
    QualityReport {
        min_triangle_quality: min_q,
        mean_triangle_quality: sum_q / mesh.triangle_count() as f64,
        edge_length_ratio: max_edge / min_edge,
        mean_edge_length: sum_edge / n_edges as f64,
    }
}

/// Check that a deformed mesh is still physically sane: finite coordinates,
/// no inverted volume relative to the reference sign, and triangle quality
/// above `min_quality`. Used before re-using deformed RBC shapes on window
/// moves (paper §2.4.3: "optimally re-use deformed RBC shapes").
pub fn is_sane_deformation(mesh: &TriMesh, reference_volume: f64, min_quality: f64) -> bool {
    if !mesh.is_finite() {
        return false;
    }
    let v = mesh.enclosed_volume();
    if v.signum() != reference_volume.signum() {
        return false;
    }
    // Volume should remain within a generous physiologic band: RBC interiors
    // are incompressible, so a halving or doubling signals mesh breakage.
    let ratio = v / reference_volume;
    if !(0.5..2.0).contains(&ratio) {
        return false;
    }
    (0..mesh.triangle_count()).all(|t| triangle_quality(mesh, t) >= min_quality)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::biconcave::biconcave_rbc_mesh;
    use crate::icosphere::icosphere;
    use crate::vec3::Vec3;

    #[test]
    fn equilateral_triangle_scores_one() {
        let m = TriMesh::new(
            vec![
                Vec3::new(0.0, 0.0, 0.0),
                Vec3::new(1.0, 0.0, 0.0),
                Vec3::new(0.5, 3f64.sqrt() / 2.0, 0.0),
            ],
            vec![[0, 1, 2]],
        );
        assert!((triangle_quality(&m, 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sliver_scores_poorly() {
        let m = TriMesh::new(
            vec![
                Vec3::new(0.0, 0.0, 0.0),
                Vec3::new(1.0, 0.0, 0.0),
                Vec3::new(0.5, 1e-4, 0.0),
            ],
            vec![[0, 1, 2]],
        );
        assert!(triangle_quality(&m, 0) < 1e-3);
    }

    #[test]
    fn icosphere_quality_is_high() {
        let r = quality_report(&icosphere(3, 1.0));
        assert!(r.min_triangle_quality > 0.6, "{r:?}");
        assert!(r.mean_triangle_quality > 0.8, "{r:?}");
        assert!(r.edge_length_ratio < 2.0, "{r:?}");
    }

    #[test]
    fn biconcave_mesh_is_usable_for_fem() {
        let r = quality_report(&biconcave_rbc_mesh(3, 1.0));
        // The dimple squeezes triangles but must not produce slivers.
        assert!(r.min_triangle_quality > 0.1, "{r:?}");
    }

    #[test]
    fn sane_deformation_detects_blowup() {
        let m = icosphere(2, 1.0);
        let v0 = m.enclosed_volume();
        assert!(is_sane_deformation(&m, v0, 0.3));
        let mut blown = m.clone();
        blown.vertices[0] *= 50.0;
        assert!(!is_sane_deformation(&blown, v0, 0.3));
        let mut nan = m.clone();
        nan.vertices[0].x = f64::NAN;
        assert!(!is_sane_deformation(&nan, v0, 0.3));
        let mut shrunk = m;
        shrunk.scale(0.5); // volume drops 8x
        assert!(!is_sane_deformation(&shrunk, v0, 0.3));
    }
}
