//! Biconcave discocyte (red blood cell) shape.
//!
//! Maps a unit icosphere onto the Evans–Fung biconcave surface
//!
//! ```text
//! z(ρ) = ±(R/2)·√(1 − ρ²)·(c₀ + c₁ρ² + c₂ρ⁴),   ρ = r/R
//! ```
//!
//! with the classic healthy-RBC coefficients c₀ = 0.207, c₁ = 2.003,
//! c₂ = −1.123, giving the undeformed shape whose deformation the Skalak +
//! bending membrane model resolves (paper §2.2).

use crate::icosphere::icosphere;
use crate::tri_mesh::TriMesh;
use crate::vec3::Vec3;

/// Parameters of the Evans–Fung biconcave profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BiconcaveShape {
    /// Cell radius `R` (half the maximum diameter).
    pub radius: f64,
    /// Profile coefficients `c₀, c₁, c₂`.
    pub coefficients: [f64; 3],
}

impl BiconcaveShape {
    /// Healthy human RBC: Evans–Fung 1972 coefficients at radius `radius`.
    pub fn healthy(radius: f64) -> Self {
        assert!(radius > 0.0, "radius must be positive, got {radius}");
        Self {
            radius,
            coefficients: [0.207, 2.003, -1.123],
        }
    }

    /// Half-thickness of the shape at normalized radial position `rho ∈ [0,1]`.
    pub fn half_thickness(&self, rho: f64) -> f64 {
        let rho = rho.clamp(0.0, 1.0);
        let r2 = rho * rho;
        let [c0, c1, c2] = self.coefficients;
        0.5 * self.radius * (1.0 - r2).max(0.0).sqrt() * (c0 + c1 * r2 + c2 * r2 * r2)
    }

    /// Dimple-to-rim thickness ratio (healthy cells are thinnest at the
    /// center: ratio < 1).
    pub fn dimple_ratio(&self) -> f64 {
        let rim = (0..=100)
            .map(|i| self.half_thickness(i as f64 / 100.0))
            .fold(0.0f64, f64::max);
        self.half_thickness(0.0) / rim
    }

    /// Map a point from the unit sphere onto the biconcave surface. The
    /// equatorial direction is preserved; the axial (z) coordinate is
    /// compressed to the profile.
    pub fn map_from_unit_sphere(&self, p: Vec3) -> Vec3 {
        let rho = (p.x * p.x + p.y * p.y).sqrt().min(1.0);
        let z = self.half_thickness(rho);
        Vec3::new(
            self.radius * p.x,
            self.radius * p.y,
            z * p.z.signum() * scale_z(p, z),
        )
    }
}

/// Axial scaling: vertices at |z| = max for the given ρ ring map to the full
/// profile height; intermediate ones interpolate so the surface stays smooth
/// near the rim where the sphere's rings converge.
fn scale_z(p: Vec3, _z: f64) -> f64 {
    // On the unit sphere z = ±√(1−ρ²); normalize so the extreme ring maps to 1.
    let rho2 = p.x * p.x + p.y * p.y;
    let z_max = (1.0 - rho2).max(0.0).sqrt();
    if z_max < 1e-12 {
        1.0
    } else {
        (p.z.abs() / z_max).clamp(0.0, 1.0)
    }
}

/// Triangulated healthy RBC mesh of radius `radius` from an icosphere with
/// `subdivisions` refinement steps (3 reproduces the paper's 642/1280 mesh).
pub fn biconcave_rbc_mesh(subdivisions: u32, radius: f64) -> TriMesh {
    let shape = BiconcaveShape::healthy(radius);
    let mut mesh = icosphere(subdivisions, 1.0);
    for v in &mut mesh.vertices {
        *v = shape.map_from_unit_sphere(*v);
    }
    mesh
}

#[cfg(test)]
mod tests {
    use super::*;

    const R: f64 = 3.91e-6; // healthy RBC radius, m

    #[test]
    fn profile_is_biconcave() {
        let s = BiconcaveShape::healthy(R);
        // Thinner at the dimple than at the rim.
        assert!(s.dimple_ratio() < 0.5, "ratio = {}", s.dimple_ratio());
        // Thickness vanishes at the rim edge.
        assert!(s.half_thickness(1.0).abs() < 1e-12);
        // Positive everywhere inside.
        for i in 0..100 {
            assert!(s.half_thickness(i as f64 / 100.0) >= 0.0);
        }
    }

    #[test]
    fn classic_dimensions_recovered() {
        let s = BiconcaveShape::healthy(R);
        // Max thickness ≈ 2.0–2.6 µm for a 7.8 µm cell.
        let max_half = (0..=1000)
            .map(|i| s.half_thickness(i as f64 / 1000.0))
            .fold(0.0f64, f64::max);
        let thickness = 2.0 * max_half;
        assert!(
            (1.8e-6..3.0e-6).contains(&thickness),
            "max thickness = {thickness}"
        );
        // Dimple thickness ≈ 0.8–1 µm.
        let dimple = 2.0 * s.half_thickness(0.0);
        assert!((0.5e-6..1.2e-6).contains(&dimple), "dimple = {dimple}");
    }

    #[test]
    fn mesh_volume_and_area_match_physiology() {
        let m = biconcave_rbc_mesh(3, R);
        let volume = m.enclosed_volume();
        let area = m.surface_area();
        // Healthy RBC: V ≈ 94 µm³, A ≈ 135 µm² — accept the model range.
        assert!(
            (60e-18..120e-18).contains(&volume),
            "volume = {} µm³",
            volume * 1e18
        );
        assert!(
            (100e-12..160e-12).contains(&area),
            "area = {} µm²",
            area * 1e12
        );
        // Reduced volume well below 1 (a sphere of the same area).
        let r_sphere = (area / (4.0 * std::f64::consts::PI)).sqrt();
        let v_sphere = 4.0 / 3.0 * std::f64::consts::PI * r_sphere.powi(3);
        let reduced = volume / v_sphere;
        assert!((0.4..0.85).contains(&reduced), "reduced volume = {reduced}");
    }

    #[test]
    fn mesh_is_closed_and_finite() {
        let m = biconcave_rbc_mesh(3, R);
        assert!(m.is_finite());
        assert!(crate::topology::EdgeTopology::build(&m).is_closed());
        assert_eq!(m.vertex_count(), 642);
        assert_eq!(m.triangle_count(), 1280);
    }

    #[test]
    fn mesh_is_symmetric_under_z_flip() {
        let m = biconcave_rbc_mesh(2, R);
        let vol_top: f64 = m.vertices.iter().filter(|v| v.z > 0.0).count() as f64;
        let vol_bot: f64 = m.vertices.iter().filter(|v| v.z < 0.0).count() as f64;
        assert!((vol_top - vol_bot).abs() <= 2.0, "z symmetry broken");
        // Extent in x and y equals the diameter; z much thinner.
        let (lo, hi) = m.bounding_box();
        assert!((hi.x - lo.x - 2.0 * R).abs() < 0.05 * R);
        assert!(hi.z - lo.z < 0.5 * (hi.x - lo.x));
    }
}
