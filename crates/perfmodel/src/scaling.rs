//! Strong and weak scaling predictions (paper Figures 7 and 8).

use crate::cost::{step_cost, ProblemSpec};
use crate::machine::MachineSpec;

/// One point on a scaling curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalingPoint {
    /// Node count.
    pub nodes: usize,
    /// Predicted wall time per coarse step, s.
    pub step_time: f64,
    /// Speedup relative to the series baseline (strong scaling) or
    /// efficiency relative to it (weak scaling).
    pub relative: f64,
}

/// Strong scaling: fixed problem, growing node counts. `relative` is the
/// speedup versus the first entry of `node_counts`.
pub fn strong_scaling(
    machine: &MachineSpec,
    problem: &ProblemSpec,
    node_counts: &[usize],
) -> Vec<ScalingPoint> {
    assert!(!node_counts.is_empty());
    let base = step_cost(machine, node_counts[0], problem).total();
    node_counts
        .iter()
        .map(|&nodes| {
            let t = step_cost(machine, nodes, problem).total();
            ScalingPoint {
                nodes,
                step_time: t,
                relative: base / t,
            }
        })
        .collect()
}

/// Weak scaling: problem grows with node count via `problem_for(nodes)`.
/// `relative` is parallel efficiency versus the step time at
/// `baseline_nodes` (the paper uses 8 nodes, §3.4).
pub fn weak_scaling<F: Fn(usize) -> ProblemSpec>(
    machine: &MachineSpec,
    problem_for: F,
    node_counts: &[usize],
    baseline_nodes: usize,
) -> Vec<ScalingPoint> {
    assert!(!node_counts.is_empty());
    let base = step_cost(machine, baseline_nodes, &problem_for(baseline_nodes)).total();
    node_counts
        .iter()
        .map(|&nodes| {
            let t = step_cost(machine, nodes, &problem_for(nodes)).total();
            ScalingPoint {
                nodes,
                step_time: t,
                relative: base / t,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure7_strong_scaling_shape() {
        // Paper: "moving from 32 nodes to 512 nodes showed a speedup of
        // over 6x" with the rolloff blamed on halo growth.
        let pts = strong_scaling(
            &MachineSpec::SUMMIT,
            &ProblemSpec::figure7(),
            &[32, 64, 128, 256, 512],
        );
        let s512 = pts.last().unwrap().relative;
        assert!(
            (4.0..10.0).contains(&s512),
            "32→512 speedup {s512}, expected ~6×"
        );
        // Monotone but sub-ideal at every point.
        for (i, p) in pts.iter().enumerate() {
            let ideal = p.nodes as f64 / pts[0].nodes as f64;
            assert!(p.relative < ideal + 1e-9, "node {} beats ideal", p.nodes);
            if i > 0 {
                let marginal = p.relative / pts[i - 1].relative;
                assert!(marginal > 1.0, "speedup must grow");
                assert!(marginal <= 2.0, "cannot beat ideal doubling");
            }
        }
    }

    #[test]
    fn figure8_weak_scaling_shape() {
        // Paper: ≥90% efficiency for all cases above 8 nodes; 1–4 node runs
        // faster than the 8-node baseline (not yet at full communication).
        let counts = [1usize, 2, 4, 8, 16, 32, 64, 128, 256];
        let pts = weak_scaling(&MachineSpec::SUMMIT, ProblemSpec::figure8, &counts, 8);
        for p in &pts {
            if p.nodes < 8 {
                assert!(
                    p.relative > 1.0,
                    "{} nodes should beat the 8-node baseline: {}",
                    p.nodes,
                    p.relative
                );
            } else {
                assert!(
                    p.relative > 0.88,
                    "{} nodes efficiency {} below 88%",
                    p.nodes,
                    p.relative
                );
            }
        }
        // Efficiency declines gently with node count beyond the baseline.
        let e16 = pts.iter().find(|p| p.nodes == 16).unwrap().relative;
        let e256 = pts.iter().find(|p| p.nodes == 256).unwrap().relative;
        assert!(e256 <= e16 + 1e-9);
    }

    #[test]
    fn strong_scaling_times_decrease() {
        let pts = strong_scaling(
            &MachineSpec::SUMMIT,
            &ProblemSpec::figure7(),
            &[32, 64, 128, 256, 512],
        );
        for w in pts.windows(2) {
            assert!(w[1].step_time < w[0].step_time);
        }
    }
}
