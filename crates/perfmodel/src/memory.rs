//! Memory and fluid-volume estimators (paper Tables 2 and 3).
//!
//! Table 3's arithmetic is reproduced exactly: "a lower bound of 408 bytes
//! of data per fluid point and 51 kilobytes per RBC (using 3 subdivision
//! steps of an initially icosahedral mesh, leading to 1280 elements and 642
//! vertices)".

/// Bytes per fluid lattice point (paper §3.6 lower bound).
pub const BYTES_PER_FLUID_POINT: f64 = 408.0;

/// Bytes per RBC (642-vertex mesh, paper §3.6).
pub const BYTES_PER_RBC: f64 = 51.0 * 1024.0;

/// Volume of one RBC, µm³.
pub const RBC_VOLUME_UM3: f64 = 94.0;

/// Memory requirement summary for one model component.
///
/// ```
/// use apr_perfmodel::MemoryEstimate;
/// // The paper's cerebral window row: 1.76e7 points, 2.9e4 RBCs.
/// let w = MemoryEstimate::from_counts(0.75, 1.76e7, 2.9e4);
/// assert!((w.fluid_bytes / 1e9 - 7.2).abs() < 0.1);   // "7.2 GB"
/// assert!((w.rbc_bytes / 1e9 - 1.48).abs() < 0.05);   // "1.48 GB"
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryEstimate {
    /// Lattice spacing, µm.
    pub dx_um: f64,
    /// Fluid lattice points.
    pub fluid_points: f64,
    /// Fluid memory, bytes.
    pub fluid_bytes: f64,
    /// Number of RBCs.
    pub rbc_count: f64,
    /// RBC memory, bytes.
    pub rbc_bytes: f64,
}

impl MemoryEstimate {
    /// Estimate from explicit point/cell counts (how Table 3 is stated).
    pub fn from_counts(dx_um: f64, fluid_points: f64, rbc_count: f64) -> Self {
        Self {
            dx_um,
            fluid_points,
            fluid_bytes: fluid_points * BYTES_PER_FLUID_POINT,
            rbc_count,
            rbc_bytes: rbc_count * BYTES_PER_RBC,
        }
    }

    /// Estimate for a fluid volume (µm³) resolved at `dx_um`, filled with
    /// RBCs at hematocrit `ht`.
    pub fn from_volume(dx_um: f64, volume_um3: f64, ht: f64) -> Self {
        let fluid_points = volume_um3 / dx_um.powi(3);
        let rbc_count = volume_um3 * ht / RBC_VOLUME_UM3;
        Self::from_counts(dx_um, fluid_points, rbc_count)
    }

    /// Total bytes.
    pub fn total_bytes(&self) -> f64 {
        self.fluid_bytes + self.rbc_bytes
    }

    /// Fluid volume in mL represented by the points (1 mL = 10⁹ µm³·10³ —
    /// i.e. 1 mL = 1 cm³ = 10¹² µm³).
    pub fn fluid_volume_ml(&self) -> f64 {
        self.fluid_points * self.dx_um.powi(3) / 1.0e12
    }
}

/// Fluid volume (mL) that fits in `memory_bytes` at spacing `dx_um` with
/// hematocrit `ht` of explicitly meshed RBCs — the capacity calculation
/// behind Table 2's volume-vs-resources comparison.
pub fn volume_capacity_ml(memory_bytes: f64, dx_um: f64, ht: f64) -> f64 {
    let bytes_per_um3 = BYTES_PER_FLUID_POINT / dx_um.powi(3) + ht * BYTES_PER_RBC / RBC_VOLUME_UM3;
    memory_bytes / bytes_per_um3 / 1.0e12
}

/// Paper Table 3 rows, computed from its stated counts.
pub fn table3_rows() -> [(&'static str, MemoryEstimate); 3] {
    [
        (
            "APR (window)",
            MemoryEstimate::from_counts(0.75, 1.76e7, 2.9e4),
        ),
        ("APR (bulk)", MemoryEstimate::from_counts(15.0, 1.58e8, 0.0)),
        ("eFSI", MemoryEstimate::from_counts(0.75, 1.47e13, 6.3e10)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    // The paper reports decimal units (1.76e7 pts × 408 B = "7.2 GB").
    const GB: f64 = 1.0e9;
    const PB: f64 = 1.0e15;

    #[test]
    fn table3_window_row_matches_paper() {
        // Paper: 1.76·10⁷ points → 7.2 GB; 2.9·10⁴ RBCs → 1.48 GB.
        let (_, w) = &table3_rows()[0];
        assert!(
            (w.fluid_bytes / GB - 7.2).abs() < 0.2,
            "{}",
            w.fluid_bytes / GB
        );
        assert!(
            (w.rbc_bytes / GB - 1.48).abs() < 0.05,
            "{}",
            w.rbc_bytes / GB
        );
    }

    #[test]
    fn table3_bulk_row_matches_paper() {
        // Paper: 1.58·10⁸ points → 64.4 GB, no explicit RBCs.
        let (_, b) = &table3_rows()[1];
        assert!(
            (b.fluid_bytes / GB - 64.4).abs() < 3.0,
            "{}",
            b.fluid_bytes / GB
        );
        assert_eq!(b.rbc_bytes, 0.0);
    }

    #[test]
    fn table3_efsi_row_matches_paper() {
        // Paper: 1.47·10¹³ points → 6.0 PB; 6.3·10¹⁰ RBCs → 3.2 PB.
        let (_, e) = &table3_rows()[2];
        assert!(
            (e.fluid_bytes / PB - 6.0).abs() < 0.6,
            "{}",
            e.fluid_bytes / PB
        );
        assert!((e.rbc_bytes / PB - 3.2).abs() < 0.3, "{}", e.rbc_bytes / PB);
        // Total ≈ 9.2 PB.
        assert!((e.total_bytes() / PB - 9.2).abs() < 0.9);
    }

    #[test]
    fn apr_fits_one_node_efsi_needs_petabytes() {
        // Paper §3.6: "APR can handle this problem by using under 100 GB of
        // memory instead of 9.2 PB" — 5 orders of magnitude.
        let rows = table3_rows();
        let apr_total = rows[0].1.total_bytes() + rows[1].1.total_bytes();
        let efsi_total = rows[2].1.total_bytes();
        assert!(apr_total < 100.0 * GB, "APR total {} GB", apr_total / GB);
        let ratio = efsi_total / apr_total;
        assert!(
            (4.0..6.0).contains(&ratio.log10()),
            "ratio 10^{}",
            ratio.log10()
        );
    }

    #[test]
    fn table2_volume_ratio_is_orders_of_magnitude() {
        // Table 2: same fine spacing (0.5 µm) — the eFSI window volume that
        // fits in 1536 V100s (≈24 TB GPU memory) vs the bulk volume APR
        // opens up (41 mL, the whole geometry).
        let gpu_mem = 1536.0 * 16.0 * GB;
        let efsi_ml = volume_capacity_ml(gpu_mem, 0.5, 0.40);
        // Paper reports 4.98·10⁻³ mL; the lower-bound model gives the same
        // order of magnitude.
        assert!(
            (1.0e-3..2.0e-2).contains(&efsi_ml),
            "eFSI capacity {efsi_ml} mL"
        );
        let apr_bulk_ml = 41.0;
        assert!(
            apr_bulk_ml / efsi_ml > 1.0e3,
            "gain {}",
            apr_bulk_ml / efsi_ml
        );
    }

    #[test]
    fn volume_round_trip() {
        let e = MemoryEstimate::from_volume(1.0, 1.0e12, 0.3);
        assert!((e.fluid_volume_ml() - 1.0).abs() < 1e-12);
        assert!((e.rbc_count - 1.0e12 * 0.3 / 94.0).abs() < 1.0);
    }
}
