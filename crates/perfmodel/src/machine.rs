//! Machine descriptions (paper §2.4.4 and the artifact appendix).

/// Hardware description of one machine used by the paper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineSpec {
    /// Human-readable name.
    pub name: &'static str,
    /// Bulk-fluid (CPU) tasks per node.
    pub cpu_tasks_per_node: usize,
    /// Window (GPU) tasks per node.
    pub gpu_tasks_per_node: usize,
    /// Sustained LBM site updates per second per CPU task.
    pub cpu_site_rate: f64,
    /// Sustained LBM site updates per second per GPU task.
    pub gpu_site_rate: f64,
    /// Sustained membrane-vertex updates per second per GPU task (FEM +
    /// IBM work for deformable cells).
    pub gpu_vertex_rate: f64,
    /// Inter-node network bandwidth per node, bytes/s.
    pub network_bandwidth: f64,
    /// Per-message network latency, seconds.
    pub network_latency: f64,
    /// GPU memory per GPU, bytes.
    pub gpu_memory: u64,
    /// Host memory per node, bytes.
    pub host_memory: u64,
}

impl MachineSpec {
    /// ORNL Summit: 2×22-core POWER9 + 6×16 GB V100 per node, NVLink
    /// 25 GB/s (paper artifact description), dual-rail EDR InfiniBand.
    /// Throughput rates are calibrated to published HARVEY-class LBM/FSI
    /// performance (GPU ≈ 5·10⁸ fused site-updates/s on V100; CPU task ≈
    /// 7·10⁶ on one POWER9 core).
    pub const SUMMIT: MachineSpec = MachineSpec {
        name: "Summit",
        cpu_tasks_per_node: 36,
        gpu_tasks_per_node: 6,
        cpu_site_rate: 7.0e6,
        gpu_site_rate: 5.0e8,
        gpu_vertex_rate: 3.0e7,
        network_bandwidth: 25.0e9,
        network_latency: 1.5e-6,
        gpu_memory: 16 * 1024 * 1024 * 1024,
        host_memory: 512 * 1024 * 1024 * 1024,
    };

    /// The paper's AWS instance (§3.6): 8×16 GB V100 + 48 Xeon vCPUs,
    /// 100 Gb/s network, 768 GB host + 256 GB GPU memory.
    pub const AWS_P3: MachineSpec = MachineSpec {
        name: "AWS p3dn-class",
        cpu_tasks_per_node: 48,
        gpu_tasks_per_node: 8,
        cpu_site_rate: 6.0e6,
        gpu_site_rate: 5.0e8,
        gpu_vertex_rate: 3.0e7,
        network_bandwidth: 12.5e9,
        network_latency: 3.0e-6,
        gpu_memory: 32 * 1024 * 1024 * 1024,
        host_memory: 768 * 1024 * 1024 * 1024,
    };

    /// Tasks per node.
    pub fn tasks_per_node(&self) -> usize {
        self.cpu_tasks_per_node + self.gpu_tasks_per_node
    }

    /// Total GPU memory per node, bytes.
    pub fn gpu_memory_per_node(&self) -> u64 {
        self.gpu_memory * self.gpu_tasks_per_node as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summit_matches_paper_description() {
        let m = MachineSpec::SUMMIT;
        assert_eq!(m.tasks_per_node(), 42);
        assert_eq!(m.gpu_tasks_per_node, 6);
        // 6 × 16 GB = 96 GB GPU memory per node.
        assert_eq!(m.gpu_memory_per_node(), 96 * 1024 * 1024 * 1024);
    }

    #[test]
    fn aws_matches_paper_description() {
        let m = MachineSpec::AWS_P3;
        assert_eq!(m.cpu_tasks_per_node, 48);
        assert_eq!(m.gpu_tasks_per_node, 8);
        // Paper: "256 GB of GPU memory and 768 GB of CPU memory".
        assert_eq!(m.gpu_memory_per_node(), 256 * 1024 * 1024 * 1024);
        assert_eq!(m.host_memory, 768 * 1024 * 1024 * 1024);
    }
}
