//! Performance and memory models for the paper's Summit/AWS results.
//!
//! The scaling figures (7–8) and resource tables (2–3) depend on machine
//! properties this reproduction cannot measure directly (repro band 2/5 —
//! no Summit, no V100s). This crate rebuilds them from first principles:
//! machine specs from the paper's artifact description ([`machine`]), a
//! per-step cost model derived from the algorithm's compute/halo/coupling
//! traffic ([`cost`]), scaling-series predictors ([`scaling`]), and the
//! exact 408 B/point + 51 kB/RBC memory arithmetic of §3.6 ([`memory`]).

pub mod calibrate;
pub mod cost;
pub mod machine;
pub mod memory;
pub mod scaling;
pub mod trace_fit;

pub use calibrate::{calibrate_host, measured_efficiency, KernelMeasurement};
pub use cost::{neighbor_fraction, step_cost, ProblemSpec, StepCost};
pub use machine::MachineSpec;
pub use memory::{table3_rows, volume_capacity_ml, MemoryEstimate};
pub use scaling::{strong_scaling, weak_scaling, ScalingPoint};
pub use trace_fit::{fit_step_rates, kernel_measurement_from_trace, FittedRates, StepGeometry};
