//! Per-step cost model for a coupled APR run.
//!
//! Built from the algorithm's actual work and traffic pattern:
//!
//! * **compute** — bulk LBM on CPU tasks and window LBM + FEM/IBM cell work
//!   on GPU tasks (×n substeps); perfectly parallel, ∝ 1/nodes. CPU and GPU
//!   ranks overlap in wall time.
//! * **coupling** — interpolation/restriction over the window's *coarse
//!   footprint*. The footprint is a tiny fraction of the bulk, so it lands
//!   on very few bulk tasks (often one); that work barely strong-scales and
//!   is the term that bends Figure 7's speedup away from ideal. It runs on
//!   CPU ranks, so it adds to the CPU side of the overlap.
//! * **halo** — per-task wide-halo exchange (IBM needs "several lattice
//!   points in each direction", §3.4); per-task surface shrinks as
//!   (volume/task)^{2/3}, modulated by the fraction of task faces that have
//!   neighbours (below ~8 nodes ranks lack their full neighbour complement
//!   — the paper's weak-scaling observation).

use crate::machine::MachineSpec;

/// Bytes exchanged per halo lattice site per step (outbound distributions
/// plus macroscopic data, f64).
pub const HALO_BYTES_PER_SITE: f64 = 80.0;

/// Halo width in sites (4-point IBM support).
pub const HALO_WIDTH: f64 = 4.0;

/// Site-updates-equivalent of interpolating/restoring one coarse footprint
/// node (trilinear gather + non-equilibrium rescale ≈ 2 LBM site updates).
pub const COUPLING_WORK_FACTOR: f64 = 2.0;

/// A coupled APR problem instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProblemSpec {
    /// Coarse (bulk) lattice points.
    pub bulk_points: f64,
    /// Fine (window) lattice points.
    pub window_points: f64,
    /// Grid-refinement ratio n (= fine substeps per coarse step).
    pub refinement: usize,
    /// Total membrane vertices across all cells in the window.
    pub cell_vertices: f64,
}

impl ProblemSpec {
    /// The paper's Figure 7 strong-scaling problem: 10.5 mm cube, 0.65 mm
    /// window, resolution ratio 10 (window Δx 0.5 µm ⇒ bulk 5 µm),
    /// ≈1M RBCs of 642 vertices.
    pub fn figure7() -> Self {
        let bulk = (10.5e3f64 / 5.0).powi(3);
        let window = (0.65e3f64 / 0.5).powi(3);
        Self {
            bulk_points: bulk,
            window_points: window,
            refinement: 10,
            cell_vertices: 1.0e6 * 642.0,
        }
    }

    /// The paper's Figure 8 weak-scaling problem *per node*: 9.1·10⁶ bulk +
    /// 8.0·10⁶ window points and 2400 cells per node, scaled by `nodes`
    /// (10 µm bulk / 0.5 µm window ⇒ n = 20, §3.4).
    pub fn figure8(nodes: usize) -> Self {
        let s = nodes as f64;
        Self {
            bulk_points: 9.1e6 * s,
            window_points: 8.0e6 * s,
            refinement: 20,
            cell_vertices: 2400.0 * s * 642.0,
        }
    }

    /// Coarse nodes covered by the window (the restriction footprint).
    pub fn window_footprint(&self) -> f64 {
        self.window_points / (self.refinement as f64).powi(3)
    }
}

/// Time breakdown of one coarse step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepCost {
    /// Bulk CPU compute time, s.
    pub cpu: f64,
    /// Window GPU compute time (all substeps), s.
    pub gpu: f64,
    /// Halo exchange time, s.
    pub halo: f64,
    /// Bulk↔window coupling (interpolation/restriction) time, s.
    pub coupling: f64,
}

impl StepCost {
    /// Wall time: CPU work + coupling (both on CPU ranks) overlaps the GPU
    /// work; halo exchange synchronizes everyone.
    pub fn total(&self) -> f64 {
        (self.cpu + self.coupling).max(self.gpu) + self.halo
    }
}

/// Fraction of task faces with a neighbouring task: approaches 1 as the
/// task grid grows; small grids have mostly boundary faces.
pub fn neighbor_fraction(tasks: usize) -> f64 {
    let g = (tasks as f64).powf(1.0 / 3.0).max(1.0);
    ((g - 1.0) / g).clamp(0.0, 1.0)
}

/// Predict the cost of one coarse step on `nodes` nodes of `machine`.
pub fn step_cost(machine: &MachineSpec, nodes: usize, problem: &ProblemSpec) -> StepCost {
    assert!(nodes > 0, "need at least one node");
    let n = problem.refinement as f64;
    let cpu_tasks = (machine.cpu_tasks_per_node * nodes) as f64;
    let gpu_tasks = (machine.gpu_tasks_per_node * nodes) as f64;

    let cpu = problem.bulk_points / cpu_tasks / machine.cpu_site_rate;
    let gpu = n
        * (problem.window_points / gpu_tasks / machine.gpu_site_rate
            + problem.cell_vertices / gpu_tasks / machine.gpu_vertex_rate);

    // Coupling: footprint work concentrated on the bulk tasks whose blocks
    // overlap the window.
    let footprint = problem.window_footprint();
    let bulk_per_task = problem.bulk_points / cpu_tasks;
    let overlap_tasks = (footprint / bulk_per_task).max(1.0);
    let coupling = COUPLING_WORK_FACTOR * footprint / (overlap_tasks * machine.cpu_site_rate);

    // Halo: per-task face area × width × bytes, once per bulk step and n
    // times per window substep; each node pushes its tasks' halos through
    // the node's links.
    let bulk_face = (problem.bulk_points / cpu_tasks).powf(2.0 / 3.0);
    let window_face = (problem.window_points / gpu_tasks).powf(2.0 / 3.0);
    let nf = neighbor_fraction((cpu_tasks + gpu_tasks) as usize);
    let halo_bytes_per_node = nf
        * 6.0
        * HALO_WIDTH
        * HALO_BYTES_PER_SITE
        * (machine.cpu_tasks_per_node as f64 * bulk_face
            + n * machine.gpu_tasks_per_node as f64 * window_face);
    let halo = halo_bytes_per_node / machine.network_bandwidth
        + nf * 6.0 * (1.0 + n) * machine.network_latency;

    StepCost {
        cpu,
        gpu,
        halo,
        coupling,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_scales_inversely_with_nodes() {
        let p = ProblemSpec::figure7();
        let m = MachineSpec::SUMMIT;
        let c32 = step_cost(&m, 32, &p);
        let c64 = step_cost(&m, 64, &p);
        assert!((c32.gpu / c64.gpu - 2.0).abs() < 0.01);
        assert!((c32.cpu / c64.cpu - 2.0).abs() < 0.01);
    }

    #[test]
    fn coupling_barely_scales_while_footprint_fits_one_task() {
        let p = ProblemSpec::figure7();
        let m = MachineSpec::SUMMIT;
        let c32 = step_cost(&m, 32, &p);
        let c64 = step_cost(&m, 64, &p);
        // Footprint (130³ coarse nodes) still inside a single bulk task at
        // these counts: coupling time identical.
        assert!((c32.coupling - c64.coupling).abs() / c32.coupling < 1e-9);
        assert!(c32.coupling > 0.0);
    }

    #[test]
    fn gpu_work_exceeds_plain_bulk_work() {
        // Paper §3.4: "most of the total time was spent on the GPUs solving
        // the cellular dynamics within the window".
        let p = ProblemSpec::figure7();
        let c = step_cost(&MachineSpec::SUMMIT, 64, &p);
        assert!(c.gpu > c.cpu, "gpu {} vs cpu {}", c.gpu, c.cpu);
    }

    #[test]
    fn neighbor_fraction_saturates() {
        assert_eq!(neighbor_fraction(1), 0.0);
        let f42 = neighbor_fraction(42);
        let f336 = neighbor_fraction(336);
        let f10752 = neighbor_fraction(10752);
        assert!(f42 < f336 && f336 < f10752);
        assert!(f10752 > 0.9);
        assert!(neighbor_fraction(4 * 42) / neighbor_fraction(8 * 42) < 0.97);
    }

    #[test]
    fn total_overlaps_cpu_with_gpu() {
        let c = StepCost {
            cpu: 1.0,
            gpu: 3.0,
            halo: 0.5,
            coupling: 0.2,
        };
        assert!((c.total() - 3.5).abs() < 1e-12);
        let c2 = StepCost {
            cpu: 3.0,
            gpu: 1.0,
            halo: 0.5,
            coupling: 0.2,
        };
        assert!((c2.total() - 3.7).abs() < 1e-12);
    }

    #[test]
    fn footprint_matches_refinement_cube() {
        let p = ProblemSpec::figure7();
        assert!((p.window_footprint() - (0.65e3f64 / 5.0).powi(3)).abs() < 1.0);
    }
}
