//! Calibrate machine-model work rates from a recorded telemetry trace.
//!
//! [`crate::calibrate`] closes the model↔measurement loop from a bench
//! MLUPS number; this module closes it from a *production* trace: the
//! per-phase aggregates the `apr-telemetry` profiler accumulates while an
//! [`AprEngine`](../../apr_core) run is instrumented. The fit decomposes
//! measured step wall time into the three terms the task-timeline model
//! uses — bulk (CPU) node work, window (GPU) node work, halo traffic —
//! and hands back [`apr_parallel::WorkRates`] so timeline predictions and
//! the live run share one rate base.

use apr_parallel::WorkRates;
use apr_telemetry::PhaseStat;

/// Per-step problem size the trace was recorded at, needed to turn phase
/// seconds into per-node rates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepGeometry {
    /// Coarse (bulk) fluid nodes updated once per coarse step.
    pub coarse_fluid_nodes: u64,
    /// Fine (window) fluid nodes, each updated `refinement` times per
    /// coarse step.
    pub fine_fluid_nodes: u64,
    /// Refinement ratio n (fine substeps per coarse step).
    pub refinement: u64,
    /// Halo sites exchanged per coarse step (0 when the run has no halo
    /// exchange).
    pub halo_sites: u64,
}

impl StepGeometry {
    /// Site updates per coarse step (the MLUPS denominator).
    pub fn site_updates_per_step(&self) -> u64 {
        self.coarse_fluid_nodes + self.fine_fluid_nodes * self.refinement
    }
}

/// Work rates fitted from a trace, plus the measurement they came from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FittedRates {
    /// Seconds per bulk lattice node per coarse step.
    pub cpu_per_node: f64,
    /// Seconds per window lattice node per coarse step (all substeps and
    /// FSI/coupling work included — matching the timeline model's GPU
    /// task semantics).
    pub gpu_per_node: f64,
    /// Seconds per halo site exchanged.
    pub comm_per_site: f64,
    /// Measured mean step wall seconds the fit decomposed.
    pub step_seconds: f64,
    /// Steps the trace aggregated over.
    pub steps: u64,
}

impl FittedRates {
    /// The fitted rates as the timeline model's [`WorkRates`].
    pub fn work_rates(&self) -> WorkRates {
        WorkRates {
            cpu_per_node: self.cpu_per_node,
            gpu_per_node: self.gpu_per_node,
            comm_per_site: self.comm_per_site,
        }
    }

    /// Model-predicted step wall seconds for a problem of size `geom`
    /// under these rates (single-task execution: terms add).
    pub fn predict_step_seconds(&self, geom: &StepGeometry) -> f64 {
        self.cpu_per_node * geom.coarse_fluid_nodes as f64
            + self.gpu_per_node * geom.fine_fluid_nodes as f64
            + self.comm_per_site * geom.halo_sites as f64
    }

    /// Measured throughput in million site updates per second.
    pub fn mlups(&self, geom: &StepGeometry) -> f64 {
        if self.step_seconds <= 0.0 {
            return 0.0;
        }
        geom.site_updates_per_step() as f64 / self.step_seconds / 1.0e6
    }
}

fn total_secs(stats: &[PhaseStat], name: &str) -> f64 {
    stats
        .iter()
        .filter(|s| s.name == name)
        .map(|s| s.total_ns as f64 / 1.0e9)
        .sum()
}

/// Fit work rates from the phase aggregates of an instrumented APR run.
///
/// Decomposition: bulk work is the `apr.coarse` phase; halo work is
/// `halo.pack_send` + `halo.recv_unpack`; everything else under `apr.step`
/// (fine substeps, FSI, coupling, window maintenance) is window work.
/// Returns `None` when the trace contains no completed `apr.step` span.
pub fn fit_step_rates(stats: &[PhaseStat], geom: &StepGeometry) -> Option<FittedRates> {
    let step = stats.iter().find(|s| s.name == "apr.step")?;
    if step.count == 0 {
        return None;
    }
    let steps = step.count;
    let per_step = |total: f64| total / steps as f64;

    let step_secs = per_step(step.total_ns as f64 / 1.0e9);
    let coarse_secs = per_step(total_secs(stats, "apr.coarse"));
    let halo_secs =
        per_step(total_secs(stats, "halo.pack_send") + total_secs(stats, "halo.recv_unpack"));
    let window_secs = (step_secs - coarse_secs - halo_secs).max(0.0);

    Some(FittedRates {
        cpu_per_node: if geom.coarse_fluid_nodes > 0 {
            coarse_secs / geom.coarse_fluid_nodes as f64
        } else {
            0.0
        },
        gpu_per_node: if geom.fine_fluid_nodes > 0 {
            window_secs / geom.fine_fluid_nodes as f64
        } else {
            0.0
        },
        comm_per_site: if geom.halo_sites > 0 {
            halo_secs / geom.halo_sites as f64
        } else {
            0.0
        },
        step_seconds: step_secs,
        steps,
    })
}

/// A [`crate::KernelMeasurement`] derived from a trace, for feeding the
/// existing [`crate::calibrate_host`] machine-spec calibration.
pub fn kernel_measurement_from_trace(
    stats: &[PhaseStat],
    geom: &StepGeometry,
) -> Option<crate::KernelMeasurement> {
    let fitted = fit_step_rates(stats, geom)?;
    Some(crate::KernelMeasurement {
        threads: 1,
        mlups: fitted.mlups(geom),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stat(name: &str, count: u64, total_ns: u64) -> PhaseStat {
        PhaseStat {
            name: name.to_string(),
            count,
            total_ns,
            self_ns: total_ns,
            min_ns: total_ns / count.max(1),
            max_ns: total_ns / count.max(1),
            ..Default::default()
        }
    }

    fn geom() -> StepGeometry {
        StepGeometry {
            coarse_fluid_nodes: 1000,
            fine_fluid_nodes: 500,
            refinement: 4,
            halo_sites: 200,
        }
    }

    #[test]
    fn fit_decomposes_step_time_exactly() {
        // 10 steps: 2 ms/step total; 0.5 ms coarse, 0.1 ms halo, rest window.
        let stats = vec![
            stat("apr.step", 10, 20_000_000),
            stat("apr.coarse", 10, 5_000_000),
            stat("halo.pack_send", 10, 600_000),
            stat("halo.recv_unpack", 10, 400_000),
            stat("fsi.spread", 40, 8_000_000),
        ];
        let g = geom();
        let fit = fit_step_rates(&stats, &g).unwrap();
        assert_eq!(fit.steps, 10);
        assert!((fit.step_seconds - 2.0e-3).abs() < 1e-12);
        assert!((fit.cpu_per_node - 0.5e-3 / 1000.0).abs() < 1e-15);
        assert!((fit.comm_per_site - 0.1e-3 / 200.0).abs() < 1e-15);
        // Prediction on the fitted geometry reproduces the measurement.
        let predicted = fit.predict_step_seconds(&g);
        assert!(
            (predicted - fit.step_seconds).abs() / fit.step_seconds < 1e-9,
            "predicted {predicted} vs measured {}",
            fit.step_seconds
        );
    }

    #[test]
    fn fit_requires_step_spans() {
        assert!(fit_step_rates(&[stat("apr.coarse", 5, 1000)], &geom()).is_none());
        assert!(fit_step_rates(&[stat("apr.step", 0, 0)], &geom()).is_none());
    }

    #[test]
    fn work_rates_round_trip_into_timeline_type() {
        let stats = vec![
            stat("apr.step", 4, 8_000_000),
            stat("apr.coarse", 4, 2_000_000),
        ];
        let fit = fit_step_rates(&stats, &geom()).unwrap();
        let wr = fit.work_rates();
        assert_eq!(wr.cpu_per_node, fit.cpu_per_node);
        assert_eq!(wr.gpu_per_node, fit.gpu_per_node);
        assert_eq!(wr.comm_per_site, 0.0);
    }

    #[test]
    fn mlups_and_kernel_measurement_agree() {
        let stats = vec![stat("apr.step", 10, 10_000_000)]; // 1 ms/step
        let g = geom();
        // 3000 site updates per step / 1 ms = 3 MLUPS.
        let km = kernel_measurement_from_trace(&stats, &g).unwrap();
        assert_eq!(km.threads, 1);
        assert!((km.mlups - 3.0).abs() < 1e-9);
    }

    #[test]
    fn zero_geometry_yields_zero_rates_not_nan() {
        let stats = vec![stat("apr.step", 2, 1_000_000)];
        let g = StepGeometry {
            coarse_fluid_nodes: 0,
            fine_fluid_nodes: 0,
            refinement: 1,
            halo_sites: 0,
        };
        let fit = fit_step_rates(&stats, &g).unwrap();
        assert_eq!(fit.cpu_per_node, 0.0);
        assert_eq!(fit.gpu_per_node, 0.0);
        assert_eq!(fit.comm_per_site, 0.0);
        assert!(fit.predict_step_seconds(&g).is_finite());
    }
}
