//! Calibration of machine-model rates from measured kernel throughput.
//!
//! The Summit specs in [`crate::machine`] use published HARVEY-class
//! figures. When running the reproduction's own kernels, measured MLUPS can
//! be folded back into a [`MachineSpec`] so model predictions and host
//! measurements share one rate base — closing the loop between the analytic
//! Figures 7–8 and the measured thread-scaling analogue.

use crate::machine::MachineSpec;

/// A throughput measurement of the real LBM kernel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelMeasurement {
    /// Threads used.
    pub threads: usize,
    /// Million lattice-site updates per second achieved.
    pub mlups: f64,
}

/// Build a "this host" machine spec from measured kernel throughput:
/// per-task CPU rate = measured single-thread rate; the GPU rate keeps the
/// Summit CPU:GPU ratio (we have no GPU to measure); network terms keep the
/// shared-memory effective values.
pub fn calibrate_host(single_thread: KernelMeasurement, cores: usize) -> MachineSpec {
    assert!(
        single_thread.threads == 1,
        "calibrate from a 1-thread measurement"
    );
    assert!(single_thread.mlups > 0.0);
    let cpu_rate = single_thread.mlups * 1.0e6;
    let summit = MachineSpec::SUMMIT;
    let gpu_ratio = summit.gpu_site_rate / summit.cpu_site_rate;
    MachineSpec {
        name: "calibrated-host",
        cpu_tasks_per_node: cores.saturating_sub(cores / 7).max(1),
        gpu_tasks_per_node: (cores / 7).max(1),
        cpu_site_rate: cpu_rate,
        gpu_site_rate: cpu_rate * gpu_ratio,
        gpu_vertex_rate: cpu_rate * (summit.gpu_vertex_rate / summit.cpu_site_rate),
        // Shared-memory "network": memcpy-class bandwidth, negligible latency.
        network_bandwidth: 20.0e9,
        network_latency: 1.0e-7,
        gpu_memory: summit.gpu_memory,
        host_memory: summit.host_memory,
    }
}

/// Parallel efficiency implied by a measurement series: measured speedup at
/// the top thread count over the ideal.
pub fn measured_efficiency(series: &[KernelMeasurement]) -> f64 {
    assert!(series.len() >= 2, "need at least two measurements");
    let base = &series[0];
    let top = series.last().unwrap();
    let speedup = top.mlups / base.mlups;
    let ideal = top.threads as f64 / base.threads as f64;
    speedup / ideal
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_preserves_device_ratio() {
        let m = calibrate_host(
            KernelMeasurement {
                threads: 1,
                mlups: 12.0,
            },
            14,
        );
        assert_eq!(m.cpu_site_rate, 12.0e6);
        let summit = MachineSpec::SUMMIT;
        let want = summit.gpu_site_rate / summit.cpu_site_rate;
        assert!((m.gpu_site_rate / m.cpu_site_rate - want).abs() < 1e-9);
        // 6:1-ish split like the paper's node layout.
        assert!(m.cpu_tasks_per_node >= 5 * m.gpu_tasks_per_node);
    }

    #[test]
    fn efficiency_of_perfect_scaling_is_one() {
        let series = [
            KernelMeasurement {
                threads: 1,
                mlups: 10.0,
            },
            KernelMeasurement {
                threads: 4,
                mlups: 40.0,
            },
        ];
        assert!((measured_efficiency(&series) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "1-thread")]
    fn calibration_requires_single_thread_baseline() {
        let _ = calibrate_host(
            KernelMeasurement {
                threads: 4,
                mlups: 40.0,
            },
            8,
        );
    }
}
