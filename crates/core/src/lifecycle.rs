//! Engine lifecycle: engines as `Send` state machines.
//!
//! The serve scheduler drives many concurrent simulations over a bounded
//! worker budget by **checkpoint-preempt-resume**: an engine runs a slice
//! of steps, is suspended to an in-memory checkpoint blob, parked, and
//! later resumed — possibly on a different worker thread. [`SimSession`]
//! is the contract that makes this possible: instead of owning a run
//! loop, an engine exposes explicit `step_n` / `suspend` / `resume` and
//! is `Send`, so ownership can migrate between scheduler workers.
//!
//! The determinism guarantee the scheduler leans on: `suspend` captures
//! the *complete* state ([`crate::guardian`]'s bit-identical contract),
//! and stepping is bit-identical for any worker-lane count (`apr-exec`'s
//! static-chunking contract), so a session preempted N times produces a
//! final state byte-identical to the same scenario run straight through.
//!
//! Membrane models and geometry callbacks are code, not state: `resume`
//! must be called on an engine built by the same recipe as the one that
//! produced the blob. Both engines capture the membrane models handed to
//! their cell-insertion methods so `resume` needs no extra arguments.

use crate::apr::AprEngine;
use crate::efsi::EfsiEngine;
use crate::guardian::{restore_efsi, restore_engine, save_efsi, save_engine};
use apr_cells::CellKind;
use apr_guard::GuardError;

/// A checkpointable, preemptible simulation: the unit the serve scheduler
/// time-slices. `Send` is part of the contract — a suspended session's
/// engine shell may be dropped and a new one resumed on another thread.
pub trait SimSession: Send {
    /// Advance `n` steps; returns lattice site updates performed during
    /// the call (the cost proxy the service meters slices by).
    fn step_n(&mut self, n: u64) -> u64;

    /// Steps taken since construction (restored by [`SimSession::resume`]).
    fn steps(&self) -> u64;

    /// Cumulative site updates — comparable across engine types.
    fn site_updates(&self) -> u64;

    /// Capture the complete engine state as a checkpoint blob. The engine
    /// is untouched and can keep stepping; a blob taken at a step boundary
    /// is bit-identical across worker-lane counts and kernel variants.
    fn suspend(&self) -> Vec<u8>;

    /// Replace this engine's state with `blob`'s. The engine must have
    /// been built by the same recipe (dimensions, generators, geometry
    /// callback, insertion context) as the blob's producer.
    fn resume(&mut self, blob: &[u8]) -> Result<(), GuardError>;
}

impl SimSession for AprEngine {
    fn step_n(&mut self, n: u64) -> u64 {
        let before = self.site_updates;
        for _ in 0..n {
            self.step();
        }
        self.site_updates - before
    }

    fn steps(&self) -> u64 {
        AprEngine::steps(self)
    }

    fn site_updates(&self) -> u64 {
        AprEngine::site_updates(self)
    }

    fn suspend(&self) -> Vec<u8> {
        save_engine(self)
    }

    fn resume(&mut self, blob: &[u8]) -> Result<(), GuardError> {
        let ctc = self.ctc_membrane.clone();
        restore_engine(self, blob, ctc.as_ref())
    }
}

impl SimSession for EfsiEngine {
    fn step_n(&mut self, n: u64) -> u64 {
        let before = self.site_updates;
        for _ in 0..n {
            self.step();
        }
        self.site_updates - before
    }

    fn steps(&self) -> u64 {
        EfsiEngine::steps(self)
    }

    fn site_updates(&self) -> u64 {
        EfsiEngine::site_updates(self)
    }

    fn suspend(&self) -> Vec<u8> {
        save_efsi(self)
    }

    fn resume(&mut self, blob: &[u8]) -> Result<(), GuardError> {
        let membranes = self.membranes.clone();
        let provider = move |kind: CellKind| match kind {
            CellKind::Rbc => membranes[0].clone(),
            CellKind::Ctc => membranes[1].clone(),
        };
        restore_efsi(self, blob, &provider)
    }
}

// The scheduler moves engines between worker threads; losing `Send` on
// either engine is a compile error here, not a runtime surprise.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<AprEngine>();
    assert_send::<EfsiEngine>();
    const fn assert_boxable(_: &dyn Fn() -> Box<dyn SimSession>) {}
    _ = assert_boxable;
};

#[cfg(test)]
mod tests {
    use super::*;
    use apr_cells::ContactParams;
    use apr_lattice::couette_channel;
    use apr_membrane::{Membrane, MembraneMaterial, ReferenceState};
    use apr_mesh::{icosphere, Vec3};
    use std::sync::Arc;

    fn shear_session() -> EfsiEngine {
        let lat = couette_channel(16, 12, 12, 1.0, 0.03);
        let mut eng = EfsiEngine::new(
            lat,
            4,
            ContactParams {
                cutoff: 1.0,
                strength: 1e-4,
            },
        );
        let mesh = icosphere(1, 2.0);
        let mem = Arc::new(Membrane::new(
            Arc::new(ReferenceState::build(&mesh)),
            MembraneMaterial::rbc(1e-3, 1e-5),
        ));
        let verts: Vec<Vec3> = mesh
            .vertices
            .iter()
            .map(|&v| v + Vec3::new(8.0, 6.0, 6.0))
            .collect();
        eng.add_cell(CellKind::Rbc, mem, verts);
        eng
    }

    #[test]
    fn suspend_resume_round_trip_is_bit_identical() {
        let mut a = shear_session();
        let mut b = shear_session();
        a.step_n(5);
        // Park A mid-run, continue it in a fresh shell (B), and compare
        // against stepping A straight through.
        let parked = SimSession::suspend(&a);
        b.resume(&parked).unwrap();
        assert_eq!(SimSession::steps(&b), 5);
        a.step_n(5);
        b.step_n(5);
        assert_eq!(SimSession::suspend(&a), SimSession::suspend(&b));
        assert_eq!(SimSession::site_updates(&a), SimSession::site_updates(&b));
    }

    #[test]
    fn step_n_reports_site_updates() {
        let mut eng = shear_session();
        let sites = eng.step_n(3);
        assert_eq!(sites, SimSession::site_updates(&eng));
        assert_eq!(SimSession::steps(&eng), 3);
        assert!(sites > 0);
    }

    #[test]
    fn sessions_are_object_safe_and_movable() {
        let mut boxed: Box<dyn SimSession> = Box::new(shear_session());
        boxed.step_n(2);
        let handle = std::thread::spawn(move || {
            boxed.step_n(1);
            boxed.steps()
        });
        assert_eq!(handle.join().unwrap(), 3);
    }
}
