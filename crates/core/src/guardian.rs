//! Full-engine checkpointing and the guarded step loop.
//!
//! [`save_engine`]/[`restore_engine`] capture a **complete** [`AprEngine`]
//! — both lattices (distributions, macroscopic fields, per-node τ), the
//! cell pool with global IDs and exact free-list order, window anatomy and
//! coupling origin, trigger, hematocrit controller, CTC trajectory, step
//! counters and the insertion-RNG stream position — into the versioned
//! CRC-protected `apr-guard` container. A restored engine is
//! **bit-identical**: stepping it produces the same distributions as the
//! uninterrupted run (the sequential reduction order makes this exact).
//!
//! Shared membrane models and the fine-geometry callback are *not*
//! serialized (they are code, not state): restore onto an engine built by
//! the same recipe — same lattices/generators, same [`FineGeometry`]
//! callback, same insertion context. The RBC membrane is taken from the
//! engine's insertion context; a CTC membrane, if any cell needs one, is
//! passed explicitly.
//!
//! [`Guardian`] wraps `AprEngine::step` with the paper-scale robustness
//! loop: sentinel every N steps, snapshot while healthy, roll back +
//! reseed + optionally tighten τ (Eq. 7) on a trip, give up after a
//! bounded retry budget with a structured [`RecoveryLog`].

use crate::apr::{AprEngine, AprStepReport};
use crate::efsi::EfsiEngine;
use apr_coupling::CouplingMap;
use apr_guard::{
    check_hematocrit, check_lattice, check_pool, read_lattice, read_pool, write_lattice,
    write_pool, ByteReader, ByteWriter, CheckpointReader, CheckpointWriter, GuardError,
    HealthIssue, HealthReport, RecoveryAction, RecoveryEvent, RecoveryLog, RetryPolicy,
    SentinelConfig,
};
use apr_membrane::Membrane;
use apr_window::{HematocritController, MoveTrigger, WindowAnatomy};
use rand::rngs::StdRng;
use std::sync::Arc;

#[cfg(feature = "fault-injection")]
use apr_guard::{FaultKind, FaultPlan};

fn write_anatomy(w: &mut ByteWriter, a: &WindowAnatomy) {
    w.vec3(a.center);
    w.f64(a.proper_half);
    w.f64(a.onramp);
    w.f64(a.insertion);
}

fn read_anatomy(r: &mut ByteReader<'_>) -> Result<WindowAnatomy, GuardError> {
    Ok(WindowAnatomy {
        center: r.vec3()?,
        proper_half: r.f64()?,
        onramp: r.f64()?,
        insertion: r.f64()?,
    })
}

/// Serialize the complete engine state to a checkpoint blob.
pub fn save_engine(engine: &AprEngine) -> Vec<u8> {
    let mut ckpt = CheckpointWriter::new();

    let mut meta = ByteWriter::new();
    meta.u64(engine.steps);
    meta.u64(engine.site_updates);
    meta.u64(engine.moves);
    meta.u64(engine.maintenance_interval);
    meta.f64(engine.trigger.trigger_distance);
    for s in engine.rng.state() {
        meta.u64(s);
    }
    ckpt.section("meta", meta.into_bytes());

    let mut map = ByteWriter::new();
    for a in 0..3 {
        map.f64(engine.map.origin[a]);
    }
    map.usize(engine.map.n);
    map.f64(engine.map.lambda);
    ckpt.section("map", map.into_bytes());

    let mut anatomy = ByteWriter::new();
    write_anatomy(&mut anatomy, &engine.anatomy);
    ckpt.section("anatomy", anatomy.into_bytes());

    ckpt.section("coarse", write_lattice(&engine.coarse));
    ckpt.section("fine", write_lattice(&engine.fine));
    ckpt.section("pool", write_pool(&engine.pool));

    let mut tracker = ByteWriter::new();
    tracker.usize(engine.tracker.samples.len());
    for &(step, p) in &engine.tracker.samples {
        tracker.u64(step);
        tracker.vec3(p);
    }
    ckpt.section("tracker", tracker.into_bytes());

    let mut controller = ByteWriter::new();
    match &engine.controller {
        Some(c) => {
            controller.bool(true);
            controller.f64(c.target);
            controller.f64(c.threshold);
            controller.f64(c.cell_volume);
        }
        None => controller.bool(false),
    }
    ckpt.section("controller", controller.into_bytes());

    ckpt.finish()
}

/// Write an engine checkpoint to disk atomically (temp file + rename).
pub fn save_engine_to_file(engine: &AprEngine, path: &std::path::Path) -> Result<(), GuardError> {
    apr_guard::write_atomic(path, &save_engine(engine))
}

/// Restore a checkpoint into `engine`, which must have been constructed by
/// the same recipe (same lattice dimensions and generators, same
/// [`crate::FineGeometry`] callback, same insertion context). RBC
/// membranes come from the engine's insertion context; pass
/// `ctc_membrane` when the checkpoint contains a CTC.
pub fn restore_engine(
    engine: &mut AprEngine,
    blob: &[u8],
    ctc_membrane: Option<&Arc<Membrane>>,
) -> Result<(), GuardError> {
    let ckpt = CheckpointReader::parse(blob)?;

    let mut meta = ckpt.require("meta")?;
    let steps = meta.u64()?;
    let site_updates = meta.u64()?;
    let moves = meta.u64()?;
    let maintenance_interval = meta.u64()?;
    let trigger_distance = meta.f64()?;
    let rng_state = [meta.u64()?, meta.u64()?, meta.u64()?, meta.u64()?];

    let mut map = ckpt.require("map")?;
    let origin = [map.f64()?, map.f64()?, map.f64()?];
    let n = map.usize()?;
    let lambda = map.f64()?;
    if n != engine.map.n {
        return Err(GuardError::Format(format!(
            "refinement ratio mismatch: checkpoint {n} vs engine {}",
            engine.map.n
        )));
    }

    // Re-flag the fine lattice for the stored window origin before loading
    // state (geometry is rebuilt from code, state from the checkpoint).
    if let Some(geometry) = &engine.geometry {
        geometry(&mut engine.fine, origin);
    }
    read_lattice(&mut engine.coarse, &mut ckpt.require("coarse")?)?;
    read_lattice(&mut engine.fine, &mut ckpt.require("fine")?)?;
    engine.map = CouplingMap::new(&engine.coarse, &engine.fine, origin, n, lambda, 1.0);

    let rbc_membrane = engine
        .insertion
        .as_ref()
        .map(|c| Arc::clone(&c.rbc_membrane));
    let provider = |kind: apr_cells::CellKind| match kind {
        apr_cells::CellKind::Rbc => rbc_membrane.clone(),
        apr_cells::CellKind::Ctc => ctc_membrane.cloned(),
    };
    engine.pool = read_pool(&mut ckpt.require("pool")?, &provider)?;
    apr_cells::rebuild_grid(&mut engine.grid, &engine.pool);

    engine.anatomy = read_anatomy(&mut ckpt.require("anatomy")?)?;

    let mut tracker = ckpt.require("tracker")?;
    let count = tracker.usize()?;
    let mut samples = Vec::with_capacity(count);
    for _ in 0..count {
        let step = tracker.u64()?;
        let p = tracker.vec3()?;
        samples.push((step, p));
    }
    engine.tracker.samples = samples;

    let mut controller = ckpt.require("controller")?;
    engine.controller = if controller.bool()? {
        Some(HematocritController {
            target: controller.f64()?,
            threshold: controller.f64()?,
            cell_volume: controller.f64()?,
        })
    } else {
        None
    };

    engine.trigger = MoveTrigger { trigger_distance };
    engine.maintenance_interval = maintenance_interval;
    engine.steps = steps;
    engine.site_updates = site_updates;
    engine.moves = moves;
    engine.rng = StdRng::from_state(rng_state);
    // The restored totals are discontinuous with the pre-restore ones by
    // construction; a stale comparison would report phantom drift.
    if let Some(ledger) = engine.ledger.as_mut() {
        ledger.reset_continuity();
    }
    Ok(())
}

/// Restore an engine checkpoint from a file written by
/// [`save_engine_to_file`].
pub fn restore_engine_from_file(
    engine: &mut AprEngine,
    path: &std::path::Path,
    ctc_membrane: Option<&Arc<Membrane>>,
) -> Result<(), GuardError> {
    let blob = apr_guard::read_file(path)?;
    restore_engine(engine, &blob, ctc_membrane)
}

/// Serialize a complete [`EfsiEngine`] (baseline engine) state.
pub fn save_efsi(engine: &EfsiEngine) -> Vec<u8> {
    let mut ckpt = CheckpointWriter::new();
    let mut meta = ByteWriter::new();
    meta.u64(engine.steps);
    meta.u64(engine.site_updates);
    ckpt.section("meta", meta.into_bytes());
    ckpt.section("lattice", write_lattice(&engine.lattice));
    ckpt.section("pool", write_pool(&engine.pool));
    ckpt.finish()
}

/// Restore an [`EfsiEngine`] checkpoint. `membranes` supplies the shared
/// membrane model per cell kind (the baseline engine has no insertion
/// context to take one from).
pub fn restore_efsi(
    engine: &mut EfsiEngine,
    blob: &[u8],
    membranes: apr_guard::MembraneProvider<'_>,
) -> Result<(), GuardError> {
    let ckpt = CheckpointReader::parse(blob)?;
    let mut meta = ckpt.require("meta")?;
    engine.steps = meta.u64()?;
    engine.site_updates = meta.u64()?;
    read_lattice(&mut engine.lattice, &mut ckpt.require("lattice")?)?;
    engine.pool = read_pool(&mut ckpt.require("pool")?, membranes)?;
    apr_cells::rebuild_grid(&mut engine.grid, &engine.pool);
    Ok(())
}

/// Outcome of one guarded step.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct GuardedStep {
    /// The underlying engine step report (of the step that *survived*; a
    /// rolled-back step's report is discarded with its state).
    pub report: AprStepReport,
    /// True when this call detected divergence and rolled the engine back.
    pub rolled_back: bool,
}

/// Wraps [`AprEngine::step`] with sentinel checks, in-memory last-good
/// checkpointing, and rollback-and-retry recovery.
pub struct Guardian {
    /// Sentinel thresholds.
    pub sentinel: SentinelConfig,
    /// Rollback/retry policy.
    pub policy: RetryPolicy,
    /// Steps between sentinel inspections (and, while healthy, between
    /// checkpoint refreshes).
    pub check_interval: u64,
    /// Structured log of every recovery incident.
    pub log: RecoveryLog,
    /// Scheduled faults (testing only; compiled in under the
    /// `fault-injection` feature).
    #[cfg(feature = "fault-injection")]
    pub faults: FaultPlan,
    last_good: Option<Vec<u8>>,
    attempts: u32,
    ctc_membrane: Option<Arc<Membrane>>,
    flightrec_path: Option<std::path::PathBuf>,
}

impl Guardian {
    /// New guardian checking every `check_interval` steps.
    pub fn new(sentinel: SentinelConfig, policy: RetryPolicy, check_interval: u64) -> Self {
        Self {
            sentinel,
            policy,
            check_interval: check_interval.max(1),
            log: RecoveryLog::new(),
            #[cfg(feature = "fault-injection")]
            faults: FaultPlan::new(),
            last_good: None,
            attempts: 0,
            ctc_membrane: None,
            flightrec_path: None,
        }
    }

    /// Dump the telemetry flight recorder (the ring of spans/events/metric
    /// samples preceding the incident) to `path` on every sentinel trip,
    /// making divergences post-mortem debuggable. Each trip overwrites the
    /// file, so it always holds the window before the *latest* incident.
    pub fn set_flightrec_path(&mut self, path: impl Into<std::path::PathBuf>) {
        self.flightrec_path = Some(path.into());
    }

    fn dump_flightrec(&self) {
        let Some(path) = &self.flightrec_path else {
            return;
        };
        if let Err(err) = apr_telemetry::global().write_flightrec(path) {
            eprintln!(
                "guardian: failed to write flight record to {}: {err}",
                path.display()
            );
        }
    }

    /// Provide the CTC membrane model needed to restore checkpoints whose
    /// pool contains a CTC.
    pub fn set_ctc_membrane(&mut self, membrane: Arc<Membrane>) {
        self.ctc_membrane = Some(membrane);
    }

    /// The most recent healthy checkpoint blob, if one has been taken
    /// (e.g. to persist to disk between steps).
    pub fn last_checkpoint(&self) -> Option<&[u8]> {
        self.last_good.as_deref()
    }

    /// Run the sentinel over the engine's current state.
    pub fn inspect(&self, engine: &AprEngine) -> HealthReport {
        let mut issues = Vec::new();
        check_lattice(&engine.fine, &self.sentinel, &mut issues);
        check_lattice(&engine.coarse, &self.sentinel, &mut issues);
        check_pool(&engine.pool, &self.sentinel, &mut issues);
        if let Some(ht) = engine.window_hematocrit() {
            check_hematocrit(ht, &self.sentinel, &mut issues);
        }
        // Ledger breaches latch between inspections, so drift at any step
        // surfaces here even with a sparse check interval. Peek, don't
        // drain: a trip rolls back and reset_continuity clears them; a
        // healthy verdict can't happen while breaches stand.
        if let Some(ledger) = engine.ledger.as_ref() {
            for breach in ledger.breaches() {
                issues.push(HealthIssue::ConservationDrift {
                    quantity: breach.quantity,
                    observed: breach.observed,
                    tolerance: breach.tolerance,
                    step: breach.step,
                });
            }
        }
        HealthReport {
            step: engine.steps(),
            issues,
        }
    }

    #[cfg(feature = "fault-injection")]
    fn apply_faults(&mut self, engine: &mut AprEngine) {
        // Faults scheduled for step S fire just before the step that makes
        // steps() == S, so the sentinel sees the corruption at its first
        // inspection at or after S.
        for fault in self.faults.take_due(engine.steps() + 1) {
            match fault.kind {
                FaultKind::MembraneNan { cell_index, vertex } => {
                    if let Some(cell) = engine.pool.iter_mut().nth(cell_index) {
                        let v = vertex.min(cell.vertices.len() - 1);
                        cell.vertices[v].x = f64::NAN;
                    }
                }
                FaultKind::DistributionCorrupt { node, magnitude } => {
                    if node < engine.fine.node_count() {
                        let mut f = [0.0; apr_lattice::Q];
                        f.copy_from_slice(engine.fine.distributions(node));
                        for v in &mut f {
                            *v *= magnitude;
                        }
                        engine.fine.set_distributions(node, &f);
                    }
                }
                FaultKind::MassLeak { node, fraction } => {
                    // Scale one node's distributions down: the state stays
                    // numerically healthy (finite, low Mach), so only the
                    // conservation ledger can catch this one.
                    if node < engine.fine.node_count() {
                        let scale = (1.0 - fraction).clamp(0.0, 1.0);
                        let mut f = [0.0; apr_lattice::Q];
                        f.copy_from_slice(engine.fine.distributions(node));
                        for v in &mut f {
                            *v *= scale;
                        }
                        engine.fine.set_distributions(node, &f);
                    }
                }
            }
        }
    }

    /// Advance one step under guard. On a sentinel trip — or a panic
    /// inside the step itself, the terminal form of a blow-up (e.g. a
    /// NaN membrane reaching a normalization) — the engine is rolled back
    /// to the last good checkpoint, the insertion RNG is reseeded, and
    /// (per policy) the fine τ is tightened; after `policy.max_retries`
    /// consecutive failed recoveries the incident is fatal and
    /// [`GuardError::RetriesExhausted`] is returned.
    pub fn step(&mut self, engine: &mut AprEngine) -> Result<GuardedStep, GuardError> {
        if self.last_good.is_none() {
            let blob = save_engine(engine);
            apr_telemetry::emit(apr_telemetry::TelemetryEvent::CheckpointSaved {
                step: engine.steps(),
                bytes: blob.len() as u64,
            });
            self.last_good = Some(blob);
        }
        #[cfg(feature = "fault-injection")]
        self.apply_faults(engine);

        // A panicking step leaves the engine in an arbitrary state; that
        // is fine (hence AssertUnwindSafe) because the only exits from an
        // unhealthy branch are a wholesale restore or a fatal error.
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| engine.step()));
        let health = match caught {
            Ok(report) => {
                if !engine.steps().is_multiple_of(self.check_interval) {
                    return Ok(GuardedStep {
                        report,
                        rolled_back: false,
                    });
                }
                let health = {
                    let _s = apr_telemetry::span("guard.inspect");
                    self.inspect(engine)
                };
                if health.is_healthy() {
                    let blob = {
                        let _s = apr_telemetry::span("guard.checkpoint");
                        save_engine(engine)
                    };
                    apr_telemetry::emit(apr_telemetry::TelemetryEvent::CheckpointSaved {
                        step: engine.steps(),
                        bytes: blob.len() as u64,
                    });
                    self.last_good = Some(blob);
                    self.attempts = 0;
                    return Ok(GuardedStep {
                        report,
                        rolled_back: false,
                    });
                }
                health
            }
            Err(payload) => {
                let message = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "opaque panic payload".to_string());
                HealthReport {
                    step: engine.steps(),
                    issues: vec![apr_guard::HealthIssue::StepPanicked { message }],
                }
            }
        };

        let step = engine.steps();
        apr_telemetry::emit(apr_telemetry::TelemetryEvent::SentinelTrip {
            step,
            issues: health.issues.len() as u32,
            first_kind: health.issues.first().map_or("none", |i| i.kind()),
        });
        // Emitted trip included: the flight record's last entry names the
        // incident it precedes.
        self.dump_flightrec();
        self.attempts += 1;
        if self.attempts > self.policy.max_retries {
            self.log.record(RecoveryEvent {
                step,
                attempt: self.attempts,
                report: health,
                action: RecoveryAction::GaveUp,
            });
            apr_telemetry::emit(apr_telemetry::TelemetryEvent::RetriesExhausted {
                step,
                attempts: self.attempts,
            });
            return Err(GuardError::RetriesExhausted {
                attempts: self.attempts,
                step,
            });
        }

        let blob = self
            .last_good
            .clone()
            .expect("checkpoint taken before stepping");
        {
            let _s = apr_telemetry::span("guard.rollback");
            restore_engine(engine, &blob, self.ctc_membrane.as_ref())?;
        }
        let new_seed = self.policy.seed_for_attempt(self.attempts);
        engine.reseed_rng(new_seed);
        // Tightening compounds per attempt: the restore reset τ to the
        // checkpointed value, so re-apply once per attempt so far.
        for _ in 0..self.attempts {
            engine.fine.tau = self.policy.tighten_tau(engine.fine.tau);
        }
        apr_telemetry::emit(apr_telemetry::TelemetryEvent::Rollback {
            step,
            attempt: self.attempts,
            restored_step: engine.steps(),
            new_seed,
            fine_tau: engine.fine.tau,
        });
        self.log.record(RecoveryEvent {
            step,
            attempt: self.attempts,
            report: health,
            action: RecoveryAction::RolledBack {
                restored_step: engine.steps(),
                new_seed,
                fine_tau: engine.fine.tau,
            },
        });
        Ok(GuardedStep {
            report: AprStepReport::default(),
            rolled_back: true,
        })
    }
}
