//! # APR-RBC: adaptive physics refinement with realistic red blood cell counts
//!
//! Public API of the reproduction of Roychowdhury et al., SC '23. The two
//! entry points are:
//!
//! * [`EfsiEngine`] — the fully resolved fluid–structure-interaction
//!   baseline: one fine lattice, every cell explicit (paper §3.3's
//!   comparison model).
//! * [`AprEngine`] — the paper's contribution: a coarse whole-blood bulk
//!   lattice coupled to a fine plasma window that tracks a circulating
//!   tumor cell, maintains a target hematocrit of explicitly modeled
//!   deformable RBCs, and moves with the cell through the vasculature.
//!
//! Supporting modules: [`fsi`] (shared IBM/FEM plumbing), [`diagnostics`]
//! (hematocrit series, effective viscosity — Figure 5's observables),
//! [`output`] (CSV/table writers for the benchmark harness) and
//! [`guardian`] (divergence sentinel, full-engine checkpoint/rollback —
//! the robustness layer for multi-day campaigns).
//!
//! ## Quickstart
//!
//! See `examples/quickstart.rs` at the workspace root: build a Couette
//! channel, drop in an RBC, watch it deform and advect.

pub mod apr;
pub mod config;
pub mod diagnostics;
pub mod efsi;
pub mod fsi;
pub mod guardian;
pub mod lifecycle;
pub mod output;
pub mod vtk;

pub use apr::{AprEngine, AprEngineBuilder, AprStepReport, BulkDriver, FineGeometry, WindowSteer};
pub use apr_lattice::KernelKind;
pub use apr_observe::{ConservationLedger, DriftBreach, LedgerConfig, LedgerSample};
pub use config::PhysicalConfig;
pub use diagnostics::{
    mean_axial_velocity, tube_effective_viscosity, tube_flow_rate, HematocritSeries,
};
pub use efsi::EfsiEngine;
pub use guardian::{
    restore_efsi, restore_engine, restore_engine_from_file, save_efsi, save_engine,
    save_engine_to_file, GuardedStep, Guardian,
};
pub use lifecycle::SimSession;
pub use output::{render_table, write_csv};
pub use vtk::{cells_to_vtk, lattice_to_vtk, mesh_to_vtk, write_vtk};
