//! Legacy-VTK output: fluid fields as structured points, cell membranes as
//! polydata. Every figure in the paper is a visualization of exactly these
//! two data sets (velocity streamlines + deformed cell surfaces); the ASCII
//! legacy format keeps the reproduction free of serialization dependencies
//! while opening the results in ParaView/VisIt.

use apr_cells::CellPool;
use apr_lattice::{Lattice, NodeClass};
use apr_mesh::TriMesh;
use std::fmt::Write as _;
use std::io::Write;
use std::path::Path;

/// Serialize a lattice's macroscopic fields as VTK structured points:
/// density (scalars), velocity (vectors) and node class (scalars).
/// `origin`/`spacing` place the grid in world coordinates.
pub fn lattice_to_vtk(lat: &Lattice, origin: [f64; 3], spacing: f64) -> String {
    let mut out = String::new();
    out.push_str("# vtk DataFile Version 3.0\napr-rbc fluid field\nASCII\n");
    out.push_str("DATASET STRUCTURED_POINTS\n");
    let _ = writeln!(out, "DIMENSIONS {} {} {}", lat.nx, lat.ny, lat.nz);
    let _ = writeln!(out, "ORIGIN {} {} {}", origin[0], origin[1], origin[2]);
    let _ = writeln!(out, "SPACING {spacing} {spacing} {spacing}");
    let n = lat.node_count();
    let _ = writeln!(out, "POINT_DATA {n}");

    out.push_str("SCALARS density double 1\nLOOKUP_TABLE default\n");
    for node in 0..n {
        let _ = writeln!(out, "{}", lat.rho[node]);
    }
    out.push_str("VECTORS velocity double\n");
    for node in 0..n {
        let u = lat.velocity_at(node);
        let _ = writeln!(out, "{} {} {}", u[0], u[1], u[2]);
    }
    out.push_str("SCALARS node_class int 1\nLOOKUP_TABLE default\n");
    for node in 0..n {
        let class = match lat.flag(node) {
            NodeClass::Fluid => 0,
            NodeClass::Wall => 1,
            NodeClass::Velocity => 2,
            NodeClass::Pressure => 3,
            NodeClass::Exterior => 4,
        };
        let _ = writeln!(out, "{class}");
    }
    out
}

/// Serialize every cell in the pool as one VTK polydata: vertices, triangle
/// connectivity, plus per-point cell IDs and force magnitudes (the paper's
/// Figure 9 colors RBC surfaces by FEM force).
pub fn cells_to_vtk(pool: &CellPool) -> String {
    let mut points = String::new();
    let mut polys = String::new();
    let mut ids = String::new();
    let mut force_mag = String::new();
    let mut n_points = 0usize;
    let mut n_tris = 0usize;
    for cell in pool.iter() {
        let base = n_points;
        for (v, f) in cell.vertices.iter().zip(&cell.forces) {
            let _ = writeln!(points, "{} {} {}", v.x, v.y, v.z);
            let _ = writeln!(ids, "{}", cell.id);
            let _ = writeln!(force_mag, "{}", f.norm());
        }
        for t in &cell.membrane.reference.triangles {
            let _ = writeln!(
                polys,
                "3 {} {} {}",
                base + t[0] as usize,
                base + t[1] as usize,
                base + t[2] as usize
            );
        }
        n_points += cell.vertex_count();
        n_tris += cell.membrane.reference.triangles.len();
    }
    let mut out = String::new();
    out.push_str("# vtk DataFile Version 3.0\napr-rbc cells\nASCII\n");
    out.push_str("DATASET POLYDATA\n");
    let _ = writeln!(out, "POINTS {n_points} double");
    out.push_str(&points);
    let _ = writeln!(out, "POLYGONS {n_tris} {}", n_tris * 4);
    out.push_str(&polys);
    let _ = writeln!(out, "POINT_DATA {n_points}");
    out.push_str("SCALARS cell_id int 1\nLOOKUP_TABLE default\n");
    out.push_str(&ids);
    out.push_str("SCALARS force_magnitude double 1\nLOOKUP_TABLE default\n");
    out.push_str(&force_mag);
    out
}

/// Serialize a bare triangle mesh as VTK polydata (geometry previews).
pub fn mesh_to_vtk(mesh: &TriMesh) -> String {
    let mut out = String::new();
    out.push_str("# vtk DataFile Version 3.0\napr-rbc mesh\nASCII\n");
    out.push_str("DATASET POLYDATA\n");
    let _ = writeln!(out, "POINTS {} double", mesh.vertex_count());
    for v in &mesh.vertices {
        let _ = writeln!(out, "{} {} {}", v.x, v.y, v.z);
    }
    let _ = writeln!(
        out,
        "POLYGONS {} {}",
        mesh.triangle_count(),
        mesh.triangle_count() * 4
    );
    for t in &mesh.triangles {
        let _ = writeln!(out, "3 {} {} {}", t[0], t[1], t[2]);
    }
    out
}

/// Write a VTK string to disk.
pub fn write_vtk<P: AsRef<Path>>(content: &str, path: P) -> std::io::Result<()> {
    std::fs::File::create(path)?.write_all(content.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use apr_cells::CellKind;
    use apr_membrane::{Membrane, MembraneMaterial, ReferenceState};
    use apr_mesh::icosphere;
    use std::sync::Arc;

    #[test]
    fn lattice_vtk_has_consistent_counts() {
        let mut lat = Lattice::new(4, 3, 2, 1.0);
        lat.set_boundary(lat.idx(0, 0, 0), apr_lattice::Boundary::Wall);
        let vtk = lattice_to_vtk(&lat, [0.0; 3], 0.5);
        assert!(vtk.contains("DIMENSIONS 4 3 2"));
        assert!(vtk.contains("POINT_DATA 24"));
        // density: 24 lines; velocity: 24 lines; class: 24 lines.
        let densities = vtk
            .split("SCALARS density")
            .nth(1)
            .unwrap()
            .lines()
            .skip(2) // " double 1" remnant + LOOKUP_TABLE line
            .take_while(|l| !l.starts_with("VECTORS"))
            .count();
        assert_eq!(densities, 24);
        assert!(vtk.contains("SPACING 0.5 0.5 0.5"));
    }

    #[test]
    fn cells_vtk_round_numbers() {
        let mesh = icosphere(1, 1.0);
        let re = Arc::new(ReferenceState::build(&mesh));
        let mem = Arc::new(Membrane::new(re, MembraneMaterial::rbc(1.0, 0.01)));
        let mut pool = CellPool::with_capacity(4);
        pool.insert_shape(CellKind::Rbc, Arc::clone(&mem), mesh.vertices.clone());
        pool.insert_shape(CellKind::Ctc, mem, mesh.vertices.clone());
        let vtk = cells_to_vtk(&pool);
        assert!(vtk.contains(&format!("POINTS {} double", 2 * mesh.vertex_count())));
        assert!(vtk.contains(&format!(
            "POLYGONS {} {}",
            2 * mesh.triangle_count(),
            2 * mesh.triangle_count() * 4
        )));
        // Second cell's triangles are offset by the first cell's vertices.
        assert!(vtk.contains(&format!("3 {} ", mesh.vertex_count())));
    }

    #[test]
    fn mesh_vtk_matches_mesh() {
        let mesh = icosphere(0, 2.0);
        let vtk = mesh_to_vtk(&mesh);
        assert!(vtk.contains("POINTS 12 double"));
        assert!(vtk.contains("POLYGONS 20 80"));
    }

    #[test]
    fn vtk_writes_to_disk() {
        let dir = std::env::temp_dir().join("apr_vtk_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.vtk");
        write_vtk(&mesh_to_vtk(&icosphere(0, 1.0)), &path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("# vtk DataFile"));
    }
}
