//! CSV output helpers for experiment harnesses.

use std::io::Write;
use std::path::Path;

/// Write a CSV file: header row plus `f64` data rows.
pub fn write_csv<P: AsRef<Path>>(
    path: P,
    header: &[&str],
    rows: &[Vec<f64>],
) -> std::io::Result<()> {
    let mut out = String::new();
    out.push_str(&header.join(","));
    out.push('\n');
    for row in rows {
        assert_eq!(row.len(), header.len(), "row width mismatch");
        let cells: Vec<String> = row.iter().map(|v| format!("{v}")).collect();
        out.push_str(&cells.join(","));
        out.push('\n');
    }
    std::fs::File::create(path)?.write_all(out.as_bytes())
}

/// Render a fixed-width text table (for experiment stdout reports).
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_round_trips() {
        let dir = std::env::temp_dir().join("apr_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.csv");
        write_csv(&path, &["a", "b"], &[vec![1.0, 2.0], vec![3.5, -4.0]]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "a,b\n1,2\n3.5,-4\n");
    }

    #[test]
    fn table_alignment() {
        let t = render_table(
            &["n", "value"],
            &[
                vec!["2".into(), "0.0178".into()],
                vec!["10".into(), "0.0183".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[2].ends_with("0.0178"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn csv_rejects_ragged_rows() {
        let dir = std::env::temp_dir().join("apr_csv_test2");
        std::fs::create_dir_all(&dir).unwrap();
        let _ = write_csv(dir.join("bad.csv"), &["a", "b"], &[vec![1.0]]);
    }
}
