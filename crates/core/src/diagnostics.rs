//! Simulation diagnostics: hematocrit time series, effective viscosity,
//! flow metrics (the quantities the paper's Figures 5–6 plot).

use apr_lattice::{Lattice, NodeClass};

/// Time series of window hematocrit (Figure 5B).
#[derive(Debug, Clone, Default)]
pub struct HematocritSeries {
    /// `(step, hematocrit)` samples.
    pub samples: Vec<(u64, f64)>,
}

impl HematocritSeries {
    /// Record a sample.
    pub fn record(&mut self, step: u64, ht: f64) {
        self.samples.push((step, ht));
    }

    /// The final `fraction` of samples, or `None` when the series is empty.
    fn steady_tail(&self, fraction: f64) -> Option<&[(u64, f64)]> {
        if self.samples.is_empty() {
            return None;
        }
        let start = ((1.0 - fraction.clamp(0.0, 1.0)) * self.samples.len() as f64) as usize;
        Some(&self.samples[start.min(self.samples.len() - 1)..])
    }

    /// Mean over the final `fraction` of samples (steady-state estimate).
    /// `None` when no samples have been recorded yet.
    pub fn steady_mean(&self, fraction: f64) -> Option<f64> {
        let tail = self.steady_tail(fraction)?;
        Some(tail.iter().map(|&(_, h)| h).sum::<f64>() / tail.len() as f64)
    }

    /// Peak-to-peak fluctuation over the final `fraction` of samples.
    /// `None` when no samples have been recorded yet; `Some(0.0)` for a
    /// single sample.
    pub fn steady_fluctuation(&self, fraction: f64) -> Option<f64> {
        let tail = self.steady_tail(fraction)?;
        let hi = tail.iter().map(|&(_, h)| h).fold(f64::MIN, f64::max);
        let lo = tail.iter().map(|&(_, h)| h).fold(f64::MAX, f64::min);
        Some(hi - lo)
    }
}

/// Mean axial (z) velocity over fluid nodes of a lattice — `Q/A` for tube
/// flows.
pub fn mean_axial_velocity(lat: &Lattice) -> f64 {
    let mut sum = 0.0;
    let mut count = 0usize;
    for node in 0..lat.node_count() {
        if lat.flag(node) == NodeClass::Fluid {
            sum += lat.velocity_at(node)[2];
            count += 1;
        }
    }
    assert!(count > 0, "no fluid nodes");
    sum / count as f64
}

/// Volumetric flow rate through a force-driven tube (lattice units):
/// mean axial velocity × fluid cross-section area.
pub fn tube_flow_rate(lat: &Lattice) -> f64 {
    let area = apr_lattice::setup::cross_section_fluid_count(lat) as f64;
    mean_axial_velocity(lat) * area
}

/// Effective dynamic viscosity of a body-force-driven tube via paper
/// Eq. 12 with `ΔP = g·ρ·L` and `Q = π·R²·ū`:
///
/// `μ_eff = ΔP·π·R⁴/(8·Q·L) = g·ρ·R²/(8·ū)`  (lattice units, ρ ≈ 1).
///
/// Pass the **area-equivalent** radius of the voxelized cross-section
/// (`apr_lattice::setup::effective_tube_radius`) so `R` and `ū` describe
/// the same discrete disc; the staircase boundary still leaves an O(Δx/R)
/// uncertainty on the absolute value.
pub fn tube_effective_viscosity(lat: &Lattice, radius: f64, body_force: f64) -> f64 {
    let u = mean_axial_velocity(lat);
    assert!(u.abs() > 0.0, "no flow");
    body_force * radius * radius / (8.0 * u)
}

#[cfg(test)]
mod tests {
    use super::*;
    use apr_lattice::force_driven_tube;

    #[test]
    fn hematocrit_series_statistics() {
        let mut s = HematocritSeries::default();
        for i in 0..100u64 {
            // Settles to 0.3 with a ±0.01 ripple.
            let h = if i < 50 {
                0.5 - 0.004 * i as f64
            } else {
                0.3 + 0.01 * ((i % 2) as f64 * 2.0 - 1.0)
            };
            s.record(i, h);
        }
        let mean = s.steady_mean(0.3).unwrap();
        assert!((mean - 0.3).abs() < 0.02, "mean {mean}");
        let fluct = s.steady_fluctuation(0.3).unwrap();
        assert!(fluct <= 0.021, "fluctuation {fluct}");
    }

    #[test]
    fn empty_and_short_series_are_guarded() {
        let empty = HematocritSeries::default();
        assert_eq!(empty.steady_mean(0.4), None);
        assert_eq!(empty.steady_fluctuation(0.4), None);

        let mut one = HematocritSeries::default();
        one.record(0, 0.25);
        assert_eq!(one.steady_mean(0.4), Some(0.25));
        assert_eq!(one.steady_fluctuation(0.4), Some(0.0));

        // fraction = 0 still averages at least the final sample.
        let mut two = HematocritSeries::default();
        two.record(0, 0.25);
        two.record(1, 0.75);
        assert_eq!(two.steady_mean(0.0), Some(0.75));
        // fraction = 1 covers everything (0.25 and 0.75 are exact binary).
        assert_eq!(two.steady_mean(1.0), Some(0.5));
        assert_eq!(two.steady_fluctuation(1.0), Some(0.5));
    }

    #[test]
    fn empty_tube_recovers_fluid_viscosity() {
        // A cell-free force-driven tube must report μ_eff ≈ μ_fluid = ρ·ν.
        let radius = 8.0;
        let g = 5e-7;
        let mut lat = force_driven_tube(19, 19, 4, 0.8, radius, g);
        for _ in 0..8000 {
            lat.step();
        }
        let mu_fluid = lat.lattice_viscosity(); // ρ = 1
                                                // Effective radius from the voxelized cross-section (the discrete
                                                // tube is slightly smaller than nominal).
        let r_eff = apr_lattice::setup::effective_tube_radius(&lat);
        let mu_eff = tube_effective_viscosity(&lat, r_eff, g);
        assert!(
            (mu_eff - mu_fluid).abs() / mu_fluid < 0.20,
            "μ_eff {mu_eff} vs μ {mu_fluid}"
        );
    }
}
